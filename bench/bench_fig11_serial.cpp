// Fig. 11 reproduction: serial per-step performance of TensorKMC under
// the three software configurations of the paper, at both cutoffs.
//
//   x86     — features computed sequentially (MPE-style loop, double),
//             energies through the layer-wise FusedConv2D path.
//   SW      — features sequential, energies through the per-layer fused
//             operator (TensorFlow + SWDNN analogue).
//   SW(opt) — features on the CPE grid (fast feature operator), energies
//             through the big-fusion operator.
//
// The unit of work is one full vacancy propensity refresh: gather VET,
// build features for 1 + 8 states, evaluate all region-atom energies.
// Paper headline: SW(opt) ~ 11x faster than x86 overall, features ~14x,
// energies ~15x; shorter cutoff (5.8 A) shrinks every component.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/table_writer.hpp"
#include "kmc/eam_energy_model.hpp"
#include "kmc/event_catalog/event_catalog.hpp"
#include "kmc/rate_calculator.hpp"
#include "common/telemetry/telemetry.hpp"
#include "nnp/conv_stack.hpp"
#include "sunway/bigfusion_operator.hpp"
#include "sunway/feature_operator.hpp"
#include "sunway/perf_model.hpp"
#include "tabulation/region_features.hpp"

using namespace tkmc;

namespace {

struct Timings {
  double featureMs = 0.0;
  double energyMs = 0.0;
  double totalMs() const { return featureMs + energyMs; }
};

Timings measure(const Cet& cet, const Net& net, const FeatureTable& table,
                const Network::Snapshot& snapshot, const LatticeState& state,
                Vec3i center, int mode, int reps) {
  const int numStates = 1 + kNumJumpDirections;
  const int m = numStates * cet.nRegion();
  const ConvStack stack(snapshot);
  CpeGrid grid;
  FeatureOperator featureOp(net, table, grid);
  BigFusionOperator fusionOp(snapshot, grid, 32);
  if (mode == 2) fusionOp.loadModel();
  const RegionFeatures serialFeatures(net, table);

  std::vector<float> featuresF(static_cast<std::size_t>(m) * 64);
  std::vector<double> featuresD;
  std::vector<float> energiesF(static_cast<std::size_t>(m));

  Timings t;
  Vet vet = Vet::gather(cet, state, center);
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch sw;
    if (mode == 2) {
      featureOp.compute(vet, kNumJumpDirections, featuresF);
    } else {
      serialFeatures.computeStates(vet, kNumJumpDirections, featuresD);
      for (std::size_t i = 0; i < featuresD.size(); ++i)
        featuresF[i] = static_cast<float>(featuresD[i]);
    }
    t.featureMs += sw.milliseconds();
    sw.reset();
    if (mode == 2) {
      fusionOp.forward(featuresF.data(), m, energiesF.data());
    } else if (mode == 1) {
      // SWDNN-style FusedConv2D per layer.
      stack.forward(ConvStack::Mode::kFusedLayer, featuresF.data(), m,
                    energiesF.data());
    } else {
      // libtensorflow on the host CPU: vectorized GEMM, separate
      // bias/ReLU passes.
      stack.forward(ConvStack::Mode::kMatmulSimd, featuresF.data(), m,
                    energiesF.data());
    }
    t.energyMs += sw.milliseconds();
  }
  t.featureMs /= reps;
  t.energyMs /= reps;
  return t;
}

void runCutoff(double cutoff, const Network::Snapshot& snapshot) {
  const Cet cet(2.87, cutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  const int boxCells = 24;
  LatticeState state(BccLattice(boxCells, boxCells, boxCells, 2.87));
  Rng rng(11);
  state.randomAlloy(0.0134, 0, rng);
  const Vec3i center{boxCells, boxCells, boxCells};
  state.setSpeciesAt(center, Species::kVacancy);

  const int reps = 4;
  const Timings x86 = measure(cet, net, table, snapshot, state, center, 0, reps);
  const Timings sw = measure(cet, net, table, snapshot, state, center, 1, reps);
  const Timings swOpt =
      measure(cet, net, table, snapshot, state, center, 2, reps);

  std::printf("\nr_cut = %.1f A (N_region = %d, N_local = %d)\n", cutoff,
              cet.nRegion(), cet.nLocal());
  TableWriter out({"configuration", "feature (ms)", "energy (ms)",
                   "overall (ms)", "overall speedup vs x86"});
  auto row = [&](const char* name, const Timings& t) {
    out.addRow({name, TableWriter::num(t.featureMs, 3),
                TableWriter::num(t.energyMs, 3),
                TableWriter::num(t.totalMs(), 3),
                TableWriter::num(x86.totalMs() / t.totalMs(), 2) + "x"});
  };
  row("x86 (serial feat + layerwise)", x86);
  row("SW (serial feat + fused op)", sw);
  row("SW(opt) (CPE feat + big-fusion)", swOpt);
  out.print();

  // Roofline-modeled CG times for the two energy operators, from their
  // measured traffic — the hardware asymmetry a single host core cannot
  // exhibit directly (see Fig. 9/10 benches for the operator analysis).
  const int m = (1 + kNumJumpDirections) * cet.nRegion();
  const ConvStack stack(snapshot);
  Traffic layerwise;
  for (int layer = 0; layer < stack.numLayers(); ++layer)
    layerwise += stack.layerTraffic(layer, m, /*fused=*/true);
  Traffic fused;
  fused.mainReadBytes = static_cast<std::uint64_t>(m) * 64 * sizeof(float);
  fused.mainWriteBytes = static_cast<std::uint64_t>(m) * sizeof(float);
  fused.flops = layerwise.flops;
  const PerfModel perf;
  std::printf("roofline-modeled CG energy time: fused %.3f ms vs big-fusion "
              "%.3f ms (%.1fx)\n",
              perf.modeledSeconds(layerwise) * 1e3,
              perf.modeledSeconds(fused) * 1e3,
              perf.modeledSeconds(layerwise) / perf.modeledSeconds(fused));

  // Measurements above run with telemetry off (the timings are the
  // product); the snapshot is filled afterwards.
  telemetry::ScopedEnable record;
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "bench.fig11.rc%.1f", cutoff);
  auto publish = [&](const char* cfg, const Timings& t) {
    reg.gauge(std::string(prefix) + "." + cfg + ".feature_ms")
        .set(t.featureMs);
    reg.gauge(std::string(prefix) + "." + cfg + ".energy_ms").set(t.energyMs);
    reg.gauge(std::string(prefix) + "." + cfg + ".total_ms").set(t.totalMs());
  };
  publish("x86", x86);
  publish("sw", sw);
  publish("sw_opt", swOpt);
  reg.gauge(std::string(prefix) + ".speedup").set(x86.totalMs() /
                                                  swOpt.totalMs());
}

// Flight-recorder overhead: the blackbox ring is always on in
// production, so its cost rides on every propensity refresh. Re-run the
// SW(opt) refresh loop with the recorder enabled vs disabled, issuing
// the same record() calls the serial engine makes per step (one refresh
// event + one KMC event), and report the relative slowdown. Acceptance:
// <= 5% (ISSUE 7); the gauge is excluded from the bench gate
// (*overhead_pct* is ignored) because it is a timing ratio.
double measureOverheadPct(const Network::Snapshot& snapshot) {
  const Cet cet(2.87, kDefaultCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  const int boxCells = 24;
  LatticeState state(BccLattice(boxCells, boxCells, boxCells, 2.87));
  Rng rng(11);
  state.randomAlloy(0.0134, 0, rng);
  const Vec3i center{boxCells, boxCells, boxCells};
  state.setSpeciesAt(center, Species::kVacancy);

  const int numStates = 1 + kNumJumpDirections;
  const int m = numStates * cet.nRegion();
  CpeGrid grid;
  FeatureOperator featureOp(net, table, grid);
  BigFusionOperator fusionOp(snapshot, grid, 32);
  fusionOp.loadModel();
  std::vector<float> featuresF(static_cast<std::size_t>(m) * 64);
  std::vector<float> energiesF(static_cast<std::size_t>(m));
  const Vet vet = Vet::gather(cet, state, center);

  telemetry::FlightRecorder& rec = telemetry::flightRecorder();
  rec.configureRanks(1);
  const bool wasEnabled = rec.enabled();
  const int reps = 8;
  auto loop = [&](bool enabled) {
    rec.setEnabled(enabled);
    Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
      featureOp.compute(vet, kNumJumpDirections, featuresF);
      fusionOp.forward(featuresF.data(), m, energiesF.data());
      rec.record(0, telemetry::BlackboxEventType::kPropensityRefresh, 0,
                 static_cast<std::uint64_t>(m));
      rec.record(0, telemetry::BlackboxEventType::kKmcEvent, 0,
                 static_cast<std::uint64_t>(rep), 0);
    }
    return sw.milliseconds() / reps;
  };
  loop(false);  // warm caches so neither arm pays first-touch costs
  const double offMs = loop(false);
  const double onMs = loop(true);
  rec.setEnabled(wasEnabled);

  const double pct = (onMs - offMs) / offMs * 100.0;
  std::printf("\nflight-recorder overhead on SW(opt) refresh: %.3f ms off, "
              "%.3f ms on -> %+.2f%% (acceptance: <= 5%%)\n",
              offMs, onMs, pct);
  telemetry::ScopedEnable record;
  telemetry::metrics().gauge("bench.fig11.blackbox_overhead_pct").set(pct);
  return pct;
}

// Catalog-dispatch overhead: the serial/parallel engines now reach the
// rate law through EventCatalog::evaluateChecked() (virtual dispatch +
// the catalog.rate_nan fault probe) instead of calling computeRates()
// directly. Time both on the same environment and report the relative
// cost as `bench.fig11.catalog_dispatch_overhead_frac`, gated at
// <= 3% against the hardcoded path (ISSUE 9) — unlike the timing
// gauges this one IS compared by scripts/bench_gate.py, because it is
// a dimensionless ratio of two loops in the same process.
double measureCatalogDispatchOverhead() {
  const Cet cet(2.87, 4.0);
  const Net net(cet);
  const EamPotential eam(4.0);
  EamEnergyModel model(cet, net, eam);
  const int boxCells = 12;
  LatticeState state(BccLattice(boxCells, boxCells, boxCells, 2.87));
  Rng rng(13);
  state.randomAlloy(0.15, 0, rng);
  const Vec3i center{boxCells, boxCells, boxCells};
  state.setSpeciesAt(center, Species::kVacancy);
  const Vet vet = Vet::gather(cet, state, center);

  const EventCatalog& catalog = defaultEventCatalog();
  const double temperature = 573.0;
  // The unit of work is exactly what the hardcoded engine did per dirty
  // vacancy: evaluate the 1 + 8 state energies, then the rate law. The
  // catalog arm swaps the direct computeRates() call for the engines'
  // evaluateChecked() path (virtual dispatch + the catalog.rate_nan
  // fault probe) on top of the identical energy work.
  const int chunk = 200;
  volatile double sink = 0.0;  // keep the loops from folding away
  auto timeDirect = [&] {
    Stopwatch sw;
    for (int rep = 0; rep < chunk; ++rep) {
      const std::vector<double> energies =
          model.stateEnergies(state, center, kNumJumpDirections);
      sink = sink + computeRates(vet, energies, temperature).total;
    }
    return sw.milliseconds();
  };
  auto timeCatalog = [&] {
    Stopwatch sw;
    for (int rep = 0; rep < chunk; ++rep) {
      const std::vector<double> energies =
          model.stateEnergies(state, center, kNumJumpDirections);
      sink = sink +
             catalog.evaluateChecked(0, vet, energies, temperature).total;
    }
    return sw.milliseconds();
  };
  timeDirect();  // warm both arms so neither pays first-touch costs
  timeCatalog();
  // Paired chunks with a median-of-ratios estimator: machine drift on a
  // shared host swamps the per-call delta over whole arms, but adjacent
  // chunks see the same conditions, so the per-round ratio is clean and
  // the median discards preemption outliers. The arm order flips every
  // round so a systematic first/second-position bias (frequency ramps,
  // timer interrupts phase-locked to the round) cancels instead of
  // shifting every ratio the same way.
  const int rounds = 31;
  std::vector<double> ratios;
  ratios.reserve(rounds);
  double directMs = 1e300, catalogMs = 1e300;
  for (int round = 0; round < rounds; ++round) {
    // Alternate the arm order so a systematic first/second-position
    // bias (frequency ramps, timer interrupts phase-locked to the
    // round) hits both arms equally.
    double d, c;
    if (round % 2 == 0) {
      d = timeDirect();
      c = timeCatalog();
    } else {
      c = timeCatalog();
      d = timeDirect();
    }
    ratios.push_back(c / d);
    directMs = std::min(directMs, d);
    catalogMs = std::min(catalogMs, c);
  }
  // Median of paired per-round ratios: the two arms of a round run
  // back to back, so sustained load and frequency dips cancel inside
  // each ratio, and the median sheds the rounds where preemption hit
  // only one arm — per-arm minima taken across different moments drift
  // apart on a busy single-core host.
  std::nth_element(ratios.begin(), ratios.begin() + rounds / 2,
                   ratios.end());
  const double frac = std::max(0.0, ratios[rounds / 2] - 1.0);
  std::printf("\ncatalog dispatch overhead: best direct %.3f ms vs best "
              "catalog %.3f ms per %d-refresh chunk (median ratio over "
              "%d rounds) -> %.4f (acceptance: <= 0.03)\n",
              directMs, catalogMs, chunk, rounds, frac);
  telemetry::ScopedEnable record;
  telemetry::metrics()
      .gauge("bench.fig11.catalog_dispatch_overhead_frac")
      .set(frac);
  return frac;
}

}  // namespace

int main() {
  std::printf("Fig. 11 — serial TensorKMC configurations "
              "(per propensity refresh; paper: SW(opt) ~= 11x x86)\n");
  Network network({64, 128, 128, 128, 64, 1});
  Rng rng(5);
  network.initHe(rng);
  const auto snapshot = network.foldedSnapshot();
  runCutoff(kDefaultCutoff, snapshot);
  runCutoff(kShortCutoff, snapshot);
  measureOverheadPct(snapshot);
  measureCatalogDispatchOverhead();
  telemetry::metrics().writeJson("BENCH_fig11_serial.metrics.json");
  std::printf("\nwrote BENCH_fig11_serial.metrics.json\n");
  return 0;
}
