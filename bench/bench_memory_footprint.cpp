// Lattice occupation footprint: packed paged store versus the dense
// byte-per-site representation it retired.
//
// The paper's 50-trillion-atom capacity rests on never allocating one
// byte per site; occupation lives in CET-packed pages (4 sites/byte)
// with pure-matrix pages collapsed to a fill value. This bench allocates
// real boxes at the Cu fractions and vacancy counts the RPV workload
// uses, reports allocated bytes/site and the MemoryTracker peak across
// the sweep, and snapshots everything as gauges so
// `scripts/bench_diff.py` can flag footprint regressions between
// commits. Acceptance: a mostly-Fe box stays at or under 0.30 bytes/site
// (the dense representation was >= 1.0).

#include <cstdio>
#include <string>

#include "common/memory_tracker.hpp"
#include "common/table_writer.hpp"
#include "common/telemetry/telemetry.hpp"
#include "lattice/lattice_state.hpp"

using namespace tkmc;

namespace {

constexpr int kCells = 32;  // 2 * 32^3 = 65536 sites, 16 pages
const double kCuFractions[] = {0.0, 0.015, 0.1};
const std::int64_t kVacancyCounts[] = {1, 64};

/// Gauge-name fragment for a Cu fraction: 0.015 -> "cu0150" (x1e4).
std::string cuTag(double f) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "cu%04d", static_cast<int>(f * 1e4 + 0.5));
  return buf;
}

}  // namespace

int main() {
  MemoryTracker tracker;
  TableWriter out({"Cu fraction", "vacancies", "pages (mat/total)",
                   "packed bytes", "bytes/site", "dense bytes/site"});

  telemetry::ScopedEnable record;
  telemetry::MetricsRegistry& reg = telemetry::metrics();

  bool mostlyFeOk = true;
  for (const double cu : kCuFractions) {
    for (const std::int64_t vacancies : kVacancyCounts) {
      LatticeState state(BccLattice(kCells, kCells, kCells, 2.87));
      Rng rng(2021 ^ static_cast<std::uint64_t>(cu * 1e4) ^
              static_cast<std::uint64_t>(vacancies));
      state.randomAlloy(cu, vacancies, rng);

      const SpeciesStore& store = state.store();
      const double perSite = store.bytesPerSite();
      const double densePerSite = 1.0;  // retired std::vector<Species>
      const std::string key =
          cuTag(cu) + "_v" + std::to_string(vacancies);

      tracker.set("lattice_species." + key, store.memoryBytes());
      tracker.set("vacancy_list." + key,
                  state.vacancies().size() * sizeof(Vec3i));

      reg.gauge("bench.memfoot.bytes_per_site." + key).set(perSite);
      reg.gauge("bench.memfoot.packed_bytes." + key)
          .set(static_cast<double>(store.memoryBytes()));
      reg.gauge("bench.memfoot.materialized_pages." + key)
          .set(static_cast<double>(store.materializedPageCount()));

      char pages[32];
      std::snprintf(pages, sizeof(pages), "%lld/%lld",
                    static_cast<long long>(store.materializedPageCount()),
                    static_cast<long long>(store.pageCount()));
      out.addRow({TableWriter::num(cu, 3), std::to_string(vacancies), pages,
                  std::to_string(store.memoryBytes()),
                  TableWriter::num(perSite, 4),
                  TableWriter::num(densePerSite, 4)});

      // The acceptance bar applies to mostly-Fe boxes (<= 1.5 at.% Cu).
      if (cu <= 0.015 && perSite > 0.30) mostlyFeOk = false;
    }
  }

  std::printf("Lattice occupation footprint — %d^3 cells (%d sites), paged "
              "2-bit store, page = %lld sites\n",
              kCells, 2 * kCells * kCells * kCells,
              static_cast<long long>(SpeciesStore::kPageSites));
  out.print();
  std::printf("\nMemoryTracker peak across sweep: %s MiB (%zu bytes)\n",
              MemoryTracker::toMiB(tracker.peakBytes()).c_str(),
              tracker.peakBytes());
  std::printf("mostly-Fe acceptance (<= 0.30 bytes/site): %s\n",
              mostlyFeOk ? "PASS" : "FAIL");

  reg.gauge("bench.memfoot.peak_bytes")
      .set(static_cast<double>(tracker.peakBytes()));
  reg.gauge("bench.memfoot.mostly_fe_ok").set(mostlyFeOk ? 1.0 : 0.0);
  reg.writeJson("BENCH_memory_footprint.metrics.json");
  std::printf("wrote BENCH_memory_footprint.metrics.json\n");
  return mostlyFeOk ? 0 : 1;
}
