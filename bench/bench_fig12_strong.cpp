// Fig. 12 reproduction: strong scaling of TensorKMC on the new Sunway.
//
// Paper setup: 1.92 trillion atoms (1.34 at.% Cu, 8e-4 at.% vacancies,
// 573 K, t_stop = 2e-8 s), simulated duration 1e-7 s, scaled from 12,000
// CGs (780,000 cores) to 384,000 CGs (24,960,000 cores); parallel
// efficiency 85% at the top end.
//
// The compute term of the analytic model is calibrated live: the cost of
// one vacancy propensity refresh (features + big-fusion energies for nine
// states) is measured on this host. Communication parameters model the
// sublattice ghost exchange and global time synchronization. An
// `--ablation=linear` flag swaps the tree propensity update for a linear
// scan to expose the cost the paper's "tree strategy" avoids.

#include <cstdio>
#include <cstring>

#include "common/stopwatch.hpp"
#include "common/table_writer.hpp"
#include "nnp/conv_stack.hpp"
#include "parallel/scaling_model.hpp"
#include "sunway/bigfusion_operator.hpp"
#include "sunway/feature_operator.hpp"

using namespace tkmc;

namespace {

double measureRefreshSeconds() {
  const Cet cet(2.87, kDefaultCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  Network network({64, 128, 128, 128, 64, 1});
  Rng rng(5);
  network.initHe(rng);
  const auto snapshot = network.foldedSnapshot();
  CpeGrid grid;
  FeatureOperator featureOp(net, table, grid);
  BigFusionOperator fusionOp(snapshot, grid, 32);
  fusionOp.loadModel();

  LatticeState state(BccLattice(24, 24, 24, 2.87));
  Rng arng(6);
  state.randomAlloy(0.0134, 0, arng);
  state.setSpeciesAt({24, 24, 24}, Species::kVacancy);
  const Vet vet = Vet::gather(cet, state, {24, 24, 24});

  const int m = 9 * cet.nRegion();
  std::vector<float> features;
  std::vector<float> energies(static_cast<std::size_t>(m));
  // Warm-up + timed repetitions.
  featureOp.compute(vet, kNumJumpDirections, features);
  fusionOp.forward(features.data(), m, energies.data());
  Stopwatch sw;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) {
    featureOp.compute(vet, kNumJumpDirections, features);
    fusionOp.forward(features.data(), m, energies.data());
  }
  return sw.seconds() / reps;
}

void printSweep(const ScalingModel& model, const char* label) {
  const std::vector<std::int64_t> cgs = {12000, 24000, 48000,
                                         96000, 192000, 384000};
  const auto points = model.strongScaling(1.92e12, cgs, 1e-7);
  std::printf("\n%s\n", label);
  TableWriter table({"core groups", "cores", "atoms/CG (M)", "compute (s)",
                     "comm (s)", "total (s)", "speedup", "efficiency"});
  for (const auto& p : points)
    table.addRow({std::to_string(p.coreGroups), std::to_string(p.cores),
                  TableWriter::num(p.atomsPerCg / 1e6, 0),
                  TableWriter::num(p.computeSeconds, 3),
                  TableWriter::num(p.commSeconds, 4),
                  TableWriter::num(p.totalSeconds, 3),
                  TableWriter::num(p.speedup, 2) + "x",
                  TableWriter::num(p.efficiency * 100, 1) + "%"});
  table.print();
  std::printf("paper: near-linear to 24,960,000 cores, 85%% efficiency at "
              "384,000 CGs\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool linearAblation =
      argc > 1 && std::strcmp(argv[1], "--ablation=linear") == 0;

  std::printf("Fig. 12 — strong scaling, 1.92 trillion atoms, t_stop = 2e-8 s\n");
  std::printf("calibrating per-refresh kernel cost on this host...\n");
  const double refreshSeconds = measureRefreshSeconds();
  std::printf("measured: %.3f ms per propensity refresh\n",
              refreshSeconds * 1e3);

  ScalingParams params;
  params.secondsPerRefresh = refreshSeconds;
  ScalingModel model(params);
  printSweep(model, "tree propensity update (TensorKMC default):");

  if (linearAblation) {
    // Linear propensity selection adds an O(n_vac) scan per event; with
    // 160 M atoms/CG that is ~1280 leaves touched instead of ~log2(1280).
    ScalingParams linear = params;
    const double leaves = 160e6 * linear.vacancyConcentration;
    linear.secondsPerRefresh =
        refreshSeconds + 2e-9 * leaves;  // modelled scan cost per event
    printSweep(ScalingModel(linear),
               "ablation — linear propensity scan instead of the tree:");
  } else {
    std::printf("\n(run with --ablation=linear for the propensity-scan "
                "ablation)\n");
  }
  return 0;
}
