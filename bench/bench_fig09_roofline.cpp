// Fig. 9 reproduction: roofline analysis of the energy kernels on the
// (simulated) SW26010-pro core group.
//
// Upper panel: per-layer memory traffic, FLOPs and arithmetic intensity
// of the original fused operator (Conv2D + Bias + ReLU per layer, all
// activations round-tripping main memory) for the paper's example shape
// N,H,W = 32,16,16 and channels (64,128,128,128,64,1).
// Headline numbers to compare: per-layer intensity 0.48 -> 21.3 (all
// below the 43.63 F/B knee), big-fusion traffic 56 MB -> 2 MB and
// intensity 509.1 F/B (compute-bound, 76.64% of SP peak attainable).

#include <algorithm>
#include <cstdio>

#include "common/table_writer.hpp"
#include "common/telemetry/telemetry.hpp"
#include "nnp/conv_stack.hpp"
#include "sunway/bigfusion_operator.hpp"
#include "sunway/perf_model.hpp"

using namespace tkmc;

int main() {
  // Record the run so the snapshot carries the operators' real traffic
  // counters (sunway.*) alongside the headline figures below.
  telemetry::ScopedEnable record;
  const std::vector<int> channels{64, 128, 128, 128, 64, 1};
  const int m = 32 * 16 * 16;  // N * H * W

  Network net(channels);
  Rng rng(1);
  net.initHe(rng);
  const auto snapshot = net.foldedSnapshot();
  const ConvStack stack(snapshot);
  const PerfModel perf;

  std::printf("Fig. 9 — roofline of the energy kernels (N,H,W = 32,16,16)\n");
  std::printf("machine knee: %.2f FLOP/byte, SP peak %.1f GFLOP/s/CG\n\n",
              perf.spec().rooflineKnee, perf.spec().peakSpFlops() / 1e9);

  TableWriter perLayer({"kernel", "main MB", "GFLOP", "intensity (F/B)",
                        "attainable GF/s", "bound"});
  Traffic unfusedTotal;
  double minIntensity = 1e300, maxIntensity = 0.0;
  for (int layer = 0; layer < stack.numLayers(); ++layer) {
    const Traffic t = stack.layerTraffic(layer, m, /*fused=*/true);
    unfusedTotal += t;
    const RooflinePoint p = perf.analyze("layer", t);
    minIntensity = std::min(minIntensity, p.intensity);
    maxIntensity = std::max(maxIntensity, p.intensity);
    perLayer.addRow(
        {"fused conv2d L" + std::to_string(layer),
         TableWriter::num(static_cast<double>(t.mainBytes()) / (1 << 20), 2),
         TableWriter::num(static_cast<double>(t.flops) / 1e9, 4),
         TableWriter::num(p.intensity, 2),
         TableWriter::num(p.attainableFlops / 1e9, 1),
         perf.computeBound(t) ? "compute" : "memory"});
  }

  // Big-fusion: measured on the CPE-grid simulator.
  CpeGrid grid;
  BigFusionOperator fusion(snapshot, grid, 32);
  fusion.loadModel();
  grid.collectTraffic();
  std::vector<float> input(static_cast<std::size_t>(m) * 64);
  Rng in(2);
  for (float& v : input) v = static_cast<float>(in.uniform());
  std::vector<float> output(static_cast<std::size_t>(m));
  fusion.forward(input.data(), m, output.data());
  const Traffic fused = grid.collectTraffic();
  const RooflinePoint fp = perf.analyze("big-fusion", fused);
  perLayer.addRow(
      {"big-fusion (all layers)",
       TableWriter::num(static_cast<double>(fused.mainBytes()) / (1 << 20), 2),
       TableWriter::num(static_cast<double>(fused.flops) / 1e9, 4),
       TableWriter::num(fp.intensity, 1),
       TableWriter::num(fp.attainableFlops / 1e9, 1),
       perf.computeBound(fused) ? "compute" : "memory"});
  perLayer.print();

  std::printf("\nsummary (paper values in parentheses):\n");
  std::printf("  layer-wise total traffic : %.1f MB  (56 MB)\n",
              static_cast<double>(unfusedTotal.mainBytes()) / (1 << 20));
  std::printf("  big-fusion traffic       : %.2f MB  (2 MB)\n",
              static_cast<double>(fused.mainBytes()) / (1 << 20));
  std::printf("  layer intensity range    : %.2f..%.2f F/B  (0.48..21.3)\n",
              minIntensity, maxIntensity);
  std::printf("  big-fusion intensity     : %.1f F/B  (509.1)\n", fp.intensity);
  std::printf("  big-fusion peak fraction : %.2f%%  (76.64%%)\n",
              fp.peakFraction * 100.0);
  std::printf("  RMA bytes (on-mesh)      : %.1f MB (not main memory)\n",
              static_cast<double>(fused.rmaBytes) / (1 << 20));

  telemetry::MetricsRegistry& reg = telemetry::metrics();
  reg.gauge("bench.fig09.layerwise_traffic_bytes")
      .set(static_cast<double>(unfusedTotal.mainBytes()));
  reg.gauge("bench.fig09.bigfusion_traffic_bytes")
      .set(static_cast<double>(fused.mainBytes()));
  reg.gauge("bench.fig09.bigfusion_intensity").set(fp.intensity);
  reg.gauge("bench.fig09.bigfusion_peak_fraction").set(fp.peakFraction);
  reg.writeJson("BENCH_fig09_roofline.metrics.json");
  std::printf("\nwrote BENCH_fig09_roofline.metrics.json\n");
  return 0;
}
