// Ablations of the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//
//   1. feature tabulation (Eq. 6) vs direct exp evaluation (Eq. 5);
//   2. vacancy cache on vs off (energy evaluations and wall time);
//   3. tree vs linear propensity selection at growing vacancy counts;
//   4. TensorKMC engine vs the OpenKMC cache-all baseline at equal
//      physics (EAM backend, same box);
//   5. the double-precision MPE energy path vs the single-precision CPE
//      pipeline (fast feature operator + big-fusion) inside the engine.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table_writer.hpp"
#include "kmc/eam_energy_model.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "kmc/propensity_tree.hpp"
#include "kmc/serial_engine.hpp"
#include "openkmc/openkmc_engine.hpp"
#include "sunway/sunway_energy_model.hpp"
#include "tabulation/region_features.hpp"

using namespace tkmc;

namespace {

constexpr double kCutoff = 4.0;

void featureTabulationAblation() {
  std::printf("1) feature evaluation: precomputed TABLE (Eq. 6) vs direct "
              "exp (Eq. 5)\n");
  const Cet cet(2.87, kDefaultCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  const RegionFeatures rf(net, table);
  LatticeState state(BccLattice(24, 24, 24, 2.87));
  Rng rng(3);
  state.randomAlloy(0.0134, 0, rng);
  state.setSpeciesAt({24, 24, 24}, Species::kVacancy);
  const Vet vet = Vet::gather(cet, state, {24, 24, 24});

  std::vector<double> out;
  const int reps = 40;
  rf.compute(vet, out);  // warm-up
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) rf.compute(vet, out);
  const double tabulated = sw.milliseconds() / reps;
  rf.computeDirect(vet, net.distances(), standardPqSets(), out);
  sw.reset();
  for (int i = 0; i < reps; ++i)
    rf.computeDirect(vet, net.distances(), standardPqSets(), out);
  const double direct = sw.milliseconds() / reps;
  std::printf("   tabulated %.3f ms, direct %.3f ms -> table is %.1fx "
              "faster (results bit-identical)\n\n",
              tabulated, direct, direct / tabulated);
}

void vacancyCacheAblation() {
  std::printf("2) vacancy cache on vs off (500 events, 6 vacancies)\n");
  auto run = [&](bool cache, double& ms, std::uint64_t& evals) {
    const Cet cet(2.87, kCutoff);
    const Net net(cet);
    const EamPotential eam(kCutoff);
    EamEnergyModel model(cet, net, eam);
    LatticeState state(BccLattice(16, 16, 16, 2.87));
    Rng rng(9);
    state.randomAlloy(0.0134, 6, rng);
    KmcConfig cfg;
    cfg.seed = 77;
    cfg.tEnd = 1e300;
    cfg.useVacancyCache = cache;
    SerialEngine engine(state, model, cet, cfg);
    Stopwatch sw;
    for (int i = 0; i < 500; ++i) engine.step();
    ms = sw.milliseconds();
    evals = engine.energyEvaluations();
  };
  double cacheMs = 0, directMs = 0;
  std::uint64_t cacheEvals = 0, directEvals = 0;
  run(true, cacheMs, cacheEvals);
  run(false, directMs, directEvals);
  std::printf("   cache on : %8.1f ms, %llu energy evaluations\n",
              cacheMs, static_cast<unsigned long long>(cacheEvals));
  std::printf("   cache off: %8.1f ms, %llu energy evaluations\n",
              directMs, static_cast<unsigned long long>(directEvals));
  std::printf("   -> %.1fx fewer evaluations, %.1fx faster, identical "
              "trajectory (tested)\n\n",
              static_cast<double>(directEvals) / static_cast<double>(cacheEvals),
              directMs / cacheMs);
}

void propensityTreeAblation() {
  std::printf("3) propensity selection: sum-tree vs linear scan\n");
  TableWriter table({"vacancies", "tree (ns/select)", "linear (ns/select)",
                     "speedup"});
  Rng rng(5);
  for (int n : {1000, 10000, 100000, 1000000}) {
    PropensityTree tree(n);
    for (int i = 0; i < n; ++i) tree.update(i, rng.uniform() + 0.01);
    const int reps = 20000;
    int sink = 0;
    Stopwatch sw;
    for (int i = 0; i < reps; ++i)
      sink += tree.select(rng.uniform() * tree.total());
    const double treeNs = sw.seconds() * 1e9 / reps;
    // Fewer reps for the linear scan at large n (it is the point).
    const int linReps = n >= 100000 ? 200 : 2000;
    sw.reset();
    for (int i = 0; i < linReps; ++i)
      sink += tree.selectLinear(rng.uniform() * tree.total());
    const double linNs = sw.seconds() * 1e9 / linReps;
    table.addRow({std::to_string(n), TableWriter::num(treeNs, 0),
                  TableWriter::num(linNs, 0),
                  TableWriter::num(linNs / treeNs, 1) + "x"});
    benchmark::DoNotOptimize(sink);
  }
  table.print();
  std::printf("   (the paper's \"tree strategy for propensity update\", "
              "Sec. 4.4)\n\n");
}

void baselineEngineComparison() {
  std::printf("4) TensorKMC (TET + cache) vs OpenKMC cache-all baseline, "
              "same EAM physics\n");
  const int cells = 14;
  const int events = 300;
  double tensorMs = 0, openMs = 0;
  std::size_t openBytes = 0;
  {
    const Cet cet(2.87, kCutoff);
    const Net net(cet);
    const EamPotential eam(kCutoff);
    EamEnergyModel model(cet, net, eam);
    LatticeState state(BccLattice(cells, cells, cells, 2.87));
    Rng rng(4);
    state.randomAlloy(0.0134, 3, rng);
    KmcConfig cfg;
    cfg.seed = 11;
    cfg.tEnd = 1e300;
    SerialEngine engine(state, model, cet, cfg);
    Stopwatch sw;
    for (int i = 0; i < events; ++i) engine.step();
    tensorMs = sw.milliseconds();
  }
  {
    const EamPotential eam(kCutoff);
    LatticeState state(BccLattice(cells, cells, cells, 2.87));
    Rng rng(4);
    state.randomAlloy(0.0134, 3, rng);
    OpenKmcEngine::Config cfg;
    cfg.seed = 11;
    OpenKmcEngine engine(state, eam, cfg);
    openBytes = engine.arrayBytes();
    Stopwatch sw;
    for (int i = 0; i < events; ++i) engine.step();
    openMs = sw.milliseconds();
  }
  std::printf("   TensorKMC: %8.1f ms for %d events\n", tensorMs, events);
  std::printf("   OpenKMC  : %8.1f ms for %d events + %.1f MB cache-all "
              "arrays\n",
              openMs, events, static_cast<double>(openBytes) / (1 << 20));
  std::printf("   -> per-atom arrays grow with the box; the vacancy cache "
              "grows with the defect count only (Table 1 bench)\n");
}

void precisionBackendComparison() {
  std::printf("\n5) NNP engine backends: double-precision MPE path vs "
              "single-precision CPE pipeline\n");
  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  Network network({64, 32, 32, 1});
  Rng rng(6);
  network.initHe(rng);
  auto run = [&](EnergyModel& model, int events) {
    LatticeState state(BccLattice(16, 16, 16, 2.87));
    Rng arng(8);
    state.randomAlloy(0.0134, 4, arng);
    KmcConfig cfg;
    cfg.seed = 15;
    cfg.tEnd = 1e300;
    SerialEngine engine(state, model, cet, cfg);
    Stopwatch sw;
    for (int i = 0; i < events; ++i) engine.step();
    return sw.milliseconds();
  };
  NnpEnergyModel cpu(cet, net, table, network);
  SunwayEnergyModel sunway(cet, net, table, network);
  const int events = 200;
  const double cpuMs = run(cpu, events);
  const double sunwayMs = run(sunway, events);
  std::printf("   double (MPE-style)   : %8.1f ms for %d events\n", cpuMs,
              events);
  std::printf("   float (CPE pipeline) : %8.1f ms for %d events\n", sunwayMs,
              events);
  std::printf("   trajectories statistically equivalent; energies agree to "
              "single precision (tested)\n");
}

}  // namespace

int main() {
  std::printf("TensorKMC design ablations\n\n");
  featureTabulationAblation();
  vacancyCacheAblation();
  propensityTreeAblation();
  baselineEngineComparison();
  precisionBackendComparison();
  return 0;
}
