// Measured strong/weak scaling of the threaded rank backend versus the
// in-process sequential driver, at 1/2/4/8 ranks.
//
// Until now the repo's scalability story (bench_fig12/13) came entirely
// from the analytic ScalingModel. With ranks promoted to real OS
// threads this bench measures actual wall time and demotes the model to
// a cross-check: its predicted strong-scaling curve is reported next to
// the measured one so a drift between them is visible in the metrics.
//
// The container CI floor has a single CPU, where a >= 2.5x speedup at 4
// ranks is physically impossible, so the bench self-gates on the
// detected core count: with >= 4 cores the 2.5x acceptance is enforced;
// below that the acceptance degrades to (a) threaded trajectories stay
// bit-identical to sequential ones on every grid — the determinism
// contract — and (b) the threading machinery's overhead stays bounded
// (threaded wall time <= 5x sequential on the same deck). Timing gauges
// are excluded from the bench gate via tolerances.json; the determinism
// and acceptance gauges are compared exactly.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table_writer.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/eam_energy_model.hpp"
#include "parallel/parallel_engine.hpp"
#include "parallel/scaling_model.hpp"

using namespace tkmc;

namespace {

constexpr double kCutoff = 4.0;
constexpr double kTStop = 5e-8;
constexpr int kCycles = 8;  // one full sector rotation
constexpr int kReps = 3;    // timed repetitions; min taken

struct GridPoint {
  const char* tag;
  Vec3i grid;
};

constexpr GridPoint kGrids[] = {
    {"p1", {1, 1, 1}},
    {"p2", {2, 1, 1}},
    {"p4", {2, 2, 1}},
    {"p8", {2, 2, 2}},
};

struct Measurement {
  double seqSeconds = 0.0;
  double thrSeconds = 0.0;
  std::uint64_t events = 0;
  bool identical = false;  // threaded trajectory == sequential trajectory
};

/// Runs the deck once per backend per repetition, timing runCycle() and
/// comparing the final trajectories bit-for-bit.
Measurement measure(Vec3i globalCells, std::int64_t vacancies, Vec3i grid) {
  Measurement m;
  m.seqSeconds = 1e300;
  m.thrSeconds = 1e300;
  std::uint32_t seqHash = 0, thrHash = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const bool threaded : {false, true}) {
      Cet cet(2.87, kCutoff);
      Net net(cet);
      EamPotential eam(kCutoff);
      BccLattice lattice(globalCells.x, globalCells.y, globalCells.z, 2.87);
      LatticeState state(lattice);
      Rng rng(4242);
      state.randomAlloy(0.12, vacancies, rng);
      EamEnergyModel model(cet, net, eam);
      ParallelConfig cfg;
      cfg.seed = 71;
      cfg.tStop = kTStop;
      cfg.rankGrid = grid;
      cfg.threaded = threaded;
      ParallelEngine engine(state, model, cet, cfg);
      Stopwatch watch;
      for (int c = 0; c < kCycles; ++c) engine.runCycle();
      const double seconds = watch.seconds();
      if (threaded) {
        m.thrSeconds = std::min(m.thrSeconds, seconds);
        thrHash = engine.assembleGlobalState().contentHash();
      } else {
        m.seqSeconds = std::min(m.seqSeconds, seconds);
        seqHash = engine.assembleGlobalState().contentHash();
      }
      m.events = engine.totalEvents();
    }
  }
  m.identical = seqHash == thrHash;
  return m;
}

}  // namespace

int main() {
  const int hostCores = std::max(1u, std::thread::hardware_concurrency());

  // Strong scaling: a fixed 16^3-cell box split across 1..8 ranks.
  // Weak scaling: a fixed 16^3 cells *per rank* (vacancies scale along).
  std::vector<Measurement> strong, weak;
  for (const GridPoint& g : kGrids)
    strong.push_back(measure({16, 16, 16}, 8, g.grid));
  for (const GridPoint& g : kGrids) {
    const int ranks = g.grid.x * g.grid.y * g.grid.z;
    weak.push_back(measure({16 * g.grid.x, 16 * g.grid.y, 16 * g.grid.z},
                           2 * ranks, g.grid));
  }

  // Analytic cross-check: the model's strong-scaling curve for the same
  // rank counts (machine constants differ, but the *shape* — who wins,
  // where efficiency falls off — should track the measurement on real
  // parallel hardware).
  ScalingModel modelRef;
  const double totalAtoms = 2.0 * 16 * 16 * 16;
  const std::vector<ScalingPoint> predicted =
      modelRef.strongScaling(totalAtoms, {1, 2, 4, 8}, kCycles * kTStop);

  bool accepted = true;
  TableWriter out({"ranks", "strong seq s", "strong thr s", "speedup",
                   "model speedup", "weak thr s", "weak eff", "bit-identical"});
  telemetry::ScopedEnable record;
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  reg.gauge("bench.threaded.host_cores").set(static_cast<double>(hostCores));

  for (std::size_t i = 0; i < std::size(kGrids); ++i) {
    const GridPoint& g = kGrids[i];
    const int ranks = g.grid.x * g.grid.y * g.grid.z;
    const Measurement& s = strong[i];
    const Measurement& w = weak[i];
    // Strong-scaling speedup is measured against the threaded 1-rank
    // run: it isolates the scaling of the backend itself (the 1-rank
    // team pays the same dispatch machinery).
    const double speedup = strong[0].thrSeconds / s.thrSeconds;
    const double weakEff = weak[0].thrSeconds / w.thrSeconds;
    const std::string tag(g.tag);
    reg.gauge("bench.threaded.strong.events." + tag)
        .set(static_cast<double>(s.events));
    reg.gauge("bench.threaded.strong.identical." + tag)
        .set(s.identical ? 1.0 : 0.0);
    reg.gauge("bench.threaded.strong.seq_seconds." + tag).set(s.seqSeconds);
    reg.gauge("bench.threaded.strong.thr_seconds." + tag).set(s.thrSeconds);
    reg.gauge("bench.threaded.strong.measured_speedup." + tag).set(speedup);
    reg.gauge("bench.threaded.strong.model_speedup." + tag)
        .set(predicted[i].speedup);
    reg.gauge("bench.threaded.weak.identical." + tag)
        .set(w.identical ? 1.0 : 0.0);
    reg.gauge("bench.threaded.weak.thr_seconds." + tag).set(w.thrSeconds);
    reg.gauge("bench.threaded.weak.measured_efficiency." + tag).set(weakEff);

    // Determinism is the unconditional acceptance: every grid, both
    // sweeps, threaded == sequential bit-for-bit.
    if (!s.identical || !w.identical) accepted = false;
    if (hostCores >= 4) {
      if (ranks == 4 && speedup < 2.5) accepted = false;
    } else if (s.seqSeconds > 0.0 && s.thrSeconds > 5.0 * s.seqSeconds) {
      accepted = false;  // threading machinery overhead out of bounds
    }

    out.addRow({std::to_string(ranks), TableWriter::num(s.seqSeconds, 4),
                TableWriter::num(s.thrSeconds, 4), TableWriter::num(speedup, 2),
                TableWriter::num(predicted[i].speedup, 2),
                TableWriter::num(w.thrSeconds, 4), TableWriter::num(weakEff, 2),
                s.identical && w.identical ? "yes" : "NO"});
  }

  std::printf("Threaded rank backend scaling — strong: 16^3 cells fixed; "
              "weak: 16^3 cells/rank; %d cycles, tStop %.0e s, host cores %d\n",
              kCycles, kTStop, hostCores);
  out.print();
  if (hostCores >= 4) {
    std::printf("\nacceptance (>= 4 cores): bit-identical trajectories AND "
                "measured strong speedup >= 2.5x at 4 ranks: %s\n",
                accepted ? "PASS" : "FAIL");
  } else {
    std::printf("\nacceptance (%d core(s) — 2.5x at 4 ranks not measurable "
                "here): bit-identical trajectories AND threaded overhead <= "
                "5x sequential: %s\n",
                hostCores, accepted ? "PASS" : "FAIL");
  }

  reg.gauge("bench.threaded.accept_ok").set(accepted ? 1.0 : 0.0);
  reg.writeJson("BENCH_threaded_scaling.metrics.json");
  std::printf("wrote BENCH_threaded_scaling.metrics.json\n");
  return accepted ? 0 : 1;
}
