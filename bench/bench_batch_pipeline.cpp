// Batched vacancy-system evaluation pipeline: per-system cost versus
// batch size.
//
// The per-system NNP dispatch re-DMAs the feature TABLE and the packed
// NET into every CPE's LDM, pays two kernel launches per vacancy system,
// and deals only ~9 * nRegion rows to the big-fusion mesh, so most of
// the 64 simulated CPEs idle per refresh. The batched pipeline keeps the
// TABLE and NET LDM-resident across systems and concatenates the feature
// matrices of the whole batch into one forward, so fixed dispatch costs
// amortize and the tile count scales with the batch.
//
// Cost is the modeled SW26010 time (CpeGrid::collectModeledSeconds:
// launch latency + per-run critical path), the same basis as the
// Fig. 9/11 reproductions — host wall-clock of the functional simulator
// runs all 64 CPEs on however many host cores exist and therefore cannot
// express launch amortization or mesh occupancy. This bench evaluates
// the same 512 vacancy systems at batch sizes 1/8/64/512 and reports
// per-system modeled cost and main-memory traffic at each size; the
// headline is the batch-64 speedup over batch-1 (acceptance: >= 2x,
// monotone decrease from 1 to 512).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/table_writer.hpp"
#include "common/telemetry/telemetry.hpp"
#include "sunway/sunway_energy_model.hpp"

using namespace tkmc;

namespace {

constexpr int kTotalSystems = 512;  // evaluated at every batch size
const int kBatchSizes[] = {1, 8, 64, 512};

}  // namespace

int main() {
  Cet cet(2.87, 4.0);
  Net net(cet);
  FeatureTable table(net.distances(), standardPqSets());
  Network network({table.numPq() * kNumElements, 16, 16, 1});
  Rng rng(11);
  network.initHe(rng);

  BccLattice lattice(16, 16, 16, 2.87);
  LatticeState state(lattice);
  Rng alloyRng(12);
  state.randomAlloy(0.15, 24, alloyRng);

  SunwayEnergyModel model(cet, net, table, network);

  // A pool of distinct vacancy systems; batches cycle through it so
  // every batch size sees identical inputs in identical order.
  std::vector<Vet> pool;
  for (const Vec3i& vac : state.vacancies())
    pool.push_back(Vet::gather(cet, state, lattice.wrap(vac)));

  std::vector<Vet> systems;
  systems.reserve(kTotalSystems);
  for (int i = 0; i < kTotalSystems; ++i)
    systems.push_back(pool[static_cast<std::size_t>(i) % pool.size()]);

  // Warm-up: page in buffers and the model image.
  {
    std::vector<Vet*> ptrs;
    for (int i = 0; i < 64; ++i)
      ptrs.push_back(&systems[static_cast<std::size_t>(i)]);
    model.stateEnergiesBatch(ptrs, kNumJumpDirections);
  }
  model.collectTraffic();
  model.collectModeledSeconds();

  TableWriter tableOut({"batch size", "launches", "per-system us (modeled)",
                        "per-system main KB", "host us", "speedup vs b=1"});
  std::vector<double> perSystemUs;    // modeled — the acceptance metric
  std::vector<double> perSystemBytes;
  for (const int batch : kBatchSizes) {
    const int dispatches = kTotalSystems / batch;
    const std::uint64_t launchesBefore = model.grid().launchCount();
    // The modeled cost is deterministic; host wall time (informational)
    // takes the best of 3 passes to filter scheduler noise.
    double bestHost = 1e300;
    double modeled = 0.0;
    Traffic traffic;
    for (int rep = 0; rep < 3; ++rep) {
      model.collectTraffic();
      model.collectModeledSeconds();
      Stopwatch sw;
      for (int dispatch = 0; dispatch < dispatches; ++dispatch) {
        std::vector<Vet*> ptrs;
        ptrs.reserve(static_cast<std::size_t>(batch));
        for (int i = 0; i < batch; ++i)
          ptrs.push_back(
              &systems[static_cast<std::size_t>(dispatch * batch + i)]);
        model.stateEnergiesBatch(ptrs, kNumJumpDirections);
      }
      const double elapsed = sw.seconds();
      if (elapsed < bestHost) bestHost = elapsed;
      modeled = model.collectModeledSeconds();
      traffic = model.collectTraffic();
    }
    const std::uint64_t launches =
        (model.grid().launchCount() - launchesBefore) / 3;
    const double us = modeled / kTotalSystems * 1e6;
    const double hostUs = bestHost / kTotalSystems * 1e6;
    const double kb =
        static_cast<double>(traffic.mainBytes()) / kTotalSystems / 1024.0;
    perSystemUs.push_back(us);
    perSystemBytes.push_back(kb * 1024.0);
    tableOut.addRow({std::to_string(batch), std::to_string(launches),
                     TableWriter::num(us, 2), TableWriter::num(kb, 1),
                     TableWriter::num(hostUs, 2),
                     TableWriter::num(perSystemUs.front() / us, 2) + "x"});
  }

  std::printf("Batched vacancy-system NNP pipeline — %d systems per "
              "measurement (nRegion = %d, %d states)\n",
              kTotalSystems, cet.nRegion(), 1 + kNumJumpDirections);
  tableOut.print();

  const double speedup64 = perSystemUs[0] / perSystemUs[2];
  const bool monotone =
      std::is_sorted(perSystemUs.rbegin(), perSystemUs.rend());
  std::printf("\nbatch-64 speedup over batch-1: %.2fx (target >= 2x)\n",
              speedup64);
  std::printf("per-system cost monotone decreasing 1 -> 512: %s\n",
              monotone ? "yes" : "NO");

  // Telemetry stays off while timing (the per-dispatch histogram lookups
  // would tax small batches); the snapshot records the results only.
  telemetry::ScopedEnable record;
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  for (std::size_t i = 0; i < std::size(kBatchSizes); ++i) {
    const std::string suffix = ".b" + std::to_string(kBatchSizes[i]);
    reg.gauge("bench.batch.per_system_us" + suffix).set(perSystemUs[i]);
    reg.gauge("bench.batch.per_system_main_bytes" + suffix)
        .set(perSystemBytes[i]);
  }
  reg.gauge("bench.batch.speedup_b64_vs_b1").set(speedup64);
  reg.gauge("bench.batch.monotone").set(monotone ? 1.0 : 0.0);
  reg.writeJson("BENCH_batch_pipeline.metrics.json");
  std::printf("\nwrote BENCH_batch_pipeline.metrics.json\n");
  return 0;
}
