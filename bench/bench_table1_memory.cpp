// Table 1 reproduction: per-process memory of OpenKMC vs TensorKMC for
// growing simulation boxes.
//
// Sizes up to 128 M atoms per process cannot be allocated on the test
// host, so the headline rows come from the calibrated analytic inventory
// (openkmc/memory_model.hpp); the model is then cross-checked against
// *real* allocations of the baseline engine's arrays at host-sized boxes.

#include <cstdio>

#include "common/memory_tracker.hpp"
#include "common/rng.hpp"
#include "common/table_writer.hpp"
#include "common/telemetry/telemetry.hpp"
#include "openkmc/memory_model.hpp"
#include "openkmc/openkmc_engine.hpp"

using namespace tkmc;

namespace {

std::string mb(std::size_t bytes) {
  return TableWriter::num(static_cast<double>(bytes) / (1 << 20), 2);
}

}  // namespace

int main() {
  std::printf("Table 1 — memory statistics, OpenKMC vs TensorKMC "
              "(MB per process)\n\n");
  const MemoryModel model;
  const std::int64_t sizes[] = {2'000'000, 16'000'000, 54'000'000,
                                128'000'000};

  TableWriter table({"millions of atoms", "2", "16", "54", "128"});
  auto addRow = [&](const char* name, auto getter) {
    std::vector<std::string> row{name};
    for (std::int64_t atoms : sizes) row.push_back(getter(atoms));
    table.addRow(row);
  };
  addRow("OpenKMC   T", [&](auto a) { return mb(model.openKmc(a).t); });
  addRow("OpenKMC   POS_ID", [&](auto a) { return mb(model.openKmc(a).posId); });
  addRow("OpenKMC   E_V", [&](auto a) { return mb(model.openKmc(a).eV); });
  addRow("OpenKMC   E_R", [&](auto a) { return mb(model.openKmc(a).eR); });
  addRow("OpenKMC   Runtime", [&](auto a) {
    const auto b = model.openKmc(a);
    return b.runtime > MemoryModel::kCgCapacityBytes ? std::string("- (OOM)")
                                                     : mb(b.runtime);
  });
  addRow("TensorKMC VAC Cache",
         [&](auto a) { return mb(model.tensorKmc(a).vacCache); });
  addRow("TensorKMC Runtime",
         [&](auto a) { return mb(model.tensorKmc(a).runtime); });
  table.print();

  std::printf("\npaper values:\n"
              "  T:        68 / 515 / 1709 / 4014\n"
              "  POS_ID:   34 / 258 / 856 / 2009\n"
              "  E_V, E_R: 68 / 515 / 1709 / 4014\n"
              "  OpenKMC Runtime:   467 / 3038 / 9964 / - (OOM at 16 GB/CG)\n"
              "  VAC Cache:         0.09 / 1.50 / 2.53 / 6.00\n"
              "  TensorKMC Runtime: 133 / 1021 / 3594 / 8120\n");

  // Cross-check against real allocations at host scale: the baseline
  // engine's POS_ID + E_V + E_R arrays versus the same inventory terms.
  std::printf("\ncross-check: measured cache-all array bytes at host-sized "
              "boxes\n");
  TableWriter check({"box (cells)", "atoms", "measured (MB)",
                     "inventory formula (MB)"});
  for (int cells : {10, 14, 20}) {
    LatticeState state(BccLattice(cells, cells, cells, 2.87));
    Rng rng(1);
    state.randomAlloy(0.01, 2, rng);
    const EamPotential eam(4.0);
    OpenKmcEngine engine(state, eam, {});
    const std::size_t cellCount = static_cast<std::size_t>(cells) * cells * cells;
    const std::size_t expected =
        8 * cellCount * 8 + 2 * (2 * cellCount) * 8;  // POS_ID + E_V + E_R
    check.addRow({std::to_string(cells) + "^3",
                  std::to_string(2 * cellCount), mb(engine.arrayBytes()),
                  mb(expected)});
  }
  check.print();

  // Snapshot: the analytic inventory per table size plus the measured
  // host-scale cross-check, in the same metrics format every --telemetry
  // run produces.
  telemetry::ScopedEnable record;
  MemoryTracker inventory;
  for (std::int64_t atoms : sizes) {
    const std::string tag = std::to_string(atoms / 1'000'000) + "m_atoms";
    inventory.set(tag + "_openkmc_runtime", model.openKmc(atoms).runtime);
    inventory.set(tag + "_tensorkmc_runtime", model.tensorKmc(atoms).runtime);
    inventory.set(tag + "_vac_cache", model.tensorKmc(atoms).vacCache);
  }
  inventory.publishTelemetry("bench.table1");
  telemetry::metrics().writeJson("BENCH_table1_memory.metrics.json");
  std::printf("\nwrote BENCH_table1_memory.metrics.json\n");
  return 0;
}
