// Fig. 7 reproduction: parity between the reference oracle and the
// trained neural network potential.
//
// The paper trains on 540 DFT-labelled Fe-Cu cells and reports an energy
// MAE of 2.9 meV/atom (R^2 = 0.998) and a force MAE of 0.04 eV/A
// (R^2 = 0.880). Our oracle is the EAM substitute (see DESIGN.md); the
// pipeline — descriptor, standardization, Adam fit, held-out parity —
// is the paper's. Dataset and network sizes are reduced to keep the
// harness in tens of seconds on one host core; pass `--full` for the
// paper-sized 540-structure run.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/stopwatch.hpp"
#include "common/table_writer.hpp"
#include "nnp/dataset.hpp"
#include "nnp/descriptor.hpp"
#include "nnp/force_trainer.hpp"
#include "nnp/trainer.hpp"

using namespace tkmc;

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  // Paper-sized dataset (540 structures, 400 train) by default; the
  // reduced network trains to paper-level parity in ~1.5 minutes on one
  // core. `--full` swaps in the production (64,128,128,128,64,1) channels.
  DatasetConfig data;
  data.count = 540;
  const int trainCount = 400;
  const int epochs = 250;
  const std::vector<int> channels =
      full ? std::vector<int>{64, 128, 128, 128, 64, 1}
           : std::vector<int>{64, 64, 32, 1};

  std::printf("Fig. 7 — NNP vs reference parity (%d structures, %d train)\n",
              data.count, trainCount);

  const EamPotential oracle;
  Rng rng(2021);
  Stopwatch sw;
  const auto labeled = generateDataset(oracle, data, rng);
  std::printf("dataset generated in %.1f s\n", sw.seconds());

  const Descriptor descriptor(standardPqSets(), oracle.cutoff());
  // Fit the per-species composition baseline on the training split; the
  // network learns the environment-dependent residual (the part that
  // survives in AKMC energy differences).
  std::vector<LabeledStructure> trainStructures(
      labeled.begin(), labeled.begin() + trainCount);
  const SpeciesBaseline baseline = SpeciesBaseline::fit(trainStructures);
  std::printf("composition baseline: e0(Fe) = %.4f eV, e0(Cu) = %.4f eV\n",
              baseline.e0[0], baseline.e0[1]);

  std::vector<TrainSample> train, test;
  std::vector<LabeledStructure> testStructures;
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    if (static_cast<int>(i) < trainCount) {
      train.push_back(makeSample(descriptor, labeled[i], &baseline));
    } else {
      test.push_back(makeSample(descriptor, labeled[i], &baseline));
      testStructures.push_back(labeled[i]);
    }
  }

  Network network(channels);
  Rng init(7);
  network.initHe(init);
  Trainer::Config tc;
  tc.epochs = epochs;
  tc.learningRate = 1e-2;
  tc.decay = 0.985;  // anneal to ~2e-4 by the final epoch
  Trainer trainer(network, tc);
  trainer.fitStandardization(train);
  sw.reset();
  const double finalLoss = trainer.train(train);
  std::printf("trained %d epochs in %.1f s (final loss %.3e eV^2/atom^2)\n",
              epochs, sw.seconds(), finalLoss);

  const Metrics energyTrain = Trainer::evaluateEnergy(network, train);
  const Metrics energyTest = Trainer::evaluateEnergy(network, test);
  const Metrics forceTest =
      Trainer::evaluateForces(network, descriptor, testStructures);

  // TensorAlloy's actual objective includes forces; fine-tune with the
  // force-matching trainer (double-backprop through the descriptor chain
  // rule) on a subset and report the improvement.
  ForceTrainer::Config ftc;
  ftc.epochs = 25;
  ftc.learningRate = 1e-4;  // gentle: the energy fit is already converged
  ftc.decay = 0.97;
  ftc.forceWeight = 0.3;
  ForceTrainer fineTuner(network, descriptor, ftc);
  // The whole training split: force matching on a subset overfits its
  // gradients and hurts held-out forces.
  const int fineTuneCount = trainCount;
  std::vector<ForceSample> fineTune;
  fineTune.reserve(static_cast<std::size_t>(fineTuneCount));
  for (int i = 0; i < fineTuneCount; ++i)
    fineTune.push_back(fineTuner.makeSample(labeled[static_cast<std::size_t>(i)],
                                            &baseline));
  sw.reset();
  fineTuner.train(fineTune);
  std::printf("force-matching fine-tune: %d structures, %d epochs in %.1f s\n",
              fineTuneCount, ftc.epochs, sw.seconds());
  const Metrics energyTuned = Trainer::evaluateEnergy(network, test);
  const Metrics forceTuned =
      Trainer::evaluateForces(network, descriptor, testStructures);

  TableWriter table({"quantity", "paper", "this run"});
  table.addRow({"energy MAE (meV/atom), test", "2.9",
                TableWriter::num(energyTest.maePerAtom * 1000, 2)});
  table.addRow({"energy R^2, test", "0.998",
                TableWriter::num(energyTest.r2, 4)});
  table.addRow({"force MAE (eV/A), test", "0.04",
                TableWriter::num(forceTest.maePerAtom, 4)});
  table.addRow({"force R^2, test", "0.880",
                TableWriter::num(forceTest.r2, 4)});
  table.addRow({"energy MAE (meV/atom), train", "-",
                TableWriter::num(energyTrain.maePerAtom * 1000, 2)});
  table.addRow({"after force fine-tune:", "", ""});
  table.addRow({"  energy MAE (meV/atom), test", "2.9",
                TableWriter::num(energyTuned.maePerAtom * 1000, 2)});
  table.addRow({"  force MAE (eV/A), test", "0.04",
                TableWriter::num(forceTuned.maePerAtom, 4)});
  table.addRow({"  force R^2, test", "0.880",
                TableWriter::num(forceTuned.r2, 4)});
  table.print();
  return 0;
}
