// Incremental checkpoint size: delta epochs versus the full epochs they
// replace, at cadences 1 / 8 / 64.
//
// Full-epoch checkpoints make minute-scale cadences unaffordable at the
// paper's trillion-site extrapolation; the delta path stages only the
// occupation pages (SpeciesStore page geometry) dirtied since the last
// committed epoch. This bench runs the parallel engine in kDelta mode on
// a low-churn RPV-style box (few vacancies in mostly-Fe), records every
// epoch as it commits (consolidation GCs deltas later, so sizes are
// sampled live), and reports delta/full byte ratios plus dirty-page
// counts as gauges for `scripts/bench_diff.py`.
//
// Acceptance: at cadence 1 the mean delta epoch is <= 10% of a full
// epoch, with consolidation bounding the chain at max_delta_chain links.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>

#include "common/table_writer.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/eam_energy_model.hpp"
#include "parallel/coordinated_checkpoint.hpp"
#include "parallel/parallel_engine.hpp"

using namespace tkmc;

namespace {

// 48^3 cells on 2x2x1: 55296 sites/rank = 14 occupation pages, enough
// page granularity for a handful of vacancies to leave most pages clean.
constexpr int kCells = 48;
constexpr double kCutoff = 4.0;
constexpr std::int64_t kVacancies = 2;

struct CadenceStats {
  std::uint64_t fullEpochs = 0;
  std::uint64_t deltaEpochs = 0;
  std::uint64_t fullBytes = 0;   // newest full epoch's shard bytes
  double deltaBytesMean = 0.0;
  double dirtyPagesMean = 0.0;
};

std::uint64_t shardBytes(const EpochManifest& manifest) {
  std::uint64_t total = 0;
  for (const EpochManifest::ShardEntry& s : manifest.shards) total += s.bytes;
  return total;
}

CadenceStats runCadence(int cadence, int cycles) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tkmc_bench_delta_c" + std::to_string(cadence));
  std::filesystem::remove_all(dir);

  Cet cet(2.87, kCutoff);
  Net net(cet);
  EamPotential eam(kCutoff);
  BccLattice lattice(kCells, kCells, kCells, 2.87);
  LatticeState state(lattice);
  Rng rng(4242);
  state.randomAlloy(0.03, kVacancies, rng);
  EamEnergyModel model(cet, net, eam);

  ParallelConfig cfg;
  cfg.seed = 7;
  cfg.tStop = 5e-8;
  cfg.rankGrid = {2, 2, 1};
  cfg.checkpointDir = dir.string();
  cfg.checkpointCadence = cadence;
  cfg.checkpointMode = CheckpointMode::kDelta;
  cfg.maxDeltaChain = 8;
  ParallelEngine engine(state, model, cet, cfg);

  // Sample each epoch the cycle it commits: consolidation GCs superseded
  // deltas from disk, but their staged sizes are what the cadence costs.
  CheckpointStore store(dir.string());
  CadenceStats stats;
  std::uint64_t deltaBytes = 0, dirtyPages = 0;
  std::set<std::uint64_t> seen;
  const auto sample = [&]() {
    for (const std::uint64_t epoch : store.epochs()) {
      if (!seen.insert(epoch).second) continue;
      const EpochManifest manifest = store.loadManifest(epoch);
      if (manifest.isDelta()) {
        ++stats.deltaEpochs;
        deltaBytes += shardBytes(manifest);
        for (const ShardRecord& shard : store.loadShards(manifest))
          dirtyPages += shard.dirtyPages.size();
      } else {
        ++stats.fullEpochs;
        stats.fullBytes = shardBytes(manifest);
      }
    }
  };
  sample();  // construction epoch
  for (int c = 0; c < cycles; ++c) {
    engine.runCycle();
    sample();
  }
  if (stats.deltaEpochs > 0) {
    stats.deltaBytesMean =
        static_cast<double>(deltaBytes) / static_cast<double>(stats.deltaEpochs);
    stats.dirtyPagesMean = static_cast<double>(dirtyPages) /
                           static_cast<double>(stats.deltaEpochs);
  }
  std::filesystem::remove_all(dir);
  return stats;
}

// Paired wall measurement for the remote ShardStreamer: the same
// cadence-1 delta run with and without a remote mirror attached. The
// streamer copies on its own thread, so the visible cost is only the
// enqueue + lag bookkeeping in afterCommit plus disk contention — the
// gate (bench/baselines/tolerances.json) holds the fraction near zero.
constexpr int kOverheadCycles = 48;

double timedDeltaRun(bool withRemote) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (withRemote ? "tkmc_bench_stream_l" : "tkmc_bench_plain_l");
  const auto remote =
      std::filesystem::temp_directory_path() / "tkmc_bench_stream_r";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(remote);

  Cet cet(2.87, kCutoff);
  Net net(cet);
  EamPotential eam(kCutoff);
  BccLattice lattice(kCells, kCells, kCells, 2.87);
  LatticeState state(lattice);
  Rng rng(4242);
  state.randomAlloy(0.03, kVacancies, rng);
  EamEnergyModel model(cet, net, eam);

  ParallelConfig cfg;
  cfg.seed = 7;
  cfg.tStop = 5e-8;
  cfg.rankGrid = {2, 2, 1};
  cfg.checkpointDir = dir.string();
  cfg.checkpointCadence = 1;
  cfg.checkpointMode = CheckpointMode::kDelta;
  cfg.maxDeltaChain = 8;
  if (withRemote) {
    cfg.remoteDir = remote.string();
    cfg.remoteMaxLagEpochs = 64;  // measure streaming, not throttling
  }

  const auto t0 = std::chrono::steady_clock::now();
  {
    ParallelEngine engine(state, model, cet, cfg);
    for (int c = 0; c < kOverheadCycles; ++c) engine.runCycle();
    if (withRemote) engine.shardStreamer()->drain();
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(remote);
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  telemetry::ScopedEnable record;
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  TableWriter out({"cadence", "cycles", "full/delta epochs", "full bytes",
                   "mean delta bytes", "delta/full", "mean dirty pages"});

  bool accepted = true;
  // Enough cycles per cadence for at least one delta link past the
  // construction full (and, at cadence 1, one consolidation at depth 8).
  const int kPlan[][2] = {{1, 12}, {8, 24}, {64, 65}};
  for (const auto& [cadence, cycles] : kPlan) {
    const CadenceStats s = runCadence(cadence, cycles);
    const double ratio = s.fullBytes == 0
                             ? 0.0
                             : s.deltaBytesMean /
                                   static_cast<double>(s.fullBytes);
    std::string tag("c");
    tag += std::to_string(cadence);
    reg.gauge("bench.delta_ckpt.full_bytes." + tag)
        .set(static_cast<double>(s.fullBytes));
    reg.gauge("bench.delta_ckpt.delta_bytes_mean." + tag).set(s.deltaBytesMean);
    reg.gauge("bench.delta_ckpt.ratio." + tag).set(ratio);
    reg.gauge("bench.delta_ckpt.dirty_pages_mean." + tag)
        .set(s.dirtyPagesMean);
    out.addRow({std::to_string(cadence), std::to_string(cycles),
                std::to_string(s.fullEpochs) + "/" +
                    std::to_string(s.deltaEpochs),
                std::to_string(s.fullBytes),
                TableWriter::num(s.deltaBytesMean, 0),
                TableWriter::num(ratio, 4),
                TableWriter::num(s.dirtyPagesMean, 1)});
    // The acceptance bar applies at cadence 1: per-cycle epochs are the
    // low-churn case delta checkpointing exists for. Longer cadences
    // accumulate churn and are reported for the cost curve.
    if (cadence == 1 && ratio > 0.10) accepted = false;
    if (s.deltaEpochs == 0) accepted = false;  // delta path never engaged
  }

  // Remote streamer overhead: min-of-3 paired runs so scheduler noise
  // in either arm does not manufacture (or mask) a regression. The
  // remote arm also populates the checkpoint.remote_lag histogram and
  // checkpoint.remote_lag_epochs gauge that the bench gate tracks.
  double tLocal = 1e300, tRemote = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    tLocal = std::min(tLocal, timedDeltaRun(/*withRemote=*/false));
    tRemote = std::min(tRemote, timedDeltaRun(/*withRemote=*/true));
  }
  const double overheadFrac =
      tLocal > 0.0 ? std::max(0.0, (tRemote - tLocal) / tLocal) : 0.0;
  reg.gauge("bench.delta_ckpt.streamer_overhead_frac").set(overheadFrac);
  reg.gauge("bench.delta_ckpt.wall_local_seconds").set(tLocal);
  reg.gauge("bench.delta_ckpt.wall_remote_seconds").set(tRemote);

  // With a second core the worker's copies overlap the engine and the
  // 5% bar is the real claim; on one core every copied byte serializes
  // with KMC compute, so only an order-of-magnitude bar (a wedged or
  // accidentally synchronous streamer) is measurable.
  const int hostCores =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  reg.gauge("bench.delta_ckpt.streamer_host_cores")
      .set(static_cast<double>(hostCores));
  const double overheadBar = hostCores >= 2 ? 0.05 : 0.5;
  if (overheadFrac > overheadBar) accepted = false;

  std::printf("Delta checkpoint size — %d^3 cells (%d sites, 2x2x1 ranks), "
              "%lld vacancies, max_delta_chain 8\n",
              kCells, 2 * kCells * kCells * kCells,
              static_cast<long long>(kVacancies));
  out.print();
  std::printf("\nremote streamer overhead: %.2f%% of wall "
              "(%.3f s local, %.3f s streaming, %d cycles, min of 3; "
              "bar <= %.0f%% at %d host core(s))\n",
              overheadFrac * 100.0, tLocal, tRemote, kOverheadCycles,
              overheadBar * 100.0, hostCores);
  std::printf("acceptance (mean cadence-1 delta <= 10%% of full AND "
              "streamer overhead within bar): %s\n",
              accepted ? "PASS" : "FAIL");

  reg.gauge("bench.delta_ckpt.accept_ok").set(accepted ? 1.0 : 0.0);
  reg.writeJson("BENCH_delta_checkpoint.metrics.json");
  std::printf("wrote BENCH_delta_checkpoint.metrics.json\n");
  return accepted ? 0 : 1;
}
