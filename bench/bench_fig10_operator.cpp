// Fig. 10 reproduction: performance of the TensorKMC operator at each
// optimization rung, on the paper's conv shape.
//
// Paper speedups over the base Conv2D implementation on SW26010-pro:
//   conv -> matmul                ~1.23x
//   + SIMD vectorization          16x ~ 22x
//   + (conv, bias, relu) fusion   33x ~ 41x
//   + big-fusion                  131x ~ 161x
// Absolute factors are architecture-specific (the host lacks the CPEs'
// scratchpad/SIMD asymmetry); the reproduced *ordering* — each rung at
// least as fast as the previous, big-fusion far ahead on memory traffic —
// is the claim under test. Timings come from google-benchmark; a summary
// table with measured speedups is printed afterwards.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <memory>

#include "common/stopwatch.hpp"
#include "common/table_writer.hpp"
#include "nnp/conv_stack.hpp"
#include "sunway/bigfusion_operator.hpp"

namespace {

using namespace tkmc;

const std::vector<int> kChannels{64, 128, 128, 128, 64, 1};
constexpr int kM = 32 * 16 * 16;

struct Fixture {
  Fixture() : network(kChannels) {
    Rng rng(3);
    network.initHe(rng);
    snapshot = network.foldedSnapshot();
    stack = std::make_unique<ConvStack>(snapshot);
    input.resize(static_cast<std::size_t>(kM) * 64);
    Rng in(4);
    for (float& v : input) v = static_cast<float>(in.uniform());
    output.resize(static_cast<std::size_t>(kM));
    fusion = std::make_unique<BigFusionOperator>(snapshot, grid, 32);
    fusion->loadModel();
  }

  Network network;
  Network::Snapshot snapshot;
  std::unique_ptr<ConvStack> stack;
  std::vector<float> input;
  std::vector<float> output;
  CpeGrid grid;
  std::unique_ptr<BigFusionOperator> fusion;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_NaiveConv(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state)
    f.stack->forward(ConvStack::Mode::kNaiveConv, f.input.data(), kM,
                     f.output.data());
}
BENCHMARK(BM_NaiveConv)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Matmul(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state)
    f.stack->forward(ConvStack::Mode::kMatmul, f.input.data(), kM,
                     f.output.data());
}
BENCHMARK(BM_Matmul)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_MatmulSimd(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state)
    f.stack->forward(ConvStack::Mode::kMatmulSimd, f.input.data(), kM,
                     f.output.data());
}
BENCHMARK(BM_MatmulSimd)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_FusedLayer(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state)
    f.stack->forward(ConvStack::Mode::kFusedLayer, f.input.data(), kM,
                     f.output.data());
}
BENCHMARK(BM_FusedLayer)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BigFusion(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) f.fusion->forward(f.input.data(), kM, f.output.data());
}
BENCHMARK(BM_BigFusion)->Unit(benchmark::kMillisecond)->Iterations(3);

double measureSeconds(const std::function<void()>& fn, int reps) {
  fn();  // warm-up
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) fn();
  return sw.seconds() / reps;
}

void printSummary() {
  Fixture& f = fixture();
  struct Rung {
    const char* name;
    const char* paper;
    double seconds;
  };
  const int reps = 3;
  std::vector<Rung> rungs = {
      {"base conv2d", "1.0x", measureSeconds(
                                  [&] {
                                    f.stack->forward(ConvStack::Mode::kNaiveConv,
                                                     f.input.data(), kM,
                                                     f.output.data());
                                  },
                                  reps)},
      {"conv -> matmul", "1.23x",
       measureSeconds(
           [&] {
             f.stack->forward(ConvStack::Mode::kMatmul, f.input.data(), kM,
                              f.output.data());
           },
           reps)},
      {"+ SIMD", "16x~22x",
       measureSeconds(
           [&] {
             f.stack->forward(ConvStack::Mode::kMatmulSimd, f.input.data(), kM,
                              f.output.data());
           },
           reps)},
      {"+ fusion", "33x~41x",
       measureSeconds(
           [&] {
             f.stack->forward(ConvStack::Mode::kFusedLayer, f.input.data(), kM,
                              f.output.data());
           },
           reps)},
      {"+ big-fusion", "131x~161x",
       measureSeconds(
           [&] { f.fusion->forward(f.input.data(), kM, f.output.data()); },
           reps)},
  };
  TableWriter table({"rung", "time (ms)", "speedup (this host)",
                     "speedup (paper, SW26010-pro)"});
  const double base = rungs.front().seconds;
  for (const Rung& r : rungs)
    table.addRow({r.name, TableWriter::num(r.seconds * 1e3, 2),
                  TableWriter::num(base / r.seconds, 2) + "x", r.paper});
  std::printf("\nFig. 10 — operator optimization rungs (shape 32x16x16, "
              "channels 64-128-128-128-64-1)\n");
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printSummary();
  return 0;
}
