// Fig. 8 reproduction: validation of the domain decomposition and triple
// encoding. Two engines evolve the same random Fe-Cu box with the same
// seed — the TensorKMC fast path (CET/NET/VET + vacancy cache) and the
// direct OpenKMC-style evaluation that re-reads the global lattice for
// every energy — and the isolated-Cu-atom count is compared block by
// block. The paper's criterion is that both runs give identical results.
//
// Scale note: the paper uses a 100^3 a^3 box over 1 ms; this harness runs
// a reduced box so the direct (deliberately slow) reference finishes in
// seconds. Identity is exact at any scale.

#include <cstdio>

#include "analysis/cluster_analysis.hpp"
#include "common/table_writer.hpp"
#include "kmc/direct_energy_model.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "kmc/serial_engine.hpp"
#include "tabulation/feature_table.hpp"

using namespace tkmc;

int main() {
  constexpr double kCutoff = 4.0;
  constexpr int kCells = 16;
  constexpr int kVacancies = 4;
  constexpr int kBlocks = 8;
  constexpr int kStepsPerBlock = 40;

  std::printf(
      "Fig. 8 — triple-encoding + vacancy-cache validation\n"
      "box %d^3 cells, Cu 1.34 at.%%, %d vacancies, identical seeds\n\n",
      kCells, kVacancies);

  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  Network network({64, 16, 16, 1});
  Rng initRng(99);
  network.initHe(initRng);

  auto makeState = [] {
    LatticeState s(BccLattice(kCells, kCells, kCells, 2.87));
    Rng rng(1234);
    s.randomAlloy(0.0134, kVacancies, rng);
    return s;
  };
  LatticeState fastState = makeState();
  LatticeState directState = makeState();

  NnpEnergyModel fastModel(cet, net, table, network);
  DirectEnergyModel directModel(2.87, kCutoff, network);

  KmcConfig fastCfg;
  fastCfg.seed = 4242;
  fastCfg.tEnd = 1e300;
  KmcConfig directCfg = fastCfg;
  directCfg.useVacancyCache = false;

  SerialEngine fastEngine(fastState, fastModel, cet, fastCfg);
  SerialEngine directEngine(directState, directModel, cet, directCfg);

  TableWriter out({"events", "time (s)", "isolated Cu (TET+cache)",
                   "isolated Cu (direct)", "identical"});
  bool allIdentical = true;
  for (int block = 0; block <= kBlocks; ++block) {
    if (block > 0) {
      for (int i = 0; i < kStepsPerBlock; ++i) {
        fastEngine.step();
        directEngine.step();
      }
    }
    const auto fastStats = analyzeClusters(fastState, Species::kCu);
    const auto directStats = analyzeClusters(directState, Species::kCu);
    const bool identical = fastStats.sizes == directStats.sizes &&
                           fastState == directState;
    allIdentical = allIdentical && identical;
    out.addRow({std::to_string(fastEngine.steps()),
                TableWriter::num(fastEngine.time(), 10),
                std::to_string(fastStats.isolatedCount),
                std::to_string(directStats.isolatedCount),
                identical ? "yes" : "NO"});
  }
  out.print();
  std::printf("\nresult: %s (paper: both runs give identical results)\n",
              allIdentical ? "IDENTICAL — validation passed"
                           : "MISMATCH — validation FAILED");
  std::printf("energy evaluations: fast %llu vs direct %llu\n",
              static_cast<unsigned long long>(fastEngine.energyEvaluations()),
              static_cast<unsigned long long>(directEngine.energyEvaluations()));
  return allIdentical ? 0 : 1;
}
