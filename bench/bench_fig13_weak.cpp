// Fig. 13 reproduction: weak scaling of TensorKMC up to 54.067 trillion
// atoms.
//
// Paper setup: 128 M atoms per CG, from 12,000 CGs up to 422,400 CGs
// (27,456,000 cores, 54.067 trillion atoms); wall time per cycle stays
// nearly flat. As in the Fig. 12 bench, the compute term is calibrated
// from a live kernel measurement on this host and the communication term
// follows the sublattice exchange model. A t_stop sensitivity sweep shows
// the knob the paper recommends for production runs.

#include <cstdio>

#include "common/stopwatch.hpp"
#include "common/table_writer.hpp"
#include "nnp/conv_stack.hpp"
#include "parallel/scaling_model.hpp"
#include "sunway/bigfusion_operator.hpp"
#include "sunway/feature_operator.hpp"

using namespace tkmc;

namespace {

double measureRefreshSeconds() {
  const Cet cet(2.87, kDefaultCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  Network network({64, 128, 128, 128, 64, 1});
  Rng rng(5);
  network.initHe(rng);
  const auto snapshot = network.foldedSnapshot();
  CpeGrid grid;
  FeatureOperator featureOp(net, table, grid);
  BigFusionOperator fusionOp(snapshot, grid, 32);
  fusionOp.loadModel();

  LatticeState state(BccLattice(24, 24, 24, 2.87));
  Rng arng(6);
  state.randomAlloy(0.0134, 0, arng);
  state.setSpeciesAt({24, 24, 24}, Species::kVacancy);
  const Vet vet = Vet::gather(cet, state, {24, 24, 24});
  const int m = 9 * cet.nRegion();
  std::vector<float> features;
  std::vector<float> energies(static_cast<std::size_t>(m));
  featureOp.compute(vet, kNumJumpDirections, features);
  fusionOp.forward(features.data(), m, energies.data());
  Stopwatch sw;
  const int reps = 3;
  for (int i = 0; i < reps; ++i) {
    featureOp.compute(vet, kNumJumpDirections, features);
    fusionOp.forward(features.data(), m, energies.data());
  }
  return sw.seconds() / reps;
}

}  // namespace

int main() {
  std::printf("Fig. 13 — weak scaling, 128 M atoms per CG, t_stop = 2e-8 s\n");
  std::printf("calibrating per-refresh kernel cost on this host...\n");
  ScalingParams params;
  params.secondsPerRefresh = measureRefreshSeconds();
  std::printf("measured: %.3f ms per propensity refresh\n",
              params.secondsPerRefresh * 1e3);
  const ScalingModel model(params);

  const std::vector<std::int64_t> cgs = {12000, 24000,  48000, 96000,
                                         192000, 384000, 422400};
  const auto points = model.weakScaling(1.28e8, cgs, 1e-7);
  TableWriter table({"core groups", "cores", "total atoms (T)", "compute (s)",
                     "comm (s)", "total (s)", "efficiency"});
  for (const auto& p : points)
    table.addRow(
        {std::to_string(p.coreGroups), std::to_string(p.cores),
         TableWriter::num(p.atomsPerCg * static_cast<double>(p.coreGroups) /
                              1e12,
                          3),
         TableWriter::num(p.computeSeconds, 3),
         TableWriter::num(p.commSeconds, 4),
         TableWriter::num(p.totalSeconds, 3),
         TableWriter::num(p.efficiency * 100, 1) + "%"});
  table.print();
  std::printf("paper: excellent scaling to 54.067 trillion atoms on "
              "27,456,000 cores\n");

  // t_stop sensitivity: larger synchronization intervals amortize the
  // per-cycle communication (Sec. 4.4's practical-runs remark).
  std::printf("\nt_stop sensitivity at 422,400 CGs:\n");
  TableWriter sweep({"t_stop (s)", "cycles", "comm (s)", "total (s)",
                     "efficiency vs 2e-8 baseline compute"});
  const double compute = model.computeSeconds(1.28e8, 1e-7);
  for (double tStop : {2e-8, 5e-8, 1e-7}) {
    ScalingParams p = params;
    p.tStop = tStop;
    const ScalingModel m2(p);
    const double comm = m2.commSeconds(1.28e8, 422400, 1e-7);
    sweep.addRow({TableWriter::num(tStop, 9),
                  std::to_string(static_cast<long>(1e-7 / tStop)),
                  TableWriter::num(comm, 4),
                  TableWriter::num(compute + comm, 3),
                  TableWriter::num(compute / (compute + comm) * 100, 1) + "%"});
  }
  sweep.print();
  return 0;
}
