// tkmc_shardctl: checkpoint shard-store inspector.
//
//   tkmc_shardctl ls     <ckpt_dir> [--remote <dir>]
//   tkmc_shardctl verify <ckpt_dir> [--remote <dir>] [--max-delta-chain N]
//
// `ls` prints a placement report: every local epoch (mode, shard count,
// bytes, chain verdict) and every remote epoch (committed via its
// placement map, or still in flight). `verify` additionally fetches and
// CRC-checks every object — each local shard against its manifest entry
// and each remote file against its placement row — and exits non-zero
// on any mismatch or torn committed epoch. A remote epoch without a
// placement map is "in flight" (the streamer may still be copying), not
// an error; chaos soaks run verify after the fact, when in-flight
// epochs have drained.
//
// The local store is opened WITHOUT a remote attachment on purpose:
// verify must report local damage, not quietly heal it.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "parallel/coordinated_checkpoint.hpp"
#include "parallel/remote_store.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: tkmc_shardctl <ls|verify> <ckpt_dir> [--remote <dir>]\n"
               "                     [--max-delta-chain N]\n");
}

struct Options {
  bool verify = false;
  std::string localDir;
  std::string remoteDir;
  int maxDeltaChain = 8;
};

/// Walks the local store. Returns the number of broken epochs found
/// (torn manifest/shard, or failed chain validation).
int reportLocal(const tkmc::CheckpointStore& store, bool verify) {
  int broken = 0;
  const std::vector<std::uint64_t> epochs = store.epochs();
  if (epochs.empty()) {
    std::printf("local  %s: no committed epochs\n", store.dir().c_str());
    return 0;
  }
  for (const std::uint64_t epoch : epochs) {
    try {
      const tkmc::EpochManifest manifest = store.loadManifest(epoch);
      std::uint64_t bytes = 0;
      for (const auto& entry : manifest.shards) {
        bytes += entry.bytes;
        if (verify) store.loadShard(epoch, entry);  // throws on CRC/size/parse
      }
      const bool chainOk = store.chainValid(epoch);
      std::printf("local  epoch_%" PRIu64 "  %-5s  %zu shard(s)  %8" PRIu64
                  " B  chain %s\n",
                  epoch, manifest.isDelta() ? "delta" : "full",
                  manifest.shards.size(), bytes, chainOk ? "ok" : "BROKEN");
      if (!chainOk) ++broken;
    } catch (const tkmc::IoError& e) {
      std::printf("local  epoch_%" PRIu64 "  TORN: %s\n", epoch, e.what());
      ++broken;
    }
  }
  return broken;
}

/// Walks the remote tree. Returns the number of committed remote epochs
/// that fail verification (torn placement map, or a file missing /
/// wrong size / wrong CRC against its placement row). Epochs without a
/// placement map are reported as in flight and never counted.
int reportRemote(const tkmc::RemoteShardStore& remote, bool verify) {
  int broken = 0;
  const std::vector<std::string> epochDirs = remote.listEpochs();
  if (epochDirs.empty()) {
    std::printf("remote %s: no epochs\n", remote.describe().c_str());
    return 0;
  }
  for (const std::string& epochDir : epochDirs) {
    if (!remote.stat(epochDir, tkmc::kPlacementFile)) {
      std::printf("remote %s  in flight (no placement map)\n",
                  epochDir.c_str());
      continue;
    }
    try {
      const tkmc::PlacementMap placement = tkmc::parsePlacement(
          remote.get(epochDir, tkmc::kPlacementFile),
          remote.describe() + "/" + epochDir + "/" + tkmc::kPlacementFile);
      std::uint64_t bytes = 0;
      int bad = 0;
      for (const auto& row : placement.rows) {
        bytes += row.bytes;
        if (verify) {
          std::string contents;
          try {
            contents = remote.get(epochDir, row.file);
          } catch (const tkmc::IoError&) {
            std::printf("remote %s/%s  MISSING (placement row %s)\n",
                        epochDir.c_str(), row.file.c_str(),
                        row.location.c_str());
            ++bad;
            continue;
          }
          if (contents.size() != row.bytes ||
              tkmc::crc32(contents.data(), contents.size()) != row.crc) {
            std::printf("remote %s/%s  CRC/SIZE MISMATCH (%zu B vs %" PRIu64
                        " B expected)\n",
                        epochDir.c_str(), row.file.c_str(), contents.size(),
                        row.bytes);
            ++bad;
          }
        } else if (!remote.stat(epochDir, row.file)) {
          std::printf("remote %s/%s  MISSING\n", epochDir.c_str(),
                      row.file.c_str());
          ++bad;
        }
      }
      std::printf("remote %s  committed  %zu file(s)  %8" PRIu64 " B  %s\n",
                  epochDir.c_str(), placement.rows.size(), bytes,
                  bad == 0 ? (verify ? "verified" : "present") : "BROKEN");
      if (bad > 0) ++broken;
    } catch (const tkmc::IoError& e) {
      std::printf("remote %s  TORN placement map: %s\n", epochDir.c_str(),
                  e.what());
      ++broken;
    }
  }
  return broken;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (argc < 3) {
    usage(stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "verify") {
    opt.verify = true;
  } else if (cmd != "ls") {
    std::fprintf(stderr, "tkmc_shardctl: unknown subcommand '%s'\n",
                 cmd.c_str());
    usage(stderr);
    return 2;
  }
  opt.localDir = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--remote" && i + 1 < argc) {
      opt.remoteDir = argv[++i];
    } else if (arg == "--max-delta-chain" && i + 1 < argc) {
      opt.maxDeltaChain = std::atoi(argv[++i]);
      if (opt.maxDeltaChain < 1) {
        std::fprintf(stderr, "tkmc_shardctl: --max-delta-chain needs >= 1\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "tkmc_shardctl: unknown argument '%s'\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  try {
    tkmc::CheckpointStore store(opt.localDir);
    store.setMaxDeltaChain(opt.maxDeltaChain);
    int broken = reportLocal(store, opt.verify);
    if (!opt.remoteDir.empty()) {
      const tkmc::DirRemoteStore remote(opt.remoteDir);
      broken += reportRemote(remote, opt.verify);
    }
    if (broken > 0) {
      std::printf("%s: %d broken epoch(s)\n", opt.verify ? "verify" : "ls",
                  broken);
      return 1;
    }
    std::printf("%s: all epochs sound\n", opt.verify ? "verify" : "ls");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tkmc_shardctl: %s\n", e.what());
    return 1;
  }
}
