// Blackbox post-mortem decoder.
//
// The flight recorder dumps one `blackbox_rank<R>.bin` per rank when a
// run hits a rank failure, an invariant trip, or a fatal signal (see
// src/common/telemetry/flight_recorder.hpp for the format).
//
//   tkmc_blackbox decode <file> [--tail N]
//     prints one dump, oldest to newest.
//   tkmc_blackbox merge <dir> [--tail N]
//     decodes every blackbox_rank*.bin in <dir> and prints one timeline
//     ordered by (lamport, timestamp, rank) — the Lamport stamps carry
//     the cross-rank send/receive causality, so the merged view shows
//     what each rank knew when.
//
// Exit status: 0 on success, 1 on any unreadable/corrupt dump (CI uses
// this as the decode smoke check after chaos soaks).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/telemetry/flight_recorder.hpp"

using tkmc::telemetry::BlackboxEvent;
using tkmc::telemetry::BlackboxEventType;
using tkmc::telemetry::FlightRecorder;
using tkmc::telemetry::fnv1a64;

namespace {

// Hashes the recorder may have stored in `a` (fault points and dump
// reasons), reversed for display. Unknown hashes print as hex.
const std::map<std::uint64_t, std::string>& knownHashes() {
  static const std::map<std::uint64_t, std::string> kKnown = [] {
    std::map<std::uint64_t, std::string> m;
    for (const tkmc::FaultPointInfo& p : tkmc::faultPointCatalog())
      m[fnv1a64(p.name)] = p.name;
    for (const char* reason :
         {"rank_failure", "invariant_trip", "fatal_signal", "on_demand"})
      m[fnv1a64(reason)] = reason;
    return m;
  }();
  return kKnown;
}

std::string hashName(std::uint64_t h) {
  const auto it = knownHashes().find(h);
  if (it != knownHashes().end()) return it->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void printEvent(const BlackboxEvent& e) {
  const auto type = static_cast<BlackboxEventType>(e.type);
  std::printf("  %8llu  %10llu us  rank %2d  %-18s",
              static_cast<unsigned long long>(e.lamport),
              static_cast<unsigned long long>(e.tsMicros), e.rank,
              FlightRecorder::typeName(type));
  switch (type) {
    case BlackboxEventType::kFaultInjected:
      std::printf("  point=%s fire#%llu", hashName(e.a).c_str(),
                  static_cast<unsigned long long>(e.b));
      break;
    case BlackboxEventType::kDump:
      std::printf("  reason=%s", hashName(e.a).c_str());
      break;
    default:
      std::printf("  tag=%d a=%llu b=%llu", e.tag,
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
  }
  std::printf("\n");
}

/// Per-ring sanity: Lamport stamps must be strictly increasing within a
/// single rank's dump (each record ticks the clock). A violation means
/// the dump is interleaved or the format drifted.
bool lamportMonotone(const FlightRecorder::Dump& dump) {
  for (std::size_t i = 1; i < dump.events.size(); ++i)
    if (dump.events[i].lamport <= dump.events[i - 1].lamport) return false;
  return true;
}

int decodeOne(const std::string& path, std::size_t tail) {
  FlightRecorder::Dump dump;
  try {
    dump = FlightRecorder::readDump(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("%s: rank %d, %zu event(s) kept of %llu recorded "
              "(ring capacity %llu)\n",
              path.c_str(), dump.rank, dump.events.size(),
              static_cast<unsigned long long>(dump.totalRecorded),
              static_cast<unsigned long long>(dump.capacity));
  if (!lamportMonotone(dump)) {
    std::fprintf(stderr,
                 "error: %s: Lamport stamps are not strictly increasing\n",
                 path.c_str());
    return 1;
  }
  const std::size_t skip =
      tail > 0 && dump.events.size() > tail ? dump.events.size() - tail : 0;
  if (skip > 0) std::printf("  ... %zu earlier event(s) elided\n", skip);
  for (std::size_t i = skip; i < dump.events.size(); ++i)
    printEvent(dump.events[i]);
  return 0;
}

int mergeDir(const std::string& dir, std::size_t tail) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("blackbox_rank", 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".bin")
      files.push_back(entry.path().string());
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (files.empty()) {
    std::fprintf(stderr, "error: no blackbox_rank*.bin files in %s\n",
                 dir.c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  std::vector<BlackboxEvent> merged;
  for (const std::string& path : files) {
    FlightRecorder::Dump dump;
    try {
      dump = FlightRecorder::readDump(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    if (!lamportMonotone(dump)) {
      std::fprintf(stderr,
                   "error: %s: Lamport stamps are not strictly increasing\n",
                   path.c_str());
      return 1;
    }
    merged.insert(merged.end(), dump.events.begin(), dump.events.end());
  }
  // Lamport first (causal order across ranks), wall time and rank as
  // tie-breakers for a deterministic listing.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const BlackboxEvent& x, const BlackboxEvent& y) {
                     if (x.lamport != y.lamport) return x.lamport < y.lamport;
                     if (x.tsMicros != y.tsMicros)
                       return x.tsMicros < y.tsMicros;
                     return x.rank < y.rank;
                   });
  std::printf("merged timeline: %zu event(s) from %zu rank dump(s) in %s\n",
              merged.size(), files.size(), dir.c_str());
  const std::size_t skip =
      tail > 0 && merged.size() > tail ? merged.size() - tail : 0;
  if (skip > 0) std::printf("  ... %zu earlier event(s) elided\n", skip);
  for (std::size_t i = skip; i < merged.size(); ++i) printEvent(merged[i]);
  return 0;
}

void printUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s decode <dump.bin> [--tail N]\n"
               "       %s merge <dir> [--tail N]\n\n"
               "Decodes flight-recorder blackbox dumps written by the\n"
               "tensorkmc driver (blackbox_rank<R>.bin). `merge` combines\n"
               "every rank dump in <dir> into one causally ordered\n"
               "timeline via the recorded Lamport stamps.\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    printUsage(argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  const std::string target = argv[2];
  std::size_t tail = 0;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tail") == 0 && i + 1 < argc) {
      tail = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else {
      printUsage(argv[0]);
      return 2;
    }
  }
  if (command == "decode") return decodeOne(target, tail);
  if (command == "merge") return mergeDir(target, tail);
  printUsage(argv[0]);
  return 2;
}
