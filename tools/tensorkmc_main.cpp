// TensorKMC command-line driver.
//
// Mirrors the paper artifact's invocation (`tensorkmc -in input`): reads
// a key-value input deck, builds the simulation, runs to the configured
// horizon with periodic progress reports, and optionally dumps an
// extended-XYZ trajectory of solutes and vacancies.
//
// `mode parallel` decks run the Shim-Amar synchronous-sublattice engine
// instead of the serial one. With `--telemetry <dir>` the run records
// metrics and tracing spans and writes `<dir>/trace.json` (Chrome
// trace-event format, loadable in chrome://tracing or Perfetto) plus
// `<dir>/metrics.json` (flat snapshot) on exit.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <memory>

#include "analysis/xyz_writer.hpp"
#include "common/fault_injection.hpp"
#include "common/stopwatch.hpp"
#include "common/telemetry/telemetry.hpp"
#include "core/input_deck.hpp"
#include "kmc/checkpoint.hpp"
#include "parallel/parallel_engine.hpp"
#include "sunway/sunway_energy_model.hpp"

using namespace tkmc;

namespace {

void printUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -in <deck> [--telemetry <dir>] [--blackbox-dump]\n"
               "          [--inject <point>=<spec>]... [--inject-seed <n>]\n"
               "       %s --help\n\n"
               "Runs a TensorKMC AKMC simulation described by a key-value\n"
               "input deck (see tools/sample_input.tkmc for the format).\n"
               "--telemetry records metrics + tracing spans and writes\n"
               "<dir>/trace.json and <dir>/metrics.json on exit.\n"
               "The per-rank flight recorder is always on; it dumps\n"
               "<dir>/blackbox_rank<R>.bin on rank failures, invariant\n"
               "trips, and fatal signals (decode with tkmc_blackbox).\n"
               "--blackbox-dump also writes the dumps on normal exit.\n"
               "--inject arms a fault point for chaos drills; <spec> is\n"
               "p<prob> (per-hit probability), once, or a comma list of\n"
               "1-based hit ordinals, e.g. --inject comm.rank_kill=40 or\n"
               "--inject comm.drop=p0.01. `--inject list` prints every\n"
               "registered fault point and exits. --inject-seed picks\n"
               "the injector's RNG stream (default 0).\n",
               argv0, argv0);
}

// Fatal-signal path: flush the flight recorder, then let the default
// handler produce the usual core/termination. Only async-signal-unsafe
// in ways that no longer matter — the process is already dying.
void blackboxSignalHandler(int sig) {
  telemetry::flightRecorder().dumpIncident("fatal_signal");
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void installBlackboxSignalHandlers() {
  for (const int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGBUS, SIGILL})
    std::signal(sig, blackboxSignalHandler);
}

/// Parses one --inject argument ("point=spec") into `injector`.
void armInjection(FaultInjector& injector, const std::string& arg) {
  const std::size_t eq = arg.find('=');
  require(eq != std::string::npos && eq > 0 && eq + 1 < arg.size(),
          "--inject needs <point>=<spec>, got '" + arg + "'");
  const std::string point = arg.substr(0, eq);
  const std::string spec = arg.substr(eq + 1);
  // An unknown point name must fail loudly: a typo that silently arms
  // nothing turns a chaos drill into a false green.
  bool known = false;
  for (const FaultPointInfo& info : faultPointCatalog())
    if (point == info.name) {
      known = true;
      break;
    }
  require(known, "--inject: unknown fault point '" + point +
                     "' (run --inject list for the catalog)");
  if (spec == "once") {
    injector.armOnce(point);
  } else if (spec.size() > 1 && spec[0] == 'p') {
    injector.armProbability(point, std::stod(spec.substr(1)));
  } else {
    std::vector<std::uint64_t> ordinals;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ','))
      ordinals.push_back(std::stoull(item));
    require(!ordinals.empty(), "--inject " + point + ": empty schedule");
    injector.armSchedule(point, ordinals);
  }
}

void report(const Simulation& sim, const Stopwatch& wall) {
  const ClusterStats stats = analyzeClusters(sim.state(), Species::kCu);
  const double rate = wall.seconds() > 0
                          ? static_cast<double>(sim.steps()) / wall.seconds()
                          : 0.0;
  std::printf("events %10llu | t = %.4e s | propensity %.3e 1/s | "
              "isolated Cu %lld | max cluster %lld | %.0f events/s\n",
              static_cast<unsigned long long>(sim.steps()), sim.time(),
              const_cast<Simulation&>(sim).engine().totalPropensity(),
              static_cast<long long>(stats.isolatedCount),
              static_cast<long long>(stats.maxSize), rate);
}

void reportParallel(const ParallelEngine& engine, const Stopwatch& wall) {
  const double rate =
      wall.seconds() > 0
          ? static_cast<double>(engine.totalEvents()) / wall.seconds()
          : 0.0;
  std::printf("cycle %8llu | t = %.4e s | events %10llu | discarded %llu | "
              "%.0f events/s\n",
              static_cast<unsigned long long>(engine.cycles()), engine.time(),
              static_cast<unsigned long long>(engine.totalEvents()),
              static_cast<unsigned long long>(engine.discardedEvents()), rate);
}

void printRecoverySummary(const RecoveryStats& rs, bool usedCheckpointBackup) {
  std::printf("fault tolerance: %llu rollbacks, %llu invariant trips, "
              "%llu comm errors, %llu ghost retries, %llu fold retries, "
              "%llu rank failures (%llu epochs rolled back)\n",
              static_cast<unsigned long long>(rs.rollbacks),
              static_cast<unsigned long long>(rs.invariantTrips),
              static_cast<unsigned long long>(rs.commErrors),
              static_cast<unsigned long long>(rs.ghostRetries),
              static_cast<unsigned long long>(rs.foldRetries),
              static_cast<unsigned long long>(rs.rankFailures),
              static_cast<unsigned long long>(rs.epochsRolledBack));
  if (usedCheckpointBackup)
    std::printf("fault tolerance: checkpoint primary was unreadable; the "
                ".bak replica served the resume\n");
}

int runSerial(const InputDeck& deck, Simulation& sim,
              bool usedCheckpointBackup) {
  std::ofstream dump;
  if (!deck.dumpPath().empty()) {
    dump.open(deck.dumpPath());
    if (!dump.good()) {
      std::fprintf(stderr, "error: cannot open dump file %s\n",
                   deck.dumpPath().c_str());
      return 1;
    }
    XyzWriter::writeFrame(dump, sim.state(), "time=0");
  }

  Stopwatch wall;
  std::uint64_t executed = 0;
  std::uint64_t sinceReport = 0;
  std::uint64_t sinceDump = 0;
  std::uint64_t sinceCheckpoint = 0;
  report(sim, wall);
  while (sim.time() < deck.tEnd() && executed < deck.maxSteps()) {
    if (sim.run(deck.tEnd(), 1) == 0) {
      std::printf("no executable events left; stopping\n");
      break;
    }
    ++executed;
    if (++sinceReport >= deck.reportInterval()) {
      report(sim, wall);
      sim.engine().publishTelemetry();
      sinceReport = 0;
    }
    if (dump.is_open() && ++sinceDump >= deck.dumpInterval()) {
      XyzWriter::writeFrame(dump, sim.state(),
                            "time=" + std::to_string(sim.time()));
      sinceDump = 0;
    }
    if (!deck.checkpointWritePath().empty() &&
        ++sinceCheckpoint >= deck.checkpointInterval()) {
      sim.writeCheckpoint(deck.checkpointWritePath());
      sinceCheckpoint = 0;
    }
  }
  if (!deck.checkpointWritePath().empty())
    sim.writeCheckpoint(deck.checkpointWritePath());
  report(sim, wall);
  if (dump.is_open())
    XyzWriter::writeFrame(dump, sim.state(),
                          "time=" + std::to_string(sim.time()) + " final");

  sim.engine().publishTelemetry();
  sim.publishMemoryTelemetry();
  // Serial runs have no rollback machinery; the recovery line still
  // appears so every summary names its fault-tolerance outcome.
  printRecoverySummary(RecoveryStats{}, usedCheckpointBackup);
  std::printf("done: %llu events, %.4e simulated seconds, %.2f s wall "
              "(%.0f events/s)\n",
              static_cast<unsigned long long>(executed), sim.time(),
              wall.seconds(),
              wall.seconds() > 0
                  ? static_cast<double>(executed) / wall.seconds()
                  : 0.0);
  return 0;
}

int runParallel(const InputDeck& deck, Simulation& sim) {
  ParallelConfig pc;
  pc.temperature = deck.simulationConfig().temperature;
  pc.tStop = deck.tStop();
  pc.seed = deck.simulationConfig().seed ^ 0x9a11e1ULL;
  pc.rankGrid = deck.rankGrid();
  pc.catalog = deck.simulationConfig().eventCatalog;
  pc.threaded = deck.threaded();
  pc.enableRecovery = deck.recovery();
  pc.checkpointDir = deck.checkpointDir();
  pc.checkpointCadence = deck.checkpointCadence();
  pc.checkpointMode = deck.deltaCheckpoints() ? CheckpointMode::kDelta
                                              : CheckpointMode::kFull;
  pc.maxDeltaChain = deck.maxDeltaChain();
  pc.spareRanks = deck.spareRanks();
  pc.heartbeatIntervalMs = deck.heartbeatIntervalMs();
  pc.heartbeatTimeoutMs = deck.heartbeatTimeoutMs();
  pc.remoteDir = deck.remoteDir();
  pc.remoteRateMbps = deck.remoteRateMbps();
  pc.remoteMaxLagEpochs = deck.remoteMaxLagEpochs();
  pc.remoteRetries = deck.remoteRetries();

  // The NNP backend runs through the simulated CPE grid here — the
  // paper's production pipeline — so operator traffic and LDM
  // high-water show up in the telemetry of a normal parallel run.
  std::unique_ptr<SunwayEnergyModel> sunwayModel;
  EnergyModel* model = &sim.model();
  if (deck.simulationConfig().potential == SimulationConfig::Potential::kNnp) {
    sunwayModel = std::make_unique<SunwayEnergyModel>(
        sim.cet(), sim.net(), *sim.featureTable(), *sim.network());
    model = sunwayModel.get();
    std::printf("parallel energies on the simulated CPE grid "
                "(big-fusion backend)\n");
  }

  // `resume on`: restart from the newest complete epoch in
  // checkpoint_dir. With a remote_dir configured the probe store heals
  // epochs whose local shards are missing or torn from the remote copy
  // (placement-map CRC-verified), so a run whose node died — local
  // shards and all — restarts from the streamed copy.
  std::unique_ptr<ParallelEngine> resumedEngine;
  if (deck.resume() && !pc.checkpointDir.empty()) {
    CheckpointStore probe(pc.checkpointDir);
    probe.setMaxDeltaChain(pc.maxDeltaChain);
    std::shared_ptr<RemoteShardStore> probeRemote;
    if (!pc.remoteDir.empty()) {
      probeRemote = std::make_shared<DirRemoteStore>(pc.remoteDir);
      probe.attachRemote(probeRemote);
    }
    const std::optional<std::uint64_t> epoch = probe.newestCompleteEpoch();
    if (epoch) {
      resumedEngine = std::make_unique<ParallelEngine>(*model, sim.cet(), pc,
                                                       probe, *epoch);
      if (probe.remoteHeals() > 0)
        std::printf("remote store: healed %llu epoch(s) from %s\n",
                    static_cast<unsigned long long>(probe.remoteHeals()),
                    pc.remoteDir.c_str());
      std::printf("resumed from checkpoint epoch %llu at t = %.4e s\n",
                  static_cast<unsigned long long>(*epoch),
                  resumedEngine->time());
    } else {
      std::printf("resume requested but %s has no complete epoch; "
                  "starting fresh\n",
                  pc.checkpointDir.c_str());
    }
  }
  std::unique_ptr<ParallelEngine> freshEngine;
  if (!resumedEngine)
    freshEngine =
        std::make_unique<ParallelEngine>(sim.state(), *model, sim.cet(), pc);
  ParallelEngine& engine = resumedEngine ? *resumedEngine : *freshEngine;
  std::printf("parallel mode: %d ranks (%d x %d x %d), t_stop %.2e s, "
              "recovery %s\n",
              engine.rankCount(), pc.rankGrid.x, pc.rankGrid.y, pc.rankGrid.z,
              pc.tStop, pc.enableRecovery ? "on" : "off");
  if (!pc.checkpointDir.empty())
    std::printf("coordinated checkpoints: %s, every %d cycle(s), %s mode%s\n",
                pc.checkpointDir.c_str(), pc.checkpointCadence,
                pc.checkpointMode == CheckpointMode::kDelta ? "delta" : "full",
                pc.checkpointMode == CheckpointMode::kDelta
                    ? (", chain <= " + std::to_string(pc.maxDeltaChain))
                          .c_str()
                    : "");
  if (pc.heartbeatTimeoutMs > 0)
    std::printf("fail-stop detector: %.1f ms lease, %.1f ms poll interval, "
                "%d spare rank(s)\n",
                pc.heartbeatTimeoutMs, pc.heartbeatIntervalMs, pc.spareRanks);
  if (!pc.checkpointDir.empty() && !pc.remoteDir.empty())
    std::printf("remote shard store: %s (rate %s MB/s, lag cap %d epoch(s), "
                "%d put attempt(s) per object)\n",
                pc.remoteDir.c_str(),
                pc.remoteRateMbps > 0
                    ? std::to_string(pc.remoteRateMbps).c_str()
                    : "unlimited",
                pc.remoteMaxLagEpochs, pc.remoteRetries);

  Stopwatch wall;
  std::uint64_t sinceReport = 0;
  reportParallel(engine, wall);
  while (engine.time() < deck.tEnd()) {
    engine.runCycle();
    if (++sinceReport >= deck.reportInterval()) {
      reportParallel(engine, wall);
      sinceReport = 0;
    }
  }
  reportParallel(engine, wall);
  if (engine.recoveryStats().rankFailures > 0)
    std::printf("survived %llu rank fail-stop(s): now %d ranks "
                "(%d x %d x %d), resumed from epoch %llu, %llu grow "
                "recover(ies), %d spare(s) left\n",
                static_cast<unsigned long long>(
                    engine.recoveryStats().rankFailures),
                engine.comm().aliveCount(), engine.rankGrid().x,
                engine.rankGrid().y, engine.rankGrid().z,
                static_cast<unsigned long long>(engine.lastRecoveryEpoch()),
                static_cast<unsigned long long>(
                    engine.recoveryStats().growRecoveries),
                engine.spareRanksRemaining());
  if (engine.shardStreamer() != nullptr) {
    // Flush before reporting so the numbers cover the whole run (the
    // destructor would drain anyway, but after the summary prints).
    engine.shardStreamer()->drain();
    std::printf("remote streaming: %llu epoch(s) streamed, %llu retr(ies), "
                "%llu given up\n",
                static_cast<unsigned long long>(
                    engine.shardStreamer()->epochsStreamed()),
                static_cast<unsigned long long>(
                    engine.shardStreamer()->retries()),
                static_cast<unsigned long long>(
                    engine.shardStreamer()->gaveUp()));
  }
  engine.publishTelemetry();
  // The facade's serial engine built the initial propensity state
  // through the vacancy cache; fold its stats (and the operator traffic
  // accumulated on the CPE grid) into the same snapshot.
  sim.engine().publishTelemetry();
  if (sunwayModel) sunwayModel->collectTraffic();
  sim.publishMemoryTelemetry();
  printRecoverySummary(engine.recoveryStats(), false);
  std::printf("done: %llu events over %llu cycles, %.4e simulated seconds, "
              "%.2f s wall\n",
              static_cast<unsigned long long>(engine.totalEvents()),
              static_cast<unsigned long long>(engine.cycles()), engine.time(),
              wall.seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--help") == 0) {
    printUsage(argv[0]);
    return 0;
  }
  std::string deckPath;
  std::string telemetryDir;
  std::vector<std::string> injections;
  std::uint64_t injectSeed = 0;
  bool blackboxOnExit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-in") == 0 && i + 1 < argc) {
      deckPath = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
      telemetryDir = argv[++i];
    } else if (std::strcmp(argv[i], "--blackbox-dump") == 0) {
      blackboxOnExit = true;
    } else if (std::strcmp(argv[i], "--inject") == 0 && i + 1 < argc) {
      if (std::strcmp(argv[i + 1], "list") == 0) {
        std::printf("registered fault-injection points:\n");
        for (const FaultPointInfo& point : faultPointCatalog())
          std::printf("  %-32s %s\n", point.name, point.where);
        return 0;
      }
      injections.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--inject-seed") == 0 && i + 1 < argc) {
      injectSeed = std::stoull(argv[++i]);
    } else {
      printUsage(argv[0]);
      return 2;
    }
  }
  if (deckPath.empty()) {
    printUsage(argv[0]);
    return 2;
  }

  try {
    const InputDeck deck = InputDeck::parseFile(deckPath);
    const SimulationConfig config = deck.simulationConfig();
    std::printf("TensorKMC/1.0 — input deck: %s\n", deckPath.c_str());
    std::printf("box %d^3 cells, r_cut %.2f A, %s potential, T = %.0f K\n",
                config.cells, config.cutoff,
                config.potential == SimulationConfig::Potential::kNnp ? "NNP"
                                                                      : "EAM",
                config.temperature);
    if (config.eventCatalog.name != "vacancy_hop")
      std::printf("event catalog: %s (trap_fraction %.3g, trap_binding "
                  "%.3g eV, sink_planes %d)\n",
                  config.eventCatalog.name.c_str(),
                  config.eventCatalog.trapFraction,
                  config.eventCatalog.trapBinding,
                  config.eventCatalog.sinkPlanes);

    if (!telemetryDir.empty()) {
      telemetry::setEnabled(true);
      std::printf("telemetry: recording to %s\n", telemetryDir.c_str());
    }
    // Blackbox dumps land next to the telemetry output (or in a default
    // directory without --telemetry) when an incident fires mid-run.
    telemetry::flightRecorder().setDumpDir(
        telemetryDir.empty() ? "tkmc_blackbox" : telemetryDir);
    installBlackboxSignalHandlers();

    FaultInjector injector(injectSeed);
    std::unique_ptr<FaultScope> faultScope;
    if (!injections.empty()) {
      for (const std::string& arg : injections) armInjection(injector, arg);
      faultScope = std::make_unique<FaultScope>(injector);
      std::printf("fault injection: %zu point(s) armed, seed %llu\n",
                  injections.size(),
                  static_cast<unsigned long long>(injectSeed));
    }

    Stopwatch setup;
    Simulation sim(config);
    bool usedCheckpointBackup = false;
    if (!deck.checkpointReadPath().empty()) {
      usedCheckpointBackup =
          sim.restoreCheckpointFromFile(deck.checkpointReadPath());
      if (usedCheckpointBackup)
        std::fprintf(stderr,
                     "warning: %s was unreadable; resumed from the .bak "
                     "replica\n",
                     deck.checkpointReadPath().c_str());
      std::printf("resumed from %s at t = %.4e s (%llu events)\n",
                  deck.checkpointReadPath().c_str(), sim.time(),
                  static_cast<unsigned long long>(sim.steps()));
    }
    std::printf("setup: %lld sites, %lld Cu, %lld vacancies (%.2f s)\n",
                static_cast<long long>(sim.state().lattice().siteCount()),
                static_cast<long long>(sim.state().countSpecies(Species::kCu)),
                static_cast<long long>(
                    sim.state().countSpecies(Species::kVacancy)),
                setup.seconds());

    const int status = deck.parallelMode()
                           ? runParallel(deck, sim)
                           : runSerial(deck, sim, usedCheckpointBackup);
    if (faultScope) {
      for (const FaultInjector::PointReport& row : injector.report())
        std::printf("fault injection: %s fired %llu of %llu hit(s)\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.fires),
                    static_cast<unsigned long long>(row.hits));
    }
    if (!telemetryDir.empty()) {
      telemetry::writeAll(telemetryDir);
      std::printf("telemetry: wrote %s/trace.json (%zu events, %llu dropped) "
                  "and %s/metrics.json\n",
                  telemetryDir.c_str(), telemetry::tracer().eventCount(),
                  static_cast<unsigned long long>(
                      telemetry::tracer().dropped()),
                  telemetryDir.c_str());
    }
    if (blackboxOnExit) {
      const int dumped = telemetry::flightRecorder().dumpAll();
      std::printf("blackbox: wrote %d dump(s) to %s\n", dumped,
                  telemetry::flightRecorder().dumpDir().c_str());
    }
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
