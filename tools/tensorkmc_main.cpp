// TensorKMC command-line driver.
//
// Mirrors the paper artifact's invocation (`tensorkmc -in input`): reads
// a key-value input deck, builds the simulation, runs to the configured
// horizon with periodic progress reports, and optionally dumps an
// extended-XYZ trajectory of solutes and vacancies.

#include <cstdio>
#include <cstring>
#include <fstream>

#include "analysis/xyz_writer.hpp"
#include "common/stopwatch.hpp"
#include "core/input_deck.hpp"
#include "kmc/checkpoint.hpp"

using namespace tkmc;

namespace {

void printUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -in <deck>\n"
               "       %s --help\n\n"
               "Runs a TensorKMC AKMC simulation described by a key-value\n"
               "input deck (see tools/sample_input.tkmc for the format).\n",
               argv0, argv0);
}

void report(const Simulation& sim) {
  const ClusterStats stats = analyzeClusters(sim.state(), Species::kCu);
  std::printf("events %10llu | t = %.4e s | propensity %.3e 1/s | "
              "isolated Cu %lld | max cluster %lld\n",
              static_cast<unsigned long long>(sim.steps()), sim.time(),
              const_cast<Simulation&>(sim).engine().totalPropensity(),
              static_cast<long long>(stats.isolatedCount),
              static_cast<long long>(stats.maxSize));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--help") == 0) {
    printUsage(argv[0]);
    return 0;
  }
  if (argc != 3 || std::strcmp(argv[1], "-in") != 0) {
    printUsage(argv[0]);
    return 2;
  }

  try {
    const InputDeck deck = InputDeck::parseFile(argv[2]);
    const SimulationConfig config = deck.simulationConfig();
    std::printf("TensorKMC/1.0 — input deck: %s\n", argv[2]);
    std::printf("box %d^3 cells, r_cut %.2f A, %s potential, T = %.0f K\n",
                config.cells, config.cutoff,
                config.potential == SimulationConfig::Potential::kNnp ? "NNP"
                                                                      : "EAM",
                config.temperature);

    Stopwatch setup;
    Simulation sim(config);
    if (!deck.checkpointReadPath().empty()) {
      const bool usedBackup =
          sim.restoreCheckpointFromFile(deck.checkpointReadPath());
      if (usedBackup)
        std::fprintf(stderr,
                     "warning: %s was unreadable; resumed from the .bak "
                     "replica\n",
                     deck.checkpointReadPath().c_str());
      std::printf("resumed from %s at t = %.4e s (%llu events)\n",
                  deck.checkpointReadPath().c_str(), sim.time(),
                  static_cast<unsigned long long>(sim.steps()));
    }
    std::printf("setup: %lld sites, %lld Cu, %lld vacancies (%.2f s)\n",
                static_cast<long long>(sim.state().lattice().siteCount()),
                static_cast<long long>(sim.state().countSpecies(Species::kCu)),
                static_cast<long long>(
                    sim.state().countSpecies(Species::kVacancy)),
                setup.seconds());

    std::ofstream dump;
    if (!deck.dumpPath().empty()) {
      dump.open(deck.dumpPath());
      if (!dump.good()) {
        std::fprintf(stderr, "error: cannot open dump file %s\n",
                     deck.dumpPath().c_str());
        return 1;
      }
      XyzWriter::writeFrame(dump, sim.state(), "time=0");
    }

    Stopwatch wall;
    std::uint64_t executed = 0;
    std::uint64_t sinceReport = 0;
    std::uint64_t sinceDump = 0;
    std::uint64_t sinceCheckpoint = 0;
    report(sim);
    while (sim.time() < deck.tEnd() && executed < deck.maxSteps()) {
      if (sim.run(deck.tEnd(), 1) == 0) {
        std::printf("no executable events left; stopping\n");
        break;
      }
      ++executed;
      if (++sinceReport >= deck.reportInterval()) {
        report(sim);
        sinceReport = 0;
      }
      if (dump.is_open() && ++sinceDump >= deck.dumpInterval()) {
        XyzWriter::writeFrame(dump, sim.state(),
                              "time=" + std::to_string(sim.time()));
        sinceDump = 0;
      }
      if (!deck.checkpointWritePath().empty() &&
          ++sinceCheckpoint >= deck.checkpointInterval()) {
        sim.writeCheckpoint(deck.checkpointWritePath());
        sinceCheckpoint = 0;
      }
    }
    if (!deck.checkpointWritePath().empty())
      sim.writeCheckpoint(deck.checkpointWritePath());
    report(sim);
    if (dump.is_open())
      XyzWriter::writeFrame(dump, sim.state(),
                            "time=" + std::to_string(sim.time()) + " final");

    std::printf("done: %llu events, %.4e simulated seconds, %.2f s wall "
                "(%.0f events/s)\n",
                static_cast<unsigned long long>(executed), sim.time(),
                wall.seconds(),
                wall.seconds() > 0 ? static_cast<double>(executed) / wall.seconds()
                                   : 0.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
