// Parallel AKMC demonstration: domain decomposition + the Shim-Amar
// synchronous sublattice schedule (paper Sec. 2.2 / Fig. 2) on the
// in-process message-passing runtime.
//
// Eight simulated ranks (2 x 2 x 2) evolve one Fe-Cu box. Each cycle
// activates one octant per rank for t_stop, folds boundary hops back to
// their owners, and re-broadcasts ghost shells. The demo prints per-cycle
// progress and verifies after every cycle that no ghost disagrees with
// its owner — the invariant that makes the schedule conflict-free.

#include <cstdio>

#include "analysis/cluster_analysis.hpp"
#include "kmc/eam_energy_model.hpp"
#include "parallel/parallel_engine.hpp"

using namespace tkmc;

int main() {
  constexpr double kCutoff = 4.0;
  constexpr int kCells = 20;

  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const EamPotential eam(kCutoff);
  EamEnergyModel model(cet, net, eam);

  BccLattice lattice(kCells, kCells, kCells, 2.87);
  LatticeState initial(lattice);
  Rng rng(7);
  initial.randomAlloy(0.0134, 8, rng);

  ParallelConfig config;
  config.rankGrid = {2, 2, 2};
  config.tStop = 5e-8;
  config.seed = 404;

  ParallelEngine engine(initial, model, cet, config);
  std::printf("parallel AKMC: %d ranks, %d^3 cells, ghost shell %d cells, "
              "t_stop = %.1e s\n\n",
              engine.rankCount(), kCells, requiredGhostCells(cet),
              config.tStop);
  std::printf("%6s %8s %12s %10s %12s %14s %8s\n", "cycle", "sector",
              "time (s)", "events", "vacancies", "comm bytes", "ghosts");

  for (int cycle = 0; cycle < 16; ++cycle) {
    const int sector = static_cast<int>(engine.cycles() % 8);
    engine.runCycle();
    std::printf("%6llu %8d %12.3e %10llu %12lld %14llu %8s\n",
                static_cast<unsigned long long>(engine.cycles()), sector,
                engine.time(),
                static_cast<unsigned long long>(engine.totalEvents()),
                static_cast<long long>(engine.vacancyCount()),
                static_cast<unsigned long long>(engine.comm().totalBytesSent()),
                engine.ghostsConsistent() ? "ok" : "BROKEN");
  }

  const LatticeState global = engine.assembleGlobalState();
  const auto stats = analyzeClusters(global, Species::kCu);
  std::printf("\nfinal assembled state: %lld Cu atoms, %lld vacancies, "
              "%lld isolated Cu, largest cluster %lld\n",
              static_cast<long long>(stats.totalAtoms),
              static_cast<long long>(global.countSpecies(Species::kVacancy)),
              static_cast<long long>(stats.isolatedCount),
              static_cast<long long>(stats.maxSize));
  std::printf("discarded window-crossing events: %llu (Shim-Amar rule)\n",
              static_cast<unsigned long long>(engine.discardedEvents()));
  return 0;
}
