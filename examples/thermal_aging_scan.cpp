// Temperature scan of vacancy kinetics in Fe-Cu.
//
// AKMC's defining capability (paper Sec. 1) is reaching long time scales:
// the residence-time algorithm makes the simulated time per event scale
// with exp(E_a / k_B T), so a 473 K run covers orders of magnitude more
// physical time per hop than a 773 K run. This scan measures, per
// temperature: the total propensity, the mean time step, the simulated
// time after a fixed event budget, and the Cu microstructure response.

#include <cstdio>

#include "core/simulation.hpp"

int main() {
  std::printf("Thermal aging scan — Fe-1.34at.%%Cu, 3 vacancies, fixed "
              "2000-event budget\n\n");
  std::printf("%8s %14s %14s %14s %12s %10s\n", "T (K)", "propensity (1/s)",
              "mean dt (s)", "sim time (s)", "isolated Cu", "max size");

  for (double temperature : {473.0, 573.0, 673.0, 773.0}) {
    tkmc::SimulationConfig config;
    config.cells = 12;
    config.cutoff = 4.0;
    config.cuFraction = 0.0134;
    config.vacancyCount = 3;
    config.temperature = temperature;
    config.potential = tkmc::SimulationConfig::Potential::kEam;
    config.seed = 99;  // same alloy in every run; only T differs

    tkmc::Simulation sim(config);
    const std::uint64_t executed = sim.run(1e300, 2000);
    const auto stats = sim.cuClusters();
    std::printf("%8.0f %14.4e %14.4e %14.4e %12lld %10lld\n", temperature,
                sim.engine().totalPropensity(),
                executed > 0 ? sim.time() / static_cast<double>(executed) : 0.0,
                sim.time(), static_cast<long long>(stats.isolatedCount),
                static_cast<long long>(stats.maxSize));
  }

  std::printf("\nexpected trend: propensity rises ~exp(-E_a/kT) with T; the\n"
              "same event budget therefore spans far more physical time at\n"
              "low temperature — the scale bridge KMC provides over MD.\n");
  return 0;
}
