// Cu precipitation in a thermally aged Fe-Cu alloy (paper Sec. 5 /
// Fig. 14, at workstation scale).
//
// The paper evolves 2.5e8 atoms at 573 K for one second and observes Cu
// cluster precipitation: isolated Cu atoms are consumed, the largest
// cluster grows to ~40 atoms, and the cluster number density stabilizes
// near 1.71e26 m^-3. This example reproduces the *mechanism* in a box a
// workstation can evolve: vacancy-mediated Cu transport with a demixing
// alloy drives isolated-Cu depletion and cluster growth. A slightly
// Cu-rich matrix and extra vacancies accelerate the kinetics so the
// trend is visible within ~10^4 events.

#include <cstdio>

#include "core/simulation.hpp"

int main() {
  tkmc::SimulationConfig config;
  config.cells = 16;
  config.cutoff = 4.0;
  config.cuFraction = 0.05;    // enriched vs 1.34 at.% to shorten the demo
  config.vacancyCount = 8;     // elevated vacancy population (irradiation)
  config.temperature = 573.0;
  config.potential = tkmc::SimulationConfig::Potential::kEam;
  config.seed = 14;

  tkmc::Simulation sim(config);
  const double a = config.latticeConstant;
  const double volumeA3 = config.cells * a * config.cells * a *
                          config.cells * a;

  std::printf("Cu precipitation, %d^3 cells, %.1f at.%% Cu, %d vacancies, "
              "573 K\n\n",
              config.cells, config.cuFraction * 100, config.vacancyCount);
  std::printf("%10s %14s %12s %12s %12s %16s\n", "events", "time (s)",
              "isolated Cu", "clusters>=2", "max size", "density (1/m^3)");

  const auto report = [&] {
    const auto stats = sim.cuClusters();
    std::printf("%10llu %14.4e %12lld %12lld %12lld %16.3e\n",
                static_cast<unsigned long long>(sim.steps()), sim.time(),
                static_cast<long long>(stats.isolatedCount),
                static_cast<long long>(stats.clusterCount),
                static_cast<long long>(stats.maxSize),
                stats.numberDensity(volumeA3));
  };

  report();
  const auto initialIsolated = sim.cuClusters().isolatedCount;
  for (int block = 0; block < 10; ++block) {
    sim.run(1e300, 1500);
    report();
  }
  const auto finalStats = sim.cuClusters();

  std::printf("\nisolated Cu: %lld -> %lld (paper: significantly reduced)\n",
              static_cast<long long>(initialIsolated),
              static_cast<long long>(finalStats.isolatedCount));
  std::printf("largest precipitate: %lld atoms (paper, 2.5e8-atom box: ~40)\n",
              static_cast<long long>(finalStats.maxSize));
  std::printf("cluster number density: %.3e 1/m^3 (paper: 1.71e26)\n",
              finalStats.numberDensity(volumeA3));
  return 0;
}
