// Vacancy clustering / void nucleation under a high vacancy population.
//
// The paper lists void formation alongside Cu precipitation (Fig. 14
// shows both) and names helium-bubble/void problems as direct extension
// targets (Sec. 3.6). The same engine covers them: vacancies are
// first-class lattice species here, multiple vacancies interact through
// the potential (a missing neighbour lowers the local density), and the
// cluster analysis applies to Species::kVacancy exactly as it does to Cu.
//
// This run seeds a quenched-in vacancy supersaturation in pure Fe at
// elevated temperature and tracks how mono-vacancies find each other and
// form di-/multi-vacancy clusters (void nuclei).

#include <cstdio>

#include "analysis/cluster_analysis.hpp"
#include "core/simulation.hpp"

int main() {
  tkmc::SimulationConfig config;
  config.cells = 14;
  config.cutoff = 4.0;
  config.cuFraction = 0.0;       // pure Fe: isolate the vacancy kinetics
  config.vacancyCount = 24;      // strong supersaturation (quench/irradiation)
  config.temperature = 800.0;    // annealing temperature
  config.potential = tkmc::SimulationConfig::Potential::kEam;
  config.seed = 77;

  tkmc::Simulation sim(config);
  std::printf("void formation: %d^3 cells of pure Fe, %d quenched-in "
              "vacancies, %.0f K\n\n",
              config.cells, config.vacancyCount, config.temperature);
  std::printf("%10s %14s %14s %14s %12s\n", "events", "time (s)",
              "mono-vacancies", "clusters>=2", "largest");

  const auto report = [&] {
    const auto stats = analyzeClusters(sim.state(), tkmc::Species::kVacancy);
    std::printf("%10llu %14.4e %14lld %14lld %12lld\n",
                static_cast<unsigned long long>(sim.steps()), sim.time(),
                static_cast<long long>(stats.isolatedCount),
                static_cast<long long>(stats.clusterCount),
                static_cast<long long>(stats.maxSize));
  };

  report();
  const auto initial = analyzeClusters(sim.state(), tkmc::Species::kVacancy);
  for (int block = 0; block < 8; ++block) {
    sim.run(1e300, 2500);
    report();
  }
  const auto final = analyzeClusters(sim.state(), tkmc::Species::kVacancy);

  std::printf("\nvacancies conserved: %lld -> %lld\n",
              static_cast<long long>(initial.totalAtoms),
              static_cast<long long>(final.totalAtoms));
  std::printf("largest void nucleus: %lld vacancies\n",
              static_cast<long long>(final.maxSize));
  std::printf("(divacancies and larger are bound through the reduced local "
              "electron density;\n the same pipeline extends to He-bubble "
              "studies by adding a third species)\n");
  return 0;
}
