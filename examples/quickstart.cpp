// Quickstart: the smallest useful TensorKMC run.
//
// Builds a 12^3-cell BCC Fe-Cu box (1.34 at.% Cu) with three vacancies,
// evolves it at 573 K with the embedded-atom backend (no training
// required), and prints a short trajectory summary. Switch `potential`
// to kNnp to exercise the full neural-network pipeline — the facade will
// self-train a small model against the EAM oracle at startup.

#include <cstdio>

#include "core/simulation.hpp"

int main() {
  tkmc::SimulationConfig config;
  config.cells = 12;
  config.cutoff = 4.0;           // short cutoff keeps the demo snappy
  config.cuFraction = 0.0134;    // 1.34 at.% Cu (paper Sec. 5)
  config.vacancyCount = 3;
  config.temperature = 573.0;    // reactor operating temperature
  config.potential = tkmc::SimulationConfig::Potential::kEam;
  config.seed = 2021;

  tkmc::Simulation sim(config);
  std::printf("TensorKMC quickstart\n");
  std::printf("box: %d^3 cells (%lld sites), Cu atoms: %lld, vacancies: %lld\n",
              config.cells,
              static_cast<long long>(sim.state().lattice().siteCount()),
              static_cast<long long>(sim.state().countSpecies(tkmc::Species::kCu)),
              static_cast<long long>(
                  sim.state().countSpecies(tkmc::Species::kVacancy)));

  for (int block = 0; block < 5; ++block) {
    sim.run(1e300, 200);  // 200 more KMC events
    const auto clusters = sim.cuClusters();
    std::printf("events %6llu | t = %.3e s | isolated Cu %lld | largest "
                "cluster %lld\n",
                static_cast<unsigned long long>(sim.steps()), sim.time(),
                static_cast<long long>(clusters.isolatedCount),
                static_cast<long long>(clusters.maxSize));
  }

  std::printf("done: %llu vacancy hops, %.3e simulated seconds\n",
              static_cast<unsigned long long>(sim.steps()), sim.time());
  return 0;
}
