#!/usr/bin/env bash
# One-command PR gate: the tier-1 verify (default build + full ctest
# suite) followed by the sanitized configurations
# (scripts/run_sanitized.sh: ASan+UBSan over the fault-tolerance suite,
# then a ThreadSanitizer smoke over the threaded-backend and concurrent-
# singleton tests). Exits non-zero the moment any configuration fails,
# so all of them gate every PR.
#
# Usage:
#   scripts/ci.sh            # tier-1 + sanitized fault-tolerance suite
#   scripts/ci.sh all        # tier-1 + the whole suite under sanitizers
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SANITIZED_FILTER=${1:-}

echo "==> tier-1: configure + build (${BUILD_DIR})"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

echo "==> tier-1: ctest"
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "==> chaos soak: rank fail-stop drills (with blackbox decode smoke)"
scripts/chaos_soak.sh

echo "==> trap/detrap workload: examples/trap_detrap.tkmc under a rank kill"
TRAP_WORK=$(mktemp -d "${TMPDIR:-/tmp}/tkmc_trap.XXXXXX")
trap 'rm -rf "$TRAP_WORK"' EXIT
(cd "$TRAP_WORK" && timeout 120 "$OLDPWD/$BUILD_DIR/tools/tensorkmc" \
    -in "$OLDPWD/examples/trap_detrap.tkmc" \
    --inject comm.rank_kill=40 --inject-seed 7) > "$TRAP_WORK/log.txt" 2>&1
grep -q "event catalog: trap_detrap" "$TRAP_WORK/log.txt"
grep -q "survived 1 rank fail-stop" "$TRAP_WORK/log.txt" || {
  echo "ci.sh: trap_detrap deck did not survive the injected kill" >&2
  tail -20 "$TRAP_WORK/log.txt" >&2
  exit 1
}
echo "    trap_detrap survived the kill and resumed from its checkpoint"

echo "==> bench gate: regenerate gated benchmarks"
"$BUILD_DIR/bench/bench_delta_checkpoint"
"$BUILD_DIR/bench/bench_batch_pipeline"
"$BUILD_DIR/bench/bench_memory_footprint"
"$BUILD_DIR/bench/bench_threaded_scaling"
"$BUILD_DIR/bench/bench_fig11_serial"

echo "==> bench gate: compare against bench/baselines (scripts/bench_gate.py)"
python3 scripts/bench_gate.py \
  BENCH_delta_checkpoint.metrics.json \
  BENCH_batch_pipeline.metrics.json \
  BENCH_memory_footprint.metrics.json \
  BENCH_threaded_scaling.metrics.json \
  BENCH_fig11_serial.metrics.json

echo "==> sanitized: TKMC_SANITIZE=address;undefined"
if [ -n "$SANITIZED_FILTER" ]; then
  scripts/run_sanitized.sh "$SANITIZED_FILTER"
else
  scripts/run_sanitized.sh
fi

echo "==> sanitized: TKMC_SANITIZE=thread (threaded backend smoke)"
TKMC_SANITIZE=thread scripts/run_sanitized.sh \
  "threaded_engine|sim_comm|fault_injection|flight_recorder|telemetry|remote_store|retry"

echo "==> sanitized: trap/detrap deck on the TSan-built CLI"
TSAN_BIN=build-sanitized/thread/tools/tensorkmc
TRAP_TSAN=$(mktemp -d "${TMPDIR:-/tmp}/tkmc_trap_tsan.XXXXXX")
(cd "$TRAP_TSAN" && timeout 300 "$OLDPWD/$TSAN_BIN" \
    -in "$OLDPWD/examples/trap_detrap.tkmc") > "$TRAP_TSAN/log.txt" 2>&1 || {
  echo "ci.sh: trap_detrap deck failed under TSan" >&2
  tail -30 "$TRAP_TSAN/log.txt" >&2
  rm -rf "$TRAP_TSAN"
  exit 1
}
rm -rf "$TRAP_TSAN"
echo "    trap_detrap threaded run clean under TSan"

echo "==> sanitized: remote node-loss recovery drill on the TSan-built CLI"
# The ShardStreamer worker runs concurrently with commits, recovery, and
# the fault injector; this drill exercises the whole stream -> node loss
# -> remote heal -> resume path with TSan watching the handoffs.
REMOTE_TSAN=$(mktemp -d "${TMPDIR:-/tmp}/tkmc_remote_tsan.XXXXXX")
(cd "$REMOTE_TSAN" && timeout 300 "$OLDPWD/$TSAN_BIN" \
    -in "$OLDPWD/tools/chaos_remote_deck.tkmc" \
    --inject comm.rank_kill=44 --inject-seed 11) \
    > "$REMOTE_TSAN/log.txt" 2>&1 || {
  echo "ci.sh: remote chaos deck failed under TSan" >&2
  tail -30 "$REMOTE_TSAN/log.txt" >&2
  rm -rf "$REMOTE_TSAN"
  exit 1
}
grep -q "survived 1 rank fail-stop" "$REMOTE_TSAN/log.txt"
rm -f "$REMOTE_TSAN"/chaos_ckpt/epoch_*/rank_1.tkc  # simulated node loss
(cd "$REMOTE_TSAN" && timeout 300 "$OLDPWD/$TSAN_BIN" \
    -in "$OLDPWD/tools/chaos_remote_resume_deck.tkmc") \
    > "$REMOTE_TSAN/resume_log.txt" 2>&1 || {
  echo "ci.sh: remote recovery resume failed under TSan" >&2
  tail -30 "$REMOTE_TSAN/resume_log.txt" >&2
  rm -rf "$REMOTE_TSAN"
  exit 1
}
grep -q "remote store: healed" "$REMOTE_TSAN/resume_log.txt" || {
  echo "ci.sh: TSan resume did not heal from the remote copy" >&2
  tail -20 "$REMOTE_TSAN/resume_log.txt" >&2
  rm -rf "$REMOTE_TSAN"
  exit 1
}
rm -rf "$REMOTE_TSAN"
echo "    remote node-loss recovery drill clean under TSan"

echo "==> ci.sh: all gates passed"
