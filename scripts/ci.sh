#!/usr/bin/env bash
# One-command PR gate: the tier-1 verify (default build + full ctest
# suite) followed by the sanitized configurations
# (scripts/run_sanitized.sh: ASan+UBSan over the fault-tolerance suite,
# then a ThreadSanitizer smoke over the threaded-backend and concurrent-
# singleton tests). Exits non-zero the moment any configuration fails,
# so all of them gate every PR.
#
# Usage:
#   scripts/ci.sh            # tier-1 + sanitized fault-tolerance suite
#   scripts/ci.sh all        # tier-1 + the whole suite under sanitizers
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SANITIZED_FILTER=${1:-}

echo "==> tier-1: configure + build (${BUILD_DIR})"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

echo "==> tier-1: ctest"
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "==> chaos soak: rank fail-stop drills (with blackbox decode smoke)"
scripts/chaos_soak.sh

echo "==> bench gate: regenerate gated benchmarks"
"$BUILD_DIR/bench/bench_delta_checkpoint"
"$BUILD_DIR/bench/bench_batch_pipeline"
"$BUILD_DIR/bench/bench_memory_footprint"
"$BUILD_DIR/bench/bench_threaded_scaling"

echo "==> bench gate: compare against bench/baselines (scripts/bench_gate.py)"
python3 scripts/bench_gate.py \
  BENCH_delta_checkpoint.metrics.json \
  BENCH_batch_pipeline.metrics.json \
  BENCH_memory_footprint.metrics.json \
  BENCH_threaded_scaling.metrics.json

echo "==> sanitized: TKMC_SANITIZE=address;undefined"
if [ -n "$SANITIZED_FILTER" ]; then
  scripts/run_sanitized.sh "$SANITIZED_FILTER"
else
  scripts/run_sanitized.sh
fi

echo "==> sanitized: TKMC_SANITIZE=thread (threaded backend smoke)"
TKMC_SANITIZE=thread scripts/run_sanitized.sh \
  "threaded_engine|sim_comm|fault_injection|flight_recorder|telemetry"

echo "==> ci.sh: all gates passed"
