#!/usr/bin/env python3
"""Performance regression gate for BENCH_*.metrics.json snapshots.

Compares freshly produced benchmark metrics against the committed
baselines in bench/baselines/, metric by metric, with per-metric
tolerance bands from tolerances.json. Metric names are flattened as
"counters.<name>", "gauges.<name>", and "histograms.<name>.<field>".

tolerances.json is an ordered list of rules; the FIRST rule whose
fnmatch pattern matches a metric name decides its band:

    [
      {"pattern": "*seconds*", "ignore": true},
      {"pattern": "gauges.engine.events", "rel": 0.0},
      {"pattern": "*", "rel": 0.10, "abs": 1e-9}
    ]

A value passes when |fresh - base| <= abs + rel * |base| (missing keys
default to 0). "ignore": true skips the metric (timings, rates).
Metrics present in the baseline but missing from the fresh snapshot
fail; metrics only in the fresh snapshot are reported but pass (new
instrumentation should not break the gate — it becomes binding when
baselines are refreshed via scripts/update_baselines.sh).

Usage: bench_gate.py FRESH.json... [--baseline-dir bench/baselines]
                                   [--tolerances FILE]

Exit status 0 when every fresh file is within tolerance, 1 otherwise.
"""

import argparse
import fnmatch
import json
import os
import sys


def flatten(doc):
    """metrics.json -> {flat_name: number} (null values are skipped)."""
    out = {}
    for section in ("counters", "gauges"):
        for name, value in doc.get(section, {}).items():
            if isinstance(value, (int, float)):
                out[f"{section}.{name}"] = float(value)
    for name, hist in doc.get("histograms", {}).items():
        if not isinstance(hist, dict):
            continue
        for field, value in hist.items():
            if isinstance(value, (int, float)):
                out[f"histograms.{name}.{field}"] = float(value)
    return out


def load_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def rule_for(name, rules):
    for rule in rules:
        if fnmatch.fnmatch(name, rule.get("pattern", "*")):
            return rule
    return None


def compare(fresh_path, base_path, rules):
    """Returns a list of failure strings (empty = pass)."""
    failures = []
    fresh = flatten(load_json(fresh_path))
    base = flatten(load_json(base_path))

    ignored = checked = 0
    for name in sorted(base):
        rule = rule_for(name, rules)
        if rule is None:
            failures.append(f"{name}: no tolerance rule matches")
            continue
        if rule.get("ignore"):
            ignored += 1
            continue
        if name not in fresh:
            failures.append(f"{name}: present in baseline, missing from fresh run")
            continue
        band = abs(rule.get("abs", 0.0)) + abs(rule.get("rel", 0.0)) * abs(
            base[name]
        )
        drift = abs(fresh[name] - base[name])
        checked += 1
        if drift > band:
            failures.append(
                f"{name}: {fresh[name]:.6g} drifted from baseline "
                f"{base[name]:.6g} by {drift:.6g} (allowed {band:.6g})"
            )

    new = sorted(set(fresh) - set(base))
    if new:
        print(
            f"bench_gate: note: {len(new)} metric(s) not in baseline "
            f"(e.g. {', '.join(new[:3])}) — refresh baselines to gate them"
        )
    print(
        f"bench_gate: {os.path.basename(fresh_path)}: {checked} checked, "
        f"{ignored} ignored, {len(failures)} failure(s)"
    )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", nargs="+", help="fresh BENCH_*.metrics.json")
    parser.add_argument(
        "--baseline-dir",
        default="bench/baselines",
        help="directory of committed baselines (matched by basename)",
    )
    parser.add_argument(
        "--tolerances",
        default=None,
        help="tolerance rules (default: <baseline-dir>/tolerances.json)",
    )
    args = parser.parse_args()

    tol_path = args.tolerances or os.path.join(
        args.baseline_dir, "tolerances.json"
    )
    try:
        rules = load_json(tol_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: FAIL: cannot load tolerances {tol_path}: {e}",
              file=sys.stderr)
        return 1
    if not isinstance(rules, list):
        print(f"bench_gate: FAIL: {tol_path} must be a JSON list of rules",
              file=sys.stderr)
        return 1

    status = 0
    for fresh_path in args.fresh:
        base_path = os.path.join(
            args.baseline_dir, os.path.basename(fresh_path)
        )
        try:
            failures = compare(fresh_path, base_path, rules)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_gate: FAIL: {fresh_path}: {e}", file=sys.stderr)
            status = 1
            continue
        for line in failures:
            print(f"bench_gate: FAIL: {os.path.basename(fresh_path)}: {line}",
                  file=sys.stderr)
        if failures:
            status = 1
    if status == 0:
        print("bench_gate: OK: all benchmarks within tolerance")
    return status


if __name__ == "__main__":
    sys.exit(main())
