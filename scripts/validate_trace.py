#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --telemetry.

Checks that the file is well-formed JSON with a traceEvents array, that
every event carries the required fields, and that duration events are
balanced: every 'B' has a matching 'E' on the same (pid, tid) track, in
LIFO order, with monotonically non-decreasing timestamps.

Flow events ('s' start / 'f' end, the cross-rank message arrows) are
validated too: every flow event needs a numeric 'id', a flow may not
start twice under the same (name, id), an 'f' must match an open 's',
and every flow opened must be closed by the end of the trace (the
exporter synthesizes closes for in-flight messages, so an unmatched
flow is a real bug) unless --allow-unmatched-flows is given.

Usage: validate_trace.py trace.json [--require-span NAME ...]
                                    [--require-flow NAME ...]

Exit status 0 when the trace is valid (and every --require-span /
--require-flow name is present), 1 otherwise.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to trace.json")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one complete span with this exact name",
    )
    parser.add_argument(
        "--require-flow",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one complete flow (s+f pair) with this name",
    )
    parser.add_argument(
        "--allow-unmatched-flows",
        action="store_true",
        help="tolerate flows opened but never closed (in-flight messages)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as e:
        return fail(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{args.trace} is not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("'traceEvents' must be an array")
    if not events:
        return fail("'traceEvents' is empty")

    stacks = {}  # (pid, tid) -> list of (name, ts)
    last_ts = {}  # (pid, tid) -> ts
    completed = set()
    span_count = 0
    open_flows = {}  # (name, id) -> event index of the 's'
    completed_flows = set()
    flow_count = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                return fail(f"event {i} is missing required field '{field}'")
        name, ph, ts = ev["name"], ev["ph"], ev["ts"]
        if not isinstance(name, str) or not name:
            return fail(f"event {i} has a non-string or empty name")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"event {i} ({name!r}) has invalid ts {ts!r}")
        track = (ev["pid"], ev["tid"])
        if ts < last_ts.get(track, 0):
            return fail(
                f"event {i} ({name!r}) goes backwards in time on track "
                f"{track}: {ts} < {last_ts[track]}"
            )
        last_ts[track] = ts
        if ph == "B":
            stacks.setdefault(track, []).append((name, ts))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                return fail(
                    f"event {i}: 'E' for {name!r} on track {track} with no "
                    f"open span"
                )
            open_name, _ = stack.pop()
            if open_name != name:
                return fail(
                    f"event {i}: 'E' for {name!r} does not match open span "
                    f"{open_name!r} on track {track} (not LIFO)"
                )
            completed.add(name)
            span_count += 1
        elif ph in ("i", "t"):
            pass  # instant events need no pairing
        elif ph in ("s", "f"):
            flow_id = ev.get("id")
            if not isinstance(flow_id, int):
                return fail(
                    f"event {i} ({name!r}): flow event without a numeric 'id'"
                )
            key = (name, flow_id)
            if ph == "s":
                if key in open_flows:
                    return fail(
                        f"event {i}: flow {name!r} id {flow_id} started "
                        f"twice (first at event {open_flows[key]}) — flow "
                        f"ids must be unique"
                    )
                open_flows[key] = i
            else:
                if key not in open_flows:
                    return fail(
                        f"event {i}: flow end for {name!r} id {flow_id} "
                        f"with no matching start"
                    )
                del open_flows[key]
                completed_flows.add(name)
                flow_count += 1
        else:
            return fail(f"event {i} ({name!r}) has unsupported phase {ph!r}")

    for track, stack in stacks.items():
        if stack:
            names = ", ".join(repr(n) for n, _ in stack)
            return fail(f"track {track} ends with unclosed spans: {names}")

    if open_flows and not args.allow_unmatched_flows:
        samples = ", ".join(
            f"{name!r} id {fid}" for (name, fid) in sorted(open_flows)[:5]
        )
        return fail(
            f"{len(open_flows)} flow(s) started but never ended: {samples}"
        )

    missing = [n for n in args.require_span if n not in completed]
    if missing:
        return fail(
            "required spans absent from trace: " + ", ".join(repr(n) for n in missing)
        )
    missing_flows = [n for n in args.require_flow if n not in completed_flows]
    if missing_flows:
        return fail(
            "required flows absent from trace: "
            + ", ".join(repr(n) for n in missing_flows)
        )

    print(
        f"validate_trace: OK: {len(events)} events, {span_count} complete "
        f"spans, {len(completed)} distinct span names, {flow_count} complete "
        f"flows, {len(completed_flows)} distinct flow names"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
