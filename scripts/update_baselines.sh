#!/usr/bin/env bash
# Refresh the committed benchmark baselines in bench/baselines/.
#
# Runs the gated benchmarks from the repo root (they write
# BENCH_*.metrics.json into the current directory) and copies the fresh
# snapshots over the baselines. Run this when a PR intentionally changes
# a gated metric (new instrumentation, an algorithmic improvement, a
# deliberate trade-off), eyeball `git diff bench/baselines/`, and commit
# the new numbers together with the change that explains them — the
# diff IS the review artifact (DESIGN.md §14).
#
# Usage: scripts/update_baselines.sh   (builds first; BUILD_DIR overrides)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BASELINES=bench/baselines
GATED="bench_batch_pipeline bench_memory_footprint bench_delta_checkpoint"

cmake --build "$BUILD_DIR" -j --target $GATED

mkdir -p "$BASELINES"
for bench in $GATED; do
  echo "==> $bench"
  "$BUILD_DIR/bench/$bench" > /dev/null
  name="BENCH_${bench#bench_}.metrics.json"
  cp "$name" "$BASELINES/$name"
done

echo "updated: $(ls "$BASELINES" | tr '\n' ' ')"
echo "review with: git diff $BASELINES"
