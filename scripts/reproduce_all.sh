#!/usr/bin/env sh
# Reproduces everything: build, test suite, every table/figure bench, and
# the example applications. Outputs land in test_output.txt,
# bench_output.txt, and examples_output.txt at the repository root.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

{
  for e in build/examples/*; do
    if [ -f "$e" ] && [ -x "$e" ]; then
      echo "===== $(basename "$e") ====="
      "$e"
    fi
  done
} 2>&1 | tee examples_output.txt

echo "reproduction complete: see test_output.txt, bench_output.txt,"
echo "examples_output.txt, and EXPERIMENTS.md for the paper comparison."
