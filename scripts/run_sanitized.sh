#!/usr/bin/env bash
# Builds the tree under AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the fault-tolerance test suite there (the failure paths exercised
# by fault injection are exactly where memory bugs like to hide).
#
# Usage:
#   scripts/run_sanitized.sh          # fault-tolerance tests only
#   scripts/run_sanitized.sh all      # the whole ctest suite
#   scripts/run_sanitized.sh <regex>  # custom ctest -R filter
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-sanitized}
FILTER=${1:-"fault_injection|checkpoint|sim_comm|ghost_exchange|parallel_engine|rank_failure"}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTKMC_SANITIZE="address;undefined" \
  -DTKMC_BUILD_BENCH=OFF \
  -DTKMC_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j

cd "$BUILD_DIR"
if [ "$FILTER" = "all" ]; then
  ctest --output-on-failure -j
else
  ctest --output-on-failure -j -R "$FILTER"
fi
