#!/usr/bin/env bash
# Builds the tree under a sanitizer configuration and runs the
# fault-tolerance test suite there (the failure paths exercised by fault
# injection are exactly where memory bugs like to hide).
#
# The sanitizer set comes from TKMC_SANITIZE (semicolon-separated, the
# same list CMake consumes) and defaults to ASan+UBSan. Each flavor gets
# its own build directory so switching sets never mixes cached flags:
#
#   scripts/run_sanitized.sh                        # asan+ubsan, FT suite
#   scripts/run_sanitized.sh all                    # asan+ubsan, whole suite
#   TKMC_SANITIZE=thread scripts/run_sanitized.sh   # TSan, FT suite
#   scripts/run_sanitized.sh <regex>                # custom ctest -R filter
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZERS=${TKMC_SANITIZE:-"address;undefined"}
FLAVOR=$(echo "$SANITIZERS" | tr ';,' '--')
BUILD_DIR=${BUILD_DIR:-build-sanitized/$FLAVOR}
FILTER=${1:-"fault_injection|checkpoint|sim_comm|ghost_exchange|parallel_engine|rank_failure|threaded_engine"}

echo "==> sanitized build: TKMC_SANITIZE=$SANITIZERS ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTKMC_SANITIZE="$SANITIZERS" \
  -DTKMC_BUILD_BENCH=OFF \
  -DTKMC_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j

cd "$BUILD_DIR"
# Note: ctest's bare `-j` greedily consumes the next argument, which
# used to swallow `-R` and silently run the whole suite; always pass an
# explicit parallel level.
if [ "$FILTER" = "all" ]; then
  ctest --output-on-failure -j "$(nproc)"
else
  ctest --output-on-failure -j "$(nproc)" -R "$FILTER"
fi
