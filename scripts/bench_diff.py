#!/usr/bin/env python3
"""Compare per-system-cost gauges between two BENCH_*.metrics.json snapshots.

The batched-pipeline bench (and any other bench using the telemetry
metrics registry) writes gauges like

    bench.batch.per_system_us.b1
    bench.batch.per_system_us.b64
    bench.batch.per_system_main_bytes.b512

This tool diffs two such snapshots — typically a baseline saved before a
change and the freshly produced file — and prints old/new/delta/ratio
per gauge, so regressions in per-system cost are visible at a glance:

    scripts/bench_diff.py old/BENCH_batch_pipeline.metrics.json \
                          BENCH_batch_pipeline.metrics.json

By default every gauge common to both files is compared; restrict to a
family with --prefix (e.g. --prefix bench.batch.per_system_us). Exit
status is 1 when any compared gauge regressed (grew) by more than
--tolerance (relative, default 10%), so the tool can gate CI.
"""

import argparse
import json
import sys


def load_gauges(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read metrics snapshot {path}: {exc}")
    gauges = snapshot.get("gauges")
    if not isinstance(gauges, dict):
        sys.exit(f"error: {path} has no 'gauges' object "
                 "(is it a metrics registry snapshot?)")
    return gauges


def main():
    parser = argparse.ArgumentParser(
        description="Diff gauges between two metrics snapshots.")
    parser.add_argument("old", help="baseline BENCH_*.metrics.json")
    parser.add_argument("new", help="candidate BENCH_*.metrics.json")
    parser.add_argument("--prefix", default="",
                        help="only compare gauges starting with this prefix "
                             "(default: all common gauges)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative growth tolerated before the exit "
                             "status flags a regression (default 0.10)")
    args = parser.parse_args()

    old = load_gauges(args.old)
    new = load_gauges(args.new)

    names = sorted(n for n in old
                   if n in new and n.startswith(args.prefix)
                   and isinstance(old[n], (int, float))
                   and isinstance(new[n], (int, float)))
    if not names:
        sys.exit(f"error: no common gauges matching prefix "
                 f"'{args.prefix}' between {args.old} and {args.new}")

    width = max(len(n) for n in names)
    print(f"{'gauge':<{width}}  {'old':>14}  {'new':>14}  "
          f"{'delta':>14}  {'ratio':>7}")
    regressed = []
    for name in names:
        a, b = float(old[name]), float(new[name])
        delta = b - a
        ratio = b / a if a != 0.0 else float("inf")
        flag = ""
        if a != 0.0 and ratio > 1.0 + args.tolerance:
            flag = "  <-- regression"
            regressed.append(name)
        print(f"{name:<{width}}  {a:>14.6g}  {b:>14.6g}  "
              f"{delta:>+14.6g}  {ratio:>6.3f}x{flag}")

    only_old = sorted(n for n in old if n not in new
                      and n.startswith(args.prefix))
    only_new = sorted(n for n in new if n not in old
                      and n.startswith(args.prefix))
    if only_old:
        print(f"\nonly in {args.old}: {', '.join(only_old)}")
    if only_new:
        print(f"only in {args.new}: {', '.join(only_new)}")

    if regressed:
        print(f"\n{len(regressed)} gauge(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(regressed)}")
        return 1
    print(f"\nno regressions beyond {args.tolerance:.0%} "
          f"across {len(names)} gauge(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
