#!/usr/bin/env bash
# Fail-stop chaos soak: repeatedly run the CLI chaos decks with
# `--inject comm.rank_kill=<ordinal>` at a different protocol phase each
# iteration and require every run to (a) finish inside a wall-clock
# watchdog — a hung detector is the classic fail-stop bug — and
# (b) report exactly one survived rank failure.
#
# Three phases:
#   A. full-epoch shrink schedules (tools/chaos_deck.tkmc, no spares) with
#      a background `comm.corrupt` probability, so ARQ retransmission and
#      fail-stop detection are exercised together; ordinals sweep fold,
#      ghost exchange, and both phases of the two-phase commit.
#   B. delta-cadence grow schedules (tools/chaos_delta_deck.tkmc:
#      checkpoint_mode delta, max_delta_chain 3, spare_ranks 1) — the
#      kill must be absorbed by re-admitting the spare, not by shrinking.
#   C. kills aimed inside the consolidating full epoch's two-phase commit
#      (the delta-GC window), where a torn consolidation would strand
#      readers on a superseded chain.
#   D. remote node-loss schedules (tools/chaos_remote_deck.tkmc): each
#      run streams its epochs to a remote shard store, survives a kill,
#      and then loses local shards outright (one rank's shard from every
#      epoch, or the whole newest epoch directory). The follow-up resume
#      (tools/chaos_remote_resume_deck.tkmc) must heal from the remote
#      copy and stay bit-identical to a resume from an intact local tree.
#
# Every run that commits checkpoints also passes `tkmc_shardctl verify`
# (local + remote CRC audit against manifests and placement maps) as a
# post-run invariant.
#
# On the first failing schedule the summary line reports its label, seed,
# ordinal, and exit code, and the script exits with that code.
#
# Usage:
#   scripts/chaos_soak.sh [iterations] [timeout-seconds]
# Defaults: 20 phase-A iterations, 60 s watchdog per run. The binary is
# taken from $BUILD_DIR (default: build).
set -euo pipefail
cd "$(dirname "$0")/.."

ITERATIONS=${1:-20}
WATCHDOG=${2:-60}
BUILD_DIR=${BUILD_DIR:-build}
BIN="$BUILD_DIR/tools/tensorkmc"
BLACKBOX="$BUILD_DIR/tools/tkmc_blackbox"
SHARDCTL="$BUILD_DIR/tools/tkmc_shardctl"
FULL_DECK=tools/chaos_deck.tkmc
DELTA_DECK=tools/chaos_delta_deck.tkmc
REMOTE_DECK=tools/chaos_remote_deck.tkmc
REMOTE_RESUME_DECK=tools/chaos_remote_resume_deck.tkmc

if [ ! -x "$BIN" ] || [ ! -x "$BLACKBOX" ] || [ ! -x "$SHARDCTL" ]; then
  echo "chaos_soak: $BIN, $BLACKBOX or $SHARDCTL not built (run cmake --build $BUILD_DIR first)" >&2
  exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/tkmc_chaos.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

TOTAL=0

fail_summary() {  # label seed ordinal exit-code
  echo "chaos_soak: summary: FAILED first-failing-schedule=$1 seed=$2 ordinal=$3 exit=$4" >&2
  exit "$4"
}

run_schedule() {  # label deck seed ordinal shrink|grow [extra --inject args]
  local label=$1 deck=$2 seed=$3 ordinal=$4 mode=$5
  shift 5
  local run_dir="$WORK/$label"
  mkdir -p "$run_dir"
  local log="$run_dir/log.txt" status=0
  (cd "$run_dir" && timeout "$WATCHDOG" \
      "$OLDPWD/$BIN" -in "$OLDPWD/$deck" --telemetry telemetry \
      --inject comm.rank_kill="$ordinal" "$@" --inject-seed "$seed") \
      > "$log" 2>&1 || status=$?
  if [ "$status" -ne 0 ]; then
    echo "chaos_soak: $label (ordinal $ordinal) FAILED (exit $status)" >&2
    [ "$status" -eq 124 ] && echo "chaos_soak: $label HUNG past watchdog" >&2
    tail -20 "$log" >&2
    fail_summary "$label" "$seed" "$ordinal" "$status"
  fi
  if ! grep -q "survived 1 rank fail-stop" "$log"; then
    echo "chaos_soak: $label (ordinal $ordinal) did not survive a kill" >&2
    tail -20 "$log" >&2
    fail_summary "$label" "$seed" "$ordinal" 3
  fi
  if [ "$mode" = grow ] && ! grep -q "1 grow recover" "$log"; then
    echo "chaos_soak: $label (ordinal $ordinal) shrank despite a spare rank" >&2
    tail -20 "$log" >&2
    fail_summary "$label" "$seed" "$ordinal" 4
  fi
  # Every survived kill must leave a decodable post-mortem: the engine
  # dumps the flight recorder on RankFailure, and tkmc_blackbox must be
  # able to merge the per-rank dumps into one causal timeline.
  if ! ls "$run_dir"/telemetry/blackbox_rank*.bin > /dev/null 2>&1; then
    echo "chaos_soak: $label (ordinal $ordinal) left no blackbox dumps" >&2
    fail_summary "$label" "$seed" "$ordinal" 5
  fi
  if ! "$BLACKBOX" merge "$run_dir/telemetry" --tail 3 > "$run_dir/blackbox.txt" 2>&1; then
    echo "chaos_soak: $label (ordinal $ordinal) blackbox decode FAILED" >&2
    cat "$run_dir/blackbox.txt" >&2
    fail_summary "$label" "$seed" "$ordinal" 6
  fi
  # Post-run invariant: every committed epoch — local and, when the run
  # streamed one, remote — must pass the shardctl CRC audit.
  if [ -d "$run_dir/chaos_ckpt" ]; then
    local remote_args=()
    [ -d "$run_dir/remote_ckpt" ] && remote_args=(--remote "$run_dir/remote_ckpt")
    if ! "$SHARDCTL" verify "$run_dir/chaos_ckpt" ${remote_args[@]+"${remote_args[@]}"} \
        > "$run_dir/shardctl.txt" 2>&1; then
      echo "chaos_soak: $label (ordinal $ordinal) shardctl verify FAILED" >&2
      cat "$run_dir/shardctl.txt" >&2
      fail_summary "$label" "$seed" "$ordinal" 7
    fi
  fi
  local epochs
  epochs=$(ls "$run_dir/chaos_ckpt" 2>/dev/null | grep -c '^epoch_' || true)
  echo "    $label: ordinal $ordinal survived ($epochs epochs committed)"
  TOTAL=$((TOTAL + 1))
}

echo "==> chaos soak: fault-point catalog sanity (--inject list)"
if ! "$BIN" --inject list | grep -q "comm.rank_kill"; then
  echo "chaos_soak: --inject list does not register comm.rank_kill" >&2
  exit 1
fi

echo "==> phase A: $ITERATIONS full-epoch shrink schedules (${WATCHDOG}s watchdog each)"
for i in $(seq 1 "$ITERATIONS"); do
  # Deterministic ordinal spread over ~3 cycles of protocol traffic
  # (38 sends/cycle on the 2x2x1 grid), hitting every phase over the
  # sweep; the seed varies the rank the ordinal lands on.
  ordinal=$((1 + (i * 37) % 110))
  run_schedule "full_$i" "$FULL_DECK" "$i" "$ordinal" shrink \
      --inject comm.corrupt=p0.005
done

echo "==> phase B: delta-cadence grow schedules"
for i in $(seq 1 6); do
  ordinal=$((5 + (i * 31) % 110))
  run_schedule "delta_$i" "$DELTA_DECK" "$((100 + i))" "$ordinal" grow
done

echo "==> phase C: kills inside the consolidating commit"
# With max_delta_chain 3 the first consolidating full epoch is epoch 4;
# at 38 sends/cycle its commit votes are ordinals 147..149 and its acks
# 150..152 (no background corruption here, so ordinals stay aligned).
for ordinal in 147 148 149 150 151 152; do
  run_schedule "consolidate_$ordinal" "$DELTA_DECK" "$((200 + ordinal))" \
      "$ordinal" grow
done

echo "==> phase D: $ITERATIONS remote node-loss schedules"
for i in $(seq 1 "$ITERATIONS"); do
  ordinal=$((3 + (i * 41) % 110))
  seed=$((300 + i))
  run_schedule "remote_$i" "$REMOTE_DECK" "$seed" "$ordinal" grow
  run_dir="$WORK/remote_$i"
  # The kill-surviving run must have mirrored every epoch it committed.
  if ! grep -q "remote streaming: .* 0 given up" "$run_dir/log.txt"; then
    echo "chaos_soak: remote_$i gave up streaming epochs" >&2
    grep "remote streaming" "$run_dir/log.txt" >&2 || true
    fail_summary "remote_$i" "$seed" "$ordinal" 8
  fi
  # Twin trees: a keeps the local checkpoints intact; b suffers the node
  # loss — even iterations lose one rank's shard from every epoch, odd
  # iterations lose the whole newest epoch directory.
  for t in a b; do
    mkdir -p "$run_dir/$t"
    cp -r "$run_dir/chaos_ckpt" "$run_dir/$t/chaos_ckpt"
    cp -r "$run_dir/remote_ckpt" "$run_dir/$t/remote_ckpt"
  done
  if [ $((i % 2)) -eq 0 ]; then
    rm -f "$run_dir/b/chaos_ckpt"/epoch_*/"rank_$((i % 4)).tkc"
  else
    newest=$(ls "$run_dir/b/chaos_ckpt" | grep '^epoch_' | sort -t_ -k2 -n | tail -1)
    rm -rf "$run_dir/b/chaos_ckpt/$newest"
  fi
  for t in a b; do
    status=0
    (cd "$run_dir/$t" && timeout "$WATCHDOG" \
        "$OLDPWD/$BIN" -in "$OLDPWD/$REMOTE_RESUME_DECK") \
        > "$run_dir/$t/log.txt" 2>&1 || status=$?
    if [ "$status" -ne 0 ]; then
      echo "chaos_soak: remote_$i resume ($t) FAILED (exit $status)" >&2
      tail -20 "$run_dir/$t/log.txt" >&2
      fail_summary "remote_${i}_resume_$t" "$seed" "$ordinal" "$status"
    fi
    if ! grep -q "resumed from checkpoint epoch" "$run_dir/$t/log.txt"; then
      echo "chaos_soak: remote_$i resume ($t) started fresh instead of resuming" >&2
      tail -20 "$run_dir/$t/log.txt" >&2
      fail_summary "remote_${i}_resume_$t" "$seed" "$ordinal" 9
    fi
    if ! "$SHARDCTL" verify "$run_dir/$t/chaos_ckpt" --remote "$run_dir/$t/remote_ckpt" \
        > "$run_dir/$t/shardctl.txt" 2>&1; then
      echo "chaos_soak: remote_$i resume ($t) shardctl verify FAILED" >&2
      cat "$run_dir/$t/shardctl.txt" >&2
      fail_summary "remote_${i}_resume_$t" "$seed" "$ordinal" 10
    fi
  done
  # The damaged twin must have pulled the lost shards from the remote
  # copy, and from there on be indistinguishable from the intact twin:
  # identical trajectory (wall time stripped) and a bit-identical
  # checkpoint tree.
  if ! grep -q "remote store: healed" "$run_dir/b/log.txt"; then
    echo "chaos_soak: remote_$i damaged twin resumed without a remote heal" >&2
    tail -20 "$run_dir/b/log.txt" >&2
    fail_summary "remote_${i}_heal" "$seed" "$ordinal" 11
  fi
  a_done=$(grep '^done:' "$run_dir/a/log.txt" | sed 's/, [0-9.]* s wall//')
  b_done=$(grep '^done:' "$run_dir/b/log.txt" | sed 's/, [0-9.]* s wall//')
  if [ -z "$a_done" ] || [ "$a_done" != "$b_done" ]; then
    echo "chaos_soak: remote_$i twins diverged: a='$a_done' b='$b_done'" >&2
    fail_summary "remote_${i}_divergence" "$seed" "$ordinal" 12
  fi
  if ! diff -r "$run_dir/a/chaos_ckpt" "$run_dir/b/chaos_ckpt" > /dev/null; then
    echo "chaos_soak: remote_$i healed tree is not bit-identical to the intact tree" >&2
    diff -r "$run_dir/a/chaos_ckpt" "$run_dir/b/chaos_ckpt" | head -10 >&2
    fail_summary "remote_${i}_tree_diff" "$seed" "$ordinal" 13
  fi
  echo "    remote_$i: node-loss resume healed and matched bit-identically"
done

echo "==> chaos soak: summary: all $TOTAL schedules survived" \
     "($ITERATIONS full-epoch, 6 delta-cadence, 6 consolidation kills," \
     "$ITERATIONS remote node-loss)"
