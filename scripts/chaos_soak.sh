#!/usr/bin/env bash
# Fail-stop chaos soak: repeatedly run the CLI chaos deck
# (tools/chaos_deck.tkmc, 2x2x1 rank grid, coordinated checkpoints +
# lease detector) with `--inject comm.rank_kill=<ordinal>` at a
# different protocol phase each iteration — plus a background
# `comm.corrupt` probability, so ARQ retransmission and fail-stop
# detection are exercised together — and require every run to
# (a) finish inside a wall-clock watchdog — a hung detector is the
# classic fail-stop bug — and (b) report exactly one survived rank
# failure. Ordinals sweep the whole synchronization protocol: fold,
# ghost exchange, and both phases of the two-phase commit.
#
# Usage:
#   scripts/chaos_soak.sh [iterations] [timeout-seconds]
# Defaults: 20 iterations, 60 s watchdog per run. The binary is taken
# from $BUILD_DIR (default: build).
set -euo pipefail
cd "$(dirname "$0")/.."

ITERATIONS=${1:-20}
WATCHDOG=${2:-60}
BUILD_DIR=${BUILD_DIR:-build}
BIN="$BUILD_DIR/tools/tensorkmc"
DECK=tools/chaos_deck.tkmc

if [ ! -x "$BIN" ]; then
  echo "chaos_soak: $BIN not built (run cmake --build $BUILD_DIR first)" >&2
  exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/tkmc_chaos.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

echo "==> chaos soak: $ITERATIONS schedules, ${WATCHDOG}s watchdog each"
for i in $(seq 1 "$ITERATIONS"); do
  # Deterministic ordinal spread over ~3 cycles of protocol traffic
  # (38 sends/cycle on the 2x2x1 grid), hitting every phase over the
  # sweep; the seed varies the rank the ordinal lands on.
  ordinal=$((1 + (i * 37) % 110))
  run_dir="$WORK/run_$i"
  mkdir -p "$run_dir"
  log="$run_dir/log.txt"
  if ! (cd "$run_dir" && timeout "$WATCHDOG" \
        "$OLDPWD/$BIN" -in "$OLDPWD/$DECK" \
        --inject comm.rank_kill="$ordinal" --inject comm.corrupt=p0.005 \
        --inject-seed "$i") \
        > "$log" 2>&1; then
    status=$?
    echo "chaos_soak: run $i (ordinal $ordinal) FAILED (exit $status)" >&2
    [ "$status" -eq 124 ] && echo "chaos_soak: run $i HUNG past watchdog" >&2
    tail -20 "$log" >&2
    exit 1
  fi
  if ! grep -q "survived 1 rank fail-stop" "$log"; then
    echo "chaos_soak: run $i (ordinal $ordinal) did not survive a kill" >&2
    tail -20 "$log" >&2
    exit 1
  fi
  epochs=$(ls "$run_dir/chaos_ckpt" | grep -c '^epoch_' || true)
  echo "    run $i: ordinal $ordinal survived ($epochs epochs committed)"
done
echo "==> chaos soak: all $ITERATIONS schedules survived"
