#!/usr/bin/env bash
# Fail-stop chaos soak: repeatedly run the CLI chaos decks with
# `--inject comm.rank_kill=<ordinal>` at a different protocol phase each
# iteration and require every run to (a) finish inside a wall-clock
# watchdog — a hung detector is the classic fail-stop bug — and
# (b) report exactly one survived rank failure.
#
# Three phases:
#   A. full-epoch shrink schedules (tools/chaos_deck.tkmc, no spares) with
#      a background `comm.corrupt` probability, so ARQ retransmission and
#      fail-stop detection are exercised together; ordinals sweep fold,
#      ghost exchange, and both phases of the two-phase commit.
#   B. delta-cadence grow schedules (tools/chaos_delta_deck.tkmc:
#      checkpoint_mode delta, max_delta_chain 3, spare_ranks 1) — the
#      kill must be absorbed by re-admitting the spare, not by shrinking.
#   C. kills aimed inside the consolidating full epoch's two-phase commit
#      (the delta-GC window), where a torn consolidation would strand
#      readers on a superseded chain.
#
# On the first failing schedule the summary line reports its label, seed,
# ordinal, and exit code, and the script exits with that code.
#
# Usage:
#   scripts/chaos_soak.sh [iterations] [timeout-seconds]
# Defaults: 20 phase-A iterations, 60 s watchdog per run. The binary is
# taken from $BUILD_DIR (default: build).
set -euo pipefail
cd "$(dirname "$0")/.."

ITERATIONS=${1:-20}
WATCHDOG=${2:-60}
BUILD_DIR=${BUILD_DIR:-build}
BIN="$BUILD_DIR/tools/tensorkmc"
BLACKBOX="$BUILD_DIR/tools/tkmc_blackbox"
FULL_DECK=tools/chaos_deck.tkmc
DELTA_DECK=tools/chaos_delta_deck.tkmc

if [ ! -x "$BIN" ] || [ ! -x "$BLACKBOX" ]; then
  echo "chaos_soak: $BIN or $BLACKBOX not built (run cmake --build $BUILD_DIR first)" >&2
  exit 1
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/tkmc_chaos.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

TOTAL=0

fail_summary() {  # label seed ordinal exit-code
  echo "chaos_soak: summary: FAILED first-failing-schedule=$1 seed=$2 ordinal=$3 exit=$4" >&2
  exit "$4"
}

run_schedule() {  # label deck seed ordinal shrink|grow [extra --inject args]
  local label=$1 deck=$2 seed=$3 ordinal=$4 mode=$5
  shift 5
  local run_dir="$WORK/$label"
  mkdir -p "$run_dir"
  local log="$run_dir/log.txt" status=0
  (cd "$run_dir" && timeout "$WATCHDOG" \
      "$OLDPWD/$BIN" -in "$OLDPWD/$deck" --telemetry telemetry \
      --inject comm.rank_kill="$ordinal" "$@" --inject-seed "$seed") \
      > "$log" 2>&1 || status=$?
  if [ "$status" -ne 0 ]; then
    echo "chaos_soak: $label (ordinal $ordinal) FAILED (exit $status)" >&2
    [ "$status" -eq 124 ] && echo "chaos_soak: $label HUNG past watchdog" >&2
    tail -20 "$log" >&2
    fail_summary "$label" "$seed" "$ordinal" "$status"
  fi
  if ! grep -q "survived 1 rank fail-stop" "$log"; then
    echo "chaos_soak: $label (ordinal $ordinal) did not survive a kill" >&2
    tail -20 "$log" >&2
    fail_summary "$label" "$seed" "$ordinal" 3
  fi
  if [ "$mode" = grow ] && ! grep -q "1 grow recover" "$log"; then
    echo "chaos_soak: $label (ordinal $ordinal) shrank despite a spare rank" >&2
    tail -20 "$log" >&2
    fail_summary "$label" "$seed" "$ordinal" 4
  fi
  # Every survived kill must leave a decodable post-mortem: the engine
  # dumps the flight recorder on RankFailure, and tkmc_blackbox must be
  # able to merge the per-rank dumps into one causal timeline.
  if ! ls "$run_dir"/telemetry/blackbox_rank*.bin > /dev/null 2>&1; then
    echo "chaos_soak: $label (ordinal $ordinal) left no blackbox dumps" >&2
    fail_summary "$label" "$seed" "$ordinal" 5
  fi
  if ! "$BLACKBOX" merge "$run_dir/telemetry" --tail 3 > "$run_dir/blackbox.txt" 2>&1; then
    echo "chaos_soak: $label (ordinal $ordinal) blackbox decode FAILED" >&2
    cat "$run_dir/blackbox.txt" >&2
    fail_summary "$label" "$seed" "$ordinal" 6
  fi
  local epochs
  epochs=$(ls "$run_dir/chaos_ckpt" 2>/dev/null | grep -c '^epoch_' || true)
  echo "    $label: ordinal $ordinal survived ($epochs epochs committed)"
  TOTAL=$((TOTAL + 1))
}

echo "==> chaos soak: fault-point catalog sanity (--inject list)"
if ! "$BIN" --inject list | grep -q "comm.rank_kill"; then
  echo "chaos_soak: --inject list does not register comm.rank_kill" >&2
  exit 1
fi

echo "==> phase A: $ITERATIONS full-epoch shrink schedules (${WATCHDOG}s watchdog each)"
for i in $(seq 1 "$ITERATIONS"); do
  # Deterministic ordinal spread over ~3 cycles of protocol traffic
  # (38 sends/cycle on the 2x2x1 grid), hitting every phase over the
  # sweep; the seed varies the rank the ordinal lands on.
  ordinal=$((1 + (i * 37) % 110))
  run_schedule "full_$i" "$FULL_DECK" "$i" "$ordinal" shrink \
      --inject comm.corrupt=p0.005
done

echo "==> phase B: delta-cadence grow schedules"
for i in $(seq 1 6); do
  ordinal=$((5 + (i * 31) % 110))
  run_schedule "delta_$i" "$DELTA_DECK" "$((100 + i))" "$ordinal" grow
done

echo "==> phase C: kills inside the consolidating commit"
# With max_delta_chain 3 the first consolidating full epoch is epoch 4;
# at 38 sends/cycle its commit votes are ordinals 147..149 and its acks
# 150..152 (no background corruption here, so ordinals stay aligned).
for ordinal in 147 148 149 150 151 152; do
  run_schedule "consolidate_$ordinal" "$DELTA_DECK" "$((200 + ordinal))" \
      "$ordinal" grow
done

echo "==> chaos soak: summary: all $TOTAL schedules survived" \
     "($ITERATIONS full-epoch, 6 delta-cadence, 6 consolidation kills)"
