#include "sunway/perf_model.hpp"

#include <algorithm>

namespace tkmc {

RooflinePoint PerfModel::analyze(std::string name, const Traffic& traffic) const {
  RooflinePoint point;
  point.name = std::move(name);
  point.flops = traffic.flops;
  point.mainBytes = traffic.mainBytes();
  point.intensity = traffic.arithmeticIntensity();
  point.attainableFlops = spec_.attainableFlops(point.intensity);
  point.peakFraction = point.attainableFlops / spec_.peakSpFlops();
  point.modeledSeconds = modeledSeconds(traffic);
  return point;
}

double PerfModel::modeledSeconds(const Traffic& traffic) const {
  const double computeTime =
      static_cast<double>(traffic.flops) / spec_.peakSpFlops();
  const double memoryTime =
      static_cast<double>(traffic.mainBytes()) / spec_.mainMemoryBandwidth;
  const double rmaTime =
      static_cast<double>(traffic.rmaBytes) / spec_.rmaBandwidth;
  // DMA and RMA overlap with compute on the real hardware; the bound is
  // the slowest of the three flows.
  return std::max({computeTime, memoryTime, rmaTime});
}

}  // namespace tkmc
