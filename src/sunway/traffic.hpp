#pragma once

#include <cstdint>

namespace tkmc {

/// Memory traffic and arithmetic accounting for one operator execution.
///
/// Counts are algorithm-level: every pass over a main-memory buffer adds
/// its bytes, DMA transfers add theirs, RMA stays on the CPE mesh and is
/// tracked separately (it does not touch main memory, which is exactly
/// the point of the big-fusion design).
struct Traffic {
  std::uint64_t mainReadBytes = 0;
  std::uint64_t mainWriteBytes = 0;
  std::uint64_t rmaBytes = 0;
  std::uint64_t flops = 0;

  std::uint64_t mainBytes() const { return mainReadBytes + mainWriteBytes; }

  /// FLOP per main-memory byte (the roofline x-axis).
  double arithmeticIntensity() const {
    const std::uint64_t bytes = mainBytes();
    return bytes == 0 ? 0.0 : static_cast<double>(flops) / static_cast<double>(bytes);
  }

  Traffic& operator+=(const Traffic& other) {
    mainReadBytes += other.mainReadBytes;
    mainWriteBytes += other.mainWriteBytes;
    rmaBytes += other.rmaBytes;
    flops += other.flops;
    return *this;
  }
};

}  // namespace tkmc
