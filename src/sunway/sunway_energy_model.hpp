#pragma once

#include <memory>
#include <vector>

#include "kmc/energy_model.hpp"
#include "nnp/network.hpp"
#include "sunway/bigfusion_operator.hpp"
#include "sunway/feature_operator.hpp"
#include "tabulation/cet.hpp"
#include "tabulation/net.hpp"

namespace tkmc {

/// The production TensorKMC energy backend: triple-encoding tables feeding
/// the fast feature operator and the big-fusion operator on the simulated
/// SW26010-pro core group, in single precision (the paper's Sec. 3.4-3.5
/// pipeline, end to end).
///
/// Numerically this is the float counterpart of NnpEnergyModel: same
/// tables, same network (via the folded snapshot), so per-state energies
/// agree to single-precision accumulation error. Trajectories driven by
/// this backend are therefore statistically — not bitwise — equivalent to
/// the double-precision path, exactly as on the real machine.
class SunwayEnergyModel : public EnergyModel {
 public:
  SunwayEnergyModel(const Cet& cet, const Net& net, const FeatureTable& table,
                    const Network& network, int mBlock = 32);

  std::vector<double> stateEnergies(const LatticeState& state, Vec3i center,
                                    int numFinal) override;

  std::vector<double> stateEnergiesFromVet(Vet& vet, int numFinal) override;

  /// Batched evaluation: one feature dispatch with the TABLE and packed
  /// NET LDM-resident across all systems, one big-fusion forward over
  /// the concatenated feature matrix (tile count scales with the batch,
  /// keeping all CPE columns busy), then the per-state MPE reductions.
  /// Bit-identical to per-system stateEnergiesFromVet() calls in order.
  /// While telemetry is enabled, records the batch-size histogram and
  /// per-dispatch traffic (sunway.batch.*, sunway.dispatch.*).
  std::vector<std::vector<double>> stateEnergiesBatch(
      std::span<Vet* const> vets, int numFinal) override;

  bool supportsVet() const override { return true; }

  const char* name() const override { return "nnp-tet-sunway"; }

  /// Accumulated operator traffic since the last call (diagnostics).
  Traffic collectTraffic() { return grid_.collectTraffic(); }

  /// Modeled SW26010 elapsed time of every dispatch since the last call
  /// (launch latency + per-run critical path; see CpeGrid). This is the
  /// cost benches report — host wall-clock of the functional simulator
  /// does not express launch amortization or mesh occupancy.
  double collectModeledSeconds() { return grid_.collectModeledSeconds(); }

  const CpeGrid& grid() const { return grid_; }

  /// One-time model distribution cost (charged at construction).
  const Traffic& modelLoadTraffic() const { return loadTraffic_; }

 private:
  const Cet& cet_;
  CpeGrid grid_;
  FeatureOperator features_;
  BigFusionOperator fusion_;
  Traffic loadTraffic_;
  std::vector<float> featureBuffer_;
  std::vector<float> energyBuffer_;
  std::vector<const Vet*> vetPtrScratch_;  // reused per dispatch
};

}  // namespace tkmc
