#pragma once

#include <memory>
#include <vector>

#include "kmc/energy_model.hpp"
#include "nnp/network.hpp"
#include "sunway/bigfusion_operator.hpp"
#include "sunway/feature_operator.hpp"
#include "tabulation/cet.hpp"
#include "tabulation/net.hpp"

namespace tkmc {

/// The production TensorKMC energy backend: triple-encoding tables feeding
/// the fast feature operator and the big-fusion operator on the simulated
/// SW26010-pro core group, in single precision (the paper's Sec. 3.4-3.5
/// pipeline, end to end).
///
/// Numerically this is the float counterpart of NnpEnergyModel: same
/// tables, same network (via the folded snapshot), so per-state energies
/// agree to single-precision accumulation error. Trajectories driven by
/// this backend are therefore statistically — not bitwise — equivalent to
/// the double-precision path, exactly as on the real machine.
class SunwayEnergyModel : public EnergyModel {
 public:
  SunwayEnergyModel(const Cet& cet, const Net& net, const FeatureTable& table,
                    const Network& network, int mBlock = 32);

  std::vector<double> stateEnergies(const LatticeState& state, Vec3i center,
                                    int numFinal) override;

  std::vector<double> stateEnergiesFromVet(Vet& vet, int numFinal) override;

  bool supportsVet() const override { return true; }

  const char* name() const override { return "nnp-tet-sunway"; }

  /// Accumulated operator traffic since the last call (diagnostics).
  Traffic collectTraffic() { return grid_.collectTraffic(); }

  /// One-time model distribution cost (charged at construction).
  const Traffic& modelLoadTraffic() const { return loadTraffic_; }

 private:
  const Cet& cet_;
  CpeGrid grid_;
  FeatureOperator features_;
  BigFusionOperator fusion_;
  Traffic loadTraffic_;
  std::vector<float> featureBuffer_;
  std::vector<float> energyBuffer_;
};

}  // namespace tkmc
