#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tkmc {

/// Local device memory (scratchpad) of one simulated CPE.
///
/// A bump allocator over a fixed-capacity arena. Kernels allocate their
/// working buffers here; exceeding the 256 KiB capacity throws, which is
/// how the simulator enforces the same constraint the real hardware
/// imposes on operator design (the reason big-fusion tiles its input and
/// distributes model parameters across CPEs in the first place).
class Ldm {
 public:
  /// `cpeId` is carried into overflow diagnostics so an exhausted
  /// scratchpad names the offending core (-1 when standalone).
  explicit Ldm(std::size_t capacityBytes, int cpeId = -1);

  /// Allocates `count` elements of T, 64-byte aligned. Throws
  /// tkmc::InvariantError naming the CPE, the requested bytes, the
  /// capacity, and the high-water mark when the arena is exhausted.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    void* p = allocBytes(count * sizeof(T), alignof(T) > 64 ? alignof(T) : 64);
    return {static_cast<T*>(p), count};
  }

  /// Releases everything allocated since construction or the last reset.
  void reset() { offset_ = 0; }

  std::size_t capacity() const { return arena_.size(); }
  std::size_t used() const { return offset_; }
  std::size_t highWater() const { return highWater_; }
  int cpeId() const { return cpeId_; }

 private:
  void* allocBytes(std::size_t bytes, std::size_t alignment);

  std::vector<std::uint8_t> arena_;
  std::size_t offset_ = 0;
  std::size_t highWater_ = 0;
  int cpeId_ = -1;
};

}  // namespace tkmc
