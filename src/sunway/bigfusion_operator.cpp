#include "sunway/bigfusion_operator.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/telemetry/tracer.hpp"
#include "nnp/conv_stack.hpp"

namespace tkmc {

BigFusionOperator::BigFusionOperator(const Network::Snapshot& snapshot,
                                     CpeGrid& grid, int mBlock)
    : grid_(grid), channels_(snapshot.channels), mBlock_(mBlock) {
  require(mBlock > 0, "tile height must be positive");
  require(numLayers() <= grid.spec().cpeCols,
          "big-fusion supports at most one layer per CPE column");
  layers_.resize(static_cast<std::size_t>(numLayers()));
  for (int li = 0; li < numLayers(); ++li) {
    const int in = channels_[static_cast<std::size_t>(li)];
    const int out = channels_[static_cast<std::size_t>(li) + 1];
    LayerImage& img = layers_[static_cast<std::size_t>(li)];
    img.weightsChannelMajor.resize(static_cast<std::size_t>(in) * out);
    for (int o = 0; o < out; ++o)
      for (int c = 0; c < in; ++c)
        img.weightsChannelMajor[static_cast<std::size_t>(c) * out + o] =
            snapshot.weights[static_cast<std::size_t>(li)]
                            [static_cast<std::size_t>(o) * in + c];
    img.biases = snapshot.biases[static_cast<std::size_t>(li)];
  }

  // Static LDM budget check: tile activations (ping-pong at max width),
  // the largest remote layer image, and the resident own layer image.
  const int maxWidth = *std::max_element(channels_.begin(), channels_.end());
  std::size_t maxLayerBytes = 0;
  for (const LayerImage& img : layers_)
    maxLayerBytes = std::max(
        maxLayerBytes, (img.weightsChannelMajor.size() + img.biases.size()) *
                           sizeof(float));
  const std::size_t working =
      2 * static_cast<std::size_t>(mBlock_) * maxWidth * sizeof(float) +
      2 * maxLayerBytes;
  require(working <= grid.spec().ldmBytes,
          "big-fusion working set exceeds LDM; reduce mBlock or layers");
}

Traffic BigFusionOperator::loadModel() {
  // Every CPE of column j receives layer j once via DMA. Traffic is the
  // model size times the 8 rows — a one-time cost amortized over the
  // simulation, reported separately from steady-state forward traffic.
  Traffic total;
  grid_.run([&](CpeContext& cpe) {
    const int col = cpe.col();
    if (col >= numLayers()) return;
    const LayerImage& img = layers_[static_cast<std::size_t>(col)];
    auto w = cpe.ldm().alloc<float>(img.weightsChannelMajor.size());
    cpe.dmaGet(w.data(), img.weightsChannelMajor.data(),
               img.weightsChannelMajor.size() * sizeof(float));
    auto b = cpe.ldm().alloc<float>(img.biases.size());
    cpe.dmaGet(b.data(), img.biases.data(), img.biases.size() * sizeof(float));
  });
  total = grid_.collectTraffic();
  modelLoaded_ = true;
  return total;
}

void BigFusionOperator::forward(const float* input, int m, float* output) const {
  TKMC_SPAN("sunway.bigfusion_forward");
  require(modelLoaded_, "call loadModel() before forward()");
  require(m > 0, "batch must be non-empty");
  const int c0 = inputDim();
  const int cLast = outputDim();
  const int maxWidth = *std::max_element(channels_.begin(), channels_.end());
  const int numCpes = grid_.size();

  // Row tiles are dealt to CPEs round-robin: tile t -> CPE t % 64.
  const int numTiles = tileCount(m);

  grid_.run([&](CpeContext& cpe) {
    Ldm& ldm = cpe.ldm();
    auto bufA = ldm.alloc<float>(static_cast<std::size_t>(mBlock_) * maxWidth);
    auto bufB = ldm.alloc<float>(static_cast<std::size_t>(mBlock_) * maxWidth);

    for (int tile = cpe.id(); tile < numTiles; tile += numCpes) {
      const int rowBegin = tile * mBlock_;
      const int rows = std::min(mBlock_, m - rowBegin);
      // DMA get: the only main-memory read of the whole stack.
      cpe.dmaGet(bufA.data(), input + static_cast<std::size_t>(rowBegin) * c0,
                 static_cast<std::size_t>(rows) * c0 * sizeof(float));
      float* cur = bufA.data();
      float* nxt = bufB.data();
      for (int li = 0; li < numLayers(); ++li) {
        const int in = channels_[static_cast<std::size_t>(li)];
        const int out = channels_[static_cast<std::size_t>(li) + 1];
        const bool lastLayer = li + 1 == numLayers();
        const LayerImage& img = layers_[static_cast<std::size_t>(li)];
        // Layer parameters arrive from the owning column over the mesh.
        // Algorithm 1 overlaps the RMA of layer i+1 with the compute of
        // layer i, so no wall-clock is charged here — only the on-mesh
        // byte counters; the kernel reads the owner's image directly.
        cpe.traffic().rmaBytes +=
            (img.weightsChannelMajor.size() + img.biases.size()) *
            sizeof(float);
        // Fused matmul + bias + ReLU; the exact kernel ConvStack's fused
        // mode uses, so results are bit-identical.
        for (int px = 0; px < rows; ++px)
          detail::fusedConvPixel(cur + static_cast<std::size_t>(px) * in,
                                 img.weightsChannelMajor.data(),
                                 img.biases.data(),
                                 nxt + static_cast<std::size_t>(px) * out, in,
                                 out, !lastLayer);
        cpe.traffic().flops +=
            2ULL * rows * in * out + static_cast<std::uint64_t>(rows) * out *
                                         (lastLayer ? 1 : 2);
        std::swap(cur, nxt);
      }
      // DMA put: the only main-memory write.
      cpe.dmaPut(output + static_cast<std::size_t>(rowBegin) * cLast, cur,
                 static_cast<std::size_t>(rows) * cLast * sizeof(float));
    }
  });
}

}  // namespace tkmc
