#pragma once

#include <vector>

#include "nnp/network.hpp"
#include "sunway/cpe_grid.hpp"
#include "sunway/traffic.hpp"

namespace tkmc {

/// Big-fusion operator (paper Sec. 3.5, Algorithm 1) on the simulated
/// CPE cluster.
///
/// The entire conv stack executes as one kernel: each CPE tiles the
/// activation matrix into m_block rows, DMAs a tile in, pushes it through
/// every (matmul + bias + ReLU) layer while the activations stay resident
/// in LDM, and DMAs only the final layer's output back. Model parameters
/// are distributed across CPE columns (column j owns layer j) and shared
/// along rows via RMA, so steady-state main-memory traffic is exactly one
/// input read plus one output write.
///
/// Numerics match ConvStack::Mode::kFusedLayer bit-for-bit (identical
/// inner-loop order in single precision).
class BigFusionOperator {
 public:
  /// `mBlock` is the tile height per CPE per pass. The constructor
  /// verifies the working set fits the LDM and that the layer count does
  /// not exceed the mesh width (the paper's 8-layer limit).
  BigFusionOperator(const Network::Snapshot& snapshot, CpeGrid& grid,
                    int mBlock = 32);

  int inputDim() const { return channels_.front(); }
  int outputDim() const { return channels_.back(); }
  int numLayers() const { return static_cast<int>(channels_.size()) - 1; }

  /// Loads the distributed model into CPE column LDM images. Counted
  /// separately from forward() traffic because the model stays resident
  /// across KMC steps. Returns the one-time load traffic.
  Traffic loadModel();

  /// Forward pass: input [m][inputDim] -> output [m][outputDim].
  /// `m` may span many vacancy systems — the batched pipeline passes the
  /// concatenated feature matrix of a whole dirty set, so tileCount(m)
  /// grows with the batch and round-robin dealing keeps every CPE column
  /// busy instead of idling most of the mesh on a 9-state dispatch.
  /// Results are row-independent: forward over a concatenation is
  /// bit-identical to per-system forwards. Traffic accumulates on the
  /// grid counters (collect with grid.collectTraffic()).
  void forward(const float* input, int m, float* output) const;

  /// Row tiles a forward over m rows deals to the mesh (ceil(m/mBlock)).
  int tileCount(int m) const { return (m + mBlock_ - 1) / mBlock_; }

 private:
  struct LayerImage {
    // Channel-major [in][out] weights plus biases, as resident in the
    // owning column's LDM.
    std::vector<float> weightsChannelMajor;
    std::vector<float> biases;
  };

  CpeGrid& grid_;
  std::vector<int> channels_;
  int mBlock_;
  std::vector<LayerImage> layers_;
  bool modelLoaded_ = false;
};

}  // namespace tkmc
