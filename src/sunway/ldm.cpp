#include "sunway/ldm.hpp"

#include <cstdint>

#include "common/error.hpp"

namespace tkmc {

Ldm::Ldm(std::size_t capacityBytes) : arena_(capacityBytes) {
  require(capacityBytes > 0, "LDM capacity must be positive");
}

void* Ldm::allocBytes(std::size_t bytes, std::size_t alignment) {
  // Align the absolute address (the vector's base is not necessarily
  // 64-byte aligned), then charge the padding against the arena.
  const auto base = reinterpret_cast<std::uintptr_t>(arena_.data());
  const std::uintptr_t address =
      (base + offset_ + alignment - 1) & ~(alignment - 1);
  const std::size_t newOffset = (address - base) + bytes;
  require(newOffset <= arena_.size(),
          "LDM overflow: kernel working set exceeds scratchpad capacity");
  offset_ = newOffset;
  if (offset_ > highWater_) highWater_ = offset_;
  return reinterpret_cast<void*>(address);
}

}  // namespace tkmc
