#include "sunway/ldm.hpp"

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace tkmc {

Ldm::Ldm(std::size_t capacityBytes, int cpeId)
    : arena_(capacityBytes), cpeId_(cpeId) {
  require(capacityBytes > 0, "LDM capacity must be positive");
}

void* Ldm::allocBytes(std::size_t bytes, std::size_t alignment) {
  // Align the absolute address (the vector's base is not necessarily
  // 64-byte aligned), then charge the padding against the arena.
  const auto base = reinterpret_cast<std::uintptr_t>(arena_.data());
  const std::uintptr_t address =
      (base + offset_ + alignment - 1) & ~(alignment - 1);
  const std::size_t newOffset = (address - base) + bytes;
  if (newOffset > arena_.size())
    throw InvariantError(
        "LDM overflow on CPE " +
        (cpeId_ >= 0 ? std::to_string(cpeId_) : std::string("<standalone>")) +
        ": requested " + std::to_string(bytes) + " bytes (" +
        std::to_string(newOffset - offset_) + " with alignment) at offset " +
        std::to_string(offset_) + ", capacity " +
        std::to_string(arena_.size()) + ", high water " +
        std::to_string(highWater_) +
        " — kernel working set exceeds scratchpad capacity");
  offset_ = newOffset;
  if (offset_ > highWater_) highWater_ = offset_;
  return reinterpret_cast<void*>(address);
}

}  // namespace tkmc
