#pragma once

#include <string>
#include <vector>

#include "sunway/arch_spec.hpp"
#include "sunway/traffic.hpp"

namespace tkmc {

/// One operator's placement on the roofline (paper Fig. 9).
struct RooflinePoint {
  std::string name;
  double intensity = 0.0;        // FLOP/byte of main-memory traffic
  double attainableFlops = 0.0;  // roofline-bounded FLOP/s
  double peakFraction = 0.0;     // attainable / peak
  double modeledSeconds = 0.0;   // max(compute time, memory time)
  std::uint64_t flops = 0;
  std::uint64_t mainBytes = 0;
};

/// Analytic roofline model of one SW26010-pro core group.
///
/// Converts measured operator traffic into the quantities the paper's
/// Fig. 9 reports: arithmetic intensity, attainable performance, and
/// whether the kernel is memory- or compute-bound.
class PerfModel {
 public:
  explicit PerfModel(ArchSpec spec = {}) : spec_(spec) {}

  const ArchSpec& spec() const { return spec_; }

  RooflinePoint analyze(std::string name, const Traffic& traffic) const;

  /// Modeled wall time of an operator execution on one CG.
  double modeledSeconds(const Traffic& traffic) const;

  /// True when the kernel sits right of the roofline knee.
  bool computeBound(const Traffic& traffic) const {
    return traffic.arithmeticIntensity() >= spec_.rooflineKnee;
  }

 private:
  ArchSpec spec_;
};

}  // namespace tkmc
