#include "sunway/feature_operator.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "common/telemetry/tracer.hpp"
#include "tabulation/cet.hpp"

namespace tkmc {

namespace {

// The LDM bump allocator hands out 64-byte-aligned blocks; working-set
// estimates must round each allocation the same way or a kernel could
// pass the check and still overflow the arena.
std::size_t alignUp64(std::size_t bytes) { return (bytes + 63) & ~std::size_t{63}; }

}  // namespace

FeatureOperator::FeatureOperator(const Net& net, const FeatureTable& table,
                                 CpeGrid& grid)
    : net_(net), table_(table), grid_(grid) {
  // Pack NET into the 4-byte-per-entry LDM encoding.
  packedOffsets_.push_back(0);
  for (int site = 0; site < net_.regionSites(); ++site) {
    for (const Net::Entry& e : net_.neighbors(site)) {
      require(e.siteId >= 0 && e.siteId < 65536 && e.distIndex >= 0 &&
                  e.distIndex < 65536,
              "NET entry does not fit the packed encoding");
      packedEntries_.push_back({static_cast<std::uint16_t>(e.siteId),
                                static_cast<std::uint16_t>(e.distIndex)});
    }
    packedOffsets_.push_back(packedEntries_.size());
  }
  tableF32_.resize(static_cast<std::size_t>(table_.numDistances()) * table_.numPq());
  for (int d = 0; d < table_.numDistances(); ++d)
    for (int k = 0; k < table_.numPq(); ++k)
      tableF32_[static_cast<std::size_t>(d) * table_.numPq() + k] =
          static_cast<float>(table_.value(d, k));
}

void FeatureOperator::compute(const Vet& vet, int numFinal,
                              std::vector<float>& out) const {
  TKMC_SPAN("sunway.feature_compute");
  const Vet* one = &vet;
  computeBatch({&one, 1}, numFinal, out);
}

std::size_t FeatureOperator::batchWorkingSetBytes(int numStates,
                                                  int vetSites) const {
  const int nRegion = net_.regionSites();
  const int numCpes = grid_.size();
  // Worst CPE under the circular site assignment: most sites and most
  // packed NET entries (the two can peak on different CPEs).
  std::size_t maxSites = 0;
  std::size_t maxEntries = 0;
  for (int id = 0; id < numCpes; ++id) {
    std::size_t sites = 0;
    std::size_t entries = 0;
    for (int s = id; s < nRegion; s += numCpes) {
      ++sites;
      entries += packedOffsets_[static_cast<std::size_t>(s) + 1] -
                 packedOffsets_[static_cast<std::size_t>(s)];
    }
    maxSites = std::max(maxSites, sites);
    maxEntries = std::max(maxEntries, entries);
  }
  const std::size_t vetBytes =
      static_cast<std::size_t>(vetSites) * sizeof(Species);
  return alignUp64(tableF32_.size() * sizeof(float)) + alignUp64(vetBytes) +
         alignUp64(maxEntries * sizeof(PackedEntry)) +
         alignUp64(maxSites * static_cast<std::size_t>(numStates) *
                   static_cast<std::size_t>(dim()) * sizeof(float));
}

void FeatureOperator::computeBatch(std::span<const Vet* const> vets,
                                   int numFinal,
                                   std::vector<float>& out) const {
  TKMC_SPAN("sunway.feature_batch");
  require(numFinal >= 0 && numFinal <= kNumJumpDirections,
          "invalid number of final states");
  const int nRegion = net_.regionSites();
  const int d = dim();
  const int numPq = table_.numPq();
  const int numStates = 1 + numFinal;
  const int numSystems = static_cast<int>(vets.size());
  const std::size_t stateStride = static_cast<std::size_t>(nRegion) * d;
  const std::size_t systemStride =
      stateStride * static_cast<std::size_t>(numStates);
  out.assign(systemStride * static_cast<std::size_t>(numSystems), 0.0f);
  if (numSystems == 0) return;
  const int nAll = vets[0]->size();
  for (const Vet* vet : vets)
    require(vet != nullptr && vet->size() == nAll,
            "every VET of a batch must come from the same CET");

  const std::size_t working = batchWorkingSetBytes(numStates, nAll);
  require(working <= grid_.spec().ldmBytes,
          "batched feature working set (" + std::to_string(working) +
              " bytes: TABLE + NET rows + VET + one system's features) "
              "exceeds LDM capacity (" +
              std::to_string(grid_.spec().ldmBytes) +
              " bytes); reduce the table resolution, cutoff, or state count");

  const int numCpes = grid_.size();
  grid_.run([&](CpeContext& cpe) {
    Ldm& ldm = cpe.ldm();
    // Sites handled by this CPE (circular assignment).
    std::vector<int> mySites;
    for (int s = cpe.id(); s < nRegion; s += numCpes) mySites.push_back(s);
    if (mySites.empty()) return;

    // Batch-resident LDM: feature TABLE and this CPE's NET rows are
    // fetched once and reused for every system of the batch; the VET
    // copy and the per-system feature block are overwritten per system.
    auto tableLdm = ldm.alloc<float>(tableF32_.size());
    cpe.dmaGet(tableLdm.data(), tableF32_.data(),
               tableF32_.size() * sizeof(float));
    std::size_t myEntryCount = 0;
    for (int s : mySites)
      myEntryCount += packedOffsets_[static_cast<std::size_t>(s) + 1] -
                      packedOffsets_[static_cast<std::size_t>(s)];
    auto netLdm = ldm.alloc<PackedEntry>(myEntryCount);
    {
      std::size_t cursor = 0;
      for (int s : mySites) {
        const std::size_t begin = packedOffsets_[static_cast<std::size_t>(s)];
        const std::size_t count =
            packedOffsets_[static_cast<std::size_t>(s) + 1] - begin;
        cpe.dmaGet(netLdm.data() + cursor, packedEntries_.data() + begin,
                   count * sizeof(PackedEntry));
        cursor += count;
      }
    }
    auto vetLdm = ldm.alloc<Species>(static_cast<std::size_t>(nAll));
    auto featLdm = ldm.alloc<float>(mySites.size() *
                                    static_cast<std::size_t>(numStates) * d);

    for (int sys = 0; sys < numSystems; ++sys) {
      cpe.dmaGet(vetLdm.data(), vets[sys]->data().data(),
                 static_cast<std::size_t>(nAll) * sizeof(Species));
      std::fill(featLdm.begin(), featLdm.end(), 0.0f);

      for (int state = 0; state < numStates; ++state) {
        // Simulate the hop for final state k by swapping the LDM VET copy.
        if (state > 0) {
          const int target = Cet::jumpTargetId(state - 1);
          std::swap(vetLdm[0], vetLdm[static_cast<std::size_t>(target)]);
        }
        std::size_t cursor = 0;
        for (std::size_t si = 0; si < mySites.size(); ++si) {
          const int s = mySites[si];
          const std::size_t count =
              packedOffsets_[static_cast<std::size_t>(s) + 1] -
              packedOffsets_[static_cast<std::size_t>(s)];
          float* f =
              featLdm.data() +
              (static_cast<std::size_t>(state) * mySites.size() + si) * d;
          std::uint64_t accumulated = 0;
          for (std::size_t e = 0; e < count; ++e) {
            const PackedEntry entry = netLdm[cursor + e];
            const Species sp = vetLdm[entry.siteId];
            if (sp == Species::kVacancy) continue;
            const float* row = tableLdm.data() +
                               static_cast<std::size_t>(entry.distIndex) * numPq;
            float* block = f + static_cast<int>(sp) * numPq;
            for (int k = 0; k < numPq; ++k) block[k] += row[k];
            ++accumulated;
          }
          // Only entries that actually accumulated count as work;
          // vacancy-skipped entries do no arithmetic.
          cpe.traffic().flops +=
              accumulated * static_cast<std::uint64_t>(numPq);
          cursor += count;
        }
        // Undo the swap so every state starts from the initial VET.
        if (state > 0) {
          const int target = Cet::jumpTargetId(state - 1);
          std::swap(vetLdm[0], vetLdm[static_cast<std::size_t>(target)]);
        }
      }

      // One DMA put of everything generated for this system (paper:
      // features kept in LDM until all states are done).
      for (int state = 0; state < numStates; ++state)
        for (std::size_t si = 0; si < mySites.size(); ++si) {
          float* dst = out.data() +
                       static_cast<std::size_t>(sys) * systemStride +
                       static_cast<std::size_t>(state) * stateStride +
                       static_cast<std::size_t>(mySites[si]) * d;
          const float* src =
              featLdm.data() +
              (static_cast<std::size_t>(state) * mySites.size() + si) * d;
          cpe.dmaPut(dst, src, static_cast<std::size_t>(d) * sizeof(float));
        }
    }
  });
}

}  // namespace tkmc
