#include "sunway/feature_operator.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/telemetry/tracer.hpp"
#include "tabulation/cet.hpp"

namespace tkmc {

FeatureOperator::FeatureOperator(const Net& net, const FeatureTable& table,
                                 CpeGrid& grid)
    : net_(net), table_(table), grid_(grid) {
  // Pack NET into the 4-byte-per-entry LDM encoding.
  packedOffsets_.push_back(0);
  for (int site = 0; site < net_.regionSites(); ++site) {
    for (const Net::Entry& e : net_.neighbors(site)) {
      require(e.siteId >= 0 && e.siteId < 65536 && e.distIndex >= 0 &&
                  e.distIndex < 65536,
              "NET entry does not fit the packed encoding");
      packedEntries_.push_back({static_cast<std::uint16_t>(e.siteId),
                                static_cast<std::uint16_t>(e.distIndex)});
    }
    packedOffsets_.push_back(packedEntries_.size());
  }
  tableF32_.resize(static_cast<std::size_t>(table_.numDistances()) * table_.numPq());
  for (int d = 0; d < table_.numDistances(); ++d)
    for (int k = 0; k < table_.numPq(); ++k)
      tableF32_[static_cast<std::size_t>(d) * table_.numPq() + k] =
          static_cast<float>(table_.value(d, k));
}

void FeatureOperator::compute(const Vet& vet, int numFinal,
                              std::vector<float>& out) const {
  TKMC_SPAN("sunway.feature_compute");
  require(numFinal >= 0 && numFinal <= kNumJumpDirections,
          "invalid number of final states");
  const int nRegion = net_.regionSites();
  const int d = dim();
  const int numPq = table_.numPq();
  const int numStates = 1 + numFinal;
  const std::size_t stateStride = static_cast<std::size_t>(nRegion) * d;
  out.assign(stateStride * static_cast<std::size_t>(numStates), 0.0f);

  const int numCpes = grid_.size();
  grid_.run([&](CpeContext& cpe) {
    Ldm& ldm = cpe.ldm();
    // Sites handled by this CPE (circular assignment).
    std::vector<int> mySites;
    for (int s = cpe.id(); s < nRegion; s += numCpes) mySites.push_back(s);
    if (mySites.empty()) return;

    // LDM residents: feature TABLE, VET copy, this CPE's NET rows.
    auto tableLdm = ldm.alloc<float>(tableF32_.size());
    cpe.dmaGet(tableLdm.data(), tableF32_.data(),
               tableF32_.size() * sizeof(float));
    auto vetLdm = ldm.alloc<Species>(static_cast<std::size_t>(vet.size()));
    cpe.dmaGet(vetLdm.data(), vet.data().data(),
               static_cast<std::size_t>(vet.size()) * sizeof(Species));
    std::size_t myEntryCount = 0;
    for (int s : mySites)
      myEntryCount += packedOffsets_[static_cast<std::size_t>(s) + 1] -
                      packedOffsets_[static_cast<std::size_t>(s)];
    auto netLdm = ldm.alloc<PackedEntry>(myEntryCount);
    {
      std::size_t cursor = 0;
      for (int s : mySites) {
        const std::size_t begin = packedOffsets_[static_cast<std::size_t>(s)];
        const std::size_t count =
            packedOffsets_[static_cast<std::size_t>(s) + 1] - begin;
        cpe.dmaGet(netLdm.data() + cursor, packedEntries_.data() + begin,
                   count * sizeof(PackedEntry));
        cursor += count;
      }
    }

    // All generated features stay in LDM until every state is done.
    auto featLdm = ldm.alloc<float>(mySites.size() *
                                    static_cast<std::size_t>(numStates) * d);
    std::fill(featLdm.begin(), featLdm.end(), 0.0f);

    for (int state = 0; state < numStates; ++state) {
      // Simulate the hop for final state k by swapping the LDM VET copy.
      if (state > 0) {
        const int target = Cet::jumpTargetId(state - 1);
        std::swap(vetLdm[0], vetLdm[static_cast<std::size_t>(target)]);
      }
      std::size_t cursor = 0;
      for (std::size_t si = 0; si < mySites.size(); ++si) {
        const int s = mySites[si];
        const std::size_t count =
            packedOffsets_[static_cast<std::size_t>(s) + 1] -
            packedOffsets_[static_cast<std::size_t>(s)];
        float* f = featLdm.data() +
                   (static_cast<std::size_t>(state) * mySites.size() + si) * d;
        for (std::size_t e = 0; e < count; ++e) {
          const PackedEntry entry = netLdm[cursor + e];
          const Species sp = vetLdm[entry.siteId];
          if (sp == Species::kVacancy) continue;
          const float* row =
              tableLdm.data() + static_cast<std::size_t>(entry.distIndex) * numPq;
          float* block = f + static_cast<int>(sp) * numPq;
          for (int k = 0; k < numPq; ++k) block[k] += row[k];
        }
        cpe.traffic().flops += count * static_cast<std::uint64_t>(numPq);
        cursor += count;
      }
      // Undo the swap so every state starts from the initial VET.
      if (state > 0) {
        const int target = Cet::jumpTargetId(state - 1);
        std::swap(vetLdm[0], vetLdm[static_cast<std::size_t>(target)]);
      }
    }

    // One DMA put of everything generated (paper: features kept in LDM
    // until all states are done).
    for (int state = 0; state < numStates; ++state)
      for (std::size_t si = 0; si < mySites.size(); ++si) {
        float* dst = out.data() + static_cast<std::size_t>(state) * stateStride +
                     static_cast<std::size_t>(mySites[si]) * d;
        const float* src =
            featLdm.data() +
            (static_cast<std::size_t>(state) * mySites.size() + si) * d;
        cpe.dmaPut(dst, src, static_cast<std::size_t>(d) * sizeof(float));
      }
  });
}

}  // namespace tkmc
