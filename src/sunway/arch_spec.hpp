#pragma once

#include <cstdint>

namespace tkmc {

/// Architectural parameters of one SW26010-pro core group (CG), as used
/// by the functional simulator and the roofline performance model.
///
/// The paper quotes a roofline knee at 43.63 FLOP/byte and reports the
/// big-fusion operator reaching 76.64% of single-precision peak. The
/// absolute bandwidth below is chosen so that peak / bandwidth reproduces
/// that knee; all derived figures (Fig. 9) depend only on the ratio.
struct ArchSpec {
  int cpesPerGroup = 64;          // 8 x 8 mesh
  int cpeRows = 8;
  int cpeCols = 8;
  std::size_t ldmBytes = 256 * 1024;      // local device memory per CPE
  double mainMemoryBandwidth = 51.2e9;    // bytes/s, DMA to main memory
  double rmaBandwidth = 400.0e9;          // bytes/s aggregate CPE mesh
  double rooflineKnee = 43.63;            // FLOP/byte (paper Fig. 9)
  int coresPerGroup = 65;                 // 1 MPE + 64 CPEs
  int groupsPerNode = 6;
  double kernelLaunchSeconds = 10e-6;     // athread spawn + join per run

  /// Single-precision peak of one CG implied by the knee.
  double peakSpFlops() const { return rooflineKnee * mainMemoryBandwidth; }

  /// Single-precision peak of one CPE (peak split evenly over the mesh).
  double cpePeakSpFlops() const {
    return peakSpFlops() / static_cast<double>(cpesPerGroup);
  }

  /// Roofline-attainable FLOP/s at a given arithmetic intensity.
  double attainableFlops(double intensity) const {
    const double bound = intensity * mainMemoryBandwidth;
    const double peak = peakSpFlops();
    return bound < peak ? bound : peak;
  }
};

}  // namespace tkmc
