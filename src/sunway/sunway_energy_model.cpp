#include "sunway/sunway_energy_model.hpp"

#include "common/error.hpp"
#include "kmc/nnp_energy_model.hpp"

namespace tkmc {

SunwayEnergyModel::SunwayEnergyModel(const Cet& cet, const Net& net,
                                     const FeatureTable& table,
                                     const Network& network, int mBlock)
    : cet_(cet), features_(net, table, grid_),
      fusion_(network.foldedSnapshot(), grid_, mBlock) {
  require(network.inputDim() == table.numPq() * kNumElements,
          "network input dimension must match the descriptor");
  loadTraffic_ = fusion_.loadModel();
}

std::vector<double> SunwayEnergyModel::stateEnergies(const LatticeState& state,
                                                     Vec3i center,
                                                     int numFinal) {
  Vet vet = Vet::gather(cet_, state, center);
  return stateEnergiesFromVet(vet, numFinal);
}

std::vector<double> SunwayEnergyModel::stateEnergiesFromVet(Vet& vet,
                                                            int numFinal) {
  const int nRegion = cet_.nRegion();
  const int numStates = 1 + numFinal;
  features_.compute(vet, numFinal, featureBuffer_);
  const int m = numStates * nRegion;
  energyBuffer_.resize(static_cast<std::size_t>(m));
  fusion_.forward(featureBuffer_.data(), m, energyBuffer_.data());
  // Per-state reduction with vacancy masking; accumulate the float
  // atomic energies in double (the MPE-side reduction of the paper).
  std::vector<double> energies(static_cast<std::size_t>(numStates), 0.0);
  for (int s = 0; s < numStates; ++s) {
    double total = 0.0;
    const float* atomE =
        energyBuffer_.data() + static_cast<std::size_t>(s) * nRegion;
    for (int site = 0; site < nRegion; ++site) {
      if (stateSpecies(vet, s, site) == Species::kVacancy) continue;
      total += static_cast<double>(atomE[site]);
    }
    energies[static_cast<std::size_t>(s)] = total;
  }
  return energies;
}

}  // namespace tkmc
