#include "sunway/sunway_energy_model.hpp"

#include "common/error.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/nnp_energy_model.hpp"

namespace tkmc {

SunwayEnergyModel::SunwayEnergyModel(const Cet& cet, const Net& net,
                                     const FeatureTable& table,
                                     const Network& network, int mBlock)
    : cet_(cet), features_(net, table, grid_),
      fusion_(network.foldedSnapshot(), grid_, mBlock) {
  require(network.inputDim() == table.numPq() * kNumElements,
          "network input dimension must match the descriptor");
  loadTraffic_ = fusion_.loadModel();
}

std::vector<double> SunwayEnergyModel::stateEnergies(const LatticeState& state,
                                                     Vec3i center,
                                                     int numFinal) {
  Vet vet = Vet::gather(cet_, state, center);
  return stateEnergiesFromVet(vet, numFinal);
}

std::vector<double> SunwayEnergyModel::stateEnergiesFromVet(Vet& vet,
                                                            int numFinal) {
  // The per-system path is the batched pipeline at batch size one, so
  // the two cannot diverge numerically.
  Vet* one = &vet;
  return stateEnergiesBatch({&one, 1}, numFinal).front();
}

std::vector<std::vector<double>> SunwayEnergyModel::stateEnergiesBatch(
    std::span<Vet* const> vets, int numFinal) {
  if (vets.empty()) return {};
  TKMC_SPAN("sunway.batch_dispatch");
  namespace tm = telemetry;
  const bool instrumented = tm::enabled();
  Traffic before;
  if (instrumented) before = grid_.peekTraffic();

  const int nRegion = cet_.nRegion();
  const int numStates = 1 + numFinal;
  const int numSystems = static_cast<int>(vets.size());

  vetPtrScratch_.assign(vets.begin(), vets.end());
  features_.computeBatch(vetPtrScratch_, numFinal, featureBuffer_);
  const int m = numSystems * numStates * nRegion;
  energyBuffer_.resize(static_cast<std::size_t>(m));
  fusion_.forward(featureBuffer_.data(), m, energyBuffer_.data());

  // Per-state reduction with vacancy masking; accumulate the float
  // atomic energies in double (the MPE-side reduction of the paper).
  std::vector<std::vector<double>> energies(
      static_cast<std::size_t>(numSystems));
  for (int sys = 0; sys < numSystems; ++sys) {
    const Vet& vet = *vets[static_cast<std::size_t>(sys)];
    std::vector<double>& systemEnergies =
        energies[static_cast<std::size_t>(sys)];
    systemEnergies.assign(static_cast<std::size_t>(numStates), 0.0);
    for (int s = 0; s < numStates; ++s) {
      double total = 0.0;
      const float* atomE =
          energyBuffer_.data() +
          (static_cast<std::size_t>(sys) * numStates + s) * nRegion;
      for (int site = 0; site < nRegion; ++site) {
        if (stateSpecies(vet, s, site) == Species::kVacancy) continue;
        total += static_cast<double>(atomE[site]);
      }
      systemEnergies[static_cast<std::size_t>(s)] = total;
    }
  }

  if (instrumented) {
    const Traffic after = grid_.peekTraffic();
    tm::MetricsRegistry& reg = tm::metrics();
    reg.counter("sunway.batch.dispatches").inc();
    reg.counter("sunway.batch.systems_total")
        .add(static_cast<std::uint64_t>(numSystems));
    reg.histogram("sunway.batch.systems", tm::Histogram::batchSizeBounds())
        .observe(static_cast<double>(numSystems));
    reg.histogram("sunway.dispatch.main_bytes", tm::Histogram::trafficBounds())
        .observe(static_cast<double>(after.mainBytes() - before.mainBytes()));
    reg.histogram("sunway.dispatch.flops", tm::Histogram::trafficBounds())
        .observe(static_cast<double>(after.flops - before.flops));
  }
  return energies;
}

}  // namespace tkmc
