#include "sunway/cpe_grid.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/telemetry/telemetry.hpp"

namespace tkmc {

void CpeContext::dmaGet(void* ldmDst, const void* mainSrc, std::size_t bytes) {
  std::memcpy(ldmDst, mainSrc, bytes);
  traffic_.mainReadBytes += bytes;
}

void CpeContext::dmaPut(void* mainDst, const void* ldmSrc, std::size_t bytes) {
  std::memcpy(mainDst, ldmSrc, bytes);
  traffic_.mainWriteBytes += bytes;
}

void CpeContext::rmaGet(void* dst, const void* remoteSrc, std::size_t bytes) {
  std::memcpy(dst, remoteSrc, bytes);
  traffic_.rmaBytes += bytes;
}

CpeContext& CpeContext::peer(int row, int col) {
  return grid_.cpe(row * grid_.spec().cpeCols + col);
}

CpeGrid::CpeGrid(ArchSpec spec) : spec_(spec) {
  require(spec.cpeRows * spec.cpeCols == spec.cpesPerGroup,
          "CPE mesh dimensions must multiply to the CPE count");
  cpes_.reserve(static_cast<std::size_t>(spec.cpesPerGroup));
  for (int id = 0; id < spec.cpesPerGroup; ++id)
    cpes_.push_back(std::make_unique<CpeContext>(id, spec_, *this));
}

void CpeGrid::run(const std::function<void(CpeContext&)>& kernel) {
  for (auto& cpe : cpes_) cpe->ldm().reset();
  runSnapshot_.resize(cpes_.size());
  for (std::size_t i = 0; i < cpes_.size(); ++i)
    runSnapshot_[i] = cpes_[i]->traffic();
  // SPMD execution: every CPE owns its scratchpad, traffic counter, and
  // a disjoint slice of the output, so kernels may run concurrently.
  // Results are bitwise independent of the thread count.
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int i = 0; i < static_cast<int>(cpes_.size()); ++i)
    kernel(*cpes_[static_cast<std::size_t>(i)]);

  // Modeled elapsed time of this run: the DMA engine and the RMA mesh
  // stream at their aggregate bandwidths while the mesh waits for its
  // most-loaded CPE, and the whole dispatch pays one launch. Idle CPEs
  // therefore cost modeled time (the critical path does not shrink),
  // which is exactly the effect batching removes.
  std::uint64_t mainBytes = 0;
  std::uint64_t rmaBytes = 0;
  std::uint64_t maxCpeFlops = 0;
  for (std::size_t i = 0; i < cpes_.size(); ++i) {
    const Traffic& now = cpes_[i]->traffic();
    const Traffic& before = runSnapshot_[i];
    mainBytes += (now.mainReadBytes - before.mainReadBytes) +
                 (now.mainWriteBytes - before.mainWriteBytes);
    rmaBytes += now.rmaBytes - before.rmaBytes;
    maxCpeFlops = std::max(maxCpeFlops, now.flops - before.flops);
  }
  const double memSeconds =
      static_cast<double>(mainBytes) / spec_.mainMemoryBandwidth;
  const double rmaSeconds =
      static_cast<double>(rmaBytes) / spec_.rmaBandwidth;
  const double computeSeconds =
      static_cast<double>(maxCpeFlops) / spec_.cpePeakSpFlops();
  modeledSeconds_ += spec_.kernelLaunchSeconds +
                     std::max({memSeconds, rmaSeconds, computeSeconds});
  ++launches_;
}

double CpeGrid::collectModeledSeconds() {
  const double seconds = modeledSeconds_;
  modeledSeconds_ = 0.0;
  return seconds;
}

Traffic CpeGrid::collectTraffic() {
  Traffic total;
  for (auto& cpe : cpes_) {
    total += cpe->traffic();
    cpe->traffic() = Traffic{};
  }
  // Fold operator traffic into the process-wide metrics so a normal run
  // yields roofline-grade accounting (paper Sec. 5 methodology) without
  // the dedicated bench.
  if (telemetry::enabled()) {
    namespace tm = telemetry;
    tm::MetricsRegistry& reg = tm::metrics();
    reg.counter("sunway.main_read_bytes").add(total.mainReadBytes);
    reg.counter("sunway.main_write_bytes").add(total.mainWriteBytes);
    reg.counter("sunway.rma_bytes").add(total.rmaBytes);
    reg.counter("sunway.flops").add(total.flops);
    reg.gauge("sunway.ldm_high_water_bytes")
        .max(static_cast<double>(maxLdmHighWater()));
  }
  return total;
}

Traffic CpeGrid::peekTraffic() const {
  Traffic total;
  for (const auto& cpe : cpes_) total += const_cast<CpeContext&>(*cpe).traffic();
  return total;
}

std::size_t CpeGrid::maxLdmHighWater() const {
  std::size_t high = 0;
  for (const auto& cpe : cpes_) {
    // highWater() is const-safe; CpeContext exposes ldm() non-const only,
    // so read through the stored pointer directly.
    const std::size_t hw = const_cast<CpeContext&>(*cpe).ldm().highWater();
    if (hw > high) high = hw;
  }
  return high;
}

}  // namespace tkmc
