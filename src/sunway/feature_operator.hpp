#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sunway/cpe_grid.hpp"
#include "tabulation/feature_table.hpp"
#include "tabulation/net.hpp"
#include "tabulation/vet.hpp"

namespace tkmc {

/// Fast feature operator (paper Sec. 3.4) on the simulated CPE cluster.
///
/// Region sites are assigned to CPEs circularly. Each CPE keeps a packed
/// copy of its NET rows, the whole VET, and the precomputed feature TABLE
/// in LDM, then evaluates the tabulated descriptor for the initial state
/// and every final state (vacancy swap VET[0] <-> VET[1+k]) before a
/// single DMA put of all generated features. Single precision, matching
/// the CPE vector units.
class FeatureOperator {
 public:
  FeatureOperator(const Net& net, const FeatureTable& table, CpeGrid& grid);

  int dim() const { return table_.numPq() * kNumElements; }
  int regionSites() const { return net_.regionSites(); }

  /// Computes features for 1 + numFinal states. Output layout is
  /// [state][regionSite][dim()] row-major floats (resized as needed).
  /// Traffic is accumulated on the grid's CPE counters.
  void compute(const Vet& vet, int numFinal, std::vector<float>& out) const;

  /// Batched variant: features for every vacancy system of `vets` in one
  /// CpeGrid dispatch. The feature TABLE and this CPE's packed NET rows
  /// are DMA'd into LDM once and stay resident while the kernel walks
  /// the whole batch; only the (small) VET copy is re-fetched per
  /// system, so the dominant weight movement is amortized over the
  /// batch. Output layout is [system][state][regionSite][dim()] — the
  /// concatenated feature matrix BigFusionOperator::forward consumes
  /// directly with m = vets.size() * (1 + numFinal) * regionSites().
  /// Per-system results are bit-identical to compute() on each VET.
  void computeBatch(std::span<const Vet* const> vets, int numFinal,
                    std::vector<float>& out) const;

  /// Per-CPE LDM bytes the batched kernel needs for `numStates` states
  /// over VETs of `vetSites` sites: resident TABLE + NET rows + one VET
  /// copy + one system's feature block, each rounded up to the
  /// allocator's 64-byte alignment. Constant in the batch size by design
  /// (that is the point of LDM residency); computeBatch() refuses to
  /// dispatch when this exceeds the grid's ldmBytes.
  std::size_t batchWorkingSetBytes(int numStates, int vetSites) const;

 private:
  // Packed NET entry: neighbour id (fits 16 bits for standard cutoffs)
  // and distance index. Mirrors the LDM-resident encoding.
  struct PackedEntry {
    std::uint16_t siteId;
    std::uint16_t distIndex;
  };

  const Net& net_;
  const FeatureTable& table_;
  CpeGrid& grid_;
  // Main-memory images the CPEs DMA from: packed NET rows with prefix
  // offsets, and the float TABLE.
  std::vector<std::size_t> packedOffsets_;
  std::vector<PackedEntry> packedEntries_;
  std::vector<float> tableF32_;
};

}  // namespace tkmc
