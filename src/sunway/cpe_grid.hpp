#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sunway/arch_spec.hpp"
#include "sunway/ldm.hpp"
#include "sunway/traffic.hpp"

namespace tkmc {

class CpeGrid;

/// Execution context handed to a kernel running on one simulated CPE.
///
/// Provides the CPE's identity in the 8x8 mesh, its scratchpad, and the
/// two data-movement primitives of the architecture: DMA between main
/// memory and LDM, and RMA between CPEs. Both move real bytes and charge
/// the per-CPE traffic counter, so operator-level traffic statistics fall
/// out of functional execution.
class CpeContext {
 public:
  CpeContext(int id, const ArchSpec& spec, CpeGrid& grid)
      : id_(id), row_(id / spec.cpeCols), col_(id % spec.cpeCols),
        ldm_(spec.ldmBytes, id), grid_(grid) {}

  int id() const { return id_; }
  int row() const { return row_; }
  int col() const { return col_; }
  Ldm& ldm() { return ldm_; }
  Traffic& traffic() { return traffic_; }

  /// DMA get: main memory -> LDM buffer.
  void dmaGet(void* ldmDst, const void* mainSrc, std::size_t bytes);

  /// DMA put: LDM buffer -> main memory.
  void dmaPut(void* mainDst, const void* ldmSrc, std::size_t bytes);

  /// RMA read from another CPE's LDM into this CPE's buffer; stays on
  /// the mesh (no main-memory traffic).
  void rmaGet(void* dst, const void* remoteSrc, std::size_t bytes);

  /// Access to a peer CPE in the same core group (for RMA sharing).
  CpeContext& peer(int row, int col);

 private:
  int id_;
  int row_;
  int col_;
  Ldm ldm_;
  Traffic traffic_;
  CpeGrid& grid_;
};

/// One core group's CPE cluster (8x8 mesh of scratchpad cores).
///
/// run() executes a kernel body once per CPE. Execution is sequential and
/// deterministic — the simulator models the memory hierarchy, not timing
/// races — but kernels are written exactly as SPMD bodies, so the mapping
/// mirrors the paper's "CPEs as a micro parallel system" view.
class CpeGrid {
 public:
  explicit CpeGrid(ArchSpec spec = {});

  const ArchSpec& spec() const { return spec_; }
  int size() const { return spec_.cpesPerGroup; }

  CpeContext& cpe(int id) { return *cpes_[static_cast<std::size_t>(id)]; }

  /// Runs `kernel` on every CPE (id order). Scratchpads are reset first;
  /// traffic counters accumulate until collectTraffic().
  void run(const std::function<void(CpeContext&)>& kernel);

  /// Sums and clears all per-CPE traffic counters.
  Traffic collectTraffic();

  /// Sums the per-CPE traffic counters without clearing them. Deltas of
  /// two peeks bracket one dispatch's traffic, leaving the accumulated
  /// counters for collectTraffic() untouched.
  Traffic peekTraffic() const;

  /// Largest scratchpad high-water mark across CPEs (bytes).
  std::size_t maxLdmHighWater() const;

  /// Modeled SW26010 elapsed time accumulated over run() calls since the
  /// last collect. Each run costs one kernel launch plus the critical
  /// path of the dispatch: max(aggregate DMA time, aggregate RMA time,
  /// slowest CPE's compute time). Host wall-clock of the functional
  /// simulator cannot express mesh occupancy or launch amortization (all
  /// 64 CPEs execute on however many host cores exist), so benches report
  /// this quantity instead — consistent with the PerfModel numbers of the
  /// Fig. 9/11 reproductions.
  double collectModeledSeconds();
  double peekModeledSeconds() const { return modeledSeconds_; }

  /// run() invocations since construction (never cleared); the delta of
  /// two readings counts the kernel launches of one dispatch.
  std::uint64_t launchCount() const { return launches_; }

 private:
  ArchSpec spec_;
  std::vector<std::unique_ptr<CpeContext>> cpes_;
  std::vector<Traffic> runSnapshot_;  // per-CPE counters before a run
  double modeledSeconds_ = 0.0;
  std::uint64_t launches_ = 0;
};

}  // namespace tkmc
