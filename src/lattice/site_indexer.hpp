#pragma once

#include <cstdint>

#include "lattice/vec3.hpp"

namespace tkmc {

/// Direct local/ghost index computation (paper Eq. 4).
///
/// OpenKMC resolves a lattice coordinate to an array slot through a
/// POS_ID lookup array covering the whole extended (local + ghost)
/// subdomain, which costs O(sites) memory. TensorKMC instead computes the
/// slot arithmetically: local sites occupy [0, N) of the lattice array in
/// traversal order, ghost sites occupy [N, N + G). For a coordinate p,
///
///   index = extId(p) - nghostBefore(p)      if p is local
///   index = N + nghostBefore(p)             if p is ghost
///
/// where extId is the traversal id over the extended box and
/// nghostBefore(p) = extId(p) - nlocalBefore(p) is evaluated in O(1) from
/// cuboid prefix arithmetic.
///
/// The subdomain owns unit cells [origin, origin + extent) of the global
/// lattice and carries a ghost shell of `ghostCells` unit cells on every
/// face. The shell width may differ per axis: an axis whose rank grid is
/// 1 needs no ghosts at all (the subdomain already spans the whole
/// period), which is what makes flat rank grids like 2x2x1 legal.
/// Coordinates passed in are doubled-integer lattice coordinates in the
/// subdomain's unwrapped frame.
class SiteIndexer {
 public:
  SiteIndexer(Vec3i originCells, Vec3i extentCells, int ghostCells);
  SiteIndexer(Vec3i originCells, Vec3i extentCells, Vec3i ghostCells);

  /// Sites owned by this subdomain (2 per owned unit cell).
  std::int64_t localSiteCount() const { return localSites_; }

  /// Sites in the ghost shell.
  std::int64_t ghostSiteCount() const { return extendedSites_ - localSites_; }

  /// All sites of the extended box.
  std::int64_t extendedSiteCount() const { return extendedSites_; }

  /// True when the doubled coordinate lies inside the extended box.
  bool contains(Vec3i p) const;

  /// True when the doubled coordinate lies inside the owned region.
  bool isLocal(Vec3i p) const;

  /// Array slot of a coordinate: locals in [0, N), ghosts in [N, N + G).
  std::int64_t indexOf(Vec3i p) const;

  /// Inverse of indexOf() (used by tests and trajectory dumps).
  Vec3i coordinateOf(std::int64_t index) const;

  Vec3i originCells() const { return originCells_; }
  Vec3i extentCells() const { return extentCells_; }
  /// Widest shell across the axes (scalar convenience for symmetric
  /// shells; per-axis geometry should use ghostCellsVec()).
  int ghostCells() const;
  Vec3i ghostCellsVec() const { return ghost_; }

 private:
  // Traversal id over the extended box: cells x-fastest, 2 sites per cell.
  std::int64_t extId(Vec3i p) const;
  // Number of *local* sites with traversal id < extId.
  std::int64_t localsBefore(Vec3i p) const;

  Vec3i originCells_;
  Vec3i extentCells_;
  Vec3i ghost_;
  Vec3i extOriginCells_;  // origin - ghost
  Vec3i extExtentCells_;  // extent + 2*ghost
  std::int64_t localSites_;
  std::int64_t extendedSites_;
};

}  // namespace tkmc
