#include "lattice/lattice_state.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tkmc {

LatticeState::LatticeState(BccLattice lattice)
    : lattice_(lattice), store_(lattice.siteCount(), Species::kFe) {}

void LatticeState::fill(Species s) {
  require(s != Species::kVacancy,
          "filling the whole box with vacancies is not supported");
  store_.fill(s);
  vacancies_.clear();
}

void LatticeState::setSpecies(SiteId id, Species s) {
  const Species old = store_.get(id);
  const Vec3i coord = lattice_.coordinate(id);
  if (old == Species::kVacancy && s != Species::kVacancy) {
    auto it = std::find(vacancies_.begin(), vacancies_.end(), coord);
    require(it != vacancies_.end(), "vacancy list out of sync");
    vacancies_.erase(it);
  } else if (old != Species::kVacancy && s == Species::kVacancy) {
    vacancies_.push_back(coord);
  }
  store_.set(id, s);
}

void LatticeState::hopVacancy(Vec3i from, Vec3i to) {
  const SiteId fromId = lattice_.siteId(from);
  const SiteId toId = lattice_.siteId(to);
  const Species migrating = store_.get(toId);
  require(store_.get(fromId) == Species::kVacancy,
          "hop source must hold a vacancy");
  require(migrating != Species::kVacancy, "hop target must hold an atom");
  store_.set(fromId, migrating);
  store_.set(toId, Species::kVacancy);
  const Vec3i fromWrapped = lattice_.wrap(from);
  auto it = std::find(vacancies_.begin(), vacancies_.end(), fromWrapped);
  require(it != vacancies_.end(), "vacancy list out of sync");
  *it = lattice_.wrap(to);
}

bool LatticeState::operator==(const LatticeState& other) const {
  return lattice_.cellsX() == other.lattice_.cellsX() &&
         lattice_.cellsY() == other.lattice_.cellsY() &&
         lattice_.cellsZ() == other.lattice_.cellsZ() &&
         lattice_.latticeConstant() == other.lattice_.latticeConstant() &&
         store_ == other.store_;
}

void LatticeState::randomAlloy(double cuFraction, std::int64_t vacancyCount,
                               Rng& rng) {
  require(cuFraction >= 0.0 && cuFraction < 1.0,
          "Cu fraction must be in [0, 1)");
  const std::int64_t n = lattice_.siteCount();
  require(vacancyCount >= 0 && vacancyCount < n,
          "vacancy count must fit in the box");
  fill(Species::kFe);
  // Place Cu by independent per-site draws (matches the paper's at.%
  // concentration specification), then scatter vacancies on distinct sites.
  for (std::int64_t id = 0; id < n; ++id)
    if (rng.uniform() < cuFraction) store_.set(id, Species::kCu);
  std::int64_t placed = 0;
  while (placed < vacancyCount) {
    const SiteId id = static_cast<SiteId>(
        rng.uniformBelow(static_cast<std::uint64_t>(n)));
    if (store_.get(id) == Species::kVacancy) continue;
    setSpecies(id, Species::kVacancy);
    ++placed;
  }
}

}  // namespace tkmc
