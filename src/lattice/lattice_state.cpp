#include "lattice/lattice_state.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tkmc {

LatticeState::LatticeState(BccLattice lattice)
    : lattice_(lattice),
      species_(static_cast<std::size_t>(lattice.siteCount()), Species::kFe) {}

void LatticeState::fill(Species s) {
  std::fill(species_.begin(), species_.end(), s);
  vacancies_.clear();
  if (s == Species::kVacancy) {
    require(false, "filling the whole box with vacancies is not supported");
  }
}

void LatticeState::setSpecies(SiteId id, Species s) {
  auto& slot = species_[static_cast<std::size_t>(id)];
  const Vec3i coord = lattice_.coordinate(id);
  if (slot == Species::kVacancy && s != Species::kVacancy) {
    auto it = std::find(vacancies_.begin(), vacancies_.end(), coord);
    require(it != vacancies_.end(), "vacancy list out of sync");
    vacancies_.erase(it);
  } else if (slot != Species::kVacancy && s == Species::kVacancy) {
    vacancies_.push_back(coord);
  }
  slot = s;
}

void LatticeState::hopVacancy(Vec3i from, Vec3i to) {
  const SiteId fromId = lattice_.siteId(from);
  const SiteId toId = lattice_.siteId(to);
  auto& fromSlot = species_[static_cast<std::size_t>(fromId)];
  auto& toSlot = species_[static_cast<std::size_t>(toId)];
  require(fromSlot == Species::kVacancy, "hop source must hold a vacancy");
  require(toSlot != Species::kVacancy, "hop target must hold an atom");
  fromSlot = toSlot;
  toSlot = Species::kVacancy;
  const Vec3i fromWrapped = lattice_.wrap(from);
  auto it = std::find(vacancies_.begin(), vacancies_.end(), fromWrapped);
  require(it != vacancies_.end(), "vacancy list out of sync");
  *it = lattice_.wrap(to);
}

std::int64_t LatticeState::countSpecies(Species s) const {
  return std::count(species_.begin(), species_.end(), s);
}

void LatticeState::randomAlloy(double cuFraction, std::int64_t vacancyCount,
                               Rng& rng) {
  require(cuFraction >= 0.0 && cuFraction < 1.0,
          "Cu fraction must be in [0, 1)");
  const std::int64_t n = lattice_.siteCount();
  require(vacancyCount >= 0 && vacancyCount < n,
          "vacancy count must fit in the box");
  fill(Species::kFe);
  // Place Cu by independent per-site draws (matches the paper's at.%
  // concentration specification), then scatter vacancies on distinct sites.
  for (std::int64_t id = 0; id < n; ++id)
    if (rng.uniform() < cuFraction) species_[static_cast<std::size_t>(id)] = Species::kCu;
  std::int64_t placed = 0;
  while (placed < vacancyCount) {
    const SiteId id = static_cast<SiteId>(rng.uniformBelow(static_cast<std::uint64_t>(n)));
    if (species_[static_cast<std::size_t>(id)] == Species::kVacancy) continue;
    setSpecies(id, Species::kVacancy);
    ++placed;
  }
}

}  // namespace tkmc
