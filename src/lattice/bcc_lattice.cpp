#include "lattice/bcc_lattice.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tkmc {
namespace {

int wrapComponent(int value, int period) {
  int r = value % period;
  if (r < 0) r += period;
  return r;
}

// Wraps a displacement component to the nearest image in (-period/2, period/2].
int wrapDisplacement(int value, int period) {
  int r = wrapComponent(value, period);
  if (r * 2 > period) r -= period;
  return r;
}

}  // namespace

BccLattice::BccLattice(int cellsX, int cellsY, int cellsZ, double latticeConstant)
    : cellsX_(cellsX), cellsY_(cellsY), cellsZ_(cellsZ), a_(latticeConstant) {
  require(cellsX > 0 && cellsY > 0 && cellsZ > 0,
          "lattice must have positive extent");
  require(latticeConstant > 0.0, "lattice constant must be positive");
}

Vec3i BccLattice::wrap(Vec3i p) const {
  return {wrapComponent(p.x, 2 * cellsX_), wrapComponent(p.y, 2 * cellsY_),
          wrapComponent(p.z, 2 * cellsZ_)};
}

BccLattice::SiteId BccLattice::siteId(Vec3i p) const {
  const Vec3i w = wrap(p);
  require(isLatticeSite(w), "coordinate is not a BCC lattice site");
  const int sub = w.x & 1;  // 0 = corner sublattice, 1 = body-centre.
  const int cx = w.x >> 1;
  const int cy = w.y >> 1;
  const int cz = w.z >> 1;
  const SiteId cell = cx + static_cast<SiteId>(cellsX_) *
                               (cy + static_cast<SiteId>(cellsY_) * cz);
  return cell * 2 + sub;
}

Vec3i BccLattice::coordinate(SiteId id) const {
  require(id >= 0 && id < siteCount(), "site id out of range");
  const int sub = static_cast<int>(id & 1);
  SiteId cell = id >> 1;
  const int cx = static_cast<int>(cell % cellsX_);
  cell /= cellsX_;
  const int cy = static_cast<int>(cell % cellsY_);
  const int cz = static_cast<int>(cell / cellsY_);
  return {2 * cx + sub, 2 * cy + sub, 2 * cz + sub};
}

const std::vector<Vec3i>& BccLattice::firstNeighborOffsets() {
  static const std::vector<Vec3i> offsets = [] {
    std::vector<Vec3i> v;
    for (int sx : {-1, 1})
      for (int sy : {-1, 1})
        for (int sz : {-1, 1}) v.push_back({sx, sy, sz});
    return v;
  }();
  return offsets;
}

std::vector<Vec3i> BccLattice::offsetsWithinCutoff(double cutoff) const {
  require(cutoff > 0.0, "cutoff must be positive");
  // Enumerate same-parity offsets inside the bounding cube and keep those
  // within the Euclidean cutoff.
  const int maxStep = static_cast<int>(std::floor(2.0 * cutoff / a_));
  const double cutoff2Steps = (2.0 * cutoff / a_) * (2.0 * cutoff / a_);
  std::vector<Vec3i> result;
  for (int x = -maxStep; x <= maxStep; ++x)
    for (int y = -maxStep; y <= maxStep; ++y)
      for (int z = -maxStep; z <= maxStep; ++z) {
        const Vec3i d{x, y, z};
        if (d == Vec3i{}) continue;
        if (!isLatticeSite(d)) continue;
        // Use a tiny tolerance so sites exactly at the cutoff are kept,
        // matching the shell counts quoted in the paper.
        if (static_cast<double>(d.norm2()) <= cutoff2Steps * (1.0 + 1e-12))
          result.push_back(d);
      }
  std::sort(result.begin(), result.end(), [](Vec3i a, Vec3i b) {
    if (a.norm2() != b.norm2()) return a.norm2() < b.norm2();
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.z < b.z;
  });
  return result;
}

Vec3i BccLattice::minimumImage(Vec3i from, Vec3i to) const {
  const Vec3i d = to - from;
  return {wrapDisplacement(d.x, 2 * cellsX_), wrapDisplacement(d.y, 2 * cellsY_),
          wrapDisplacement(d.z, 2 * cellsZ_)};
}

}  // namespace tkmc
