#include "lattice/site_indexer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "lattice/bcc_lattice.hpp"

namespace tkmc {
namespace {

// Clamps v into [0, n].
std::int64_t clampCount(std::int64_t v, std::int64_t n) {
  return std::max<std::int64_t>(0, std::min(v, n));
}

}  // namespace

SiteIndexer::SiteIndexer(Vec3i originCells, Vec3i extentCells, int ghostCells)
    : SiteIndexer(originCells, extentCells,
                  Vec3i{ghostCells, ghostCells, ghostCells}) {}

SiteIndexer::SiteIndexer(Vec3i originCells, Vec3i extentCells, Vec3i ghostCells)
    : originCells_(originCells), extentCells_(extentCells), ghost_(ghostCells) {
  require(extentCells.x > 0 && extentCells.y > 0 && extentCells.z > 0,
          "subdomain extent must be positive");
  require(ghostCells.x >= 0 && ghostCells.y >= 0 && ghostCells.z >= 0,
          "ghost width must be non-negative");
  extOriginCells_ = {originCells.x - ghostCells.x, originCells.y - ghostCells.y,
                     originCells.z - ghostCells.z};
  extExtentCells_ = {extentCells.x + 2 * ghostCells.x,
                     extentCells.y + 2 * ghostCells.y,
                     extentCells.z + 2 * ghostCells.z};
  localSites_ = 2LL * extentCells.x * extentCells.y * extentCells.z;
  extendedSites_ =
      2LL * extExtentCells_.x * extExtentCells_.y * extExtentCells_.z;
}

int SiteIndexer::ghostCells() const {
  return std::max({ghost_.x, ghost_.y, ghost_.z});
}

bool SiteIndexer::contains(Vec3i p) const {
  if (!BccLattice::isLatticeSite(p)) return false;
  const int cx = p.x >> 1, cy = p.y >> 1, cz = p.z >> 1;
  // For odd coordinates, x >> 1 floors correctly for non-negative values;
  // doubled coordinates may be negative in the ghost shell, and C++ >> on
  // negative ints floors as well on all supported platforms (arithmetic
  // shift), which is the behaviour we need.
  return cx >= extOriginCells_.x && cx < extOriginCells_.x + extExtentCells_.x &&
         cy >= extOriginCells_.y && cy < extOriginCells_.y + extExtentCells_.y &&
         cz >= extOriginCells_.z && cz < extOriginCells_.z + extExtentCells_.z;
}

bool SiteIndexer::isLocal(Vec3i p) const {
  if (!BccLattice::isLatticeSite(p)) return false;
  const int cx = p.x >> 1, cy = p.y >> 1, cz = p.z >> 1;
  return cx >= originCells_.x && cx < originCells_.x + extentCells_.x &&
         cy >= originCells_.y && cy < originCells_.y + extentCells_.y &&
         cz >= originCells_.z && cz < originCells_.z + extentCells_.z;
}

std::int64_t SiteIndexer::extId(Vec3i p) const {
  const std::int64_t cx = (p.x >> 1) - extOriginCells_.x;
  const std::int64_t cy = (p.y >> 1) - extOriginCells_.y;
  const std::int64_t cz = (p.z >> 1) - extOriginCells_.z;
  const int sub = p.x & 1;
  const std::int64_t cell =
      cx + extExtentCells_.x * (cy + static_cast<std::int64_t>(extExtentCells_.y) * cz);
  return cell * 2 + sub;
}

std::int64_t SiteIndexer::localsBefore(Vec3i p) const {
  const std::int64_t cx = (p.x >> 1) - extOriginCells_.x;
  const std::int64_t cy = (p.y >> 1) - extOriginCells_.y;
  const std::int64_t cz = (p.z >> 1) - extOriginCells_.z;
  const std::int64_t gx = ghost_.x, gy = ghost_.y, gz = ghost_.z;
  const std::int64_t nx = extentCells_.x, ny = extentCells_.y, nz = extentCells_.z;

  // Whole extended-z slabs below cz that intersect the local cuboid.
  std::int64_t count = clampCount(cz - gz, nz) * nx * ny * 2;
  if (cz >= gz && cz < gz + nz) {
    // Whole rows below cy within the current slab.
    count += clampCount(cy - gy, ny) * nx * 2;
    if (cy >= gy && cy < gy + ny) {
      // Cells strictly before cx within the current row.
      count += clampCount(cx - gx, nx) * 2;
      // Sites before this one within the current cell.
      if (cx >= gx && cx < gx + nx) count += (p.x & 1);
    }
  }
  return count;
}

std::int64_t SiteIndexer::indexOf(Vec3i p) const {
  require(contains(p), "coordinate outside extended subdomain");
  const std::int64_t ext = extId(p);
  const std::int64_t localsBeforeP = localsBefore(p);
  const std::int64_t ghostsBeforeP = ext - localsBeforeP;
  if (isLocal(p)) return ext - ghostsBeforeP;  // == localsBeforeP
  return localSites_ + ghostsBeforeP;
}

Vec3i SiteIndexer::coordinateOf(std::int64_t index) const {
  require(index >= 0 && index < extendedSites_, "site index out of range");
  // Walk the extended box in traversal order, counting locals and ghosts.
  // O(extended box) — acceptable for tests and diagnostics only.
  const bool wantLocal = index < localSites_;
  std::int64_t target = wantLocal ? index : index - localSites_;
  for (std::int64_t cz = 0; cz < extExtentCells_.z; ++cz)
    for (std::int64_t cy = 0; cy < extExtentCells_.y; ++cy)
      for (std::int64_t cx = 0; cx < extExtentCells_.x; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i p{static_cast<int>(2 * (cx + extOriginCells_.x) + sub),
                        static_cast<int>(2 * (cy + extOriginCells_.y) + sub),
                        static_cast<int>(2 * (cz + extOriginCells_.z) + sub)};
          if (isLocal(p) == wantLocal) {
            if (target == 0) return p;
            --target;
          }
        }
  throw Error("coordinateOf: unreachable");
}

}  // namespace tkmc
