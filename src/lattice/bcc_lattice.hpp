#pragma once

#include <cstdint>
#include <vector>

#include "lattice/vec3.hpp"

namespace tkmc {

/// Body-centred-cubic lattice on a periodic box of Lx x Ly x Lz unit
/// cells (2 sites per cell).
///
/// Sites use doubled-integer coordinates: valid sites have x, y, z all
/// even (corner sublattice) or all odd (body-centre sublattice), with
/// 0 <= x < 2*Lx and so on. A doubled-integer step of 1 corresponds to
/// a/2 angstrom. First nearest neighbours sit at offsets (+-1, +-1, +-1).
class BccLattice {
 public:
  using SiteId = std::int64_t;

  BccLattice(int cellsX, int cellsY, int cellsZ, double latticeConstant);

  int cellsX() const { return cellsX_; }
  int cellsY() const { return cellsY_; }
  int cellsZ() const { return cellsZ_; }
  double latticeConstant() const { return a_; }

  /// Total number of lattice sites (2 per unit cell).
  SiteId siteCount() const { return 2LL * cellsX_ * cellsY_ * cellsZ_; }

  /// True when the doubled-integer triple lies on the BCC lattice
  /// (same parity in all components). Coordinates may be outside the box.
  static bool isLatticeSite(Vec3i p) {
    const int parity = p.x & 1;
    return (p.y & 1) == parity && (p.z & 1) == parity;
  }

  /// Wraps a doubled-integer coordinate into the periodic box.
  Vec3i wrap(Vec3i p) const;

  /// Linear site id of an (already wrapped or unwrapped) coordinate.
  SiteId siteId(Vec3i p) const;

  /// Inverse of siteId().
  Vec3i coordinate(SiteId id) const;

  /// Physical position in angstrom of an (unwrapped) coordinate.
  Vec3d position(Vec3i p) const { return {p.x * a_ / 2, p.y * a_ / 2, p.z * a_ / 2}; }

  /// Physical distance corresponding to a doubled-integer offset.
  double offsetDistance(Vec3i offset) const {
    return std::sqrt(static_cast<double>(offset.norm2())) * a_ / 2;
  }

  /// The eight first-nearest-neighbour offsets (+-1, +-1, +-1) in a fixed,
  /// reproducible order.
  static const std::vector<Vec3i>& firstNeighborOffsets();

  /// All lattice offsets with 0 < |offset| * a/2 <= cutoff, ordered by
  /// squared distance then lexicographically. Deterministic; shared by
  /// CET construction and brute-force reference paths.
  std::vector<Vec3i> offsetsWithinCutoff(double cutoff) const;

  /// Minimum-image doubled-integer displacement from p to q.
  Vec3i minimumImage(Vec3i from, Vec3i to) const;

 private:
  int cellsX_;
  int cellsY_;
  int cellsZ_;
  double a_;
};

}  // namespace tkmc
