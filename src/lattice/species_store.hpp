#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/constants.hpp"

namespace tkmc {

/// CET-style packed occupation storage: fixed-size pages of 2-bit species
/// codes (4 sites per byte).
///
/// The paper's 50-trillion-atom capacity rests on never holding a dense
/// per-atom array; occupation is encoded compactly and regions that are
/// pure matrix cost nothing. This store mirrors that design at host
/// scale: sites are grouped into pages of kPageSites, a page holding only
/// the fill species stays *unallocated* (collapsed to the store-wide fill
/// value), and a page is materialized to kPageBytes of packed codes only
/// when a non-fill write touches it. A mostly-Fe box therefore costs far
/// below one byte per site (0.25 for fully-materialized pages, ~0 for
/// uniform ones) instead of the 1 byte/site of a dense `vector<Species>`.
///
/// Per-species counts are maintained incrementally on every write, so
/// counting is O(1) instead of O(sites) — countSpecies() used to be the
/// per-frame cost of trajectory dumps.
///
/// Equality and contentHash() are *canonical*: they depend only on the
/// logical per-site species, never on which pages happen to be
/// materialized or what the slack slots of the last page contain. Two
/// stores that agree site-by-site always compare equal and hash equal.
class SpeciesStore {
 public:
  /// Sites per page. 4096 sites pack to 1 KiB — small enough that a
  /// single solute atom materializes only a 1 KiB neighbourhood, large
  /// enough that page bookkeeping (one vector entry per page) is noise.
  static constexpr std::int64_t kPageSites = 4096;
  static constexpr std::size_t kPageBytes =
      static_cast<std::size_t>(kPageSites) / 4;

  explicit SpeciesStore(std::int64_t siteCount, Species fill = Species::kFe);

  std::int64_t siteCount() const { return siteCount_; }

  Species get(std::int64_t id) const {
    const std::vector<std::uint8_t>& page =
        pages_[static_cast<std::size_t>(id / kPageSites)];
    if (page.empty()) return fill_;
    const std::int64_t in = id % kPageSites;
    const std::uint8_t byte = page[static_cast<std::size_t>(in >> 2)];
    return static_cast<Species>((byte >> (2 * (in & 3))) & 3);
  }

  /// Writes one site, maintaining the per-species counts. Materializes
  /// the containing page only when `s` differs from the page's collapsed
  /// fill value.
  void set(std::int64_t id, Species s);

  /// Collapses every page back to uniform `s` and resets the counts.
  void fill(Species s);

  /// Sites currently holding `s`. O(1): maintained incrementally.
  std::int64_t count(Species s) const {
    return counts_[static_cast<std::size_t>(s)];
  }

  /// Visits every site in id order as visitor(siteId, species). Uniform
  /// pages are walked without touching memory; materialized pages decode
  /// four sites per byte.
  template <typename Visitor>
  void forEachSite(Visitor&& visit) const {
    std::int64_t id = 0;
    for (const std::vector<std::uint8_t>& page : pages_) {
      const std::int64_t end = std::min(id + kPageSites, siteCount_);
      if (page.empty()) {
        for (; id < end; ++id) visit(id, fill_);
        continue;
      }
      for (std::size_t byteIdx = 0; id < end; ++byteIdx) {
        const std::uint8_t byte = page[byteIdx];
        for (int slot = 0; slot < 4 && id < end; ++slot, ++id)
          visit(id, static_cast<Species>((byte >> (2 * slot)) & 3));
      }
    }
  }

  /// Canonical logical equality (site count and per-site species).
  bool operator==(const SpeciesStore& other) const;
  bool operator!=(const SpeciesStore& other) const { return !(*this == other); }

  /// CRC32 over the canonical packed pages (uniform pages hashed as
  /// their synthesized pattern, slack slots of the last page masked to
  /// zero). Equal stores hash equal regardless of materialization
  /// history; a cheap fingerprint for cross-engine trajectory checks.
  std::uint32_t contentHash() const;

  /// Actual allocated footprint: materialized page bytes plus the page
  /// table and counters. The dense-representation baseline for the same
  /// box is siteCount() bytes.
  std::size_t memoryBytes() const;

  double bytesPerSite() const {
    return siteCount_ == 0 ? 0.0
                           : static_cast<double>(memoryBytes()) /
                                 static_cast<double>(siteCount_);
  }

  std::int64_t pageCount() const {
    return static_cast<std::int64_t>(pages_.size());
  }
  std::int64_t materializedPageCount() const;

  /// CRC32 fingerprint of page `page`'s canonical packed bytes. Like
  /// contentHash() this is materialization-history-invariant: a uniform
  /// page and a materialized page holding the same species hash equal.
  /// Incremental (delta) checkpoints diff epochs at page granularity by
  /// comparing these fingerprints, making dirty-page detection O(pages)
  /// instead of O(sites).
  std::uint32_t pageHash(std::int64_t page) const;

  /// All page fingerprints in page order (siteCount()/kPageSites rounded
  /// up entries).
  std::vector<std::uint32_t> pageHashes() const;

  /// Indices of pages whose fingerprint differs from `baseline`
  /// (ascending). Pages past the end of `baseline` count as dirty, so a
  /// grown store diffs cleanly against an older, smaller baseline.
  std::vector<std::int64_t> dirtyPages(
      const std::vector<std::uint32_t>& baseline) const;

  /// Page fingerprints of an unpacked one-byte-per-site species run —
  /// identical to pageHashes() of a store holding that run. Checkpoint
  /// shards carry their occupation as such runs (Subdomain::packCellBox
  /// order), so the delta writer fingerprints them without building a
  /// store.
  static std::vector<std::uint32_t> runPageHashes(
      const std::vector<std::uint8_t>& run);

 private:
  /// A byte holding `s` in all four 2-bit slots.
  static std::uint8_t pattern(Species s) {
    const std::uint8_t c = static_cast<std::uint8_t>(s);
    return static_cast<std::uint8_t>(c | (c << 2) | (c << 4) | (c << 6));
  }

  /// Writes page `p`'s canonical packed bytes into `out[kPageBytes]`:
  /// synthesized pattern for uniform pages, stored bytes otherwise, and
  /// slack slots past siteCount() masked to zero.
  void canonicalPageBytes(std::size_t p, std::uint8_t* out) const;

  std::int64_t siteCount_ = 0;
  Species fill_ = Species::kFe;
  // Empty vector == uniform page collapsed to fill_.
  std::vector<std::vector<std::uint8_t>> pages_;
  std::array<std::int64_t, 3> counts_{};
};

}  // namespace tkmc
