#pragma once

#include <cstdint>
#include <vector>

#include "common/constants.hpp"
#include "common/rng.hpp"
#include "lattice/bcc_lattice.hpp"

namespace tkmc {

/// Occupation state of a periodic BCC box: one Species per site plus an
/// explicit list of vacancy locations (vacancies drive all AKMC kinetics,
/// so they are tracked directly rather than rediscovered by scanning).
class LatticeState {
 public:
  using SiteId = BccLattice::SiteId;

  explicit LatticeState(BccLattice lattice);

  const BccLattice& lattice() const { return lattice_; }

  Species species(SiteId id) const { return species_[static_cast<std::size_t>(id)]; }
  Species speciesAt(Vec3i p) const { return species(lattice_.siteId(p)); }

  /// Overwrites every site with `s` and clears the vacancy list.
  void fill(Species s);

  /// Sets a site's species, maintaining the vacancy list.
  void setSpecies(SiteId id, Species s);
  void setSpeciesAt(Vec3i p, Species s) { setSpecies(lattice_.siteId(p), s); }

  /// Exchanges a vacancy with the atom at `to`. `from` must hold a
  /// vacancy. Vacancy list entries are updated in place, preserving
  /// vacancy ordering (required for trajectory reproducibility).
  void hopVacancy(Vec3i from, Vec3i to);

  /// Vacancy coordinates in creation order.
  const std::vector<Vec3i>& vacancies() const { return vacancies_; }

  /// Number of sites holding a given species (O(sites); for tests and
  /// analysis, not hot paths).
  std::int64_t countSpecies(Species s) const;

  /// Populates the box as a random Fe matrix with `cuFraction` Cu atoms
  /// and `vacancyCount` vacancies, deterministically from `rng`.
  void randomAlloy(double cuFraction, std::int64_t vacancyCount, Rng& rng);

  /// Raw species array (local ids follow BccLattice::siteId order).
  const std::vector<Species>& raw() const { return species_; }

 private:
  BccLattice lattice_;
  std::vector<Species> species_;
  std::vector<Vec3i> vacancies_;
};

}  // namespace tkmc
