#pragma once

#include <cstdint>
#include <vector>

#include "common/constants.hpp"
#include "common/rng.hpp"
#include "lattice/bcc_lattice.hpp"
#include "lattice/species_store.hpp"

namespace tkmc {

/// Occupation state of a periodic BCC box: a paged 2-bit-packed species
/// store plus an explicit list of vacancy locations (vacancies drive all
/// AKMC kinetics, so they are tracked directly rather than rediscovered
/// by scanning).
///
/// There is deliberately no way to borrow the occupation as a dense
/// array: consumers read single sites (species/speciesAt), stream the box
/// with forEachSite(), compare states with operator== and contentHash(),
/// and count with the O(1) countSpecies(). That keeps every layer honest
/// about the packed representation the trillion-site ambitions require.
class LatticeState {
 public:
  using SiteId = BccLattice::SiteId;

  explicit LatticeState(BccLattice lattice);

  const BccLattice& lattice() const { return lattice_; }

  Species species(SiteId id) const { return store_.get(id); }
  Species speciesAt(Vec3i p) const { return species(lattice_.siteId(p)); }

  /// Overwrites every site with `s` and clears the vacancy list.
  void fill(Species s);

  /// Sets a site's species, maintaining the vacancy list.
  void setSpecies(SiteId id, Species s);
  void setSpeciesAt(Vec3i p, Species s) { setSpecies(lattice_.siteId(p), s); }

  /// Exchanges a vacancy with the atom at `to`. `from` must hold a
  /// vacancy. Vacancy list entries are updated in place, preserving
  /// vacancy ordering (required for trajectory reproducibility).
  void hopVacancy(Vec3i from, Vec3i to);

  /// Vacancy coordinates in creation order.
  const std::vector<Vec3i>& vacancies() const { return vacancies_; }

  /// Number of sites holding a given species. O(1): the store maintains
  /// per-species counts incrementally.
  std::int64_t countSpecies(Species s) const { return store_.count(s); }

  /// Populates the box as a random Fe matrix with `cuFraction` Cu atoms
  /// and `vacancyCount` vacancies, deterministically from `rng`.
  void randomAlloy(double cuFraction, std::int64_t vacancyCount, Rng& rng);

  /// Visits every site in id order as visitor(SiteId, Species).
  template <typename Visitor>
  void forEachSite(Visitor&& visit) const {
    store_.forEachSite(visit);
  }

  /// Occupation equality: same box geometry and the same species on
  /// every site. Vacancy *order* (a trajectory artifact) is deliberately
  /// not compared — callers that need it compare vacancies() directly.
  bool operator==(const LatticeState& other) const;
  bool operator!=(const LatticeState& other) const {
    return !(*this == other);
  }

  /// CRC32 fingerprint of the packed occupation (canonical: equal states
  /// hash equal regardless of write history).
  std::uint32_t contentHash() const { return store_.contentHash(); }

  /// The packed page store (footprint inspection, bench reporting).
  const SpeciesStore& store() const { return store_; }

  /// Allocated bytes of the packed occupation (pages + bookkeeping).
  std::size_t packedMemoryBytes() const { return store_.memoryBytes(); }

 private:
  BccLattice lattice_;
  SpeciesStore store_;
  std::vector<Vec3i> vacancies_;
};

}  // namespace tkmc
