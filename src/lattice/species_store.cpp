#include "lattice/species_store.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace tkmc {

SpeciesStore::SpeciesStore(std::int64_t siteCount, Species fill)
    : siteCount_(siteCount), fill_(fill) {
  require(siteCount >= 0, "site count must be non-negative");
  pages_.resize(
      static_cast<std::size_t>((siteCount + kPageSites - 1) / kPageSites));
  counts_[static_cast<std::size_t>(fill)] = siteCount;
}

void SpeciesStore::set(std::int64_t id, Species s) {
  std::vector<std::uint8_t>& page =
      pages_[static_cast<std::size_t>(id / kPageSites)];
  if (page.empty()) {
    if (s == fill_) return;  // uniform page stays collapsed
    page.assign(kPageBytes, pattern(fill_));
  }
  const std::int64_t in = id % kPageSites;
  std::uint8_t& byte = page[static_cast<std::size_t>(in >> 2)];
  const int shift = 2 * static_cast<int>(in & 3);
  const Species old = static_cast<Species>((byte >> shift) & 3);
  if (old == s) return;
  --counts_[static_cast<std::size_t>(old)];
  ++counts_[static_cast<std::size_t>(s)];
  byte = static_cast<std::uint8_t>(
      (byte & ~(3u << shift)) |
      (static_cast<unsigned>(static_cast<std::uint8_t>(s)) << shift));
}

void SpeciesStore::fill(Species s) {
  fill_ = s;
  for (std::vector<std::uint8_t>& page : pages_) {
    page.clear();
    page.shrink_to_fit();
  }
  counts_ = {};
  counts_[static_cast<std::size_t>(s)] = siteCount_;
}

void SpeciesStore::canonicalPageBytes(std::size_t p, std::uint8_t* out) const {
  const std::vector<std::uint8_t>& page = pages_[p];
  if (page.empty()) {
    std::memset(out, pattern(fill_), kPageBytes);
  } else {
    std::memcpy(out, page.data(), kPageBytes);
  }
  // The last page may cover more slots than the box has sites; zero the
  // slack so equality and hashing never see materialization history.
  const std::int64_t pageStart = static_cast<std::int64_t>(p) * kPageSites;
  const std::int64_t tailSites = siteCount_ - pageStart;
  if (tailSites >= kPageSites) return;
  const std::size_t fullBytes = static_cast<std::size_t>(tailSites / 4);
  const int remSlots = static_cast<int>(tailSites % 4);
  std::size_t firstSlack = fullBytes;
  if (remSlots != 0) {
    out[fullBytes] &=
        static_cast<std::uint8_t>((1u << (2 * remSlots)) - 1u);
    ++firstSlack;
  }
  if (firstSlack < kPageBytes)
    std::memset(out + firstSlack, 0, kPageBytes - firstSlack);
}

bool SpeciesStore::operator==(const SpeciesStore& other) const {
  if (siteCount_ != other.siteCount_) return false;
  if (counts_ != other.counts_) return false;
  std::uint8_t a[kPageBytes];
  std::uint8_t b[kPageBytes];
  for (std::size_t p = 0; p < pages_.size(); ++p) {
    const bool uniformA = pages_[p].empty();
    const bool uniformB = other.pages_[p].empty();
    if (uniformA && uniformB && fill_ == other.fill_) continue;
    canonicalPageBytes(p, a);
    other.canonicalPageBytes(p, b);
    if (std::memcmp(a, b, kPageBytes) != 0) return false;
  }
  return true;
}

std::uint32_t SpeciesStore::contentHash() const {
  std::uint8_t buffer[kPageBytes];
  std::uint32_t crc = 0;
  for (std::size_t p = 0; p < pages_.size(); ++p) {
    canonicalPageBytes(p, buffer);
    crc = crc32(buffer, kPageBytes, crc);
  }
  return crc;
}

std::uint32_t SpeciesStore::pageHash(std::int64_t page) const {
  require(page >= 0 && page < pageCount(), "page index out of range");
  std::uint8_t buffer[kPageBytes];
  canonicalPageBytes(static_cast<std::size_t>(page), buffer);
  return crc32(buffer, kPageBytes);
}

std::vector<std::uint32_t> SpeciesStore::pageHashes() const {
  std::vector<std::uint32_t> hashes;
  hashes.reserve(pages_.size());
  std::uint8_t buffer[kPageBytes];
  for (std::size_t p = 0; p < pages_.size(); ++p) {
    canonicalPageBytes(p, buffer);
    hashes.push_back(crc32(buffer, kPageBytes));
  }
  return hashes;
}

std::vector<std::int64_t> SpeciesStore::dirtyPages(
    const std::vector<std::uint32_t>& baseline) const {
  std::vector<std::int64_t> dirty;
  std::uint8_t buffer[kPageBytes];
  for (std::size_t p = 0; p < pages_.size(); ++p) {
    canonicalPageBytes(p, buffer);
    const std::uint32_t hash = crc32(buffer, kPageBytes);
    if (p >= baseline.size() || baseline[p] != hash)
      dirty.push_back(static_cast<std::int64_t>(p));
  }
  return dirty;
}

std::vector<std::uint32_t> SpeciesStore::runPageHashes(
    const std::vector<std::uint8_t>& run) {
  std::vector<std::uint32_t> hashes;
  const std::size_t pages =
      (run.size() + static_cast<std::size_t>(kPageSites) - 1) /
      static_cast<std::size_t>(kPageSites);
  hashes.reserve(pages);
  std::uint8_t buffer[kPageBytes];
  for (std::size_t p = 0; p < pages; ++p) {
    // Pack this page's slice exactly the way canonicalPageBytes lays a
    // page out: four 2-bit codes per byte, slack slots zeroed.
    std::memset(buffer, 0, kPageBytes);
    const std::size_t begin = p * static_cast<std::size_t>(kPageSites);
    const std::size_t end =
        std::min(begin + static_cast<std::size_t>(kPageSites), run.size());
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t in = i - begin;
      buffer[in >> 2] = static_cast<std::uint8_t>(
          buffer[in >> 2] | ((run[i] & 3u) << (2 * (in & 3))));
    }
    hashes.push_back(crc32(buffer, kPageBytes));
  }
  return hashes;
}

std::size_t SpeciesStore::memoryBytes() const {
  std::size_t bytes = sizeof(*this) +
                      pages_.capacity() * sizeof(std::vector<std::uint8_t>);
  for (const std::vector<std::uint8_t>& page : pages_)
    bytes += page.capacity();
  return bytes;
}

std::int64_t SpeciesStore::materializedPageCount() const {
  return std::count_if(pages_.begin(), pages_.end(),
                       [](const std::vector<std::uint8_t>& p) {
                         return !p.empty();
                       });
}

}  // namespace tkmc
