#pragma once

#include <vector>

#include "common/constants.hpp"
#include "lattice/vec3.hpp"

namespace tkmc {

/// Off-lattice atomic structure with an orthorhombic periodic box.
///
/// Used by the potential-fitting pipeline (training structures carry small
/// positional jitter, like the relaxed DFT cells of the paper) and by the
/// force validation path. AKMC proper works on LatticeState instead.
struct Structure {
  std::vector<Vec3d> positions;  // angstrom
  std::vector<Species> species;  // same length as positions; no vacancies
  Vec3d box;                     // periodic box lengths, angstrom

  std::size_t size() const { return positions.size(); }

  /// Minimum-image displacement from atom i to atom j.
  Vec3d displacement(std::size_t i, std::size_t j) const {
    Vec3d d = positions[j] - positions[i];
    auto wrap = [](double v, double period) {
      while (v > period / 2) v -= period;
      while (v < -period / 2) v += period;
      return v;
    };
    return {wrap(d.x, box.x), wrap(d.y, box.y), wrap(d.z, box.z)};
  }
};

}  // namespace tkmc
