#pragma once

#include <cmath>
#include <cstdint>
#include <functional>

namespace tkmc {

/// Integer triple. BCC sites live on a doubled-integer grid: a site
/// (x, y, z) is valid when x, y, z share parity; physical position is
/// (x, y, z) * a/2.
struct Vec3i {
  int x = 0;
  int y = 0;
  int z = 0;

  friend Vec3i operator+(Vec3i a, Vec3i b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3i operator-(Vec3i a, Vec3i b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend bool operator==(Vec3i a, Vec3i b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
  friend bool operator!=(Vec3i a, Vec3i b) { return !(a == b); }

  /// Squared Euclidean norm in grid units.
  std::int64_t norm2() const {
    return static_cast<std::int64_t>(x) * x +
           static_cast<std::int64_t>(y) * y +
           static_cast<std::int64_t>(z) * z;
  }
};

/// Double-precision triple for physical positions (angstrom).
struct Vec3d {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend Vec3d operator+(Vec3d a, Vec3d b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3d operator-(Vec3d a, Vec3d b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3d operator*(Vec3d a, double s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  double norm() const { return std::sqrt(x * x + y * y + z * z); }
};

struct Vec3iHash {
  std::size_t operator()(const Vec3i& v) const {
    std::uint64_t h = static_cast<std::uint32_t>(v.x);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(v.y);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(v.z);
    h ^= h >> 29;
    return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
  }
};

}  // namespace tkmc
