#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace tkmc {

/// In-process message-passing runtime standing in for swmpi.
///
/// Ranks are driven sequentially by the engine (bulk-synchronous phases),
/// so communication is mailbox-based: a phase posts sends, the next phase
/// receives. Messages between a (source, destination, tag) triple are
/// FIFO. Byte and message counters feed the scaling model's communication
/// calibration.
///
/// Every message is framed with a per-channel sequence number and a
/// CRC32 of the payload, so the receive side detects the three classic
/// link failures instead of silently delivering bad data:
///   - corruption: the CRC check fails -> CommError;
///   - loss: a sequence gap (or an empty mailbox) -> CommError;
///   - duplication: an already-delivered sequence number is discarded
///     silently and counted in duplicatesDropped().
/// The fault points "comm.drop", "comm.corrupt", and "comm.duplicate"
/// (see common/fault_injection.hpp) inject exactly those failures at
/// send time. Retry protocols (GhostExchange, the engine's cycle
/// rollback) call resetChannels()/resetAllChannels() before re-sending
/// so stale frames and sequence state cannot leak across attempts.
class SimComm {
 public:
  explicit SimComm(int ranks);

  int rankCount() const { return ranks_; }

  /// Posts a message. Payload bytes are owned by the mailbox until
  /// received.
  void send(int from, int to, int tag, std::vector<std::uint8_t> payload);

  /// Pops the oldest message matching (from -> to, tag). Throws
  /// CommError when none is pending, when the frame fails its CRC
  /// check, or when a sequence gap shows an earlier message was lost.
  std::vector<std::uint8_t> receive(int to, int from, int tag);

  /// True when a matching (not yet delivered, non-duplicate) message is
  /// pending.
  bool hasMessage(int to, int from, int tag) const;

  /// Number of pending messages addressed to `to` with `tag`, any source.
  int pendingCount(int to, int tag) const;

  /// Drains every pending (from -> to, tag) message in source order.
  std::vector<std::pair<int, std::vector<std::uint8_t>>> receiveAll(int to,
                                                                    int tag);

  /// Clears pending messages and sequence tracking for one
  /// (from -> to, tag) channel, so a retransmission protocol (ARQ) can
  /// re-send a single failed message with a fresh sequence number.
  void resetChannel(int from, int to, int tag);

  /// Clears pending messages and sequence tracking for tags in
  /// [tagLo, tagHi). Retry protocols re-send a whole phase from scratch.
  void resetChannels(int tagLo, int tagHi);

  /// Clears every mailbox and all sequence tracking (cycle rollback).
  void resetAllChannels();

  std::uint64_t totalBytesSent() const { return bytesSent_; }
  std::uint64_t totalMessagesSent() const { return messagesSent_; }
  /// Frames rejected because the payload CRC did not match.
  std::uint64_t crcFailures() const { return crcFailures_; }
  /// Frames discarded because their sequence number was already
  /// delivered (duplicate detection).
  std::uint64_t duplicatesDropped() const { return duplicatesDropped_; }
  void resetStats();

 private:
  struct Key {
    int from;
    int to;
    int tag;
    bool operator<(const Key& o) const {
      if (from != o.from) return from < o.from;
      if (to != o.to) return to < o.to;
      return tag < o.tag;
    }
  };

  struct Frame {
    std::uint64_t seq = 0;
    std::uint32_t crc = 0;
    std::vector<std::uint8_t> payload;
  };

  std::uint64_t expectedSeq(const Key& key) const;

  int ranks_;
  std::map<Key, std::deque<Frame>> mailboxes_;
  std::map<Key, std::uint64_t> nextSendSeq_;
  std::map<Key, std::uint64_t> nextRecvSeq_;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t crcFailures_ = 0;
  std::uint64_t duplicatesDropped_ = 0;
};

}  // namespace tkmc
