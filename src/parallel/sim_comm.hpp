#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace tkmc {

/// In-process message-passing runtime standing in for swmpi.
///
/// Ranks are driven sequentially by the engine (bulk-synchronous phases),
/// so communication is mailbox-based: a phase posts sends, the next phase
/// receives. Messages between a (source, destination, tag) triple are
/// FIFO. Byte and message counters feed the scaling model's communication
/// calibration.
class SimComm {
 public:
  explicit SimComm(int ranks);

  int rankCount() const { return ranks_; }

  /// Posts a message. Payload bytes are owned by the mailbox until
  /// received.
  void send(int from, int to, int tag, std::vector<std::uint8_t> payload);

  /// Pops the oldest message matching (from -> to, tag). Throws when none
  /// is pending — phase protocols are deterministic, so a missing message
  /// is a bug, not a wait condition.
  std::vector<std::uint8_t> receive(int to, int from, int tag);

  /// True when a matching message is pending.
  bool hasMessage(int to, int from, int tag) const;

  /// Number of pending messages addressed to `to` with `tag`, any source.
  int pendingCount(int to, int tag) const;

  /// Drains every pending (from -> to, tag) message in source order.
  std::vector<std::pair<int, std::vector<std::uint8_t>>> receiveAll(int to,
                                                                    int tag);

  std::uint64_t totalBytesSent() const { return bytesSent_; }
  std::uint64_t totalMessagesSent() const { return messagesSent_; }
  void resetStats();

 private:
  struct Key {
    int from;
    int to;
    int tag;
    bool operator<(const Key& o) const {
      if (from != o.from) return from < o.from;
      if (to != o.to) return to < o.to;
      return tag < o.tag;
    }
  };

  int ranks_;
  std::map<Key, std::deque<std::vector<std::uint8_t>>> mailboxes_;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t messagesSent_ = 0;
};

}  // namespace tkmc
