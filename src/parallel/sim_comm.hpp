#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "parallel/heartbeat.hpp"

namespace tkmc {

/// In-process message-passing runtime standing in for swmpi.
///
/// Ranks are driven in bulk-synchronous phases by the engine — either
/// sequentially (the in-process backend) or by one OS thread per rank
/// (the threaded backend, ParallelConfig::threaded). Communication is
/// mailbox-based: a phase posts sends, the next phase receives.
/// Messages between a (source, destination, tag) triple are FIFO. Byte
/// and message counters feed the scaling model's communication
/// calibration.
///
/// Thread safety: every public method is safe to call concurrently —
/// one mutex orders all mailbox, sequence, liveness, and lease state.
/// The engine's phase barriers guarantee each channel still has exactly
/// one sender and one receiver *within* a phase, so per-channel FIFO
/// and sequence-number semantics are identical to the sequential
/// runtime; the mutex only arbitrates different channels touching the
/// shared maps at once and makes the counters race-free.
///
/// Every message is framed with a per-channel sequence number and a
/// CRC32 of the payload, so the receive side detects the three classic
/// link failures instead of silently delivering bad data:
///   - corruption: the CRC check fails -> CommError;
///   - loss: a sequence gap (or an empty mailbox) -> CommError;
///   - duplication: an already-delivered sequence number is discarded
///     silently and counted in duplicatesDropped().
/// The fault points "comm.drop", "comm.corrupt", and "comm.duplicate"
/// (see common/fault_injection.hpp) inject exactly those failures at
/// send time; each probe passes the channel key (from, to, tag), so an
/// injector in channel-stream mode fires independently per channel and
/// a seeded chaos run reproduces identically regardless of thread
/// interleaving. Retry protocols (GhostExchange, the engine's cycle
/// rollback) call resetChannels()/resetAllChannels() before re-sending
/// so stale frames and sequence state cannot leak across attempts.
///
/// Fail-stop ranks: the fault point "comm.rank_kill" fires at send time
/// and kills the *sending* rank before the frame leaves — modelling a
/// process crash. A dead rank's sends silently no-op from then on, so
/// its peers see nothing but silence. With a lease armed (setLease()),
/// every live send doubles as a heartbeat; a receiver stuck on an empty
/// channel calls pollPeer(), which advances the logical clock one poll
/// interval and classifies the sender as alive, merely silent, or
/// fail-stop once its lease expires. With no lease armed (the default)
/// none of this machinery is consulted and behaviour is identical to
/// the transient-fault-only runtime.
class SimComm {
 public:
  explicit SimComm(int ranks);

  int rankCount() const { return ranks_; }

  /// Stable 64-bit key of a (from, to, tag) channel; the fault-probe
  /// key SimComm passes to faultFires() so channel-stream injectors
  /// derive one deterministic RNG stream per channel.
  static std::uint64_t channelKey(int from, int to, int tag);

  /// Posts a message. Payload bytes are owned by the mailbox until
  /// received.
  void send(int from, int to, int tag, std::vector<std::uint8_t> payload);

  /// Pops the oldest message matching (from -> to, tag). Throws
  /// CommError when none is pending, when the frame fails its CRC
  /// check, or when a sequence gap shows an earlier message was lost.
  std::vector<std::uint8_t> receive(int to, int from, int tag);

  /// True when a matching (not yet delivered, non-duplicate) message is
  /// pending.
  bool hasMessage(int to, int from, int tag) const;

  /// Number of pending messages addressed to `to` with `tag`, any source.
  int pendingCount(int to, int tag) const;

  /// Drains every pending (from -> to, tag) message in source order.
  std::vector<std::pair<int, std::vector<std::uint8_t>>> receiveAll(int to,
                                                                    int tag);

  /// Clears pending messages and sequence tracking for one
  /// (from -> to, tag) channel, so a retransmission protocol (ARQ) can
  /// re-send a single failed message with a fresh sequence number.
  void resetChannel(int from, int to, int tag);

  /// Clears pending messages and sequence tracking for tags in
  /// [tagLo, tagHi). Retry protocols re-send a whole phase from scratch.
  void resetChannels(int tagLo, int tagHi);

  /// Clears every mailbox and all sequence tracking (cycle rollback).
  void resetAllChannels();

  // --- Fail-stop liveness and the heartbeat/lease protocol ---

  /// Marks `rank` as permanently failed. Its future sends no-op (and no
  /// longer renew its lease); messages already in flight stay
  /// deliverable. Invoked by the "comm.rank_kill" fault point and by the
  /// detector when a lease expires.
  void killRank(int rank);

  bool rankAlive(int rank) const;
  int aliveCount() const;
  std::vector<int> aliveRanks() const;

  /// Arms the heartbeat/lease protocol: every live send renews the
  /// sender's lease, pollPeer() advances the clock by `intervalMs` per
  /// poll, and a lease older than `timeoutMs` classifies its rank as
  /// fail-stop. `timeoutMs <= 0` disarms the protocol (the default).
  void setLease(double intervalMs, double timeoutMs);
  bool leaseEnabled() const { return leaseTimeoutMs_ > 0.0; }
  double leaseIntervalMs() const { return leaseIntervalMs_; }
  double leaseTimeoutMs() const { return leaseTimeoutMs_; }

  /// Logical clock (milliseconds). Advances only via tick()/pollPeer(),
  /// so detection latency is deterministic.
  double nowMs() const;
  void tick(double ms);

  /// Last lease renewal of `rank` (logical ms; 0 until its first send).
  double lastBeatMs(int rank) const;

  enum class PeerVerdict {
    kAlive,   // renewed its lease since the receiver started waiting
    kSilent,  // no renewal yet, but the lease has not expired either
    kFailed,  // lease expired: the rank is now marked fail-stop
  };

  /// One detector poll while waiting on a message from `from`: advances
  /// the clock one poll interval and classifies the sender.
  /// `waitStartMs` is the clock value when the receiver began waiting
  /// (so a retransmission that got through counts as proof of life).
  /// Requires an armed lease.
  PeerVerdict pollPeer(int from, double waitStartMs);

  std::uint64_t totalBytesSent() const;
  std::uint64_t totalMessagesSent() const;
  /// Frames rejected because the payload CRC did not match.
  std::uint64_t crcFailures() const;
  /// Frames discarded because their sequence number was already
  /// delivered (duplicate detection).
  std::uint64_t duplicatesDropped() const;
  void resetStats();

 private:
  struct Key {
    int from;
    int to;
    int tag;
    bool operator<(const Key& o) const {
      if (from != o.from) return from < o.from;
      if (to != o.to) return to < o.to;
      return tag < o.tag;
    }
  };

  struct Frame {
    std::uint64_t seq = 0;
    std::uint32_t crc = 0;
    // Sender's Lamport stamp at send time. The receive side folds it into
    // its own clock (lamportObserve), so per-rank flight-recorder dumps
    // merge into a causally ordered timeline; it doubles as the flow id
    // binding send/recv trace events (globally unique, unlike seq, which
    // resets per channel on ARQ retries).
    std::uint64_t lamport = 0;
    std::vector<std::uint8_t> payload;
  };

  // Unlocked internals; callers hold mutex_.
  std::uint64_t expectedSeqLocked(const Key& key) const;
  bool hasMessageLocked(const Key& key) const;
  std::vector<std::uint8_t> receiveLocked(int to, int from, int tag);
  void killRankLocked(int rank);

  int ranks_;
  mutable std::mutex mutex_;
  std::map<Key, std::deque<Frame>> mailboxes_;
  std::map<Key, std::uint64_t> nextSendSeq_;
  std::map<Key, std::uint64_t> nextRecvSeq_;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t messagesSent_ = 0;
  std::uint64_t crcFailures_ = 0;
  std::uint64_t duplicatesDropped_ = 0;
  std::vector<bool> alive_;
  HeartbeatMonitor beats_;
  double nowMs_ = 0.0;
  double leaseIntervalMs_ = 5.0;
  double leaseTimeoutMs_ = 0.0;  // <= 0: heartbeat protocol disarmed
};

}  // namespace tkmc
