#include "parallel/sim_comm.hpp"

#include <string>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/telemetry/telemetry.hpp"

namespace tkmc {
namespace {

namespace tm = telemetry;

std::string channelName(int from, int to, int tag) {
  return "(" + std::to_string(from) + " -> " + std::to_string(to) +
         ", tag " + std::to_string(tag) + ")";
}

// Flow-event name per message class so the trace UI groups arrows by
// protocol. Tag values match the engine's channel map (DESIGN.md §14):
// fold 50, commit votes 60/61, ghost-exchange slabs >= 100.
const char* flowName(int tag) {
  if (tag == 50) return "flow.fold";
  if (tag == 60) return "flow.vote";
  if (tag == 61) return "flow.commit";
  if (tag >= 100) return "flow.ghost";
  return "flow.msg";
}

}  // namespace

SimComm::SimComm(int ranks)
    : ranks_(ranks), alive_(static_cast<std::size_t>(ranks > 0 ? ranks : 1),
                            true),
      beats_(ranks > 0 ? ranks : 1, 0.0) {
  require(ranks > 0, "communicator needs at least one rank");
  tm::flightRecorder().configureRanks(ranks);
}

std::uint64_t SimComm::channelKey(int from, int to, int tag) {
  // Ranks are < kMaxRanks (512) and tags < 2^20, so the fields pack
  // without collision; +1 keeps rank 0 distinguishable from "no field".
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from + 1))
          << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(to + 1))
          << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

void SimComm::send(int from, int to, int tag,
                   std::vector<std::uint8_t> payload) {
  require(from >= 0 && from < ranks_ && to >= 0 && to < ranks_,
          "rank out of range");
  const std::uint64_t key64 = channelKey(from, to, tag);
  std::lock_guard<std::mutex> lock(mutex_);
  // A dead rank sends nothing — not even a lease renewal. Its peers see
  // pure silence on the channel, which is what the heartbeat detector
  // classifies.
  if (!alive_[static_cast<std::size_t>(from)]) return;
  // Fail-stop injection: the sending rank crashes *before* this frame
  // leaves, so at least one peer is left waiting on the channel.
  if (faultFires("comm.rank_kill", key64)) {
    killRankLocked(from);
    return;
  }
  beats_.beat(from, nowMs_);
  bytesSent_ += payload.size();
  ++messagesSent_;
  const Key key{from, to, tag};
  Frame frame;
  frame.seq = nextSendSeq_[key]++;
  frame.crc = crc32(payload.data(), payload.size());
  frame.lamport = tm::flightRecorder().lamportTick();
  frame.payload = std::move(payload);
  tm::flightRecorder().record(from, tm::BlackboxEventType::kCommSend, tag,
                              frame.seq, frame.payload.size());
  // Injectable link failures. Corruption happens after framing so the
  // CRC no longer matches; an empty payload corrupts the checksum field
  // itself (same detection path).
  if (faultFires("comm.corrupt", key64)) {
    if (frame.payload.empty())
      frame.crc ^= 1u;
    else
      frame.payload[frame.payload.size() / 2] ^= 0x20u;
  }
  const bool dropped = faultFires("comm.drop", key64);
  const bool duplicated = faultFires("comm.duplicate", key64);
  if (dropped) return;  // seq already advanced -> receiver sees the gap
  // Flow start only for frames that actually enter the mailbox — a
  // dropped frame must not leave a dangling arrow in the trace.
  tm::tracer().flowBegin(flowName(tag), frame.lamport, from);
  auto& box = mailboxes_[key];
  if (duplicated) box.push_back(frame);
  box.push_back(std::move(frame));
}

std::uint64_t SimComm::expectedSeqLocked(const Key& key) const {
  const auto it = nextRecvSeq_.find(key);
  return it == nextRecvSeq_.end() ? 0 : it->second;
}

std::vector<std::uint8_t> SimComm::receiveLocked(int to, int from, int tag) {
  const Key key{from, to, tag};
  std::uint64_t& expected = nextRecvSeq_[key];
  auto it = mailboxes_.find(key);
  // Sequence numbers grow per channel, so duplicates sit in front of the
  // frame they duplicate; discard them before delivering.
  while (it != mailboxes_.end() && !it->second.empty() &&
         it->second.front().seq < expected) {
    it->second.pop_front();
    ++duplicatesDropped_;
  }
  if (it != mailboxes_.end() && it->second.empty()) {
    mailboxes_.erase(it);
    it = mailboxes_.end();
  }
  if (it == mailboxes_.end())
    throw CommError("no pending message for " + channelName(from, to, tag));
  Frame frame = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) mailboxes_.erase(it);
  // The frame did cross the link (even if it now fails validation):
  // fold the sender's Lamport stamp in and close its flow arrow, so
  // causality and the trace stay intact on every outcome below.
  tm::flightRecorder().lamportObserve(frame.lamport);
  tm::tracer().flowEnd(flowName(tag), frame.lamport, to);
  if (frame.seq > expected) {
    const std::uint64_t wanted = expected;
    expected = frame.seq + 1;
    tm::flightRecorder().record(to, tm::BlackboxEventType::kCommError, tag,
                                frame.seq, 1 /* sequence gap */);
    throw CommError("message lost on " + channelName(from, to, tag) +
                    ": expected seq " + std::to_string(wanted) + ", got seq " +
                    std::to_string(frame.seq));
  }
  expected = frame.seq + 1;
  if (crc32(frame.payload.data(), frame.payload.size()) != frame.crc) {
    ++crcFailures_;
    tm::flightRecorder().record(to, tm::BlackboxEventType::kCommError, tag,
                                frame.seq, 2 /* CRC mismatch */);
    throw CommError("message corrupt on " + channelName(from, to, tag) +
                    ": payload failed CRC32 framing check");
  }
  tm::flightRecorder().record(to, tm::BlackboxEventType::kCommRecv, tag,
                              frame.seq, frame.lamport);
  return std::move(frame.payload);
}

std::vector<std::uint8_t> SimComm::receive(int to, int from, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return receiveLocked(to, from, tag);
}

bool SimComm::hasMessageLocked(const Key& key) const {
  const auto it = mailboxes_.find(key);
  if (it == mailboxes_.end() || it->second.empty()) return false;
  // Per-channel sequence numbers are monotone, so the newest frame
  // decides whether anything undelivered remains.
  return it->second.back().seq >= expectedSeqLocked(key);
}

bool SimComm::hasMessage(int to, int from, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hasMessageLocked(Key{from, to, tag});
}

int SimComm::pendingCount(int to, int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int count = 0;
  for (const auto& [key, queue] : mailboxes_) {
    if (key.to != to || key.tag != tag) continue;
    const std::uint64_t expected = expectedSeqLocked(key);
    for (const Frame& f : queue)
      if (f.seq >= expected) ++count;
  }
  return count;
}

std::vector<std::pair<int, std::vector<std::uint8_t>>> SimComm::receiveAll(
    int to, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<int, std::vector<std::uint8_t>>> result;
  for (int from = 0; from < ranks_; ++from) {
    while (hasMessageLocked(Key{from, to, tag}))
      result.emplace_back(from, receiveLocked(to, from, tag));
  }
  return result;
}

void SimComm::resetChannel(int from, int to, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{from, to, tag};
  mailboxes_.erase(key);
  nextSendSeq_.erase(key);
  nextRecvSeq_.erase(key);
}

void SimComm::resetChannels(int tagLo, int tagHi) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto inRange = [&](const Key& k) {
    return k.tag >= tagLo && k.tag < tagHi;
  };
  for (auto it = mailboxes_.begin(); it != mailboxes_.end();)
    it = inRange(it->first) ? mailboxes_.erase(it) : std::next(it);
  for (auto it = nextSendSeq_.begin(); it != nextSendSeq_.end();)
    it = inRange(it->first) ? nextSendSeq_.erase(it) : std::next(it);
  for (auto it = nextRecvSeq_.begin(); it != nextRecvSeq_.end();)
    it = inRange(it->first) ? nextRecvSeq_.erase(it) : std::next(it);
}

void SimComm::resetAllChannels() {
  std::lock_guard<std::mutex> lock(mutex_);
  mailboxes_.clear();
  nextSendSeq_.clear();
  nextRecvSeq_.clear();
}

void SimComm::killRankLocked(int rank) {
  require(rank >= 0 && rank < ranks_, "rank out of range");
  if (alive_[static_cast<std::size_t>(rank)])
    tm::flightRecorder().record(rank, tm::BlackboxEventType::kRankKilled, 0,
                                static_cast<std::uint64_t>(rank));
  alive_[static_cast<std::size_t>(rank)] = false;
}

void SimComm::killRank(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  killRankLocked(rank);
}

bool SimComm::rankAlive(int rank) const {
  require(rank >= 0 && rank < ranks_, "rank out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  return alive_[static_cast<std::size_t>(rank)];
}

int SimComm::aliveCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int count = 0;
  for (int r = 0; r < ranks_; ++r)
    if (alive_[static_cast<std::size_t>(r)]) ++count;
  return count;
}

std::vector<int> SimComm::aliveRanks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> ranks;
  for (int r = 0; r < ranks_; ++r)
    if (alive_[static_cast<std::size_t>(r)]) ranks.push_back(r);
  return ranks;
}

void SimComm::setLease(double intervalMs, double timeoutMs) {
  require(intervalMs > 0.0, "lease poll interval must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  leaseIntervalMs_ = intervalMs;
  leaseTimeoutMs_ = timeoutMs;
  beats_.setTimeoutMs(timeoutMs);
}

double SimComm::nowMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nowMs_;
}

void SimComm::tick(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  nowMs_ += ms;
}

double SimComm::lastBeatMs(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return beats_.lastBeatMs(rank);
}

SimComm::PeerVerdict SimComm::pollPeer(int from, double waitStartMs) {
  require(from >= 0 && from < ranks_, "rank out of range");
  require(leaseEnabled(), "pollPeer needs an armed lease (setLease)");
  std::lock_guard<std::mutex> lock(mutex_);
  nowMs_ += leaseIntervalMs_;
  if (beats_.expired(from, nowMs_)) {
    killRankLocked(from);
    return PeerVerdict::kFailed;
  }
  return beats_.lastBeatMs(from) >= waitStartMs ? PeerVerdict::kAlive
                                                : PeerVerdict::kSilent;
}

std::uint64_t SimComm::totalBytesSent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytesSent_;
}

std::uint64_t SimComm::totalMessagesSent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messagesSent_;
}

std::uint64_t SimComm::crcFailures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crcFailures_;
}

std::uint64_t SimComm::duplicatesDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return duplicatesDropped_;
}

void SimComm::resetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  bytesSent_ = 0;
  messagesSent_ = 0;
  crcFailures_ = 0;
  duplicatesDropped_ = 0;
}

}  // namespace tkmc
