#include "parallel/sim_comm.hpp"

#include "common/error.hpp"

namespace tkmc {

SimComm::SimComm(int ranks) : ranks_(ranks) {
  require(ranks > 0, "communicator needs at least one rank");
}

void SimComm::send(int from, int to, int tag,
                   std::vector<std::uint8_t> payload) {
  require(from >= 0 && from < ranks_ && to >= 0 && to < ranks_,
          "rank out of range");
  bytesSent_ += payload.size();
  ++messagesSent_;
  mailboxes_[{from, to, tag}].push_back(std::move(payload));
}

std::vector<std::uint8_t> SimComm::receive(int to, int from, int tag) {
  auto it = mailboxes_.find({from, to, tag});
  require(it != mailboxes_.end() && !it->second.empty(),
          "no pending message for (from,to,tag)");
  std::vector<std::uint8_t> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) mailboxes_.erase(it);
  return payload;
}

bool SimComm::hasMessage(int to, int from, int tag) const {
  auto it = mailboxes_.find({from, to, tag});
  return it != mailboxes_.end() && !it->second.empty();
}

int SimComm::pendingCount(int to, int tag) const {
  int count = 0;
  for (const auto& [key, queue] : mailboxes_)
    if (key.to == to && key.tag == tag)
      count += static_cast<int>(queue.size());
  return count;
}

std::vector<std::pair<int, std::vector<std::uint8_t>>> SimComm::receiveAll(
    int to, int tag) {
  std::vector<std::pair<int, std::vector<std::uint8_t>>> result;
  for (int from = 0; from < ranks_; ++from) {
    while (hasMessage(to, from, tag))
      result.emplace_back(from, receive(to, from, tag));
  }
  return result;
}

void SimComm::resetStats() {
  bytesSent_ = 0;
  messagesSent_ = 0;
}

}  // namespace tkmc
