#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lattice/lattice_state.hpp"
#include "lattice/vec3.hpp"

namespace tkmc {
class RemoteShardStore;
}

namespace tkmc {

/// One rank's contribution to a coordinated checkpoint epoch: its owned
/// subdomain occupation (packCellBox traversal order, one species byte
/// per site — CET-packed to four sites per byte on disk), its vacancy
/// list in engine order (the selection RNG addresses vacancies by
/// index, so bit-exact resume needs the ordering, not just the
/// occupation), and its RNG stream state.
struct ShardRecord {
  int rank = 0;
  Vec3i originCells{};
  Vec3i extentCells{};
  std::array<std::uint64_t, 4> rngState{};
  std::vector<Vec3i> vacancyOrder;
  std::vector<std::uint8_t> species;

  /// Delta shards carry only the occupation pages (SpeciesStore page
  /// geometry over the packCellBox run) that changed since the base
  /// epoch, instead of the full `species` run. RNG state and the vacancy
  /// order are always carried whole — they are tiny and change every
  /// cycle anyway.
  struct DirtyPage {
    std::uint32_t index = 0;            // page number within the run
    std::vector<std::uint8_t> species;  // that page's sites, one byte each
  };
  bool delta = false;
  std::uint64_t baseEpoch = 0;  // meaningful only when delta
  std::vector<DirtyPage> dirtyPages;

  /// Sites the species vector must hold (2 per owned unit cell).
  std::size_t siteCount() const {
    return 2ULL * static_cast<std::size_t>(extentCells.x) * extentCells.y *
           extentCells.z;
  }
};

/// The global epoch manifest: everything survivors need to agree on a
/// restart point — rank grid, global box, engine clocks, t_stop, the
/// master seed, and a CRC per shard so a torn or bit-rotted shard
/// disqualifies the whole epoch instead of silently feeding the engine
/// bad state.
struct EpochManifest {
  std::uint64_t epoch = 0;
  Vec3i rankGrid{};
  Vec3i globalCells{};
  double latticeConstant = 0.0;
  double time = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t events = 0;
  std::uint64_t discarded = 0;
  double tStop = 0.0;
  std::uint64_t seed = 0;

  /// Event catalog the writing engine ran (trajectories are
  /// catalog-dependent, so resume validates it). The default name is
  /// omitted from the on-disk format: vacancy_hop manifests stay byte
  /// identical to pre-catalog builds, and old manifests load as
  /// vacancy_hop.
  std::string catalog = "vacancy_hop";

  struct ShardEntry {
    std::string file;        // relative to the epoch directory
    std::uint32_t crc = 0;   // CRC32 of the shard body (matches its footer)
    std::uint64_t bytes = 0; // full file size, footer included
  };
  std::vector<ShardEntry> shards;

  /// Delta chain link: set when this epoch's shards carry only dirty
  /// pages against `baseEpoch`. `baseCrc` pins the exact base manifest
  /// (the CRC its footer seals), so a recommitted or substituted base
  /// breaks the chain loudly instead of silently feeding reassembly a
  /// different state.
  std::optional<std::uint64_t> baseEpoch;
  std::uint32_t baseCrc = 0;

  /// CRC32 of this manifest's own sealed body. Set by loadManifest() and
  /// returned by commitEpoch(), so the next delta epoch can record its
  /// chain link.
  std::uint32_t selfCrc = 0;

  bool isDelta() const { return baseEpoch.has_value(); }
};

/// Coordinated sharded checkpoint store (`<dir>/epoch_<N>/rank_<R>.tkc`
/// plus `manifest.tkm`), committed atomically per epoch.
///
/// Two-phase write-then-rename: shards and the manifest are staged in
/// `epoch_<N>.tmp/`; only after every rank's shard is staged (the
/// engine runs a commit-vote barrier between the phases) is the staging
/// directory renamed to `epoch_<N>/`. A crash — or an injected
/// `comm.rank_kill` — at any point leaves either a complete committed
/// epoch or a `.tmp` directory that readers ignore; a manifest can
/// never reference a missing or torn shard.
///
/// Readers validate before trusting: newestCompleteEpoch() walks
/// committed epochs newest-first and returns the first whose manifest
/// passes its CRC footer and whose every shard exists, matches its
/// manifest CRC and size, and parses cleanly — and, for a delta epoch,
/// whose whole base chain is equally sound (every link present,
/// CRC-pinned to its child's recorded base CRC, linking strictly
/// backwards, no deeper than maxDeltaChain()).
///
/// Delta epochs: an epoch may store, per rank, only the occupation
/// pages that changed since a base epoch (plus the full RNG state and
/// vacancy order). The manifest records the `base_epoch` chain link;
/// resolveShards() replays base + deltas back into materialized shards.
class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if needed.
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Depth bound for delta chains (delta links per chain) used by chain
  /// validation and resolution. Writers consolidate (write a full epoch)
  /// before exceeding it; a reader with a smaller bound treats deeper
  /// chains as invalid.
  void setMaxDeltaChain(int depth);
  int maxDeltaChain() const { return maxDeltaChain_; }

  std::string stagePath(std::uint64_t epoch) const;
  std::string epochPath(std::uint64_t epoch) const;

  /// Phase 1 entry: creates a fresh staging directory for `epoch`
  /// (clearing any leftover from an aborted earlier attempt).
  void beginEpoch(std::uint64_t epoch);

  /// Stages one rank's shard (full or delta — `shard.delta` selects the
  /// format) into the epoch's staging directory and returns its manifest
  /// entry. Publishes `checkpoint.shard_bytes` to telemetry.
  EpochManifest::ShardEntry stageShard(std::uint64_t epoch,
                                       const ShardRecord& shard);

  /// Phase 2: writes the manifest into the staging directory and
  /// atomically renames it over `epoch_<N>/` (replacing a previous
  /// commit of the same epoch, e.g. a replayed cycle). Returns the CRC32
  /// of the manifest body — the value a child delta epoch records as its
  /// `baseCrc` chain link.
  std::uint32_t commitEpoch(const EpochManifest& manifest);

  /// Drops the staging directory of an epoch whose commit barrier
  /// failed (e.g. a rank died mid-commit).
  void abortEpoch(std::uint64_t epoch);

  /// Committed epoch numbers, ascending. Staging (`.tmp`) directories
  /// are never listed.
  std::vector<std::uint64_t> epochs() const;

  /// Attaches a remote mirror (fed by a ShardStreamer). From then on,
  /// an epoch that fails *local* validation is transparently healed:
  /// its files are fetched from the remote copy, verified against the
  /// remote placement map (per-file CRC + size), staged, and swapped
  /// over the broken local directory — so a shard that died with its
  /// node is recovered instead of forcing an older restart point.
  /// newestCompleteEpoch() also considers epochs that exist only
  /// remotely. The store never writes to the remote; streaming is the
  /// ShardStreamer's job.
  void attachRemote(std::shared_ptr<RemoteShardStore> remote);
  const RemoteShardStore* remote() const { return remote_.get(); }

  /// Epochs healed from the remote copy since construction.
  std::uint64_t remoteHeals() const {
    return remoteHeals_.load(std::memory_order_relaxed);
  }

  /// Newest epoch that validates end to end — including, for delta
  /// epochs, the whole base chain — or nullopt. With a remote attached,
  /// locally-broken or locally-missing epochs are healed from the
  /// remote copy before being judged.
  std::optional<std::uint64_t> newestCompleteEpoch() const;

  /// One fully materialized restart point: the epoch, its manifest, and
  /// its resolved (chain-replayed) shards.
  struct ResolvedEpoch {
    std::uint64_t epoch = 0;
    EpochManifest manifest;
    std::vector<ShardRecord> shards;
  };

  /// Walks validating epochs newest-first and returns the first that
  /// actually *loads* end to end. Tolerates epochs yanked between
  /// validation and load — a base directory GC'd mid-recovery, a torn
  /// or half-streamed remote copy — by falling back epoch-by-epoch to
  /// the next older restart point instead of raising a terminal
  /// IoError. Throws IoError only when no epoch resolves at all.
  ResolvedEpoch loadNewestResolvable() const;

  /// True when `epoch` validates end to end: manifest and shards locally
  /// (CRC/size/parse) and, for a delta epoch, every link of its base
  /// chain (present, locally valid, CRC-pinned, strictly backwards,
  /// depth <= maxDeltaChain()).
  bool chainValid(std::uint64_t epoch) const;

  EpochManifest loadManifest(std::uint64_t epoch) const;
  ShardRecord loadShard(std::uint64_t epoch,
                        const EpochManifest::ShardEntry& entry) const;

  /// Loads every shard of `epoch` in manifest order (delta shards stay
  /// deltas; use resolveShards() for materialized state).
  std::vector<ShardRecord> loadShards(const EpochManifest& manifest) const;

  /// Materializes `epoch`'s shards, replaying its base chain if it is a
  /// delta epoch: the full base shards are loaded and every chain level's
  /// dirty pages (plus RNG state and vacancy order) are applied in
  /// ascending epoch order. Throws IoError on a broken chain — a torn
  /// chain must never be reassembled into plausible-looking state.
  std::vector<ShardRecord> resolveShards(std::uint64_t epoch) const;

  /// Applies a delta shard onto its materialized base (same rank + box).
  static void applyDeltaShard(ShardRecord& base, const ShardRecord& delta);

  /// Stitches shard occupations back into a full lattice state.
  static LatticeState reassemble(const EpochManifest& manifest,
                                 const std::vector<ShardRecord>& shards);

  /// Startup GC: removes orphaned `epoch_<N>.tmp` staging directories (a
  /// crash between beginEpoch and commitEpoch leaves them behind
  /// forever) and committed epoch directories that fail *local*
  /// validation (torn manifest or shard — unloadable by construction).
  /// Chain-invalid but locally-sound delta epochs are kept: a missing
  /// base may reappear on a shared filesystem, and they are skipped by
  /// newestCompleteEpoch() regardless. Returns the number of directories
  /// removed.
  int gcStaleArtifacts();

  /// Consolidation GC: removes committed *delta* epochs older than
  /// `fullEpoch`. Once a fresh full epoch is committed, every older
  /// delta resolves to an older restart point through a chain the new
  /// full supersedes; full epochs are kept as self-contained fallbacks.
  /// Returns the number of epochs removed.
  int gcSupersededDeltas(std::uint64_t fullEpoch);

 private:
  bool epochComplete(std::uint64_t epoch) const;
  bool epochCompleteLocal(std::uint64_t epoch) const;
  EpochManifest loadManifestLocal(std::uint64_t epoch) const;
  /// Fetch+verify+swap one epoch from the remote copy; false when there
  /// is no remote, no valid placement map, or any file fails its
  /// placement CRC/size pin (torn or half-streamed copies are refused
  /// whole — recovery then falls back to an older epoch).
  bool tryHealFromRemote(std::uint64_t epoch) const;
  /// Epoch numbers present in the remote store (complete or not).
  std::vector<std::uint64_t> remoteEpochs() const;
  /// Chain length in delta links (0 = full epoch), or -1 when any link
  /// fails validation.
  int chainDepthOrNegative(std::uint64_t epoch) const;

  std::string dir_;
  int maxDeltaChain_ = 8;
  std::shared_ptr<RemoteShardStore> remote_;
  mutable std::atomic<std::uint64_t> remoteHeals_{0};
};

}  // namespace tkmc
