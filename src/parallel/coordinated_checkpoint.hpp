#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lattice/lattice_state.hpp"
#include "lattice/vec3.hpp"

namespace tkmc {

/// One rank's contribution to a coordinated checkpoint epoch: its owned
/// subdomain occupation (packCellBox traversal order, one species byte
/// per site — CET-packed to four sites per byte on disk), its vacancy
/// list in engine order (the selection RNG addresses vacancies by
/// index, so bit-exact resume needs the ordering, not just the
/// occupation), and its RNG stream state.
struct ShardRecord {
  int rank = 0;
  Vec3i originCells{};
  Vec3i extentCells{};
  std::array<std::uint64_t, 4> rngState{};
  std::vector<Vec3i> vacancyOrder;
  std::vector<std::uint8_t> species;

  /// Sites the species vector must hold (2 per owned unit cell).
  std::size_t siteCount() const {
    return 2ULL * static_cast<std::size_t>(extentCells.x) * extentCells.y *
           extentCells.z;
  }
};

/// The global epoch manifest: everything survivors need to agree on a
/// restart point — rank grid, global box, engine clocks, t_stop, the
/// master seed, and a CRC per shard so a torn or bit-rotted shard
/// disqualifies the whole epoch instead of silently feeding the engine
/// bad state.
struct EpochManifest {
  std::uint64_t epoch = 0;
  Vec3i rankGrid{};
  Vec3i globalCells{};
  double latticeConstant = 0.0;
  double time = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t events = 0;
  std::uint64_t discarded = 0;
  double tStop = 0.0;
  std::uint64_t seed = 0;

  struct ShardEntry {
    std::string file;        // relative to the epoch directory
    std::uint32_t crc = 0;   // CRC32 of the shard body (matches its footer)
    std::uint64_t bytes = 0; // full file size, footer included
  };
  std::vector<ShardEntry> shards;
};

/// Coordinated sharded checkpoint store (`<dir>/epoch_<N>/rank_<R>.tkc`
/// plus `manifest.tkm`), committed atomically per epoch.
///
/// Two-phase write-then-rename: shards and the manifest are staged in
/// `epoch_<N>.tmp/`; only after every rank's shard is staged (the
/// engine runs a commit-vote barrier between the phases) is the staging
/// directory renamed to `epoch_<N>/`. A crash — or an injected
/// `comm.rank_kill` — at any point leaves either a complete committed
/// epoch or a `.tmp` directory that readers ignore; a manifest can
/// never reference a missing or torn shard.
///
/// Readers validate before trusting: newestCompleteEpoch() walks
/// committed epochs newest-first and returns the first whose manifest
/// passes its CRC footer and whose every shard exists, matches its
/// manifest CRC and size, and parses cleanly.
class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if needed.
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const { return dir_; }

  std::string stagePath(std::uint64_t epoch) const;
  std::string epochPath(std::uint64_t epoch) const;

  /// Phase 1 entry: creates a fresh staging directory for `epoch`
  /// (clearing any leftover from an aborted earlier attempt).
  void beginEpoch(std::uint64_t epoch);

  /// Stages one rank's shard into the epoch's staging directory and
  /// returns its manifest entry. Publishes `checkpoint.shard_bytes` to
  /// telemetry.
  EpochManifest::ShardEntry stageShard(std::uint64_t epoch,
                                       const ShardRecord& shard);

  /// Phase 2: writes the manifest into the staging directory and
  /// atomically renames it over `epoch_<N>/` (replacing a previous
  /// commit of the same epoch, e.g. a replayed cycle).
  void commitEpoch(const EpochManifest& manifest);

  /// Drops the staging directory of an epoch whose commit barrier
  /// failed (e.g. a rank died mid-commit).
  void abortEpoch(std::uint64_t epoch);

  /// Committed epoch numbers, ascending. Staging (`.tmp`) directories
  /// are never listed.
  std::vector<std::uint64_t> epochs() const;

  /// Newest epoch that validates end to end, or nullopt.
  std::optional<std::uint64_t> newestCompleteEpoch() const;

  EpochManifest loadManifest(std::uint64_t epoch) const;
  ShardRecord loadShard(std::uint64_t epoch,
                        const EpochManifest::ShardEntry& entry) const;

  /// Loads every shard of `epoch` in manifest order.
  std::vector<ShardRecord> loadShards(const EpochManifest& manifest) const;

  /// Stitches shard occupations back into a full lattice state.
  static LatticeState reassemble(const EpochManifest& manifest,
                                 const std::vector<ShardRecord>& shards);

 private:
  bool epochComplete(std::uint64_t epoch) const;

  std::string dir_;
};

}  // namespace tkmc
