#include "parallel/scaling_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tkmc {

double ScalingModel::computeSeconds(double atomsPerCg, double simSeconds) const {
  const double vacancies = atomsPerCg * params_.vacancyConcentration;
  // Each vacancy hops hopRate * simSeconds times; each hop triggers
  // refreshesPerEvent propensity evaluations. The sublattice schedule
  // touches one octant per cycle, so per-cycle work is 1/8 of the rank's
  // vacancies — but over 8 cycles the full population advances, leaving
  // the total unchanged.
  const double events = vacancies * params_.hopRatePerVacancy * simSeconds;
  const double mean = events * params_.refreshesPerEvent * params_.secondsPerRefresh;
  // Barrier imbalance: the cycle ends on the slowest rank. Relative
  // spread of per-rank work scales like 1/sqrt(events per sector window).
  const double eventsPerWindow = std::max(
      vacancies / 8.0 * params_.hopRatePerVacancy * params_.tStop, 1.0);
  return mean * (1.0 + params_.imbalanceCoefficient / std::sqrt(eventsPerWindow));
}

double ScalingModel::commSeconds(double atomsPerCg, std::int64_t coreGroups,
                                 double simSeconds) const {
  require(coreGroups > 0, "need at least one core group");
  const double cycles = simSeconds / params_.tStop;
  // Cubic subdomain: edge in unit cells, surface sites per face.
  const double cells = std::cbrt(atomsPerCg / 2.0);
  const double faceSites = 2.0 * cells * cells * params_.ghostCells;
  const double bytesPerCycle =
      6.0 * faceSites * params_.ghostBytesPerAtomSurface;
  const double exchange =
      6.0 * params_.linkLatency + bytesPerCycle / params_.linkBandwidth;
  const double sync = params_.allreduceStageLatency *
                      std::log2(static_cast<double>(coreGroups) + 1.0);
  return cycles * (exchange + sync);
}

double ScalingModel::runSeconds(double atomsPerCg, std::int64_t coreGroups,
                                double simSeconds) const {
  return computeSeconds(atomsPerCg, simSeconds) +
         commSeconds(atomsPerCg, coreGroups, simSeconds);
}

std::vector<ScalingPoint> ScalingModel::strongScaling(
    double totalAtoms, const std::vector<std::int64_t>& cgs,
    double simSeconds) const {
  require(!cgs.empty(), "empty CG sweep");
  std::vector<ScalingPoint> points;
  points.reserve(cgs.size());
  for (std::int64_t p : cgs) {
    ScalingPoint pt;
    pt.coreGroups = p;
    pt.cores = p * 65;
    pt.atomsPerCg = totalAtoms / static_cast<double>(p);
    pt.computeSeconds = computeSeconds(pt.atomsPerCg, simSeconds);
    pt.commSeconds = commSeconds(pt.atomsPerCg, p, simSeconds);
    pt.totalSeconds = pt.computeSeconds + pt.commSeconds;
    points.push_back(pt);
  }
  const ScalingPoint& base = points.front();
  for (ScalingPoint& pt : points) {
    pt.speedup = base.totalSeconds / pt.totalSeconds;
    const double ideal =
        static_cast<double>(pt.coreGroups) / static_cast<double>(base.coreGroups);
    pt.efficiency = pt.speedup / ideal;
  }
  return points;
}

std::vector<ScalingPoint> ScalingModel::weakScaling(
    double atomsPerCg, const std::vector<std::int64_t>& cgs,
    double simSeconds) const {
  require(!cgs.empty(), "empty CG sweep");
  std::vector<ScalingPoint> points;
  points.reserve(cgs.size());
  for (std::int64_t p : cgs) {
    ScalingPoint pt;
    pt.coreGroups = p;
    pt.cores = p * 65;
    pt.atomsPerCg = atomsPerCg;
    pt.computeSeconds = computeSeconds(atomsPerCg, simSeconds);
    pt.commSeconds = commSeconds(atomsPerCg, p, simSeconds);
    pt.totalSeconds = pt.computeSeconds + pt.commSeconds;
    points.push_back(pt);
  }
  const ScalingPoint& base = points.front();
  for (ScalingPoint& pt : points) {
    // Weak scaling: efficiency is baseline time over this time (ideal is
    // constant wall time).
    pt.efficiency = base.totalSeconds / pt.totalSeconds;
    pt.speedup = pt.efficiency * static_cast<double>(pt.coreGroups) /
                 static_cast<double>(base.coreGroups);
  }
  return points;
}

}  // namespace tkmc
