#pragma once

#include "lattice/vec3.hpp"

namespace tkmc {

/// Regular 3-D spatial decomposition of a periodic box of unit cells
/// across a grid of ranks (paper Fig. 2a). Extents must divide evenly so
/// every subdomain is congruent (a requirement of the synchronous
/// sublattice schedule).
class Decomposition {
 public:
  Decomposition(Vec3i globalCells, Vec3i rankGrid);

  Vec3i globalCells() const { return globalCells_; }
  Vec3i rankGrid() const { return rankGrid_; }
  int rankCount() const { return rankGrid_.x * rankGrid_.y * rankGrid_.z; }

  /// Per-rank subdomain extent in unit cells (same for every rank).
  Vec3i extentCells() const {
    return {globalCells_.x / rankGrid_.x, globalCells_.y / rankGrid_.y,
            globalCells_.z / rankGrid_.z};
  }

  Vec3i rankCoord(int rank) const;
  int rankAt(Vec3i coord) const;  // wraps periodically

  Vec3i originCells(int rank) const;

  /// Rank owning a (wrapped) doubled-integer lattice coordinate.
  int ownerOfSite(Vec3i doubledCoord) const;

  /// Neighbour rank in direction `dir` (components in {-1, 0, 1}).
  int neighborRank(int rank, Vec3i dir) const;

 private:
  Vec3i globalCells_;
  Vec3i rankGrid_;
};

/// Deterministic shrink policy for rank fail-stop recovery: reduces
/// `grid` until its rank count fits `survivors`, by repeatedly dropping
/// the axis with the most ranks to its largest proper divisor (ties
/// broken x before y before z). Every survivor evaluates this pure
/// function on the same inputs and reaches the same reduced grid, so no
/// extra agreement round is needed beyond the survivor count. The
/// result still divides `grid` (and therefore the global box) evenly.
Vec3i shrinkRankGrid(Vec3i grid, int survivors);

/// Elastic regrow policy for rank fail-stop recovery. `grid` is the rank
/// grid of the checkpoint epoch being redistributed; with enough spare
/// ranks to refill it (`survivors + spares >= grid volume`) the original
/// grid is kept — replacement ranks are admitted and capacity holds.
/// Otherwise every available rank (survivors plus whatever spares exist)
/// is offered to shrinkRankGrid, so a partial spare pool still yields
/// the largest grid that fits. Pure, so every survivor reaches the same
/// answer with no extra agreement round.
Vec3i growRankGrid(Vec3i grid, int survivors, int spares);

}  // namespace tkmc
