#include "parallel/ghost_exchange.hpp"

#include "common/error.hpp"
#include "common/retry.hpp"
#include "common/telemetry/telemetry.hpp"

namespace tkmc {
namespace {

constexpr int kTagBase = 100;

constexpr const char* kAxisSpanName[3] = {"ghost.axis_x", "ghost.axis_y",
                                          "ghost.axis_z"};

int axisOf(Vec3i v, int axis) {
  return axis == 0 ? v.x : (axis == 1 ? v.y : v.z);
}

void setAxis(Vec3i& v, int axis, int value) {
  if (axis == 0)
    v.x = value;
  else if (axis == 1)
    v.y = value;
  else
    v.z = value;
}

}  // namespace

GhostExchange::GhostExchange(const Decomposition& decomp, SimComm& comm)
    : decomp_(decomp), comm_(comm),
      slabBuffers_(static_cast<std::size_t>(decomp.rankCount()) * 6) {
  // Axes decomposed across at least two ranks exchange slabs; an axis
  // with a single rank carries no ghost shell at all (the subdomain
  // already spans the whole period there), so flat grids like 2x2x1 are
  // legal and that axis's stage is simply skipped.
}

std::vector<std::uint8_t>& GhostExchange::slabBuffer(int rank, int axis,
                                                     int dir) {
  return slabBuffers_[static_cast<std::size_t>(rank) * 6 +
                      static_cast<std::size_t>(axis) * 2 + (dir > 0 ? 1 : 0)];
}

GhostExchange::Box GhostExchange::sendBox(const Subdomain& sd, int axis,
                                          int dir) const {
  const Vec3i e = sd.extentCells();
  const Vec3i g = sd.ghostCellsVec();
  Box box;
  // Axes exchanged after `axis` (lower axis index = later stage) span the
  // owned range; axes already exchanged span the full extended range.
  // Stage order is z (2), y (1), x (0).
  for (int a = 0; a < 3; ++a) {
    if (a == axis) continue;
    if (a > axis) {
      // Already exchanged: extended range.
      setAxis(box.lo, a, 0);
      setAxis(box.hi, a, axisOf(e, a) + 2 * axisOf(g, a));
    } else {
      // Not yet exchanged: owned range only.
      setAxis(box.lo, a, axisOf(g, a));
      setAxis(box.hi, a, axisOf(g, a) + axisOf(e, a));
    }
  }
  const int ga = axisOf(g, axis);
  if (dir > 0) {
    setAxis(box.lo, axis, axisOf(e, axis));          // top g owned cells
    setAxis(box.hi, axis, axisOf(e, axis) + ga);
  } else {
    setAxis(box.lo, axis, ga);                       // bottom g owned cells
    setAxis(box.hi, axis, 2 * ga);
  }
  return box;
}

GhostExchange::Box GhostExchange::recvBox(const Subdomain& sd, int axis,
                                          int dir) const {
  // The slab received from direction `dir` fills the ghost cells on the
  // opposite... same side the data came from: data sent toward +1 lands
  // in the receiver's low-side ghost.
  Box box = sendBox(sd, axis, dir);
  const Vec3i e = sd.extentCells();
  const int ga = axisOf(sd.ghostCellsVec(), axis);
  if (dir > 0) {
    setAxis(box.lo, axis, 0);  // receiver's low ghost
    setAxis(box.hi, axis, ga);
  } else {
    setAxis(box.lo, axis, ga + axisOf(e, axis));  // receiver's high ghost
    setAxis(box.hi, axis, 2 * ga + axisOf(e, axis));
  }
  return box;
}

void GhostExchange::sendSlabs(int rank, Subdomain& sd, int axis) {
  for (int dir : {-1, +1}) {
    Vec3i dirVec{};
    setAxis(dirVec, axis, dir);
    const int neighbor = decomp_.neighborRank(rank, dirVec);
    const Box box = sendBox(sd, axis, dir);
    // Buffer the packed slab for ARQ: a retransmission must not re-read
    // the sender's live species store, which another rank thread may be
    // unpacking into by then (the 2-bit pages share words across sites).
    std::vector<std::uint8_t>& buffer = slabBuffer(rank, axis, dir);
    buffer = sd.packCellBox(box.lo, box.hi);
    comm_.send(rank, neighbor, kTagBase + axis * 2 + (dir > 0 ? 1 : 0),
               buffer);
  }
}

void GhostExchange::receiveSlabs(int rank, std::vector<Subdomain>& domains,
                                 int axis) {
  // `dir` is the direction the data travelled: a slab sent toward +1
  // arrives from the -1 neighbour and fills the receiver's low-side
  // ghost (the side facing the sender).
  Subdomain& sd = domains[static_cast<std::size_t>(rank)];
  for (int dir : {-1, +1}) {
    Vec3i dirVec{};
    setAxis(dirVec, axis, -dir);
    const int source = decomp_.neighborRank(rank, dirVec);
    const int tag = kTagBase + axis * 2 + (dir > 0 ? 1 : 0);
    const Box box = recvBox(sd, axis, dir);
    const double waitStart = comm_.nowMs();
    // Give-up bookkeeping via the shared RetryPolicy (src/common/retry).
    // Backoff stays zero: ARQ retransmission runs inside the
    // deterministic logical clock, so only the attempt bound is reused
    // here — the checkpoint ShardStreamer uses the same policy with
    // real exponential delays.
    RetrySchedule arq(RetryPolicy{maxAttempts_, /*baseDelayMs=*/0.0,
                                  /*multiplier=*/1.0, /*maxDelayMs=*/0.0,
                                  /*jitterFrac=*/0.0});
    for (;;) {
      try {
        const auto payload = comm_.receive(rank, source, tag);
        sd.unpackCellBox(box.lo, box.hi, payload);
        break;
      } catch (const CommError&) {
        // Purge the failed channel so the retransmission gets a fresh
        // sequence number, then resend on the sender's behalf from the
        // payload the sender buffered at pack time — bit-identical to
        // the original, with no read of the sender's live store.
        comm_.resetChannel(source, rank, tag);
        arq.recordFailure();
        if (comm_.leaseEnabled()) {
          // A resend from a live sender renews its lease, so from the
          // second attempt on a live peer polls kAlive and the normal
          // attempt bound applies; only a truly silent peer keeps the
          // receiver polling until its lease expires.
          const SimComm::PeerVerdict verdict =
              comm_.pollPeer(source, waitStart);
          if (verdict == SimComm::PeerVerdict::kFailed) {
            const double detectMs = comm_.nowMs() - comm_.lastBeatMs(source);
            telemetry::flightRecorder().record(
                rank, telemetry::BlackboxEventType::kLeaseExpired, tag,
                static_cast<std::uint64_t>(source),
                static_cast<std::uint64_t>(detectMs));
            throw RankFailure(
                source, detectMs,
                "rank " + std::to_string(source) +
                    " fail-stop: ghost slab lease expired on tag " +
                    std::to_string(tag));
          }
          if (arq.exhausted() && verdict == SimComm::PeerVerdict::kAlive)
            throw;
        } else if (arq.exhausted()) {
          throw;
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
        telemetry::tracer().instant("ghost.retry", rank);
        comm_.send(source, rank, tag, slabBuffer(source, axis, dir));
      }
    }
  }
}

void GhostExchange::setMaxAttempts(int attempts) {
  require(attempts >= 1, "ghost exchange needs at least one attempt");
  maxAttempts_ = attempts;
}

void GhostExchange::exchangeAll(std::vector<Subdomain>& domains,
                                RankTeam* team) {
  require(static_cast<int>(domains.size()) == decomp_.rankCount(),
          "one subdomain per rank required");
  TKMC_SPAN("engine.ghost_exchange");
  for (int axis : {2, 1, 0}) {
    // Single-rank axes carry no ghost shell: nothing to exchange.
    if (axisOf(decomp_.rankGrid(), axis) < 2) continue;
    TKMC_SPAN(kAxisSpanName[axis]);
    if (team != nullptr) {
      // Concurrent halves with a barrier between: every alive rank
      // packs and posts its slabs, then every alive rank unpacks into
      // its own ghost shell — same bulk-synchronous schedule, real
      // thread-parallel execution.
      team->run([&](int r) {
        if (!comm_.rankAlive(r)) return;
        sendSlabs(r, domains[static_cast<std::size_t>(r)], axis);
      });
      team->run([&](int r) {
        if (!comm_.rankAlive(r)) return;
        receiveSlabs(r, domains, axis);
      });
      continue;
    }
    for (int r = 0; r < decomp_.rankCount(); ++r) {
      if (!comm_.rankAlive(r)) continue;
      sendSlabs(r, domains[static_cast<std::size_t>(r)], axis);
    }
    for (int r = 0; r < decomp_.rankCount(); ++r) {
      if (!comm_.rankAlive(r)) continue;
      receiveSlabs(r, domains, axis);
    }
  }
}

}  // namespace tkmc
