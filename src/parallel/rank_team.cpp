#include "parallel/rank_team.hpp"

#include "common/error.hpp"

namespace tkmc {

RankTeam::RankTeam(int ranks) {
  require(ranks > 0, "rank team needs at least one rank");
  errors_.resize(static_cast<std::size_t>(ranks));
  threads_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r)
    threads_.emplace_back([this, r] { workerLoop(r); });
}

RankTeam::~RankTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void RankTeam::workerLoop(int rank) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(rank);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      errors_[static_cast<std::size_t>(rank)] = error;
      --remaining_;
    }
    done_.notify_one();
  }
}

void RankTeam::run(const std::function<void(int)>& job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &job;
    remaining_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  wake_.notify_all();
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
    // Lowest failing rank wins: deterministic regardless of which
    // thread finished (or failed) first.
    for (std::exception_ptr& e : errors_) {
      if (e && !first) first = e;
      e = nullptr;
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace tkmc
