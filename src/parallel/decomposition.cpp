#include "parallel/decomposition.hpp"

#include "common/error.hpp"

namespace tkmc {
namespace {

int wrapped(int v, int n) {
  int r = v % n;
  if (r < 0) r += n;
  return r;
}

}  // namespace

Decomposition::Decomposition(Vec3i globalCells, Vec3i rankGrid)
    : globalCells_(globalCells), rankGrid_(rankGrid) {
  require(globalCells.x > 0 && globalCells.y > 0 && globalCells.z > 0,
          "global box must be positive");
  require(rankGrid.x > 0 && rankGrid.y > 0 && rankGrid.z > 0,
          "rank grid must be positive");
  require(globalCells.x % rankGrid.x == 0 && globalCells.y % rankGrid.y == 0 &&
              globalCells.z % rankGrid.z == 0,
          "rank grid must divide the global box evenly");
}

Vec3i Decomposition::rankCoord(int rank) const {
  require(rank >= 0 && rank < rankCount(), "rank out of range");
  const int x = rank % rankGrid_.x;
  const int y = (rank / rankGrid_.x) % rankGrid_.y;
  const int z = rank / (rankGrid_.x * rankGrid_.y);
  return {x, y, z};
}

int Decomposition::rankAt(Vec3i coord) const {
  const int x = wrapped(coord.x, rankGrid_.x);
  const int y = wrapped(coord.y, rankGrid_.y);
  const int z = wrapped(coord.z, rankGrid_.z);
  return x + rankGrid_.x * (y + rankGrid_.y * z);
}

Vec3i Decomposition::originCells(int rank) const {
  const Vec3i rc = rankCoord(rank);
  const Vec3i e = extentCells();
  return {rc.x * e.x, rc.y * e.y, rc.z * e.z};
}

int Decomposition::ownerOfSite(Vec3i doubledCoord) const {
  const Vec3i e = extentCells();
  const int cx = wrapped(doubledCoord.x >> 1, globalCells_.x) / e.x;
  const int cy = wrapped(doubledCoord.y >> 1, globalCells_.y) / e.y;
  const int cz = wrapped(doubledCoord.z >> 1, globalCells_.z) / e.z;
  return rankAt({cx, cy, cz});
}

int Decomposition::neighborRank(int rank, Vec3i dir) const {
  const Vec3i rc = rankCoord(rank);
  return rankAt({rc.x + dir.x, rc.y + dir.y, rc.z + dir.z});
}

Vec3i shrinkRankGrid(Vec3i grid, int survivors) {
  require(grid.x >= 1 && grid.y >= 1 && grid.z >= 1,
          "rank grid must be positive");
  require(survivors >= 1, "shrink recovery needs at least one survivor");
  const auto largestProperDivisor = [](int n) {
    for (int d = n / 2; d >= 1; --d)
      if (n % d == 0) return d;
    return 1;
  };
  int* axes[3] = {&grid.x, &grid.y, &grid.z};
  while (grid.x * grid.y * grid.z > survivors) {
    int* widest = axes[0];
    for (int a = 1; a < 3; ++a)
      if (*axes[a] > *widest) widest = axes[a];
    if (*widest == 1) break;  // already 1x1x1
    *widest = largestProperDivisor(*widest);
  }
  return grid;
}

Vec3i growRankGrid(Vec3i grid, int survivors, int spares) {
  require(spares >= 0, "spare rank pool cannot be negative");
  if (survivors + spares >= grid.x * grid.y * grid.z) return grid;
  return shrinkRankGrid(grid, survivors + spares);
}

}  // namespace tkmc
