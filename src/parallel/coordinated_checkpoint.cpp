#include "parallel/coordinated_checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include <algorithm>
#include <map>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/checkpoint.hpp"
#include "lattice/species_store.hpp"
#include "parallel/remote_store.hpp"

namespace tkmc {
namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestName = "manifest.tkm";

std::string readFileOrThrow(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open checkpoint file: " + path);
  std::string contents;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    contents.append(buffer, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) throw IoError("failed reading checkpoint file: " + path);
  return contents;
}

/// Verifies the trailing "crc32 <hex>" footer and returns the body it
/// seals (newline after the body included in the CRC, matching the
/// serial checkpoint convention). `crcOut`, when given, receives the
/// verified body CRC (the delta-chain link value).
std::string verifiedBody(const std::string& contents, const std::string& path,
                         std::uint32_t* crcOut = nullptr) {
  const std::string::size_type foot = contents.rfind("\ncrc32 ");
  if (foot == std::string::npos)
    throw IoError("missing CRC32 footer (truncated?): " + path);
  const std::string body = contents.substr(0, foot + 1);
  unsigned stored = 0;
  if (std::sscanf(contents.c_str() + foot + 1, "crc32 %8x", &stored) != 1)
    throw IoError("CRC32 footer unreadable: " + path);
  const std::uint32_t computed = crc32(body.data(), body.size());
  if (computed != stored) {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "(stored %08x, computed %08x)",
                  stored, computed);
    throw IoError("failed CRC32 check " + std::string(detail) + ": " + path);
  }
  if (crcOut != nullptr) *crcOut = computed;
  return body;
}

std::string sealWithCrc(std::string body) {
  char line[32];
  std::snprintf(line, sizeof(line), "crc32 %08x\n",
                crc32(body.data(), body.size()));
  return body + line;
}

/// CET-packed hex of a one-byte-per-site species run: four 2-bit codes
/// per byte, 80 hex digits per line (same layout as the v3 checkpoint
/// body).
void appendPackedHex(std::string& out, const std::vector<std::uint8_t>& run) {
  static const char* kHex = "0123456789abcdef";
  std::uint8_t packed = 0;
  int slot = 0;
  std::size_t emitted = 0;
  for (const std::uint8_t s : run) {
    packed = static_cast<std::uint8_t>(packed |
                                       (static_cast<unsigned>(s) << (2 * slot)));
    if (++slot == 4) {
      out += kHex[packed >> 4];
      out += kHex[packed & 0xf];
      packed = 0;
      slot = 0;
      if (++emitted % 40 == 0) out += '\n';
    }
  }
  if (slot != 0) {
    out += kHex[packed >> 4];
    out += kHex[packed & 0xf];
    ++emitted;
  }
  if (emitted % 40 != 0) out += '\n';
}

/// Inverse of appendPackedHex: reads `sites` species codes off `in`.
std::vector<std::uint8_t> readPackedHex(std::istream& in, std::size_t sites,
                                        const std::string& path) {
  const auto hexValue = [](int c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  const auto nextHex = [&](int& v) {
    int c;
    do {
      c = in.get();
    } while (c == '\n' || c == '\r' || c == ' ');
    v = c == std::char_traits<char>::eof() ? -1 : hexValue(c);
    return v >= 0;
  };
  std::vector<std::uint8_t> run;
  run.reserve(sites);
  while (run.size() < sites) {
    int hi = 0, lo = 0;
    if (!nextHex(hi) || !nextHex(lo))
      throw IoError("shard occupation truncated: decoded " +
                    std::to_string(run.size()) + " of " +
                    std::to_string(sites) + " sites: " + path);
    const std::uint8_t byte = static_cast<std::uint8_t>((hi << 4) | lo);
    for (int slot = 0; slot < 4 && run.size() < sites; ++slot) {
      const int code = (byte >> (2 * slot)) & 3;
      if (code > 2)
        throw IoError("shard occupation carries invalid species code: " + path);
      run.push_back(static_cast<std::uint8_t>(code));
    }
  }
  return run;
}

void expectKeyword(std::istream& in, const char* word,
                   const std::string& path) {
  std::string got;
  if (!(in >> got) || got != word)
    throw IoError("malformed checkpoint file (expected '" +
                  std::string(word) + "', got '" + got + "'): " + path);
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  require(!dir_.empty(), "checkpoint store needs a directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw IoError("cannot create checkpoint directory " + dir_ + ": " +
                  ec.message());
}

std::string CheckpointStore::stagePath(std::uint64_t epoch) const {
  return dir_ + "/epoch_" + std::to_string(epoch) + ".tmp";
}

std::string CheckpointStore::epochPath(std::uint64_t epoch) const {
  return dir_ + "/epoch_" + std::to_string(epoch);
}

void CheckpointStore::beginEpoch(std::uint64_t epoch) {
  const std::string stage = stagePath(epoch);
  std::error_code ec;
  fs::remove_all(stage, ec);  // leftover from an aborted attempt
  fs::create_directories(stage, ec);
  if (ec)
    throw IoError("cannot create staging directory " + stage + ": " +
                  ec.message());
}

EpochManifest::ShardEntry CheckpointStore::stageShard(
    std::uint64_t epoch, const ShardRecord& shard) {
  if (!shard.delta)
    require(shard.species.size() == shard.siteCount(),
            "shard species run does not match its extent");
  std::string body;
  body.reserve(shard.species.size() / 2 + shard.vacancyOrder.size() * 16 + 256);
  char line[192];
  body += shard.delta ? "tensorkmc-shard 2\n" : "tensorkmc-shard 1\n";
  std::snprintf(line, sizeof(line), "rank %d\n", shard.rank);
  body += line;
  std::snprintf(line, sizeof(line), "box %d %d %d %d %d %d\n",
                shard.originCells.x, shard.originCells.y, shard.originCells.z,
                shard.extentCells.x, shard.extentCells.y, shard.extentCells.z);
  body += line;
  std::snprintf(line, sizeof(line),
                "rng %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                shard.rngState[0], shard.rngState[1], shard.rngState[2],
                shard.rngState[3]);
  body += line;
  std::snprintf(line, sizeof(line), "vacancies %zu\n",
                shard.vacancyOrder.size());
  body += line;
  for (const Vec3i& v : shard.vacancyOrder) {
    std::snprintf(line, sizeof(line), "%d %d %d\n", v.x, v.y, v.z);
    body += line;
  }
  if (shard.delta) {
    const std::size_t pageSites =
        static_cast<std::size_t>(SpeciesStore::kPageSites);
    const std::size_t totalPages =
        (shard.siteCount() + pageSites - 1) / pageSites;
    std::snprintf(line, sizeof(line), "base %" PRIu64 "\n", shard.baseEpoch);
    body += line;
    std::snprintf(line, sizeof(line), "pagesites %zu\n", pageSites);
    body += line;
    std::snprintf(line, sizeof(line), "dirtypages %zu %zu\n",
                  shard.dirtyPages.size(), totalPages);
    body += line;
    for (const ShardRecord::DirtyPage& page : shard.dirtyPages) {
      std::snprintf(line, sizeof(line), "page %u %zu\n", page.index,
                    page.species.size());
      body += line;
      appendPackedHex(body, page.species);
    }
  } else {
    std::snprintf(line, sizeof(line), "occupation %zu\n", shard.species.size());
    body += line;
    appendPackedHex(body, shard.species);
  }

  std::string contents = sealWithCrc(body);
  // Chaos drill: a shard write whose bits rot between staging and read
  // back. The manifest entry keeps the intended CRC, so validation
  // disqualifies the epoch instead of feeding the engine bad state.
  if (faultFires("checkpoint.shard_corrupt_write") && !contents.empty())
    contents[contents.size() / 2] ^= 0x20;
  EpochManifest::ShardEntry entry;
  entry.file = "rank_" + std::to_string(shard.rank) + ".tkc";
  entry.crc = crc32(body.data(), body.size());
  entry.bytes = contents.size();
  writeFileAtomic(stagePath(epoch) + "/" + entry.file, contents);
  if (telemetry::enabled())
    telemetry::metrics()
        .histogram("checkpoint.shard_bytes")
        .observe(static_cast<double>(entry.bytes));
  return entry;
}

void CheckpointStore::setMaxDeltaChain(int depth) {
  require(depth >= 1, "max delta chain depth must be at least 1");
  maxDeltaChain_ = depth;
}

std::uint32_t CheckpointStore::commitEpoch(const EpochManifest& manifest) {
  std::string body;
  char line[192];
  // Full manifests keep the version-1 format byte for byte; only delta
  // manifests (which old readers could not resolve anyway) use v2.
  body += manifest.isDelta() ? "tensorkmc-manifest 2\n"
                             : "tensorkmc-manifest 1\n";
  std::snprintf(line, sizeof(line), "epoch %" PRIu64 "\n", manifest.epoch);
  body += line;
  if (manifest.isDelta()) {
    std::snprintf(line, sizeof(line), "base %" PRIu64 " %08x\n",
                  *manifest.baseEpoch, manifest.baseCrc);
    body += line;
  }
  std::snprintf(line, sizeof(line), "grid %d %d %d\n", manifest.rankGrid.x,
                manifest.rankGrid.y, manifest.rankGrid.z);
  body += line;
  std::snprintf(line, sizeof(line), "cells %d %d %d %.17g\n",
                manifest.globalCells.x, manifest.globalCells.y,
                manifest.globalCells.z, manifest.latticeConstant);
  body += line;
  std::snprintf(line, sizeof(line),
                "clock %.17g %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                manifest.time, manifest.cycles, manifest.events,
                manifest.discarded);
  body += line;
  std::snprintf(line, sizeof(line), "tstop %.17g\n", manifest.tStop);
  body += line;
  std::snprintf(line, sizeof(line), "seed %" PRIu64 "\n", manifest.seed);
  body += line;
  // The default catalog is omitted so vacancy_hop manifests stay byte
  // identical to the pre-catalog format (and old readers still parse
  // them); any other catalog is recorded for resume validation.
  if (manifest.catalog != "vacancy_hop") {
    std::snprintf(line, sizeof(line), "catalog %s\n",
                  manifest.catalog.c_str());
    body += line;
  }
  std::snprintf(line, sizeof(line), "shards %zu\n", manifest.shards.size());
  body += line;
  for (const EpochManifest::ShardEntry& s : manifest.shards) {
    std::snprintf(line, sizeof(line), "%s %08x %" PRIu64 "\n", s.file.c_str(),
                  s.crc, s.bytes);
    body += line;
  }
  const std::uint32_t bodyCrc = crc32(body.data(), body.size());
  const std::string stage = stagePath(manifest.epoch);
  writeFileAtomic(stage + "/" + kManifestName, sealWithCrc(std::move(body)));

  // The atomic commit point: readers only ever see `epoch_<N>/` with the
  // manifest and every shard already in place.
  const std::string target = epochPath(manifest.epoch);
  std::error_code ec;
  fs::remove_all(target, ec);  // replayed cycle recommits the same epoch
  fs::rename(stage, target, ec);
  if (ec)
    throw IoError("cannot commit checkpoint epoch at " + target + ": " +
                  ec.message());
  return bodyCrc;
}

void CheckpointStore::abortEpoch(std::uint64_t epoch) {
  std::error_code ec;
  fs::remove_all(stagePath(epoch), ec);
}

std::vector<std::uint64_t> CheckpointStore::epochs() const {
  std::vector<std::uint64_t> found;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_directory()) continue;
    const std::string name = it->path().filename().string();
    std::uint64_t epoch = 0;
    char trailing = 0;
    if (std::sscanf(name.c_str(), "epoch_%" SCNu64 "%c", &epoch, &trailing) ==
        1)
      found.push_back(epoch);
  }
  std::sort(found.begin(), found.end());
  return found;
}

bool CheckpointStore::epochCompleteLocal(std::uint64_t epoch) const {
  try {
    const EpochManifest manifest = loadManifestLocal(epoch);
    for (const EpochManifest::ShardEntry& entry : manifest.shards)
      (void)loadShard(epoch, entry);
    return !manifest.shards.empty();
  } catch (const std::exception&) {
    return false;
  }
}

bool CheckpointStore::epochComplete(std::uint64_t epoch) const {
  if (epochCompleteLocal(epoch)) return true;
  // A locally torn or missing epoch — a shard that died with its node —
  // gets one shot at a verified remote heal before being judged.
  return tryHealFromRemote(epoch) && epochCompleteLocal(epoch);
}

void CheckpointStore::attachRemote(std::shared_ptr<RemoteShardStore> remote) {
  remote_ = std::move(remote);
}

std::vector<std::uint64_t> CheckpointStore::remoteEpochs() const {
  std::vector<std::uint64_t> found;
  if (!remote_) return found;
  try {
    for (const std::string& name : remote_->listEpochs()) {
      std::uint64_t epoch = 0;
      char trailing = 0;
      if (std::sscanf(name.c_str(), "epoch_%" SCNu64 "%c", &epoch,
                      &trailing) == 1)
        found.push_back(epoch);
    }
  } catch (const std::exception&) {
    found.clear();  // an unreachable remote degrades to local-only
  }
  std::sort(found.begin(), found.end());
  return found;
}

bool CheckpointStore::tryHealFromRemote(std::uint64_t epoch) const {
  if (!remote_) return false;
  const std::string epochDir = "epoch_" + std::to_string(epoch);
  try {
    // The placement map is the remote commit marker: absent or torn
    // means the copy is half streamed and must not be trusted.
    const PlacementMap placement = parsePlacement(
        remote_->get(epochDir, kPlacementFile), remote_->describe() + "/" +
                                                    epochDir);
    if (placement.epoch != epoch || placement.rows.empty()) return false;
    // Fetch every file and verify it against its placement pin before
    // touching the local tree — a torn object refuses the whole heal,
    // and recovery falls back to an older epoch.
    std::vector<std::pair<std::string, std::string>> files;
    for (const PlacementMap::Row& row : placement.rows) {
      std::string contents = remote_->get(epochDir, row.file);
      if (contents.size() != row.bytes ||
          crc32(contents.data(), contents.size()) != row.crc)
        return false;
      files.emplace_back(row.file, std::move(contents));
    }
    // Stage, then swap over the broken local directory in one rename —
    // the same crash discipline as commitEpoch.
    const std::string stage = epochPath(epoch) + ".heal.tmp";
    std::error_code ec;
    fs::remove_all(stage, ec);
    fs::create_directories(stage, ec);
    if (ec) return false;
    for (const auto& [name, contents] : files) {
      std::FILE* f = std::fopen((stage + "/" + name).c_str(), "wb");
      if (f == nullptr) return false;
      const bool ok =
          std::fwrite(contents.data(), 1, contents.size(), f) ==
          contents.size();
      if (std::fclose(f) != 0 || !ok) return false;
    }
    fs::remove_all(epochPath(epoch), ec);
    fs::rename(stage, epochPath(epoch), ec);
    if (ec) return false;
    remoteHeals_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::metrics().counter("remote.heals").add(1);
      telemetry::metrics()
          .counter("remote.fetches")
          .add(static_cast<std::uint64_t>(files.size()));
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Chain length of `epoch` in delta links (0 for a full epoch), or -1
/// when any link of the chain fails validation: a link missing or
/// locally torn, a base that does not precede its child, a base manifest
/// whose sealed CRC disagrees with the child's recorded pin, a
/// grid/cells change mid-chain, or depth beyond maxDeltaChain().
int CheckpointStore::chainDepthOrNegative(std::uint64_t epoch) const {
  int depth = 0;
  std::uint64_t cur = epoch;
  for (;;) {
    if (!epochComplete(cur)) return -1;
    EpochManifest m;
    try {
      m = loadManifest(cur);
    } catch (const std::exception&) {
      return -1;
    }
    if (!m.isDelta()) return depth;
    if (++depth > maxDeltaChain_) return -1;
    if (*m.baseEpoch >= cur) return -1;  // chains link strictly backwards
    EpochManifest base;
    try {
      base = loadManifest(*m.baseEpoch);
    } catch (const std::exception&) {
      return -1;
    }
    // The pin: the base manifest on disk must be the exact one this
    // delta was diffed against — a recommitted or substituted base has a
    // different sealed CRC and breaks the chain here.
    if (base.selfCrc != m.baseCrc) return -1;
    if (!(base.rankGrid == m.rankGrid) || !(base.globalCells == m.globalCells))
      return -1;
    cur = *m.baseEpoch;
  }
}

bool CheckpointStore::chainValid(std::uint64_t epoch) const {
  return chainDepthOrNegative(epoch) >= 0;
}

std::optional<std::uint64_t> CheckpointStore::newestCompleteEpoch() const {
  // Candidates are the union of local and remote epochs: an epoch whose
  // local directory died with its node is still a restart point when
  // the remote copy heals (chainValid -> epochComplete pulls it back).
  std::vector<std::uint64_t> all = epochs();
  const std::vector<std::uint64_t> remote = remoteEpochs();
  all.insert(all.end(), remote.begin(), remote.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  for (auto it = all.rbegin(); it != all.rend(); ++it)
    if (chainValid(*it)) return *it;
  return std::nullopt;
}

CheckpointStore::ResolvedEpoch CheckpointStore::loadNewestResolvable() const {
  std::vector<std::uint64_t> all = epochs();
  const std::vector<std::uint64_t> remote = remoteEpochs();
  all.insert(all.end(), remote.begin(), remote.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (!chainValid(*it)) continue;
    try {
      ResolvedEpoch out;
      out.epoch = *it;
      out.manifest = loadManifest(*it);
      out.shards = resolveShards(*it);
      return out;
    } catch (const IoError&) {
      // Yanked between validation and load (base GC'd mid-recovery, a
      // remote copy torn under us) — fall back to the next older epoch.
      continue;
    }
  }
  throw IoError("no checkpoint epoch resolves end to end: " + dir_);
}

EpochManifest CheckpointStore::loadManifest(std::uint64_t epoch) const {
  try {
    return loadManifestLocal(epoch);
  } catch (const IoError&) {
    if (!tryHealFromRemote(epoch)) throw;
    return loadManifestLocal(epoch);
  }
}

EpochManifest CheckpointStore::loadManifestLocal(std::uint64_t epoch) const {
  const std::string path = epochPath(epoch) + "/" + kManifestName;
  std::uint32_t selfCrc = 0;
  const std::string body =
      verifiedBody(readFileOrThrow(path), path, &selfCrc);
  std::istringstream in(body);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "tensorkmc-manifest")
    throw IoError("not a tensorkmc manifest: " + path);
  if (version != 1 && version != 2)
    throw IoError("unsupported manifest version " + std::to_string(version) +
                  ": " + path);
  EpochManifest m;
  m.selfCrc = selfCrc;
  expectKeyword(in, "epoch", path);
  bool ok = static_cast<bool>(in >> m.epoch);
  if (version == 2) {
    expectKeyword(in, "base", path);
    std::uint64_t base = 0;
    std::string crcHex;
    ok = ok && static_cast<bool>(in >> base >> crcHex);
    unsigned crc = 0;
    ok = ok && std::sscanf(crcHex.c_str(), "%8x", &crc) == 1;
    if (ok) {
      m.baseEpoch = base;
      m.baseCrc = crc;
    }
  }
  expectKeyword(in, "grid", path);
  ok = ok && static_cast<bool>(in >> m.rankGrid.x >> m.rankGrid.y >>
                               m.rankGrid.z);
  expectKeyword(in, "cells", path);
  ok = ok && static_cast<bool>(in >> m.globalCells.x >> m.globalCells.y >>
                               m.globalCells.z >> m.latticeConstant);
  expectKeyword(in, "clock", path);
  ok = ok &&
       static_cast<bool>(in >> m.time >> m.cycles >> m.events >> m.discarded);
  expectKeyword(in, "tstop", path);
  ok = ok && static_cast<bool>(in >> m.tStop);
  expectKeyword(in, "seed", path);
  ok = ok && static_cast<bool>(in >> m.seed);
  // Optional catalog record (absent = the default vacancy_hop, keeping
  // pre-catalog manifests loadable).
  std::string keyword;
  ok = ok && static_cast<bool>(in >> keyword);
  if (ok && keyword == "catalog") {
    ok = static_cast<bool>(in >> m.catalog) && !m.catalog.empty();
    ok = ok && static_cast<bool>(in >> keyword);
  }
  if (!ok || keyword != "shards")
    throw IoError("malformed checkpoint file (expected 'shards', got '" +
                  keyword + "'): " + path);
  std::size_t shardCount = 0;
  ok = ok && static_cast<bool>(in >> shardCount) && shardCount < (1ULL << 20);
  for (std::size_t i = 0; ok && i < shardCount; ++i) {
    EpochManifest::ShardEntry entry;
    std::string crcHex;
    ok = static_cast<bool>(in >> entry.file >> crcHex >> entry.bytes);
    if (ok) {
      unsigned crc = 0;
      ok = std::sscanf(crcHex.c_str(), "%8x", &crc) == 1;
      entry.crc = crc;
      // Shard names are store-generated; reject anything that could
      // escape the epoch directory.
      ok = ok && entry.file.find('/') == std::string::npos &&
           entry.file.find("..") == std::string::npos;
    }
    if (ok) m.shards.push_back(std::move(entry));
  }
  if (!ok || m.epoch != epoch)
    throw IoError("malformed manifest: " + path);
  return m;
}

ShardRecord CheckpointStore::loadShard(
    std::uint64_t epoch, const EpochManifest::ShardEntry& entry) const {
  const std::string path = epochPath(epoch) + "/" + entry.file;
  const std::string contents = readFileOrThrow(path);
  if (entry.bytes != contents.size())
    throw IoError("shard size mismatch (manifest says " +
                  std::to_string(entry.bytes) + ", file has " +
                  std::to_string(contents.size()) + "): " + path);
  const std::string body = verifiedBody(contents, path);
  if (crc32(body.data(), body.size()) != entry.crc)
    throw IoError("shard CRC disagrees with the manifest: " + path);
  std::istringstream in(body);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "tensorkmc-shard")
    throw IoError("not a tensorkmc shard: " + path);
  if (version != 1 && version != 2)
    throw IoError("unsupported shard version " + std::to_string(version) +
                  ": " + path);
  ShardRecord shard;
  shard.delta = version == 2;
  expectKeyword(in, "rank", path);
  bool ok = static_cast<bool>(in >> shard.rank);
  expectKeyword(in, "box", path);
  ok = ok && static_cast<bool>(
                 in >> shard.originCells.x >> shard.originCells.y >>
                 shard.originCells.z >> shard.extentCells.x >>
                 shard.extentCells.y >> shard.extentCells.z);
  expectKeyword(in, "rng", path);
  ok = ok && static_cast<bool>(in >> shard.rngState[0] >> shard.rngState[1] >>
                               shard.rngState[2] >> shard.rngState[3]);
  expectKeyword(in, "vacancies", path);
  std::size_t vacancyCount = 0;
  ok = ok && static_cast<bool>(in >> vacancyCount) &&
       vacancyCount < (1ULL << 32);
  for (std::size_t v = 0; ok && v < vacancyCount; ++v) {
    Vec3i p;
    ok = static_cast<bool>(in >> p.x >> p.y >> p.z);
    if (ok) shard.vacancyOrder.push_back(p);
  }
  if (shard.delta) {
    expectKeyword(in, "base", path);
    ok = ok && static_cast<bool>(in >> shard.baseEpoch);
    expectKeyword(in, "pagesites", path);
    std::size_t pageSites = 0;
    ok = ok && static_cast<bool>(in >> pageSites);
    if (ok && pageSites != static_cast<std::size_t>(SpeciesStore::kPageSites))
      throw IoError("delta shard page geometry disagrees with this build: " +
                    path);
    expectKeyword(in, "dirtypages", path);
    std::size_t dirtyCount = 0, totalPages = 0;
    ok = ok && static_cast<bool>(in >> dirtyCount >> totalPages);
    if (!ok) throw IoError("malformed shard: " + path);
    const std::size_t expectPages =
        (shard.siteCount() + pageSites - 1) / pageSites;
    if (totalPages != expectPages || dirtyCount > totalPages)
      throw IoError("delta shard page count disagrees with its box: " + path);
    std::uint32_t prevIndex = 0;
    for (std::size_t p = 0; p < dirtyCount; ++p) {
      expectKeyword(in, "page", path);
      ShardRecord::DirtyPage page;
      std::size_t sites = 0;
      if (!(in >> page.index >> sites))
        throw IoError("malformed shard: " + path);
      if (page.index >= totalPages || (p > 0 && page.index <= prevIndex))
        throw IoError("delta shard page index out of order: " + path);
      const std::size_t begin =
          static_cast<std::size_t>(page.index) * pageSites;
      const std::size_t expectSites =
          std::min(pageSites, shard.siteCount() - begin);
      if (sites != expectSites)
        throw IoError("delta shard page size disagrees with its box: " + path);
      page.species = readPackedHex(in, sites, path);
      prevIndex = page.index;
      shard.dirtyPages.push_back(std::move(page));
    }
  } else {
    expectKeyword(in, "occupation", path);
    std::size_t sites = 0;
    ok = ok && static_cast<bool>(in >> sites);
    if (!ok) throw IoError("malformed shard: " + path);
    if (sites != shard.siteCount())
      throw IoError("shard occupation count disagrees with its box: " + path);
    shard.species = readPackedHex(in, sites, path);
  }
  return shard;
}

std::vector<ShardRecord> CheckpointStore::loadShards(
    const EpochManifest& manifest) const {
  std::vector<ShardRecord> shards;
  shards.reserve(manifest.shards.size());
  for (const EpochManifest::ShardEntry& entry : manifest.shards)
    shards.push_back(loadShard(manifest.epoch, entry));
  return shards;
}

void CheckpointStore::applyDeltaShard(ShardRecord& base,
                                      const ShardRecord& delta) {
  require(delta.delta, "applyDeltaShard needs a delta shard");
  require(!base.delta, "delta shards must be applied onto materialized state");
  require(base.rank == delta.rank && base.originCells == delta.originCells &&
              base.extentCells == delta.extentCells,
          "delta shard geometry disagrees with its base");
  for (const ShardRecord::DirtyPage& page : delta.dirtyPages) {
    const std::size_t begin =
        static_cast<std::size_t>(page.index) *
        static_cast<std::size_t>(SpeciesStore::kPageSites);
    require(begin + page.species.size() <= base.species.size(),
            "delta shard page overruns its base run");
    std::copy(page.species.begin(), page.species.end(),
              base.species.begin() + static_cast<std::ptrdiff_t>(begin));
  }
  base.rngState = delta.rngState;
  base.vacancyOrder = delta.vacancyOrder;
}

std::vector<ShardRecord> CheckpointStore::resolveShards(
    std::uint64_t epoch) const {
  if (!chainValid(epoch))
    throw IoError("checkpoint epoch " + std::to_string(epoch) +
                  " does not resolve to a valid chain: " + dir_);
  // Collect the chain top-down: the requested epoch first, its base
  // next, ending at the full epoch. chainValid() already pinned every
  // link (existence, CRCs, strictly-backwards bases, depth bound).
  std::vector<EpochManifest> chain;
  std::uint64_t cur = epoch;
  for (;;) {
    chain.push_back(loadManifest(cur));
    if (!chain.back().isDelta()) break;
    cur = *chain.back().baseEpoch;
  }
  // Materialize the full epoch, then replay deltas in ascending epoch
  // order, matching shards by rank.
  std::vector<ShardRecord> shards = loadShards(chain.back());
  std::map<int, std::size_t> byRank;
  for (std::size_t i = 0; i < shards.size(); ++i)
    byRank[shards[i].rank] = i;
  for (auto level = chain.rbegin() + 1; level != chain.rend(); ++level) {
    for (const EpochManifest::ShardEntry& entry : level->shards) {
      const ShardRecord delta = loadShard(level->epoch, entry);
      const auto at = byRank.find(delta.rank);
      if (at == byRank.end())
        throw IoError("delta shard for rank " + std::to_string(delta.rank) +
                      " has no base shard in epoch " +
                      std::to_string(chain.back().epoch) + ": " + dir_);
      applyDeltaShard(shards[at->second], delta);
    }
  }
  return shards;
}

int CheckpointStore::gcStaleArtifacts() {
  std::vector<std::string> tmpDirs;
  std::vector<std::uint64_t> committed;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_directory()) continue;
    const std::string name = it->path().filename().string();
    std::uint64_t epoch = 0;
    char trailing = 0;
    const int got =
        std::sscanf(name.c_str(), "epoch_%" SCNu64 "%c", &epoch, &trailing);
    if (got == 1)
      committed.push_back(epoch);
    else if (got == 2 && name.size() > 4 &&
             name.compare(name.size() - 4, 4, ".tmp") == 0)
      tmpDirs.push_back(it->path().string());
  }
  int removed = 0;
  for (const std::string& stage : tmpDirs) {
    fs::remove_all(stage, ec);
    if (!ec) ++removed;
  }
  // Committed epochs that fail *local* validation are unloadable by
  // construction — torn manifest or shard. With a remote attached,
  // epochComplete() first tries a verified heal, so an epoch with a
  // sound remote copy is repaired here rather than removed.
  // Chain-invalid but locally-sound deltas are kept: a missing base may
  // reappear on a shared filesystem, and readers skip them regardless.
  for (const std::uint64_t epoch : committed) {
    if (epochComplete(epoch)) continue;
    fs::remove_all(epochPath(epoch), ec);
    if (!ec) ++removed;
  }
  if (removed > 0 && telemetry::enabled())
    telemetry::metrics()
        .counter("checkpoint.gc_stale_dirs")
        .add(static_cast<std::uint64_t>(removed));
  return removed;
}

int CheckpointStore::gcSupersededDeltas(std::uint64_t fullEpoch) {
  int removed = 0;
  std::error_code ec;
  for (const std::uint64_t epoch : epochs()) {
    if (epoch >= fullEpoch) continue;
    bool isDelta = false;
    try {
      isDelta = loadManifest(epoch).isDelta();
    } catch (const std::exception&) {
      continue;  // torn epoch — startup GC's job, not consolidation's
    }
    if (!isDelta) continue;
    fs::remove_all(epochPath(epoch), ec);
    if (!ec) ++removed;
  }
  return removed;
}

LatticeState CheckpointStore::reassemble(const EpochManifest& manifest,
                                         const std::vector<ShardRecord>& shards) {
  BccLattice lattice(manifest.globalCells.x, manifest.globalCells.y,
                     manifest.globalCells.z, manifest.latticeConstant);
  LatticeState state(lattice);
  for (const ShardRecord& shard : shards) {
    std::size_t i = 0;
    // Same traversal as Subdomain::packCellBox over the owned region.
    for (int cz = 0; cz < shard.extentCells.z; ++cz)
      for (int cy = 0; cy < shard.extentCells.y; ++cy)
        for (int cx = 0; cx < shard.extentCells.x; ++cx)
          for (int sub = 0; sub < 2; ++sub) {
            const Vec3i p{2 * (shard.originCells.x + cx) + sub,
                          2 * (shard.originCells.y + cy) + sub,
                          2 * (shard.originCells.z + cz) + sub};
            state.setSpeciesAt(lattice.wrap(p),
                               static_cast<Species>(shard.species[i++]));
          }
  }
  return state;
}

}  // namespace tkmc
