#pragma once

#include <vector>

namespace tkmc {

/// Lease-based liveness tracker for the heartbeat protocol.
///
/// Every framed message a rank sends renews its lease ("heartbeats are
/// piggybacked on payload traffic" — no separate heartbeat messages are
/// needed because the bulk-synchronous schedule makes every live rank
/// send on every phase). Time is a logical millisecond clock advanced by
/// the communicator while a receiver polls an empty channel, so
/// detection latency is deterministic and unit-testable: a rank whose
/// lease age exceeds `timeoutMs` is classified fail-stop.
class HeartbeatMonitor {
 public:
  HeartbeatMonitor(int ranks, double timeoutMs);

  /// Renews `rank`'s lease at logical time `nowMs`.
  void beat(int rank, double nowMs);

  /// Logical time of the last lease renewal (construction counts as a
  /// renewal at time 0: every rank starts with a fresh lease).
  double lastBeatMs(int rank) const;

  /// Milliseconds since the last renewal.
  double ageMs(int rank, double nowMs) const;

  /// True when the lease age strictly exceeds the timeout.
  bool expired(int rank, double nowMs) const;

  void setTimeoutMs(double timeoutMs) { timeoutMs_ = timeoutMs; }
  double timeoutMs() const { return timeoutMs_; }

 private:
  std::vector<double> lastBeatMs_;
  double timeoutMs_;
};

}  // namespace tkmc
