#pragma once

#include <vector>

#include "lattice/bcc_lattice.hpp"
#include "lattice/lattice_state.hpp"
#include "lattice/site_indexer.hpp"

namespace tkmc {

/// One rank's portion of the global lattice: owned cells plus a ghost
/// shell, stored through the direct Eq.-4 indexing (no POS_ID array).
///
/// Coordinates at the API are wrapped *global* doubled-integer
/// coordinates; the subdomain translates them into its unwrapped extended
/// frame by choosing the periodic image that lands inside the frame
/// (unique as long as the extended box is smaller than the global box).
class Subdomain {
 public:
  Subdomain(const BccLattice& global, Vec3i originCells, Vec3i extentCells,
            int ghostCells);
  /// Per-axis ghost widths: an axis whose rank grid is 1 carries no
  /// ghost shell (the subdomain spans the whole period there), which
  /// keeps the extended frame within the global box on flat rank grids.
  Subdomain(const BccLattice& global, Vec3i originCells, Vec3i extentCells,
            Vec3i ghostCells);

  const BccLattice& global() const { return global_; }
  const SiteIndexer& indexer() const { return indexer_; }

  /// True when the global coordinate has an image inside the extended box.
  bool covers(Vec3i globalCoord) const;

  /// True when this rank owns the coordinate.
  bool owns(Vec3i globalCoord) const;

  Species at(Vec3i globalCoord) const;
  void set(Vec3i globalCoord, Species s);

  /// Copies owned + ghost species from a full global state (startup).
  void loadFrom(const LatticeState& state);

  /// Owned vacancies, wrapped global coordinates, stable order.
  std::vector<Vec3i>& vacancies() { return vacancies_; }
  const std::vector<Vec3i>& vacancies() const { return vacancies_; }

  /// Rebuilds the vacancy list by scanning the owned region.
  void rescanVacancies();

  /// Packs the species of every site whose unit cell lies in the
  /// extended-frame cell box [lo, hi) (cells counted from the extended
  /// origin). Deterministic x-fastest order, 2 sites per cell.
  std::vector<std::uint8_t> packCellBox(Vec3i lo, Vec3i hi) const;

  /// Unpacks a payload produced by packCellBox() for the same-shaped box.
  void unpackCellBox(Vec3i lo, Vec3i hi, const std::vector<std::uint8_t>& data);

  Vec3i originCells() const { return indexer_.originCells(); }
  Vec3i extentCells() const { return indexer_.extentCells(); }
  int ghostCells() const { return indexer_.ghostCells(); }
  Vec3i ghostCellsVec() const { return indexer_.ghostCellsVec(); }

 private:
  /// Maps a wrapped global coordinate into the extended frame; second
  /// element false when no image fits.
  std::pair<Vec3i, bool> toFrame(Vec3i globalCoord) const;

  /// Site coordinate (doubled, frame coords) of cell (cx,cy,cz) relative
  /// to the extended origin, sublattice sub.
  Vec3i frameSite(Vec3i cell, int sub) const;

  BccLattice global_;
  SiteIndexer indexer_;
  Vec3i extOriginDoubled_;
  Vec3i extSpanDoubled_;
  std::vector<Species> species_;
  std::vector<Vec3i> vacancies_;
};

}  // namespace tkmc
