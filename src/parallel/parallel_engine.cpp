#include "parallel/parallel_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/stopwatch.hpp"
#include "common/telemetry/telemetry.hpp"

namespace tkmc {
namespace {

constexpr int kTagFold = 50;
constexpr int kTagVote = 60;    // commit-vote barrier: rank -> root
constexpr int kTagCommit = 61;  // commit-vote barrier: root -> rank

// Static span names so the cycle span can be tagged with its sector
// without allocating on the hot path.
constexpr const char* kCycleSpanName[8] = {
    "engine.cycle.s0", "engine.cycle.s1", "engine.cycle.s2",
    "engine.cycle.s3", "engine.cycle.s4", "engine.cycle.s5",
    "engine.cycle.s6", "engine.cycle.s7"};

Vet gatherVet(const Cet& cet, const Subdomain& sd, Vec3i center) {
  Vet vet(cet.nAll());
  for (int id = 0; id < cet.nAll(); ++id)
    vet.set(id, sd.at(center + cet.site(id)));
  return vet;
}

int wrapMod(int v, int n) {
  int r = v % n;
  if (r < 0) r += n;
  return r;
}

}  // namespace

int requiredGhostCells(const Cet& cet) {
  int maxComp = 0;
  for (const Vec3i& s : cet.sites()) {
    maxComp = std::max({maxComp, std::abs(s.x), std::abs(s.y), std::abs(s.z)});
  }
  return (maxComp + 1) / 2;  // doubled units -> unit cells, rounded up
}

std::uint64_t recoverySeed(std::uint64_t seed, std::uint64_t epoch,
                           Vec3i rankGrid) {
  // Pure mixing of (seed, epoch, grid) with a domain separator so a
  // recovered stream never collides with the construction-time
  // master.split() sequence of any seed.
  SplitMix64 mix(seed ^ 0x7265736872696e6bULL);
  std::uint64_t h = mix.next() ^ epoch;
  h = SplitMix64(h).next() ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rankGrid.x)) |
       (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rankGrid.y))
        << 20) |
       (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rankGrid.z))
        << 40));
  return SplitMix64(h).next();
}

ParallelEngine::ParallelEngine(const LatticeState& initial, EnergyModel& model,
                               const Cet& cet, ParallelConfig config)
    : lattice_(initial.lattice()), cet_(cet), model_(model),
      config_(std::move(config)), catalog_(makeEventCatalog(config_.catalog)),
      interactionRadius_(0.0) {
  sparePool_ = config_.spareRanks;
  buildFabric(initial);
  Rng master(config_.seed);
  for (int r = 0; r < rankCount(); ++r) rngs_.push_back(master.split());
  if (!config_.checkpointDir.empty()) {
    store_ = std::make_unique<CheckpointStore>(config_.checkpointDir);
    store_->setMaxDeltaChain(config_.maxDeltaChain);
    setupRemote();
    store_->gcStaleArtifacts();
    // Epoch 0: the pre-run restart point. Construction is a local
    // sequential operation with nothing in flight, so no vote barrier.
    // The delta baseline starts invalid, so epoch 0 is always full.
    writeEpoch(/*barrier=*/false);
  }
}

ParallelEngine::ParallelEngine(EnergyModel& model, const Cet& cet,
                               ParallelConfig config,
                               const CheckpointStore& store,
                               std::uint64_t epoch)
    : lattice_(1, 1, 1, 1.0), cet_(cet), model_(model),
      config_(std::move(config)), catalog_(makeEventCatalog(config_.catalog)),
      interactionRadius_(0.0) {
  sparePool_ = config_.spareRanks;
  const EpochManifest manifest = store.loadManifest(epoch);
  require(manifest.tStop == config_.tStop,
          "resume tStop must match the manifest (trajectories are "
          "tStop-dependent)");
  require(manifest.catalog == catalog_->name(),
          "resume event catalog '" + std::string(catalog_->name()) +
              "' does not match the manifest's '" + manifest.catalog +
              "' (trajectories are catalog-dependent)");
  config_.seed = manifest.seed;
  // resolveShards materializes a delta epoch by replaying its base
  // chain; for a full epoch it degenerates to loadShards.
  const std::vector<ShardRecord> shards = store.resolveShards(epoch);
  const LatticeState restored = CheckpointStore::reassemble(manifest, shards);
  lattice_ = restored.lattice();
  buildFabric(restored);
  if (config_.rankGrid == manifest.rankGrid) {
    // Same-grid resume: the shards carry each rank's exact RNG stream
    // state and vacancy list order, so the original trajectory continues
    // bit-exactly.
    rngs_.assign(static_cast<std::size_t>(rankCount()), Rng(0));
    for (const ShardRecord& shard : shards) {
      require(shard.rank >= 0 && shard.rank < rankCount(),
              "shard rank outside the manifest grid");
      rngs_[static_cast<std::size_t>(shard.rank)].setState(shard.rngState);
      domains_[static_cast<std::size_t>(shard.rank)].vacancies() =
          shard.vacancyOrder;
    }
  } else {
    // Different (shrunken) grid: streams are reseeded by the same pure
    // function the in-engine shrink recovery uses, so both reach the
    // same post-recovery trajectory.
    Rng master(recoverySeed(manifest.seed, manifest.epoch, config_.rankGrid));
    for (int r = 0; r < rankCount(); ++r) rngs_.push_back(master.split());
  }
  expectedVacancies_ = vacancyCount();
  time_ = manifest.time;
  cycles_ = manifest.cycles;
  events_ = manifest.events;
  discarded_ = manifest.discarded;
  if (!config_.checkpointDir.empty()) {
    store_ = std::make_unique<CheckpointStore>(config_.checkpointDir);
    store_->setMaxDeltaChain(config_.maxDeltaChain);
    setupRemote();
    store_->gcStaleArtifacts();
    // A resumed engine has no baseline: its first epoch is full, which
    // also caps any pre-resume delta chain.
  }
}

ParallelEngine::~ParallelEngine() {
  // Flush the streaming queue so a clean shutdown leaves the remote
  // mirror complete. Bounded: an epoch whose remote keeps failing gives
  // up after its retry budget, so the queue always drains.
  if (streamer_) streamer_->drain();
}

void ParallelEngine::setupRemote() {
  if (config_.remoteDir.empty()) return;
  remote_ = std::make_shared<DirRemoteStore>(config_.remoteDir);
  store_->attachRemote(remote_);
  ShardStreamer::Config sc;
  sc.rateMbps = config_.remoteRateMbps;
  sc.retry.maxAttempts = std::max(1, config_.remoteRetries);
  sc.jitterSeed = config_.seed;
  streamer_ = std::make_unique<ShardStreamer>(store_->dir(), remote_, sc);
}

void ParallelEngine::afterCommit(std::uint64_t epoch) {
  if (!streamer_) return;
  streamer_->enqueue(epoch);
  const int lag = streamer_->lagEpochs();
  if (telemetry::enabled()) {
    telemetry::metrics().gauge("checkpoint.remote_lag_epochs").set(
        static_cast<double>(lag));
    telemetry::metrics().histogram("checkpoint.remote_lag").observe(
        static_cast<double>(lag));
  }
  if (lag > config_.remoteMaxLagEpochs) {
    // Throttle instead of losing epochs: a bounded wait for the
    // streamer to catch up. Local commits already succeeded; a remote
    // that stays dead exhausts each epoch's retry budget and the queue
    // drains regardless, so this can never wedge the run.
    if (telemetry::enabled())
      telemetry::metrics().counter("checkpoint.remote_throttles").add(1);
    streamer_->waitForLag(config_.remoteMaxLagEpochs, 60000.0);
  }
}

void ParallelEngine::buildFabric(const LatticeState& initial) {
  require(model_.supportsVet(),
          "parallel engine requires a VET-capable energy backend");
  fabric_ = std::make_unique<Fabric>(
      Vec3i{lattice_.cellsX(), lattice_.cellsY(), lattice_.cellsZ()},
      config_.rankGrid);
  const int ghost = requiredGhostCells(cet_);
  const Vec3i extent = fabric_->decomp.extentCells();
  require(extent.x % 2 == 0 && extent.y % 2 == 0 && extent.z % 2 == 0,
          "subdomain extents must be even (octant sectors)");
  // Sector separation: concurrently active octants of neighbouring ranks
  // are one sector width apart; that width must exceed the span a sector
  // window can influence (vacancy-system radius plus one hop).
  int maxComp = 0;
  for (const Vec3i& s : cet_.sites())
    maxComp = std::max({maxComp, std::abs(s.x), std::abs(s.y), std::abs(s.z)});
  const int minSectorDoubled = maxComp + 2;
  require(extent.x >= minSectorDoubled && extent.y >= minSectorDoubled &&
              extent.z >= minSectorDoubled,
          "subdomains too small for conflict-free sublattice sectors at "
          "this cutoff");

  // An axis decomposed on a single rank carries no ghost shell (the
  // subdomain spans the whole period there), so flat grids like 2x2x1
  // keep the extended frame within the global box.
  const Vec3i grid = config_.rankGrid;
  const Vec3i ghostVec{grid.x > 1 ? ghost : 0, grid.y > 1 ? ghost : 0,
                       grid.z > 1 ? ghost : 0};
  domains_.clear();
  domains_.reserve(static_cast<std::size_t>(rankCount()));
  for (int r = 0; r < rankCount(); ++r) {
    domains_.emplace_back(lattice_, fabric_->decomp.originCells(r), extent,
                          ghostVec);
    domains_.back().loadFrom(initial);
  }
  pendingChanges_.assign(static_cast<std::size_t>(rankCount()), {});
  cycleEvents_.assign(static_cast<std::size_t>(rankCount()), 0);
  cycleDiscarded_.assign(static_cast<std::size_t>(rankCount()), 0);
  rankEventOrdinals_.assign(static_cast<std::size_t>(rankCount()), 0);
  const auto types = static_cast<std::size_t>(catalog_->typeCount());
  cycleEventsByType_.assign(static_cast<std::size_t>(rankCount()),
                            std::vector<std::uint64_t>(types, 0));
  // Per-type lifetime counts restart with the fabric: a recovered epoch's
  // manifest records only the aggregate event total, so the breakdown
  // counts events committed since construction or the last recovery.
  eventsByType_.assign(types, 0);
  eventTypeMetricNames_.clear();
  for (int t = 0; t < catalog_->typeCount(); ++t)
    eventTypeMetricNames_.push_back(std::string("engine.events.by_type.") +
                                    catalog_->typeInfo(t).name);
  // Rates become stale within the vacancy-system radius of a changed site.
  interactionRadius_ = (maxComp + 2) * lattice_.latticeConstant() / 2.0;
  expectedVacancies_ = vacancyCount();
  fabric_->exchange.setMaxAttempts(config_.commMaxAttempts);
  if (config_.heartbeatTimeoutMs > 0.0)
    fabric_->comm.setLease(config_.heartbeatIntervalMs,
                           config_.heartbeatTimeoutMs);
  // The team is rebuilt with the fabric: recovery can change the rank
  // count, and the old team's threads are parked between phases, so
  // destroying it here is a plain join.
  team_.reset();
  if (config_.threaded)
    team_ = std::make_unique<RankTeam>(rankCount());
}

Vec3i ParallelEngine::localCell(int rank, Vec3i p) const {
  const Vec3i w = lattice_.wrap(p);
  const Vec3i origin = fabric_->decomp.originCells(rank);
  const Vec3i e = fabric_->decomp.extentCells();
  const int cx = wrapMod((w.x >> 1) - origin.x, lattice_.cellsX());
  const int cy = wrapMod((w.y >> 1) - origin.y, lattice_.cellsY());
  const int cz = wrapMod((w.z >> 1) - origin.z, lattice_.cellsZ());
  return {cx < e.x ? cx : -1, cy < e.y ? cy : -1, cz < e.z ? cz : -1};
}

bool ParallelEngine::inSector(int rank, Vec3i p, int sector) const {
  const Vec3i cell = localCell(rank, p);
  if (cell.x < 0 || cell.y < 0 || cell.z < 0) return false;
  const Vec3i e = fabric_->decomp.extentCells();
  const bool hx = cell.x >= e.x / 2;
  const bool hy = cell.y >= e.y / 2;
  const bool hz = cell.z >= e.z / 2;
  return (static_cast<int>(hx) | (static_cast<int>(hy) << 1) |
          (static_cast<int>(hz) << 2)) == sector;
}

void ParallelEngine::runSector(int rank, int sector) {
  Subdomain& sd = domains_[static_cast<std::size_t>(rank)];
  Rng& rng = rngs_[static_cast<std::size_t>(rank)];
  auto& changes = pendingChanges_[static_cast<std::size_t>(rank)];
  const int types = catalog_->typeCount();

  // Per-(event type, vacancy) rates, refreshed lazily via stale flags.
  // Site classes are a pure function of the wrapped center, cached here
  // and refreshed only when a vacancy moves. A class covered by no type
  // (e.g. the trap_detrap sink slab) contributes zero propensity and is
  // excluded from refresh batches entirely.
  const auto vacancyCountNow = sd.vacancies().size();
  std::vector<std::vector<JumpRates>> rates(
      static_cast<std::size_t>(types), std::vector<JumpRates>(vacancyCountNow));
  std::vector<bool> stale(vacancyCountNow, true);
  std::vector<bool> active(vacancyCountNow);
  std::vector<int> siteClass(vacancyCountNow);
  const auto anyTypeApplies = [&](int cls) {
    for (int t = 0; t < types; ++t)
      if (catalog_->typeApplies(t, cls)) return true;
    return false;
  };
  for (std::size_t v = 0; v < vacancyCountNow; ++v) {
    active[v] = inSector(rank, sd.vacancies()[v], sector);
    siteClass[v] = catalog_->siteClass(lattice_, lattice_.wrap(sd.vacancies()[v]));
  }

  // Batched-refresh scratch, reused across the window's iterations.
  std::vector<std::size_t> staleIdx;
  std::vector<Vet> staleVets;
  std::vector<Vet*> staleVetPtrs;

  double tLocal = 0.0;
  while (true) {
    // Collect every stale active system, then refresh them in a single
    // backend dispatch. Gather order is ascending v, the same order the
    // old per-system loop used, and batched energies are bit-identical,
    // so the RNG stream is consumed onto the same events. One
    // state-energy batch serves every event type (all shipped types are
    // hop-shaped over the same environment).
    staleIdx.clear();
    staleVets.clear();
    staleVetPtrs.clear();
    for (std::size_t v = 0; v < sd.vacancies().size(); ++v) {
      if (!active[v] || !stale[v]) continue;
      if (!anyTypeApplies(siteClass[v])) {
        // Absorbing class: zero every type's row without an energy eval.
        for (int t = 0; t < types; ++t)
          rates[static_cast<std::size_t>(t)][v] = JumpRates{};
        stale[v] = false;
        continue;
      }
      staleIdx.push_back(v);
      staleVets.push_back(gatherVet(cet_, sd, sd.vacancies()[v]));
    }
    if (!staleIdx.empty()) {
      staleVetPtrs.reserve(staleVets.size());
      for (Vet& vet : staleVets) staleVetPtrs.push_back(&vet);
      std::vector<std::vector<double>> energies;
      if (team_ && !model_.concurrentDispatchSafe()) {
        // Rank threads share one backend instance; backends with
        // mutable scratch are serialized (energies are pure functions
        // of the VETs, so serialization cannot change the trajectory).
        std::lock_guard<std::mutex> lock(modelMutex_);
        energies = model_.stateEnergiesBatch(staleVetPtrs, kNumJumpDirections);
      } else {
        energies = model_.stateEnergiesBatch(staleVetPtrs, kNumJumpDirections);
      }
      for (std::size_t i = 0; i < staleIdx.size(); ++i) {
        const std::size_t v = staleIdx[i];
        for (int t = 0; t < types; ++t) {
          JumpRates& slot = rates[static_cast<std::size_t>(t)][v];
          if (!catalog_->typeApplies(t, siteClass[v])) {
            slot = JumpRates{};
            continue;
          }
          slot = catalog_->evaluateChecked(t, staleVets[i], energies[i],
                                           config_.temperature);
          if (!std::isfinite(slot.total) || slot.total < 0.0) {
            telemetry::flightRecorder().record(
                rank, telemetry::BlackboxEventType::kInvariantTrip, sector,
                cycles_, static_cast<std::uint64_t>(t));
            telemetry::flightRecorder().dumpIncident("propensity_poisoned");
            throw InvariantError(
                std::string(
                    "non-finite or negative propensity from event type '") +
                catalog_->typeInfo(t).name + "' of catalog '" +
                catalog_->name() + "' on rank " + std::to_string(rank) +
                " (total " + std::to_string(slot.total) + ")");
          }
        }
        stale[v] = false;
      }
      if (telemetry::enabled())
        telemetry::metrics()
            .histogram("engine.batch_size",
                       telemetry::Histogram::batchSizeBounds())
            .observe(static_cast<double>(staleIdx.size()));
      telemetry::flightRecorder().record(
          rank, telemetry::BlackboxEventType::kPropensityRefresh, sector,
          staleIdx.size());
    }
    // Total and selection scan share the same type-major summation
    // order, so the chosen event is exactly the one the cumulative sum
    // crossed; with one type both degenerate to the historical site
    // scan bit-for-bit.
    double total = 0.0;
    for (int t = 0; t < types; ++t) {
      const auto& typeRates = rates[static_cast<std::size_t>(t)];
      for (std::size_t v = 0; v < sd.vacancies().size(); ++v) {
        if (!active[v]) continue;
        total += typeRates[v].total;
      }
    }
    if (!std::isfinite(total) || total < 0.0)
      throw InvariantError("propensity sum insane in sector window: " +
                           std::to_string(total));
    if (total <= 0.0) break;

    const double u1 = rng.uniform();
    double target = u1 * total;
    int chosenType = 0;
    std::size_t chosen = 0;
    bool found = false;
    for (int t = 0; t < types && !found; ++t) {
      const auto& typeRates = rates[static_cast<std::size_t>(t)];
      for (std::size_t v = 0; v < sd.vacancies().size(); ++v) {
        if (!active[v]) continue;
        chosenType = t;
        chosen = v;
        target -= typeRates[v].total;
        if (target < 0.0) {
          found = true;
          break;
        }
      }
    }
    require(found || target < 1e-9 * total, "event selection overflow");
    if (!found) {
      // fp boundary (u1 * total landed past the cumulative sum): walk
      // back to the last active event with non-zero propensity, so a
      // zero-rate tail slot — e.g. an inapplicable (type, site) pair —
      // can never be executed.
      for (int t = types - 1; t >= 0 && !found; --t) {
        const auto& typeRates = rates[static_cast<std::size_t>(t)];
        for (std::size_t v = sd.vacancies().size(); v-- > 0;) {
          if (!active[v] || typeRates[v].total <= 0.0) continue;
          chosenType = t;
          chosen = v;
          found = true;
          break;
        }
      }
      require(found, "no feasible event despite positive propensity");
    }

    const JumpRates& jr = rates[static_cast<std::size_t>(chosenType)][chosen];
    const int arity = catalog_->typeInfo(chosenType).arity;
    const double u2 = rng.uniform();
    double dirTarget = u2 * jr.total;
    int direction = 0;
    for (; direction < arity - 1; ++direction) {
      dirTarget -= jr.rate[static_cast<std::size_t>(direction)];
      if (dirTarget < 0.0) break;
    }
    while (direction > 0 && jr.rate[static_cast<std::size_t>(direction)] == 0.0)
      --direction;

    const double dt = residenceTime(rng.uniformOpenLeft(), total);
    if (tLocal + dt > config_.tStop) {
      // Event beyond the window: discard and stop (Shim-Amar rule).
      ++cycleDiscarded_[static_cast<std::size_t>(rank)];
      break;
    }
    tLocal += dt;

    const Vec3i from = lattice_.wrap(sd.vacancies()[chosen]);
    const Vec3i to =
        lattice_.wrap(from + catalog_->candidateOffset(chosenType, direction));
    const Species migrating = sd.at(to);
    require(migrating != Species::kVacancy, "parallel hop into a vacancy");
    sd.set(from, migrating);
    sd.set(to, Species::kVacancy);
    changes.push_back({from, migrating});
    changes.push_back({to, Species::kVacancy});
    ++cycleEvents_[static_cast<std::size_t>(rank)];
    ++cycleEventsByType_[static_cast<std::size_t>(rank)]
                        [static_cast<std::size_t>(chosenType)];
    // Blackbox payload is the rank's own event ordinal: a global one
    // would depend on which rank thread got there first.
    const std::uint64_t ordinal =
        ++rankEventOrdinals_[static_cast<std::size_t>(rank)];
    telemetry::flightRecorder().record(
        rank, telemetry::BlackboxEventType::kKmcEvent, sector, ordinal,
        static_cast<std::uint64_t>(direction));

    // Vacancy list maintenance.
    if (sd.owns(to)) {
      sd.vacancies()[chosen] = to;
      active[chosen] = inSector(rank, to, sector);
      siteClass[chosen] = catalog_->siteClass(lattice_, to);
    } else {
      sd.vacancies().erase(sd.vacancies().begin() +
                           static_cast<std::ptrdiff_t>(chosen));
      for (int t = 0; t < types; ++t) {
        auto& typeRates = rates[static_cast<std::size_t>(t)];
        typeRates.erase(typeRates.begin() +
                        static_cast<std::ptrdiff_t>(chosen));
      }
      stale.erase(stale.begin() + static_cast<std::ptrdiff_t>(chosen));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(chosen));
      siteClass.erase(siteClass.begin() +
                      static_cast<std::ptrdiff_t>(chosen));
    }

    // Invalidate rates of vacancies near the changed sites.
    for (std::size_t v = 0; v < sd.vacancies().size(); ++v) {
      for (const Vec3i& site : {from, to}) {
        const Vec3i d =
            lattice_.minimumImage(lattice_.wrap(sd.vacancies()[v]), site);
        if (lattice_.offsetDistance(d) <= interactionRadius_) {
          stale[v] = true;
          break;
        }
      }
    }
  }
}

std::vector<std::uint8_t> ParallelEngine::receiveReliable(
    int rank, int from, int tag, const std::vector<std::uint8_t>& resend,
    std::atomic<std::uint64_t>& retryCounter, const char* what) {
  SimComm& comm = fabric_->comm;
  const double waitStart = comm.nowMs();
  for (int attempt = 1;; ++attempt) {
    try {
      return comm.receive(rank, from, tag);
    } catch (const CommError&) {
      // Purge the failed channel so the retransmission gets a fresh
      // sequence number, then resend on the sender's behalf from the
      // buffered copy (ARQ).
      comm.resetChannel(from, rank, tag);
      if (comm.leaseEnabled()) {
        // A resend from a live sender renews its lease, so from the
        // second attempt on a live peer polls kAlive and the normal
        // attempt bound applies; only a truly silent peer keeps the
        // receiver polling until its lease expires.
        const SimComm::PeerVerdict verdict = comm.pollPeer(from, waitStart);
        if (verdict == SimComm::PeerVerdict::kFailed) {
          const double detectMs = comm.nowMs() - comm.lastBeatMs(from);
          telemetry::flightRecorder().record(
              rank, telemetry::BlackboxEventType::kLeaseExpired, tag,
              static_cast<std::uint64_t>(from),
              static_cast<std::uint64_t>(detectMs));
          throw RankFailure(from, detectMs,
                            "rank " + std::to_string(from) + " fail-stop: " +
                                what + " lease expired on tag " +
                                std::to_string(tag));
        }
        if (attempt >= config_.commMaxAttempts &&
            verdict == SimComm::PeerVerdict::kAlive)
          throw;
      } else if (attempt >= config_.commMaxAttempts) {
        throw;
      }
      retryCounter.fetch_add(1, std::memory_order_relaxed);
      comm.send(from, rank, tag, resend);
    }
  }
}

void ParallelEngine::foldChanges() {
  TKMC_SPAN("engine.fold");
  SimComm& comm = fabric_->comm;
  const auto ranks = static_cast<std::size_t>(rankCount());
  constexpr std::size_t kStride = 3 * sizeof(std::int32_t) + 1;
  // The fold is four bulk-synchronous phases, each expressed as one job
  // per rank: serialize, transmit, collect, apply. The threaded backend
  // dispatches each phase across the rank threads with a barrier in
  // between; sequential mode drives the identical jobs in rank order,
  // so both backends produce the same channel traffic and the same
  // owner-side application order (inbound is indexed by source rank,
  // not arrival order).
  std::vector<std::vector<std::vector<std::uint8_t>>> outbound(
      ranks, std::vector<std::vector<std::uint8_t>>(ranks));
  std::vector<std::vector<std::vector<std::uint8_t>>> inbound(
      ranks, std::vector<std::vector<std::uint8_t>>(ranks));

  // Phase 1: serialize boundary modifications per (source, owner) pair.
  // The buffers outlive the sends so a failed delivery can be
  // retransmitted verbatim.
  const auto serialize = [&](int rank) {
    const auto r = static_cast<std::size_t>(rank);
    for (const Change& c : pendingChanges_[r]) {
      const int owner = fabric_->decomp.ownerOfSite(c.site);
      if (owner == rank) continue;
      auto& buf = outbound[r][static_cast<std::size_t>(owner)];
      const std::int32_t coords[3] = {c.site.x, c.site.y, c.site.z};
      const std::size_t at = buf.size();
      buf.resize(at + sizeof(coords) + 1);
      std::memcpy(buf.data() + at, coords, sizeof(coords));
      buf[at + sizeof(coords)] = static_cast<std::uint8_t>(c.species);
    }
  };
  // Phase 2: transmit. Every rank sends exactly one fold message to
  // every rank (possibly empty), so the receive side knows exactly what
  // to expect on each channel. A dead rank's sends silently no-op
  // (fail-stop), which is what the receive side's lease protocol
  // eventually detects.
  const auto transmit = [&](int rank) {
    const auto r = static_cast<std::size_t>(rank);
    for (std::size_t to = 0; to < ranks; ++to)
      comm.send(rank, static_cast<int>(to), kTagFold, outbound[r][to]);
  };
  // Phase 3: collect and validate every payload before applying any of
  // them. Fold application mutates vacancy lists and is not idempotent,
  // so a failed receive must not leave a half-applied fold behind; with
  // application deferred, a lost or corrupt frame is handled by purging
  // that one channel and retransmitting from the buffered copy (ARQ).
  // Only the acting (receiving) rank's liveness is consulted — a
  // receiver must keep waiting on a silent source for the failure
  // detector to do its job.
  const auto collect = [&](int rank) {
    if (!comm.rankAlive(rank)) return;
    const auto r = static_cast<std::size_t>(rank);
    for (std::size_t from = 0; from < ranks; ++from) {
      inbound[r][from] =
          receiveReliable(rank, static_cast<int>(from), kTagFold,
                          outbound[from][r], foldRetries_, "fold");
      if (inbound[r][from].size() % kStride != 0)
        throw CommError("malformed fold payload from rank " +
                        std::to_string(from) + " to rank " +
                        std::to_string(rank));
    }
  };
  // Phase 4: owners apply the folded changes (each rank writes only its
  // own subdomain, in source-rank order).
  const auto apply = [&](int rank) {
    if (!comm.rankAlive(rank)) return;
    const auto r = static_cast<std::size_t>(rank);
    Subdomain& sd = domains_[r];
    for (std::size_t from = 0; from < ranks; ++from) {
      const auto& payload = inbound[r][from];
      for (std::size_t off = 0; off < payload.size(); off += kStride) {
        std::int32_t coords[3];
        std::memcpy(coords, payload.data() + off, sizeof(coords));
        const Vec3i site{coords[0], coords[1], coords[2]};
        const auto species =
            static_cast<Species>(payload[off + sizeof(coords)]);
        require(sd.owns(site), "fold routed to wrong owner");
        const Species before = sd.at(site);
        sd.set(site, species);
        if (species == Species::kVacancy && before != Species::kVacancy)
          sd.vacancies().push_back(lattice_.wrap(site));
      }
    }
    pendingChanges_[r].clear();
  };

  if (team_) {
    team_->run(serialize);
    team_->run(transmit);
    team_->run(collect);
    team_->run(apply);
  } else {
    for (std::size_t r = 0; r < ranks; ++r) serialize(static_cast<int>(r));
    for (std::size_t r = 0; r < ranks; ++r) transmit(static_cast<int>(r));
    for (std::size_t r = 0; r < ranks; ++r) collect(static_cast<int>(r));
    for (std::size_t r = 0; r < ranks; ++r) apply(static_cast<int>(r));
  }
}

ShardRecord ParallelEngine::makeShard(int rank) const {
  const Subdomain& sd = domains_[static_cast<std::size_t>(rank)];
  ShardRecord shard;
  shard.rank = rank;
  shard.originCells = sd.originCells();
  shard.extentCells = sd.extentCells();
  shard.rngState = rngs_[static_cast<std::size_t>(rank)].state();
  shard.vacancyOrder = sd.vacancies();
  const Vec3i g = sd.ghostCellsVec();
  const Vec3i e = sd.extentCells();
  shard.species =
      sd.packCellBox({g.x, g.y, g.z}, {g.x + e.x, g.y + e.y, g.z + e.z});
  return shard;
}

void ParallelEngine::commitVoteBarrier(std::uint64_t epoch) {
  SimComm& comm = fabric_->comm;
  const int root = 0;
  std::vector<std::uint8_t> token(sizeof(std::uint64_t));
  std::memcpy(token.data(), &epoch, sizeof(epoch));
  // Every rank of the current world votes; the root waits for votes
  // from ALL of them — not just the ones it believes alive — before the
  // epoch is published. A rank that died at any point this cycle
  // (including on the vote send itself) goes silent here, the root's
  // lease poll surfaces RankFailure, and the caller aborts the staged
  // epoch — a manifest can never reference a missing shard. A dead
  // root cannot collect votes (or commit); the ack phase exposes it.
  for (int r = 0; r < rankCount(); ++r)
    if (r != root) comm.send(r, root, kTagVote, token);
  if (!comm.rankAlive(root)) return;
  for (int r = 0; r < rankCount(); ++r)
    if (r != root)
      (void)receiveReliable(root, r, kTagVote, token, foldRetries_,
                            "commit vote");
}

void ParallelEngine::writeEpoch(bool barrier) {
  TKMC_SPAN("engine.checkpoint");
  const std::uint64_t epoch = cycles_;
  store_->beginEpoch(epoch);
  try {
    SimComm& comm = fabric_->comm;
    // Delta eligibility: mode armed, a valid baseline on this very grid
    // with room left in the chain (consolidation: the epoch that would
    // exceed maxDeltaChain links is written full instead), and a full
    // world — a rank missing from a delta epoch would silently pin its
    // base-epoch state through the replay.
    const bool delta =
        config_.checkpointMode == CheckpointMode::kDelta && baseline_.valid &&
        baseline_.rankGrid == fabric_->decomp.rankGrid() &&
        baseline_.chainDepth < config_.maxDeltaChain &&
        comm.aliveCount() == rankCount();
    EpochManifest manifest;
    manifest.epoch = epoch;
    manifest.rankGrid = fabric_->decomp.rankGrid();
    manifest.globalCells = {lattice_.cellsX(), lattice_.cellsY(),
                            lattice_.cellsZ()};
    manifest.latticeConstant = lattice_.latticeConstant();
    manifest.time = time_;
    manifest.cycles = cycles_;
    manifest.events = events_;
    manifest.discarded = discarded_;
    manifest.tStop = config_.tStop;
    manifest.seed = config_.seed;
    manifest.catalog = catalog_->name();
    if (delta) {
      manifest.baseEpoch = baseline_.epoch;
      manifest.baseCrc = baseline_.manifestCrc;
    }
    std::vector<std::vector<std::uint32_t>> newHashes(
        static_cast<std::size_t>(rankCount()));
    std::size_t dirtyTotal = 0;
    std::size_t pageTotal = 0;
    for (int r = 0; r < rankCount(); ++r) {
      if (!comm.rankAlive(r)) continue;  // a dead rank can't write a shard
      ShardRecord shard = makeShard(r);
      std::vector<std::uint32_t>& hashes =
          newHashes[static_cast<std::size_t>(r)];
      hashes = SpeciesStore::runPageHashes(shard.species);
      pageTotal += hashes.size();
      if (delta) {
        const std::vector<std::uint32_t>& base =
            baseline_.pageHashes[static_cast<std::size_t>(r)];
        ShardRecord d;
        d.rank = shard.rank;
        d.originCells = shard.originCells;
        d.extentCells = shard.extentCells;
        d.rngState = shard.rngState;
        d.vacancyOrder = std::move(shard.vacancyOrder);
        d.delta = true;
        d.baseEpoch = baseline_.epoch;
        for (std::size_t p = 0; p < hashes.size(); ++p) {
          if (p < base.size() && base[p] == hashes[p]) continue;
          ShardRecord::DirtyPage page;
          page.index = static_cast<std::uint32_t>(p);
          const std::size_t begin =
              p * static_cast<std::size_t>(SpeciesStore::kPageSites);
          const std::size_t end =
              std::min(begin + static_cast<std::size_t>(SpeciesStore::kPageSites),
                       shard.species.size());
          page.species.assign(shard.species.begin() +
                                  static_cast<std::ptrdiff_t>(begin),
                              shard.species.begin() +
                                  static_cast<std::ptrdiff_t>(end));
          d.dirtyPages.push_back(std::move(page));
        }
        dirtyTotal += d.dirtyPages.size();
        manifest.shards.push_back(store_->stageShard(epoch, d));
      } else {
        manifest.shards.push_back(store_->stageShard(epoch, shard));
      }
      telemetry::flightRecorder().record(
          r, telemetry::BlackboxEventType::kCheckpointStage, delta ? 1 : 0,
          epoch, manifest.shards.back().bytes);
    }
    if (delta && telemetry::enabled()) {
      telemetry::metrics()
          .histogram("checkpoint.delta_pages")
          .observe(static_cast<double>(dirtyTotal));
      if (pageTotal > 0)
        telemetry::metrics()
            .gauge("checkpoint.delta_ratio")
            .set(static_cast<double>(dirtyTotal) /
                 static_cast<double>(pageTotal));
    }
    // Runs only after a successful commit: the committed epoch becomes
    // the diff base of the next one, and a fresh full epoch supersedes
    // every older delta.
    const auto adoptBaseline = [&](std::uint32_t manifestCrc) {
      telemetry::flightRecorder().record(
          0, telemetry::BlackboxEventType::kCommitEpoch, delta ? 1 : 0, epoch,
          manifestCrc);
      baseline_.valid = true;
      baseline_.epoch = epoch;
      baseline_.manifestCrc = manifestCrc;
      baseline_.chainDepth = delta ? baseline_.chainDepth + 1 : 0;
      baseline_.rankGrid = fabric_->decomp.rankGrid();
      baseline_.pageHashes = std::move(newHashes);
      if (!delta && config_.checkpointMode == CheckpointMode::kDelta)
        store_->gcSupersededDeltas(epoch);
      afterCommit(epoch);
    };
    if (!barrier) {
      adoptBaseline(store_->commitEpoch(manifest));
    } else {
      const int root = 0;
      commitVoteBarrier(epoch);
      if (comm.rankAlive(root)) {
        // All votes collected, so every rank is alive and every shard
        // staged: the manifest is complete by construction.
        require(manifest.shards.size() ==
                    static_cast<std::size_t>(rankCount()),
                "commit barrier passed with missing shards");
        adoptBaseline(store_->commitEpoch(manifest));
      }
      // Commit announcement. A dead root never commits and never acks,
      // so the survivors detect it here and recover from the previous
      // epoch; if the root dies on an ack send after committing, the
      // recovery resumes from this very epoch (zero rollback).
      std::vector<std::uint8_t> token(sizeof(std::uint64_t));
      std::memcpy(token.data(), &epoch, sizeof(epoch));
      for (int r = 0; r < rankCount(); ++r)
        if (r != root) comm.send(root, r, kTagCommit, token);
      for (int r = 0; r < rankCount(); ++r)
        if (r != root && comm.rankAlive(r))
          (void)receiveReliable(r, root, kTagCommit, token, foldRetries_,
                                "commit ack");
    }
  } catch (...) {
    // Harmless after a successful commit (the staging directory is
    // already gone); essential before it.
    store_->abortEpoch(epoch);
    throw;
  }
}

void ParallelEngine::executeCycle() {
  if (faultFires("engine.cycle"))
    throw InvariantError("injected engine-cycle fault");
  const int sector = static_cast<int>(cycles_ % 8);
  TKMC_SPAN(kCycleSpanName[sector]);
  for (int r = 0; r < rankCount(); ++r)
    if (fabric_->comm.rankAlive(r))
      telemetry::flightRecorder().record(
          r, telemetry::BlackboxEventType::kCycle, sector, cycles_);
  std::fill(cycleEvents_.begin(), cycleEvents_.end(), 0);
  std::fill(cycleDiscarded_.begin(), cycleDiscarded_.end(), 0);
  for (auto& perType : cycleEventsByType_)
    std::fill(perType.begin(), perType.end(), 0);
  {
    TKMC_SPAN("engine.sectors");
    if (team_) {
      // One job per rank thread; sector geometry guarantees the
      // concurrently active regions cannot interact, and each job
      // touches only its rank's subdomain, RNG stream, and counters.
      team_->run([&](int r) {
        if (!fabric_->comm.rankAlive(r)) return;
        TKMC_SPAN_TID("engine.sector", r);
        runSector(r, sector);
      });
    } else {
      for (int r = 0; r < rankCount(); ++r) {
        if (!fabric_->comm.rankAlive(r)) continue;
        TKMC_SPAN_TID("engine.sector", r);
        runSector(r, sector);
      }
    }
  }
  // Rank-order reduction: totals are independent of which thread
  // finished first, so threaded and sequential runs agree bit-for-bit.
  for (std::size_t r = 0; r < cycleEvents_.size(); ++r) {
    events_ += cycleEvents_[r];
    discarded_ += cycleDiscarded_[r];
    for (std::size_t t = 0; t < eventsByType_.size(); ++t)
      eventsByType_[t] += cycleEventsByType_[r][t];
  }
  foldChanges();
  fabric_->exchange.exchangeAll(domains_, team_.get());
  time_ += config_.tStop;
  ++cycles_;
  if (store_ && config_.checkpointCadence > 0 &&
      cycles_ % static_cast<std::uint64_t>(config_.checkpointCadence) == 0)
    writeEpoch(/*barrier=*/true);
}

void ParallelEngine::verifyInvariants() {
  if (vacancyCount() != expectedVacancies_) {
    ++recovery_.invariantTrips;
    telemetry::flightRecorder().record(
        0, telemetry::BlackboxEventType::kInvariantTrip, 0, cycles_);
    telemetry::flightRecorder().dumpIncident("invariant_trip");
    throw InvariantError("vacancy conservation violated after cycle " +
                         std::to_string(cycles_) + ": expected " +
                         std::to_string(expectedVacancies_) + ", counted " +
                         std::to_string(vacancyCount()));
  }
  if (config_.invariantCadence > 0 &&
      cycles_ % static_cast<std::uint64_t>(config_.invariantCadence) == 0 &&
      !ghostsConsistent()) {
    ++recovery_.invariantTrips;
    telemetry::flightRecorder().record(
        0, telemetry::BlackboxEventType::kInvariantTrip, 1, cycles_);
    telemetry::flightRecorder().dumpIncident("invariant_trip");
    throw InvariantError("ghost shells inconsistent after cycle " +
                         std::to_string(cycles_));
  }
}

void ParallelEngine::takeSnapshot() {
  snapshot_.domains = domains_;
  snapshot_.rngStates.clear();
  for (const Rng& r : rngs_) snapshot_.rngStates.push_back(r.state());
  snapshot_.time = time_;
  snapshot_.cycles = cycles_;
  snapshot_.events = events_;
  snapshot_.discarded = discarded_;
  snapshot_.eventsByType = eventsByType_;
  snapshot_.baseline = baseline_;
}

void ParallelEngine::restoreSnapshot() {
  domains_ = snapshot_.domains;
  for (std::size_t i = 0; i < rngs_.size(); ++i)
    rngs_[i].setState(snapshot_.rngStates[i]);
  time_ = snapshot_.time;
  cycles_ = snapshot_.cycles;
  events_ = snapshot_.events;
  discarded_ = snapshot_.discarded;
  eventsByType_ = snapshot_.eventsByType;
  baseline_ = snapshot_.baseline;
  for (auto& changes : pendingChanges_) changes.clear();
  fabric_->comm.resetAllChannels();
}

void ParallelEngine::recoverFromRankFailure(const RankFailure& failure) {
  namespace tm = telemetry;
  Stopwatch watch;
  const int survivors = fabric_->comm.aliveCount();
  require(survivors >= 1, "no survivors left to recover with");
  // loadNewestResolvable tolerates restart points yanked between
  // validation and load (a delta base GC'd mid-recovery, a torn remote
  // copy) by falling back epoch-by-epoch — and, with a remote store
  // attached, heals epochs whose local shards died with their node.
  CheckpointStore::ResolvedEpoch resolved;
  try {
    resolved = store_->loadNewestResolvable();
  } catch (const IoError&) {
    throw RankFailure(failure.rank(), failure.detectMs(),
                      std::string(failure.what()) +
                          " (no complete checkpoint epoch to recover from)");
  }
  const EpochManifest manifest = std::move(resolved.manifest);
  const std::vector<ShardRecord> shards = std::move(resolved.shards);
  const LatticeState restored = CheckpointStore::reassemble(manifest, shards);
  const std::uint64_t rolledBack = cycles_ - manifest.cycles;
  recovery_.epochsRolledBack += rolledBack;
  lastRecoveryEpoch_ = manifest.epoch;
  // Elastic regrow first: with spares available the survivors re-admit
  // replacement ranks and keep the epoch's own grid; otherwise every
  // available rank is offered to the shrink policy. Deterministic, so
  // all survivors agree without another round.
  config_.rankGrid = growRankGrid(manifest.rankGrid, survivors, sparePool_);
  const int admitted = std::max(
      0, config_.rankGrid.x * config_.rankGrid.y * config_.rankGrid.z -
             survivors);
  sparePool_ -= admitted;
  if (admitted > 0) ++recovery_.growRecoveries;
  rngs_.clear();
  buildFabric(restored);
  if (config_.rankGrid == manifest.rankGrid) {
    // The epoch's own grid (grow recovery, or a failure detected after
    // an earlier recovery already reshaped the world to this epoch's
    // grid): the shards carry each rank's exact RNG stream state and
    // vacancy order, so the continuation is bit-identical to a fresh
    // same-grid resume — and, at cadence 1, to the uninterrupted run.
    rngs_.assign(static_cast<std::size_t>(rankCount()), Rng(0));
    for (const ShardRecord& shard : shards) {
      require(shard.rank >= 0 && shard.rank < rankCount(),
              "shard rank outside the manifest grid");
      rngs_[static_cast<std::size_t>(shard.rank)].setState(shard.rngState);
      domains_[static_cast<std::size_t>(shard.rank)].vacancies() =
          shard.vacancyOrder;
    }
  } else {
    Rng master(recoverySeed(manifest.seed, manifest.epoch, config_.rankGrid));
    for (int r = 0; r < rankCount(); ++r) rngs_.push_back(master.split());
  }
  time_ = manifest.time;
  cycles_ = manifest.cycles;
  events_ = manifest.events;
  discarded_ = manifest.discarded;
  // The recovered world diffs against nothing: its next epoch is full.
  baseline_ = DeltaBaseline{};
  takeSnapshot();
  tm::flightRecorder().record(0, tm::BlackboxEventType::kRecovery,
                              admitted > 0 ? 1 : 0, manifest.epoch,
                              rolledBack);
  if (tm::enabled()) {
    tm::metrics().counter("recovery.rank_failures").inc();
    tm::metrics().counter("recovery.epochs_rolled_back").add(rolledBack);
    if (admitted > 0) tm::metrics().counter("recovery.grow_count").inc();
    tm::metrics().histogram("recovery.detect_ms").observe(failure.detectMs());
    tm::metrics()
        .histogram("recovery.latency_seconds")
        .observe(watch.seconds());
  }
}

void ParallelEngine::runCycle() {
  namespace tm = telemetry;
  const bool instrumented = tm::enabled();
  Stopwatch watch;
  if (!config_.enableRecovery) {
    executeCycle();
    if (instrumented) {
      tm::metrics().histogram("engine.cycle_seconds").observe(watch.seconds());
      publishTelemetry();
    }
    return;
  }
  {
    TKMC_SPAN("engine.snapshot");
    takeSnapshot();
  }
  for (int attempt = 1;; ++attempt) {
    try {
      executeCycle();
      {
        TKMC_SPAN("engine.invariants");
        verifyInvariants();
      }
      if (instrumented) {
        tm::metrics()
            .histogram("engine.cycle_seconds")
            .observe(watch.seconds());
        publishTelemetry();
      }
      return;
    } catch (const RankFailure& failure) {
      // Shrink recovery: needs a checkpoint store to restart from.
      // recoverFromRankFailure rebuilds the fabric and re-takes the
      // snapshot at the recovered epoch, so the replay budget resets.
      if (!store_) throw;
      ++recovery_.rankFailures;
      tm::tracer().instant("engine.rank_failure");
      tm::flightRecorder().record(
          failure.rank(), tm::BlackboxEventType::kRankFailureDetected, 0,
          static_cast<std::uint64_t>(failure.rank()),
          static_cast<std::uint64_t>(failure.detectMs()));
      // Dump the blackboxes *before* recovery rebuilds the world, so the
      // post-mortem shows the state the failure was detected in.
      tm::flightRecorder().dumpIncident("rank_failure");
      recoverFromRankFailure(failure);
      attempt = 0;
      continue;
    } catch (const CommError&) {
      ++recovery_.commErrors;
      if (attempt >= config_.maxReplays) throw;
    } catch (const InvariantError&) {
      if (attempt >= config_.maxReplays) throw;
    }
    // Roll back to the sync boundary and replay. The engine RNG streams
    // rewind with the snapshot (so the physics replays identically) but
    // the fault injector's streams advance, so an injected transient
    // does not recur deterministically on the replay.
    ++recovery_.rollbacks;
    tm::tracer().instant("engine.rollback");
    tm::flightRecorder().record(0, tm::BlackboxEventType::kRollback, attempt,
                                cycles_);
    TKMC_SPAN("engine.rollback_restore");
    restoreSnapshot();
  }
}

RecoveryStats ParallelEngine::recoveryStats() const {
  RecoveryStats stats = recovery_;
  stats.ghostRetries = fabric_->exchange.retries();
  stats.foldRetries = foldRetries_.load(std::memory_order_relaxed);
  return stats;
}

void ParallelEngine::publishTelemetry() const {
  namespace tm = telemetry;
  if (!tm::enabled()) return;
  tm::MetricsRegistry& reg = tm::metrics();
  reg.gauge("engine.cycles").set(static_cast<double>(cycles_));
  reg.gauge("engine.time_seconds").set(time_);
  reg.gauge("engine.events").set(static_cast<double>(events_));
  reg.gauge("engine.discarded_events").set(static_cast<double>(discarded_));
  for (std::size_t t = 0; t < eventTypeMetricNames_.size(); ++t)
    reg.gauge(eventTypeMetricNames_[t])
        .set(static_cast<double>(eventsByType_[t]));
  reg.gauge("engine.ranks").set(static_cast<double>(rankCount()));
  reg.gauge("engine.alive_ranks")
      .set(static_cast<double>(fabric_->comm.aliveCount()));
  reg.gauge("engine.vacancies").set(static_cast<double>(vacancyCount()));
  const RecoveryStats rs = recoveryStats();
  reg.gauge("recovery.rollbacks").set(static_cast<double>(rs.rollbacks));
  reg.gauge("recovery.invariant_trips")
      .set(static_cast<double>(rs.invariantTrips));
  reg.gauge("recovery.comm_errors").set(static_cast<double>(rs.commErrors));
  reg.gauge("recovery.ghost_retries").set(static_cast<double>(rs.ghostRetries));
  reg.gauge("recovery.fold_retries").set(static_cast<double>(rs.foldRetries));
  const SimComm& comm = fabric_->comm;
  reg.gauge("comm.bytes_sent").set(static_cast<double>(comm.totalBytesSent()));
  reg.gauge("comm.messages_sent")
      .set(static_cast<double>(comm.totalMessagesSent()));
  reg.gauge("comm.crc_failures").set(static_cast<double>(comm.crcFailures()));
  reg.gauge("comm.duplicates_dropped")
      .set(static_cast<double>(comm.duplicatesDropped()));
  reg.gauge("comm.retransmits")
      .set(static_cast<double>(rs.ghostRetries + rs.foldRetries));
}

void ParallelEngine::run(double tEnd) {
  while (time_ < tEnd) runCycle();
}

std::int64_t ParallelEngine::vacancyCount() const {
  std::int64_t total = 0;
  for (const Subdomain& sd : domains_)
    total += static_cast<std::int64_t>(sd.vacancies().size());
  return total;
}

LatticeState ParallelEngine::assembleGlobalState() const {
  LatticeState out(lattice_);
  for (int r = 0; r < rankCount(); ++r) {
    const Subdomain& sd = domains_[static_cast<std::size_t>(r)];
    const Vec3i origin = fabric_->decomp.originCells(r);
    const Vec3i e = fabric_->decomp.extentCells();
    for (int cz = 0; cz < e.z; ++cz)
      for (int cy = 0; cy < e.y; ++cy)
        for (int cx = 0; cx < e.x; ++cx)
          for (int sub = 0; sub < 2; ++sub) {
            const Vec3i p{2 * (origin.x + cx) + sub, 2 * (origin.y + cy) + sub,
                          2 * (origin.z + cz) + sub};
            out.setSpeciesAt(lattice_.wrap(p), sd.at(p));
          }
  }
  return out;
}

bool ParallelEngine::ghostsConsistent() const {
  const LatticeState global = assembleGlobalState();
  for (int r = 0; r < rankCount(); ++r) {
    const Subdomain& sd = domains_[static_cast<std::size_t>(r)];
    const Vec3i origin = fabric_->decomp.originCells(r);
    const Vec3i e = fabric_->decomp.extentCells();
    const Vec3i g = sd.ghostCellsVec();
    for (int cz = -g.z; cz < e.z + g.z; ++cz)
      for (int cy = -g.y; cy < e.y + g.y; ++cy)
        for (int cx = -g.x; cx < e.x + g.x; ++cx)
          for (int sub = 0; sub < 2; ++sub) {
            const Vec3i p{2 * (origin.x + cx) + sub, 2 * (origin.y + cy) + sub,
                          2 * (origin.z + cz) + sub};
            if (sd.at(p) != global.speciesAt(lattice_.wrap(p))) return false;
          }
  }
  return true;
}

}  // namespace tkmc
