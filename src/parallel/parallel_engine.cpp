#include "parallel/parallel_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/stopwatch.hpp"
#include "common/telemetry/telemetry.hpp"

namespace tkmc {
namespace {

constexpr int kTagFold = 50;

// Static span names so the cycle span can be tagged with its sector
// without allocating on the hot path.
constexpr const char* kCycleSpanName[8] = {
    "engine.cycle.s0", "engine.cycle.s1", "engine.cycle.s2",
    "engine.cycle.s3", "engine.cycle.s4", "engine.cycle.s5",
    "engine.cycle.s6", "engine.cycle.s7"};

Vet gatherVet(const Cet& cet, const Subdomain& sd, Vec3i center) {
  Vet vet(cet.nAll());
  for (int id = 0; id < cet.nAll(); ++id)
    vet.set(id, sd.at(center + cet.site(id)));
  return vet;
}

int wrapMod(int v, int n) {
  int r = v % n;
  if (r < 0) r += n;
  return r;
}

}  // namespace

int requiredGhostCells(const Cet& cet) {
  int maxComp = 0;
  for (const Vec3i& s : cet.sites()) {
    maxComp = std::max({maxComp, std::abs(s.x), std::abs(s.y), std::abs(s.z)});
  }
  return (maxComp + 1) / 2;  // doubled units -> unit cells, rounded up
}

ParallelEngine::ParallelEngine(const LatticeState& initial, EnergyModel& model,
                               const Cet& cet, ParallelConfig config)
    : lattice_(initial.lattice()), cet_(cet), model_(model), config_(config),
      decomp_({initial.lattice().cellsX(), initial.lattice().cellsY(),
               initial.lattice().cellsZ()},
              config.rankGrid),
      comm_(decomp_.rankCount()), exchange_(decomp_, comm_),
      interactionRadius_(0.0) {
  require(model.supportsVet(),
          "parallel engine requires a VET-capable energy backend");
  const int ghost = requiredGhostCells(cet);
  const Vec3i extent = decomp_.extentCells();
  require(extent.x % 2 == 0 && extent.y % 2 == 0 && extent.z % 2 == 0,
          "subdomain extents must be even (octant sectors)");
  // Sector separation: concurrently active octants of neighbouring ranks
  // are one sector width apart; that width must exceed the span a sector
  // window can influence (vacancy-system radius plus one hop).
  int maxComp = 0;
  for (const Vec3i& s : cet.sites())
    maxComp = std::max({maxComp, std::abs(s.x), std::abs(s.y), std::abs(s.z)});
  const int minSectorDoubled = maxComp + 2;
  require(extent.x >= minSectorDoubled && extent.y >= minSectorDoubled &&
              extent.z >= minSectorDoubled,
          "subdomains too small for conflict-free sublattice sectors at "
          "this cutoff");

  domains_.reserve(static_cast<std::size_t>(decomp_.rankCount()));
  Rng master(config.seed);
  for (int r = 0; r < decomp_.rankCount(); ++r) {
    domains_.emplace_back(lattice_, decomp_.originCells(r), extent, ghost);
    domains_.back().loadFrom(initial);
    rngs_.push_back(master.split());
  }
  pendingChanges_.resize(static_cast<std::size_t>(decomp_.rankCount()));
  // Rates become stale within the vacancy-system radius of a changed site.
  interactionRadius_ =
      (maxComp + 2) * lattice_.latticeConstant() / 2.0;
  expectedVacancies_ = vacancyCount();
  exchange_.setMaxAttempts(config.commMaxAttempts);
}

Vec3i ParallelEngine::localCell(int rank, Vec3i p) const {
  const Vec3i w = lattice_.wrap(p);
  const Vec3i origin = decomp_.originCells(rank);
  const Vec3i e = decomp_.extentCells();
  const int cx = wrapMod((w.x >> 1) - origin.x, lattice_.cellsX());
  const int cy = wrapMod((w.y >> 1) - origin.y, lattice_.cellsY());
  const int cz = wrapMod((w.z >> 1) - origin.z, lattice_.cellsZ());
  return {cx < e.x ? cx : -1, cy < e.y ? cy : -1, cz < e.z ? cz : -1};
}

bool ParallelEngine::inSector(int rank, Vec3i p, int sector) const {
  const Vec3i cell = localCell(rank, p);
  if (cell.x < 0 || cell.y < 0 || cell.z < 0) return false;
  const Vec3i e = decomp_.extentCells();
  const bool hx = cell.x >= e.x / 2;
  const bool hy = cell.y >= e.y / 2;
  const bool hz = cell.z >= e.z / 2;
  return (static_cast<int>(hx) | (static_cast<int>(hy) << 1) |
          (static_cast<int>(hz) << 2)) == sector;
}

void ParallelEngine::runSector(int rank, int sector) {
  Subdomain& sd = domains_[static_cast<std::size_t>(rank)];
  Rng& rng = rngs_[static_cast<std::size_t>(rank)];
  auto& changes = pendingChanges_[static_cast<std::size_t>(rank)];

  // Per-vacancy rates, refreshed lazily via stale flags.
  std::vector<JumpRates> rates(sd.vacancies().size());
  std::vector<bool> stale(sd.vacancies().size(), true);
  std::vector<bool> active(sd.vacancies().size());
  for (std::size_t v = 0; v < sd.vacancies().size(); ++v)
    active[v] = inSector(rank, sd.vacancies()[v], sector);

  // Batched-refresh scratch, reused across the window's iterations.
  std::vector<std::size_t> staleIdx;
  std::vector<Vet> staleVets;
  std::vector<Vet*> staleVetPtrs;

  double tLocal = 0.0;
  while (true) {
    // Collect every stale active system, then refresh them in a single
    // backend dispatch. Gather order is ascending v, the same order the
    // old per-system loop used, and batched energies are bit-identical,
    // so the RNG stream is consumed onto the same events.
    staleIdx.clear();
    staleVets.clear();
    staleVetPtrs.clear();
    for (std::size_t v = 0; v < sd.vacancies().size(); ++v) {
      if (!active[v] || !stale[v]) continue;
      staleIdx.push_back(v);
      staleVets.push_back(gatherVet(cet_, sd, sd.vacancies()[v]));
    }
    if (!staleIdx.empty()) {
      staleVetPtrs.reserve(staleVets.size());
      for (Vet& vet : staleVets) staleVetPtrs.push_back(&vet);
      const auto energies =
          model_.stateEnergiesBatch(staleVetPtrs, kNumJumpDirections);
      for (std::size_t i = 0; i < staleIdx.size(); ++i) {
        rates[staleIdx[i]] =
            computeRates(staleVets[i], energies[i], config_.temperature);
        stale[staleIdx[i]] = false;
      }
      if (telemetry::enabled())
        telemetry::metrics()
            .histogram("engine.batch_size",
                       telemetry::Histogram::batchSizeBounds())
            .observe(static_cast<double>(staleIdx.size()));
    }
    double total = 0.0;
    for (std::size_t v = 0; v < sd.vacancies().size(); ++v) {
      if (!active[v]) continue;
      total += rates[v].total;
    }
    if (!std::isfinite(total) || total < 0.0)
      throw InvariantError("propensity sum insane in sector window: " +
                           std::to_string(total));
    if (total <= 0.0) break;

    const double u1 = rng.uniform();
    double target = u1 * total;
    std::size_t chosen = 0;
    bool found = false;
    for (std::size_t v = 0; v < sd.vacancies().size(); ++v) {
      if (!active[v]) continue;
      chosen = v;
      target -= rates[v].total;
      if (target < 0.0) {
        found = true;
        break;
      }
    }
    require(found || target < 1e-9 * total, "event selection overflow");

    const JumpRates& jr = rates[chosen];
    const double u2 = rng.uniform();
    double dirTarget = u2 * jr.total;
    int direction = 0;
    for (; direction < kNumJumpDirections - 1; ++direction) {
      dirTarget -= jr.rate[static_cast<std::size_t>(direction)];
      if (dirTarget < 0.0) break;
    }
    while (direction > 0 && jr.rate[static_cast<std::size_t>(direction)] == 0.0)
      --direction;

    const double dt = residenceTime(rng.uniformOpenLeft(), total);
    if (tLocal + dt > config_.tStop) {
      // Event beyond the window: discard and stop (Shim-Amar rule).
      ++discarded_;
      break;
    }
    tLocal += dt;

    const Vec3i from = lattice_.wrap(sd.vacancies()[chosen]);
    const Vec3i to = lattice_.wrap(
        from +
        BccLattice::firstNeighborOffsets()[static_cast<std::size_t>(direction)]);
    const Species migrating = sd.at(to);
    require(migrating != Species::kVacancy, "parallel hop into a vacancy");
    sd.set(from, migrating);
    sd.set(to, Species::kVacancy);
    changes.push_back({from, migrating});
    changes.push_back({to, Species::kVacancy});
    ++events_;

    // Vacancy list maintenance.
    if (sd.owns(to)) {
      sd.vacancies()[chosen] = to;
      active[chosen] = inSector(rank, to, sector);
    } else {
      sd.vacancies().erase(sd.vacancies().begin() +
                           static_cast<std::ptrdiff_t>(chosen));
      rates.erase(rates.begin() + static_cast<std::ptrdiff_t>(chosen));
      stale.erase(stale.begin() + static_cast<std::ptrdiff_t>(chosen));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(chosen));
    }

    // Invalidate rates of vacancies near the changed sites.
    for (std::size_t v = 0; v < sd.vacancies().size(); ++v) {
      for (const Vec3i& site : {from, to}) {
        const Vec3i d =
            lattice_.minimumImage(lattice_.wrap(sd.vacancies()[v]), site);
        if (lattice_.offsetDistance(d) <= interactionRadius_) {
          stale[v] = true;
          break;
        }
      }
    }
  }
}

void ParallelEngine::foldChanges() {
  TKMC_SPAN("engine.fold");
  const auto ranks = static_cast<std::size_t>(decomp_.rankCount());
  // Phase 1: serialize boundary modifications per (source, owner) pair.
  // The buffers outlive the sends so a failed delivery can be
  // retransmitted verbatim.
  std::vector<std::vector<std::vector<std::uint8_t>>> outbound(
      ranks, std::vector<std::vector<std::uint8_t>>(ranks));
  for (std::size_t r = 0; r < ranks; ++r) {
    for (const Change& c : pendingChanges_[r]) {
      const int owner = decomp_.ownerOfSite(c.site);
      if (owner == static_cast<int>(r)) continue;
      auto& buf = outbound[r][static_cast<std::size_t>(owner)];
      const std::int32_t coords[3] = {c.site.x, c.site.y, c.site.z};
      const std::size_t at = buf.size();
      buf.resize(at + sizeof(coords) + 1);
      std::memcpy(buf.data() + at, coords, sizeof(coords));
      buf[at + sizeof(coords)] = static_cast<std::uint8_t>(c.species);
    }
  }
  // Phase 2: transmit. Every rank sends exactly one fold message to
  // every rank (possibly empty), so the receive side knows exactly what
  // to expect on each channel.
  for (std::size_t r = 0; r < ranks; ++r)
    for (std::size_t to = 0; to < ranks; ++to)
      comm_.send(static_cast<int>(r), static_cast<int>(to), kTagFold,
                 outbound[r][to]);
  // Phase 3: collect and validate every payload before applying any of
  // them. Fold application mutates vacancy lists and is not idempotent,
  // so a failed receive must not leave a half-applied fold behind; with
  // application deferred, a lost or corrupt frame is handled by purging
  // that one channel and retransmitting from the buffered copy (ARQ).
  constexpr std::size_t kStride = 3 * sizeof(std::int32_t) + 1;
  std::vector<std::vector<std::vector<std::uint8_t>>> inbound(
      ranks, std::vector<std::vector<std::uint8_t>>(ranks));
  for (std::size_t r = 0; r < ranks; ++r) {
    for (std::size_t from = 0; from < ranks; ++from) {
      for (int attempt = 1;; ++attempt) {
        try {
          inbound[r][from] = comm_.receive(static_cast<int>(r),
                                           static_cast<int>(from), kTagFold);
          break;
        } catch (const CommError&) {
          comm_.resetChannel(static_cast<int>(from), static_cast<int>(r),
                             kTagFold);
          if (attempt >= config_.commMaxAttempts) throw;
          ++recovery_.foldRetries;
          comm_.send(static_cast<int>(from), static_cast<int>(r), kTagFold,
                     outbound[from][r]);
        }
      }
      if (inbound[r][from].size() % kStride != 0)
        throw CommError("malformed fold payload from rank " +
                        std::to_string(from) + " to rank " + std::to_string(r));
    }
  }
  // Phase 4: owners apply the folded changes.
  for (std::size_t r = 0; r < ranks; ++r) {
    Subdomain& sd = domains_[r];
    for (std::size_t from = 0; from < ranks; ++from) {
      const auto& payload = inbound[r][from];
      for (std::size_t off = 0; off < payload.size(); off += kStride) {
        std::int32_t coords[3];
        std::memcpy(coords, payload.data() + off, sizeof(coords));
        const Vec3i site{coords[0], coords[1], coords[2]};
        const auto species =
            static_cast<Species>(payload[off + sizeof(coords)]);
        require(sd.owns(site), "fold routed to wrong owner");
        const Species before = sd.at(site);
        sd.set(site, species);
        if (species == Species::kVacancy && before != Species::kVacancy)
          sd.vacancies().push_back(lattice_.wrap(site));
      }
    }
    pendingChanges_[r].clear();
  }
}

void ParallelEngine::executeCycle() {
  if (faultFires("engine.cycle"))
    throw InvariantError("injected engine-cycle fault");
  const int sector = static_cast<int>(cycles_ % 8);
  TKMC_SPAN(kCycleSpanName[sector]);
  {
    TKMC_SPAN("engine.sectors");
    for (int r = 0; r < decomp_.rankCount(); ++r) {
      TKMC_SPAN_TID("engine.sector", r);
      runSector(r, sector);
    }
  }
  foldChanges();
  exchange_.exchangeAll(domains_);
  time_ += config_.tStop;
  ++cycles_;
}

void ParallelEngine::verifyInvariants() {
  if (vacancyCount() != expectedVacancies_) {
    ++recovery_.invariantTrips;
    throw InvariantError("vacancy conservation violated after cycle " +
                         std::to_string(cycles_) + ": expected " +
                         std::to_string(expectedVacancies_) + ", counted " +
                         std::to_string(vacancyCount()));
  }
  if (config_.invariantCadence > 0 &&
      cycles_ % static_cast<std::uint64_t>(config_.invariantCadence) == 0 &&
      !ghostsConsistent()) {
    ++recovery_.invariantTrips;
    throw InvariantError("ghost shells inconsistent after cycle " +
                         std::to_string(cycles_));
  }
}

void ParallelEngine::takeSnapshot() {
  snapshot_.domains = domains_;
  snapshot_.rngStates.clear();
  for (const Rng& r : rngs_) snapshot_.rngStates.push_back(r.state());
  snapshot_.time = time_;
  snapshot_.cycles = cycles_;
  snapshot_.events = events_;
  snapshot_.discarded = discarded_;
}

void ParallelEngine::restoreSnapshot() {
  domains_ = snapshot_.domains;
  for (std::size_t i = 0; i < rngs_.size(); ++i)
    rngs_[i].setState(snapshot_.rngStates[i]);
  time_ = snapshot_.time;
  cycles_ = snapshot_.cycles;
  events_ = snapshot_.events;
  discarded_ = snapshot_.discarded;
  for (auto& changes : pendingChanges_) changes.clear();
  comm_.resetAllChannels();
}

void ParallelEngine::runCycle() {
  namespace tm = telemetry;
  const bool instrumented = tm::enabled();
  Stopwatch watch;
  if (!config_.enableRecovery) {
    executeCycle();
    if (instrumented) {
      tm::metrics().histogram("engine.cycle_seconds").observe(watch.seconds());
      publishTelemetry();
    }
    return;
  }
  {
    TKMC_SPAN("engine.snapshot");
    takeSnapshot();
  }
  for (int attempt = 1;; ++attempt) {
    try {
      executeCycle();
      {
        TKMC_SPAN("engine.invariants");
        verifyInvariants();
      }
      if (instrumented) {
        tm::metrics()
            .histogram("engine.cycle_seconds")
            .observe(watch.seconds());
        publishTelemetry();
      }
      return;
    } catch (const CommError&) {
      ++recovery_.commErrors;
      if (attempt >= config_.maxReplays) throw;
    } catch (const InvariantError&) {
      if (attempt >= config_.maxReplays) throw;
    }
    // Roll back to the sync boundary and replay. The engine RNG streams
    // rewind with the snapshot (so the physics replays identically) but
    // the fault injector's streams advance, so an injected transient
    // does not recur deterministically on the replay.
    ++recovery_.rollbacks;
    tm::tracer().instant("engine.rollback");
    TKMC_SPAN("engine.rollback_restore");
    restoreSnapshot();
  }
}

RecoveryStats ParallelEngine::recoveryStats() const {
  RecoveryStats stats = recovery_;
  stats.ghostRetries = exchange_.retries();
  return stats;
}

void ParallelEngine::publishTelemetry() const {
  namespace tm = telemetry;
  if (!tm::enabled()) return;
  tm::MetricsRegistry& reg = tm::metrics();
  reg.gauge("engine.cycles").set(static_cast<double>(cycles_));
  reg.gauge("engine.time_seconds").set(time_);
  reg.gauge("engine.events").set(static_cast<double>(events_));
  reg.gauge("engine.discarded_events").set(static_cast<double>(discarded_));
  reg.gauge("engine.ranks").set(static_cast<double>(decomp_.rankCount()));
  reg.gauge("engine.vacancies").set(static_cast<double>(vacancyCount()));
  const RecoveryStats rs = recoveryStats();
  reg.gauge("recovery.rollbacks").set(static_cast<double>(rs.rollbacks));
  reg.gauge("recovery.invariant_trips")
      .set(static_cast<double>(rs.invariantTrips));
  reg.gauge("recovery.comm_errors").set(static_cast<double>(rs.commErrors));
  reg.gauge("recovery.ghost_retries").set(static_cast<double>(rs.ghostRetries));
  reg.gauge("recovery.fold_retries").set(static_cast<double>(rs.foldRetries));
  reg.gauge("comm.bytes_sent").set(static_cast<double>(comm_.totalBytesSent()));
  reg.gauge("comm.messages_sent")
      .set(static_cast<double>(comm_.totalMessagesSent()));
  reg.gauge("comm.crc_failures").set(static_cast<double>(comm_.crcFailures()));
  reg.gauge("comm.duplicates_dropped")
      .set(static_cast<double>(comm_.duplicatesDropped()));
  reg.gauge("comm.retransmits")
      .set(static_cast<double>(rs.ghostRetries + rs.foldRetries));
}

void ParallelEngine::run(double tEnd) {
  while (time_ < tEnd) runCycle();
}

std::int64_t ParallelEngine::vacancyCount() const {
  std::int64_t total = 0;
  for (const Subdomain& sd : domains_)
    total += static_cast<std::int64_t>(sd.vacancies().size());
  return total;
}

LatticeState ParallelEngine::assembleGlobalState() const {
  LatticeState out(lattice_);
  for (int r = 0; r < decomp_.rankCount(); ++r) {
    const Subdomain& sd = domains_[static_cast<std::size_t>(r)];
    const Vec3i origin = decomp_.originCells(r);
    const Vec3i e = decomp_.extentCells();
    for (int cz = 0; cz < e.z; ++cz)
      for (int cy = 0; cy < e.y; ++cy)
        for (int cx = 0; cx < e.x; ++cx)
          for (int sub = 0; sub < 2; ++sub) {
            const Vec3i p{2 * (origin.x + cx) + sub, 2 * (origin.y + cy) + sub,
                          2 * (origin.z + cz) + sub};
            out.setSpeciesAt(lattice_.wrap(p), sd.at(p));
          }
  }
  return out;
}

bool ParallelEngine::ghostsConsistent() const {
  const LatticeState global = assembleGlobalState();
  for (int r = 0; r < decomp_.rankCount(); ++r) {
    const Subdomain& sd = domains_[static_cast<std::size_t>(r)];
    const Vec3i origin = decomp_.originCells(r);
    const Vec3i e = decomp_.extentCells();
    const int g = sd.ghostCells();
    for (int cz = -g; cz < e.z + g; ++cz)
      for (int cy = -g; cy < e.y + g; ++cy)
        for (int cx = -g; cx < e.x + g; ++cx)
          for (int sub = 0; sub < 2; ++sub) {
            const Vec3i p{2 * (origin.x + cx) + sub, 2 * (origin.y + cy) + sub,
                          2 * (origin.z + cz) + sub};
            if (sd.at(p) != global.speciesAt(lattice_.wrap(p))) return false;
          }
  }
  return true;
}

}  // namespace tkmc
