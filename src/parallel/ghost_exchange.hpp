#pragma once

#include <cstdint>
#include <vector>

#include "parallel/decomposition.hpp"
#include "parallel/sim_comm.hpp"
#include "parallel/subdomain.hpp"

namespace tkmc {

/// Staged ghost-region broadcast (paper Fig. 2a, grey regions).
///
/// Owned boundary slabs are exchanged one axis at a time (z, then y, then
/// x); each stage's slabs span the extended range of the axes already
/// completed, so corner and edge ghosts arrive without dedicated diagonal
/// messages. An axis decomposed across a single rank carries no ghost
/// shell (the subdomain spans its whole period) and its stage is
/// skipped, which makes flat rank grids such as 2x2x1 legal.
///
/// The driver is bulk-synchronous: sendGhostSlabs() for every rank, then
/// receiveGhostSlabs() for every rank, per axis. Ranks marked fail-stop
/// in the communicator are skipped on both sides.
///
/// A CRC or sequence failure detected by SimComm's framing triggers
/// per-slab retransmission (ARQ): the receiver purges the failed
/// channel and the sender re-packs and re-sends just that slab, up to
/// maxAttempts() times, before the CommError surfaces to the engine.
/// Re-packing mid-stage is safe because a stage's send boxes read only
/// owned cells along the stage axis while its receives write only ghost
/// cells along it — disjoint regions, so the retransmitted slab is
/// bit-identical to the original. retries() counts the absorbed
/// failures. With the communicator's heartbeat lease armed, a channel
/// that stays silent past the lease timeout raises RankFailure for the
/// silent sender instead of a retryable CommError.
class GhostExchange {
 public:
  GhostExchange(const Decomposition& decomp, SimComm& comm);

  /// Runs the full three-stage exchange across all subdomains (driver
  /// convenience; `domains[r]` belongs to rank r), retransmitting slabs
  /// whose frames fail message-integrity checks.
  void exchangeAll(std::vector<Subdomain>& domains);

  /// Bounds the delivery attempts per slab (>= 1).
  void setMaxAttempts(int attempts);
  int maxAttempts() const { return maxAttempts_; }

  /// Slab retransmissions after a detected integrity failure.
  std::uint64_t retries() const { return retries_; }

 private:
  // Axis: 0 = x, 1 = y, 2 = z (exchange order is 2, 1, 0).
  void sendSlabs(int rank, Subdomain& sd, int axis);
  void receiveSlabs(int rank, std::vector<Subdomain>& domains, int axis);

  // Cell box (extended-frame coordinates) of the slab sent toward
  // direction `dir` (+1/-1) along `axis`, given which axes are complete.
  struct Box {
    Vec3i lo;
    Vec3i hi;
  };
  Box sendBox(const Subdomain& sd, int axis, int dir) const;
  Box recvBox(const Subdomain& sd, int axis, int dir) const;

  const Decomposition& decomp_;
  SimComm& comm_;
  int maxAttempts_ = 4;
  std::uint64_t retries_ = 0;
};

}  // namespace tkmc
