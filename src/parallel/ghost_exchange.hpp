#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/decomposition.hpp"
#include "parallel/rank_team.hpp"
#include "parallel/sim_comm.hpp"
#include "parallel/subdomain.hpp"

namespace tkmc {

/// Staged ghost-region broadcast (paper Fig. 2a, grey regions).
///
/// Owned boundary slabs are exchanged one axis at a time (z, then y, then
/// x); each stage's slabs span the extended range of the axes already
/// completed, so corner and edge ghosts arrive without dedicated diagonal
/// messages. An axis decomposed across a single rank carries no ghost
/// shell (the subdomain spans its whole period) and its stage is
/// skipped, which makes flat rank grids such as 2x2x1 legal.
///
/// The driver is bulk-synchronous: sendSlabs() for every rank, then
/// receiveSlabs() for every rank, per axis. With a RankTeam supplied,
/// each half-stage fans out across the rank threads — every send slab
/// of an axis packs and posts concurrently, then every receive unpacks
/// concurrently. The barrier between the halves means receives only
/// ever write their *own* subdomain's ghost cells while no other thread
/// touches that storage, so the packed 2-bit species pages need no
/// per-site synchronization. Ranks marked fail-stop in the communicator
/// are skipped on both sides.
///
/// A CRC or sequence failure detected by SimComm's framing triggers
/// per-slab retransmission (ARQ): the receiver purges the failed
/// channel and re-sends, on the sender's behalf, the slab payload the
/// sender buffered at pack time — bit-identical to the original, and
/// free of cross-thread reads of the sender's live species store. Up to
/// maxAttempts() tries before the CommError surfaces to the engine.
/// retries() counts the absorbed failures. With the communicator's
/// heartbeat lease armed, a channel that stays silent past the lease
/// timeout raises RankFailure for the silent sender instead of a
/// retryable CommError.
class GhostExchange {
 public:
  GhostExchange(const Decomposition& decomp, SimComm& comm);

  /// Runs the full three-stage exchange across all subdomains (driver
  /// convenience; `domains[r]` belongs to rank r), retransmitting slabs
  /// whose frames fail message-integrity checks. With a team, each
  /// half-stage runs one job per rank thread.
  void exchangeAll(std::vector<Subdomain>& domains, RankTeam* team = nullptr);

  /// Bounds the delivery attempts per slab (>= 1).
  void setMaxAttempts(int attempts);
  int maxAttempts() const { return maxAttempts_; }

  /// Slab retransmissions after a detected integrity failure.
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  // Axis: 0 = x, 1 = y, 2 = z (exchange order is 2, 1, 0).
  void sendSlabs(int rank, Subdomain& sd, int axis);
  void receiveSlabs(int rank, std::vector<Subdomain>& domains, int axis);

  // Outbound slab payload buffered at pack time, indexed by
  // (rank, axis, direction); the ARQ resend source.
  std::vector<std::uint8_t>& slabBuffer(int rank, int axis, int dir);

  // Cell box (extended-frame coordinates) of the slab sent toward
  // direction `dir` (+1/-1) along `axis`, given which axes are complete.
  struct Box {
    Vec3i lo;
    Vec3i hi;
  };
  Box sendBox(const Subdomain& sd, int axis, int dir) const;
  Box recvBox(const Subdomain& sd, int axis, int dir) const;

  const Decomposition& decomp_;
  SimComm& comm_;
  int maxAttempts_ = 4;
  std::atomic<std::uint64_t> retries_{0};
  std::vector<std::vector<std::uint8_t>> slabBuffers_;  // rank x axis x dir
};

}  // namespace tkmc
