#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "kmc/energy_model.hpp"
#include "kmc/rate_calculator.hpp"
#include "parallel/decomposition.hpp"
#include "parallel/ghost_exchange.hpp"
#include "parallel/sim_comm.hpp"
#include "parallel/subdomain.hpp"
#include "tabulation/cet.hpp"

namespace tkmc {

/// Ghost-shell width (unit cells) needed so every vacancy system of the
/// given CET can be gathered from a subdomain's extended frame.
int requiredGhostCells(const Cet& cet);

/// Configuration of the parallel AKMC run.
struct ParallelConfig {
  double temperature = 573.0;
  double tStop = 2e-8;   // synchronization interval (paper Sec. 4.4)
  std::uint64_t seed = 99;
  Vec3i rankGrid{2, 2, 2};
};

/// Parallel AKMC with the Shim-Amar synchronous sublattice schedule
/// (paper Sec. 2.2, Fig. 2b) on the in-process message-passing runtime.
///
/// Each cycle: every rank evolves the vacancies of the active sector
/// (one of the eight octants of its subdomain, rotating per cycle) for a
/// window of t_stop; boundary modifications are folded back to their
/// owners; ghost shells are re-broadcast. Sector geometry guarantees that
/// concurrently active regions of different ranks are farther apart than
/// the interaction range, so no hops can conflict.
class ParallelEngine {
 public:
  /// `model` must support VET evaluation. `initial` provides the global
  /// box and starting occupation.
  ParallelEngine(const LatticeState& initial, EnergyModel& model,
                 const Cet& cet, ParallelConfig config);

  /// Executes one sector window plus synchronization.
  void runCycle();

  /// Runs whole cycles until the simulated time reaches tEnd.
  void run(double tEnd);

  double time() const { return time_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t totalEvents() const { return events_; }
  std::uint64_t discardedEvents() const { return discarded_; }
  int rankCount() const { return decomp_.rankCount(); }
  const SimComm& comm() const { return comm_; }
  const Subdomain& subdomain(int rank) const {
    return domains_[static_cast<std::size_t>(rank)];
  }

  /// Total owned vacancies across ranks (conservation checks).
  std::int64_t vacancyCount() const;

  /// Reassembles the full lattice from the owned regions.
  LatticeState assembleGlobalState() const;

  /// True when every ghost site matches its owner's value (test hook).
  bool ghostsConsistent() const;

 private:
  struct Change {
    Vec3i site;  // wrapped global coordinate
    Species species;
  };

  void runSector(int rank, int sector);
  void foldChanges();
  Vec3i localCell(int rank, Vec3i wrappedCoord) const;
  bool inSector(int rank, Vec3i wrappedCoord, int sector) const;

  BccLattice lattice_;
  const Cet& cet_;
  EnergyModel& model_;
  ParallelConfig config_;
  Decomposition decomp_;
  SimComm comm_;
  GhostExchange exchange_;
  std::vector<Subdomain> domains_;
  std::vector<Rng> rngs_;
  std::vector<std::vector<Change>> pendingChanges_;  // per rank, this cycle
  double time_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t discarded_ = 0;
  double interactionRadius_;  // angstrom, for stale-rate invalidation
};

}  // namespace tkmc
