#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "kmc/energy_model.hpp"
#include "kmc/rate_calculator.hpp"
#include "parallel/decomposition.hpp"
#include "parallel/ghost_exchange.hpp"
#include "parallel/sim_comm.hpp"
#include "parallel/subdomain.hpp"
#include "tabulation/cet.hpp"

namespace tkmc {

/// Ghost-shell width (unit cells) needed so every vacancy system of the
/// given CET can be gathered from a subdomain's extended frame.
int requiredGhostCells(const Cet& cet);

/// Configuration of the parallel AKMC run.
struct ParallelConfig {
  double temperature = 573.0;
  double tStop = 2e-8;   // synchronization interval (paper Sec. 4.4)
  std::uint64_t seed = 99;
  Vec3i rankGrid{2, 2, 2};

  // Fault tolerance. With recovery enabled the engine snapshots its
  // state (subdomains + RNG streams + clocks) at each sync boundary and,
  // when a cycle trips a comm-integrity failure or an invariant monitor,
  // rolls back and replays the cycle. Disarmed fault injection makes the
  // recovery path free of side effects: trajectories are bit-identical
  // with recovery on or off.
  bool enableRecovery = true;
  int maxReplays = 3;       // replays per cycle before the error surfaces
  int commMaxAttempts = 4;  // per-message delivery attempts (ghost + fold)
  int invariantCadence = 0; // full ghost-consistency sweep every N cycles
                            // (0 = off; vacancy conservation and
                            // propensity sanity are always monitored)
};

/// Counters of absorbed failures (engine stats).
struct RecoveryStats {
  std::uint64_t rollbacks = 0;       // cycles rolled back and replayed
  std::uint64_t invariantTrips = 0;  // invariant-monitor failures observed
  std::uint64_t commErrors = 0;      // comm failures that reached the engine
  std::uint64_t ghostRetries = 0;    // retransmissions inside GhostExchange
  std::uint64_t foldRetries = 0;     // retransmissions in the fold phase
};

/// Parallel AKMC with the Shim-Amar synchronous sublattice schedule
/// (paper Sec. 2.2, Fig. 2b) on the in-process message-passing runtime.
///
/// Each cycle: every rank evolves the vacancies of the active sector
/// (one of the eight octants of its subdomain, rotating per cycle) for a
/// window of t_stop; boundary modifications are folded back to their
/// owners; ghost shells are re-broadcast. Sector geometry guarantees that
/// concurrently active regions of different ranks are farther apart than
/// the interaction range, so no hops can conflict.
class ParallelEngine {
 public:
  /// `model` must support VET evaluation. `initial` provides the global
  /// box and starting occupation.
  ParallelEngine(const LatticeState& initial, EnergyModel& model,
                 const Cet& cet, ParallelConfig config);

  /// Executes one sector window plus synchronization. With recovery
  /// enabled, a cycle that trips an injected fault or an invariant
  /// monitor is rolled back to the last sync boundary and replayed (up
  /// to `maxReplays` times) before the typed error surfaces.
  void runCycle();

  /// Runs whole cycles until the simulated time reaches tEnd.
  void run(double tEnd);

  double time() const { return time_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t totalEvents() const { return events_; }
  std::uint64_t discardedEvents() const { return discarded_; }
  int rankCount() const { return decomp_.rankCount(); }
  const SimComm& comm() const { return comm_; }
  const Subdomain& subdomain(int rank) const {
    return domains_[static_cast<std::size_t>(rank)];
  }

  /// Total owned vacancies across ranks (conservation checks).
  std::int64_t vacancyCount() const;

  /// Reassembles the full lattice from the owned regions.
  LatticeState assembleGlobalState() const;

  /// True when every ghost site matches its owner's value (test hook).
  bool ghostsConsistent() const;

  /// Absorbed-failure counters (rollbacks, invariant trips, retries).
  RecoveryStats recoveryStats() const;

  /// Publishes engine progress, recovery counters, and comm statistics
  /// as gauges in the global telemetry registry. Called automatically at
  /// the end of every runCycle() while telemetry is enabled; exposed so
  /// drivers can force a final snapshot.
  void publishTelemetry() const;

 private:
  struct Change {
    Vec3i site;  // wrapped global coordinate
    Species species;
  };

  struct Snapshot {
    std::vector<Subdomain> domains;
    std::vector<std::array<std::uint64_t, 4>> rngStates;
    double time = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    std::uint64_t discarded = 0;
  };

  void executeCycle();
  void verifyInvariants();
  void takeSnapshot();
  void restoreSnapshot();
  void runSector(int rank, int sector);
  void foldChanges();
  Vec3i localCell(int rank, Vec3i wrappedCoord) const;
  bool inSector(int rank, Vec3i wrappedCoord, int sector) const;

  BccLattice lattice_;
  const Cet& cet_;
  EnergyModel& model_;
  ParallelConfig config_;
  Decomposition decomp_;
  SimComm comm_;
  GhostExchange exchange_;
  std::vector<Subdomain> domains_;
  std::vector<Rng> rngs_;
  std::vector<std::vector<Change>> pendingChanges_;  // per rank, this cycle
  double time_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t discarded_ = 0;
  double interactionRadius_;  // angstrom, for stale-rate invalidation
  std::int64_t expectedVacancies_ = 0;  // conservation monitor baseline
  Snapshot snapshot_;
  RecoveryStats recovery_;
};

}  // namespace tkmc
