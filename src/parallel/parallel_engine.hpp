#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kmc/energy_model.hpp"
#include "kmc/event_catalog/event_catalog.hpp"
#include "kmc/rate_calculator.hpp"
#include "parallel/coordinated_checkpoint.hpp"
#include "parallel/decomposition.hpp"
#include "parallel/remote_store.hpp"
#include "parallel/ghost_exchange.hpp"
#include "parallel/rank_team.hpp"
#include "parallel/sim_comm.hpp"
#include "parallel/subdomain.hpp"
#include "tabulation/cet.hpp"

namespace tkmc {

/// Ghost-shell width (unit cells) needed so every vacancy system of the
/// given CET can be gathered from a subdomain's extended frame.
int requiredGhostCells(const Cet& cet);

/// What each checkpoint epoch stores.
enum class CheckpointMode {
  kFull,   // every epoch is a self-contained full snapshot
  kDelta,  // epochs store only pages dirty since the previous epoch,
           // consolidating to a full epoch every maxDeltaChain links
};

/// Configuration of the parallel AKMC run.
struct ParallelConfig {
  double temperature = 573.0;
  double tStop = 2e-8;   // synchronization interval (paper Sec. 4.4)
  std::uint64_t seed = 99;
  Vec3i rankGrid{2, 2, 2};

  // Event catalog selection (deck key `event_catalog` + trap/detrap
  // parameters). The engine owns the catalog it builds from this spec;
  // the name is recorded in every checkpoint manifest and validated on
  // resume — a trajectory is only meaningful under the catalog that
  // produced it.
  EventCatalogSpec catalog;

  // Execution backend. false: ranks are driven sequentially in-process
  // (the historical runtime). true: one OS thread per rank (RankTeam)
  // executes the sector windows, fold serialize/send/receive/apply, and
  // per-axis ghost halves concurrently, with a barrier between phases.
  // The bulk-synchronous schedule, per-rank RNG streams, and
  // rank-ordered reductions make a fault-free threaded trajectory
  // bit-identical to the sequential one for the same deck + seed.
  bool threaded = false;

  // Fault tolerance. With recovery enabled the engine snapshots its
  // state (subdomains + RNG streams + clocks) at each sync boundary and,
  // when a cycle trips a comm-integrity failure or an invariant monitor,
  // rolls back and replays the cycle. Disarmed fault injection makes the
  // recovery path free of side effects: trajectories are bit-identical
  // with recovery on or off.
  bool enableRecovery = true;
  int maxReplays = 3;       // replays per cycle before the error surfaces
  int commMaxAttempts = 4;  // per-message delivery attempts (ghost + fold)
  int invariantCadence = 0; // full ghost-consistency sweep every N cycles
                            // (0 = off; vacancy conservation and
                            // propensity sanity are always monitored)

  // Rank fail-stop tolerance. A non-empty checkpointDir arms coordinated
  // sharded checkpointing: every checkpointCadence cycles each rank
  // stages its subdomain as a shard and the epoch is committed
  // atomically behind a commit-vote barrier. heartbeatTimeoutMs > 0 arms
  // the lease-based failure detector in SimComm: a rank that stays
  // silent past its lease is declared failed, a typed RankFailure
  // surfaces, and the engine shrink-recovers from the newest complete
  // epoch on a reduced rank grid. Both are off by default.
  std::string checkpointDir;
  int checkpointCadence = 1;       // cycles per epoch (with a dir set)
  double heartbeatIntervalMs = 5.0;
  double heartbeatTimeoutMs = 0.0; // 0 = fail-stop detection off

  // Incremental checkpointing. In kDelta mode an epoch stores, per rank,
  // only the occupation pages (SpeciesStore page geometry) that changed
  // since the previous committed epoch, plus the full RNG state and
  // vacancy order; the manifest records the base-epoch chain link. A
  // full consolidating epoch is written whenever a chain would exceed
  // maxDeltaChain links, after which superseded deltas are GC'd.
  CheckpointMode checkpointMode = CheckpointMode::kFull;
  int maxDeltaChain = 8;  // delta links per chain before consolidation

  // Elastic recovery. After a detected fail-stop the engine first tries
  // to re-admit replacement ranks from this spare pool: with enough
  // spares the checkpoint epoch's rank grid is kept (growRankGrid) and
  // capacity holds; otherwise the grid shrinks to fit survivors plus
  // whatever spares remain. The pool is consumed across recoveries.
  int spareRanks = 0;

  // Remote shard streaming (node-loss tolerance). A non-empty remoteDir
  // arms a ShardStreamer: every committed epoch is copied in the
  // background to a RemoteShardStore (a second directory tree today) and
  // recovery can pull an epoch whose local shards died with their node.
  // remoteRateMbps caps the copy bandwidth in MB/s (0 = unthrottled).
  // When the streamer falls more than remoteMaxLagEpochs epochs behind,
  // the commit path throttles (a bounded wait for the queue to drain)
  // instead of dropping epochs; a dead remote can still never wedge a
  // commit because each epoch gives up after remoteRetries put attempts
  // per object (capped exponential backoff + jitter between attempts).
  std::string remoteDir;
  double remoteRateMbps = 0.0;
  int remoteMaxLagEpochs = 8;
  int remoteRetries = 5;
};

/// Counters of absorbed failures (engine stats).
struct RecoveryStats {
  std::uint64_t rollbacks = 0;       // cycles rolled back and replayed
  std::uint64_t invariantTrips = 0;  // invariant-monitor failures observed
  std::uint64_t commErrors = 0;      // comm failures that reached the engine
  std::uint64_t ghostRetries = 0;    // retransmissions inside GhostExchange
  std::uint64_t foldRetries = 0;     // retransmissions in the fold phase
  std::uint64_t rankFailures = 0;    // fail-stops detected and survived
  std::uint64_t epochsRolledBack = 0; // cycles re-run due to shrink recovery
  std::uint64_t growRecoveries = 0;  // recoveries that re-admitted spare ranks
};

/// Deterministic master seed of the per-rank RNG streams after a resume
/// onto a rank grid different from the one that wrote the epoch. The
/// dead rank's stream state is unrecoverable and the survivor streams
/// cannot be remapped onto a different grid, so the streams are reseeded
/// from a pure function of (original seed, epoch, new grid): the
/// in-engine shrink recovery and a fresh engine resumed from the same
/// epoch onto the same grid derive identical streams, which keeps the
/// post-recovery trajectory bit-reproducible.
std::uint64_t recoverySeed(std::uint64_t seed, std::uint64_t epoch,
                           Vec3i rankGrid);

/// Parallel AKMC with the Shim-Amar synchronous sublattice schedule
/// (paper Sec. 2.2, Fig. 2b) on the in-process message-passing runtime.
///
/// Each cycle: every rank evolves the vacancies of the active sector
/// (one of the eight octants of its subdomain, rotating per cycle) for a
/// window of t_stop; boundary modifications are folded back to their
/// owners; ghost shells are re-broadcast. Sector geometry guarantees that
/// concurrently active regions of different ranks are farther apart than
/// the interaction range, so no hops can conflict.
///
/// Fail-stop tolerance (config.checkpointDir + heartbeatTimeoutMs): when
/// a RankFailure surfaces from a fold, ghost, or commit-barrier receive,
/// the survivors agree on the newest complete checkpoint epoch and first
/// try to *grow* back: with spare ranks available (config.spareRanks)
/// replacements are admitted and the epoch's rank grid is kept
/// (growRankGrid); otherwise the grid deterministically shrinks to fit
/// survivors plus remaining spares (shrinkRankGrid). Either way the
/// decomposition/comm/exchange fabric is rebuilt and the epoch's shards
/// are redistributed. On the epoch's own grid the shard RNG streams and
/// vacancy orders are restored exactly; on a different grid the streams
/// reseed via recoverySeed(). Both paths resume bit-identically to a
/// fresh engine resumed from the same epoch on the same grid.
class ParallelEngine {
 public:
  /// `model` must support VET evaluation. `initial` provides the global
  /// box and starting occupation.
  ParallelEngine(const LatticeState& initial, EnergyModel& model,
                 const Cet& cet, ParallelConfig config);

  /// Resumes from a committed checkpoint epoch. `config.rankGrid` equal
  /// to the manifest's grid restores the shard RNG streams and vacancy
  /// orders (bit-exact continuation of the original run); a different
  /// grid reseeds via recoverySeed() — the same state an in-engine
  /// shrink recovery of that epoch produces. `config.tStop` must match
  /// the manifest (trajectories are tStop-dependent); the manifest's
  /// seed overrides `config.seed`.
  ParallelEngine(EnergyModel& model, const Cet& cet, ParallelConfig config,
                 const CheckpointStore& store, std::uint64_t epoch);

  /// Drains the remote shard streamer (bounded — streamed epochs that
  /// keep failing give up), so a clean shutdown leaves the remote
  /// mirror complete.
  ~ParallelEngine();

  /// Executes one sector window plus synchronization. With recovery
  /// enabled, a cycle that trips an injected fault or an invariant
  /// monitor is rolled back to the last sync boundary and replayed (up
  /// to `maxReplays` times) before the typed error surfaces; a detected
  /// rank fail-stop triggers shrink recovery instead (RankFailure
  /// surfaces only when no complete epoch exists or checkpointing is
  /// off).
  void runCycle();

  /// Runs whole cycles until the simulated time reaches tEnd.
  void run(double tEnd);

  double time() const { return time_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t totalEvents() const { return events_; }
  std::uint64_t discardedEvents() const { return discarded_; }
  const EventCatalog& catalog() const { return *catalog_; }
  /// Committed events per catalog event type (index = type id), summed
  /// across ranks in rank order at each sync boundary.
  const std::vector<std::uint64_t>& eventsByType() const {
    return eventsByType_;
  }
  int rankCount() const { return fabric_->decomp.rankCount(); }
  Vec3i rankGrid() const { return fabric_->decomp.rankGrid(); }
  const SimComm& comm() const { return fabric_->comm; }
  /// Mutable comm access (fault drills: killRank, lease tuning).
  SimComm& mutableComm() { return fabric_->comm; }
  const Subdomain& subdomain(int rank) const {
    return domains_[static_cast<std::size_t>(rank)];
  }

  /// Total owned vacancies across ranks (conservation checks).
  std::int64_t vacancyCount() const;

  /// Reassembles the full lattice from the owned regions.
  LatticeState assembleGlobalState() const;

  /// True when every ghost site matches its owner's value (test hook).
  bool ghostsConsistent() const;

  /// Absorbed-failure counters (rollbacks, invariant trips, retries).
  RecoveryStats recoveryStats() const;

  /// The checkpoint store, or nullptr when checkpointing is off.
  const CheckpointStore* checkpointStore() const { return store_.get(); }

  /// The remote shard streamer, or nullptr when remoteDir is empty.
  const ShardStreamer* shardStreamer() const { return streamer_.get(); }

  /// Epoch the last shrink recovery resumed from (0 before any).
  std::uint64_t lastRecoveryEpoch() const { return lastRecoveryEpoch_; }

  /// Replacement ranks still available for grow recovery.
  int spareRanksRemaining() const { return sparePool_; }

  /// Publishes engine progress, recovery counters, and comm statistics
  /// as gauges in the global telemetry registry. Called automatically at
  /// the end of every runCycle() while telemetry is enabled; exposed so
  /// drivers can force a final snapshot.
  void publishTelemetry() const;

 private:
  struct Change {
    Vec3i site;  // wrapped global coordinate
    Species species;
  };

  /// What the last committed epoch looked like, for delta diffing. Must
  /// roll back with the cycle snapshot: a replayed cycle recommits its
  /// epoch, and the diff has to run against the epoch *before* it — a
  /// baseline of the epoch itself would emit an empty self-delta.
  struct DeltaBaseline {
    bool valid = false;          // false => next epoch is a full snapshot
    std::uint64_t epoch = 0;
    std::uint32_t manifestCrc = 0;  // chain pin for the next delta child
    int chainDepth = 0;          // delta links since the last full epoch
    Vec3i rankGrid{};
    std::vector<std::vector<std::uint32_t>> pageHashes;  // per rank
  };

  struct Snapshot {
    std::vector<Subdomain> domains;
    std::vector<std::array<std::uint64_t, 4>> rngStates;
    double time = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    std::uint64_t discarded = 0;
    std::vector<std::uint64_t> eventsByType;
    DeltaBaseline baseline;
  };

  /// The rebuildable communication fabric. Shrink recovery replaces the
  /// whole bundle at once: GhostExchange holds references into its
  /// sibling members, so the three live and die together.
  struct Fabric {
    Decomposition decomp;
    SimComm comm;
    GhostExchange exchange;
    Fabric(Vec3i globalCells, Vec3i rankGrid)
        : decomp(globalCells, rankGrid), comm(decomp.rankCount()),
          exchange(decomp, comm) {}
  };

  /// Builds fabric + empty domains for config_.rankGrid, validates
  /// sector geometry, arms the lease, and loads `initial` into every
  /// rank's subdomain (deterministic vacancy scan order).
  void buildFabric(const LatticeState& initial);
  void executeCycle();
  void verifyInvariants();
  void takeSnapshot();
  void restoreSnapshot();
  void runSector(int rank, int sector);
  void foldChanges();
  /// Stages every rank's shard, runs the commit-vote barrier, and
  /// atomically publishes epoch `cycles_`. `barrier` is false only for
  /// the construction-time epoch (single-threaded, nothing in flight).
  void writeEpoch(bool barrier);
  /// Arms the remote store + streamer when both checkpointDir and
  /// remoteDir are configured; called from both constructors.
  void setupRemote();
  /// Post-commit hook: queues the epoch for streaming, publishes the
  /// remote-lag gauge, and throttles (bounded) past the lag cap.
  void afterCommit(std::uint64_t epoch);
  ShardRecord makeShard(int rank) const;
  void commitVoteBarrier(std::uint64_t epoch);
  /// Lease-aware ARQ receive shared by fold and commit-barrier traffic.
  /// The retry counter is atomic because fold receives of different
  /// ranks run concurrently in the threaded backend.
  std::vector<std::uint8_t> receiveReliable(
      int rank, int from, int tag, const std::vector<std::uint8_t>& resend,
      std::atomic<std::uint64_t>& retryCounter, const char* what);
  void recoverFromRankFailure(const RankFailure& failure);
  Vec3i localCell(int rank, Vec3i wrappedCoord) const;
  bool inSector(int rank, Vec3i wrappedCoord, int sector) const;

  BccLattice lattice_;
  const Cet& cet_;
  EnergyModel& model_;
  ParallelConfig config_;
  std::unique_ptr<EventCatalog> catalog_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<CheckpointStore> store_;
  std::shared_ptr<RemoteShardStore> remote_;
  std::unique_ptr<ShardStreamer> streamer_;
  std::vector<Subdomain> domains_;
  std::vector<Rng> rngs_;
  std::vector<std::vector<Change>> pendingChanges_;  // per rank, this cycle
  // Rank threads (threaded backend only; null in sequential mode).
  // Rebuilt with the fabric: the team size tracks the live rank count.
  std::unique_ptr<RankTeam> team_;
  // Serializes propensity batches through backends whose evaluation is
  // not safe to call from several rank threads at once.
  std::mutex modelMutex_;
  // Per-rank per-cycle counters, summed into events_/discarded_ in rank
  // order at the sync boundary — identical totals to the historical
  // shared increments, but free of cross-thread races.
  std::vector<std::uint64_t> cycleEvents_;
  std::vector<std::uint64_t> cycleDiscarded_;
  std::vector<std::vector<std::uint64_t>> cycleEventsByType_;  // [rank][type]
  std::vector<std::uint64_t> eventsByType_;  // lifetime, rank-order summed
  std::vector<std::string> eventTypeMetricNames_;  // engine.events.by_type.*
  // Per-rank lifetime event ordinal for blackbox kKmcEvent records (a
  // global ordinal would depend on thread interleaving).
  std::vector<std::uint64_t> rankEventOrdinals_;
  std::atomic<std::uint64_t> foldRetries_{0};
  double time_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t discarded_ = 0;
  double interactionRadius_;  // angstrom, for stale-rate invalidation
  std::int64_t expectedVacancies_ = 0;  // conservation monitor baseline
  std::uint64_t lastRecoveryEpoch_ = 0;
  int sparePool_ = 0;  // replacement ranks not yet consumed by recoveries
  DeltaBaseline baseline_;
  Snapshot snapshot_;
  RecoveryStats recovery_;
};

}  // namespace tkmc
