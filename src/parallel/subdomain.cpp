#include "parallel/subdomain.hpp"

#include "common/error.hpp"

namespace tkmc {
namespace {

// Shifts v by multiples of `period` into [lo, lo + span); returns false
// when impossible.
bool shiftInto(int v, int lo, int span, int period, int& out) {
  int shifted = v;
  while (shifted < lo) shifted += period;
  while (shifted >= lo + span) shifted -= period;
  if (shifted < lo) return false;
  out = shifted;
  return true;
}

}  // namespace

Subdomain::Subdomain(const BccLattice& global, Vec3i originCells,
                     Vec3i extentCells, int ghostCells)
    : Subdomain(global, originCells, extentCells,
                Vec3i{ghostCells, ghostCells, ghostCells}) {}

Subdomain::Subdomain(const BccLattice& global, Vec3i originCells,
                     Vec3i extentCells, Vec3i ghostCells)
    : global_(global), indexer_(originCells, extentCells, ghostCells) {
  extOriginDoubled_ = {2 * (originCells.x - ghostCells.x),
                       2 * (originCells.y - ghostCells.y),
                       2 * (originCells.z - ghostCells.z)};
  extSpanDoubled_ = {2 * (extentCells.x + 2 * ghostCells.x),
                     2 * (extentCells.y + 2 * ghostCells.y),
                     2 * (extentCells.z + 2 * ghostCells.z)};
  require(extSpanDoubled_.x <= 2 * global.cellsX() &&
              extSpanDoubled_.y <= 2 * global.cellsY() &&
              extSpanDoubled_.z <= 2 * global.cellsZ(),
          "extended subdomain must fit the global box (shrink the ghost "
          "shell or enlarge the box)");
  species_.assign(static_cast<std::size_t>(indexer_.extendedSiteCount()),
                  Species::kFe);
}

std::pair<Vec3i, bool> Subdomain::toFrame(Vec3i p) const {
  Vec3i f;
  if (!shiftInto(p.x, extOriginDoubled_.x, extSpanDoubled_.x,
                 2 * global_.cellsX(), f.x))
    return {f, false};
  if (!shiftInto(p.y, extOriginDoubled_.y, extSpanDoubled_.y,
                 2 * global_.cellsY(), f.y))
    return {f, false};
  if (!shiftInto(p.z, extOriginDoubled_.z, extSpanDoubled_.z,
                 2 * global_.cellsZ(), f.z))
    return {f, false};
  return {f, true};
}

bool Subdomain::covers(Vec3i p) const { return toFrame(p).second; }

bool Subdomain::owns(Vec3i p) const {
  const auto [f, ok] = toFrame(p);
  return ok && indexer_.isLocal(f);
}

Species Subdomain::at(Vec3i p) const {
  const auto [f, ok] = toFrame(p);
  require(ok, "coordinate outside this subdomain's extended frame");
  return species_[static_cast<std::size_t>(indexer_.indexOf(f))];
}

void Subdomain::set(Vec3i p, Species s) {
  const auto [f, ok] = toFrame(p);
  require(ok, "coordinate outside this subdomain's extended frame");
  species_[static_cast<std::size_t>(indexer_.indexOf(f))] = s;
}

Vec3i Subdomain::frameSite(Vec3i cell, int sub) const {
  return {extOriginDoubled_.x + 2 * cell.x + sub,
          extOriginDoubled_.y + 2 * cell.y + sub,
          extOriginDoubled_.z + 2 * cell.z + sub};
}

void Subdomain::loadFrom(const LatticeState& state) {
  const Vec3i g = ghostCellsVec();
  const Vec3i extCells{extentCells().x + 2 * g.x, extentCells().y + 2 * g.y,
                       extentCells().z + 2 * g.z};
  for (int cz = 0; cz < extCells.z; ++cz)
    for (int cy = 0; cy < extCells.y; ++cy)
      for (int cx = 0; cx < extCells.x; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i f = frameSite({cx, cy, cz}, sub);
          species_[static_cast<std::size_t>(indexer_.indexOf(f))] =
              state.speciesAt(f);
        }
  rescanVacancies();
}

void Subdomain::rescanVacancies() {
  vacancies_.clear();
  const Vec3i e = extentCells();
  const Vec3i g = ghostCellsVec();
  for (int cz = 0; cz < e.z; ++cz)
    for (int cy = 0; cy < e.y; ++cy)
      for (int cx = 0; cx < e.x; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i f = frameSite({cx + g.x, cy + g.y, cz + g.z}, sub);
          if (species_[static_cast<std::size_t>(indexer_.indexOf(f))] ==
              Species::kVacancy)
            vacancies_.push_back(global_.wrap(f));
        }
}

std::vector<std::uint8_t> Subdomain::packCellBox(Vec3i lo, Vec3i hi) const {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(hi.x - lo.x) * (hi.y - lo.y) *
              (hi.z - lo.z) * 2);
  for (int cz = lo.z; cz < hi.z; ++cz)
    for (int cy = lo.y; cy < hi.y; ++cy)
      for (int cx = lo.x; cx < hi.x; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i f = frameSite({cx, cy, cz}, sub);
          out.push_back(static_cast<std::uint8_t>(
              species_[static_cast<std::size_t>(indexer_.indexOf(f))]));
        }
  return out;
}

void Subdomain::unpackCellBox(Vec3i lo, Vec3i hi,
                              const std::vector<std::uint8_t>& data) {
  const std::size_t expected = static_cast<std::size_t>(hi.x - lo.x) *
                               (hi.y - lo.y) * (hi.z - lo.z) * 2;
  require(data.size() == expected, "ghost payload has wrong size");
  std::size_t i = 0;
  for (int cz = lo.z; cz < hi.z; ++cz)
    for (int cy = lo.y; cy < hi.y; ++cy)
      for (int cx = lo.x; cx < hi.x; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i f = frameSite({cx, cy, cz}, sub);
          species_[static_cast<std::size_t>(indexer_.indexOf(f))] =
              static_cast<Species>(data[i++]);
        }
}

}  // namespace tkmc
