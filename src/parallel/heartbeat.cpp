#include "parallel/heartbeat.hpp"

#include "common/error.hpp"

namespace tkmc {

HeartbeatMonitor::HeartbeatMonitor(int ranks, double timeoutMs)
    : lastBeatMs_(static_cast<std::size_t>(ranks), 0.0), timeoutMs_(timeoutMs) {
  require(ranks > 0, "heartbeat monitor needs at least one rank");
}

void HeartbeatMonitor::beat(int rank, double nowMs) {
  require(rank >= 0 && rank < static_cast<int>(lastBeatMs_.size()),
          "heartbeat rank out of range");
  lastBeatMs_[static_cast<std::size_t>(rank)] = nowMs;
}

double HeartbeatMonitor::lastBeatMs(int rank) const {
  require(rank >= 0 && rank < static_cast<int>(lastBeatMs_.size()),
          "heartbeat rank out of range");
  return lastBeatMs_[static_cast<std::size_t>(rank)];
}

double HeartbeatMonitor::ageMs(int rank, double nowMs) const {
  return nowMs - lastBeatMs(rank);
}

bool HeartbeatMonitor::expired(int rank, double nowMs) const {
  return ageMs(rank, nowMs) > timeoutMs_;
}

}  // namespace tkmc
