#include "parallel/remote_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/telemetry/telemetry.hpp"

namespace tkmc {

namespace fs = std::filesystem;

namespace {

std::string readFileOrThrow(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("remote store: cannot open " + path);
  std::ostringstream body;
  body << in.rdbuf();
  if (!in.good() && !in.eof())
    throw IoError("remote store: read failed for " + path);
  return body.str();
}

std::string crcHex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

// The same footer convention as shards/manifests: "\ncrc32 <hex>\n"
// sealing everything before it (including that newline).
std::string sealWithCrc(std::string body) {
  body.push_back('\n');
  const std::uint32_t crc = crc32(body.data(), body.size());
  body += "crc32 " + crcHex(crc) + "\n";
  return body;
}

void countRemote(const char* name, std::uint64_t n = 1) {
  if (telemetry::enabled()) telemetry::metrics().counter(name).add(n);
}

}  // namespace

DirRemoteStore::DirRemoteStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec)
    throw IoError("remote store: cannot create " + root_ + ": " + ec.message());
}

void DirRemoteStore::put(const std::string& epochDir, const std::string& file,
                         const std::string& contents) {
  if (faultFires("remote.slow"))
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  if (faultFires("remote.put_fail"))
    throw IoError("remote store: injected put failure for " + epochDir + "/" +
                  file);
  std::string body = contents;
  if (faultFires("remote.torn_copy")) body.resize(body.size() / 2);

  const fs::path dir = fs::path(root_) / epochDir;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    throw IoError("remote store: cannot create " + dir.string() + ": " +
                  ec.message());
  // Own temp+rename (no .bak rotation): re-streaming an epoch after a
  // rollback/replay overwrites the object in place, keeping the remote
  // tree a verbatim mirror of the local epoch directory.
  const fs::path target = dir / file;
  const fs::path tmp = dir / (file + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("remote store: cannot write " + tmp.string());
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out.good()) {
      fs::remove(tmp, ec);
      throw IoError("remote store: write failed for " + tmp.string());
    }
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw IoError("remote store: rename failed for " + target.string());
  }
}

std::string DirRemoteStore::get(const std::string& epochDir,
                                const std::string& file) const {
  if (faultFires("remote.get_fail"))
    throw IoError("remote store: injected get failure for " + epochDir + "/" +
                  file);
  return readFileOrThrow((fs::path(root_) / epochDir / file).string());
}

std::vector<std::string> DirRemoteStore::listEpochs() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(root_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_directory()) continue;
    const std::string name = it->path().filename().string();
    if (name.rfind("epoch_", 0) == 0) out.push_back(name);
  }
  return out;
}

std::vector<std::string> DirRemoteStore::listFiles(
    const std::string& epochDir) const {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(fs::path(root_) / epochDir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file()) out.push_back(it->path().filename().string());
  }
  return out;
}

std::optional<RemoteShardStore::Stat> DirRemoteStore::stat(
    const std::string& epochDir, const std::string& file) const {
  std::error_code ec;
  const auto bytes = fs::file_size(fs::path(root_) / epochDir / file, ec);
  if (ec) return std::nullopt;
  return Stat{static_cast<std::uint64_t>(bytes)};
}

std::string encodePlacement(const PlacementMap& map) {
  std::ostringstream body;
  body << "tensorkmc-placement 3\n";
  body << "epoch " << map.epoch << "\n";
  body << "files " << map.rows.size() << "\n";
  for (const PlacementMap::Row& row : map.rows)
    body << row.file << " " << crcHex(row.crc) << " " << row.bytes << " "
         << row.location << "\n";
  std::string sealed = body.str();
  // sealWithCrc appends its own trailing newline before the footer.
  sealed.pop_back();
  return sealWithCrc(std::move(sealed));
}

PlacementMap parsePlacement(const std::string& contents,
                            const std::string& what) {
  const std::string::size_type footer = contents.rfind("\ncrc32 ");
  if (footer == std::string::npos)
    throw IoError("placement map " + what + ": missing crc32 footer");
  const std::string::size_type bodyLen = footer + 1;  // include the newline
  const std::uint32_t actual = crc32(contents.data(), bodyLen);
  const std::string recorded =
      contents.substr(footer + 7, contents.find('\n', footer + 7) - footer - 7);
  if (recorded != crcHex(actual))
    throw IoError("placement map " + what + ": crc mismatch (stored " +
                  recorded + ", computed " + crcHex(actual) + ")");

  std::istringstream in(contents.substr(0, bodyLen));
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "tensorkmc-placement" || version != 3)
    throw IoError("placement map " + what + ": bad header '" + magic + " " +
                  std::to_string(version) + "'");
  std::string keyword;
  PlacementMap map;
  std::size_t files = 0;
  in >> keyword >> map.epoch;
  if (keyword != "epoch")
    throw IoError("placement map " + what + ": expected 'epoch'");
  in >> keyword >> files;
  if (keyword != "files")
    throw IoError("placement map " + what + ": expected 'files'");
  for (std::size_t i = 0; i < files; ++i) {
    PlacementMap::Row row;
    std::string crcField;
    in >> row.file >> crcField >> row.bytes >> row.location;
    if (!in || row.file.empty() ||
        row.file.find('/') != std::string::npos ||
        row.file.find("..") != std::string::npos)
      throw IoError("placement map " + what + ": bad row " +
                    std::to_string(i));
    row.crc = static_cast<std::uint32_t>(std::stoul(crcField, nullptr, 16));
    map.rows.push_back(std::move(row));
  }
  return map;
}

ShardStreamer::ShardStreamer(std::string localDir,
                             std::shared_ptr<RemoteShardStore> remote,
                             Config config)
    : localDir_(std::move(localDir)),
      remote_(std::move(remote)),
      config_(config) {
  worker_ = std::thread([this] { threadMain(); });
}

ShardStreamer::~ShardStreamer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ShardStreamer::enqueue(std::uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(epoch);
  }
  cv_.notify_all();
}

int ShardStreamer::lagEpochs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size()) + (inFlight_ ? 1 : 0);
}

int ShardStreamer::waitForLag(int maxLag, double timeoutMs) const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, std::chrono::duration<double, std::milli>(timeoutMs),
               [&] {
                 return stop_ || static_cast<int>(queue_.size()) +
                                         (inFlight_ ? 1 : 0) <=
                                     maxLag;
               });
  return static_cast<int>(queue_.size()) + (inFlight_ ? 1 : 0);
}

bool ShardStreamer::drain(double timeoutMs) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock,
                      std::chrono::duration<double, std::milli>(timeoutMs),
                      [&] { return queue_.empty() && !inFlight_; });
}

std::uint64_t ShardStreamer::epochsStreamed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streamed_;
}

std::uint64_t ShardStreamer::retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retries_;
}

std::uint64_t ShardStreamer::gaveUp() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gaveUp_;
}

void ShardStreamer::threadMain() {
  for (;;) {
    std::uint64_t epoch = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      epoch = queue_.front();
      queue_.pop_front();
      inFlight_ = true;
    }
    const bool ok = streamEpoch(epoch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inFlight_ = false;
      if (ok)
        ++streamed_;
      else
        ++gaveUp_;
    }
    cv_.notify_all();
    if (telemetry::enabled())
      telemetry::metrics().gauge("checkpoint.remote_lag_epochs").set(
          static_cast<double>(lagEpochs()));
  }
}

bool ShardStreamer::streamEpoch(std::uint64_t epoch) {
  const std::string epochDir = "epoch_" + std::to_string(epoch);
  const fs::path local = fs::path(localDir_) / epochDir;

  // Snapshot the local epoch's files (shards first, manifest next; the
  // placement map goes last as the remote commit marker). An epoch GC'd
  // before we got to it (superseded deltas) just streams nothing.
  std::vector<std::string> shards;
  bool haveManifest = false;
  std::error_code ec;
  for (fs::directory_iterator it(local, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string name = it->path().filename().string();
    if (name == "manifest.tkm")
      haveManifest = true;
    else if (name.rfind("rank_", 0) == 0)
      shards.push_back(name);
  }
  if (ec || !haveManifest) return true;  // nothing committed here any more
  std::sort(shards.begin(), shards.end());

  std::vector<std::string> order = std::move(shards);
  order.push_back("manifest.tkm");

  PlacementMap map;
  map.epoch = epoch;
  // Salt the jitter stream per streamed epoch so retry delays do not
  // repeat in lockstep across epochs, while staying deterministic for a
  // given (seed, stream order).
  const std::uint64_t salt = ++jitterEpochSalt_;

  // Bounded-retry put: capped exponential backoff with jitter between
  // attempts; false once the attempt budget is gone (epoch abandoned —
  // the local store is untouched either way).
  const auto putWithRetry = [&](const std::string& file,
                                const std::string& contents,
                                std::uint64_t scheduleSalt) {
    RetrySchedule schedule(config_.retry, config_.jitterSeed ^ scheduleSalt);
    for (;;) {
      try {
        remote_->put(epochDir, file, contents);
        return true;
      } catch (const IoError&) {
        const double delayMs = schedule.recordFailure();
        if (schedule.exhausted()) {
          countRemote("remote.gave_up");
          return false;
        }
        countRemote("remote.retries");
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++retries_;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delayMs));
      }
    }
  };

  for (std::size_t i = 0; i < order.size(); ++i) {
    std::string contents;
    try {
      contents = readFileOrThrow((local / order[i]).string());
    } catch (const IoError&) {
      return true;  // epoch vanished mid-copy (GC); drop it quietly
    }
    if (!putWithRetry(order[i], contents, salt * 1000003ULL + i)) return false;
    map.rows.push_back({order[i],
                        crc32(contents.data(), contents.size()),
                        static_cast<std::uint64_t>(contents.size()),
                        remote_->describe() + "/" + epochDir});
    if (config_.rateMbps > 0.0) {
      const double seconds =
          static_cast<double>(contents.size()) / (config_.rateMbps * 1.0e6);
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
    countRemote("remote.bytes_streamed", contents.size());
  }

  if (!putWithRetry(kPlacementFile, encodePlacement(map),
                    salt * 1000003ULL + 999))
    return false;
  countRemote("remote.epochs_streamed");
  return true;
}

}  // namespace tkmc
