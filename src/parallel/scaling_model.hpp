#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tkmc {

/// Analytic performance model for the Fig. 12 / Fig. 13 scalability
/// studies.
///
/// The compute term is calibrated from a *measured* single-CG kernel cost
/// (seconds per propensity refresh, i.e. one 9-state vacancy-system
/// evaluation through the big-fusion pipeline); the communication term
/// models the synchronous sublattice schedule: per cycle, one staged
/// 6-neighbour ghost exchange plus a global time synchronization.
/// Machine-independent shape (who wins, where efficiency falls off)
/// follows from the ratios, not the absolute constants.
struct ScalingParams {
  double secondsPerRefresh = 2e-4;   // measured; one vacancy propensity calc
  double refreshesPerEvent = 3.0;    // hop dirties ~this many systems
  double hopRatePerVacancy = 1.0e8;  // 1/s at 573 K, Fe-dominated barrier
  double vacancyConcentration = 8e-6;
  double tStop = 2e-8;               // synchronization interval, seconds
  double linkLatency = 3.0e-6;       // per neighbour message, seconds
  double linkBandwidth = 20.0e9;     // bytes/s
  double allreduceStageLatency = 2.5e-6;  // per log2(P) stage
  double ghostBytesPerAtomSurface = 1.0;  // species byte per ghost site
  int ghostCells = 5;
  /// Sector-barrier load-imbalance amplitude: every cycle ends on a
  /// global synchronization, so the wall time follows the *slowest*
  /// rank. With few KMC events per sector window the Poisson spread of
  /// per-rank work grows relatively like 1/sqrt(events), which is what
  /// erodes strong-scaling efficiency once subdomains get small.
  double imbalanceCoefficient = 0.7;
};

struct ScalingPoint {
  std::int64_t coreGroups = 0;
  std::int64_t cores = 0;            // CGs x 65
  double atomsPerCg = 0.0;
  double computeSeconds = 0.0;       // per full run
  double commSeconds = 0.0;
  double totalSeconds = 0.0;
  double efficiency = 1.0;           // vs the sweep's first entry
  double speedup = 1.0;
};

class ScalingModel {
 public:
  explicit ScalingModel(ScalingParams params = {}) : params_(params) {}

  const ScalingParams& params() const { return params_; }

  /// Wall seconds for one rank to simulate `simSeconds` of physical time
  /// with `atomsPerCg` atoms per core group and `coreGroups` ranks.
  double runSeconds(double atomsPerCg, std::int64_t coreGroups,
                    double simSeconds) const;

  double computeSeconds(double atomsPerCg, double simSeconds) const;
  double commSeconds(double atomsPerCg, std::int64_t coreGroups,
                     double simSeconds) const;

  /// Strong-scaling sweep: fixed total atoms over increasing CG counts.
  std::vector<ScalingPoint> strongScaling(double totalAtoms,
                                          const std::vector<std::int64_t>& cgs,
                                          double simSeconds) const;

  /// Weak-scaling sweep: fixed atoms per CG.
  std::vector<ScalingPoint> weakScaling(double atomsPerCg,
                                        const std::vector<std::int64_t>& cgs,
                                        double simSeconds) const;

 private:
  ScalingParams params_;
};

}  // namespace tkmc
