#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tkmc {

/// Persistent pool of one OS thread per simulated rank.
///
/// The threaded execution backend keeps the engine's bulk-synchronous
/// structure: the driver thread decomposes each cycle into phases
/// (sector windows, fold serialize/send/receive/apply, per-axis ghost
/// send/receive) and dispatches each phase to every rank's thread via
/// run(). run() is a barrier — it returns only after every rank thread
/// has finished the phase — so a phase never observes another phase's
/// writes mid-flight, and the cross-phase data handoffs (outbound fold
/// buffers, packed ghost slabs) are ordered by the pool's internal
/// mutex without any per-payload synchronization.
///
/// Exceptions: a phase body that throws on rank r is captured; after
/// the barrier, run() rethrows the *lowest-failing-rank* exception.
/// The choice is deterministic (independent of thread scheduling), and
/// it is safe to discard the other ranks' errors because every engine
/// error path (CommError, InvariantError, RankFailure) rolls the whole
/// cycle back to the last sync boundary anyway.
///
/// Threads are created once and parked between phases (condvar), so a
/// cycle costs wakeups, not thread spawns. Destruction joins everyone.
class RankTeam {
 public:
  explicit RankTeam(int ranks);
  ~RankTeam();

  RankTeam(const RankTeam&) = delete;
  RankTeam& operator=(const RankTeam&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Runs job(rank) on every rank's thread and waits for all of them
  /// (barrier). Rethrows the lowest rank's exception, if any.
  void run(const std::function<void(int)>& job);

 private:
  void workerLoop(int rank);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
};

}  // namespace tkmc
