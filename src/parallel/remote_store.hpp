#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.hpp"

namespace tkmc {

/// Narrow object-store-shaped interface for a secondary copy of
/// committed checkpoint epochs. Objects are addressed by an epoch
/// directory name ("epoch_<N>") plus a file name within it — exactly
/// the layout CheckpointStore commits locally, so a remote epoch is a
/// verbatim mirror. Today the only implementation is a separate
/// directory tree (DirRemoteStore); an object store (S3-style
/// put/get/list/stat) can implement the same five calls later.
///
/// put/get throw IoError on failure; list degrades to empty.
class RemoteShardStore {
 public:
  struct Stat {
    std::uint64_t bytes = 0;
  };

  virtual ~RemoteShardStore() = default;

  /// Stores `contents` at <epochDir>/<file>, overwriting atomically.
  virtual void put(const std::string& epochDir, const std::string& file,
                   const std::string& contents) = 0;

  /// Fetches <epochDir>/<file>; throws IoError when absent or unreadable.
  virtual std::string get(const std::string& epochDir,
                          const std::string& file) const = 0;

  /// Epoch directory names present remotely (complete or in flight).
  virtual std::vector<std::string> listEpochs() const = 0;

  /// File names within one remote epoch directory.
  virtual std::vector<std::string> listFiles(
      const std::string& epochDir) const = 0;

  /// Size of a remote object, or nullopt when absent.
  virtual std::optional<Stat> stat(const std::string& epochDir,
                                   const std::string& file) const = 0;

  /// Human-readable location for log lines and placement rows.
  virtual std::string describe() const = 0;
};

/// Directory-tree remote store: <root>/epoch_<N>/<file>. Probes the
/// remote.* fault points so chaos runs can exercise the streamer's
/// retry/give-up paths and recovery's torn-copy fallback:
///   remote.put_fail  — put throws IoError (after possibly staging)
///   remote.torn_copy — put silently writes only half the bytes
///   remote.slow      — put stalls ~10 ms (drives remote lag)
///   remote.get_fail  — get throws IoError
class DirRemoteStore : public RemoteShardStore {
 public:
  explicit DirRemoteStore(std::string root);

  void put(const std::string& epochDir, const std::string& file,
           const std::string& contents) override;
  std::string get(const std::string& epochDir,
                  const std::string& file) const override;
  std::vector<std::string> listEpochs() const override;
  std::vector<std::string> listFiles(const std::string& epochDir) const override;
  std::optional<Stat> stat(const std::string& epochDir,
                           const std::string& file) const override;
  std::string describe() const override { return root_; }

 private:
  std::string root_;
};

/// Name of the per-epoch placement map object (manifest v3 sidecar).
/// Written LAST by the streamer, so its presence is the remote commit
/// point: an epoch directory without a valid placement map is half
/// streamed and recovery must fall back to an older epoch.
inline constexpr const char* kPlacementFile = "placement.tkp";

/// Placement map: which files make up a remote epoch, each pinned by
/// full-contents CRC32 + byte count, plus where the copy lives. The
/// serialized form carries the same "\ncrc32 <hex>\n" footer as shards
/// and manifests, so a torn placement map is itself detectable.
struct PlacementMap {
  struct Row {
    std::string file;
    std::uint32_t crc = 0;
    std::uint64_t bytes = 0;
    std::string location;
  };
  std::uint64_t epoch = 0;
  std::vector<Row> rows;
};

/// Serializes a placement map ("tensorkmc-placement 3" + rows + CRC
/// footer).
std::string encodePlacement(const PlacementMap& map);

/// Parses and CRC-verifies a serialized placement map; `what` names the
/// source in IoError messages.
PlacementMap parsePlacement(const std::string& contents,
                            const std::string& what);

/// Background copier: streams committed local epochs into a
/// RemoteShardStore without blocking the commit path. One worker thread
/// drains a queue of epoch numbers; per epoch it copies every shard,
/// then the manifest, then writes the placement map as the remote
/// commit marker. Each object put runs under a RetrySchedule (capped
/// exponential backoff + jitter); when one object exhausts its attempts
/// the whole epoch is given up (counted, never retried) so a dead
/// remote degrades to a bounded amount of wasted work instead of a
/// wedged queue. An optional rate cap (MB/s) paces the copies.
class ShardStreamer {
 public:
  struct Config {
    double rateMbps = 0.0;  // copy bandwidth cap; 0 = unthrottled
    RetryPolicy retry;      // per-object put attempts/backoff
    std::uint64_t jitterSeed = 0;
  };

  ShardStreamer(std::string localDir, std::shared_ptr<RemoteShardStore> remote,
                Config config);
  ~ShardStreamer();  // stops the worker; call drain() first for a flush

  ShardStreamer(const ShardStreamer&) = delete;
  ShardStreamer& operator=(const ShardStreamer&) = delete;

  /// Queues a committed epoch for streaming. Non-blocking.
  void enqueue(std::uint64_t epoch);

  /// Epochs enqueued but not yet streamed (queue depth + in-flight).
  int lagEpochs() const;

  /// Blocks until lagEpochs() <= maxLag or timeoutMs elapses; returns
  /// the final lag. Used by the commit path to throttle when the
  /// remote falls behind the configured cap — bounded, so a dead
  /// remote (whose epochs give up) can never wedge a commit.
  int waitForLag(int maxLag, double timeoutMs) const;

  /// Blocks until the queue is empty and the worker idle (or timeout);
  /// true when fully drained. Called on engine shutdown so a clean
  /// exit leaves the remote mirror complete.
  bool drain(double timeoutMs = 120000.0) const;

  std::uint64_t epochsStreamed() const;
  std::uint64_t retries() const;
  std::uint64_t gaveUp() const;

 private:
  void threadMain();
  bool streamEpoch(std::uint64_t epoch);

  std::string localDir_;
  std::shared_ptr<RemoteShardStore> remote_;
  Config config_;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::deque<std::uint64_t> queue_;
  bool inFlight_ = false;
  bool stop_ = false;
  std::uint64_t streamed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t gaveUp_ = 0;
  std::uint64_t jitterEpochSalt_ = 0;
  std::thread worker_;
};

}  // namespace tkmc
