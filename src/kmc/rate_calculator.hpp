#pragma once

#include <array>
#include <vector>

#include "common/constants.hpp"
#include "tabulation/vet.hpp"

namespace tkmc {

/// Transition rates of one vacancy's eight candidate hops.
struct JumpRates {
  std::array<double, kNumJumpDirections> rate{};
  double total = 0.0;
};

/// Rate law of Eqs. (1)-(2): Gamma = Gamma_0 exp(-E_a / k_B T) with
/// E_a = E_a^0(migrating species) + (E_f - E_i) / 2, clamped at zero
/// (a barrier cannot be negative). Jumps whose target holds another
/// vacancy are forbidden (rate zero).
///
/// `energies` is the stateEnergies() output: [E_i, E_f(0..numFinal-1)].
/// The migrating species for direction k is the atom at jump target k
/// (VET id 1 + k) in the initial state.
JumpRates computeRates(const Vet& vet, const std::vector<double>& energies,
                       double temperature);

/// Uniformly scales every candidate rate (and the total) by `factor`.
/// Event catalogs use this for barrier shifts that apply to a whole
/// site class: adding E to every non-negative barrier multiplies every
/// rate by exp(-E / kT) exactly.
JumpRates scaleRates(const JumpRates& rates, double factor);

/// Residence-time increment of Eq. (3): dt = -ln(r) / totalPropensity,
/// with r in (0, 1].
double residenceTime(double r, double totalPropensity);

}  // namespace tkmc
