#pragma once

#include "kmc/event_catalog/event_catalog.hpp"

namespace tkmc {

/// The historical TensorKMC event model: one event type, the eight BCC
/// first-neighbor vacancy hops, rates straight from computeRates()
/// (Eqs. 1-2). Trajectories through this catalog are bit-identical to
/// the pre-catalog hardcoded path in serial, parallel, and threaded
/// modes — pinned by tests/test_event_catalog.cpp.
class VacancyHopCatalog final : public EventCatalog {
 public:
  const char* name() const override { return "vacancy_hop"; }
  int typeCount() const override { return 1; }
  const EventTypeInfo& typeInfo(int type) const override;

  JumpRates evaluate(int type, const Vet& vet,
                     const std::vector<double>& energies,
                     double temperature) const override;
};

}  // namespace tkmc
