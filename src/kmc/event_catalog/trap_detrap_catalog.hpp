#pragma once

#include "kmc/event_catalog/event_catalog.hpp"

namespace tkmc {

/// Trap/detrap catalog with an absorbing-sink site class — the
/// hydrogen-retention-style workload of ROADMAP item 4 (Saito et al.'s
/// dKMC trap/detrap events, sinks as grain-boundary analogues), run on
/// the existing Fe-Cu energetics.
///
/// Site classes of the active (vacancy) site:
///   kBulk — ordinary lattice; fires type 0 "hop" (standard rates).
///   kTrap — a seeded `trapFraction` of sites; fires type 1 "detrap":
///           every escape barrier is raised by the binding energy, so
///           rates are the standard ones scaled by exp(-Eb / kT).
///   kSink — the lowest `sinkPlanes` unit-cell layers in z. Covered by
///           no event type: a vacancy reaching the slab contributes zero
///           propensity and stays pinned (Markov-absorbing), which keeps
///           the engines' vacancy-conservation invariants intact.
class TrapDetrapCatalog final : public EventCatalog {
 public:
  enum SiteClassId { kBulk = 0, kTrap = 1, kSink = 2 };

  TrapDetrapCatalog(double trapFraction, double bindingEnergy, int sinkPlanes,
                    std::uint64_t trapSeed);

  const char* name() const override { return "trap_detrap"; }
  int typeCount() const override { return 2; }
  const EventTypeInfo& typeInfo(int type) const override;
  int classCount() const override { return 3; }

  int siteClass(const BccLattice& lattice, Vec3i wrappedCenter) const override;

  JumpRates evaluate(int type, const Vet& vet,
                     const std::vector<double>& energies,
                     double temperature) const override;

  double trapFraction() const { return trapFraction_; }
  double bindingEnergy() const { return bindingEnergy_; }

 private:
  double trapFraction_;
  double bindingEnergy_;  // eV
  int sinkPlanes_;        // unit cells; doubled-coordinate z < 2 * sinkPlanes_
  std::uint64_t trapSeed_;
};

}  // namespace tkmc
