#include "kmc/event_catalog/event_catalog.hpp"

#include <limits>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "kmc/event_catalog/trap_detrap_catalog.hpp"
#include "kmc/event_catalog/vacancy_hop_catalog.hpp"

namespace tkmc {

JumpRates EventCatalog::evaluateChecked(int type, const Vet& vet,
                                        const std::vector<double>& energies,
                                        double temperature) const {
  JumpRates rates = evaluate(type, vet, energies, temperature);
  if (faultFires("catalog.rate_nan"))
    rates.total = std::numeric_limits<double>::quiet_NaN();
  return rates;
}

std::unique_ptr<EventCatalog> makeEventCatalog(const EventCatalogSpec& spec) {
  if (spec.name == "vacancy_hop") return std::make_unique<VacancyHopCatalog>();
  if (spec.name == "trap_detrap")
    return std::make_unique<TrapDetrapCatalog>(spec.trapFraction,
                                               spec.trapBinding,
                                               spec.sinkPlanes, spec.trapSeed);
  throw Error("unknown event catalog '" + spec.name +
              "' (known: vacancy_hop, trap_detrap)");
}

const EventCatalog& defaultEventCatalog() {
  static const VacancyHopCatalog kDefault;
  return kDefault;
}

}  // namespace tkmc
