#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kmc/rate_calculator.hpp"
#include "lattice/bcc_lattice.hpp"
#include "tabulation/vet.hpp"

namespace tkmc {

/// One event type of a catalog: a family of transitions sharing a rate
/// law and a candidate geometry. `siteClassMask` names the site classes
/// the type applies to (bit c set = active sites of class c can fire
/// it); a class covered by no type is Markov-absorbing — a vacancy that
/// reaches it contributes zero propensity and stays pinned.
struct EventTypeInfo {
  int id = 0;
  const char* name = "hop";       // stable: telemetry + manifest friendly
  int arity = kNumJumpDirections; // candidate transitions per active site
  std::uint32_t siteClassMask = 1u;
};

/// Pluggable transition catalog of the AKMC engines.
///
/// A catalog owns the event-type enumeration, classifies active sites
/// into site classes, evaluates per-candidate rates (delegating to the
/// EnergyModel's state energies for hop-shaped events), and defines how
/// a chosen candidate is applied (the target-site offset). Both engines
/// and the propensity layer dispatch through this interface instead of
/// assuming the eight hardcoded BCC vacancy hops; `VacancyHopCatalog`
/// reproduces the historical physics bit-for-bit.
///
/// Every shipped event type is hop-shaped: candidate k exchanges the
/// active vacancy with the site at `candidateOffset(type, k)`, so the
/// hop/fold/cache machinery of the engines is shared across catalogs.
class EventCatalog {
 public:
  virtual ~EventCatalog() = default;

  /// Stable registry name (deck key `event_catalog`, manifest record).
  virtual const char* name() const = 0;

  virtual int typeCount() const = 0;
  virtual const EventTypeInfo& typeInfo(int type) const = 0;

  /// Number of site classes the catalog distinguishes.
  virtual int classCount() const { return 1; }

  /// Class of the active site at `wrappedCenter` (pure function of the
  /// wrapped coordinate, so serial and parallel engines agree without
  /// sharing state).
  virtual int siteClass(const BccLattice& lattice, Vec3i wrappedCenter) const {
    (void)lattice;
    (void)wrappedCenter;
    return 0;
  }

  /// Candidate rates of one (type, active site). `vet` is the gathered
  /// vacancy environment, `energies` the stateEnergies() output
  /// [E_i, E_f(0..arity-1)] for the same environment.
  virtual JumpRates evaluate(int type, const Vet& vet,
                             const std::vector<double>& energies,
                             double temperature) const = 0;

  /// Target-site offset of candidate k (applied as vacancy exchange).
  virtual Vec3i candidateOffset(int type, int k) const {
    (void)type;
    return BccLattice::firstNeighborOffsets()[static_cast<std::size_t>(k)];
  }

  /// True when `type` applies to active sites of `siteClass`.
  bool typeApplies(int type, int siteClass) const {
    return (typeInfo(type).siteClassMask & (1u << siteClass)) != 0u;
  }

  /// evaluate() plus the `catalog.rate_nan` fault probe: an armed
  /// injector corrupts the evaluated propensity to NaN here, which the
  /// engine-side guards must turn into a typed InvariantError instead of
  /// a silently poisoned trajectory. Engines call this, not evaluate().
  JumpRates evaluateChecked(int type, const Vet& vet,
                            const std::vector<double>& energies,
                            double temperature) const;
};

/// Deck-level catalog selection plus the trap/detrap parameters (unused
/// by catalogs that do not consume them).
struct EventCatalogSpec {
  std::string name = "vacancy_hop";

  // trap_detrap: a seeded `trapFraction` of the bulk sites are traps
  // (escape barriers raised by `trapBinding` eV), and the lowest
  // `sinkPlanes` unit-cell layers in z form an absorbing sink slab.
  double trapFraction = 0.05;
  double trapBinding = 0.25;      // eV added to every escape barrier
  int sinkPlanes = 1;             // unit-cell-thick absorbing slab at z = 0
  std::uint64_t trapSeed = 1234;  // trap-placement stream
};

/// Builds a catalog from its deck spec. Throws tkmc::Error on an unknown
/// name or invalid parameters.
std::unique_ptr<EventCatalog> makeEventCatalog(const EventCatalogSpec& spec);

/// The process-wide default catalog (the historical Fe-Cu vacancy-hop
/// physics); engines fall back to it when no catalog is supplied.
const EventCatalog& defaultEventCatalog();

}  // namespace tkmc
