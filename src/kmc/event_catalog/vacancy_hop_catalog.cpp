#include "kmc/event_catalog/vacancy_hop_catalog.hpp"

#include "common/error.hpp"

namespace tkmc {

const EventTypeInfo& VacancyHopCatalog::typeInfo(int type) const {
  static const EventTypeInfo kHop{0, "hop", kNumJumpDirections, 1u};
  require(type == 0, "vacancy_hop catalog has exactly one event type");
  return kHop;
}

JumpRates VacancyHopCatalog::evaluate(int type, const Vet& vet,
                                      const std::vector<double>& energies,
                                      double temperature) const {
  require(type == 0, "vacancy_hop catalog has exactly one event type");
  return computeRates(vet, energies, temperature);
}

}  // namespace tkmc
