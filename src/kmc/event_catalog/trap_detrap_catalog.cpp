#include "kmc/event_catalog/trap_detrap_catalog.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tkmc {

TrapDetrapCatalog::TrapDetrapCatalog(double trapFraction, double bindingEnergy,
                                     int sinkPlanes, std::uint64_t trapSeed)
    : trapFraction_(trapFraction), bindingEnergy_(bindingEnergy),
      sinkPlanes_(sinkPlanes), trapSeed_(trapSeed) {
  require(trapFraction_ >= 0.0 && trapFraction_ < 1.0,
          "trap_fraction must be in [0, 1)");
  require(bindingEnergy_ >= 0.0, "trap_binding must be non-negative");
  require(sinkPlanes_ >= 0, "sink_planes must be non-negative");
}

const EventTypeInfo& TrapDetrapCatalog::typeInfo(int type) const {
  // kSink appears in no mask: the sink slab is absorbing.
  static const EventTypeInfo kTypes[2] = {
      {0, "hop", kNumJumpDirections, 1u << kBulk},
      {1, "detrap", kNumJumpDirections, 1u << kTrap},
  };
  require(type >= 0 && type < 2, "trap_detrap catalog has two event types");
  return kTypes[static_cast<std::size_t>(type)];
}

int TrapDetrapCatalog::siteClass(const BccLattice& lattice,
                                 Vec3i wrappedCenter) const {
  if (wrappedCenter.z < 2 * sinkPlanes_) return kSink;
  // Trap placement: a pure hash of (seed, site), so every rank — and a
  // resumed run — classifies identically without shared state.
  (void)lattice;
  std::uint64_t h = trapSeed_;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(wrappedCenter.x));
  h = SplitMix64(h).next();
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(wrappedCenter.y));
  h = SplitMix64(h).next();
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(wrappedCenter.z));
  h = SplitMix64(h).next();
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  return u < trapFraction_ ? kTrap : kBulk;
}

JumpRates TrapDetrapCatalog::evaluate(int type, const Vet& vet,
                                      const std::vector<double>& energies,
                                      double temperature) const {
  require(type >= 0 && type < 2, "trap_detrap catalog has two event types");
  const JumpRates rates = computeRates(vet, energies, temperature);
  if (type == 0 || bindingEnergy_ == 0.0) return rates;
  // Detrap: every escape barrier gains the binding energy. Barriers are
  // non-negative before the shift, so the scaling is exactly
  // exp(-(barrier + Eb) / kT).
  return scaleRates(rates,
                    std::exp(-bindingEnergy_ / (kBoltzmannEv * temperature)));
}

}  // namespace tkmc
