#include "kmc/serial_engine.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/telemetry/telemetry.hpp"

namespace tkmc {

namespace {

// TKMC_SPAN stores the name pointer, so span names must be static. The
// per-type refresh spans draw from this fixed table (types beyond the
// table share the last slot; shipped catalogs have at most two types).
const char* refreshSpanName(int type) {
  static const char* const kNames[] = {
      "kmc.refresh.type0", "kmc.refresh.type1", "kmc.refresh.type2",
      "kmc.refresh.type3plus"};
  return kNames[type < 3 ? type : 3];
}

}  // namespace

SerialEngine::SerialEngine(LatticeState& state, EnergyModel& model,
                           const Cet& cet, KmcConfig config,
                           const EventCatalog* catalog)
    : state_(state), model_(model), cet_(cet), config_(config),
      catalog_(catalog ? catalog : &defaultEventCatalog()),
      rng_(config.seed), cache_(cet, state.lattice()) {
  require(!state.vacancies().empty(),
          "AKMC needs at least one vacancy to evolve");
  require(catalog_->typeCount() >= 1,
          "event catalog must define at least one event type");
  telemetry::flightRecorder().configureRanks(1);
  cache_.setCatalog(catalog_);
  if (config_.useVacancyCache) {
    require(model.supportsVet(),
            "vacancy cache requires a VET-capable energy backend");
  }
  const int n = static_cast<int>(state.vacancies().size());
  resizePropensities(n);
  eventsByType_.assign(static_cast<std::size_t>(catalog_->typeCount()), 0);
  eventTypeMetricNames_.clear();
  for (int t = 0; t < catalog_->typeCount(); ++t)
    eventTypeMetricNames_.push_back(std::string("kmc.events.by_type.") +
                                    catalog_->typeInfo(t).name);
  if (config_.useVacancyCache) {
    cache_.rebuild(state);
  } else {
    dirtyNoCache_.assign(static_cast<std::size_t>(n), true);
  }
}

void SerialEngine::resizePropensities(int vacancies) {
  const int types = catalog_->typeCount();
  rates_.assign(static_cast<std::size_t>(types),
                std::vector<JumpRates>(static_cast<std::size_t>(vacancies)));
  tree_.resizeForest(types, vacancies);
}

const JumpRates& SerialEngine::evaluateInto(int type, int v, int siteClass,
                                            const Vet& vet,
                                            const std::vector<double>& energies) {
  JumpRates& slot =
      rates_[static_cast<std::size_t>(type)][static_cast<std::size_t>(v)];
  if (!catalog_->typeApplies(type, siteClass)) {
    slot = JumpRates{};
    return slot;
  }
  slot = catalog_->evaluateChecked(type, vet, energies, config_.temperature);
  if (!std::isfinite(slot.total) || slot.total < 0.0) {
    telemetry::flightRecorder().record(
        0, telemetry::BlackboxEventType::kInvariantTrip, 0, steps_,
        static_cast<std::uint64_t>(type));
    throw InvariantError(
        std::string("non-finite or negative propensity from event type '") +
        catalog_->typeInfo(type).name + "' of catalog '" + catalog_->name() +
        "' at vacancy " + std::to_string(v) + " (total " +
        std::to_string(slot.total) + ")");
  }
  return slot;
}

void SerialEngine::refreshDirty() {
  const int n = static_cast<int>(state_.vacancies().size());
  const int types = catalog_->typeCount();
  if (config_.useVacancyCache) {
    // Collect every dirty system first, then evaluate them all in one
    // backend dispatch so an accelerator backend amortizes kernel
    // launches and weight movement over the batch. Index order is
    // ascending, matching the old per-system loop, and the batch API
    // guarantees bit-identical energies, so trajectories are unchanged.
    // Every shipped event type is hop-shaped over the same environment,
    // so one state-energy batch serves all per-type evaluations.
    dirtyScratch_.clear();
    vetScratch_.clear();
    for (int v = 0; v < n; ++v) {
      if (!cache_.isDirty(v)) continue;
      dirtyScratch_.push_back(v);
      vetScratch_.push_back(&cache_.vet(v));
    }
    if (dirtyScratch_.empty()) return;
    const auto energies =
        model_.stateEnergiesBatch(vetScratch_, kNumJumpDirections);
    for (std::size_t i = 0; i < dirtyScratch_.size(); ++i) {
      cache_.clearDirty(dirtyScratch_[i]);
      ++energyEvals_;
    }
    for (int t = 0; t < types; ++t) {
      TKMC_SPAN(refreshSpanName(t));
      for (std::size_t i = 0; i < dirtyScratch_.size(); ++i) {
        const int v = dirtyScratch_[i];
        const JumpRates& jr = evaluateInto(t, v, cache_.siteClass(v),
                                           cache_.vet(v), energies[i]);
        tree_.updateTyped(t, v, jr.total);
      }
    }
    if (telemetry::enabled())
      telemetry::metrics()
          .histogram("kmc.batch_size",
                     telemetry::Histogram::batchSizeBounds())
          .observe(static_cast<double>(dirtyScratch_.size()));
    telemetry::flightRecorder().record(
        0, telemetry::BlackboxEventType::kPropensityRefresh, 0,
        dirtyScratch_.size());
    return;
  }
  for (int v = 0; v < n; ++v) {
    if (!dirtyNoCache_[static_cast<std::size_t>(v)]) continue;
    const Vec3i center = state_.lattice().wrap(state_.vacancies()[static_cast<std::size_t>(v)]);
    const std::vector<double> energies =
        model_.stateEnergies(state_, center, kNumJumpDirections);
    // Rates need the migrating species per direction; build a one-shot
    // VET view for that lookup (geometry only, species from lattice).
    Vet vet = Vet::gather(cet_, state_, center);
    const int siteClass = catalog_->siteClass(state_.lattice(), center);
    for (int t = 0; t < types; ++t) {
      const JumpRates& jr = evaluateInto(t, v, siteClass, vet, energies);
      tree_.updateTyped(t, v, jr.total);
    }
    dirtyNoCache_[static_cast<std::size_t>(v)] = false;
    ++energyEvals_;
  }
}

SerialEngine::StepResult SerialEngine::step() {
  const bool instrumented = telemetry::enabled();
  Stopwatch watch;
  StepResult result;
  {
    TKMC_SPAN("kmc.refresh");
    refreshDirty();
  }
  TKMC_SPAN("kmc.step");
  const double total = tree_.total();
  if (total <= 0.0) return result;

  // Draw order is fixed (event, direction, time) so that engines with
  // different caching strategies consume the stream identically. With a
  // single-type catalog the forest select degenerates exactly to the
  // historical per-vacancy tree walk.
  const double u1 = rng_.uniform();
  const PropensityTree::Pick pick = config_.useTree
                                        ? tree_.selectTyped(u1 * total)
                                        : tree_.selectLinearTyped(u1 * total);
  const int v = pick.index;
  const JumpRates& jr =
      rates_[static_cast<std::size_t>(pick.type)][static_cast<std::size_t>(v)];
  const int arity = catalog_->typeInfo(pick.type).arity;
  const double u2 = rng_.uniform();
  double target = u2 * jr.total;
  int direction = 0;
  for (; direction < arity - 1; ++direction) {
    target -= jr.rate[static_cast<std::size_t>(direction)];
    if (target < 0.0) break;
  }
  // Guard: u2 may land on a zero-rate tail slot; back up to a feasible one.
  while (direction > 0 && jr.rate[static_cast<std::size_t>(direction)] == 0.0)
    --direction;
  const double dt = residenceTime(rng_.uniformOpenLeft(), total);

  const Vec3i from = state_.lattice().wrap(
      state_.vacancies()[static_cast<std::size_t>(v)]);
  const Vec3i to = state_.lattice().wrap(
      from + catalog_->candidateOffset(pick.type, direction));
  state_.hopVacancy(from, to);

  if (config_.useVacancyCache) {
    cache_.applyHop(state_, v, from, to);
  } else {
    // Everything within interaction range of the changed sites is stale;
    // without the cache we simply refresh all vacancies next step.
    std::fill(dirtyNoCache_.begin(), dirtyNoCache_.end(), true);
  }

  time_ += dt;
  ++steps_;
  ++eventsByType_[static_cast<std::size_t>(pick.type)];
  telemetry::flightRecorder().record(
      0, telemetry::BlackboxEventType::kKmcEvent, 0, steps_,
      static_cast<std::uint64_t>(direction));
  result.advanced = true;
  result.dt = dt;
  result.from = from;
  result.to = to;
  result.vacancyIndex = v;
  result.direction = direction;
  result.eventType = pick.type;
  if (instrumented)
    telemetry::metrics().histogram("kmc.step_seconds").observe(watch.seconds());
  if (observer_) observer_(*this, result);
  return result;
}

void SerialEngine::restore(const Checkpoint& cp) {
  time_ = cp.time;
  steps_ = cp.steps;
  rng_.setState(cp.rngState);
  // Propensities and the vacancy cache derive from the (restored)
  // lattice; rebuild them from scratch.
  const int n = static_cast<int>(state_.vacancies().size());
  resizePropensities(n);
  if (config_.useVacancyCache) {
    cache_.rebuild(state_);
  } else {
    dirtyNoCache_.assign(static_cast<std::size_t>(n), true);
  }
}

std::uint64_t SerialEngine::run() {
  std::uint64_t executed = 0;
  while (time_ < config_.tEnd && steps_ < config_.maxSteps) {
    const StepResult r = step();
    if (!r.advanced) break;
    ++executed;
  }
  publishTelemetry();
  return executed;
}

void SerialEngine::publishTelemetry() const {
  namespace tm = telemetry;
  if (!tm::enabled()) return;
  tm::MetricsRegistry& reg = tm::metrics();
  reg.gauge("kmc.steps").set(static_cast<double>(steps_));
  reg.gauge("kmc.time_seconds").set(time_);
  reg.gauge("kmc.energy_evals").set(static_cast<double>(energyEvals_));
  reg.gauge("kmc.total_propensity").set(tree_.total());
  reg.gauge("kmc.tree.updates").set(static_cast<double>(tree_.updateCount()));
  reg.gauge("kmc.tree.selects").set(static_cast<double>(tree_.selectCount()));
  for (std::size_t t = 0; t < eventTypeMetricNames_.size(); ++t)
    reg.gauge(eventTypeMetricNames_[t])
        .set(static_cast<double>(eventsByType_[t]));
  if (config_.useVacancyCache) {
    reg.gauge("kmc.cache.hits").set(static_cast<double>(cache_.hitCount()));
    reg.gauge("kmc.cache.misses").set(static_cast<double>(cache_.missCount()));
    reg.gauge("kmc.cache.evictions")
        .set(static_cast<double>(cache_.evictionCount()));
    reg.gauge("kmc.cache.hit_rate").set(cache_.hitRate());
    reg.gauge("kmc.cache.bytes").set(static_cast<double>(cache_.memoryBytes()));
  }
}

}  // namespace tkmc
