#include "kmc/serial_engine.hpp"

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/telemetry/telemetry.hpp"

namespace tkmc {

SerialEngine::SerialEngine(LatticeState& state, EnergyModel& model,
                           const Cet& cet, KmcConfig config)
    : state_(state), model_(model), cet_(cet), config_(config),
      rng_(config.seed), cache_(cet, state.lattice()) {
  require(!state.vacancies().empty(),
          "AKMC needs at least one vacancy to evolve");
  telemetry::flightRecorder().configureRanks(1);
  if (config_.useVacancyCache) {
    require(model.supportsVet(),
            "vacancy cache requires a VET-capable energy backend");
  }
  const int n = static_cast<int>(state.vacancies().size());
  rates_.resize(static_cast<std::size_t>(n));
  tree_.resize(n);
  if (config_.useVacancyCache) {
    cache_.rebuild(state);
  } else {
    dirtyNoCache_.assign(static_cast<std::size_t>(n), true);
  }
}

void SerialEngine::refreshDirty() {
  const int n = static_cast<int>(state_.vacancies().size());
  if (config_.useVacancyCache) {
    // Collect every dirty system first, then evaluate them all in one
    // backend dispatch so an accelerator backend amortizes kernel
    // launches and weight movement over the batch. Index order is
    // ascending, matching the old per-system loop, and the batch API
    // guarantees bit-identical energies, so trajectories are unchanged.
    dirtyScratch_.clear();
    vetScratch_.clear();
    for (int v = 0; v < n; ++v) {
      if (!cache_.isDirty(v)) continue;
      dirtyScratch_.push_back(v);
      vetScratch_.push_back(&cache_.vet(v));
    }
    if (dirtyScratch_.empty()) return;
    const auto energies =
        model_.stateEnergiesBatch(vetScratch_, kNumJumpDirections);
    for (std::size_t i = 0; i < dirtyScratch_.size(); ++i) {
      const int v = dirtyScratch_[i];
      rates_[static_cast<std::size_t>(v)] =
          computeRates(cache_.vet(v), energies[i], config_.temperature);
      cache_.clearDirty(v);
      tree_.update(v, rates_[static_cast<std::size_t>(v)].total);
      ++energyEvals_;
    }
    if (telemetry::enabled())
      telemetry::metrics()
          .histogram("kmc.batch_size",
                     telemetry::Histogram::batchSizeBounds())
          .observe(static_cast<double>(dirtyScratch_.size()));
    telemetry::flightRecorder().record(
        0, telemetry::BlackboxEventType::kPropensityRefresh, 0,
        dirtyScratch_.size());
    return;
  }
  for (int v = 0; v < n; ++v) {
    if (!dirtyNoCache_[static_cast<std::size_t>(v)]) continue;
    const Vec3i center = state_.lattice().wrap(state_.vacancies()[static_cast<std::size_t>(v)]);
    const std::vector<double> energies =
        model_.stateEnergies(state_, center, kNumJumpDirections);
    // Rates need the migrating species per direction; build a one-shot
    // VET view for that lookup (geometry only, species from lattice).
    Vet vet = Vet::gather(cet_, state_, center);
    rates_[static_cast<std::size_t>(v)] =
        computeRates(vet, energies, config_.temperature);
    dirtyNoCache_[static_cast<std::size_t>(v)] = false;
    tree_.update(v, rates_[static_cast<std::size_t>(v)].total);
    ++energyEvals_;
  }
}

SerialEngine::StepResult SerialEngine::step() {
  const bool instrumented = telemetry::enabled();
  Stopwatch watch;
  StepResult result;
  {
    TKMC_SPAN("kmc.refresh");
    refreshDirty();
  }
  TKMC_SPAN("kmc.step");
  const double total = tree_.total();
  if (total <= 0.0) return result;

  // Draw order is fixed (vacancy, direction, time) so that engines with
  // different caching strategies consume the stream identically.
  const double u1 = rng_.uniform();
  const int v = config_.useTree ? tree_.select(u1 * total)
                                : tree_.selectLinear(u1 * total);
  const JumpRates& jr = rates_[static_cast<std::size_t>(v)];
  const double u2 = rng_.uniform();
  double target = u2 * jr.total;
  int direction = 0;
  for (; direction < kNumJumpDirections - 1; ++direction) {
    target -= jr.rate[static_cast<std::size_t>(direction)];
    if (target < 0.0) break;
  }
  // Guard: u2 may land on a zero-rate tail slot; back up to a feasible one.
  while (direction > 0 && jr.rate[static_cast<std::size_t>(direction)] == 0.0)
    --direction;
  const double dt = residenceTime(rng_.uniformOpenLeft(), total);

  const Vec3i from = state_.lattice().wrap(
      state_.vacancies()[static_cast<std::size_t>(v)]);
  const Vec3i to = state_.lattice().wrap(
      from + BccLattice::firstNeighborOffsets()[static_cast<std::size_t>(direction)]);
  state_.hopVacancy(from, to);

  if (config_.useVacancyCache) {
    cache_.applyHop(state_, v, from, to);
  } else {
    // Everything within interaction range of the changed sites is stale;
    // without the cache we simply refresh all vacancies next step.
    std::fill(dirtyNoCache_.begin(), dirtyNoCache_.end(), true);
  }

  time_ += dt;
  ++steps_;
  telemetry::flightRecorder().record(
      0, telemetry::BlackboxEventType::kKmcEvent, 0, steps_,
      static_cast<std::uint64_t>(direction));
  result.advanced = true;
  result.dt = dt;
  result.from = from;
  result.to = to;
  result.vacancyIndex = v;
  result.direction = direction;
  if (instrumented)
    telemetry::metrics().histogram("kmc.step_seconds").observe(watch.seconds());
  if (observer_) observer_(*this, result);
  return result;
}

void SerialEngine::restore(const Checkpoint& cp) {
  time_ = cp.time;
  steps_ = cp.steps;
  rng_.setState(cp.rngState);
  // Propensities and the vacancy cache derive from the (restored)
  // lattice; rebuild them from scratch.
  const int n = static_cast<int>(state_.vacancies().size());
  rates_.assign(static_cast<std::size_t>(n), JumpRates{});
  tree_.resize(n);
  if (config_.useVacancyCache) {
    cache_.rebuild(state_);
  } else {
    dirtyNoCache_.assign(static_cast<std::size_t>(n), true);
  }
}

std::uint64_t SerialEngine::run() {
  std::uint64_t executed = 0;
  while (time_ < config_.tEnd && steps_ < config_.maxSteps) {
    const StepResult r = step();
    if (!r.advanced) break;
    ++executed;
  }
  publishTelemetry();
  return executed;
}

void SerialEngine::publishTelemetry() const {
  namespace tm = telemetry;
  if (!tm::enabled()) return;
  tm::MetricsRegistry& reg = tm::metrics();
  reg.gauge("kmc.steps").set(static_cast<double>(steps_));
  reg.gauge("kmc.time_seconds").set(time_);
  reg.gauge("kmc.energy_evals").set(static_cast<double>(energyEvals_));
  reg.gauge("kmc.total_propensity").set(tree_.total());
  reg.gauge("kmc.tree.updates").set(static_cast<double>(tree_.updateCount()));
  reg.gauge("kmc.tree.selects").set(static_cast<double>(tree_.selectCount()));
  if (config_.useVacancyCache) {
    reg.gauge("kmc.cache.hits").set(static_cast<double>(cache_.hitCount()));
    reg.gauge("kmc.cache.misses").set(static_cast<double>(cache_.missCount()));
    reg.gauge("kmc.cache.evictions")
        .set(static_cast<double>(cache_.evictionCount()));
    reg.gauge("kmc.cache.hit_rate").set(cache_.hitRate());
    reg.gauge("kmc.cache.bytes").set(static_cast<double>(cache_.memoryBytes()));
  }
}

}  // namespace tkmc
