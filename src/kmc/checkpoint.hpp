#pragma once

#include <string>

#include "kmc/serial_engine.hpp"
#include "lattice/lattice_state.hpp"

namespace tkmc {

/// Checkpoint/restart for serial AKMC runs.
///
/// A checkpoint file carries the full lattice occupation plus the
/// engine's time, step count, and RNG state. Because propensities, the
/// vacancy cache, and the triple-encoding tables are pure functions of
/// the lattice, restarting from a checkpoint continues the original
/// trajectory *bit-exactly* (tested) — the property that makes
/// long-running mesoscale campaigns restartable after machine failures.
///
/// Format v3 (current) stores the occupation CET-packed — four 2-bit
/// species codes per byte, hex-encoded — matching the paged in-memory
/// store, and seals the file with a `crc32 <hex>` footer computed over
/// everything before it, so truncation and bit flips are detected at
/// load instead of silently feeding the engine bad state. Writers are
/// atomic: the body goes to `<path>.tmp` which is renamed over the
/// target, and an existing good file is rotated to `<path>.bak` first.
/// v2 files (one digit per site, CRC footer) and v1 files (no footer)
/// still load read-only through the same entry points.
struct CheckpointData {
  int cellsX = 0;
  int cellsY = 0;
  int cellsZ = 0;
  double latticeConstant = 0.0;
  std::vector<Species> species;
  // Vacancy coordinates in the engine's list order. The selection RNG
  // maps to vacancies *by index*, so bit-exact resume requires restoring
  // the exact ordering, not just the occupation.
  std::vector<Vec3i> vacancyOrder;
  SerialEngine::Checkpoint engine;

  /// Reconstructs the lattice occupation. Throws InvariantError when the
  /// vacancy list disagrees with the occupation (corrupt or forged
  /// checkpoint content that passed the format checks).
  LatticeState restoreState() const;
};

/// Writes a format-v3 checkpoint of `state` and `engine` to `path`:
/// packed-species body, CRC32 footer, atomic temp-file + rename,
/// existing file rotated to `<path>.bak`. Throws IoError on filesystem
/// failures.
void saveCheckpoint(const std::string& path, const LatticeState& state,
                    const SerialEngine& engine);

/// Legacy format-v1 writer (dense digit body, no CRC footer), kept for
/// compatibility tooling. Shares the atomic temp-file + rename + `.bak`
/// rotation path, so old callers can no longer tear a checkpoint
/// mid-write.
void saveCheckpointV1(const std::string& path, const LatticeState& state,
                      const SerialEngine& engine);

/// Legacy format-v2 writer (dense digit body, CRC footer), kept so the
/// v2→v3 load compatibility path stays exercised by files this build
/// produced itself.
void saveCheckpointV2(const std::string& path, const LatticeState& state,
                      const SerialEngine& engine);

/// Reads a checkpoint written by saveCheckpoint() (v3, CRC-verified) or
/// the legacy v2/v1 writers. Throws IoError on missing files, bad
/// magic/version, truncation, or CRC mismatch.
CheckpointData loadCheckpoint(const std::string& path);

/// Result of a fallback-aware load: the data plus which replica served
/// it.
struct CheckpointLoadResult {
  CheckpointData data;
  bool usedBackup = false;
};

/// Loads `path`, degrading gracefully to `<path>.bak` when the primary
/// is missing, corrupt, or truncated anywhere in the body (including mid
/// packed-hex occupation line). Throws IoError (with both causes) only
/// when neither replica is loadable.
CheckpointLoadResult loadCheckpointWithFallback(const std::string& path);

/// Durable write shared by the serial checkpoint and the coordinated
/// shard/manifest writers: contents go to `<path>.tmp`; an existing
/// target is rotated to `<path>.bak`; the temp file is renamed over the
/// target. A crash at any point leaves either the old file, the old
/// file plus a stray .tmp, or the new file — never a torn file at the
/// final path. Throws IoError on filesystem failures.
void writeFileAtomic(const std::string& path, const std::string& contents);

}  // namespace tkmc
