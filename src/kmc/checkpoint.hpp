#pragma once

#include <string>

#include "kmc/serial_engine.hpp"
#include "lattice/lattice_state.hpp"

namespace tkmc {

/// Checkpoint/restart for serial AKMC runs.
///
/// A checkpoint file carries the full lattice occupation plus the
/// engine's time, step count, and RNG state. Because propensities, the
/// vacancy cache, and the triple-encoding tables are pure functions of
/// the lattice, restarting from a checkpoint continues the original
/// trajectory *bit-exactly* (tested) — the property that makes
/// long-running mesoscale campaigns restartable after machine failures.
struct CheckpointData {
  int cellsX = 0;
  int cellsY = 0;
  int cellsZ = 0;
  double latticeConstant = 0.0;
  std::vector<Species> species;
  // Vacancy coordinates in the engine's list order. The selection RNG
  // maps to vacancies *by index*, so bit-exact resume requires restoring
  // the exact ordering, not just the occupation.
  std::vector<Vec3i> vacancyOrder;
  SerialEngine::Checkpoint engine;

  /// Reconstructs the lattice occupation.
  LatticeState restoreState() const;
};

/// Writes a checkpoint of `state` and `engine` to `path`.
void saveCheckpoint(const std::string& path, const LatticeState& state,
                    const SerialEngine& engine);

/// Reads a checkpoint written by saveCheckpoint(). Throws tkmc::Error on
/// format problems.
CheckpointData loadCheckpoint(const std::string& path);

}  // namespace tkmc
