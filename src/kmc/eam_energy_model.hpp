#pragma once

#include <vector>

#include "eam/eam_potential.hpp"
#include "kmc/energy_model.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "tabulation/cet.hpp"
#include "tabulation/net.hpp"

namespace tkmc {

/// EAM energy backend on the triple-encoding tables.
///
/// Same gather/region machinery as the NNP backend but with embedded-atom
/// energies — the potential OpenKMC uses. Cheap enough for dense test
/// sweeps, and the backend behind the OpenKMC-baseline comparisons.
class EamEnergyModel : public EnergyModel {
 public:
  EamEnergyModel(const Cet& cet, const Net& net, const EamPotential& potential);

  std::vector<double> stateEnergies(const LatticeState& state, Vec3i center,
                                    int numFinal) override;

  std::vector<double> stateEnergiesFromVet(Vet& vet, int numFinal) override;

  bool supportsVet() const override { return true; }

  // Evaluation only reads the pair/density tables built in the
  // constructor; no mutable scratch, so rank threads may batch through
  // this backend concurrently.
  bool concurrentDispatchSafe() const override { return true; }

  const char* name() const override { return "eam-tet"; }

 private:
  double regionEnergy(const Vet& vet, int state) const;

  const Cet& cet_;
  const Net& net_;
  const EamPotential& potential_;
  // Pair/density tables over (species pair, distance index) — the EAM
  // analogue of the feature TABLE; distances are discrete on the lattice.
  std::vector<double> pairTable_;     // [a][b][dist]
  std::vector<double> densityTable_;  // [b][dist]
  int numDist_;
};

}  // namespace tkmc
