#include "kmc/nnp_energy_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tkmc {

NnpEnergyModel::NnpEnergyModel(const Cet& cet, const Net& net,
                               const FeatureTable& table,
                               const Network& network)
    : cet_(cet), net_(net), network_(network), features_(net, table) {
  require(network.inputDim() == table.numPq() * kNumElements,
          "network input dimension must match the descriptor");
}

std::vector<double> NnpEnergyModel::stateEnergies(const LatticeState& state,
                                                  Vec3i center, int numFinal) {
  Vet vet = Vet::gather(cet_, state, center);
  return stateEnergiesFromVet(vet, numFinal);
}

std::vector<double> NnpEnergyModel::stateEnergiesFromVet(Vet& vet,
                                                         int numFinal) {
  const int nRegion = cet_.nRegion();
  features_.computeStates(vet, numFinal, featureBuffer_);
  const int numStates = 1 + numFinal;
  energyBuffer_.resize(static_cast<std::size_t>(numStates) *
                       static_cast<std::size_t>(nRegion));
  network_.forwardBatch(featureBuffer_.data(), numStates * nRegion,
                        energyBuffer_.data());
  std::vector<double> energies(static_cast<std::size_t>(numStates), 0.0);
  for (int s = 0; s < numStates; ++s) {
    double total = 0.0;
    const double* atomE =
        energyBuffer_.data() + static_cast<std::size_t>(s) * nRegion;
    for (int site = 0; site < nRegion; ++site) {
      if (stateSpecies(vet, s, site) == Species::kVacancy) continue;
      total += atomE[site];
    }
    energies[static_cast<std::size_t>(s)] = total;
  }
  return energies;
}

std::vector<std::vector<double>> NnpEnergyModel::stateEnergiesBatch(
    std::span<Vet* const> vets, int numFinal) {
  if (vets.empty()) return {};
  const int nRegion = cet_.nRegion();
  const int numStates = 1 + numFinal;
  const int numSystems = static_cast<int>(vets.size());
  const std::size_t systemDoubles = static_cast<std::size_t>(numStates) *
                                    nRegion *
                                    static_cast<std::size_t>(network_.inputDim());
  featureBuffer_.resize(systemDoubles * static_cast<std::size_t>(numSystems));
  for (int sys = 0; sys < numSystems; ++sys) {
    features_.computeStates(*vets[static_cast<std::size_t>(sys)], numFinal,
                            systemFeatureScratch_);
    std::copy(systemFeatureScratch_.begin(), systemFeatureScratch_.end(),
              featureBuffer_.begin() +
                  static_cast<std::size_t>(sys) * systemDoubles);
  }
  const int m = numSystems * numStates * nRegion;
  energyBuffer_.resize(static_cast<std::size_t>(m));
  network_.forwardBatch(featureBuffer_.data(), m, energyBuffer_.data());

  std::vector<std::vector<double>> energies(
      static_cast<std::size_t>(numSystems));
  for (int sys = 0; sys < numSystems; ++sys) {
    const Vet& vet = *vets[static_cast<std::size_t>(sys)];
    std::vector<double>& systemEnergies =
        energies[static_cast<std::size_t>(sys)];
    systemEnergies.assign(static_cast<std::size_t>(numStates), 0.0);
    for (int s = 0; s < numStates; ++s) {
      double total = 0.0;
      const double* atomE =
          energyBuffer_.data() +
          (static_cast<std::size_t>(sys) * numStates + s) * nRegion;
      for (int site = 0; site < nRegion; ++site) {
        if (stateSpecies(vet, s, site) == Species::kVacancy) continue;
        total += atomE[site];
      }
      systemEnergies[static_cast<std::size_t>(s)] = total;
    }
  }
  return energies;
}

}  // namespace tkmc
