#include "kmc/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/error.hpp"

namespace tkmc {

LatticeState CheckpointData::restoreState() const {
  LatticeState state(BccLattice(cellsX, cellsY, cellsZ, latticeConstant));
  require(species.size() == static_cast<std::size_t>(state.lattice().siteCount()),
          "checkpoint species array does not match the box");
  // Atoms first, then vacancies in their recorded list order (the engine
  // addresses vacancies by index).
  for (std::size_t id = 0; id < species.size(); ++id)
    if (species[id] != Species::kVacancy)
      state.setSpecies(static_cast<BccLattice::SiteId>(id), species[id]);
  for (const Vec3i& v : vacancyOrder) {
    require(species[static_cast<std::size_t>(state.lattice().siteId(v))] ==
                Species::kVacancy,
            "checkpoint vacancy list disagrees with the occupation");
    state.setSpeciesAt(v, Species::kVacancy);
  }
  require(state.vacancies().size() == vacancyOrder.size(),
          "checkpoint vacancy count mismatch");
  return state;
}

void saveCheckpoint(const std::string& path, const LatticeState& state,
                    const SerialEngine& engine) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  require(f != nullptr, "cannot open checkpoint for writing: " + path);
  const BccLattice& lat = state.lattice();
  const SerialEngine::Checkpoint cp = engine.checkpoint();
  std::fprintf(f, "tensorkmc-checkpoint 1\n");
  std::fprintf(f, "%d %d %d %.17g\n", lat.cellsX(), lat.cellsY(), lat.cellsZ(),
               lat.latticeConstant());
  std::fprintf(f, "%.17g %" PRIu64 "\n", cp.time, cp.steps);
  std::fprintf(f, "%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
               cp.rngState[0], cp.rngState[1], cp.rngState[2], cp.rngState[3]);
  std::fprintf(f, "%zu\n", state.vacancies().size());
  for (const Vec3i& v : state.vacancies())
    std::fprintf(f, "%d %d %d\n", v.x, v.y, v.z);
  // Occupation as one digit per site (0=Fe, 1=Cu, 2=vacancy), 80/line.
  const auto& raw = state.raw();
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::fputc('0' + static_cast<int>(raw[i]), f);
    if ((i + 1) % 80 == 0) std::fputc('\n', f);
  }
  if (raw.size() % 80 != 0) std::fputc('\n', f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  require(ok, "failed writing checkpoint: " + path);
}

CheckpointData loadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  require(f != nullptr, "cannot open checkpoint: " + path);
  CheckpointData data;
  char magic[64] = {0};
  int version = 0;
  bool ok = std::fscanf(f, "%63s %d", magic, &version) == 2 &&
            std::string(magic) == "tensorkmc-checkpoint" && version == 1;
  ok = ok && std::fscanf(f, "%d %d %d %lg", &data.cellsX, &data.cellsY,
                         &data.cellsZ, &data.latticeConstant) == 4;
  ok = ok && std::fscanf(f, "%lg %" SCNu64, &data.engine.time,
                         &data.engine.steps) == 2;
  ok = ok &&
       std::fscanf(f, "%" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64,
                   &data.engine.rngState[0], &data.engine.rngState[1],
                   &data.engine.rngState[2], &data.engine.rngState[3]) == 4;
  std::size_t vacancyCount = 0;
  ok = ok && std::fscanf(f, "%zu", &vacancyCount) == 1 &&
       vacancyCount < (1ULL << 32);
  for (std::size_t v = 0; ok && v < vacancyCount; ++v) {
    Vec3i p;
    ok = std::fscanf(f, "%d %d %d", &p.x, &p.y, &p.z) == 3;
    if (ok) data.vacancyOrder.push_back(p);
  }
  // The digit-block reader below skips newlines, so no separator
  // handling is needed here.
  if (ok && data.cellsX > 0 && data.cellsY > 0 && data.cellsZ > 0) {
    const std::size_t sites =
        2ULL * static_cast<std::size_t>(data.cellsX) * data.cellsY * data.cellsZ;
    data.species.reserve(sites);
    while (data.species.size() < sites) {
      const int c = std::fgetc(f);
      if (c == EOF) {
        ok = false;
        break;
      }
      if (c == '\n' || c == '\r') continue;
      if (c < '0' || c > '2') {
        ok = false;
        break;
      }
      data.species.push_back(static_cast<Species>(c - '0'));
    }
  } else {
    ok = false;
  }
  std::fclose(f);
  require(ok, "malformed checkpoint file: " + path);
  return data;
}

}  // namespace tkmc
