#include "kmc/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace tkmc {
namespace {

constexpr int kCurrentVersion = 3;

std::string encodeBody(const LatticeState& state, const SerialEngine& engine,
                       int version) {
  const BccLattice& lat = state.lattice();
  const SerialEngine::Checkpoint cp = engine.checkpoint();
  std::string body;
  body.reserve(static_cast<std::size_t>(lat.siteCount()) / (version >= 3 ? 2 : 1) +
               state.vacancies().size() * 12 + 256);
  char line[256];
  std::snprintf(line, sizeof(line), "tensorkmc-checkpoint %d\n", version);
  body += line;
  std::snprintf(line, sizeof(line), "%d %d %d %.17g\n", lat.cellsX(),
                lat.cellsY(), lat.cellsZ(), lat.latticeConstant());
  body += line;
  std::snprintf(line, sizeof(line), "%.17g %" PRIu64 "\n", cp.time, cp.steps);
  body += line;
  std::snprintf(line, sizeof(line),
                "%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                cp.rngState[0], cp.rngState[1], cp.rngState[2], cp.rngState[3]);
  body += line;
  std::snprintf(line, sizeof(line), "%zu\n", state.vacancies().size());
  body += line;
  for (const Vec3i& v : state.vacancies()) {
    std::snprintf(line, sizeof(line), "%d %d %d\n", v.x, v.y, v.z);
    body += line;
  }
  if (version >= 3) {
    // v3 occupation: CET-packed, four 2-bit species codes per byte in
    // site-id order, emitted as two lowercase hex digits per byte, 80
    // hex digits (160 sites) per line. Halves the body versus the
    // one-digit-per-site v1/v2 form and round-trips the packed store
    // without ever expanding to a dense array.
    static const char* kHex = "0123456789abcdef";
    std::uint8_t packed = 0;
    int slot = 0;
    std::size_t emitted = 0;
    state.forEachSite([&](BccLattice::SiteId, Species s) {
      packed = static_cast<std::uint8_t>(
          packed | (static_cast<unsigned>(s) << (2 * slot)));
      if (++slot == 4) {
        body += kHex[packed >> 4];
        body += kHex[packed & 0xf];
        packed = 0;
        slot = 0;
        if (++emitted % 40 == 0) body += '\n';
      }
    });
    if (slot != 0) {
      body += kHex[packed >> 4];
      body += kHex[packed & 0xf];
      ++emitted;
    }
    if (emitted % 40 != 0) body += '\n';
  } else {
    // v1/v2 occupation: one digit per site (0=Fe, 1=Cu, 2=vacancy),
    // 80/line.
    std::size_t written = 0;
    state.forEachSite([&](BccLattice::SiteId, Species s) {
      body += static_cast<char>('0' + static_cast<int>(s));
      if (++written % 80 == 0) body += '\n';
    });
    if (written % 80 != 0) body += '\n';
  }
  return body;
}

}  // namespace

void writeFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw IoError("cannot open checkpoint temp file for writing: " + tmp);
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fflush(f) == 0 &&
                  std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    throw IoError("failed writing checkpoint temp file: " + tmp);
  }
  std::error_code ec;
  if (std::filesystem::exists(path, ec))
    std::filesystem::rename(path, path + ".bak", ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw IoError("cannot rotate checkpoint backup for " + path + ": " +
                  ec.message());
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw IoError("cannot move checkpoint into place at " + path + ": " +
                  ec.message());
  }
}

namespace {

void saveWithVersion(const std::string& path, const LatticeState& state,
                     const SerialEngine& engine, int version) {
  std::string body = encodeBody(state, engine, version);
  // Injectable torn/bit-rotted write: flips a body byte after the CRC is
  // sealed (v2) or simply ships bad bytes (v1), exercising the load-time
  // detection and the .bak fallback.
  std::string footer;
  if (version >= 2) {
    char line[32];
    std::snprintf(line, sizeof(line), "crc32 %08x\n",
                  crc32(body.data(), body.size()));
    footer = line;
  }
  if (faultFires("checkpoint.corrupt_write") && !body.empty())
    body[body.size() / 2] ^= 0x01;
  writeFileAtomic(path, body + footer);
}

CheckpointData parseCheckpoint(const std::string& contents,
                               const std::string& path) {
  std::istringstream in(contents);
  std::string magic;
  int version = 0;
  bool ok = static_cast<bool>(in >> magic >> version) &&
            magic == "tensorkmc-checkpoint";
  if (!ok) throw IoError("not a tensorkmc checkpoint: " + path);
  if (version < 1 || version > 3)
    throw IoError("unsupported checkpoint version " +
                  std::to_string(version) + ": " + path);
  CheckpointData data;
  ok = static_cast<bool>(in >> data.cellsX >> data.cellsY >> data.cellsZ >>
                         data.latticeConstant);
  ok = ok && static_cast<bool>(in >> data.engine.time >> data.engine.steps);
  ok = ok && static_cast<bool>(
                 in >> data.engine.rngState[0] >> data.engine.rngState[1] >>
                 data.engine.rngState[2] >> data.engine.rngState[3]);
  std::size_t vacancyCount = 0;
  ok = ok && static_cast<bool>(in >> vacancyCount) &&
       vacancyCount < (1ULL << 32);
  for (std::size_t v = 0; ok && v < vacancyCount; ++v) {
    Vec3i p;
    ok = static_cast<bool>(in >> p.x >> p.y >> p.z);
    if (ok) data.vacancyOrder.push_back(p);
  }
  // The occupation readers below skip newlines, so no separator handling
  // is needed here. Box dimensions are bounded before any allocation is
  // sized from them: a corrupt header must degrade into IoError (which
  // the .bak fallback catches), never into std::length_error/bad_alloc
  // escaping from species.reserve(). The per-axis bound also keeps the
  // site-count product comfortably inside 64 bits.
  constexpr int kMaxCellsPerAxis = 1 << 20;  // far beyond any simulated box
  std::size_t sites = 0;
  if (ok && data.cellsX > 0 && data.cellsY > 0 && data.cellsZ > 0 &&
      data.cellsX <= kMaxCellsPerAxis && data.cellsY <= kMaxCellsPerAxis &&
      data.cellsZ <= kMaxCellsPerAxis) {
    sites =
        2ULL * static_cast<std::size_t>(data.cellsX) * data.cellsY * data.cellsZ;
    data.species.reserve(sites);
    if (version >= 3) {
      // Packed-hex body: each byte (two hex digits) carries four 2-bit
      // species codes, low slots first.
      auto hexValue = [](int c) {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      auto nextHex = [&](int& v) {
        int c;
        do {
          c = in.get();
        } while (c == '\n' || c == '\r');
        v = c == std::char_traits<char>::eof() ? -1 : hexValue(c);
        return v >= 0;
      };
      while (ok && data.species.size() < sites) {
        int hi = 0, lo = 0;
        ok = nextHex(hi) && nextHex(lo);
        if (!ok) break;
        const std::uint8_t byte = static_cast<std::uint8_t>((hi << 4) | lo);
        for (int slot = 0; slot < 4 && data.species.size() < sites; ++slot) {
          const int code = (byte >> (2 * slot)) & 3;
          if (code > 2) {
            ok = false;
            break;
          }
          data.species.push_back(static_cast<Species>(code));
        }
      }
    } else {
      while (data.species.size() < sites) {
        const int c = in.get();
        if (c == std::char_traits<char>::eof()) {
          ok = false;
          break;
        }
        if (c == '\n' || c == '\r') continue;
        if (c < '0' || c > '2') {
          ok = false;
          break;
        }
        data.species.push_back(static_cast<Species>(c - '0'));
      }
    }
  } else {
    ok = false;
  }
  if (!ok) {
    // Name the failure mode: a body that stops mid occupation line is
    // the signature of a torn/truncated file, worth distinguishing from
    // structural corruption when operators read recovery logs.
    if (sites > 0 && !data.species.empty() && data.species.size() < sites)
      throw IoError("checkpoint occupation truncated mid-line: decoded " +
                    std::to_string(data.species.size()) + " of " +
                    std::to_string(sites) + " sites: " + path);
    throw IoError("malformed checkpoint file: " + path);
  }
  return data;
}

}  // namespace

LatticeState CheckpointData::restoreState() const {
  LatticeState state(BccLattice(cellsX, cellsY, cellsZ, latticeConstant));
  if (species.size() != static_cast<std::size_t>(state.lattice().siteCount()))
    throw InvariantError("checkpoint species array does not match the box");
  // Atoms first, then vacancies in their recorded list order (the engine
  // addresses vacancies by index).
  for (std::size_t id = 0; id < species.size(); ++id)
    if (species[id] != Species::kVacancy)
      state.setSpecies(static_cast<BccLattice::SiteId>(id), species[id]);
  for (const Vec3i& v : vacancyOrder) {
    if (species[static_cast<std::size_t>(state.lattice().siteId(v))] !=
        Species::kVacancy)
      throw InvariantError(
          "checkpoint vacancy list disagrees with the occupation");
    state.setSpeciesAt(v, Species::kVacancy);
  }
  if (state.vacancies().size() != vacancyOrder.size())
    throw InvariantError("checkpoint vacancy count mismatch");
  return state;
}

void saveCheckpoint(const std::string& path, const LatticeState& state,
                    const SerialEngine& engine) {
  saveWithVersion(path, state, engine, kCurrentVersion);
}

void saveCheckpointV1(const std::string& path, const LatticeState& state,
                      const SerialEngine& engine) {
  saveWithVersion(path, state, engine, 1);
}

void saveCheckpointV2(const std::string& path, const LatticeState& state,
                      const SerialEngine& engine) {
  saveWithVersion(path, state, engine, 2);
}

CheckpointData loadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open checkpoint: " + path);
  std::string contents;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    contents.append(buffer, got);
  const bool readOk = std::ferror(f) == 0;
  std::fclose(f);
  if (!readOk) throw IoError("failed reading checkpoint: " + path);

  // Version 2 files end with a "crc32 <hex>" footer sealing everything
  // before it; verify integrity before parsing.
  int version = 0;
  if (std::sscanf(contents.c_str(), "tensorkmc-checkpoint %d", &version) == 1 &&
      version >= 2) {
    const std::string::size_type foot = contents.rfind("\ncrc32 ");
    if (foot == std::string::npos)
      throw IoError("checkpoint missing CRC32 footer (truncated?): " + path);
    const std::string body = contents.substr(0, foot + 1);
    unsigned stored = 0;
    if (std::sscanf(contents.c_str() + foot + 1, "crc32 %8x", &stored) != 1)
      throw IoError("checkpoint CRC32 footer unreadable: " + path);
    const std::uint32_t computed = crc32(body.data(), body.size());
    if (computed != stored) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "(stored %08x, computed %08x)",
                    stored, computed);
      throw IoError("checkpoint failed CRC32 check " + std::string(detail) +
                    ": " + path);
    }
    return parseCheckpoint(body, path);
  }
  return parseCheckpoint(contents, path);
}

CheckpointLoadResult loadCheckpointWithFallback(const std::string& path) {
  // Catch std::exception, not just tkmc::Error: a corrupt or truncated
  // body must never take the fallback down with it, whatever the parse
  // failure turned into (the reserve() guard above makes non-Error
  // escapes unlikely, this makes them impossible).
  std::string primaryError;
  try {
    return {loadCheckpoint(path), false};
  } catch (const std::exception& e) {
    primaryError = e.what();
  }
  const std::string bak = path + ".bak";
  try {
    return {loadCheckpoint(bak), true};
  } catch (const std::exception& e) {
    throw IoError("checkpoint unrecoverable: primary failed (" + primaryError +
                  "); backup failed (" + e.what() + ")");
  }
}

}  // namespace tkmc
