#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "lattice/lattice_state.hpp"
#include "lattice/vec3.hpp"
#include "tabulation/vet.hpp"

namespace tkmc {

/// Energy backend for AKMC propensity calculations.
///
/// For the vacancy at `center`, stateEnergies() returns the energy of the
/// jumping region in the initial state followed by the energies after
/// each of the `numFinal` candidate hops (vacancy exchanged with 1NN
/// target k). Only differences between entries are physically meaningful
/// (Eq. 2 uses E_f - E_i); absolute offsets cancel.
///
/// Implementations must be deterministic pure functions of the lattice
/// contents so that engines with different caching strategies produce
/// bit-identical trajectories (the Fig. 8 validation).
class EnergyModel {
 public:
  virtual ~EnergyModel() = default;

  virtual std::vector<double> stateEnergies(const LatticeState& state,
                                            Vec3i center, int numFinal) = 0;

  /// Backends built on the triple-encoding tables can evaluate from an
  /// already-gathered VET, which is what the vacancy cache feeds them.
  /// Backends without VET support (the direct reference path) keep the
  /// default and must be run with the cache disabled.
  virtual bool supportsVet() const { return false; }

  virtual std::vector<double> stateEnergiesFromVet(Vet& vet, int numFinal) {
    (void)vet;
    (void)numFinal;
    throw Error("this energy backend cannot evaluate from a VET");
  }

  /// Evaluates many vacancy systems in one dispatch. Result i holds the
  /// stateEnergies() vector of vets[i]; entries must be bit-identical to
  /// calling stateEnergiesFromVet(*vets[i], numFinal) one at a time, in
  /// order — engines rely on this to batch their propensity refreshes
  /// without perturbing trajectories. The loop-based default keeps
  /// non-batching backends (EAM, bond counting) working unchanged;
  /// accelerator backends override it to amortize kernel dispatch and
  /// weight movement over the whole batch.
  virtual std::vector<std::vector<double>> stateEnergiesBatch(
      std::span<Vet* const> vets, int numFinal) {
    std::vector<std::vector<double>> energies;
    energies.reserve(vets.size());
    for (Vet* vet : vets)
      energies.push_back(stateEnergiesFromVet(*vet, numFinal));
    return energies;
  }

  /// True when stateEnergies*/stateEnergiesBatch may be called from
  /// several threads at once (the threaded parallel backend dispatches
  /// one propensity batch per rank thread). Backends whose evaluation
  /// is a pure read of immutable tables opt in; anything with mutable
  /// scratch, device queues, or shared accumulators keeps the default
  /// and is serialized behind the engine's model mutex instead.
  virtual bool concurrentDispatchSafe() const { return false; }

  /// Human-readable backend name for logs and benches.
  virtual const char* name() const = 0;
};

}  // namespace tkmc
