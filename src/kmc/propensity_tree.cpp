#include "kmc/propensity_tree.hpp"

#include "common/error.hpp"

namespace tkmc {

PropensityTree::PropensityTree(int leaves) { resize(leaves); }

void PropensityTree::resize(int leaves) {
  require(leaves >= 0, "leaf count must be non-negative");
  leaves_ = leaves;
  base_ = 1;
  while (base_ < leaves) base_ <<= 1;
  if (leaves == 0) base_ = 1;
  nodes_.assign(static_cast<std::size_t>(2 * base_), 0.0);
}

void PropensityTree::update(int index, double value) {
  require(index >= 0 && index < leaves_, "leaf index out of range");
  ++updates_;
  std::size_t node = static_cast<std::size_t>(base_ + index);
  nodes_[node] = value;
  while (node > 1) {
    node >>= 1;
    nodes_[node] = nodes_[2 * node] + nodes_[2 * node + 1];
  }
}

double PropensityTree::leaf(int index) const {
  require(index >= 0 && index < leaves_, "leaf index out of range");
  return nodes_[static_cast<std::size_t>(base_ + index)];
}

double PropensityTree::total() const { return nodes_.size() > 1 ? nodes_[1] : 0.0; }

int PropensityTree::select(double target) const {
  require(leaves_ > 0, "cannot select from an empty tree");
  require(target >= 0.0, "selection target must be non-negative");
  ++selects_;
  std::size_t node = 1;
  while (node < static_cast<std::size_t>(base_)) {
    const double left = nodes_[2 * node];
    if (target < left) {
      node = 2 * node;
    } else {
      target -= left;
      node = 2 * node + 1;
    }
  }
  int index = static_cast<int>(node) - base_;
  // Guard against target == total() (can happen at the fp boundary):
  // walk back to the last non-empty leaf.
  if (index >= leaves_) index = leaves_ - 1;
  while (index > 0 && nodes_[static_cast<std::size_t>(base_ + index)] == 0.0)
    --index;
  return index;
}

int PropensityTree::selectLinear(double target) const {
  require(leaves_ > 0, "cannot select from an empty tree");
  require(target >= 0.0, "selection target must be non-negative");
  ++selects_;
  double cumulative = 0.0;
  for (int i = 0; i < leaves_; ++i) {
    cumulative += nodes_[static_cast<std::size_t>(base_ + i)];
    if (target < cumulative) return i;
  }
  // target fell beyond the last cumulative due to rounding (the fp
  // boundary target == total()); walk back from the last leaf to the
  // last non-empty one, exactly as select() does, so both paths land on
  // the same vacancy and consume the RNG stream identically.
  int index = leaves_ - 1;
  while (index > 0 && nodes_[static_cast<std::size_t>(base_ + index)] == 0.0)
    --index;
  return index;
}

}  // namespace tkmc
