#include "kmc/propensity_tree.hpp"

#include "common/error.hpp"

namespace tkmc {

PropensityTree::PropensityTree(int leaves) { resize(leaves); }

void PropensityTree::resizeForest(int types, int leaves) {
  require(types >= 1, "type count must be positive");
  require(leaves >= 0, "leaf count must be non-negative");
  types_ = types;
  leaves_ = leaves;
  base_ = 1;
  while (base_ < leaves) base_ <<= 1;
  if (leaves == 0) base_ = 1;
  nodes_.assign(static_cast<std::size_t>(types_) *
                    static_cast<std::size_t>(2 * base_),
                0.0);
}

void PropensityTree::updateTyped(int type, int index, double value) {
  require(type >= 0 && type < types_, "event type out of range");
  require(index >= 0 && index < leaves_, "leaf index out of range");
  ++updates_;
  const std::size_t b = block(type);
  std::size_t node = static_cast<std::size_t>(base_ + index);
  nodes_[b + node] = value;
  while (node > 1) {
    node >>= 1;
    nodes_[b + node] = nodes_[b + 2 * node] + nodes_[b + 2 * node + 1];
  }
}

double PropensityTree::leafTyped(int type, int index) const {
  require(type >= 0 && type < types_, "event type out of range");
  require(index >= 0 && index < leaves_, "leaf index out of range");
  return nodes_[block(type) + static_cast<std::size_t>(base_ + index)];
}

double PropensityTree::typeTotal(int type) const {
  require(type >= 0 && type < types_, "event type out of range");
  return nodes_.size() > 1 ? nodes_[block(type) + 1] : 0.0;
}

double PropensityTree::total() const {
  if (nodes_.size() <= 1) return 0.0;
  double sum = 0.0;
  for (int t = 0; t < types_; ++t) sum += nodes_[block(t) + 1];
  return sum;
}

int PropensityTree::selectInSubtree(int type, double target) const {
  const std::size_t b = block(type);
  std::size_t node = 1;
  while (node < static_cast<std::size_t>(base_)) {
    const double left = nodes_[b + 2 * node];
    if (target < left) {
      node = 2 * node;
    } else {
      target -= left;
      node = 2 * node + 1;
    }
  }
  int index = static_cast<int>(node) - base_;
  // Guard against target == subtree total (can happen at the fp
  // boundary): walk back to the last non-empty leaf.
  if (index >= leaves_) index = leaves_ - 1;
  while (index > 0 &&
         nodes_[b + static_cast<std::size_t>(base_ + index)] == 0.0)
    --index;
  return index;
}

PropensityTree::Pick PropensityTree::selectTyped(double target) const {
  require(leaves_ > 0, "cannot select from an empty tree");
  require(target >= 0.0, "selection target must be non-negative");
  ++selects_;
  // Pick the type whose cumulative band holds `target`, left to right.
  double before = 0.0;
  int type = -1;
  for (int t = 0; t < types_; ++t) {
    const double tt = typeTotal(t);
    if (target < before + tt) {
      type = t;
      break;
    }
    before += tt;
  }
  if (type < 0) {
    // target fell past the last band (fp boundary, target == total()):
    // walk back to the last type with any propensity and hand its
    // subtree the residue relative to the band start — with one type
    // this passes `target` through unchanged, so the subtree's own
    // walk-back reproduces the historical single-tree behavior exactly.
    type = types_ - 1;
    while (type > 0 && typeTotal(type) == 0.0) --type;
    before = 0.0;
    for (int t = 0; t < type; ++t) before += typeTotal(t);
  }
  return {type, selectInSubtree(type, target - before)};
}

PropensityTree::Pick PropensityTree::selectLinearTyped(double target) const {
  require(leaves_ > 0, "cannot select from an empty tree");
  require(target >= 0.0, "selection target must be non-negative");
  ++selects_;
  double cumulative = 0.0;
  for (int t = 0; t < types_; ++t) {
    const std::size_t b = block(t);
    for (int i = 0; i < leaves_; ++i) {
      cumulative += nodes_[b + static_cast<std::size_t>(base_ + i)];
      if (target < cumulative) return {t, i};
    }
  }
  // target fell beyond the last cumulative due to rounding (the fp
  // boundary target == total()); walk back from the last leaf of the
  // last type across empty leaves — crossing type boundaries if whole
  // trailing subtrees are empty — exactly mirroring selectTyped(), so
  // both paths land on the same event and consume the RNG stream
  // identically.
  int type = types_ - 1;
  int index = leaves_ - 1;
  while ((type > 0 || index > 0) &&
         nodes_[block(type) + static_cast<std::size_t>(base_ + index)] == 0.0) {
    if (index > 0) {
      --index;
    } else {
      --type;
      index = leaves_ - 1;
    }
  }
  return {type, index};
}

}  // namespace tkmc
