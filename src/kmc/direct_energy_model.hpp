#pragma once

#include <vector>

#include "kmc/energy_model.hpp"
#include "nnp/network.hpp"
#include "tabulation/cet.hpp"
#include "tabulation/feature_table.hpp"

namespace tkmc {

/// Reference NNP backend *without* the triple-encoding machinery.
///
/// Every energy evaluation walks the global lattice array directly:
/// region sites are enumerated geometrically, every neighbour species is
/// read from the LatticeState (with the candidate hop applied as an
/// overlay), and descriptor terms come from the same precomputed table.
/// This is the OpenKMC-style evaluation path of the Fig. 8 validation:
/// trajectories must match the TET + vacancy-cache engine bit for bit.
///
/// Deliberately shares no CET/NET/VET instances with the fast path; it
/// derives its geometry from scratch in the constructor.
class DirectEnergyModel : public EnergyModel {
 public:
  DirectEnergyModel(double latticeConstant, double cutoff,
                    const Network& network);

  std::vector<double> stateEnergies(const LatticeState& state, Vec3i center,
                                    int numFinal) override;

  const char* name() const override { return "nnp-direct"; }

 private:
  // Region site relative coordinates in canonical order and the
  // neighbour offsets with distance indices, rebuilt from geometry.
  std::vector<Vec3i> regionSites_;
  std::vector<Vec3i> offsets_;
  std::vector<int> offsetDistIndex_;
  FeatureTable table_;
  const Network& network_;
  std::vector<double> featureBuffer_;
  std::vector<double> energyBuffer_;

  static FeatureTable makeTable(double latticeConstant, double cutoff);
};

}  // namespace tkmc
