#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kmc/energy_model.hpp"
#include "kmc/event_catalog/event_catalog.hpp"
#include "kmc/propensity_tree.hpp"
#include "kmc/rate_calculator.hpp"
#include "kmc/vacancy_cache.hpp"
#include "lattice/lattice_state.hpp"
#include "tabulation/cet.hpp"

namespace tkmc {

/// AKMC engine configuration.
struct KmcConfig {
  double temperature = 573.0;      // kelvin (paper's RPV thermal aging)
  double tEnd = 1e-7;              // simulated seconds
  std::uint64_t maxSteps = ~0ULL;  // hard step cap
  std::uint64_t seed = 12345;
  bool useVacancyCache = true;     // Sec. 3.2 mechanism
  bool useTree = true;             // tree vs linear propensity selection
};

/// Serial AKMC engine (paper Sec. 2.1 flow with the Sec. 3 innovations).
///
/// Per step: refresh propensities of dirty vacancy systems for every
/// event type of the catalog, select an (event type, vacancy) from the
/// propensity forest and a candidate within it, draw the residence-time
/// increment (Eq. 3), apply the exchange, and propagate the change
/// through the vacancy cache. With the cache disabled every vacancy
/// system is re-gathered and re-evaluated each step — the reference
/// configuration of the Fig. 8 validation, which must produce a
/// bit-identical trajectory.
///
/// All physics dispatches through the EventCatalog: with the default
/// VacancyHopCatalog (one type) the engine reproduces the historical
/// hardcoded eight-hop trajectories bit-for-bit.
class SerialEngine {
 public:
  /// `catalog` must outlive the engine; null selects the process-wide
  /// default (the historical vacancy-hop physics).
  SerialEngine(LatticeState& state, EnergyModel& model, const Cet& cet,
               KmcConfig config, const EventCatalog* catalog = nullptr);

  struct StepResult {
    bool advanced = false;  // false when no event is possible
    double dt = 0.0;
    Vec3i from{};
    Vec3i to{};
    int vacancyIndex = -1;
    int direction = -1;
    int eventType = -1;
  };

  /// Executes one KMC event.
  StepResult step();

  /// Runs until tEnd, maxSteps, or a zero-propensity state. Returns the
  /// number of events executed.
  std::uint64_t run();

  /// Optional per-event observer (called after each applied hop).
  void setObserver(std::function<void(const SerialEngine&, const StepResult&)> cb) {
    observer_ = std::move(cb);
  }

  double time() const { return time_; }
  std::uint64_t steps() const { return steps_; }
  const LatticeState& state() const { return state_; }
  double totalPropensity() const { return tree_.total(); }
  const EventCatalog& catalog() const { return *catalog_; }

  /// Committed events per catalog event type (index = type id).
  const std::vector<std::uint64_t>& eventsByType() const {
    return eventsByType_;
  }

  /// Instrumentation: energy-backend invocations (propensity refreshes).
  std::uint64_t energyEvaluations() const { return energyEvals_; }
  const VacancyCache& cache() const { return cache_; }
  const PropensityTree& tree() const { return tree_; }

  /// Publishes the engine's cumulative counters (steps, energy
  /// evaluations, per-event-type counts, cache hit/miss/eviction rates,
  /// tree operation counts, propensity total) as metrics in the global
  /// telemetry registry. No-op while telemetry is disabled.
  void publishTelemetry() const;

  /// Engine-side checkpoint state: together with the lattice occupation
  /// this is everything needed to resume a trajectory bit-exactly (the
  /// cache and propensities are pure functions of the lattice).
  struct Checkpoint {
    double time = 0.0;
    std::uint64_t steps = 0;
    std::array<std::uint64_t, 4> rngState{};
  };
  Checkpoint checkpoint() const { return {time_, steps_, rng_.state()}; }

  /// Restores a checkpoint taken from an engine over the same lattice
  /// contents (the caller restores the LatticeState first).
  void restore(const Checkpoint& cp);

 private:
  void refreshDirty();
  void resizePropensities(int vacancies);
  /// Evaluates one (type, vacancy) propensity row — zero when the type
  /// does not apply to the site's class — and rejects non-finite or
  /// negative totals with a typed InvariantError (flight-recorder
  /// breadcrumb included), so a poisoned rate cannot silently corrupt
  /// the trajectory.
  const JumpRates& evaluateInto(int type, int v, int siteClass,
                                const Vet& vet,
                                const std::vector<double>& energies);

  LatticeState& state_;
  EnergyModel& model_;
  const Cet& cet_;
  KmcConfig config_;
  const EventCatalog* catalog_;
  Rng rng_;
  VacancyCache cache_;
  std::vector<std::vector<JumpRates>> rates_;  // [event type][vacancy]
  std::vector<bool> dirtyNoCache_;  // refresh flags when cache disabled
  std::vector<int> dirtyScratch_;   // dirty indices of one batched refresh
  std::vector<Vet*> vetScratch_;    // their cached VETs, same order
  PropensityTree tree_;
  double time_ = 0.0;
  std::uint64_t steps_ = 0;
  std::uint64_t energyEvals_ = 0;
  std::vector<std::uint64_t> eventsByType_;
  std::vector<std::string> eventTypeMetricNames_;  // kmc.events.by_type.*
  std::function<void(const SerialEngine&, const StepResult&)> observer_;
};

}  // namespace tkmc
