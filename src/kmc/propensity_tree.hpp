#pragma once

#include <cstdint>
#include <vector>

namespace tkmc {

/// Binary sum trees over per-site total propensities — the paper's
/// "tree strategy for propensity update" (Sec. 4.4), extended to a
/// forest of per-event-type subtrees under one root.
///
/// Each event type owns an identical power-of-two subtree over the same
/// leaf count; the root total is the sum of the subtree roots. Selection
/// first picks a type by cumulative subtree totals, then walks that
/// type's subtree — so heterogeneous catalogs pay update cost only in
/// the subtrees whose rates actually changed, and a quiet event class
/// costs nothing per step. With a single type the forest arithmetic
/// degenerates exactly to the historical single tree (same partial sums,
/// same fp-boundary walk-backs), which the bit-identical trajectory
/// tests rely on.
///
/// update() is O(log n) and select() walks one subtree in O(log n),
/// against the O(n) linear alternative kept for the ablation bench.
/// Internal node values are always recomputed as the sum of their two
/// children, so the stored partial sums are a pure function of the leaf
/// values regardless of update order.
class PropensityTree {
 public:
  explicit PropensityTree(int leaves = 0);

  /// A selected (event type, leaf) pair.
  struct Pick {
    int type = 0;
    int index = 0;
  };

  /// Re-sizes to a single-type tree of `leaves` leaves, all zero.
  void resize(int leaves) { resizeForest(1, leaves); }

  /// Re-sizes to `types` per-event-type subtrees of `leaves` leaves
  /// each, all zero.
  void resizeForest(int types, int leaves);

  int leafCount() const { return leaves_; }
  int typeCount() const { return types_; }

  /// Sets leaf `index` of the single-type tree (type 0).
  void update(int index, double value) { updateTyped(0, index, value); }

  /// Sets leaf `index` of type `type`'s subtree and repairs the path to
  /// that subtree's root.
  void updateTyped(int type, int index, double value);

  double leaf(int index) const { return leafTyped(0, index); }
  double leafTyped(int type, int index) const;

  /// Total propensity (sum of the subtree roots).
  double total() const;

  /// Root propensity of one type's subtree.
  double typeTotal(int type) const;

  /// Single-type select: the leaf containing cumulative position
  /// `target` in [0, total()). Deterministic left-to-right walk.
  int select(double target) const { return selectTyped(target).index; }

  /// Forest select: picks the type whose cumulative band contains
  /// `target` (left-to-right over type ids), then the leaf within that
  /// type's subtree. At the fp boundary (target == total()) it walks
  /// back to the last type with a non-zero subtree, then relies on the
  /// subtree's own last-non-empty-leaf walk-back — the exact historical
  /// behavior when only one type exists.
  Pick selectTyped(double target) const;

  /// Linear-scan equivalent (ablation baseline): type-major cumulative
  /// walk over the same leaves, with the same boundary walk-back.
  int selectLinear(double target) const {
    return selectLinearTyped(target).index;
  }
  Pick selectLinearTyped(double target) const;

  // Lifetime operation counters (telemetry snapshot feed); they survive
  // resize() so a trajectory's totals accumulate across restores.
  std::uint64_t updateCount() const { return updates_; }
  std::uint64_t selectCount() const { return selects_; }

  /// Bytes held by the heap arrays (memory snapshot feed).
  std::size_t memoryBytes() const { return nodes_.size() * sizeof(double); }

 private:
  /// First heap slot of type `t`'s subtree block (1-indexed inside).
  std::size_t block(int t) const {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(2 * base_);
  }
  int selectInSubtree(int type, double target) const;

  int leaves_ = 0;
  int types_ = 1;
  int base_ = 0;  // first leaf slot within a subtree (power-of-two layout)
  std::vector<double> nodes_;  // per-type 1-indexed heap blocks
  std::uint64_t updates_ = 0;
  mutable std::uint64_t selects_ = 0;  // select() is logically const
};

}  // namespace tkmc
