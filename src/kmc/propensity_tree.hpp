#pragma once

#include <cstdint>
#include <vector>

namespace tkmc {

/// Binary sum tree over per-vacancy total propensities — the paper's
/// "tree strategy for propensity update" (Sec. 4.4).
///
/// update() is O(log n) and select() walks the tree in O(log n), against
/// the O(n) linear alternative kept for the ablation bench. Internal node
/// values are always recomputed as the sum of their two children, so the
/// stored partial sums are a pure function of the leaf values regardless
/// of update order — a property the bit-identical trajectory tests rely
/// on.
class PropensityTree {
 public:
  explicit PropensityTree(int leaves = 0);

  /// Re-sizes to `leaves` leaves, all zero.
  void resize(int leaves);

  int leafCount() const { return leaves_; }

  /// Sets leaf `index` and repairs the path to the root.
  void update(int index, double value);

  double leaf(int index) const;

  /// Total propensity (root value).
  double total() const;

  /// Finds the leaf containing cumulative position `target` in
  /// [0, total()). Deterministic left-to-right walk.
  int select(double target) const;

  /// Linear-scan equivalent over the same leaves (ablation baseline).
  int selectLinear(double target) const;

  // Lifetime operation counters (telemetry snapshot feed); they survive
  // resize() so a trajectory's totals accumulate across restores.
  std::uint64_t updateCount() const { return updates_; }
  std::uint64_t selectCount() const { return selects_; }

  /// Bytes held by the heap array (memory snapshot feed).
  std::size_t memoryBytes() const { return nodes_.size() * sizeof(double); }

 private:
  int leaves_ = 0;
  int base_ = 0;                // first leaf slot (power-of-two layout)
  std::vector<double> nodes_;   // 1-indexed heap layout
  std::uint64_t updates_ = 0;
  mutable std::uint64_t selects_ = 0;  // select() is logically const
};

}  // namespace tkmc
