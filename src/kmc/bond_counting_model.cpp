#include "kmc/bond_counting_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "kmc/nnp_energy_model.hpp"

namespace tkmc {
namespace {

int pairSlot(Species a, Species b) {
  return static_cast<int>(a) + static_cast<int>(b);  // FeFe=0 FeCu=1 CuCu=2
}

}  // namespace

BondCountingModel::BondCountingModel(const Cet& cet, const Net& net,
                                     Parameters params)
    : cet_(cet), net_(net), params_(params) {
  // Identify the 1NN and 2NN shells among the NET's discrete distances.
  const double a = cet.latticeConstant();
  const double d1 = a * std::sqrt(3.0) / 2.0;
  for (std::size_t i = 0; i < net.distances().size(); ++i) {
    if (std::abs(net.distances()[i] - d1) < 1e-9)
      firstShellIndex_ = static_cast<int>(i);
    if (std::abs(net.distances()[i] - a) < 1e-9)
      secondShellIndex_ = static_cast<int>(i);
  }
  require(firstShellIndex_ >= 0 && secondShellIndex_ >= 0,
          "bond counting needs a cutoff covering 1NN and 2NN shells");
}

double BondCountingModel::bondEnergy(int distIndex, Species a, Species b) const {
  if (distIndex == firstShellIndex_)
    return params_.eps1[static_cast<std::size_t>(pairSlot(a, b))];
  if (distIndex == secondShellIndex_)
    return params_.eps2[static_cast<std::size_t>(pairSlot(a, b))];
  return 0.0;  // bonds beyond 2NN carry no energy in this model
}

double BondCountingModel::regionEnergy(const Vet& vet, int state) const {
  double total = 0.0;
  for (int site = 0; site < cet_.nRegion(); ++site) {
    const Species self = stateSpecies(vet, state, site);
    if (self == Species::kVacancy) continue;
    double bonds = 0.0;
    for (const Net::Entry& e : net_.neighbors(site)) {
      if (e.distIndex != firstShellIndex_ && e.distIndex != secondShellIndex_)
        continue;
      const Species nb = stateSpecies(vet, state, e.siteId);
      if (nb == Species::kVacancy) continue;
      bonds += bondEnergy(e.distIndex, self, nb);
    }
    total += 0.5 * bonds;
  }
  return total;
}

std::vector<double> BondCountingModel::stateEnergies(const LatticeState& state,
                                                     Vec3i center,
                                                     int numFinal) {
  Vet vet = Vet::gather(cet_, state, center);
  return stateEnergiesFromVet(vet, numFinal);
}

std::vector<double> BondCountingModel::stateEnergiesFromVet(Vet& vet,
                                                            int numFinal) {
  std::vector<double> energies(1 + static_cast<std::size_t>(numFinal));
  for (int s = 0; s <= numFinal; ++s)
    energies[static_cast<std::size_t>(s)] = regionEnergy(vet, s);
  return energies;
}

}  // namespace tkmc
