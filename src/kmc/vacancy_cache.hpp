#pragma once

#include <cstdint>
#include <vector>

#include "lattice/lattice_state.hpp"
#include "tabulation/cet.hpp"
#include "tabulation/vet.hpp"

namespace tkmc {

class EventCatalog;

/// Vacancy-cache mechanism (paper Sec. 3.2).
///
/// Instead of the OpenKMC "cache all" strategy (per-atom property arrays
/// spanning the whole domain), only vacancy systems are cached: one VET
/// per vacancy. After a hop, the two changed sites are pushed into every
/// cached VET they appear in, and those systems are flagged dirty so the
/// next propensity calculation refreshes their rates. Full gathers from
/// the big lattice array happen only at initialization and for the hopped
/// vacancy itself.
class VacancyCache {
 public:
  VacancyCache(const Cet& cet, const BccLattice& lattice);

  /// Attaches the event catalog whose siteClass() classifies cached
  /// centers. Site classes are a pure function of the (wrapped) center,
  /// so they are cached alongside the VET and refreshed only when a
  /// vacancy moves — not on every propensity refresh. Null (the default)
  /// classifies everything as class 0.
  void setCatalog(const EventCatalog* catalog) { catalog_ = catalog; }

  /// Discards everything and gathers a VET for every vacancy of `state`.
  /// All entries start dirty.
  void rebuild(const LatticeState& state);

  int size() const { return static_cast<int>(entries_.size()); }

  Vet& vet(int index) { return entries_[static_cast<std::size_t>(index)].vet; }
  Vec3i center(int index) const {
    return entries_[static_cast<std::size_t>(index)].center;
  }
  /// Cached catalog site class of the entry's center (0 if no catalog).
  int siteClass(int index) const {
    return entries_[static_cast<std::size_t>(index)].siteClass;
  }

  bool isDirty(int index) const {
    return entries_[static_cast<std::size_t>(index)].dirty;
  }
  void clearDirty(int index) {
    entries_[static_cast<std::size_t>(index)].dirty = false;
  }
  void markDirty(int index) {
    entries_[static_cast<std::size_t>(index)].dirty = true;
  }

  /// Propagates an applied hop: `state` must already reflect the move of
  /// vacancy `vacIndex` from `from` to `to`. The hopped vacancy's system
  /// is re-gathered; every other cached system containing either site is
  /// patched in place and marked dirty.
  void applyHop(const LatticeState& state, int vacIndex, Vec3i from, Vec3i to);

  /// Number of full VET gathers performed (instrumentation).
  std::uint64_t gatherCount() const { return gathers_; }

  // Cache-effectiveness counters (telemetry snapshot feed). A *hit* is a
  // cached system updated by patching the changed sites in place; a
  // *miss* is a steady-state full re-gather from the lattice (the hopped
  // vacancy's system in applyHop). The bulk gathers of rebuild() —
  // initialization and checkpoint restore — are cold fills, not cache
  // decisions, so they appear in gatherCount() but not in missCount();
  // counting them as misses skewed kmc.cache.hit_rate after every
  // rebuild/restore. An *eviction* is a cached entry discarded by
  // rebuild().
  std::uint64_t hitCount() const { return hits_; }
  std::uint64_t missCount() const { return misses_; }
  std::uint64_t evictionCount() const { return evictions_; }
  /// hits / (hits + misses); 0 before any activity.
  double hitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }

  /// Bytes held by the cache (the paper's "VAC Cache" Table 1 entry:
  /// species byte + 4-byte global site id per CET slot, per vacancy).
  std::size_t memoryBytes() const;

 private:
  struct Entry {
    Vec3i center;  // wrapped vacancy coordinate
    Vet vet;
    int siteClass = 0;
    bool dirty = true;
  };

  int classify(Vec3i center) const;

  const Cet& cet_;
  const BccLattice& lattice_;
  const EventCatalog* catalog_ = nullptr;
  std::vector<Entry> entries_;
  std::uint64_t gathers_ = 0;  // all full gathers (rebuild + applyHop)
  std::uint64_t misses_ = 0;   // steady-state re-gathers only (applyHop)
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tkmc
