#pragma once

#include <array>

#include "kmc/energy_model.hpp"
#include "tabulation/cet.hpp"
#include "tabulation/net.hpp"

namespace tkmc {

/// Tabulated microkinetic ("bond-counting") energy backend — the paper's
/// *first approach* to AKMC parameterization (Sec. 1): interaction
/// parameters are fixed tabulated pair energies instead of on-the-fly
/// potential evaluations. Fast and mesoscale-friendly, but physically
/// limited — exactly the trade-off TensorKMC's NNP backend removes.
///
/// E_atom = 1/2 [ sum over 1NN bonds eps1(s_i, s_j)
///              + sum over 2NN bonds eps2(s_i, s_j) ].
///
/// Runs on the same triple-encoding machinery as every other backend, so
/// it slots into the serial and parallel engines unchanged.
/// Pair energies in eV/bond, indexed FeFe / FeCu / CuCu. Defaults give
/// bcc Fe-Cu a positive mixing enthalpy (Cu demixes, as in the
/// thermal-aging literature) with weaker second-shell bonds.
struct BondCountingParameters {
  std::array<double, 3> eps1{-0.60, -0.55, -0.58};
  std::array<double, 3> eps2{-0.30, -0.275, -0.29};
};

class BondCountingModel : public EnergyModel {
 public:
  using Parameters = BondCountingParameters;

  BondCountingModel(const Cet& cet, const Net& net, Parameters params = {});

  std::vector<double> stateEnergies(const LatticeState& state, Vec3i center,
                                    int numFinal) override;

  std::vector<double> stateEnergiesFromVet(Vet& vet, int numFinal) override;

  bool supportsVet() const override { return true; }

  const char* name() const override { return "bond-counting"; }

  const Parameters& parameters() const { return params_; }

 private:
  double bondEnergy(int distIndex, Species a, Species b) const;
  double regionEnergy(const Vet& vet, int state) const;

  const Cet& cet_;
  const Net& net_;
  Parameters params_;
  int firstShellIndex_ = -1;
  int secondShellIndex_ = -1;
};

}  // namespace tkmc
