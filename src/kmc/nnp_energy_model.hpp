#pragma once

#include <vector>

#include "kmc/energy_model.hpp"
#include "nnp/network.hpp"
#include "tabulation/cet.hpp"
#include "tabulation/net.hpp"
#include "tabulation/region_features.hpp"
#include "tabulation/vet.hpp"

namespace tkmc {

/// The TensorKMC energy backend: triple-encoding tabulation feeding the
/// neural network potential.
///
/// Per call: one VET gather (the only access to the big lattice array),
/// tabulated feature evaluation for the initial and final states (Eq. 6),
/// a batched network forward, and per-state sums over the jumping region
/// with vacancy sites masked out.
class NnpEnergyModel : public EnergyModel {
 public:
  /// All references must outlive the model.
  NnpEnergyModel(const Cet& cet, const Net& net, const FeatureTable& table,
                 const Network& network);

  std::vector<double> stateEnergies(const LatticeState& state, Vec3i center,
                                    int numFinal) override;

  /// Energy evaluation from an already-gathered VET (used by engines that
  /// maintain VETs incrementally through the vacancy cache).
  std::vector<double> stateEnergiesFromVet(Vet& vet, int numFinal) override;

  /// Batched evaluation: features of every system are concatenated and
  /// put through one network forward. forwardBatch() is row-independent
  /// and the reductions run in the same order, so results are
  /// bit-identical to per-system calls.
  std::vector<std::vector<double>> stateEnergiesBatch(
      std::span<Vet* const> vets, int numFinal) override;

  bool supportsVet() const override { return true; }

  const char* name() const override { return "nnp-tet"; }

  const Cet& cet() const { return cet_; }

 private:
  const Cet& cet_;
  const Net& net_;
  const Network& network_;
  RegionFeatures features_;
  // Scratch reused across calls.
  std::vector<double> featureBuffer_;
  std::vector<double> energyBuffer_;
  std::vector<double> systemFeatureScratch_;  // one system, batched path
};

/// Species of CET site `siteId` in state `state` (0 = initial, k > 0 =
/// after the hop to jump target k), given the initial-state VET. Shared
/// by every backend so masking logic cannot diverge.
inline Species stateSpecies(const Vet& vet, int state, int siteId) {
  if (state == 0) return vet[siteId];
  const int target = Cet::jumpTargetId(state - 1);
  if (siteId == 0) return vet[target];
  if (siteId == target) return vet[0];
  return vet[siteId];
}

}  // namespace tkmc
