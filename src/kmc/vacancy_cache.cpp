#include "kmc/vacancy_cache.hpp"

#include "common/error.hpp"
#include "kmc/event_catalog/event_catalog.hpp"

namespace tkmc {

VacancyCache::VacancyCache(const Cet& cet, const BccLattice& lattice)
    : cet_(cet), lattice_(lattice) {}

int VacancyCache::classify(Vec3i center) const {
  return catalog_ ? catalog_->siteClass(lattice_, center) : 0;
}

void VacancyCache::rebuild(const LatticeState& state) {
  evictions_ += entries_.size();
  entries_.clear();
  entries_.reserve(state.vacancies().size());
  for (const Vec3i& v : state.vacancies()) {
    Entry e;
    e.center = state.lattice().wrap(v);
    e.vet = Vet::gather(cet_, state, e.center);
    e.siteClass = classify(e.center);
    e.dirty = true;
    entries_.push_back(std::move(e));
    ++gathers_;
  }
}

void VacancyCache::applyHop(const LatticeState& state, int vacIndex,
                            Vec3i from, Vec3i to) {
  require(vacIndex >= 0 && vacIndex < size(), "vacancy index out of range");
  const Vec3i fromW = lattice_.wrap(from);
  const Vec3i toW = lattice_.wrap(to);
  const Species atFrom = state.speciesAt(fromW);  // the migrated atom

  for (int i = 0; i < size(); ++i) {
    Entry& e = entries_[static_cast<std::size_t>(i)];
    if (i == vacIndex) {
      // The hopped vacancy's whole neighbourhood shifted: re-gather.
      e.center = toW;
      e.vet = Vet::gather(cet_, state, e.center);
      e.siteClass = classify(e.center);
      e.dirty = true;
      ++gathers_;
      ++misses_;
      continue;
    }
    // Patch the two changed sites into any system that contains them.
    bool touched = false;
    const int idFrom = cet_.idOf(lattice_.minimumImage(e.center, fromW));
    if (idFrom >= 0) {
      e.vet.set(idFrom, atFrom);
      touched = true;
    }
    const int idTo = cet_.idOf(lattice_.minimumImage(e.center, toW));
    if (idTo >= 0) {
      e.vet.set(idTo, Species::kVacancy);
      touched = true;
    }
    if (touched) {
      e.dirty = true;
      ++hits_;
    }
  }
}

std::size_t VacancyCache::memoryBytes() const {
  // Per CET slot: one species byte in the VET plus a 4-byte cached global
  // site id (the layout the paper's Table 1 "VAC Cache" row reflects).
  return entries_.size() *
         static_cast<std::size_t>(cet_.nAll()) * (sizeof(Species) + 4);
}

}  // namespace tkmc
