#include "kmc/direct_energy_model.hpp"

#include <cmath>
#include <map>

#include "common/error.hpp"
#include "lattice/bcc_lattice.hpp"
#include "tabulation/net.hpp"

namespace tkmc {

FeatureTable DirectEnergyModel::makeTable(double latticeConstant,
                                          double cutoff) {
  // Same unique-distance enumeration the NET uses, derived independently.
  const BccLattice geometry(4, 4, 4, latticeConstant);
  std::map<std::int64_t, int> norms;
  for (const Vec3i& d : geometry.offsetsWithinCutoff(cutoff))
    norms.emplace(d.norm2(), 0);
  std::vector<double> distances;
  distances.reserve(norms.size());
  for (auto& [n2, idx] : norms) {
    idx = static_cast<int>(distances.size());
    distances.push_back(std::sqrt(static_cast<double>(n2)) * latticeConstant / 2);
  }
  return FeatureTable(distances, standardPqSets());
}

DirectEnergyModel::DirectEnergyModel(double latticeConstant, double cutoff,
                                     const Network& network)
    : table_(makeTable(latticeConstant, cutoff)), network_(network) {
  require(network.inputDim() == table_.numPq() * kNumElements,
          "network input dimension must match the descriptor");
  const Cet cet(latticeConstant, cutoff);
  regionSites_.assign(cet.sites().begin(),
                      cet.sites().begin() + cet.nRegion());
  const BccLattice geometry(4, 4, 4, latticeConstant);
  offsets_ = geometry.offsetsWithinCutoff(cutoff);
  std::map<std::int64_t, int> norms;
  for (const Vec3i& d : offsets_) norms.emplace(d.norm2(), 0);
  int next = 0;
  for (auto& [n2, idx] : norms) idx = next++;
  offsetDistIndex_.reserve(offsets_.size());
  for (const Vec3i& d : offsets_) offsetDistIndex_.push_back(norms.at(d.norm2()));
}

std::vector<double> DirectEnergyModel::stateEnergies(const LatticeState& state,
                                                     Vec3i center,
                                                     int numFinal) {
  require(state.speciesAt(center) == Species::kVacancy,
          "direct evaluation must be centred on a vacancy");
  const int nRegion = static_cast<int>(regionSites_.size());
  const int numPq = table_.numPq();
  const int d = numPq * kNumElements;
  const int numStates = 1 + numFinal;
  const auto& jumps = BccLattice::firstNeighborOffsets();

  featureBuffer_.assign(static_cast<std::size_t>(numStates) * nRegion * d, 0.0);
  for (int s = 0; s < numStates; ++s) {
    // Hop overlay: in state s > 0 the vacancy has moved to jump target
    // s - 1; the two affected absolute coordinates swap species.
    const Vec3i targetAbs =
        s > 0 ? center + jumps[static_cast<std::size_t>(s - 1)] : center;
    auto overlaySpecies = [&](Vec3i p) {
      if (s > 0) {
        const Vec3i pw = state.lattice().wrap(p);
        if (pw == state.lattice().wrap(center))
          return state.speciesAt(targetAbs);
        if (pw == state.lattice().wrap(targetAbs)) return Species::kVacancy;
      }
      return state.speciesAt(p);
    };
    for (int site = 0; site < nRegion; ++site) {
      const Vec3i abs = center + regionSites_[static_cast<std::size_t>(site)];
      double* f = featureBuffer_.data() +
                  (static_cast<std::size_t>(s) * nRegion + site) * d;
      for (std::size_t o = 0; o < offsets_.size(); ++o) {
        const Species sp = overlaySpecies(abs + offsets_[o]);
        if (sp == Species::kVacancy) continue;
        const double* row = table_.row(offsetDistIndex_[o]);
        double* block = f + static_cast<int>(sp) * numPq;
        for (int k = 0; k < numPq; ++k) block[k] += row[k];
      }
    }
  }

  energyBuffer_.resize(static_cast<std::size_t>(numStates) * nRegion);
  network_.forwardBatch(featureBuffer_.data(), numStates * nRegion,
                        energyBuffer_.data());
  std::vector<double> energies(static_cast<std::size_t>(numStates), 0.0);
  for (int s = 0; s < numStates; ++s) {
    const Vec3i vacancyAbs =
        s > 0 ? center + jumps[static_cast<std::size_t>(s - 1)] : center;
    double total = 0.0;
    for (int site = 0; site < nRegion; ++site) {
      const Vec3i abs = center + regionSites_[static_cast<std::size_t>(site)];
      // Masked sites: the state's vacancy location and any other vacancy.
      Species sp = state.speciesAt(abs);
      if (s > 0) {
        if (state.lattice().wrap(abs) == state.lattice().wrap(center))
          sp = state.speciesAt(vacancyAbs);
        else if (state.lattice().wrap(abs) == state.lattice().wrap(vacancyAbs))
          sp = Species::kVacancy;
      }
      if (sp == Species::kVacancy) continue;
      total += energyBuffer_[static_cast<std::size_t>(s) * nRegion + site];
    }
    energies[static_cast<std::size_t>(s)] = total;
  }
  return energies;
}

}  // namespace tkmc
