#include "kmc/rate_calculator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tkmc {

JumpRates computeRates(const Vet& vet, const std::vector<double>& energies,
                       double temperature) {
  require(static_cast<int>(energies.size()) >= 1 + kNumJumpDirections,
          "need initial plus eight final-state energies");
  require(temperature > 0.0, "temperature must be positive");
  JumpRates rates;
  const double initial = energies[0];
  const double kt = kBoltzmannEv * temperature;
  for (int k = 0; k < kNumJumpDirections; ++k) {
    const Species migrating = vet[Cet::jumpTargetId(k)];
    if (migrating == Species::kVacancy) {
      rates.rate[static_cast<std::size_t>(k)] = 0.0;
      continue;
    }
    const double deltaE = energies[static_cast<std::size_t>(k) + 1] - initial;
    const double barrier =
        std::max(referenceActivation(migrating) + 0.5 * deltaE, 0.0);
    rates.rate[static_cast<std::size_t>(k)] =
        kAttemptFrequency * std::exp(-barrier / kt);
  }
  for (double r : rates.rate) rates.total += r;
  return rates;
}

JumpRates scaleRates(const JumpRates& rates, double factor) {
  require(factor >= 0.0, "rate scale factor must be non-negative");
  JumpRates scaled;
  for (std::size_t k = 0; k < rates.rate.size(); ++k)
    scaled.rate[k] = rates.rate[k] * factor;
  for (double r : scaled.rate) scaled.total += r;
  return scaled;
}

double residenceTime(double r, double totalPropensity) {
  require(r > 0.0 && r <= 1.0, "residence-time draw must be in (0, 1]");
  require(totalPropensity > 0.0, "total propensity must be positive");
  return -std::log(r) / totalPropensity;
}

}  // namespace tkmc
