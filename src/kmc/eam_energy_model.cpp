#include "kmc/eam_energy_model.hpp"

namespace tkmc {

EamEnergyModel::EamEnergyModel(const Cet& cet, const Net& net,
                               const EamPotential& potential)
    : cet_(cet), net_(net), potential_(potential) {
  numDist_ = static_cast<int>(net.distances().size());
  pairTable_.resize(static_cast<std::size_t>(kNumElements) * kNumElements *
                    numDist_);
  densityTable_.resize(static_cast<std::size_t>(kNumElements) * numDist_);
  for (int a = 0; a < kNumElements; ++a)
    for (int b = 0; b < kNumElements; ++b)
      for (int d = 0; d < numDist_; ++d)
        pairTable_[(static_cast<std::size_t>(a) * kNumElements + b) * numDist_ + d] =
            potential.pair(static_cast<Species>(a), static_cast<Species>(b),
                           net.distances()[static_cast<std::size_t>(d)]);
  for (int b = 0; b < kNumElements; ++b)
    for (int d = 0; d < numDist_; ++d)
      densityTable_[static_cast<std::size_t>(b) * numDist_ + d] =
          potential.density(static_cast<Species>(b),
                            net.distances()[static_cast<std::size_t>(d)]);
}

double EamEnergyModel::regionEnergy(const Vet& vet, int state) const {
  double total = 0.0;
  for (int site = 0; site < cet_.nRegion(); ++site) {
    const Species self = stateSpecies(vet, state, site);
    if (self == Species::kVacancy) continue;
    double pairSum = 0.0;
    double density = 0.0;
    for (const Net::Entry& e : net_.neighbors(site)) {
      const Species nb = stateSpecies(vet, state, e.siteId);
      if (nb == Species::kVacancy) continue;
      pairSum += pairTable_[(static_cast<std::size_t>(static_cast<int>(self)) *
                                 kNumElements +
                             static_cast<int>(nb)) *
                                numDist_ +
                            e.distIndex];
      density += densityTable_[static_cast<std::size_t>(static_cast<int>(nb)) *
                                   numDist_ +
                               e.distIndex];
    }
    total += 0.5 * pairSum + potential_.embedding(self, density);
  }
  return total;
}

std::vector<double> EamEnergyModel::stateEnergies(const LatticeState& state,
                                                  Vec3i center, int numFinal) {
  Vet vet = Vet::gather(cet_, state, center);
  return stateEnergiesFromVet(vet, numFinal);
}

std::vector<double> EamEnergyModel::stateEnergiesFromVet(Vet& vet,
                                                         int numFinal) {
  std::vector<double> energies(1 + static_cast<std::size_t>(numFinal));
  for (int s = 0; s <= numFinal; ++s)
    energies[static_cast<std::size_t>(s)] = regionEnergy(vet, s);
  return energies;
}

}  // namespace tkmc
