#include "tabulation/region_features.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tkmc {

RegionFeatures::RegionFeatures(const Net& net, const FeatureTable& table)
    : net_(net), table_(table) {}

void RegionFeatures::compute(const Vet& vet, std::vector<double>& out) const {
  const int nRegion = net_.regionSites();
  const int d = dim();
  const int numPq = table_.numPq();
  out.assign(static_cast<std::size_t>(nRegion) * d, 0.0);
  for (int site = 0; site < nRegion; ++site) {
    double* f = out.data() + static_cast<std::size_t>(site) * d;
    for (const Net::Entry& e : net_.neighbors(site)) {
      const Species sp = vet[e.siteId];
      if (sp == Species::kVacancy) continue;
      const double* row = table_.row(e.distIndex);
      double* block = f + static_cast<int>(sp) * numPq;
      for (int k = 0; k < numPq; ++k) block[k] += row[k];
    }
  }
}

void RegionFeatures::computeDirect(const Vet& vet,
                                   const std::vector<double>& distances,
                                   const std::vector<PqSet>& pqSets,
                                   std::vector<double>& out) const {
  require(static_cast<int>(pqSets.size()) == table_.numPq(),
          "pq set count must match the table");
  const int nRegion = net_.regionSites();
  const int d = dim();
  const int numPq = table_.numPq();
  out.assign(static_cast<std::size_t>(nRegion) * d, 0.0);
  for (int site = 0; site < nRegion; ++site) {
    double* f = out.data() + static_cast<std::size_t>(site) * d;
    for (const Net::Entry& e : net_.neighbors(site)) {
      const Species sp = vet[e.siteId];
      if (sp == Species::kVacancy) continue;
      const double r = distances[static_cast<std::size_t>(e.distIndex)];
      double* block = f + static_cast<int>(sp) * numPq;
      for (int k = 0; k < numPq; ++k)
        block[k] += FeatureTable::term(r, pqSets[static_cast<std::size_t>(k)]);
    }
  }
}

void RegionFeatures::computeStates(Vet& vet, int numFinal,
                                   std::vector<double>& out) const {
  require(numFinal >= 0 && numFinal <= kNumJumpDirections,
          "invalid number of final states");
  const std::size_t stateStride =
      static_cast<std::size_t>(net_.regionSites()) * dim();
  out.resize(stateStride * (1 + static_cast<std::size_t>(numFinal)));
  std::vector<double> scratch;
  compute(vet, scratch);
  std::copy(scratch.begin(), scratch.end(), out.begin());
  for (int k = 0; k < numFinal; ++k) {
    const int target = Cet::jumpTargetId(k);
    vet.swap(0, target);
    compute(vet, scratch);
    std::copy(scratch.begin(), scratch.end(),
              out.begin() + stateStride * (1 + static_cast<std::size_t>(k)));
    vet.swap(0, target);
  }
}

}  // namespace tkmc
