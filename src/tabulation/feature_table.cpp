#include "tabulation/feature_table.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tkmc {

std::vector<PqSet> standardPqSets() {
  std::vector<PqSet> sets;
  sets.reserve(32);
  for (int i = 0; i < 32; ++i)
    sets.push_back({4.2 - 0.1 * i, 1.85 + 0.05 * i});
  return sets;
}

double FeatureTable::term(double r, const PqSet& pq) {
  return std::exp(-std::pow(r / pq.p, pq.q));
}

FeatureTable::FeatureTable(const std::vector<double>& distances,
                           const std::vector<PqSet>& pqSets)
    : numDistances_(static_cast<int>(distances.size())),
      numPq_(static_cast<int>(pqSets.size())) {
  require(numDistances_ > 0 && numPq_ > 0,
          "feature table needs distances and (p,q) sets");
  values_.resize(static_cast<std::size_t>(numDistances_) * numPq_);
  for (int d = 0; d < numDistances_; ++d)
    for (int k = 0; k < numPq_; ++k)
      values_[static_cast<std::size_t>(d) * numPq_ + k] =
          term(distances[static_cast<std::size_t>(d)],
               pqSets[static_cast<std::size_t>(k)]);
}

}  // namespace tkmc
