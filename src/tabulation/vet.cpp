#include "tabulation/vet.hpp"

#include "common/error.hpp"

namespace tkmc {

Vet Vet::gather(const Cet& cet, const LatticeState& state, Vec3i center) {
  Vet vet(cet.nAll());
  require(state.speciesAt(center) == Species::kVacancy,
          "VET must be centred on a vacancy");
  for (int id = 0; id < cet.nAll(); ++id)
    vet.types_[static_cast<std::size_t>(id)] = state.speciesAt(center + cet.site(id));
  return vet;
}

}  // namespace tkmc
