#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tabulation/cet.hpp"

namespace tkmc {

/// Neighbour-list Encoding Tabulation (paper Sec. 3.1, Fig. 4c).
///
/// For every site in the jumping region, NET stores its neighbours as
/// (CET site id, distance index) pairs. Because AKMC atoms sit exactly on
/// lattice sites, only a handful of distinct interatomic distances occur
/// within the cutoff; NET indexes into that small unique-distance table,
/// which is what makes the tabulated feature evaluation of Eq. 6 possible.
/// Like the CET, a single NET is shared by every vacancy system.
class Net {
 public:
  struct Entry {
    std::int32_t siteId;     // neighbour's id within the CET
    std::int32_t distIndex;  // index into distances()
  };

  explicit Net(const Cet& cet);

  /// Neighbours of region site `siteId` (valid for ids < cet.nRegion()).
  std::span<const Entry> neighbors(int siteId) const {
    const std::size_t begin = offsets_[static_cast<std::size_t>(siteId)];
    const std::size_t end = offsets_[static_cast<std::size_t>(siteId) + 1];
    return {entries_.data() + begin, end - begin};
  }

  /// Unique interatomic distances within the cutoff, ascending (angstrom).
  const std::vector<double>& distances() const { return distances_; }

  /// Number of region sites covered (== cet.nRegion()).
  int regionSites() const { return static_cast<int>(offsets_.size()) - 1; }

  /// Total stored (site, neighbour) entries.
  std::size_t entryCount() const { return entries_.size(); }

 private:
  std::vector<std::size_t> offsets_;  // regionSites + 1 prefix offsets
  std::vector<Entry> entries_;
  std::vector<double> distances_;
};

}  // namespace tkmc
