#pragma once

#include <vector>

#include "tabulation/feature_table.hpp"
#include "tabulation/net.hpp"
#include "tabulation/vet.hpp"

namespace tkmc {

/// CPU (MPE-style) evaluation of the tabulated descriptor (Eq. 6) for a
/// vacancy system.
///
/// Computes, for every site of the jumping region, the feature vector
/// f[element][pq] = sum over neighbours of TABLE(distance, p, q), reading
/// species from the VET. This is the serial reference path of Fig. 11;
/// the CPE-parallel version lives in sunway/feature_operator.hpp.
class RegionFeatures {
 public:
  RegionFeatures(const Net& net, const FeatureTable& table);

  /// Feature dimension per atom (= numPq * kNumElements).
  int dim() const { return table_.numPq() * kNumElements; }

  /// Features of every region site for the state encoded by `vet`:
  /// output is [nRegion][dim()] row-major (resized as needed).
  void compute(const Vet& vet, std::vector<double>& out) const;

  /// Same result as compute() but evaluating exp(-(r/p)^q) directly for
  /// every neighbour instead of reading the precomputed TABLE — the
  /// Eq. 5 vs Eq. 6 ablation. Identical accumulation order, so results
  /// are bit-equal; only the cost differs.
  void computeDirect(const Vet& vet, const std::vector<double>& distances,
                     const std::vector<PqSet>& pqSets,
                     std::vector<double>& out) const;

  /// Features for the initial state plus the `numFinal` final states
  /// obtained by swapping VET[0] with VET[1 + k]. Output layout:
  /// [1 + numFinal][nRegion][dim()]. `vet` is restored before returning.
  void computeStates(Vet& vet, int numFinal, std::vector<double>& out) const;

 private:
  const Net& net_;
  const FeatureTable& table_;
};

}  // namespace tkmc
