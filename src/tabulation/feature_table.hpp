#pragma once

#include <vector>

namespace tkmc {

/// One (p, q) hyperparameter pair of the exponential descriptor (Eq. 5).
struct PqSet {
  double p;
  double q;
};

/// The 32 (p, q) pairs of the paper (Sec. 4.1.1): p runs 4.2 -> 1.1 in
/// steps of -0.1 while q runs 1.85 -> 3.4 in steps of +0.05.
std::vector<PqSet> standardPqSets();

/// Precomputed TABLE(r, p, q) of Eq. 6.
///
/// AKMC interatomic distances are discrete, so the descriptor term
/// exp(-(r/p)^q) only ever needs the unique distances of the NET. The
/// table stores one row per distance with all (p, q) values contiguous,
/// turning feature evaluation into pure gather-accumulate.
class FeatureTable {
 public:
  FeatureTable(const std::vector<double>& distances,
               const std::vector<PqSet>& pqSets);

  int numDistances() const { return numDistances_; }
  int numPq() const { return numPq_; }

  double value(int distIndex, int pqIndex) const {
    return values_[static_cast<std::size_t>(distIndex) * numPq_ + pqIndex];
  }

  /// Contiguous (p, q) row for one distance.
  const double* row(int distIndex) const {
    return values_.data() + static_cast<std::size_t>(distIndex) * numPq_;
  }

  /// Direct evaluation of the descriptor term (Eq. 5); the table must
  /// reproduce this exactly at its knots (tested).
  static double term(double r, const PqSet& pq);

  std::size_t sizeBytes() const { return values_.size() * sizeof(double); }

 private:
  int numDistances_;
  int numPq_;
  std::vector<double> values_;  // [distance][pq]
};

}  // namespace tkmc
