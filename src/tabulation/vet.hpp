#pragma once

#include <utility>
#include <vector>

#include "common/constants.hpp"
#include "lattice/lattice_state.hpp"
#include "tabulation/cet.hpp"

namespace tkmc {

/// Vacancy Encoding Tabulation (paper Sec. 3.1, Fig. 4d).
///
/// The per-vacancy-system environment vector: VET[id] is the species of
/// the site at CET relative coordinate `id`, gathered from the global
/// lattice once per (re)initialization. A hop to jump target k is
/// realized by swapping VET[0] with VET[1 + k] — no global lattice access
/// needed, which is what lets the fast feature operator run entirely out
/// of scratchpad copies.
class Vet {
 public:
  Vet() = default;
  explicit Vet(int nAll) : types_(static_cast<std::size_t>(nAll), Species::kFe) {}

  /// Gathers the environment of the vacancy at `center` from the lattice.
  /// This is the only step that touches the big lattice array.
  static Vet gather(const Cet& cet, const LatticeState& state, Vec3i center);

  Species operator[](int id) const { return types_[static_cast<std::size_t>(id)]; }
  void set(int id, Species s) { types_[static_cast<std::size_t>(id)] = s; }

  void swap(int a, int b) {
    std::swap(types_[static_cast<std::size_t>(a)], types_[static_cast<std::size_t>(b)]);
  }

  int size() const { return static_cast<int>(types_.size()); }
  const std::vector<Species>& data() const { return types_; }

 private:
  std::vector<Species> types_;
};

}  // namespace tkmc
