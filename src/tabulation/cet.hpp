#pragma once

#include <unordered_map>
#include <vector>

#include "lattice/bcc_lattice.hpp"
#include "lattice/vec3.hpp"

namespace tkmc {

/// Coordinates Encoding Tabulation (paper Sec. 3.1, Fig. 4b).
///
/// An ordered list of the relative doubled-integer coordinates of every
/// site in a "vacancy system": the vacancy at the origin, its eight 1NN
/// jump targets, the remaining sites whose energy a jump can change (the
/// *jumping region*, N_region sites in total), and finally the outer
/// shell of sites that act only as neighbours of region sites (N_out).
/// Because all BCC sites are geometrically equivalent, one CET serves
/// every vacancy in the box: translate it to the vacancy's coordinate to
/// enumerate the system's sites.
///
/// Site id layout:
///   [0]                      vacancy centre (0, 0, 0)
///   [1 .. 8]                 the 1NN jump targets, fixed order
///   [9 .. nRegion)           remaining region sites
///   [nRegion .. nAll)        outer sites (energies never change)
class Cet {
 public:
  /// Builds the CET for a given lattice constant and cutoff radius.
  Cet(double latticeConstant, double cutoff);

  double latticeConstant() const { return a_; }
  double cutoff() const { return cutoff_; }

  /// Number of neighbours of a single site within the cutoff
  /// (112 for r_cut = 6.5 A, a = 2.87 A).
  int nLocal() const { return nLocal_; }

  /// Number of sites in the jumping region (253 for the standard setup).
  int nRegion() const { return nRegion_; }

  /// Outer sites.
  int nOut() const { return nAll_ - nRegion_; }

  /// All sites of a vacancy system.
  int nAll() const { return nAll_; }

  /// Relative coordinate of site `id`.
  Vec3i site(int id) const { return sites_[static_cast<std::size_t>(id)]; }

  const std::vector<Vec3i>& sites() const { return sites_; }

  /// Id of a relative coordinate, or -1 when outside the system.
  int idOf(Vec3i rel) const;

  /// Ids 1..8 are the jump targets; convenience accessor.
  static constexpr int jumpTargetId(int direction) { return 1 + direction; }

 private:
  double a_;
  double cutoff_;
  int nLocal_ = 0;
  int nRegion_ = 0;
  int nAll_ = 0;
  std::vector<Vec3i> sites_;
  std::unordered_map<Vec3i, int, Vec3iHash> idIndex_;
};

}  // namespace tkmc
