#include "tabulation/net.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "lattice/bcc_lattice.hpp"

namespace tkmc {

Net::Net(const Cet& cet) {
  const BccLattice geometry(4, 4, 4, cet.latticeConstant());
  const std::vector<Vec3i> within = geometry.offsetsWithinCutoff(cet.cutoff());

  // Unique squared step norms -> distance indices.
  std::map<std::int64_t, int> normToIndex;
  for (const Vec3i& d : within) normToIndex.emplace(d.norm2(), 0);
  int next = 0;
  for (auto& [norm2, index] : normToIndex) index = next++;
  distances_.resize(normToIndex.size());
  for (const auto& [norm2, index] : normToIndex)
    distances_[static_cast<std::size_t>(index)] =
        std::sqrt(static_cast<double>(norm2)) * cet.latticeConstant() / 2;

  offsets_.reserve(static_cast<std::size_t>(cet.nRegion()) + 1);
  offsets_.push_back(0);
  entries_.reserve(static_cast<std::size_t>(cet.nRegion()) * within.size());
  for (int id = 0; id < cet.nRegion(); ++id) {
    const Vec3i s = cet.site(id);
    for (const Vec3i& d : within) {
      const int neighborId = cet.idOf(s + d);
      require(neighborId >= 0,
              "CET must contain every neighbour of a region site");
      entries_.push_back({neighborId, normToIndex.at(d.norm2())});
    }
    offsets_.push_back(entries_.size());
  }
}

}  // namespace tkmc
