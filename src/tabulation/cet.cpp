#include "tabulation/cet.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace tkmc {
namespace {

// Deterministic ordering: by squared norm, then lexicographic.
void sortSites(std::vector<Vec3i>& v) {
  std::sort(v.begin(), v.end(), [](Vec3i a, Vec3i b) {
    if (a.norm2() != b.norm2()) return a.norm2() < b.norm2();
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.z < b.z;
  });
}

}  // namespace

Cet::Cet(double latticeConstant, double cutoff)
    : a_(latticeConstant), cutoff_(cutoff) {
  // A throwaway lattice provides the offset enumeration; only the lattice
  // constant matters for geometry.
  const BccLattice geometry(4, 4, 4, latticeConstant);
  const std::vector<Vec3i> within = geometry.offsetsWithinCutoff(cutoff);
  nLocal_ = static_cast<int>(within.size());

  const auto& jumps = BccLattice::firstNeighborOffsets();

  // Region: sites within the cutoff of the centre or of any 1NN target,
  // plus the centre and the targets themselves.
  std::unordered_set<Vec3i, Vec3iHash> region;
  region.insert(Vec3i{});
  for (const Vec3i& c : jumps) region.insert(c);
  for (const Vec3i& d : within) region.insert(d);
  for (const Vec3i& c : jumps)
    for (const Vec3i& d : within) region.insert(c + d);

  // Outer shell: neighbours of region sites that are not themselves in
  // the region. Their species matter for region-site energies but their
  // own energies never change during a jump from this vacancy.
  std::unordered_set<Vec3i, Vec3iHash> outer;
  for (const Vec3i& s : region)
    for (const Vec3i& d : within) {
      const Vec3i t = s + d;
      if (!region.contains(t)) outer.insert(t);
    }

  // Assemble the ordered site list. The centre and jump targets come
  // first in a fixed order so the fast feature operator can swap
  // VET[0] <-> VET[1 + direction] to realize a hop.
  sites_.push_back(Vec3i{});
  for (const Vec3i& c : jumps) sites_.push_back(c);

  std::vector<Vec3i> regionRest;
  for (const Vec3i& s : region) {
    if (s == Vec3i{}) continue;
    if (std::find(jumps.begin(), jumps.end(), s) != jumps.end()) continue;
    regionRest.push_back(s);
  }
  sortSites(regionRest);
  sites_.insert(sites_.end(), regionRest.begin(), regionRest.end());
  nRegion_ = static_cast<int>(sites_.size());

  std::vector<Vec3i> outerSorted(outer.begin(), outer.end());
  sortSites(outerSorted);
  sites_.insert(sites_.end(), outerSorted.begin(), outerSorted.end());
  nAll_ = static_cast<int>(sites_.size());

  idIndex_.reserve(sites_.size() * 2);
  for (int id = 0; id < nAll_; ++id)
    idIndex_.emplace(sites_[static_cast<std::size_t>(id)], id);
  require(static_cast<int>(idIndex_.size()) == nAll_,
          "CET sites must be unique");
}

int Cet::idOf(Vec3i rel) const {
  auto it = idIndex_.find(rel);
  return it == idIndex_.end() ? -1 : it->second;
}

}  // namespace tkmc
