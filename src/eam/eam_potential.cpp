#include "eam/eam_potential.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tkmc {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

EamPotential::EamPotential(double cutoff) : cutoff_(cutoff) {
  require(cutoff > 3.0, "EAM cutoff must cover at least first neighbours");
  switchStart_ = cutoff_ - 1.0;
  // Morse parameters (eV, 1/A, A). r0 sits near the BCC 1NN distance
  // (2.485 A at a = 2.87 A). The Fe-Cu cross well is shallower than the
  // arithmetic mean of Fe-Fe and Cu-Cu, giving the positive heat of
  // mixing that drives Cu precipitation.
  pairs_[pairIndex(Species::kFe, Species::kFe)] = {0.42, 1.45, 2.50};
  pairs_[pairIndex(Species::kFe, Species::kCu)] = {0.33, 1.40, 2.55};
  pairs_[pairIndex(Species::kCu, Species::kCu)] = {0.38, 1.35, 2.56};
  // Density/embedding: Fe binds slightly stronger in the many-body term.
  elements_[0] = {1.00, 1.30, 0.85};  // Fe
  elements_[1] = {0.90, 1.25, 0.72};  // Cu
}

int EamPotential::pairIndex(Species a, Species b) {
  const int ia = static_cast<int>(a);
  const int ib = static_cast<int>(b);
  require(ia < kNumElements && ib < kNumElements,
          "EAM pair requested for a vacancy");
  return ia + ib;  // FeFe = 0, FeCu/CuFe = 1, CuCu = 2
}

double EamPotential::smooth(double r) const {
  if (r >= cutoff_) return 0.0;
  if (r <= switchStart_) return 1.0;
  const double t = (r - switchStart_) / (cutoff_ - switchStart_);
  return 0.5 * (1.0 + std::cos(kPi * t));
}

double EamPotential::smoothDerivative(double r) const {
  if (r >= cutoff_ || r <= switchStart_) return 0.0;
  const double w = cutoff_ - switchStart_;
  const double t = (r - switchStart_) / w;
  return -0.5 * kPi / w * std::sin(kPi * t);
}

double EamPotential::pair(Species a, Species b, double r) const {
  if (r >= cutoff_) return 0.0;
  const PairParams& p = pairs_[static_cast<std::size_t>(pairIndex(a, b))];
  const double e = 1.0 - std::exp(-p.alpha * (r - p.r0));
  return p.depth * (e * e - 1.0) * smooth(r);
}

double EamPotential::pairDerivative(Species a, Species b, double r) const {
  if (r >= cutoff_) return 0.0;
  const PairParams& p = pairs_[static_cast<std::size_t>(pairIndex(a, b))];
  const double ex = std::exp(-p.alpha * (r - p.r0));
  const double e = 1.0 - ex;
  const double morse = p.depth * (e * e - 1.0);
  const double dMorse = 2.0 * p.depth * e * p.alpha * ex;
  return dMorse * smooth(r) + morse * smoothDerivative(r);
}

double EamPotential::density(Species b, double r) const {
  if (r >= cutoff_) return 0.0;
  const ElementParams& e = elements_[static_cast<std::size_t>(b)];
  return e.rho0 * std::exp(-e.beta * (r - 2.5)) * smooth(r);
}

double EamPotential::densityDerivative(Species b, double r) const {
  if (r >= cutoff_) return 0.0;
  const ElementParams& e = elements_[static_cast<std::size_t>(b)];
  const double base = e.rho0 * std::exp(-e.beta * (r - 2.5));
  return -e.beta * base * smooth(r) + base * smoothDerivative(r);
}

double EamPotential::embedding(Species a, double rho) const {
  const ElementParams& e = elements_[static_cast<std::size_t>(a)];
  return -e.embed * std::sqrt(std::max(rho, 0.0));
}

double EamPotential::embeddingDerivative(Species a, double rho) const {
  const ElementParams& e = elements_[static_cast<std::size_t>(a)];
  if (rho <= 1e-12) return 0.0;
  return -0.5 * e.embed / std::sqrt(rho);
}

EamPotential::PairDensity EamPotential::pairDensity(
    Species self, const std::vector<std::pair<Species, double>>& neighbors) const {
  PairDensity pd;
  for (const auto& [sp, r] : neighbors) {
    if (sp == Species::kVacancy) continue;
    pd.pairSum += pair(self, sp, r);
    pd.densitySum += density(sp, r);
  }
  return pd;
}

double EamPotential::atomEnergy(
    Species self, const std::vector<std::pair<Species, double>>& neighbors) const {
  if (self == Species::kVacancy) return 0.0;
  const PairDensity pd = pairDensity(self, neighbors);
  return 0.5 * pd.pairSum + embedding(self, pd.densitySum);
}

std::vector<double> EamPotential::atomEnergies(const Structure& s) const {
  const std::size_t n = s.size();
  std::vector<double> energies(n, 0.0);
  std::vector<std::pair<Species, double>> neighbors;
  for (std::size_t i = 0; i < n; ++i) {
    neighbors.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double r = s.displacement(i, j).norm();
      if (r < cutoff_) neighbors.emplace_back(s.species[j], r);
    }
    energies[i] = atomEnergy(s.species[i], neighbors);
  }
  return energies;
}

double EamPotential::totalEnergy(const Structure& s) const {
  double total = 0.0;
  for (double e : atomEnergies(s)) total += e;
  return total;
}

std::vector<Vec3d> EamPotential::forces(const Structure& s) const {
  const std::size_t n = s.size();
  // Precompute densities to evaluate the embedding derivatives.
  std::vector<double> rho(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double r = s.displacement(i, j).norm();
      if (r < cutoff_) rho[i] += density(s.species[j], r);
    }
  std::vector<Vec3d> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Vec3d d = s.displacement(i, j);  // from i to j
      const double r = d.norm();
      if (r >= cutoff_) continue;
      // dE/dr for the (i, j) interaction as r_ij varies:
      //   pair term (counted once per ordered pair via the 1/2 factors)
      //   + F'(rho_i) drho_j/dr + F'(rho_j) drho_i/dr.
      const double dPair = pairDerivative(s.species[i], s.species[j], r);
      const double dEmbed =
          embeddingDerivative(s.species[i], rho[i]) * densityDerivative(s.species[j], r) +
          embeddingDerivative(s.species[j], rho[j]) * densityDerivative(s.species[i], r);
      const double dEdr = dPair + dEmbed;
      // Force on atom i is -dE/dx_i; moving i away from j increases r.
      const double scale = dEdr / r;
      f[i] = f[i] + d * scale;
    }
  }
  return f;
}

}  // namespace tkmc
