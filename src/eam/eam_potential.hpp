#pragma once

#include <array>
#include <vector>

#include "common/constants.hpp"
#include "lattice/structure.hpp"

namespace tkmc {

/// Embedded-atom-method potential for the Fe-Cu system.
///
/// Serves two roles in this reproduction:
///  1. Ground-truth oracle replacing the paper's FHI-aims DFT reference:
///     training data for the neural network potential is generated from
///     EAM energies and forces (see DESIGN.md, substitution table).
///  2. The potential of the OpenKMC baseline, whose per-atom pair sum
///     E_V and electron density E_R arrays appear in Table 1 (Eq. 7):
///     E(i) = 1/2 * E_V[i] + F_rho(E_R[i]).
///
/// Functional forms: Morse pair interaction, exponential electron
/// density, square-root (Finnis-Sinclair) embedding, all smoothed to zero
/// at the cutoff by a cosine switching function. Parameters are chosen so
/// that Cu weakly demixes in Fe (positive heat of mixing), reproducing
/// the precipitation thermodynamics driving the paper's application.
class EamPotential {
 public:
  struct PairParams {
    double depth;    // Morse well depth, eV
    double alpha;    // Morse width, 1/angstrom
    double r0;       // Morse equilibrium distance, angstrom
  };

  struct ElementParams {
    double rho0;     // density prefactor
    double beta;     // density decay, 1/angstrom
    double embed;    // embedding strength A in F(rho) = -A * sqrt(rho), eV
  };

  /// Constructs the default Fe-Cu parameterization at the given cutoff.
  explicit EamPotential(double cutoff = kDefaultCutoff);

  double cutoff() const { return cutoff_; }

  /// Pair interaction phi_ab(r) in eV; zero at and beyond the cutoff.
  double pair(Species a, Species b, double r) const;

  /// d(phi_ab)/dr.
  double pairDerivative(Species a, Species b, double r) const;

  /// Electron density contribution rho_b(r) of a neighbour of species b.
  double density(Species b, double r) const;

  /// d(rho_b)/dr.
  double densityDerivative(Species b, double r) const;

  /// Embedding energy F_a(rho) in eV.
  double embedding(Species a, double rho) const;

  /// dF_a/drho.
  double embeddingDerivative(Species a, double rho) const;

  /// Per-atom energy given the atom's species and its neighbour
  /// (species, distance) list: F(rho_i) + 1/2 sum phi.
  double atomEnergy(Species self,
                    const std::vector<std::pair<Species, double>>& neighbors) const;

  /// Total energy of an off-lattice structure (O(N^2) neighbour search;
  /// intended for the small training cells).
  double totalEnergy(const Structure& s) const;

  /// Per-atom energies of a structure, same convention as atomEnergy().
  std::vector<double> atomEnergies(const Structure& s) const;

  /// Analytic forces, eV/angstrom.
  std::vector<Vec3d> forces(const Structure& s) const;

  /// The Eq. 7 decomposition for one atom: E_V (pair sum) and E_R
  /// (density sum), from which E = 1/2 E_V + F(E_R).
  struct PairDensity {
    double pairSum = 0.0;
    double densitySum = 0.0;
  };
  PairDensity pairDensity(Species self,
                          const std::vector<std::pair<Species, double>>& neighbors) const;

 private:
  /// Cosine switching function: 1 well inside, 0 at the cutoff.
  double smooth(double r) const;
  double smoothDerivative(double r) const;

  static int pairIndex(Species a, Species b);

  double cutoff_;
  double switchStart_;  // smoothing begins here
  std::array<PairParams, 3> pairs_;       // FeFe, FeCu, CuCu
  std::array<ElementParams, 2> elements_; // Fe, Cu
};

}  // namespace tkmc
