#include "core/input_deck.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace tkmc {
namespace {

double parseDouble(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    throw Error("input deck: key '" + key + "' needs a number, got '" +
                value + "'");
  }
  require(used == value.size(),
          "input deck: trailing characters after number for key '" + key + "'");
  return parsed;
}

std::int64_t parseInt(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(value, &used);
  } catch (const std::exception&) {
    throw Error("input deck: key '" + key + "' needs an integer, got '" +
                value + "'");
  }
  require(used == value.size(),
          "input deck: trailing characters after integer for key '" + key + "'");
  return parsed;
}

bool parseSwitch(const std::string& key, const std::string& value) {
  if (value == "on" || value == "true" || value == "1") return true;
  if (value == "off" || value == "false" || value == "0") return false;
  throw Error("input deck: key '" + key + "' needs on/off, got '" + value + "'");
}

std::vector<int> parseIntList(const std::string& key,
                              const std::string& value) {
  std::vector<int> items;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ','))
    items.push_back(static_cast<int>(parseInt(key, item)));
  return items;
}

std::vector<int> parseChannels(const std::string& value) {
  std::vector<int> channels = parseIntList("channels", value);
  require(channels.size() >= 2, "input deck: channels needs >= 2 widths");
  return channels;
}

}  // namespace

void InputDeck::apply(const std::string& key, const std::string& value) {
  if (key == "cells") {
    config_.cells = static_cast<int>(parseInt(key, value));
    require(config_.cells > 0, "input deck: cells must be positive");
  } else if (key == "lattice_constant") {
    config_.latticeConstant = parseDouble(key, value);
    require(config_.latticeConstant > 0, "input deck: lattice_constant > 0");
  } else if (key == "cutoff") {
    config_.cutoff = parseDouble(key, value);
    require(config_.cutoff > 0, "input deck: cutoff > 0");
  } else if (key == "cu_fraction") {
    config_.cuFraction = parseDouble(key, value);
    require(config_.cuFraction >= 0 && config_.cuFraction < 1,
            "input deck: cu_fraction in [0, 1)");
  } else if (key == "vacancy_count") {
    config_.vacancyCount = static_cast<int>(parseInt(key, value));
    require(config_.vacancyCount >= 0, "input deck: vacancy_count >= 0");
  } else if (key == "vacancy_concentration") {
    config_.vacancyConcentration = parseDouble(key, value);
    require(config_.vacancyConcentration >= 0,
            "input deck: vacancy_concentration >= 0");
  } else if (key == "temperature") {
    config_.temperature = parseDouble(key, value);
    require(config_.temperature > 0, "input deck: temperature > 0");
  } else if (key == "seed") {
    config_.seed = static_cast<std::uint64_t>(parseInt(key, value));
  } else if (key == "potential") {
    if (value == "eam") {
      config_.potential = SimulationConfig::Potential::kEam;
    } else if (value == "nnp") {
      config_.potential = SimulationConfig::Potential::kNnp;
    } else {
      throw Error("input deck: potential must be eam or nnp, got '" + value +
                  "'");
    }
  } else if (key == "model_path") {
    config_.modelPath = value;
  } else if (key == "channels") {
    config_.channels = parseChannels(value);
  } else if (key == "train_structures") {
    config_.trainStructures = static_cast<int>(parseInt(key, value));
  } else if (key == "train_epochs") {
    config_.trainEpochs = static_cast<int>(parseInt(key, value));
  } else if (key == "event_catalog") {
    if (value != "vacancy_hop" && value != "trap_detrap")
      throw Error("input deck: event_catalog must be vacancy_hop or "
                  "trap_detrap, got '" + value + "'");
    config_.eventCatalog.name = value;
  } else if (key == "trap_fraction") {
    config_.eventCatalog.trapFraction = parseDouble(key, value);
    require(config_.eventCatalog.trapFraction >= 0 &&
                config_.eventCatalog.trapFraction < 1,
            "input deck: trap_fraction in [0, 1)");
  } else if (key == "trap_binding") {
    config_.eventCatalog.trapBinding = parseDouble(key, value);
    require(config_.eventCatalog.trapBinding >= 0,
            "input deck: trap_binding >= 0");
  } else if (key == "trap_seed") {
    config_.eventCatalog.trapSeed =
        static_cast<std::uint64_t>(parseInt(key, value));
  } else if (key == "sink_planes") {
    config_.eventCatalog.sinkPlanes = static_cast<int>(parseInt(key, value));
    require(config_.eventCatalog.sinkPlanes >= 0,
            "input deck: sink_planes >= 0");
  } else if (key == "use_cache") {
    config_.useVacancyCache = parseSwitch(key, value);
  } else if (key == "use_tree") {
    config_.useTree = parseSwitch(key, value);
  } else if (key == "t_end") {
    tEnd_ = parseDouble(key, value);
    require(tEnd_ > 0, "input deck: t_end > 0");
  } else if (key == "max_steps") {
    maxSteps_ = static_cast<std::uint64_t>(parseInt(key, value));
  } else if (key == "report_interval") {
    reportInterval_ = static_cast<std::uint64_t>(parseInt(key, value));
  } else if (key == "dump_xyz") {
    dumpPath_ = value;
  } else if (key == "dump_interval") {
    dumpInterval_ = static_cast<std::uint64_t>(parseInt(key, value));
    require(dumpInterval_ > 0, "input deck: dump_interval > 0");
  } else if (key == "checkpoint_write") {
    checkpointWrite_ = value;
  } else if (key == "checkpoint_interval") {
    checkpointInterval_ = static_cast<std::uint64_t>(parseInt(key, value));
    require(checkpointInterval_ > 0, "input deck: checkpoint_interval > 0");
  } else if (key == "checkpoint_read") {
    checkpointRead_ = value;
  } else if (key == "mode") {
    if (value == "serial") {
      parallelMode_ = false;
    } else if (value == "parallel") {
      parallelMode_ = true;
    } else {
      throw Error("input deck: mode must be serial or parallel, got '" +
                  value + "'");
    }
  } else if (key == "rank_grid") {
    const std::vector<int> g = parseIntList(key, value);
    require(g.size() == 3, "input deck: rank_grid needs three values x,y,z");
    require(g[0] >= 1 && g[1] >= 1 && g[2] >= 1,
            "input deck: rank_grid needs at least one rank per axis");
    require(g[0] * g[1] * g[2] >= 2,
            "input deck: rank_grid needs at least two ranks total "
            "(use mode serial for one)");
    rankGrid_ = {g[0], g[1], g[2]};
  } else if (key == "t_stop") {
    tStop_ = parseDouble(key, value);
    require(tStop_ > 0, "input deck: t_stop > 0");
  } else if (key == "recovery") {
    recovery_ = parseSwitch(key, value);
  } else if (key == "threaded") {
    threaded_ = parseSwitch(key, value);
  } else if (key == "checkpoint_dir") {
    checkpointDir_ = value;
  } else if (key == "checkpoint_cadence") {
    checkpointCadence_ = static_cast<int>(parseInt(key, value));
    require(checkpointCadence_ >= 1, "input deck: checkpoint_cadence >= 1");
  } else if (key == "checkpoint_mode") {
    if (value == "full") {
      deltaCheckpoints_ = false;
    } else if (value == "delta") {
      deltaCheckpoints_ = true;
    } else {
      throw Error("input deck: checkpoint_mode must be full or delta, got '" +
                  value + "'");
    }
  } else if (key == "max_delta_chain") {
    maxDeltaChain_ = static_cast<int>(parseInt(key, value));
    require(maxDeltaChain_ >= 1, "input deck: max_delta_chain >= 1");
  } else if (key == "spare_ranks") {
    spareRanks_ = static_cast<int>(parseInt(key, value));
    require(spareRanks_ >= 0, "input deck: spare_ranks >= 0");
  } else if (key == "heartbeat_interval_ms") {
    heartbeatIntervalMs_ = parseDouble(key, value);
    require(heartbeatIntervalMs_ > 0, "input deck: heartbeat_interval_ms > 0");
  } else if (key == "heartbeat_timeout_ms") {
    heartbeatTimeoutMs_ = parseDouble(key, value);
    require(heartbeatTimeoutMs_ >= 0, "input deck: heartbeat_timeout_ms >= 0");
  } else if (key == "remote_dir") {
    remoteDir_ = value;
  } else if (key == "remote_rate_mbps") {
    remoteRateMbps_ = parseDouble(key, value);
    require(remoteRateMbps_ >= 0, "input deck: remote_rate_mbps >= 0");
  } else if (key == "remote_max_lag_epochs") {
    remoteMaxLagEpochs_ = static_cast<int>(parseInt(key, value));
    require(remoteMaxLagEpochs_ >= 1, "input deck: remote_max_lag_epochs >= 1");
  } else if (key == "remote_retries") {
    remoteRetries_ = static_cast<int>(parseInt(key, value));
    require(remoteRetries_ >= 1, "input deck: remote_retries >= 1");
  } else if (key == "resume") {
    resume_ = parseSwitch(key, value);
  } else {
    throw Error("input deck: unknown key '" + key + "'");
  }
}

InputDeck InputDeck::parse(std::istream& in) {
  InputDeck deck;
  std::string line;
  int lineNumber = 0;
  while (std::getline(in, line)) {
    ++lineNumber;
    // Strip comments.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::stringstream ss(line);
    std::string key;
    if (!(ss >> key)) continue;  // blank line
    std::string value;
    std::getline(ss, value);
    // Trim the value.
    const std::size_t first = value.find_first_not_of(" \t");
    require(first != std::string::npos,
            "input deck line " + std::to_string(lineNumber) + ": key '" +
                key + "' has no value");
    const std::size_t last = value.find_last_not_of(" \t\r");
    value = value.substr(first, last - first + 1);
    require(deck.raw_.emplace(key, value).second,
            "input deck line " + std::to_string(lineNumber) +
                ": duplicate key '" + key + "'");
    deck.apply(key, value);
  }
  return deck;
}

InputDeck InputDeck::parseFile(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open input deck: " + path);
  return parse(in);
}

SimulationConfig InputDeck::simulationConfig() const { return config_; }

std::string InputDeck::rawValue(const std::string& key) const {
  auto it = raw_.find(key);
  return it == raw_.end() ? std::string() : it->second;
}

}  // namespace tkmc
