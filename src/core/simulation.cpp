#include "core/simulation.hpp"

#include <filesystem>

#include "common/error.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/eam_energy_model.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "nnp/dataset.hpp"
#include "nnp/descriptor.hpp"
#include "nnp/model_io.hpp"
#include "nnp/trainer.hpp"

namespace tkmc {

Network Simulation::buildPotential(const SimulationConfig& config) {
  if (!config.modelPath.empty() && std::filesystem::exists(config.modelPath)) {
    return loadNetwork(config.modelPath);
  }
  // Self-train against the EAM oracle: the same pipeline the Fig. 7
  // validation uses, at a size that converges in seconds.
  require(!config.channels.empty() &&
              config.channels.front() ==
                  static_cast<int>(standardPqSets().size()) * kNumElements,
          "network input width must equal numPq * numElements");
  const EamPotential oracle(config.cutoff);
  DatasetConfig data;
  data.count = config.trainStructures;
  data.latticeConstant = config.latticeConstant;
  Rng rng(config.seed ^ 0x5eedULL);
  const auto labeled = generateDataset(oracle, data, rng);
  const Descriptor descriptor(standardPqSets(), config.cutoff);
  // Composition baseline handled by least squares; the network fits the
  // residual (the baseline cancels in KMC energy differences).
  const SpeciesBaseline baseline = SpeciesBaseline::fit(labeled);
  std::vector<TrainSample> samples;
  samples.reserve(labeled.size());
  for (const auto& ls : labeled)
    samples.push_back(makeSample(descriptor, ls, &baseline));

  Network network(config.channels);
  Rng initRng(config.seed ^ 0xabcdULL);
  network.initHe(initRng);
  Trainer::Config tc;
  tc.epochs = config.trainEpochs;
  tc.seed = config.seed ^ 0x7777ULL;
  Trainer trainer(network, tc);
  trainer.fitStandardization(samples);
  trainer.train(samples);
  if (!config.modelPath.empty()) saveNetwork(network, config.modelPath);
  return network;
}

Simulation::Simulation(SimulationConfig config) : config_(config) {
  require(config.cells > 0, "box must be positive");
  lattice_ = std::make_unique<BccLattice>(config.cells, config.cells,
                                          config.cells, config.latticeConstant);
  state_ = std::make_unique<LatticeState>(*lattice_);
  Rng rng(config.seed);
  const std::int64_t vacancies =
      config.vacancyCount >= 0
          ? config.vacancyCount
          : std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       static_cast<double>(lattice_->siteCount()) *
                       config.vacancyConcentration));
  state_->randomAlloy(config.cuFraction, vacancies, rng);

  cet_ = std::make_unique<Cet>(config.latticeConstant, config.cutoff);
  net_ = std::make_unique<Net>(*cet_);
  eam_ = std::make_unique<EamPotential>(config.cutoff);

  if (config.potential == SimulationConfig::Potential::kNnp) {
    table_ = std::make_unique<FeatureTable>(net_->distances(), standardPqSets());
    network_ = std::make_unique<Network>(buildPotential(config));
    model_ = std::make_unique<NnpEnergyModel>(*cet_, *net_, *table_, *network_);
  } else {
    model_ = std::make_unique<EamEnergyModel>(*cet_, *net_, *eam_);
  }

  KmcConfig kc;
  kc.temperature = config.temperature;
  kc.seed = config.seed ^ 0x1234beefULL;
  kc.useVacancyCache = config.useVacancyCache;
  kc.useTree = config.useTree;
  kc.tEnd = 1e300;  // run() sets the horizon per call
  catalog_ = makeEventCatalog(config.eventCatalog);
  engine_ = std::make_unique<SerialEngine>(*state_, *model_, *cet_, kc,
                                           catalog_.get());
}

Simulation::~Simulation() = default;

std::uint64_t Simulation::run(double tEnd, std::uint64_t maxSteps) {
  std::uint64_t executed = 0;
  const std::size_t expectedVacancies = state_->vacancies().size();
  while (engine_->time() < tEnd && executed < maxSteps) {
    if (!engine_->step().advanced) break;
    ++executed;
    if (config_.invariantCadence > 0 &&
        executed % config_.invariantCadence == 0 &&
        state_->vacancies().size() != expectedVacancies)
      throw InvariantError(
          "vacancy conservation violated during run: expected " +
          std::to_string(expectedVacancies) + ", counted " +
          std::to_string(state_->vacancies().size()));
    if (config_.checkpointInterval > 0 && !config_.checkpointPath.empty() &&
        executed % config_.checkpointInterval == 0)
      writeCheckpoint(config_.checkpointPath);
  }
  return executed;
}

double Simulation::time() const { return engine_->time(); }
std::uint64_t Simulation::steps() const { return engine_->steps(); }
const LatticeState& Simulation::state() const { return *state_; }
SerialEngine& Simulation::engine() { return *engine_; }

ClusterStats Simulation::cuClusters() const {
  return analyzeClusters(*state_, Species::kCu);
}

MemoryTracker Simulation::memoryUsage() const {
  MemoryTracker tracker;
  // The true allocated footprint of the paged packed store — uniform
  // (pure-fill) pages cost nothing, materialized pages 2 bits/site.
  tracker.set("lattice_species", state_->packedMemoryBytes());
  tracker.set("vacancy_list", state_->vacancies().size() * sizeof(Vec3i));
  tracker.set("vac_cache", engine_->cache().memoryBytes());
  tracker.set("propensity_tree", engine_->tree().memoryBytes());
  return tracker;
}

void Simulation::publishMemoryTelemetry() const {
  namespace tm = telemetry;
  if (!tm::enabled()) return;
  memoryUsage().publishTelemetry("memory");
  tm::metrics()
      .gauge("lattice.bytes_per_site")
      .set(state_->store().bytesPerSite());
}

void Simulation::writeCheckpoint(const std::string& path) const {
  saveCheckpoint(path, *state_, *engine_);
}

void Simulation::restoreCheckpoint(const CheckpointData& data) {
  require(data.cellsX == config_.cells && data.cellsY == config_.cells &&
              data.cellsZ == config_.cells &&
              data.latticeConstant == config_.latticeConstant,
          "checkpoint box does not match the configured simulation");
  *state_ = data.restoreState();
  engine_->restore(data.engine);
}

bool Simulation::restoreCheckpointFromFile(const std::string& path) {
  const CheckpointLoadResult result = loadCheckpointWithFallback(path);
  restoreCheckpoint(result.data);
  return result.usedBackup;
}

}  // namespace tkmc
