#pragma once

#include <istream>
#include <map>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace tkmc {

/// Key-value input deck for the command-line driver.
///
/// The paper's artifact runs `tensorkmc -in input`; this parser accepts
/// the same style of plain-text deck: one `key value` pair per line,
/// `#` comments, blank lines ignored. Unknown keys are an error (decks
/// with typos should fail loudly, not silently fall back to defaults).
///
/// Recognized keys (defaults in parentheses):
///   cells <int>                 box edge in unit cells (20)
///   lattice_constant <float>    angstrom (2.87)
///   cutoff <float>              angstrom (6.5)
///   cu_fraction <float>         atomic fraction (0.0134)
///   vacancy_count <int>         explicit count; overrides concentration
///   vacancy_concentration <f>   site fraction (8e-6)
///   temperature <float>         kelvin (573)
///   seed <uint>                 RNG seed (2021)
///   potential eam|nnp           energy backend (nnp)
///   model_path <path>           NNP weights file (train if absent)
///   channels <c0,c1,...>        network widths (64,32,32,1)
///   train_structures <int>      self-training set size (96)
///   train_epochs <int>          self-training epochs (60)
///   use_cache on|off            vacancy cache (on)
///   use_tree on|off             tree propensity selection (on)
///   event_catalog <name>        vacancy_hop | trap_detrap (vacancy_hop);
///                               selects the event-type catalog both
///                               engines dispatch through
///   trap_fraction <float>       trap_detrap: seeded fraction of sites
///                               that trap vacancies (0.05)
///   trap_binding <float>        trap_detrap: binding energy added to
///                               every escape barrier, eV (0.25)
///   trap_seed <uint>            trap_detrap: trap-placement stream (1234)
///   sink_planes <int>           trap_detrap: absorbing unit-cell layers
///                               at z = 0 (1)
///   t_end <float>               simulated seconds (1e-6)
///   max_steps <int>             event cap (unlimited)
///   report_interval <int>       events between progress reports (1000)
///   dump_xyz <path>             trajectory output (off)
///   dump_interval <int>         events between dump frames (1000)
///   checkpoint_write <path>     periodic checkpoint output (off)
///   checkpoint_interval <int>   events between checkpoints (10000)
///   checkpoint_read <path>      resume from a checkpoint (off)
///   mode serial|parallel        engine selection (serial)
///   rank_grid <x,y,z>           parallel rank decomposition (2,2,2);
///                               single-rank axes are legal (flat grids)
///   t_stop <float>              parallel sync interval, seconds (2e-8)
///   threaded on|off             one OS thread per rank instead of the
///                               sequential in-process driver; same
///                               trajectory bit-for-bit (off)
///   recovery on|off             parallel rollback/replay (on)
///   checkpoint_dir <path>       coordinated sharded checkpoints (off)
///   checkpoint_cadence <int>    cycles per checkpoint epoch (1)
///   checkpoint_mode full|delta  full epochs, or dirty-page deltas with
///                               periodic consolidation (full)
///   max_delta_chain <int>       delta links per chain before a
///                               consolidating full epoch (8)
///   spare_ranks <int>           replacement-rank pool for elastic grow
///                               recovery after a fail-stop (0)
///   heartbeat_interval_ms <f>   failure-detector poll interval (5.0)
///   heartbeat_timeout_ms <f>    lease timeout; 0 disables fail-stop
///                               detection (0)
///   remote_dir <path>           stream committed epochs to a remote
///                               shard store at this directory (off)
///   remote_rate_mbps <f>        remote copy bandwidth cap, MB/s;
///                               0 = unthrottled (0)
///   remote_max_lag_epochs <int> epochs the streamer may fall behind
///                               before commits throttle (8)
///   remote_retries <int>        put attempts per remote object before
///                               the epoch is given up (5)
///   resume on|off               resume from the newest complete epoch
///                               in checkpoint_dir, healing from
///                               remote_dir when shards are missing
///                               locally (off)
class InputDeck {
 public:
  /// Parses a deck from a stream. Throws tkmc::Error on malformed lines,
  /// unknown keys, or invalid values.
  static InputDeck parse(std::istream& in);

  /// Parses a deck from a file path.
  static InputDeck parseFile(const std::string& path);

  /// The SimulationConfig encoded by the deck.
  SimulationConfig simulationConfig() const;

  // Run-control settings beyond SimulationConfig.
  double tEnd() const { return tEnd_; }
  std::uint64_t maxSteps() const { return maxSteps_; }
  std::uint64_t reportInterval() const { return reportInterval_; }
  const std::string& dumpPath() const { return dumpPath_; }
  std::uint64_t dumpInterval() const { return dumpInterval_; }
  const std::string& checkpointWritePath() const { return checkpointWrite_; }
  std::uint64_t checkpointInterval() const { return checkpointInterval_; }
  const std::string& checkpointReadPath() const { return checkpointRead_; }

  // Parallel-engine settings (mode parallel).
  bool parallelMode() const { return parallelMode_; }
  Vec3i rankGrid() const { return rankGrid_; }
  bool threaded() const { return threaded_; }
  double tStop() const { return tStop_; }
  bool recovery() const { return recovery_; }
  const std::string& checkpointDir() const { return checkpointDir_; }
  int checkpointCadence() const { return checkpointCadence_; }
  bool deltaCheckpoints() const { return deltaCheckpoints_; }
  int maxDeltaChain() const { return maxDeltaChain_; }
  int spareRanks() const { return spareRanks_; }
  double heartbeatIntervalMs() const { return heartbeatIntervalMs_; }
  double heartbeatTimeoutMs() const { return heartbeatTimeoutMs_; }
  const std::string& remoteDir() const { return remoteDir_; }
  double remoteRateMbps() const { return remoteRateMbps_; }
  int remoteMaxLagEpochs() const { return remoteMaxLagEpochs_; }
  int remoteRetries() const { return remoteRetries_; }
  bool resume() const { return resume_; }

  /// True when the deck set `key` explicitly.
  bool has(const std::string& key) const { return raw_.count(key) > 0; }

  /// Raw value of a key ("" when absent).
  std::string rawValue(const std::string& key) const;

 private:
  void apply(const std::string& key, const std::string& value);

  std::map<std::string, std::string> raw_;
  SimulationConfig config_;
  double tEnd_ = 1e-6;
  std::uint64_t maxSteps_ = ~0ULL;
  std::uint64_t reportInterval_ = 1000;
  std::string dumpPath_;
  std::uint64_t dumpInterval_ = 1000;
  std::string checkpointWrite_;
  std::uint64_t checkpointInterval_ = 10000;
  std::string checkpointRead_;
  bool parallelMode_ = false;
  Vec3i rankGrid_{2, 2, 2};
  bool threaded_ = false;
  double tStop_ = 2e-8;
  bool recovery_ = true;
  std::string checkpointDir_;
  int checkpointCadence_ = 1;
  bool deltaCheckpoints_ = false;
  int maxDeltaChain_ = 8;
  int spareRanks_ = 0;
  double heartbeatIntervalMs_ = 5.0;
  double heartbeatTimeoutMs_ = 0.0;
  std::string remoteDir_;
  double remoteRateMbps_ = 0.0;
  int remoteMaxLagEpochs_ = 8;
  int remoteRetries_ = 5;
  bool resume_ = false;
};

}  // namespace tkmc
