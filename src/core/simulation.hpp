#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/cluster_analysis.hpp"
#include "common/memory_tracker.hpp"
#include "eam/eam_potential.hpp"
#include "kmc/checkpoint.hpp"
#include "kmc/serial_engine.hpp"
#include "nnp/network.hpp"
#include "tabulation/cet.hpp"
#include "tabulation/feature_table.hpp"
#include "tabulation/net.hpp"

namespace tkmc {

/// Top-level configuration for a TensorKMC run.
struct SimulationConfig {
  // Box: cubic, `cells`^3 unit cells (2 atoms per cell).
  int cells = 20;
  double latticeConstant = kLatticeConstantFe;
  double cutoff = kDefaultCutoff;

  // Alloy: paper Sec. 5 defaults (RPV thermal aging).
  double cuFraction = 0.0134;            // 1.34 at.%
  double vacancyConcentration = 8e-6;    // 8e-4 at.%
  int vacancyCount = -1;                 // overrides concentration when >= 0

  double temperature = 573.0;            // kelvin
  std::uint64_t seed = 2021;

  /// Energy backend. kNnp is the paper's configuration; kEam runs the
  /// same engine on the embedded-atom oracle (fast, no training).
  enum class Potential { kEam, kNnp };
  Potential potential = Potential::kNnp;

  /// NNP source: a file saved by saveNetwork(), or empty to self-train a
  /// small network against the EAM oracle at startup. The paper's
  /// production channels are {64,128,128,128,64,1}; the default here is a
  /// reduced demo network that trains in seconds.
  std::string modelPath;
  std::vector<int> channels = {64, 32, 32, 1};
  int trainStructures = 96;
  int trainEpochs = 60;

  // Engine options (Sec. 3.2 cache, Sec. 4.4 tree strategy).
  bool useVacancyCache = true;
  bool useTree = true;

  // Event catalog (deck key `event_catalog` plus the trap/detrap
  // parameters). The default vacancy_hop spec reproduces the historical
  // hardcoded physics bit-for-bit.
  EventCatalogSpec eventCatalog;

  // Fault tolerance. When checkpointInterval > 0 and checkpointPath is
  // set, run() writes a restartable checkpoint every that many events
  // (atomic v2 format, previous file rotated to .bak). When
  // invariantCadence > 0, run() verifies vacancy conservation every that
  // many events and throws InvariantError on violation instead of
  // silently continuing with corrupt state.
  std::string checkpointPath;
  std::uint64_t checkpointInterval = 0;
  std::uint64_t invariantCadence = 0;
};

/// Facade wiring the whole TensorKMC stack: lattice construction, random
/// alloy initialization, potential preparation (train or load), the
/// triple-encoding tables, and the serial AKMC engine.
class Simulation {
 public:
  explicit Simulation(SimulationConfig config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs until `tEnd` simulated seconds (or `maxSteps` events).
  std::uint64_t run(double tEnd, std::uint64_t maxSteps = ~0ULL);

  double time() const;
  std::uint64_t steps() const;
  const LatticeState& state() const;
  SerialEngine& engine();

  /// Energy backend of this run (parallel drivers reuse it to build a
  /// ParallelEngine over the same physics).
  EnergyModel& model() { return *model_; }

  /// Live-array memory inventory of the run (packed lattice occupation,
  /// vacancy cache, propensity tree) — the host-scale analogue of the
  /// paper's Table 1 rows, reproducible from any normal run.
  MemoryTracker memoryUsage() const;

  /// Publishes the memory inventory as `memory.*` gauges plus the
  /// `lattice.bytes_per_site` gauge (allocated packed bytes over sites).
  /// No-op while telemetry is disabled.
  void publishMemoryTelemetry() const;

  /// Cu-precipitate statistics of the current configuration (Fig. 14).
  ClusterStats cuClusters() const;

  const SimulationConfig& config() const { return config_; }
  const Network* network() const { return network_.get(); }
  const Cet& cet() const { return *cet_; }
  const Net& net() const { return *net_; }
  /// Tabulated features (null for the EAM backend).
  const FeatureTable* featureTable() const { return table_.get(); }

  /// Trains (or loads) the NNP for a configuration; exposed so examples
  /// and benches can reuse the exact pipeline.
  static Network buildPotential(const SimulationConfig& config);

  /// Writes a restartable checkpoint of the current state and engine.
  void writeCheckpoint(const std::string& path) const;

  /// Restores a checkpoint written for the same box geometry; the
  /// trajectory continues bit-exactly from the saved point.
  void restoreCheckpoint(const CheckpointData& data);

  /// Restores from a checkpoint file, degrading gracefully to
  /// `<path>.bak` when the primary replica is missing or corrupt.
  /// Returns true when the backup served the load.
  bool restoreCheckpointFromFile(const std::string& path);

 private:
  SimulationConfig config_;
  std::unique_ptr<BccLattice> lattice_;
  std::unique_ptr<LatticeState> state_;
  std::unique_ptr<Cet> cet_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<FeatureTable> table_;
  std::unique_ptr<EamPotential> eam_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<EnergyModel> model_;
  std::unique_ptr<EventCatalog> catalog_;  // outlives engine_ (declared first)
  std::unique_ptr<SerialEngine> engine_;
};

}  // namespace tkmc
