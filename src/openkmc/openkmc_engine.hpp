#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "eam/eam_potential.hpp"
#include "kmc/propensity_tree.hpp"
#include "kmc/rate_calculator.hpp"
#include "lattice/lattice_state.hpp"

namespace tkmc {

/// OpenKMC-style baseline AKMC engine (paper Sec. 2.4 / 3.2 / 3.3).
///
/// Implements the "cache all" strategy TensorKMC replaces:
///  * a POS_ID lookup array over the full doubled-coordinate grid
///    (8 L^3 slots for 2 L^3 sites — the Fig. 5 wasted cells);
///  * per-atom property arrays E_V (pair sum) and E_R (electron density)
///    for every site in the domain, kept current after each hop (Eq. 7);
///  * initial-state energies read from the arrays; candidate final-state
///    energies recomputed with a hop overlay.
///
/// The per-site arrays make this engine's footprint grow with the box,
/// not the vacancy count — the memory behaviour Table 1 quantifies. It is
/// exercised at small scale for cross-validation and speed baselines.
class OpenKmcEngine {
 public:
  struct Config {
    double temperature = 573.0;
    double tEnd = 1e-7;
    std::uint64_t maxSteps = ~0ULL;
    std::uint64_t seed = 12345;
  };

  OpenKmcEngine(LatticeState& state, const EamPotential& potential,
                Config config);

  struct StepResult {
    bool advanced = false;
    double dt = 0.0;
    Vec3i from{};
    Vec3i to{};
  };

  StepResult step();
  std::uint64_t run();

  double time() const { return time_; }
  std::uint64_t steps() const { return steps_; }
  const LatticeState& state() const { return state_; }

  /// Actual bytes held by the cache-all arrays (POS_ID + E_V + E_R).
  std::size_t arrayBytes() const;

  /// Per-atom energy from the cached properties (Eq. 7).
  double cachedAtomEnergy(BccLattice::SiteId id) const;

 private:
  void rebuildArrays();
  void refreshSiteProperties(Vec3i site);
  void refreshSiteProperties(Vec3i site, BccLattice::SiteId id, Species self);
  void refreshAround(Vec3i site);
  double regionEnergyInitial(Vec3i center) const;
  double regionEnergyFinal(Vec3i center, int direction) const;
  void refreshVacancy(int v);
  void markStaleNear(Vec3i site);

  LatticeState& state_;
  const EamPotential& potential_;
  Config config_;
  Rng rng_;

  // Cache-all arrays.
  std::vector<std::int64_t> posId_;  // (2L)^3 doubled-coordinate grid
  std::vector<double> eV_;           // per-site pair sums
  std::vector<double> eR_;           // per-site densities

  // Geometry shared by all evaluations.
  std::vector<Vec3i> offsets_;       // neighbours within cutoff
  std::vector<double> offsetDist_;
  std::vector<Vec3i> regionSites_;   // jumping region, canonical order

  std::vector<JumpRates> rates_;
  std::vector<bool> stale_;
  PropensityTree tree_;
  double time_ = 0.0;
  std::uint64_t steps_ = 0;
};

}  // namespace tkmc
