#include "openkmc/openkmc_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "tabulation/cet.hpp"

namespace tkmc {

OpenKmcEngine::OpenKmcEngine(LatticeState& state, const EamPotential& potential,
                             Config config)
    : state_(state), potential_(potential), config_(config), rng_(config.seed) {
  require(!state.vacancies().empty(), "AKMC needs at least one vacancy");
  const BccLattice& lat = state.lattice();
  offsets_ = lat.offsetsWithinCutoff(potential.cutoff());
  offsetDist_.reserve(offsets_.size());
  for (const Vec3i& d : offsets_) offsetDist_.push_back(lat.offsetDistance(d));
  // Jumping region in the same canonical order the CET uses.
  const Cet cet(lat.latticeConstant(), potential.cutoff());
  regionSites_.assign(cet.sites().begin(), cet.sites().begin() + cet.nRegion());

  rebuildArrays();
  const int n = static_cast<int>(state.vacancies().size());
  rates_.resize(static_cast<std::size_t>(n));
  stale_.assign(static_cast<std::size_t>(n), true);
  tree_.resize(n);
}

void OpenKmcEngine::rebuildArrays() {
  const BccLattice& lat = state_.lattice();
  // POS_ID over the full doubled-coordinate grid: (2Lx)(2Ly)(2Lz) slots,
  // -1 in the wasted (off-lattice-parity) cells.
  const std::size_t gridSlots = static_cast<std::size_t>(2 * lat.cellsX()) *
                                (2 * lat.cellsY()) * (2 * lat.cellsZ());
  posId_.assign(gridSlots, -1);
  const std::size_t strideY = static_cast<std::size_t>(2 * lat.cellsX());
  const std::size_t strideZ = strideY * static_cast<std::size_t>(2 * lat.cellsY());
  for (BccLattice::SiteId id = 0; id < lat.siteCount(); ++id) {
    const Vec3i p = lat.coordinate(id);
    posId_[static_cast<std::size_t>(p.x) + strideY * static_cast<std::size_t>(p.y) +
           strideZ * static_cast<std::size_t>(p.z)] = id;
  }
  // Per-atom property arrays for the whole domain, built in one pass
  // over the packed occupation pages.
  eV_.assign(static_cast<std::size_t>(lat.siteCount()), 0.0);
  eR_.assign(static_cast<std::size_t>(lat.siteCount()), 0.0);
  state_.forEachSite([&](BccLattice::SiteId id, Species self) {
    refreshSiteProperties(lat.coordinate(id), id, self);
  });
}

void OpenKmcEngine::refreshSiteProperties(Vec3i site) {
  const BccLattice::SiteId id = state_.lattice().siteId(site);
  refreshSiteProperties(site, id, state_.species(id));
}

void OpenKmcEngine::refreshSiteProperties(Vec3i site, BccLattice::SiteId id,
                                          Species self) {
  double pairSum = 0.0;
  double density = 0.0;
  if (self != Species::kVacancy) {
    for (std::size_t o = 0; o < offsets_.size(); ++o) {
      const Species nb = state_.speciesAt(site + offsets_[o]);
      if (nb == Species::kVacancy) continue;
      pairSum += potential_.pair(self, nb, offsetDist_[o]);
      density += potential_.density(nb, offsetDist_[o]);
    }
  }
  eV_[static_cast<std::size_t>(id)] = pairSum;
  eR_[static_cast<std::size_t>(id)] = density;
}

void OpenKmcEngine::refreshAround(Vec3i site) {
  refreshSiteProperties(site);
  for (const Vec3i& d : offsets_) refreshSiteProperties(state_.lattice().wrap(site + d));
}

double OpenKmcEngine::cachedAtomEnergy(BccLattice::SiteId id) const {
  const Species self = state_.species(id);
  if (self == Species::kVacancy) return 0.0;
  return 0.5 * eV_[static_cast<std::size_t>(id)] +
         potential_.embedding(self, eR_[static_cast<std::size_t>(id)]);
}

double OpenKmcEngine::regionEnergyInitial(Vec3i center) const {
  // Initial-state energy straight from the cached per-atom arrays.
  const BccLattice& lat = state_.lattice();
  double total = 0.0;
  for (const Vec3i& rel : regionSites_)
    total += cachedAtomEnergy(lat.siteId(center + rel));
  return total;
}

double OpenKmcEngine::regionEnergyFinal(Vec3i center, int direction) const {
  // Candidate-state energy with a hop overlay; properties recomputed on
  // the fly since the arrays describe the current state only.
  const BccLattice& lat = state_.lattice();
  const Vec3i target =
      center + BccLattice::firstNeighborOffsets()[static_cast<std::size_t>(direction)];
  const Vec3i centerW = lat.wrap(center);
  const Vec3i targetW = lat.wrap(target);
  auto overlay = [&](Vec3i p) {
    const Vec3i pw = lat.wrap(p);
    if (pw == centerW) return state_.speciesAt(targetW);
    if (pw == targetW) return Species::kVacancy;
    return state_.speciesAt(pw);
  };
  double total = 0.0;
  for (const Vec3i& rel : regionSites_) {
    const Vec3i abs = center + rel;
    const Species self = overlay(abs);
    if (self == Species::kVacancy) continue;
    double pairSum = 0.0;
    double density = 0.0;
    for (std::size_t o = 0; o < offsets_.size(); ++o) {
      const Species nb = overlay(abs + offsets_[o]);
      if (nb == Species::kVacancy) continue;
      pairSum += potential_.pair(self, nb, offsetDist_[o]);
      density += potential_.density(nb, offsetDist_[o]);
    }
    total += 0.5 * pairSum + potential_.embedding(self, density);
  }
  return total;
}

void OpenKmcEngine::refreshVacancy(int v) {
  const BccLattice& lat = state_.lattice();
  const Vec3i center = lat.wrap(state_.vacancies()[static_cast<std::size_t>(v)]);
  const double initial = regionEnergyInitial(center);
  JumpRates jr;
  const double kt = kBoltzmannEv * config_.temperature;
  for (int k = 0; k < kNumJumpDirections; ++k) {
    const Vec3i target =
        center + BccLattice::firstNeighborOffsets()[static_cast<std::size_t>(k)];
    const Species migrating = state_.speciesAt(target);
    if (migrating == Species::kVacancy) {
      jr.rate[static_cast<std::size_t>(k)] = 0.0;
      continue;
    }
    const double deltaE = regionEnergyFinal(center, k) - initial;
    const double barrier =
        std::max(referenceActivation(migrating) + 0.5 * deltaE, 0.0);
    jr.rate[static_cast<std::size_t>(k)] =
        kAttemptFrequency * std::exp(-barrier / kt);
  }
  for (double r : jr.rate) jr.total += r;
  rates_[static_cast<std::size_t>(v)] = jr;
  tree_.update(v, jr.total);
  stale_[static_cast<std::size_t>(v)] = false;
}

void OpenKmcEngine::markStaleNear(Vec3i site) {
  const BccLattice& lat = state_.lattice();
  // A vacancy's rates depend on sites within the region radius + cutoff;
  // conservatively use twice the interaction span.
  const double radius = 2.0 * potential_.cutoff() + lat.latticeConstant();
  for (std::size_t v = 0; v < state_.vacancies().size(); ++v) {
    const Vec3i d = lat.minimumImage(lat.wrap(state_.vacancies()[v]), lat.wrap(site));
    if (lat.offsetDistance(d) <= radius) stale_[v] = true;
  }
}

OpenKmcEngine::StepResult OpenKmcEngine::step() {
  StepResult result;
  for (std::size_t v = 0; v < stale_.size(); ++v)
    if (stale_[v]) refreshVacancy(static_cast<int>(v));
  const double total = tree_.total();
  if (total <= 0.0) return result;

  const double u1 = rng_.uniform();
  const int v = tree_.select(u1 * total);
  const JumpRates& jr = rates_[static_cast<std::size_t>(v)];
  const double u2 = rng_.uniform();
  double target = u2 * jr.total;
  int direction = 0;
  for (; direction < kNumJumpDirections - 1; ++direction) {
    target -= jr.rate[static_cast<std::size_t>(direction)];
    if (target < 0.0) break;
  }
  while (direction > 0 && jr.rate[static_cast<std::size_t>(direction)] == 0.0)
    --direction;
  const double dt = residenceTime(rng_.uniformOpenLeft(), total);

  const BccLattice& lat = state_.lattice();
  const Vec3i from = lat.wrap(state_.vacancies()[static_cast<std::size_t>(v)]);
  const Vec3i to = lat.wrap(
      from + BccLattice::firstNeighborOffsets()[static_cast<std::size_t>(direction)]);
  state_.hopVacancy(from, to);

  // Cache-all bookkeeping: every atom near the changed sites gets fresh
  // E_V / E_R values; every vacancy in range gets fresh rates next step.
  refreshAround(from);
  refreshAround(to);
  markStaleNear(from);
  markStaleNear(to);

  time_ += dt;
  ++steps_;
  result.advanced = true;
  result.dt = dt;
  result.from = from;
  result.to = to;
  return result;
}

std::uint64_t OpenKmcEngine::run() {
  std::uint64_t executed = 0;
  while (time_ < config_.tEnd && steps_ < config_.maxSteps) {
    if (!step().advanced) break;
    ++executed;
  }
  return executed;
}

std::size_t OpenKmcEngine::arrayBytes() const {
  return posId_.size() * sizeof(std::int64_t) + eV_.size() * sizeof(double) +
         eR_.size() * sizeof(double);
}

}  // namespace tkmc
