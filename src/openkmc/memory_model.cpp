#include "openkmc/memory_model.hpp"

#include <cmath>

namespace tkmc {

std::int64_t MemoryModel::cellsForAtoms(std::int64_t atoms) {
  // 2 sites per BCC unit cell, cubic box.
  return static_cast<std::int64_t>(
      std::llround(std::cbrt(static_cast<double>(atoms) / 2.0)));
}

std::int64_t MemoryModel::extendedSites(std::int64_t cells) const {
  const std::int64_t ext = cells + 2 * ghostCells;
  return 2 * ext * ext * ext;
}

MemoryModel::OpenKmcBreakdown MemoryModel::openKmc(std::int64_t atoms) const {
  const std::int64_t cells = cellsForAtoms(atoms);
  const auto ext = static_cast<std::size_t>(extendedSites(cells));
  OpenKmcBreakdown b{};
  b.t = 32 * ext;
  b.posId = 16 * ext;
  b.eV = 32 * ext;
  b.eR = 32 * ext;
  // Runtime: headline arrays + lattice occupancy (8 B/ext site) +
  // neighbour/event bookkeeping (~62 B/atom) + program base (~96 MiB).
  b.runtime = b.t + b.posId + b.eV + b.eR + 8 * ext +
              static_cast<std::size_t>(62) * static_cast<std::size_t>(atoms) +
              (96ULL << 20);
  return b;
}

MemoryModel::TensorKmcBreakdown MemoryModel::tensorKmc(std::int64_t atoms) const {
  const std::int64_t cells = cellsForAtoms(atoms);
  const auto ext = static_cast<std::size_t>(extendedSites(cells));
  const auto vacancies = static_cast<std::size_t>(
      std::llround(static_cast<double>(atoms) * vacancyConcentration));
  TensorKmcBreakdown b{};
  // Species byte + 4-byte cached global site id per CET slot per vacancy.
  b.vacCache = vacancies * static_cast<std::size_t>(cetSlots) * 5;
  // Lattice occupancy (1 B/ext site), per-site sector/flag byte, event
  // and propensity bookkeeping (~62 B/atom), vacancy cache, program base.
  b.runtime = 2 * ext +
              static_cast<std::size_t>(62) * static_cast<std::size_t>(atoms) +
              b.vacCache + (16ULL << 20);
  return b;
}

}  // namespace tkmc
