#pragma once

#include <cstddef>
#include <cstdint>

namespace tkmc {

/// Analytic per-process memory model reproducing Table 1 of the paper.
///
/// Simulation sizes up to 128 M atoms per process cannot be allocated on
/// a test host, so this model computes the byte counts of each engine's
/// array inventory from the box geometry. Calibration (see DESIGN.md):
///
///  * extended sites = local sites x ghost factor, ghost shell of 2 unit
///    cells per face (matches the Table 1 scaling of T across box sizes);
///  * OpenKMC:   T = 32 B/ext site, POS_ID = 16 B/ext site,
///               E_V = E_R = 32 B/ext site (Eq. 7 feature arrays),
///    plus lattice occupancy, neighbour/event bookkeeping and a fixed
///    program base for the Runtime row;
///  * TensorKMC: VAC cache = (1 + 4) B per CET slot per vacancy
///    (species byte + global id), lattice occupancy, event bookkeeping.
struct MemoryModel {
  double latticeConstant = 2.87;
  int ghostCells = 2;
  int cetSlots = 1181;            // N_all for r_cut = 6.5 A
  double vacancyConcentration = 8e-6;  // 8e-4 at.%

  /// Local box edge (unit cells) for a given atom count (cubic box).
  static std::int64_t cellsForAtoms(std::int64_t atoms);

  /// Extended (local + ghost) site count for a cubic box of `cells`^3.
  std::int64_t extendedSites(std::int64_t cells) const;

  struct OpenKmcBreakdown {
    std::size_t t;        // per-atom type/property array
    std::size_t posId;    // coordinate -> id lookup array
    std::size_t eV;       // pair-sum feature array (Eq. 7)
    std::size_t eR;       // density feature array (Eq. 7)
    std::size_t runtime;  // total resident during iterations
  };
  OpenKmcBreakdown openKmc(std::int64_t atoms) const;

  struct TensorKmcBreakdown {
    std::size_t vacCache;  // Sec. 3.2 vacancy cache
    std::size_t runtime;
  };
  TensorKmcBreakdown tensorKmc(std::int64_t atoms) const;

  /// Per-CG capacity on the new Sunway (16 GB); OpenKMC exceeds it at
  /// 128 M atoms, TensorKMC does not — the Table 1 headline.
  static constexpr std::size_t kCgCapacityBytes = 16ULL << 30;
};

}  // namespace tkmc
