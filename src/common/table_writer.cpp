#include "common/table_writer.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace tkmc {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "table header must not be empty");
}

void TableWriter::addRow(std::vector<std::string> row) {
  require(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TableWriter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells, std::string& out) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size())
        out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit(header_, out);
  std::size_t ruleWidth = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    ruleWidth += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(ruleWidth, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row, out);
  return out;
}

std::string TableWriter::renderCsv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) out += ',';
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TableWriter::print() const { std::fputs(render().c_str(), stdout); }

std::string TableWriter::num(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace tkmc
