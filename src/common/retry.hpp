#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"

namespace tkmc {

/// Bounded-retry policy: total attempt budget plus a capped exponential
/// backoff curve with deterministic jitter. Shared by the checkpoint
/// ShardStreamer (real sleeps between remote put attempts) and the
/// ghost-exchange ARQ resend path (attempt bookkeeping only — its
/// delays are zero so retransmission stays inside the logical clock).
struct RetryPolicy {
  int maxAttempts = 5;        // total tries before giving up, >= 1
  double baseDelayMs = 2.0;   // backoff before the 2nd attempt
  double multiplier = 2.0;    // growth per failed attempt
  double maxDelayMs = 50.0;   // backoff cap
  double jitterFrac = 0.25;   // +/- fraction of the capped delay, in [0,1]
};

/// Per-operation retry schedule. Deterministic: the jitter stream is
/// seeded explicitly, so two schedules built from the same policy and
/// seed produce identical delay sequences (testable against a fake
/// clock, reproducible under --inject-seed).
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy,
                         std::uint64_t jitterSeed = 0)
      : policy_(policy), jitter_(SplitMix64(jitterSeed ^ 0x72747279ULL)) {}

  /// Records one failed attempt and returns the backoff delay (in ms)
  /// to apply before the next try. Check exhausted() afterwards: once
  /// the attempt budget is consumed the caller gives up and the
  /// returned delay is meaningless.
  double recordFailure() {
    ++failures_;
    double delay = policy_.baseDelayMs;
    for (int i = 1; i < failures_; ++i) {
      delay *= policy_.multiplier;
      if (delay >= policy_.maxDelayMs) break;
    }
    delay = std::min(delay, policy_.maxDelayMs);
    if (policy_.jitterFrac > 0.0) {
      // Uniform in [-jitterFrac, +jitterFrac] of the capped delay.
      const double u =
          static_cast<double>(jitter_.next() >> 11) / 9007199254740992.0;
      delay *= 1.0 + policy_.jitterFrac * (2.0 * u - 1.0);
    }
    lastDelayMs_ = std::max(0.0, delay);
    return lastDelayMs_;
  }

  /// True once the operation has failed maxAttempts times.
  bool exhausted() const { return failures_ >= policy_.maxAttempts; }

  int failures() const { return failures_; }
  double lastDelayMs() const { return lastDelayMs_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  SplitMix64 jitter_;
  int failures_ = 0;
  double lastDelayMs_ = 0.0;
};

}  // namespace tkmc
