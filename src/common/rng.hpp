#pragma once

#include <array>
#include <cstdint>

namespace tkmc {

/// SplitMix64 generator, used for seeding and as a cheap stateless mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Deterministic xoshiro256++ PRNG.
///
/// KMC trajectories must be exactly reproducible across the serial engine,
/// the triple-encoding engine, and simulated parallel ranks, so every
/// consumer draws from an explicitly seeded Rng. `split()` derives an
/// independent stream (used to give each simulated rank and each vacancy
/// its own stream without correlation).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in (0, 1]; safe as the argument of log() in the
  /// residence-time algorithm (Eq. 3).
  double uniformOpenLeft();

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint64_t uniformBelow(std::uint64_t bound);

  /// Derives an independent child stream; advances this stream once.
  Rng split();

  /// Raw generator state, for checkpoint/restart. Restoring the state
  /// resumes the stream bit-exactly.
  std::array<std::uint64_t, 4> state() const { return s_; }
  void setState(const std::array<std::uint64_t, 4>& s) { s_ = s; }

  // UniformRandomBitGenerator interface for <random> compatibility.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace tkmc
