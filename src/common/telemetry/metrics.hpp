#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tkmc::telemetry {

/// Process-wide telemetry switch. Recording (counter adds, histogram
/// observations, span emission) is gated on this flag, so instrumented
/// hot paths cost one relaxed atomic load and a branch when telemetry is
/// off — and never allocate. Handle registration is *not* gated: call
/// sites may acquire handles at construction regardless of the flag.
bool enabled();
void setEnabled(bool on);

/// RAII enable/restore for tests and benches.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : previous_(enabled()) {
    setEnabled(on);
  }
  ~ScopedEnable() { setEnabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

/// Monotonic event counter. add() is a relaxed fetch_add; safe from any
/// thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (plus a monotone-max variant for high-water marks).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (high-water marks).
  void max(double v) {
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with percentile estimation.
///
/// Buckets are upper-inclusive: an observation v lands in the first
/// bucket whose bound satisfies v <= bound; values above the last bound
/// land in the implicit overflow bucket. percentile() interpolates
/// linearly inside the selected bucket (Prometheus histogram_quantile
/// style), using the observed min/max to tighten the first and overflow
/// buckets, so exact-bound observations report exact percentiles. The
/// result is additionally clamped into the selected bucket's *observed*
/// value range, so a quantile can never fall outside [min, max] of the
/// data that actually landed there — integer counts observed into
/// default time buckets used to report p50 ~ 1e-6 for all-zero samples.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double minValue() const { return min_.load(std::memory_order_relaxed); }
  double maxValue() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// p in (0, 100]. Returns 0 with no observations.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Exponential seconds buckets, 1 us .. ~100 s (durations default).
  static std::vector<double> timeBoundsSeconds();

  /// Power-of-two buckets 1 .. 4096 for batch-size histograms (dirty
  /// systems per dispatch).
  static std::vector<double> batchSizeBounds();

  /// Decade buckets 1e3 .. 1e12 for per-dispatch byte/FLOP histograms.
  static std::vector<double> trafficBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  // Observed value range per bucket (+inf/-inf while empty): pins
  // percentile interpolation to values that actually occurred.
  std::vector<std::atomic<double>> bucketMin_;
  std::vector<std::atomic<double>> bucketMax_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Named metric registry.
///
/// Lookup registers on first use and returns a stable reference; the
/// returned handles remain valid for the registry's lifetime, so call
/// sites resolve names once (construction time) and record lock-free
/// afterwards. Naming convention: dot-separated `<subsystem>.<metric>`
/// with a unit suffix where ambiguous (`_bytes`, `_seconds`); see
/// DESIGN.md §9.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first registration only (subsequent lookups of
  /// the same name ignore it); defaults to timeBoundsSeconds().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Flat JSON snapshot:
  ///   {"counters":{name:int,...},"gauges":{...},
  ///    "histograms":{name:{count,sum,min,max,mean,p50,p95,p99},...}}
  std::string toJson() const;
  void writeJson(const std::string& path) const;

  /// Drops every metric (test/bench isolation). Invalidates handles.
  void reset();

  /// The process-wide registry instrumented code publishes into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tkmc::telemetry
