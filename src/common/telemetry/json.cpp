#include "common/telemetry/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/fault_injection.hpp"

namespace tkmc::telemetry {

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipSpace();
    require(pos_ == text_.size(), err("trailing characters after document"));
    return v;
  }

 private:
  std::string err(const std::string& what) const {
    return "json: " + what + " at offset " + std::to_string(pos_);
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    require(pos_ < text_.size(), err("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    require(peek() == c, err(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parseValue() {
    skipSpace();
    const char c = peek();
    JsonValue v;
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.str = parseString();
      return v;
    }
    if (consumeLiteral("null")) return v;
    if (consumeLiteral("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consumeLiteral("false")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = false;
      return v;
    }
    return parseNumber();
  }

  JsonValue parseNumber() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double parsed = std::strtod(begin, &end);
    require(end != begin, err("invalid value"));
    pos_ += static_cast<std::size_t>(end - begin);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = parsed;
    return v;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      require(pos_ < text_.size(), err("unterminated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), err("truncated \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              throw Error(err("invalid \\u escape"));
          }
          // The telemetry writers only escape control characters; decode
          // the ASCII range and substitute '?' beyond it.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: throw Error(err("unknown escape"));
      }
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      skipSpace();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      require(c == ',', err("expected ',' or ']'"));
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipSpace();
      std::string key = parseString();
      skipSpace();
      expect(':');
      v.object.emplace_back(std::move(key), parseValue());
      skipSpace();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      require(c == ',', err("expected ',' or '}'"));
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parseDocument();
}

void writeFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) throw IoError("cannot open telemetry path: " + tmp);
    if (faultFires("telemetry.write_tear")) {
      // Simulated crash mid-dump: half the content reaches the temp
      // file, the rename never happens, and the previous `path` (if
      // any) must survive untouched.
      out.write(content.data(),
                static_cast<std::streamsize>(content.size() / 2));
      out.flush();
      throw IoError("injected telemetry write tear: " + tmp);
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out << "\n";
    if (!out.good()) throw IoError("failed writing telemetry file: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw IoError("cannot publish telemetry file " + path + ": " +
                  ec.message());
}

}  // namespace tkmc::telemetry
