#include "common/telemetry/tracer.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/telemetry/json.hpp"

namespace tkmc::telemetry {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::nowMicros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::begin(const char* name, int tid) {
  if (!enabled()) return;
  const std::uint64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, 'B', ts, tid});
}

void Tracer::end(const char* name, int tid) {
  if (!enabled()) return;
  const std::uint64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, 'E', ts, tid});
}

void Tracer::instant(const char* name, int tid) {
  if (!enabled()) return;
  const std::uint64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, 'i', ts, tid});
}

void Tracer::flowBegin(const char* name, std::uint64_t id, int tid) {
  if (!enabled()) return;
  const std::uint64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, 's', ts, tid, id});
}

void Tracer::flowEnd(const char* name, std::uint64_t id, int tid) {
  if (!enabled()) return;
  const std::uint64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, 'f', ts, tid, id});
}

std::size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::setCapacity(std::size_t maxEvents) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = maxEvents;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string Tracer::toJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t lastTs = 0;
  // Dropped events (buffer at capacity) can orphan a 'B'; track the open
  // spans so the export can close them and stay balanced. Flows get the
  // same treatment keyed by (name, id): an 'f' whose 's' was dropped is
  // skipped, and flows still open at export (in-flight messages) are
  // closed on the sender's lane.
  std::map<int, std::vector<const std::string*>> open;
  std::map<std::pair<std::string, std::uint64_t>, int> openFlows;
  auto emit = [&](const std::string& name, char phase, std::uint64_t ts,
                  int tid, std::uint64_t id) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << escapeJson(name) << "\",\"cat\":\"tkmc\",\"ph\":\""
        << phase << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << tid;
    if (phase == 'i') out << ",\"s\":\"t\"";
    if (phase == 's' || phase == 'f') {
      out << ",\"id\":" << id;
      if (phase == 'f') out << ",\"bp\":\"e\"";
    }
    out << "}";
  };
  for (const TraceEvent& e : events_) {
    lastTs = e.tsMicros;
    if (e.phase == 'B') {
      open[e.tid].push_back(&e.name);
    } else if (e.phase == 'E') {
      auto& stack = open[e.tid];
      if (stack.empty()) continue;  // orphaned end (its begin was dropped)
      stack.pop_back();
    } else if (e.phase == 's') {
      openFlows[{e.name, e.id}] = e.tid;
    } else if (e.phase == 'f') {
      const auto it = openFlows.find({e.name, e.id});
      if (it == openFlows.end()) continue;  // start was dropped at capacity
      openFlows.erase(it);
    }
    emit(e.name, e.phase, e.tsMicros, e.tid, e.id);
  }
  for (auto& [tid, stack] : open) {
    while (!stack.empty()) {
      emit(*stack.back(), 'E', lastTs, tid, 0);
      stack.pop_back();
    }
  }
  for (const auto& [key, tid] : openFlows) {
    emit(key.first, 'f', lastTs, tid, key.second);
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

void Tracer::writeJson(const std::string& path) const {
  writeFileAtomic(path, toJson());
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace tkmc::telemetry
