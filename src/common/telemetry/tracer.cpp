#include "common/telemetry/tracer.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/telemetry/json.hpp"

namespace tkmc::telemetry {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::nowMicros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::begin(const char* name, int tid) {
  if (!enabled()) return;
  const std::uint64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, 'B', ts, tid});
}

void Tracer::end(const char* name, int tid) {
  if (!enabled()) return;
  const std::uint64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, 'E', ts, tid});
}

void Tracer::instant(const char* name, int tid) {
  if (!enabled()) return;
  const std::uint64_t ts = nowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, 'i', ts, tid});
}

std::size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::setCapacity(std::size_t maxEvents) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = maxEvents;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string Tracer::toJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t lastTs = 0;
  // Dropped events (buffer at capacity) can orphan a 'B'; track the open
  // spans so the export can close them and stay balanced.
  std::map<int, std::vector<const std::string*>> open;
  auto emit = [&](const std::string& name, char phase, std::uint64_t ts,
                  int tid) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << escapeJson(name) << "\",\"cat\":\"tkmc\",\"ph\":\""
        << phase << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << tid;
    if (phase == 'i') out << ",\"s\":\"t\"";
    out << "}";
  };
  for (const TraceEvent& e : events_) {
    lastTs = e.tsMicros;
    if (e.phase == 'B') {
      open[e.tid].push_back(&e.name);
    } else if (e.phase == 'E') {
      auto& stack = open[e.tid];
      if (stack.empty()) continue;  // orphaned end (its begin was dropped)
      stack.pop_back();
    }
    emit(e.name, e.phase, e.tsMicros, e.tid);
  }
  for (auto& [tid, stack] : open) {
    while (!stack.empty()) {
      emit(*stack.back(), 'E', lastTs, tid);
      stack.pop_back();
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

void Tracer::writeJson(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "cannot open trace path: " + path);
  out << toJson() << "\n";
  require(out.good(), "failed writing trace: " + path);
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace tkmc::telemetry
