#include "common/telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/telemetry/json.hpp"

namespace tkmc::telemetry {

namespace {
std::atomic<bool> gEnabled{false};
}  // namespace

bool enabled() { return gEnabled.load(std::memory_order_relaxed); }
void setEnabled(bool on) { gEnabled.store(on, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1),
      bucketMin_(bounds_.size() + 1), bucketMax_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  require(!bounds_.empty(), "histogram needs at least one bucket bound");
  require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "histogram bounds must be strictly ascending");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    bucketMin_[i].store(std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
    bucketMax_[i].store(-std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = bucketMin_[idx].load(std::memory_order_relaxed);
  while (v < cur && !bucketMin_[idx].compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
  cur = bucketMax_[idx].load(std::memory_order_relaxed);
  while (v > cur && !bucketMax_[idx].compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 1e-9, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  const double lo0 = minValue();
  const double hiN = maxValue();
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double inBucket = static_cast<double>(bucketCount(i));
    if (cum + inBucket < target && i + 1 < buckets_.size()) {
      cum += inBucket;
      continue;
    }
    if (inBucket == 0.0) continue;  // skip empty tail candidates
    // Interpolate inside bucket i. The first bucket starts at the
    // observed minimum and the overflow bucket ends at the observed
    // maximum; interior edges are the configured bounds.
    double lo = i == 0 ? lo0 : bounds_[i - 1];
    double hi = i < bounds_.size() ? bounds_[i] : hiN;
    lo = std::max(lo, lo0);
    hi = std::min(hi, hiN);
    if (hi < lo) hi = lo;
    const double fraction = std::clamp((target - cum) / inBucket, 0.0, 1.0);
    double value = lo + fraction * (hi - lo);
    // Never report a value the bucket did not observe: a bucket whose
    // configured edges dwarf its data (e.g. integer counts in default
    // time buckets, where all-zero samples sit in (-inf, 1e-6]) would
    // otherwise interpolate into the empty part of the range.
    const double bMin = bucketMin_[i].load(std::memory_order_relaxed);
    const double bMax = bucketMax_[i].load(std::memory_order_relaxed);
    if (bMin <= bMax) value = std::clamp(value, bMin, bMax);
    return value;
  }
  return hiN;
}

std::vector<double> Histogram::timeBoundsSeconds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1e2 * 1.5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.5 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;
}

std::vector<double> Histogram::batchSizeBounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 4096.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::trafficBounds() {
  std::vector<double> bounds;
  for (double b = 1e3; b <= 1e12; b *= 10.0) bounds.push_back(b);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::timeBoundsSeconds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

namespace {

// JSON floats: finite values verbatim, non-finite as null (min/max of an
// empty histogram are +/-inf, which raw printf would emit as invalid
// JSON).
void appendNumber(std::ostringstream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

}  // namespace

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out.precision(17);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << escapeJson(name) << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << escapeJson(name) << "\":";
    appendNumber(out, g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << escapeJson(name) << "\":{\"count\":" << h->count()
        << ",\"sum\":";
    appendNumber(out, h->sum());
    out << ",\"min\":";
    appendNumber(out, h->count() ? h->minValue() : 0.0);
    out << ",\"max\":";
    appendNumber(out, h->count() ? h->maxValue() : 0.0);
    out << ",\"mean\":";
    appendNumber(out, h->mean());
    out << ",\"p50\":";
    appendNumber(out, h->percentile(50));
    out << ",\"p95\":";
    appendNumber(out, h->percentile(95));
    out << ",\"p99\":";
    appendNumber(out, h->percentile(99));
    out << "}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::writeJson(const std::string& path) const {
  writeFileAtomic(path, toJson());
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace tkmc::telemetry
