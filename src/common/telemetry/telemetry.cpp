#include "common/telemetry/telemetry.hpp"

#include <filesystem>

#include "common/error.hpp"

namespace tkmc::telemetry {

void writeAll(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  require(!ec, "cannot create telemetry directory: " + dir + " (" +
                   ec.message() + ")");
  tracer().writeJson((std::filesystem::path(dir) / "trace.json").string());
  metrics().writeJson((std::filesystem::path(dir) / "metrics.json").string());
}

void resetAll() {
  metrics().reset();
  tracer().reset();
}

}  // namespace tkmc::telemetry
