#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tkmc::telemetry {

/// Escapes a string for embedding inside JSON double quotes.
std::string escapeJson(const std::string& s);

/// Crash-safe file write: the content lands in `path + ".tmp"` first and
/// is renamed over `path` only once fully flushed — the same idiom
/// checkpoint commits use — so a fault mid-dump never leaves a torn file
/// under the final name. Throws IoError on any failure. The fault point
/// "telemetry.write_tear" (see common/fault_injection.hpp) simulates a
/// crash after a partial temp write.
void writeFileAtomic(const std::string& path, const std::string& content);

/// Minimal JSON document model, enough to round-trip the telemetry
/// outputs (metrics snapshots, Chrome trace files) in tests and tools.
/// Not a general-purpose library: numbers are doubles, object key order
/// is preserved, duplicate keys are kept as-is.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool isNull() const { return type == Type::kNull; }
  bool isNumber() const { return type == Type::kNumber; }
  bool isString() const { return type == Type::kString; }
  bool isArray() const { return type == Type::kArray; }
  bool isObject() const { return type == Type::kObject; }

  /// First value under `key`, or nullptr when absent / not an object.
  const JsonValue* find(const std::string& key) const;

  /// Parses a complete JSON document; trailing non-whitespace or any
  /// syntax error throws tkmc::Error with the byte offset.
  static JsonValue parse(const std::string& text);
};

}  // namespace tkmc::telemetry
