#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/telemetry/metrics.hpp"  // enabled()

namespace tkmc::telemetry {

/// One Chrome trace event. `phase` follows the trace-event format:
/// 'B' begin, 'E' end, 'i' instant, 's' flow start, 'f' flow end.
struct TraceEvent {
  std::string name;
  char phase = 'i';
  std::uint64_t tsMicros = 0;  // microseconds since the tracer epoch
  int tid = 0;                 // lane; engines use the rank id
  std::uint64_t id = 0;        // flow binding id ('s'/'f' only)
};

/// Collects nested spans and exports them as Chrome trace-event JSON
/// (load the file in chrome://tracing or https://ui.perfetto.dev).
///
/// Recording is gated on telemetry::enabled(); a bounded event buffer
/// (setCapacity) keeps long runs from exhausting memory — once full,
/// further events are counted in dropped() instead of stored, and the
/// exporter appends synthetic 'E' events for any spans still open so the
/// file stays balanced.
class Tracer {
 public:
  Tracer();

  // Names are taken as C strings so a disabled tracer never materializes
  // a std::string (the temporary would heap-allocate before the enabled
  // check for names beyond the small-string capacity).
  void begin(const char* name, int tid = 0);
  void end(const char* name, int tid = 0);
  void instant(const char* name, int tid = 0);

  // Flow events: a start on the sender's lane and an end on the
  // receiver's lane bound by (cat, name, id) render as an arrow between
  // the two lanes in Perfetto. SimComm stamps message sends with the
  // process-wide Lamport clock and uses that stamp as the flow id —
  // globally unique even across ARQ channel resets, unlike the per-
  // channel sequence numbers. The exporter skips an 'f' whose 's' was
  // dropped at capacity and synthesizes ends for flows still open at
  // export (in-flight messages), mirroring the span balancing.
  void flowBegin(const char* name, std::uint64_t id, int tid = 0);
  void flowEnd(const char* name, std::uint64_t id, int tid = 0);

  std::size_t eventCount() const;
  std::uint64_t dropped() const;
  void setCapacity(std::size_t maxEvents);

  /// {"traceEvents":[...],"displayTimeUnit":"ms"}
  std::string toJson() const;
  void writeJson(const std::string& path) const;

  /// Drops all events and restarts the epoch.
  void reset();

  std::vector<TraceEvent> events() const;  // snapshot (tests)

  static Tracer& global();

 private:
  std::uint64_t nowMicros() const;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 1 << 18;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span on the global tracer. When telemetry is disabled at
/// construction the object holds no state and touches neither the clock
/// nor the tracer — the disabled path is allocation-free.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, int tid = 0) {
    if (enabled()) {
      tracer_ = &Tracer::global();
      name_ = name;
      tid_ = tid;
      tracer_->begin(name_, tid_);
    }
  }
  ~ScopedSpan() {
    if (tracer_) tracer_->end(name_, tid_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  int tid_ = 0;
};

#define TKMC_TELEMETRY_CONCAT2(a, b) a##b
#define TKMC_TELEMETRY_CONCAT(a, b) TKMC_TELEMETRY_CONCAT2(a, b)

/// Scoped span covering the rest of the enclosing block.
#define TKMC_SPAN(name)                                       \
  ::tkmc::telemetry::ScopedSpan TKMC_TELEMETRY_CONCAT(        \
      tkmcTelemetrySpan_, __LINE__)(name)

/// Scoped span on an explicit lane (per-rank timelines).
#define TKMC_SPAN_TID(name, tid)                              \
  ::tkmc::telemetry::ScopedSpan TKMC_TELEMETRY_CONCAT(        \
      tkmcTelemetrySpan_, __LINE__)(name, tid)

}  // namespace tkmc::telemetry
