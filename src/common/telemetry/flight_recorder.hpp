#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tkmc::telemetry {

/// Event kinds the flight recorder understands. Values are part of the
/// on-disk blackbox format (tools/tkmc_blackbox decodes them by value),
/// so append only — never renumber.
enum class BlackboxEventType : std::uint16_t {
  kMarker = 0,             // free-form marker; a/b caller-defined
  kKmcEvent = 1,           // committed hop: tag=sector, a=event ordinal, b=direction
  kPropensityRefresh = 2,  // batched refresh: tag=sector, a=batch size
  kCommSend = 3,           // tag=message tag, a=frame seq, b=payload bytes
  kCommRecv = 4,           // tag=message tag, a=frame seq, b=sender lamport
  kCommError = 5,          // receive failure: tag=tag, a=frame seq,
                           //                  b=1 sequence gap / 2 bad CRC
  kCheckpointStage = 6,    // shard staged: tag=1 delta/0 full, a=epoch, b=bytes
  kCommitEpoch = 7,        // epoch committed: tag=1 delta/0 full, a=epoch, b=crc
  kRankKilled = 8,         // fail-stop: a=victim rank
  kLeaseExpired = 9,       // detector verdict: tag=tag waited on, a=dead rank,
                           //                   b=detection latency (ms)
  kRankFailureDetected = 10,  // engine saw RankFailure: a=rank, b=detect ms
  kRecovery = 11,          // recovery done: tag=1 grow/0 shrink, a=epoch,
                           //                b=cycles rolled back
  kRollback = 12,          // cycle rollback/replay: tag=attempt, a=cycle
  kInvariantTrip = 13,     // invariant monitor fired: a=cycle
  kFaultInjected = 14,     // armed fault fired: a=fnv1a64(point name), b=hit#
  kCycle = 15,             // cycle boundary: tag=sector, a=cycle number
  kDump = 16,              // dump trigger marker: a=fnv1a64(reason)
};

/// One flight-recorder entry. POD with fixed layout: the blackbox dump
/// writes these structs raw, so the size is pinned by a static_assert.
struct BlackboxEvent {
  std::uint64_t lamport = 0;   // per-process Lamport stamp (causal order)
  std::uint64_t tsMicros = 0;  // wall micros since the recorder epoch
  std::uint16_t type = 0;      // BlackboxEventType
  std::int16_t rank = 0;       // simulated rank the event belongs to
  std::int32_t tag = 0;        // event-type-specific discriminator
  std::uint64_t a = 0;         // event-type-specific payloads
  std::uint64_t b = 0;
};
static_assert(sizeof(BlackboxEvent) == 40, "blackbox dump layout is fixed");

/// FNV-1a of a C string; used to reference names (fault points, dump
/// reasons) from fixed-size binary events. tools/tkmc_blackbox reverses
/// known hashes through the fault-point catalog.
std::uint64_t fnv1a64(const char* s);

/// Per-rank flight recorder ("blackbox"): a fixed-size ring of binary
/// events that is always on — independent of telemetry::enabled() — and
/// cheap enough to leave armed in production runs. record() is lock-free
/// (one relaxed fetch_add on the ring head plus five relaxed word
/// stores sealed by a release stamp) and never allocates; all
/// allocation happens in configureRanks().
///
/// Concurrency: each slot is a seqlock — the writer claims an absolute
/// index via the head counter, publishes the payload words, then stores
/// stamp = index + 1 with release ordering. snapshot() (and therefore
/// dumpAll()/dumpIncident()) validates the stamp before and after
/// copying a slot and skips entries that are mid-append, so a dump
/// taken while rank threads are recording is still a decodable,
/// CRC-sealed TKBB file containing only fully published events.
///
/// Every record ticks a process-wide Lamport clock; comm receive paths
/// fold the sender's stamp in via lamportObserve(), so merging per-rank
/// dumps by (lamport, ts) yields a causally ordered cross-rank timeline.
///
/// Dumps: setDumpDir() arms a destination; dumpIncident() (called on
/// RankFailure, invariant trips, and fatal signals) and dumpAll() write
/// one `blackbox_rank<R>.bin` per configured rank — newest-first rings
/// flattened oldest-to-newest, CRC-sealed, via temp-file + atomic
/// rename. readDump() decodes a file back (shared by tools and tests).
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;  // events per rank
  static constexpr int kMaxRanks = 512;

  /// Ensures rings exist for ranks [0, ranks). Grows only; existing
  /// rings (and their contents) are kept. Not safe concurrently with
  /// record() for the *new* ranks — call during engine construction.
  void configureRanks(int ranks);
  int rankCount() const { return ringCount_.load(std::memory_order_acquire); }

  /// Ring size for rings created by future configureRanks() calls.
  void setCapacity(std::size_t eventsPerRank);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Appends one event to `rank`'s ring (wrapping over the oldest entry
  /// when full) and stamps it with the next Lamport tick. Out-of-range
  /// ranks and a disabled recorder are silent no-ops.
  void record(int rank, BlackboxEventType type, std::int32_t tag = 0,
              std::uint64_t a = 0, std::uint64_t b = 0);

  /// Lamport clock: tick() for local/send events (returns the stamp to
  /// put on the wire), observe() folds a received stamp in so the next
  /// local tick orders after the send.
  std::uint64_t lamportTick();
  void lamportObserve(std::uint64_t peerStamp);
  std::uint64_t lamportNow() const {
    return lamport_.load(std::memory_order_relaxed);
  }

  /// Total events ever recorded for `rank` (>= ring size once wrapped).
  std::uint64_t recordedTotal(int rank) const;

  /// Ring contents oldest-to-newest (at most the ring capacity).
  std::vector<BlackboxEvent> snapshot(int rank) const;

  /// Arms incident dumps into `dir` (empty disarms). Created on demand.
  void setDumpDir(std::string dir);
  const std::string& dumpDir() const { return dumpDir_; }

  /// Writes `blackbox_rank<R>.bin` for every configured rank into the
  /// armed dump directory. Returns files written (0 when disarmed or no
  /// rings). Never throws: a blackbox dump runs on failure paths and
  /// must not mask the original error.
  int dumpAll() const noexcept;

  /// Records a kDump marker naming `reason`, then dumpAll().
  int dumpIncident(const char* reason) noexcept;

  /// Drops every ring and the Lamport clock; keeps enabled/dump-dir
  /// arming. Test isolation.
  void reset();

  /// A decoded blackbox file.
  struct Dump {
    int rank = 0;
    std::uint64_t capacity = 0;
    std::uint64_t totalRecorded = 0;
    std::vector<BlackboxEvent> events;  // oldest-to-newest
  };

  /// Writes one dump file (temp + atomic rename). Exposed so tests can
  /// hand-build dumps; dumpAll() goes through this too.
  static void writeDump(const std::string& path, int rank,
                        std::uint64_t capacity, std::uint64_t totalRecorded,
                        const std::vector<BlackboxEvent>& events);

  /// Decodes a blackbox file; throws IoError on a bad magic, version,
  /// truncation, or CRC mismatch.
  static Dump readDump(const std::string& path);

  static const char* typeName(BlackboxEventType type);

  /// The process-wide recorder every instrumented path records into.
  static FlightRecorder& global();

 private:
  /// One seqlock-protected ring slot. The payload is stored as five
  /// relaxed atomic words (BlackboxEvent is exactly 40 bytes, pinned
  /// above); `stamp` holds absolute-slot-index + 1 once the words are
  /// fully published, 0 while the slot has never completed a write.
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};
    std::array<std::atomic<std::uint64_t>, 5> words{};
  };

  struct Ring {
    explicit Ring(std::size_t cap) : slots(cap) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> head{0};  // total recorded; slot = head % cap
  };

  std::uint64_t nowMicros() const;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> lamport_{0};
  std::atomic<int> ringCount_{0};
  std::array<std::unique_ptr<Ring>, kMaxRanks> rings_;
  std::size_t capacity_ = kDefaultCapacity;
  std::string dumpDir_;
  std::int64_t epochMicros_ = 0;  // steady-clock origin of tsMicros
  mutable std::mutex configMutex_;  // guards configureRanks/reset/dump dir
};

}  // namespace tkmc::telemetry
