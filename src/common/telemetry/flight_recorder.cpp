#include "common/telemetry/flight_recorder.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace tkmc::telemetry {
namespace {

constexpr std::uint32_t kMagic = 0x42424B54u;  // "TKBB" little-endian
constexpr std::uint32_t kVersion = 1;

struct DumpHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::int32_t rank = 0;
  std::uint32_t reserved = 0;
  std::uint64_t capacity = 0;
  std::uint64_t totalRecorded = 0;
  std::uint64_t eventCount = 0;
};
static_assert(sizeof(DumpHeader) == 40, "blackbox header layout is fixed");

std::int64_t steadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t fnv1a64(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
    h *= 0x100000001b3ULL;
  }
  return h;
}

void FlightRecorder::configureRanks(int ranks) {
  std::lock_guard<std::mutex> lock(configMutex_);
  if (ranks > kMaxRanks) ranks = kMaxRanks;
  const int current = ringCount_.load(std::memory_order_acquire);
  if (ranks <= current) return;
  for (int r = current; r < ranks; ++r)
    rings_[static_cast<std::size_t>(r)] = std::make_unique<Ring>(capacity_);
  if (epochMicros_ == 0) epochMicros_ = steadyMicros();
  ringCount_.store(ranks, std::memory_order_release);
}

void FlightRecorder::setCapacity(std::size_t eventsPerRank) {
  std::lock_guard<std::mutex> lock(configMutex_);
  require(eventsPerRank > 0, "flight recorder needs a positive capacity");
  capacity_ = eventsPerRank;
}

std::uint64_t FlightRecorder::lamportTick() {
  return lamport_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void FlightRecorder::lamportObserve(std::uint64_t peerStamp) {
  std::uint64_t cur = lamport_.load(std::memory_order_relaxed);
  while (peerStamp > cur && !lamport_.compare_exchange_weak(
                                cur, peerStamp, std::memory_order_relaxed)) {
  }
}

std::uint64_t FlightRecorder::nowMicros() const {
  return static_cast<std::uint64_t>(steadyMicros() - epochMicros_);
}

void FlightRecorder::record(int rank, BlackboxEventType type, std::int32_t tag,
                            std::uint64_t a, std::uint64_t b) {
  if (!enabled()) return;
  const int count = ringCount_.load(std::memory_order_acquire);
  if (rank < 0 || rank >= count) return;
  Ring& ring = *rings_[static_cast<std::size_t>(rank)];
  BlackboxEvent ev;
  ev.lamport = lamportTick();
  ev.tsMicros = nowMicros();
  ev.type = static_cast<std::uint16_t>(type);
  ev.rank = static_cast<std::int16_t>(rank);
  ev.tag = tag;
  ev.a = a;
  ev.b = b;
  std::array<std::uint64_t, 5> words;
  static_assert(sizeof(ev) == sizeof(words), "event packs into slot words");
  std::memcpy(words.data(), &ev, sizeof(ev));
  // Seqlock publish: claim an absolute index, store the payload words,
  // then seal with stamp = index + 1 (release). Readers that catch the
  // slot mid-write see a stamp that does not match the index they are
  // scanning and skip it.
  const std::uint64_t index = ring.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[static_cast<std::size_t>(index % ring.slots.size())];
  for (std::size_t w = 0; w < words.size(); ++w)
    slot.words[w].store(words[w], std::memory_order_relaxed);
  slot.stamp.store(index + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::recordedTotal(int rank) const {
  if (rank < 0 || rank >= ringCount_.load(std::memory_order_acquire)) return 0;
  return rings_[static_cast<std::size_t>(rank)]->head.load(
      std::memory_order_relaxed);
}

std::vector<BlackboxEvent> FlightRecorder::snapshot(int rank) const {
  std::vector<BlackboxEvent> out;
  if (rank < 0 || rank >= ringCount_.load(std::memory_order_acquire))
    return out;
  const Ring& ring = *rings_[static_cast<std::size_t>(rank)];
  const std::uint64_t total = ring.head.load(std::memory_order_acquire);
  const std::uint64_t cap = ring.slots.size();
  const std::uint64_t kept = total < cap ? total : cap;
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t i = total - kept; i < total; ++i) {
    const Slot& slot = ring.slots[static_cast<std::size_t>(i % cap)];
    // Seqlock read: the stamp must name this exact absolute index both
    // before and after the copy, else the slot is mid-append (or already
    // overwritten by a lap) and is skipped. Concurrent appends therefore
    // cost at most their own entry, never a torn one.
    const std::uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before != i + 1) continue;
    std::array<std::uint64_t, 5> words;
    for (std::size_t w = 0; w < words.size(); ++w)
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_relaxed) != i + 1) continue;
    BlackboxEvent ev;
    std::memcpy(static_cast<void*>(&ev), words.data(), sizeof(ev));
    out.push_back(ev);
  }
  return out;
}

void FlightRecorder::setDumpDir(std::string dir) {
  std::lock_guard<std::mutex> lock(configMutex_);
  dumpDir_ = std::move(dir);
}

void FlightRecorder::writeDump(const std::string& path, int rank,
                               std::uint64_t capacity,
                               std::uint64_t totalRecorded,
                               const std::vector<BlackboxEvent>& events) {
  DumpHeader header;
  header.rank = rank;
  header.capacity = capacity;
  header.totalRecorded = totalRecorded;
  header.eventCount = events.size();
  const auto* eventBytes = reinterpret_cast<const std::uint8_t*>(events.data());
  const std::size_t eventByteCount = events.size() * sizeof(BlackboxEvent);
  const std::uint32_t crc = crc32(eventBytes, eventByteCount);
  // Same crash-safety idiom as checkpoint commits: a torn dump must
  // never shadow a complete one under the final name.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "cannot open blackbox dump path: " + tmp);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(eventBytes),
              static_cast<std::streamsize>(eventByteCount));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    require(out.good(), "failed writing blackbox dump: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw IoError("cannot publish blackbox dump " + path + ": " +
                  ec.message());
}

int FlightRecorder::dumpAll() const noexcept {
  int written = 0;
  try {
    std::string dir;
    {
      std::lock_guard<std::mutex> lock(configMutex_);
      dir = dumpDir_;
    }
    if (dir.empty()) return 0;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return 0;
    const int count = ringCount_.load(std::memory_order_acquire);
    for (int r = 0; r < count; ++r) {
      const std::string path =
          (std::filesystem::path(dir) /
           ("blackbox_rank" + std::to_string(r) + ".bin"))
              .string();
      writeDump(path, r, rings_[static_cast<std::size_t>(r)]->slots.size(),
                recordedTotal(r), snapshot(r));
      ++written;
    }
  } catch (...) {
    // A blackbox dump runs on failure paths; it must never mask the
    // original error. Whatever was written before the throw stands.
  }
  return written;
}

int FlightRecorder::dumpIncident(const char* reason) noexcept {
  const int count = ringCount_.load(std::memory_order_acquire);
  for (int r = 0; r < count; ++r)
    record(r, BlackboxEventType::kDump, 0, fnv1a64(reason));
  return dumpAll();
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lock(configMutex_);
  ringCount_.store(0, std::memory_order_release);
  for (auto& ring : rings_) ring.reset();
  lamport_.store(0, std::memory_order_relaxed);
  epochMicros_ = steadyMicros();
}

FlightRecorder::Dump FlightRecorder::readDump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot open blackbox dump: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(DumpHeader) + sizeof(std::uint32_t))
    throw IoError("blackbox dump truncated: " + path);
  DumpHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != kMagic)
    throw IoError("not a blackbox dump (bad magic): " + path);
  if (header.version != kVersion)
    throw IoError("unsupported blackbox dump version " +
                  std::to_string(header.version) + ": " + path);
  const std::size_t eventByteCount =
      static_cast<std::size_t>(header.eventCount) * sizeof(BlackboxEvent);
  if (bytes.size() != sizeof(header) + eventByteCount + sizeof(std::uint32_t))
    throw IoError("blackbox dump size does not match its header: " + path);
  std::uint32_t storedCrc = 0;
  std::memcpy(&storedCrc, bytes.data() + sizeof(header) + eventByteCount,
              sizeof(storedCrc));
  const auto* eventBytes =
      reinterpret_cast<const std::uint8_t*>(bytes.data() + sizeof(header));
  if (crc32(eventBytes, eventByteCount) != storedCrc)
    throw IoError("blackbox dump failed its CRC32 check: " + path);
  Dump dump;
  dump.rank = header.rank;
  dump.capacity = header.capacity;
  dump.totalRecorded = header.totalRecorded;
  dump.events.resize(static_cast<std::size_t>(header.eventCount));
  std::memcpy(dump.events.data(), eventBytes, eventByteCount);
  return dump;
}

const char* FlightRecorder::typeName(BlackboxEventType type) {
  switch (type) {
    case BlackboxEventType::kMarker: return "marker";
    case BlackboxEventType::kKmcEvent: return "kmc_event";
    case BlackboxEventType::kPropensityRefresh: return "propensity_refresh";
    case BlackboxEventType::kCommSend: return "comm_send";
    case BlackboxEventType::kCommRecv: return "comm_recv";
    case BlackboxEventType::kCommError: return "comm_error";
    case BlackboxEventType::kCheckpointStage: return "checkpoint_stage";
    case BlackboxEventType::kCommitEpoch: return "commit_epoch";
    case BlackboxEventType::kRankKilled: return "rank_killed";
    case BlackboxEventType::kLeaseExpired: return "lease_expired";
    case BlackboxEventType::kRankFailureDetected: return "rank_failure";
    case BlackboxEventType::kRecovery: return "recovery";
    case BlackboxEventType::kRollback: return "rollback";
    case BlackboxEventType::kInvariantTrip: return "invariant_trip";
    case BlackboxEventType::kFaultInjected: return "fault_injected";
    case BlackboxEventType::kCycle: return "cycle";
    case BlackboxEventType::kDump: return "dump";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

}  // namespace tkmc::telemetry
