#pragma once

#include <string>

#include "common/telemetry/flight_recorder.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/tracer.hpp"

namespace tkmc::telemetry {

/// One-stop shop for instrumented code and drivers.
///
/// Naming and ownership conventions (see DESIGN.md §9):
///   - metric names are dot-separated `<subsystem>.<metric>` with a unit
///     suffix where ambiguous (`_bytes`, `_seconds`);
///   - the component that owns a phase opens its span (an engine never
///     opens spans on behalf of the comm layer);
///   - span `tid` encodes the simulated rank (0 for global phases).

/// Convenience: metrics().counter("x").inc() etc.
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }
inline Tracer& tracer() { return Tracer::global(); }

/// Always-on per-rank flight recorder (independent of enabled(); see
/// flight_recorder.hpp). resetAll() deliberately leaves it untouched so a
/// post-mortem dump can still cover events from before a bench reset.
inline FlightRecorder& flightRecorder() { return FlightRecorder::global(); }

/// Writes `<dir>/trace.json` (Chrome trace events) and
/// `<dir>/metrics.json` (flat metrics snapshot), creating `dir` first.
void writeAll(const std::string& dir);

/// Clears the global registry and tracer and restarts the trace epoch
/// (bench/test isolation; outstanding metric handles are invalidated).
void resetAll();

}  // namespace tkmc::telemetry
