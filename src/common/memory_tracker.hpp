#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace tkmc {

/// Named byte-accounting registry.
///
/// Table 1 of the paper reports per-array memory for simulation sizes (up
/// to 128 M atoms) that cannot be physically allocated on a test host, so
/// engines register the *sizes* of their arrays here. For sizes that are
/// actually allocated the tracker doubles as a cross-check: tests compare
/// registered bytes against real container footprints.
class MemoryTracker {
 public:
  /// Registers (or overwrites) the size in bytes of a named array.
  void set(const std::string& name, std::size_t bytes);

  /// Adds bytes to a named entry (creates it at zero if absent).
  void add(const std::string& name, std::size_t bytes);

  /// Bytes recorded for `name`; zero when absent.
  std::size_t bytes(const std::string& name) const;

  /// Sum of all recorded entries.
  std::size_t totalBytes() const;

  /// Largest totalBytes() ever observed after a set()/add() (survives
  /// clear(), so Table-1-style peak claims are reproducible from a run
  /// that rebuilds its inventory).
  std::size_t peakBytes() const { return peak_; }

  /// Entry names in lexicographic order.
  std::vector<std::string> names() const;

  void clear();

  /// Publishes each entry as gauge `<prefix>.<name>_bytes` plus
  /// `<prefix>.total_bytes` and `<prefix>.peak_bytes` in the global
  /// telemetry registry. No-op while telemetry is disabled.
  void publishTelemetry(const std::string& prefix) const;

  /// Formats a byte count as mebibytes with two decimals, e.g. "4014.00".
  static std::string toMiB(std::size_t bytes);

 private:
  std::map<std::string, std::size_t> entries_;
  std::size_t peak_ = 0;
};

}  // namespace tkmc
