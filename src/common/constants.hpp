#pragma once

// Physical constants and model parameters shared across TensorKMC.
// Units follow the paper: lengths in angstrom, energies in eV, times in
// seconds, temperatures in kelvin.

namespace tkmc {

/// Boltzmann constant in eV/K.
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Attempt frequency Gamma_0 of Eq. (1), in 1/s.
inline constexpr double kAttemptFrequency = 6.0e12;

/// BCC Fe lattice constant in angstrom.
inline constexpr double kLatticeConstantFe = 2.87;

/// Default interaction cutoff radius in angstrom (paper Sec. 4.1.1).
inline constexpr double kDefaultCutoff = 6.5;

/// Shorter cutoff used in the Fig. 11 serial comparison.
inline constexpr double kShortCutoff = 5.8;

/// Reference activation energies E_a^0 of Eq. (2), in eV.
inline constexpr double kActivationFe = 0.65;
inline constexpr double kActivationCu = 0.56;

/// Atom species on the lattice. kVacancy marks an empty site.
enum class Species : unsigned char {
  kFe = 0,
  kCu = 1,
  kVacancy = 2,
};

/// Number of real (non-vacancy) element types in the Fe-Cu system.
inline constexpr int kNumElements = 2;

/// Number of first-nearest-neighbor jump directions on a BCC lattice.
inline constexpr int kNumJumpDirections = 8;

/// Returns the reference activation energy for the species that migrates
/// into the vacancy (Eq. 2).
inline constexpr double referenceActivation(Species s) {
  return s == Species::kCu ? kActivationCu : kActivationFe;
}

}  // namespace tkmc
