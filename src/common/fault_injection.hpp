#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace tkmc {

/// Deterministic, seeded fault-injection registry.
///
/// Production code marks *fault points* — named places where a failure
/// can be simulated — by calling faultFires("point"). Tests arm faults
/// on a FaultInjector and install it with a FaultScope; outside any
/// scope every fault point costs a null check and never fires, so the
/// simulation hot path pays nothing.
///
/// Firing is deterministic: each point draws from its own RNG stream
/// seeded from (injector seed, point name), so a run with a given seed
/// and arming always fails at the same hits, which makes failure-path
/// tests reproducible.
///
/// Thread safety: every method is mutex-guarded, so concurrently probed
/// points (the threaded execution backend's rank threads all pass
/// through SimComm::send) count hits and draw without data races. Note
/// that in the default *global-stream* mode the hit ordinals of a point
/// probed from several threads depend on scheduling, so armSchedule()
/// reproduces exactly only when the point is probed from one thread at
/// a time (or the run is sequential). For interleaving-independent
/// reproduction under the threaded backend, setChannelStreams(true)
/// switches keyed probes — faultFires(point, key), where SimComm passes
/// the (from, to, tag) channel key — to one deterministically derived
/// RNG stream and hit counter *per key*: which (channel, per-channel
/// ordinal) pairs fire is then a pure function of (seed, point, key),
/// independent of thread interleaving. In channel-stream mode schedule
/// ordinals are interpreted per key.
///
/// The registered fault points are enumerated by faultPointCatalog()
/// (printed by `tensorkmc --inject list`; see DESIGN.md "Fault
/// tolerance").
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0);

  /// Arms `point` to fire independently with probability `p` per hit.
  void armProbability(const std::string& point, double probability);

  /// Arms `point` to fire exactly on the given 1-based hit ordinals
  /// (counted from the point's first-ever hit), once each. In
  /// channel-stream mode ordinals count per channel key instead.
  void armSchedule(const std::string& point, std::vector<std::uint64_t> hits);

  /// Arms `point` to fire on its next hit only.
  void armOnce(const std::string& point);

  void disarm(const std::string& point);
  void disarmAll();

  /// Forgets every point entirely: arming, hit/fire counters, *and* the
  /// per-point RNG streams, which re-derive from the injector seed on
  /// the next touch. disarm()/disarmAll() deliberately keep counters and
  /// RNG positions (so mid-run disarming does not shift later firing
  /// patterns), which means an injector reused across test cases carries
  /// stale stream state into the next case. Tests sharing a process call
  /// reset() between cases to get seed-fresh, order-independent firing.
  void reset();

  /// Per-channel deterministic streams for keyed probes (see class
  /// comment). Off by default: keyed probes then share the point's
  /// global stream and ordinal counter, bit-identical to the historical
  /// behaviour.
  void setChannelStreams(bool on);
  bool channelStreams() const;

  /// Registers a hit of `point`; true when the armed fault fires.
  /// Unarmed points count hits but never fire.
  bool shouldFire(const std::string& point);

  /// Keyed probe: in channel-stream mode, draws from the (point, key)
  /// stream; otherwise identical to shouldFire(point).
  bool shouldFire(const std::string& point, std::uint64_t key);

  std::uint64_t hitCount(const std::string& point) const;
  std::uint64_t fireCount(const std::string& point) const;

  /// How many times `point` actually fired (alias of fireCount(), named
  /// for test assertions: "this trigger went off N times").
  std::uint64_t triggerCount(const std::string& point) const {
    return fireCount(point);
  }

  /// One row per touched point, sorted by name — lets a test assert
  /// exactly which named points fired and how often.
  struct PointReport {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };
  std::vector<PointReport> report() const;

  /// Names of the points that fired at least once, sorted.
  std::vector<std::string> firedPoints() const;

 private:
  struct KeyState {
    Rng rng{0};
    std::uint64_t hits = 0;
  };

  struct Point {
    double probability = 0.0;
    std::set<std::uint64_t> schedule;  // 1-based hit ordinals
    Rng rng{0};
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::map<std::uint64_t, KeyState> keys;  // channel-stream mode only
  };

  Point& pointLocked(const std::string& name);
  bool fireLocked(Point& p);

  std::uint64_t seed_;
  bool channelStreams_ = false;
  mutable std::mutex mutex_;
  std::map<std::string, Point> points_;
};

/// Installs `injector` as the process-wide active injector for the
/// scope's lifetime and restores the previous one on destruction
/// (scopes nest). Tests arm faults without plumbing an injector through
/// every constructor.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

/// The active injector, or nullptr outside any FaultScope.
FaultInjector* activeFaultInjector();

/// Fault-point probe used by production code: counts a hit and returns
/// true when an armed fault fires; always false with no active injector.
bool faultFires(const char* point);

/// Keyed probe (channel-capable call sites pass a stable stream key;
/// SimComm uses channelKey(from, to, tag)). Identical to faultFires()
/// unless the active injector runs channel streams.
bool faultFires(const char* point, std::uint64_t key);

/// One registered fault-injection point: its arming name and the place
/// in the code that probes it.
struct FaultPointInfo {
  const char* name;
  const char* where;
};

/// The static catalog of every fault point production code probes,
/// sorted by name. New faultFires() call sites must add a row here —
/// `tensorkmc --inject list` and the chaos tooling enumerate points
/// through this table.
const std::vector<FaultPointInfo>& faultPointCatalog();

}  // namespace tkmc
