#pragma once

#include <cstddef>
#include <cstdint>

namespace tkmc {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// range. Used to frame SimComm messages and to seal checkpoint files so
/// corruption is detected instead of silently loaded. `seed` allows
/// incremental computation: pass the previous result to continue a
/// running checksum.
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

}  // namespace tkmc
