#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace tkmc {

/// Error thrown for violated preconditions and invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Filesystem and serialization failures: missing files, bad magic or
/// version, truncated bodies, CRC mismatches. Usually recoverable by
/// degrading to a backup replica (see loadCheckpointWithFallback()).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Message-passing integrity failures: lost, corrupted, or mis-sequenced
/// messages. Recoverable by retrying the exchange (GhostExchange) or
/// rolling back and replaying the cycle (ParallelEngine).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// Violated physics or resource invariants: vacancy conservation, ghost
/// consistency, propensity-sum sanity, scratchpad overflow. Signals that
/// in-memory state can no longer be trusted; the parallel engine reacts
/// by restoring its cycle snapshot.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// A peer rank classified as permanently failed (fail-stop) by the
/// heartbeat/lease detector: its lease expired while a receiver was
/// waiting on one of its messages. Unlike CommError this is not
/// retryable — the rank is gone — so the parallel engine reacts with
/// shrink-recovery from the newest complete checkpoint epoch instead of
/// rollback/replay.
class RankFailure : public Error {
 public:
  RankFailure(int rank, double detectMs, const std::string& what)
      : Error(what), rank_(rank), detectMs_(detectMs) {}

  /// The rank declared dead.
  int rank() const { return rank_; }

  /// Logical milliseconds between the last lease renewal and the
  /// detector declaring the rank dead (detector latency).
  double detectMs() const { return detectMs_; }

 private:
  int rank_;
  double detectMs_;
};

/// Throws tkmc::Error when `condition` is false. Used at API boundaries;
/// hot loops rely on asserts instead.
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw Error(std::string(loc.file_name()) + ":" +
                std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace tkmc
