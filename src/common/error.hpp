#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace tkmc {

/// Error thrown for violated preconditions and invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws tkmc::Error when `condition` is false. Used at API boundaries;
/// hot loops rely on asserts instead.
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw Error(std::string(loc.file_name()) + ":" +
                std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace tkmc
