#pragma once

#include <chrono>

namespace tkmc {

/// Monotonic wall-clock stopwatch used by benches and the scaling model
/// calibration.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tkmc
