#pragma once

#include <chrono>

namespace tkmc {

/// Monotonic wall-clock stopwatch used by benches, the scaling model
/// calibration, and the telemetry layer's phase timing.
///
/// Runs from construction; pause()/resume() exclude intervals from the
/// accumulated time, which is what sector-interleaved phase timing needs
/// (one stopwatch per phase, resumed when the phase is active). A
/// stopwatch that is never paused behaves exactly like the original
/// always-running version.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  /// Discards accumulated time and restarts in the running state.
  void reset() {
    accumulated_ = Duration::zero();
    running_ = true;
    start_ = Clock::now();
  }

  /// Stops accumulating. No-op when already paused.
  void pause() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Restarts accumulation. No-op when already running.
  void resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool running() const { return running_; }

  /// Accumulated running seconds since construction or the last reset()
  /// (paused intervals excluded).
  double seconds() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return total.count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = std::chrono::duration<double>;
  Clock::time_point start_;
  Duration accumulated_ = Duration::zero();
  bool running_ = true;
};

}  // namespace tkmc
