#include "common/stopwatch.hpp"

// Header-only today; the translation unit anchors the target and keeps a
// stable place for future platform-specific timing backends.
