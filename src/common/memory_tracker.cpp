#include "common/memory_tracker.hpp"

#include <algorithm>
#include <cstdio>

#include "common/telemetry/telemetry.hpp"

namespace tkmc {

void MemoryTracker::set(const std::string& name, std::size_t bytes) {
  entries_[name] = bytes;
  peak_ = std::max(peak_, totalBytes());
}

void MemoryTracker::add(const std::string& name, std::size_t bytes) {
  entries_[name] += bytes;
  peak_ = std::max(peak_, totalBytes());
}

std::size_t MemoryTracker::bytes(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second;
}

std::size_t MemoryTracker::totalBytes() const {
  std::size_t total = 0;
  for (const auto& [name, bytes] : entries_) total += bytes;
  return total;
}

std::vector<std::string> MemoryTracker::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [name, bytes] : entries_) result.push_back(name);
  return result;
}

void MemoryTracker::clear() { entries_.clear(); }

void MemoryTracker::publishTelemetry(const std::string& prefix) const {
  namespace tm = telemetry;
  if (!tm::enabled()) return;
  tm::MetricsRegistry& reg = tm::metrics();
  for (const auto& [name, bytes] : entries_)
    reg.gauge(prefix + "." + name + "_bytes")
        .set(static_cast<double>(bytes));
  reg.gauge(prefix + ".total_bytes").set(static_cast<double>(totalBytes()));
  reg.gauge(prefix + ".peak_bytes").set(static_cast<double>(peak_));
}

std::string MemoryTracker::toMiB(std::size_t bytes) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buffer;
}

}  // namespace tkmc
