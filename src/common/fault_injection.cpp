#include "common/fault_injection.hpp"

#include <atomic>

#include "common/error.hpp"
#include "common/telemetry/flight_recorder.hpp"

namespace tkmc {
namespace {

// Atomic so a FaultScope installed on one thread is visible (or cleanly
// absent) to rank threads probing concurrently — never a torn pointer.
std::atomic<FaultInjector*> g_active{nullptr};

std::uint64_t hashName(const std::string& name) {
  // FNV-1a; only needs to decorrelate per-point RNG streams.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

FaultInjector::Point& FaultInjector::pointLocked(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    Point p;
    p.rng = Rng(SplitMix64(seed_ ^ hashName(name)).next());
    it = points_.emplace(name, std::move(p)).first;
  }
  return it->second;
}

void FaultInjector::armProbability(const std::string& name,
                                   double probability) {
  require(probability >= 0.0 && probability <= 1.0,
          "fault probability must be in [0, 1]");
  std::lock_guard<std::mutex> lock(mutex_);
  pointLocked(name).probability = probability;
}

void FaultInjector::armSchedule(const std::string& name,
                                std::vector<std::uint64_t> hits) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& p = pointLocked(name);
  for (const std::uint64_t h : hits) {
    require(h > 0, "schedule ordinals are 1-based");
    p.schedule.insert(h);
  }
}

void FaultInjector::armOnce(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& p = pointLocked(name);
  p.schedule.insert(p.hits + 1);
}

void FaultInjector::disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end()) return;
  it->second.probability = 0.0;
  it->second.schedule.clear();
}

void FaultInjector::disarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, p] : points_) {
    p.probability = 0.0;
    p.schedule.clear();
  }
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
}

void FaultInjector::setChannelStreams(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  channelStreams_ = on;
}

bool FaultInjector::channelStreams() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return channelStreams_;
}

bool FaultInjector::fireLocked(Point& p) {
  ++p.hits;
  bool fire = false;
  if (p.schedule.erase(p.hits) > 0) fire = true;
  // The probability draw happens on every hit of an armed point so the
  // firing pattern depends only on (seed, point, hit ordinal), not on
  // when the schedule entries were consumed.
  if (p.probability > 0.0 && p.rng.uniform() < p.probability) fire = true;
  if (fire) ++p.fires;
  return fire;
}

bool FaultInjector::shouldFire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return fireLocked(pointLocked(name));
}

bool FaultInjector::shouldFire(const std::string& name, std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& p = pointLocked(name);
  if (!channelStreams_) return fireLocked(p);
  // Channel-stream mode: each (point, key) pair owns a deterministic
  // sub-stream and hit counter, so whether a given per-channel hit
  // ordinal fires is independent of how rank threads interleave.
  auto it = p.keys.find(key);
  if (it == p.keys.end()) {
    KeyState ks;
    const std::uint64_t pointSeed = SplitMix64(seed_ ^ hashName(name)).next();
    ks.rng = Rng(SplitMix64(pointSeed ^ (key * 0x9E3779B97F4A7C15ULL)).next());
    it = p.keys.emplace(key, std::move(ks)).first;
  }
  KeyState& ks = it->second;
  ++ks.hits;
  ++p.hits;
  bool fire = false;
  // Schedules stay armed across keys: an ordinal names the same
  // per-channel hit on every channel (count, not erase).
  if (p.schedule.count(ks.hits) > 0) fire = true;
  if (p.probability > 0.0 && ks.rng.uniform() < p.probability) fire = true;
  if (fire) ++p.fires;
  return fire;
}

std::uint64_t FaultInjector::hitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fireCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<FaultInjector::PointReport> FaultInjector::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PointReport> rows;
  rows.reserve(points_.size());
  // points_ is an ordered map, so rows come out sorted by name.
  for (const auto& [name, p] : points_) rows.push_back({name, p.hits, p.fires});
  return rows;
}

std::vector<std::string> FaultInjector::firedPoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, p] : points_)
    if (p.fires > 0) names.push_back(name);
  return names;
}

FaultScope::FaultScope(FaultInjector& injector)
    : previous_(g_active.load(std::memory_order_acquire)) {
  g_active.store(&injector, std::memory_order_release);
}

FaultScope::~FaultScope() {
  g_active.store(previous_, std::memory_order_release);
}

FaultInjector* activeFaultInjector() {
  return g_active.load(std::memory_order_acquire);
}

namespace {

bool faultFiresImpl(FaultInjector* injector, const char* point, bool fired) {
  if (!fired) return false;
  // Blackbox trail: a post-mortem must show which injected fault tripped
  // first, before its downstream damage surfaces. The rank is unknown at
  // this layer, so the trip lands on ring 0; the hash reverses through
  // faultPointCatalog() in tools/tkmc_blackbox.
  telemetry::FlightRecorder::global().record(
      0, telemetry::BlackboxEventType::kFaultInjected, 0,
      telemetry::fnv1a64(point), injector->fireCount(point));
  return true;
}

}  // namespace

bool faultFires(const char* point) {
  FaultInjector* injector = g_active.load(std::memory_order_acquire);
  if (injector == nullptr) return false;
  return faultFiresImpl(injector, point, injector->shouldFire(point));
}

bool faultFires(const char* point, std::uint64_t key) {
  FaultInjector* injector = g_active.load(std::memory_order_acquire);
  if (injector == nullptr) return false;
  return faultFiresImpl(injector, point, injector->shouldFire(point, key));
}

const std::vector<FaultPointInfo>& faultPointCatalog() {
  static const std::vector<FaultPointInfo> kCatalog = {
      {"catalog.rate_nan",
       "EventCatalog::evaluateChecked(): corrupts one evaluated propensity "
       "to NaN"},
      {"checkpoint.corrupt_write",
       "serial saveCheckpoint(): flips a byte in the checkpoint body"},
      {"checkpoint.shard_corrupt_write",
       "CheckpointStore::stageShard(): rots a staged shard's bits after "
       "its CRC is recorded"},
      {"comm.corrupt", "SimComm::send(): flips a payload byte in flight"},
      {"comm.drop", "SimComm::send(): silently loses the message"},
      {"comm.duplicate", "SimComm::send(): delivers the message twice"},
      {"comm.rank_kill",
       "SimComm::send(): fail-stops the sending rank mid-protocol"},
      {"engine.cycle",
       "ParallelEngine cycle start: trips a transient invariant error"},
      {"remote.get_fail",
       "RemoteShardStore::get(): fails a fetch during remote heal"},
      {"remote.put_fail",
       "RemoteShardStore::put(): fails a streamed copy (drives streamer "
       "retry/backoff and give-up)"},
      {"remote.slow",
       "RemoteShardStore::put(): stalls the copy ~10 ms (drives remote "
       "lag and commit throttling)"},
      {"remote.torn_copy",
       "RemoteShardStore::put(): writes only half the object (a "
       "half-streamed remote epoch)"},
      {"telemetry.write_tear",
       "telemetry writeFileAtomic(): crashes after a partial temp-file "
       "write, before the rename"},
  };
  return kCatalog;
}

}  // namespace tkmc
