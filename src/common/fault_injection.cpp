#include "common/fault_injection.hpp"

#include "common/error.hpp"
#include "common/telemetry/flight_recorder.hpp"

namespace tkmc {
namespace {

FaultInjector* g_active = nullptr;

std::uint64_t hashName(const std::string& name) {
  // FNV-1a; only needs to decorrelate per-point RNG streams.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

FaultInjector::Point& FaultInjector::point(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    Point p;
    p.rng = Rng(SplitMix64(seed_ ^ hashName(name)).next());
    it = points_.emplace(name, std::move(p)).first;
  }
  return it->second;
}

void FaultInjector::armProbability(const std::string& name,
                                   double probability) {
  require(probability >= 0.0 && probability <= 1.0,
          "fault probability must be in [0, 1]");
  point(name).probability = probability;
}

void FaultInjector::armSchedule(const std::string& name,
                                std::vector<std::uint64_t> hits) {
  Point& p = point(name);
  for (const std::uint64_t h : hits) {
    require(h > 0, "schedule ordinals are 1-based");
    p.schedule.insert(h);
  }
}

void FaultInjector::armOnce(const std::string& name) {
  Point& p = point(name);
  p.schedule.insert(p.hits + 1);
}

void FaultInjector::disarm(const std::string& name) {
  const auto it = points_.find(name);
  if (it == points_.end()) return;
  it->second.probability = 0.0;
  it->second.schedule.clear();
}

void FaultInjector::disarmAll() {
  for (auto& [name, p] : points_) {
    p.probability = 0.0;
    p.schedule.clear();
  }
}

void FaultInjector::reset() { points_.clear(); }

bool FaultInjector::shouldFire(const std::string& name) {
  Point& p = point(name);
  ++p.hits;
  bool fire = false;
  if (p.schedule.erase(p.hits) > 0) fire = true;
  // The probability draw happens on every hit of an armed point so the
  // firing pattern depends only on (seed, point, hit ordinal), not on
  // when the schedule entries were consumed.
  if (p.probability > 0.0 && p.rng.uniform() < p.probability) fire = true;
  if (fire) ++p.fires;
  return fire;
}

std::uint64_t FaultInjector::hitCount(const std::string& name) const {
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fireCount(const std::string& name) const {
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<FaultInjector::PointReport> FaultInjector::report() const {
  std::vector<PointReport> rows;
  rows.reserve(points_.size());
  // points_ is an ordered map, so rows come out sorted by name.
  for (const auto& [name, p] : points_) rows.push_back({name, p.hits, p.fires});
  return rows;
}

std::vector<std::string> FaultInjector::firedPoints() const {
  std::vector<std::string> names;
  for (const auto& [name, p] : points_)
    if (p.fires > 0) names.push_back(name);
  return names;
}

FaultScope::FaultScope(FaultInjector& injector) : previous_(g_active) {
  g_active = &injector;
}

FaultScope::~FaultScope() { g_active = previous_; }

FaultInjector* activeFaultInjector() { return g_active; }

bool faultFires(const char* point) {
  if (g_active == nullptr || !g_active->shouldFire(point)) return false;
  // Blackbox trail: a post-mortem must show which injected fault tripped
  // first, before its downstream damage surfaces. The rank is unknown at
  // this layer, so the trip lands on ring 0; the hash reverses through
  // faultPointCatalog() in tools/tkmc_blackbox.
  telemetry::FlightRecorder::global().record(
      0, telemetry::BlackboxEventType::kFaultInjected, 0,
      telemetry::fnv1a64(point), g_active->fireCount(point));
  return true;
}

const std::vector<FaultPointInfo>& faultPointCatalog() {
  static const std::vector<FaultPointInfo> kCatalog = {
      {"checkpoint.corrupt_write",
       "serial saveCheckpoint(): flips a byte in the checkpoint body"},
      {"checkpoint.shard_corrupt_write",
       "CheckpointStore::stageShard(): rots a staged shard's bits after "
       "its CRC is recorded"},
      {"comm.corrupt", "SimComm::send(): flips a payload byte in flight"},
      {"comm.drop", "SimComm::send(): silently loses the message"},
      {"comm.duplicate", "SimComm::send(): delivers the message twice"},
      {"comm.rank_kill",
       "SimComm::send(): fail-stops the sending rank mid-protocol"},
      {"engine.cycle",
       "ParallelEngine cycle start: trips a transient invariant error"},
      {"telemetry.write_tear",
       "telemetry writeFileAtomic(): crashes after a partial temp-file "
       "write, before the rename"},
  };
  return kCatalog;
}

}  // namespace tkmc
