#pragma once

#include <string>
#include <vector>

namespace tkmc {

/// Fixed-width console table used by the bench harnesses to print the
/// rows of each paper table/figure. Columns are sized to their widest
/// cell; an optional rule separates the header.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);

  /// Renders the table to a string (header, rule, rows).
  std::string render() const;

  /// Renders as comma-separated values (for downstream plotting).
  std::string renderCsv() const;

  /// Convenience: renders to stdout.
  void print() const;

  /// Formats a double with `digits` significant decimals.
  static std::string num(double value, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tkmc
