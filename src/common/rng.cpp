#include "common/rng.hpp"

namespace tkmc {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformOpenLeft() {
  // (0, 1]: shift the half-open interval by one ulp step.
  return 1.0 - uniform();
}

std::uint64_t Rng::uniformBelow(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % bound;
}

Rng Rng::split() {
  return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace tkmc
