#include "analysis/diffusion.hpp"

#include "common/error.hpp"

namespace tkmc {

DiffusionTracker::DiffusionTracker(const BccLattice& lattice, int walkers)
    : lattice_(lattice), displacements_(static_cast<std::size_t>(walkers)) {
  require(walkers > 0, "tracker needs at least one walker");
}

void DiffusionTracker::recordHop(int index, Vec3i from, Vec3i to) {
  require(index >= 0 && index < walkerCount(), "walker index out of range");
  const Vec3i d = lattice_.minimumImage(lattice_.wrap(from), lattice_.wrap(to));
  const double half = lattice_.latticeConstant() / 2.0;
  auto& r = displacements_[static_cast<std::size_t>(index)];
  r = r + Vec3d{d.x * half, d.y * half, d.z * half};
  ++hops_;
}

Vec3d DiffusionTracker::displacement(int index) const {
  require(index >= 0 && index < walkerCount(), "walker index out of range");
  return displacements_[static_cast<std::size_t>(index)];
}

double DiffusionTracker::meanSquaredDisplacement() const {
  double sum = 0.0;
  for (const Vec3d& r : displacements_)
    sum += r.x * r.x + r.y * r.y + r.z * r.z;
  return sum / static_cast<double>(displacements_.size());
}

double DiffusionTracker::diffusionCoefficient(double elapsedSeconds) const {
  if (elapsedSeconds <= 0.0) return 0.0;
  // angstrom^2/s -> cm^2/s: 1 A^2 = 1e-16 cm^2.
  return meanSquaredDisplacement() / (6.0 * elapsedSeconds) * 1e-16;
}

}  // namespace tkmc
