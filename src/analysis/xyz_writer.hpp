#pragma once

#include <ostream>
#include <string>

#include "lattice/lattice_state.hpp"

namespace tkmc {

/// Extended-XYZ trajectory output for visualization (the Fig. 14
/// rendering pipeline: OVITO and friends read this directly).
///
/// By default a frame lists only solutes and vacancies (the species that
/// carry the microstructural signal); `includeMatrix` additionally emits
/// the Fe matrix. Vacancies are written as the pseudo-element "X".
class XyzWriter {
 public:
  /// Writes one frame. `comment` lands on the XYZ comment line together
  /// with the box lattice vector.
  static void writeFrame(std::ostream& out, const LatticeState& state,
                         const std::string& comment, bool includeMatrix = false);

  /// Number of atoms a frame would contain.
  static std::int64_t frameAtomCount(const LatticeState& state,
                                     bool includeMatrix = false);

  /// Element label used for a species ("Fe", "Cu", "X").
  static const char* label(Species s);
};

}  // namespace tkmc
