#include "analysis/xyz_writer.hpp"

#include <iomanip>

namespace tkmc {

const char* XyzWriter::label(Species s) {
  switch (s) {
    case Species::kFe: return "Fe";
    case Species::kCu: return "Cu";
    case Species::kVacancy: return "X";
  }
  return "?";
}

std::int64_t XyzWriter::frameAtomCount(const LatticeState& state,
                                       bool includeMatrix) {
  if (includeMatrix) return state.lattice().siteCount();
  return state.lattice().siteCount() - state.countSpecies(Species::kFe);
}

void XyzWriter::writeFrame(std::ostream& out, const LatticeState& state,
                           const std::string& comment, bool includeMatrix) {
  const BccLattice& lat = state.lattice();
  out << frameAtomCount(state, includeMatrix) << '\n';
  out << "Lattice=\"" << lat.cellsX() * lat.latticeConstant() << " 0 0 0 "
      << lat.cellsY() * lat.latticeConstant() << " 0 0 0 "
      << lat.cellsZ() * lat.latticeConstant() << "\" " << comment << '\n';
  out << std::fixed << std::setprecision(5);
  state.forEachSite([&](BccLattice::SiteId id, Species s) {
    if (!includeMatrix && s == Species::kFe) return;
    const Vec3d p = lat.position(lat.coordinate(id));
    out << label(s) << ' ' << p.x << ' ' << p.y << ' ' << p.z << '\n';
  });
}

}  // namespace tkmc
