#pragma once

#include <cstdint>
#include <vector>

#include "lattice/lattice_state.hpp"

namespace tkmc {

/// Result of a solute-cluster decomposition.
struct ClusterStats {
  std::vector<std::int64_t> sizes;   // one entry per cluster, descending
  std::int64_t totalAtoms = 0;       // solute atoms considered
  std::int64_t isolatedCount = 0;    // clusters of size 1 (Fig. 8 metric)
  std::int64_t maxSize = 0;          // largest precipitate (Fig. 14)
  std::int64_t clusterCount = 0;     // clusters of size >= 2

  /// Number density (1/m^3) of clusters of at least `minSize` atoms in a
  /// box of the given volume (angstrom^3) — Fig. 14's 1.71e26 m^-3 metric.
  double numberDensity(double boxVolumeA3, std::int64_t minSize = 2) const;
};

/// Union-find decomposition of the atoms of `species` into clusters.
/// Two atoms belong to the same cluster when separated by a 1NN or 2NN
/// lattice step (the standard bcc precipitate criterion).
ClusterStats analyzeClusters(const LatticeState& state, Species species);

/// Histogram of cluster sizes: result[k] = number of clusters of size k
/// (index 0 unused).
std::vector<std::int64_t> sizeHistogram(const ClusterStats& stats);

}  // namespace tkmc
