#pragma once

#include <cstdint>
#include <vector>

#include "lattice/bcc_lattice.hpp"
#include "lattice/vec3.hpp"

namespace tkmc {

/// Unwrapped-displacement tracker for tracer diffusion analysis.
///
/// KMC coordinates live on a periodic box, so diffusivities must be
/// computed from *unwrapped* trajectories: feed every hop through
/// recordHop() and the tracker accumulates per-walker displacement.
/// The tracer diffusion coefficient follows the Einstein relation
/// D = <R^2> / (6 t).
class DiffusionTracker {
 public:
  /// `walkers` is the number of tracked particles (e.g. vacancies).
  DiffusionTracker(const BccLattice& lattice, int walkers);

  /// Records one hop of walker `index` (wrapped coordinates; the tracker
  /// applies the minimum-image convention to unwrap).
  void recordHop(int index, Vec3i from, Vec3i to);

  /// Unwrapped displacement of one walker, angstrom.
  Vec3d displacement(int index) const;

  /// Mean squared displacement over all walkers, angstrom^2.
  double meanSquaredDisplacement() const;

  /// Einstein diffusion coefficient in cm^2/s given the elapsed
  /// simulated time (seconds). Returns 0 for t <= 0.
  double diffusionCoefficient(double elapsedSeconds) const;

  /// Total hops recorded.
  std::uint64_t hopCount() const { return hops_; }

  int walkerCount() const { return static_cast<int>(displacements_.size()); }

 private:
  BccLattice lattice_;
  std::vector<Vec3d> displacements_;
  std::uint64_t hops_ = 0;
};

}  // namespace tkmc
