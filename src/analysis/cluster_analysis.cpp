#include "analysis/cluster_analysis.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace tkmc {
namespace {

/// Disjoint-set forest with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::int64_t> size_;
};

// 1NN (8 offsets, (+-1,+-1,+-1)) and 2NN (6 offsets, (+-2,0,0) family)
// connectivity in doubled-integer coordinates.
std::vector<Vec3i> bondOffsets() {
  std::vector<Vec3i> v = BccLattice::firstNeighborOffsets();
  v.push_back({2, 0, 0});
  v.push_back({-2, 0, 0});
  v.push_back({0, 2, 0});
  v.push_back({0, -2, 0});
  v.push_back({0, 0, 2});
  v.push_back({0, 0, -2});
  return v;
}

}  // namespace

ClusterStats analyzeClusters(const LatticeState& state, Species species) {
  const BccLattice& lat = state.lattice();
  // Compact index over solute sites, streamed off the packed pages.
  std::vector<BccLattice::SiteId> soluteSites;
  std::unordered_map<std::int64_t, std::size_t> indexOf;
  soluteSites.reserve(static_cast<std::size_t>(state.countSpecies(species)));
  state.forEachSite([&](BccLattice::SiteId id, Species s) {
    if (s == species) {
      indexOf.emplace(id, soluteSites.size());
      soluteSites.push_back(id);
    }
  });
  UnionFind uf(soluteSites.size());
  const std::vector<Vec3i> bonds = bondOffsets();
  for (std::size_t i = 0; i < soluteSites.size(); ++i) {
    const Vec3i p = lat.coordinate(soluteSites[i]);
    for (const Vec3i& d : bonds) {
      const BccLattice::SiteId nb = lat.siteId(p + d);
      auto it = indexOf.find(nb);
      if (it != indexOf.end()) uf.unite(i, it->second);
    }
  }
  std::unordered_map<std::size_t, std::int64_t> rootSizes;
  for (std::size_t i = 0; i < soluteSites.size(); ++i) ++rootSizes[uf.find(i)];

  ClusterStats stats;
  stats.totalAtoms = static_cast<std::int64_t>(soluteSites.size());
  stats.sizes.reserve(rootSizes.size());
  for (const auto& [root, size] : rootSizes) stats.sizes.push_back(size);
  std::sort(stats.sizes.begin(), stats.sizes.end(), std::greater<>());
  for (std::int64_t s : stats.sizes) {
    if (s == 1) ++stats.isolatedCount;
    if (s >= 2) ++stats.clusterCount;
  }
  stats.maxSize = stats.sizes.empty() ? 0 : stats.sizes.front();
  return stats;
}

double ClusterStats::numberDensity(double boxVolumeA3,
                                   std::int64_t minSize) const {
  std::int64_t count = 0;
  for (std::int64_t s : sizes)
    if (s >= minSize) ++count;
  // 1 angstrom^3 = 1e-30 m^3.
  return static_cast<double>(count) / (boxVolumeA3 * 1e-30);
}

std::vector<std::int64_t> sizeHistogram(const ClusterStats& stats) {
  std::vector<std::int64_t> hist(
      static_cast<std::size_t>(stats.maxSize) + 1, 0);
  for (std::int64_t s : stats.sizes) ++hist[static_cast<std::size_t>(s)];
  return hist;
}

}  // namespace tkmc
