#include "nnp/force_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace tkmc {

ForceTrainer::ForceTrainer(Network& network, const Descriptor& descriptor,
                           Config config)
    : network_(network), descriptor_(descriptor), config_(config),
      rng_(config.seed), lr_(config.learningRate) {
  require(network.inputDim() == descriptor.dim(),
          "network input width must match the descriptor");
  const int numLayers = network.numLayers();
  weightGrads_.resize(static_cast<std::size_t>(numLayers));
  biasGrads_.resize(static_cast<std::size_t>(numLayers));
  weightM_.resize(static_cast<std::size_t>(numLayers));
  weightV_.resize(static_cast<std::size_t>(numLayers));
  biasM_.resize(static_cast<std::size_t>(numLayers));
  biasV_.resize(static_cast<std::size_t>(numLayers));
  for (int li = 0; li < numLayers; ++li) {
    const auto& l = network.layer(li);
    weightGrads_[static_cast<std::size_t>(li)].assign(l.weights.size(), 0.0);
    biasGrads_[static_cast<std::size_t>(li)].assign(l.bias.size(), 0.0);
    weightM_[static_cast<std::size_t>(li)].assign(l.weights.size(), 0.0);
    weightV_[static_cast<std::size_t>(li)].assign(l.weights.size(), 0.0);
    biasM_[static_cast<std::size_t>(li)].assign(l.bias.size(), 0.0);
    biasV_[static_cast<std::size_t>(li)].assign(l.bias.size(), 0.0);
  }
}

ForceSample ForceTrainer::makeSample(const LabeledStructure& ls,
                                     const SpeciesBaseline* baseline) const {
  ForceSample s;
  s.features = descriptor_.compute(ls.structure);
  s.nAtoms = static_cast<int>(ls.structure.size());
  s.baseline = baseline ? baseline->evaluate(ls.structure) : 0.0;
  s.energy = ls.energy - s.baseline;
  s.refForces = ls.forces;
  const double cutoff = descriptor_.cutoff();
  const int numPq = descriptor_.numPq();
  for (int i = 0; i < s.nAtoms; ++i)
    for (int j = 0; j < s.nAtoms; ++j) {
      if (i == j) continue;
      const Vec3d d = ls.structure.displacement(static_cast<std::size_t>(i),
                                                static_cast<std::size_t>(j));
      const double r = d.norm();
      if (r >= cutoff) continue;
      s.pairs.push_back(
          {i, j,
           static_cast<int>(ls.structure.species[static_cast<std::size_t>(i)]) *
               numPq,
           static_cast<int>(ls.structure.species[static_cast<std::size_t>(j)]) *
               numPq,
           d, r});
      for (int k = 0; k < numPq; ++k)
        s.dTerm.push_back(descriptor_.termDerivative(r, k));
    }
  return s;
}

double ForceTrainer::forwardAtom(const double* raw,
                                 std::vector<std::vector<double>>& acts) const {
  const int d = network_.inputDim();
  const int numLayers = network_.numLayers();
  const auto& shift = network_.inputShift();
  const auto& scale = network_.inputScale();
  acts.resize(static_cast<std::size_t>(numLayers) + 1);
  acts[0].resize(static_cast<std::size_t>(d));
  for (int c = 0; c < d; ++c)
    acts[0][static_cast<std::size_t>(c)] =
        (raw[c] - shift[static_cast<std::size_t>(c)]) *
        scale[static_cast<std::size_t>(c)];
  for (int li = 0; li < numLayers; ++li) {
    const auto& l = network_.layer(li);
    const bool last = li + 1 == numLayers;
    acts[static_cast<std::size_t>(li) + 1].resize(static_cast<std::size_t>(l.out));
    for (int o = 0; o < l.out; ++o) {
      const double* w = l.weights.data() + static_cast<std::size_t>(o) * l.in;
      double acc = l.bias[static_cast<std::size_t>(o)];
      for (int c = 0; c < l.in; ++c)
        acc += w[c] * acts[static_cast<std::size_t>(li)][static_cast<std::size_t>(c)];
      acts[static_cast<std::size_t>(li) + 1][static_cast<std::size_t>(o)] =
          last ? acc : std::max(acc, 0.0);
    }
  }
  return acts[static_cast<std::size_t>(numLayers)][0];
}

void ForceTrainer::backwardAtom(const std::vector<std::vector<double>>& acts,
                                std::vector<std::vector<double>>& deltas,
                                std::vector<double>& gRaw) const {
  const int numLayers = network_.numLayers();
  const auto& scale = network_.inputScale();
  deltas.resize(static_cast<std::size_t>(numLayers));
  std::vector<double> grad{1.0};  // dE/dx_L
  for (int li = numLayers - 1; li >= 0; --li) {
    const auto& l = network_.layer(li);
    const bool last = li + 1 == numLayers;
    auto& delta = deltas[static_cast<std::size_t>(li)];
    delta.assign(static_cast<std::size_t>(l.out), 0.0);
    for (int o = 0; o < l.out; ++o) {
      double g = grad[static_cast<std::size_t>(o)];
      if (!last &&
          acts[static_cast<std::size_t>(li) + 1][static_cast<std::size_t>(o)] <= 0.0)
        g = 0.0;
      delta[static_cast<std::size_t>(o)] = g;
    }
    std::vector<double> prev(static_cast<std::size_t>(l.in), 0.0);
    for (int o = 0; o < l.out; ++o) {
      const double g = delta[static_cast<std::size_t>(o)];
      if (g == 0.0) continue;
      const double* w = l.weights.data() + static_cast<std::size_t>(o) * l.in;
      for (int c = 0; c < l.in; ++c) prev[static_cast<std::size_t>(c)] += g * w[c];
    }
    grad = std::move(prev);
  }
  gRaw.resize(grad.size());
  for (std::size_t c = 0; c < grad.size(); ++c) gRaw[c] = grad[c] * scale[c];
}

std::vector<Vec3d> ForceTrainer::predictForces(const ForceSample& s) const {
  const int d = network_.inputDim();
  const int numPq = descriptor_.numPq();
  std::vector<double> g(static_cast<std::size_t>(s.nAtoms) * d);
  for (int a = 0; a < s.nAtoms; ++a)
    network_.inputGradient(
        {s.features.data() + static_cast<std::size_t>(a) * d,
         static_cast<std::size_t>(d)},
        {g.data() + static_cast<std::size_t>(a) * d, static_cast<std::size_t>(d)});
  std::vector<Vec3d> f(static_cast<std::size_t>(s.nAtoms));
  for (std::size_t p = 0; p < s.pairs.size(); ++p) {
    const auto& pr = s.pairs[p];
    const double* gi = g.data() + static_cast<std::size_t>(pr.i) * d;
    const double* gj = g.data() + static_cast<std::size_t>(pr.j) * d;
    const double* dT = s.dTerm.data() + p * static_cast<std::size_t>(numPq);
    double dEdr = 0.0;
    for (int k = 0; k < numPq; ++k)
      dEdr += (gi[pr.blockJ + k] + gj[pr.blockI + k]) * dT[k];
    const double scale = dEdr / pr.r;
    f[static_cast<std::size_t>(pr.i)] =
        f[static_cast<std::size_t>(pr.i)] + pr.dvec * scale;
  }
  return f;
}

double ForceTrainer::lossAndGradients(const ForceSample& s) {
  const int d = network_.inputDim();
  const int numLayers = network_.numLayers();
  const int numPq = descriptor_.numPq();
  const double n = static_cast<double>(s.nAtoms);
  const auto& scale = network_.inputScale();

  for (int li = 0; li < numLayers; ++li) {
    std::fill(weightGrads_[static_cast<std::size_t>(li)].begin(),
              weightGrads_[static_cast<std::size_t>(li)].end(), 0.0);
    std::fill(biasGrads_[static_cast<std::size_t>(li)].begin(),
              biasGrads_[static_cast<std::size_t>(li)].end(), 0.0);
  }

  // Pass 1: forward + backward per atom, caching everything.
  std::vector<std::vector<std::vector<double>>> acts(
      static_cast<std::size_t>(s.nAtoms));
  std::vector<std::vector<std::vector<double>>> deltas(
      static_cast<std::size_t>(s.nAtoms));
  std::vector<double> g(static_cast<std::size_t>(s.nAtoms) * d);
  double predicted = 0.0;
  for (int a = 0; a < s.nAtoms; ++a) {
    predicted += forwardAtom(
        s.features.data() + static_cast<std::size_t>(a) * d,
        acts[static_cast<std::size_t>(a)]);
    std::vector<double> gRaw;
    backwardAtom(acts[static_cast<std::size_t>(a)],
                 deltas[static_cast<std::size_t>(a)], gRaw);
    std::copy(gRaw.begin(), gRaw.end(),
              g.begin() + static_cast<std::size_t>(a) * d);
  }

  // Forces and residuals.
  std::vector<Vec3d> forces(static_cast<std::size_t>(s.nAtoms));
  for (std::size_t p = 0; p < s.pairs.size(); ++p) {
    const auto& pr = s.pairs[p];
    const double* gi = g.data() + static_cast<std::size_t>(pr.i) * d;
    const double* gj = g.data() + static_cast<std::size_t>(pr.j) * d;
    const double* dT = s.dTerm.data() + p * static_cast<std::size_t>(numPq);
    double dEdr = 0.0;
    for (int k = 0; k < numPq; ++k)
      dEdr += (gi[pr.blockJ + k] + gj[pr.blockI + k]) * dT[k];
    forces[static_cast<std::size_t>(pr.i)] =
        forces[static_cast<std::size_t>(pr.i)] + pr.dvec * (dEdr / pr.r);
  }

  const double perAtomError = (predicted - s.energy) / n;
  double forceSq = 0.0;
  std::vector<Vec3d> rF(static_cast<std::size_t>(s.nAtoms));
  for (int a = 0; a < s.nAtoms; ++a) {
    const Vec3d resid = forces[static_cast<std::size_t>(a)] -
                        s.refForces[static_cast<std::size_t>(a)];
    rF[static_cast<std::size_t>(a)] = resid;
    forceSq += resid.x * resid.x + resid.y * resid.y + resid.z * resid.z;
  }
  const double loss = config_.energyWeight * perAtomError * perAtomError +
                      config_.forceWeight / (3.0 * n) * forceSq;

  // Adjoint on the raw input gradients: v_raw[i] = dL_F / dg_i.
  std::vector<double> v(static_cast<std::size_t>(s.nAtoms) * d, 0.0);
  const double fScale = 2.0 * config_.forceWeight / (3.0 * n);
  for (std::size_t p = 0; p < s.pairs.size(); ++p) {
    const auto& pr = s.pairs[p];
    const Vec3d& r = rF[static_cast<std::size_t>(pr.i)];
    const double proj =
        fScale * (r.x * pr.dvec.x + r.y * pr.dvec.y + r.z * pr.dvec.z) / pr.r;
    const double* dT = s.dTerm.data() + p * static_cast<std::size_t>(numPq);
    double* vi = v.data() + static_cast<std::size_t>(pr.i) * d;
    double* vj = v.data() + static_cast<std::size_t>(pr.j) * d;
    for (int k = 0; k < numPq; ++k) {
      vi[pr.blockJ + k] += proj * dT[k];
      vj[pr.blockI + k] += proj * dT[k];
    }
  }

  // Pass 2: accumulate weight gradients.
  const double eUp = 2.0 * config_.energyWeight * perAtomError / n;
  std::vector<double> tangent;
  std::vector<double> nextTangent;
  for (int a = 0; a < s.nAtoms; ++a) {
    const auto& atomActs = acts[static_cast<std::size_t>(a)];
    const auto& atomDeltas = deltas[static_cast<std::size_t>(a)];
    // Energy term: eUp * delta_l (x) x_{l-1}; bias picks up eUp * delta_l.
    for (int li = 0; li < numLayers; ++li) {
      const auto& l = network_.layer(li);
      auto& wg = weightGrads_[static_cast<std::size_t>(li)];
      auto& bg = biasGrads_[static_cast<std::size_t>(li)];
      const auto& input = atomActs[static_cast<std::size_t>(li)];
      const auto& delta = atomDeltas[static_cast<std::size_t>(li)];
      for (int o = 0; o < l.out; ++o) {
        const double gd = delta[static_cast<std::size_t>(o)];
        if (gd == 0.0) continue;
        bg[static_cast<std::size_t>(o)] += eUp * gd;
        double* row = wg.data() + static_cast<std::size_t>(o) * l.in;
        const double coeff = eUp * gd;
        for (int c = 0; c < l.in; ++c)
          row[c] += coeff * input[static_cast<std::size_t>(c)];
      }
    }
    // Force term: tangent pass seeded with v~ = v * scale; grads are
    // delta_l (x) t_{l-1} (no bias contribution a.e.).
    tangent.assign(static_cast<std::size_t>(d), 0.0);
    const double* va = v.data() + static_cast<std::size_t>(a) * d;
    bool anyTangent = false;
    for (int c = 0; c < d; ++c) {
      tangent[static_cast<std::size_t>(c)] =
          va[c] * scale[static_cast<std::size_t>(c)];
      anyTangent = anyTangent || tangent[static_cast<std::size_t>(c)] != 0.0;
    }
    if (!anyTangent) continue;
    for (int li = 0; li < numLayers; ++li) {
      const auto& l = network_.layer(li);
      auto& wg = weightGrads_[static_cast<std::size_t>(li)];
      const auto& delta = atomDeltas[static_cast<std::size_t>(li)];
      // Accumulate delta_l (x) t_{l-1} BEFORE advancing the tangent.
      for (int o = 0; o < l.out; ++o) {
        const double gd = delta[static_cast<std::size_t>(o)];
        if (gd == 0.0) continue;
        double* row = wg.data() + static_cast<std::size_t>(o) * l.in;
        for (int c = 0; c < l.in; ++c)
          row[c] += gd * tangent[static_cast<std::size_t>(c)];
      }
      // Advance: t_l = mask_l (W_l t_{l-1}); the last layer is linear.
      const bool last = li + 1 == numLayers;
      nextTangent.assign(static_cast<std::size_t>(l.out), 0.0);
      for (int o = 0; o < l.out; ++o) {
        if (!last &&
            atomActs[static_cast<std::size_t>(li) + 1][static_cast<std::size_t>(o)] <=
                0.0)
          continue;
        const double* w = l.weights.data() + static_cast<std::size_t>(o) * l.in;
        double acc = 0.0;
        for (int c = 0; c < l.in; ++c)
          acc += w[c] * tangent[static_cast<std::size_t>(c)];
        nextTangent[static_cast<std::size_t>(o)] = acc;
      }
      tangent = nextTangent;
    }
  }
  return loss;
}

double ForceTrainer::epoch(const std::vector<ForceSample>& samples) {
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng_.uniformBelow(i)]);
  double total = 0.0;
  constexpr double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  for (std::size_t idx : order) {
    total += lossAndGradients(samples[idx]);
    ++steps_;
    const double c1 = 1.0 - std::pow(beta1, static_cast<double>(steps_));
    const double c2 = 1.0 - std::pow(beta2, static_cast<double>(steps_));
    for (int li = 0; li < network_.numLayers(); ++li) {
      auto& l = network_.layer(li);
      auto& wg = weightGrads_[static_cast<std::size_t>(li)];
      auto& bg = biasGrads_[static_cast<std::size_t>(li)];
      auto& wm = weightM_[static_cast<std::size_t>(li)];
      auto& wv = weightV_[static_cast<std::size_t>(li)];
      auto& bm = biasM_[static_cast<std::size_t>(li)];
      auto& bv = biasV_[static_cast<std::size_t>(li)];
      for (std::size_t i = 0; i < l.weights.size(); ++i) {
        wm[i] = beta1 * wm[i] + (1 - beta1) * wg[i];
        wv[i] = beta2 * wv[i] + (1 - beta2) * wg[i] * wg[i];
        l.weights[i] -= lr_ * (wm[i] / c1) / (std::sqrt(wv[i] / c2) + eps);
      }
      for (std::size_t i = 0; i < l.bias.size(); ++i) {
        bm[i] = beta1 * bm[i] + (1 - beta1) * bg[i];
        bv[i] = beta2 * bv[i] + (1 - beta2) * bg[i] * bg[i];
        l.bias[i] -= lr_ * (bm[i] / c1) / (std::sqrt(bv[i] / c2) + eps);
      }
    }
  }
  return total / static_cast<double>(samples.size());
}

double ForceTrainer::train(const std::vector<ForceSample>& samples) {
  require(!samples.empty(), "cannot train on an empty sample set");
  double last = 0.0;
  for (int e = 0; e < config_.epochs; ++e) {
    last = epoch(samples);
    lr_ *= config_.decay;
  }
  return last;
}

std::vector<double> ForceTrainer::flatWeightGradients() const {
  std::vector<double> flat;
  for (const auto& wg : weightGrads_)
    flat.insert(flat.end(), wg.begin(), wg.end());
  return flat;
}

}  // namespace tkmc
