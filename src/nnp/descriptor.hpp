#pragma once

#include <vector>

#include "lattice/structure.hpp"
#include "tabulation/feature_table.hpp"

namespace tkmc {

/// Exponential atomic descriptor of Eq. 5 (Oganov style), evaluated
/// directly on continuous interatomic distances.
///
/// For atom i, the feature block for neighbour element e and
/// hyperparameter set k is  f[e][k] = sum_{j in e, r_ij < r_cut}
/// exp(-(r_ij / p_k)^q_k). Feature dimension = numPq * kNumElements.
/// This is the off-lattice path used for training-set generation and
/// force validation; the AKMC hot path uses the tabulated Eq. 6 form
/// (FeatureTable + NET + VET) which agrees exactly at lattice distances.
class Descriptor {
 public:
  Descriptor(std::vector<PqSet> pqSets, double cutoff);

  int numPq() const { return static_cast<int>(pq_.size()); }
  int dim() const { return numPq() * kNumElements; }
  double cutoff() const { return cutoff_; }
  const std::vector<PqSet>& pqSets() const { return pq_; }

  /// Features of every atom of a structure: [nAtoms][dim()] row-major.
  std::vector<double> compute(const Structure& s) const;

  /// Derivative of one descriptor term with respect to distance.
  double termDerivative(double r, int pqIndex) const;

  /// Forces from the chain rule: given per-atom gradients dE_i/dfeat_i
  /// ([nAtoms][dim()], e.g. from Network::inputGradient), accumulates
  /// -dE/dx. Returns eV/angstrom.
  std::vector<Vec3d> forces(const Structure& s,
                            const std::vector<double>& featureGradients) const;

 private:
  std::vector<PqSet> pq_;
  double cutoff_;
};

}  // namespace tkmc
