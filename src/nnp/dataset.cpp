#include "nnp/dataset.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tkmc {
namespace {

double gaussian(Rng& rng, double sigma) {
  const double u1 = rng.uniformOpenLeft();
  const double u2 = rng.uniform();
  return sigma * std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

Structure randomCell(const DatasetConfig& config, Rng& rng) {
  Structure s;
  const double a = config.latticeConstant;
  s.box = {config.cellsX * a, config.cellsY * a, config.cellsZ * a};
  const double cuFraction = rng.uniform() * config.maxCuFraction;
  const int vacancies = static_cast<int>(
      rng.uniformBelow(static_cast<std::uint64_t>(config.maxVacancies + 1)));

  // Enumerate BCC sites, drop `vacancies` of them at random.
  std::vector<Vec3d> sites;
  for (int cx = 0; cx < config.cellsX; ++cx)
    for (int cy = 0; cy < config.cellsY; ++cy)
      for (int cz = 0; cz < config.cellsZ; ++cz) {
        sites.push_back({cx * a, cy * a, cz * a});
        sites.push_back({(cx + 0.5) * a, (cy + 0.5) * a, (cz + 0.5) * a});
      }
  for (int v = 0; v < vacancies && !sites.empty(); ++v) {
    const std::size_t k = rng.uniformBelow(sites.size());
    sites.erase(sites.begin() + static_cast<std::ptrdiff_t>(k));
  }

  for (const Vec3d& p : sites) {
    s.positions.push_back({p.x + gaussian(rng, config.jitterSigma),
                           p.y + gaussian(rng, config.jitterSigma),
                           p.z + gaussian(rng, config.jitterSigma)});
    s.species.push_back(rng.uniform() < cuFraction ? Species::kCu : Species::kFe);
  }
  return s;
}

std::vector<LabeledStructure> generateDataset(const EamPotential& oracle,
                                              const DatasetConfig& config,
                                              Rng& rng) {
  require(config.count > 0, "dataset must contain structures");
  std::vector<LabeledStructure> out;
  out.reserve(static_cast<std::size_t>(config.count));
  for (int i = 0; i < config.count; ++i) {
    LabeledStructure ls;
    ls.structure = randomCell(config, rng);
    ls.energy = oracle.totalEnergy(ls.structure);
    ls.forces = oracle.forces(ls.structure);
    out.push_back(std::move(ls));
  }
  return out;
}

}  // namespace tkmc
