#pragma once

#include <vector>

#include "nnp/dataset.hpp"
#include "nnp/descriptor.hpp"
#include "nnp/network.hpp"
#include "nnp/trainer.hpp"

namespace tkmc {

/// Prepared force-matching sample: cached descriptor features, pair
/// geometry, per-pair descriptor derivatives, and reference labels.
struct ForceSample {
  std::vector<double> features;       // [nAtoms][dim]
  int nAtoms = 0;
  double energy = 0.0;                // residual target (baseline removed)
  double baseline = 0.0;
  std::vector<Vec3d> refForces;       // [nAtoms]
  // Ordered pairs (i -> j) within the cutoff. blockJ is the feature-block
  // offset of species_j (the block of g_i this pair touches); blockI the
  // offset of species_i (the block of g_j it touches).
  struct Pair {
    int i;
    int j;
    int blockI;
    int blockJ;
    Vec3d dvec;                       // minimum-image x_j - x_i
    double r;
  };
  std::vector<Pair> pairs;
  std::vector<double> dTerm;          // [pair][numPq], d term / d r
};

/// Energy + force (force-matching) trainer — the TensorAlloy training
/// objective the paper's potential uses:
///
///   L = wE ((E_pred - E_ref)/N)^2 + wF/(3N) sum_m |F_pred,m - F_ref,m|^2.
///
/// Forces are analytic (descriptor chain rule), so the force term needs
/// gradients of input-gradients: for the scalar l = v^T (dE/dx), with
/// ReLU masks locally constant, dl/dW_l = delta_l (x) t_{l-1}, where
/// delta are the ordinary backprop deltas and t is a tangent forward pass
/// seeded with v and filtered by the same masks. Validated against finite
/// differences of the full loss in the tests.
class ForceTrainer {
 public:
  struct Config {
    int epochs = 60;
    double learningRate = 2e-3;
    double decay = 0.99;
    double energyWeight = 1.0;
    double forceWeight = 0.05;  // eV^-2 * A^2 relative weighting
    std::uint64_t seed = 7;
  };

  ForceTrainer(Network& network, const Descriptor& descriptor, Config config);

  /// Builds a prepared sample (features, pairs, derivative tables).
  ForceSample makeSample(const LabeledStructure& ls,
                         const SpeciesBaseline* baseline = nullptr) const;

  /// One epoch over the samples in random order; returns the mean loss.
  double epoch(const std::vector<ForceSample>& samples);

  /// Full schedule; returns the final epoch's mean loss.
  double train(const std::vector<ForceSample>& samples);

  /// Loss and its weight-gradients for one sample (exposed for the
  /// finite-difference validation tests). Gradients are accumulated into
  /// the internal buffers; pass accumulate=false to zero them first.
  double lossAndGradients(const ForceSample& sample);

  /// Predicted forces for a sample under the current network.
  std::vector<Vec3d> predictForces(const ForceSample& sample) const;

  /// Flattened view of the last computed weight gradients (layer-major),
  /// for the validation tests.
  std::vector<double> flatWeightGradients() const;

 private:
  // Per-atom forward caching activations; returns the atomic energy.
  double forwardAtom(const double* raw, std::vector<std::vector<double>>& acts) const;
  // Backward from dE = 1, caching deltas per layer; also fills the raw
  // input gradient (chain through the input transform).
  void backwardAtom(const std::vector<std::vector<double>>& acts,
                    std::vector<std::vector<double>>& deltas,
                    std::vector<double>& gRaw) const;

  Network& network_;
  const Descriptor& descriptor_;
  Config config_;
  Rng rng_;
  double lr_;
  long steps_ = 0;
  // Adam state + gradient accumulators per layer.
  std::vector<std::vector<double>> weightGrads_;
  std::vector<std::vector<double>> biasGrads_;
  std::vector<std::vector<double>> weightM_, weightV_, biasM_, biasV_;
};

}  // namespace tkmc
