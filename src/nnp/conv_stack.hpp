#pragma once

#include <cstdint>
#include <vector>

#include "nnp/network.hpp"
#include "sunway/traffic.hpp"

namespace tkmc {

namespace detail {

/// Fused matmul + bias (+ ReLU) for one pixel/atom: channel-major
/// weights, vectorized codegen. Shared by ConvStack::kFusedLayer and the
/// big-fusion operator so the two are bit-identical by construction.
void fusedConvPixel(const float* x, const float* weightsChannelMajor,
                    const float* bias, float* y, int in, int out, bool relu);

}  // namespace detail

/// Single-precision evaluation of the NNP conv stack at the successive
/// optimization rungs of Fig. 10.
///
/// All modes map an input activation matrix [m][c0] (m = atoms x states,
/// the flattened N*H*W of the 1x1 convolution) to [m][cLast] and are
/// numerically equivalent up to float summation order:
///
///   kNaiveConv  — framework-style Conv2D: per-pixel loops with
///                 channel-major weight access, then separate bias and
///                 ReLU passes over main-memory buffers (3 passes/layer).
///   kMatmul     — convolution rewritten as a matrix multiplication with
///                 contiguous weight rows; bias/ReLU still separate passes.
///   kMatmulSimd — vectorizable matmul: output-channel inner loop over
///                 restrict pointers (maps to SIMD on the CPE vector
///                 units); bias/ReLU still separate passes.
///   kFusedLayer — matmul + bias + ReLU fused into one pass per layer
///                 (the TensorFlow FusedConv2D / SWDNN analogue).
///
/// The fifth rung, the big-fusion operator, keeps activations resident in
/// CPE scratchpads across *all* layers and lives in
/// sunway/bigfusion_operator.hpp.
///
/// Traffic counters follow the paper's accounting: every pass over a
/// main-memory buffer charges its bytes; FLOPs are 2*m*in*out per matmul
/// plus m*out for bias and ReLU passes.
class ConvStack {
 public:
  enum class Mode { kNaiveConv, kMatmul, kMatmulSimd, kFusedLayer };

  explicit ConvStack(Network::Snapshot snapshot);

  int inputDim() const { return snapshot_.channels.front(); }
  int outputDim() const { return snapshot_.channels.back(); }
  int numLayers() const { return static_cast<int>(snapshot_.weights.size()); }
  const Network::Snapshot& snapshot() const { return snapshot_; }

  /// Evaluates the stack; `output` must hold m * outputDim() floats.
  /// When `traffic` is non-null the pass's memory/flop accounting is
  /// accumulated into it.
  void forward(Mode mode, const float* input, int m, float* output,
               Traffic* traffic = nullptr) const;

  /// Per-layer traffic of the *unfused* operator (three passes), used by
  /// the Fig. 9 table. Layer index in [0, numLayers()).
  Traffic layerTraffic(int layer, int m, bool fused) const;

  /// Weights of one layer, row-major [out][in].
  const std::vector<float>& weights(int layer) const {
    return snapshot_.weights[static_cast<std::size_t>(layer)];
  }
  const std::vector<float>& biases(int layer) const {
    return snapshot_.biases[static_cast<std::size_t>(layer)];
  }

 private:
  void forwardNaive(const float* input, int m, float* output, Traffic* t) const;
  void forwardMatmul(const float* input, int m, float* output, Traffic* t) const;
  void forwardSimd(const float* input, int m, float* output, Traffic* t) const;
  void forwardFused(const float* input, int m, float* output, Traffic* t) const;

  Network::Snapshot snapshot_;
  // Channel-major weight copies [in][out] for the naive-conv access
  // pattern and the SIMD kernels.
  std::vector<std::vector<float>> weightsChannelMajor_;
};

}  // namespace tkmc
