#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace tkmc {

/// Atomistic neural network potential (TensorAlloy style, paper Sec. 3.5).
///
/// A stack of 1x1 convolutions over atoms — equivalently a per-atom MLP —
/// mapping each atom's descriptor vector to an atomic energy; the state
/// energy is the sum over atoms. The paper's production channels are
/// (64, 128, 128, 128, 64, 1) with ReLU activations and a linear output.
///
/// Canonical weights are double precision (training, KMC accumulation);
/// the Sunway-style operators consume a single-precision snapshot with
/// the input standardization folded into layer 0 (see foldedSnapshot()).
class Network {
 public:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> weights;  // row-major [out][in]
    std::vector<double> bias;     // [out]
  };

  /// `channels` lists layer widths including input and output, e.g.
  /// {64, 128, 128, 128, 64, 1}.
  explicit Network(std::vector<int> channels);

  int inputDim() const { return channels_.front(); }
  int numLayers() const { return static_cast<int>(layers_.size()); }
  const std::vector<int>& channels() const { return channels_; }
  const Layer& layer(int i) const { return layers_[static_cast<std::size_t>(i)]; }
  Layer& layer(int i) { return layers_[static_cast<std::size_t>(i)]; }

  /// He-normal weight initialization (appropriate for ReLU stacks).
  void initHe(Rng& rng);

  /// Sets the input standardization: forward() evaluates the MLP on
  /// (x - shift) * scale componentwise.
  void setInputTransform(std::vector<double> shift, std::vector<double> scale);
  const std::vector<double>& inputShift() const { return inputShift_; }
  const std::vector<double>& inputScale() const { return inputScale_; }

  /// Atomic energy of a single feature vector.
  double atomEnergy(std::span<const double> features) const;

  /// Batched forward: `features` is [nAtoms][inputDim] row-major;
  /// writes nAtoms atomic energies.
  void forwardBatch(const double* features, int nAtoms,
                    double* atomEnergies) const;

  /// Sum of atomic energies over a batch (the AKMC state energy).
  double stateEnergy(const double* features, int nAtoms) const;

  /// Gradient of the atomic energy with respect to the *raw* input
  /// features (chain rule through the input transform). Used for forces.
  void inputGradient(std::span<const double> features,
                     std::span<double> dFeatures) const;

  /// Single-precision snapshot with the input transform folded into the
  /// first layer, so downstream operators see a pure conv stack.
  struct Snapshot {
    std::vector<int> channels;
    // Per layer, row-major [out][in] weights and [out] biases.
    std::vector<std::vector<float>> weights;
    std::vector<std::vector<float>> biases;
  };
  Snapshot foldedSnapshot() const;

  /// Scratch sized for one forward pass (two ping-pong activations).
  int maxWidth() const;

 private:
  // Forward for one atom using caller scratch (size >= 2 * maxWidth()).
  double forwardOne(const double* features, double* scratch) const;

  std::vector<int> channels_;
  std::vector<Layer> layers_;
  std::vector<double> inputShift_;
  std::vector<double> inputScale_;

  friend class Trainer;
};

}  // namespace tkmc
