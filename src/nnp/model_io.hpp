#pragma once

#include <string>

#include "nnp/network.hpp"

namespace tkmc {

/// Saves a network (channels, input transform, weights, biases) to a
/// plain-text file with full double precision.
void saveNetwork(const Network& network, const std::string& path);

/// Loads a network saved by saveNetwork(). Throws tkmc::Error on format
/// problems.
Network loadNetwork(const std::string& path);

}  // namespace tkmc
