#include "nnp/descriptor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tkmc {

Descriptor::Descriptor(std::vector<PqSet> pqSets, double cutoff)
    : pq_(std::move(pqSets)), cutoff_(cutoff) {
  require(!pq_.empty(), "descriptor needs at least one (p,q) set");
  require(cutoff > 0.0, "descriptor cutoff must be positive");
}

std::vector<double> Descriptor::compute(const Structure& s) const {
  const std::size_t n = s.size();
  const int d = dim();
  std::vector<double> features(n * static_cast<std::size_t>(d), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double* f = features.data() + i * static_cast<std::size_t>(d);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double r = s.displacement(i, j).norm();
      if (r >= cutoff_) continue;
      const int block = static_cast<int>(s.species[j]) * numPq();
      for (int k = 0; k < numPq(); ++k)
        f[block + k] += FeatureTable::term(r, pq_[static_cast<std::size_t>(k)]);
    }
  }
  return features;
}

double Descriptor::termDerivative(double r, int pqIndex) const {
  const PqSet& pq = pq_[static_cast<std::size_t>(pqIndex)];
  const double ratio = r / pq.p;
  const double powed = std::pow(ratio, pq.q);
  return -pq.q / r * powed * std::exp(-powed);
}

std::vector<Vec3d> Descriptor::forces(
    const Structure& s, const std::vector<double>& featureGradients) const {
  const std::size_t n = s.size();
  require(featureGradients.size() == n * static_cast<std::size_t>(dim()),
          "feature gradient array has wrong size");
  std::vector<Vec3d> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Vec3d dvec = s.displacement(i, j);  // i -> j
      const double r = dvec.norm();
      if (r >= cutoff_) continue;
      // Moving atom i away from j increases r_ij; both atoms' feature
      // vectors depend on it: feat_i[e_j] and feat_j[e_i].
      const double* gi = featureGradients.data() + i * static_cast<std::size_t>(dim());
      const double* gj = featureGradients.data() + j * static_cast<std::size_t>(dim());
      const int blockJ = static_cast<int>(s.species[j]) * numPq();
      const int blockI = static_cast<int>(s.species[i]) * numPq();
      double dEdr = 0.0;
      for (int k = 0; k < numPq(); ++k) {
        const double dTerm = termDerivative(r, k);
        dEdr += gi[blockJ + k] * dTerm + gj[blockI + k] * dTerm;
      }
      // Force on i = -dE/dx_i; dr/dx_i = -(dvec)/r.
      const double scale = dEdr / r;
      out[i] = out[i] + dvec * scale;
    }
  }
  return out;
}

}  // namespace tkmc
