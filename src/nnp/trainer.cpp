#include "nnp/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace tkmc {

double SpeciesBaseline::evaluate(const Structure& s) const {
  double total = 0.0;
  for (Species sp : s.species)
    total += e0[static_cast<std::size_t>(static_cast<int>(sp))];
  return total;
}

SpeciesBaseline SpeciesBaseline::fit(const std::vector<LabeledStructure>& data) {
  // Normal equations for E ~ nFe * e0_Fe + nCu * e0_Cu (2x2 system).
  double a00 = 0, a01 = 0, a11 = 0, b0 = 0, b1 = 0;
  for (const LabeledStructure& ls : data) {
    double counts[kNumElements] = {0, 0};
    for (Species sp : ls.structure.species)
      counts[static_cast<int>(sp)] += 1.0;
    a00 += counts[0] * counts[0];
    a01 += counts[0] * counts[1];
    a11 += counts[1] * counts[1];
    b0 += counts[0] * ls.energy;
    b1 += counts[1] * ls.energy;
  }
  SpeciesBaseline baseline;
  const double det = a00 * a11 - a01 * a01;
  if (std::abs(det) > 1e-9) {
    baseline.e0[0] = (b0 * a11 - b1 * a01) / det;
    baseline.e0[1] = (a00 * b1 - a01 * b0) / det;
  } else if (a00 > 0) {
    // Single-species data set: plain average per atom.
    baseline.e0[0] = b0 / a00;
    baseline.e0[1] = baseline.e0[0];
  }
  return baseline;
}

TrainSample makeSample(const Descriptor& descriptor, const LabeledStructure& ls,
                       const SpeciesBaseline* baseline) {
  TrainSample sample;
  sample.features = descriptor.compute(ls.structure);
  sample.nAtoms = static_cast<int>(ls.structure.size());
  sample.baseline = baseline ? baseline->evaluate(ls.structure) : 0.0;
  sample.energy = ls.energy - sample.baseline;
  return sample;
}

Trainer::Trainer(Network& network, Config config)
    : network_(network), config_(config), rng_(config.seed),
      lr_(config.learningRate) {
  weightState_.resize(static_cast<std::size_t>(network.numLayers()));
  biasState_.resize(static_cast<std::size_t>(network.numLayers()));
  weightGrads_.resize(static_cast<std::size_t>(network.numLayers()));
  biasGrads_.resize(static_cast<std::size_t>(network.numLayers()));
  activations_.resize(static_cast<std::size_t>(network.numLayers()) + 1);
  for (int li = 0; li < network.numLayers(); ++li) {
    const auto& l = network.layer(li);
    weightState_[static_cast<std::size_t>(li)].m.assign(l.weights.size(), 0.0);
    weightState_[static_cast<std::size_t>(li)].v.assign(l.weights.size(), 0.0);
    biasState_[static_cast<std::size_t>(li)].m.assign(l.bias.size(), 0.0);
    biasState_[static_cast<std::size_t>(li)].v.assign(l.bias.size(), 0.0);
    weightGrads_[static_cast<std::size_t>(li)].assign(l.weights.size(), 0.0);
    biasGrads_[static_cast<std::size_t>(li)].assign(l.bias.size(), 0.0);
  }
}

void Trainer::fitStandardization(const std::vector<TrainSample>& samples) {
  require(!samples.empty(), "cannot fit standardization on empty set");
  const int d = network_.inputDim();
  std::vector<double> mean(static_cast<std::size_t>(d), 0.0);
  std::vector<double> var(static_cast<std::size_t>(d), 0.0);
  std::size_t count = 0;
  for (const TrainSample& s : samples) {
    for (int a = 0; a < s.nAtoms; ++a) {
      const double* f = s.features.data() + static_cast<std::size_t>(a) * d;
      for (int c = 0; c < d; ++c) mean[static_cast<std::size_t>(c)] += f[c];
    }
    count += static_cast<std::size_t>(s.nAtoms);
  }
  for (double& m : mean) m /= static_cast<double>(count);
  for (const TrainSample& s : samples)
    for (int a = 0; a < s.nAtoms; ++a) {
      const double* f = s.features.data() + static_cast<std::size_t>(a) * d;
      for (int c = 0; c < d; ++c) {
        const double dv = f[c] - mean[static_cast<std::size_t>(c)];
        var[static_cast<std::size_t>(c)] += dv * dv;
      }
    }
  std::vector<double> scale(static_cast<std::size_t>(d));
  for (int c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[static_cast<std::size_t>(c)] /
                                static_cast<double>(count));
    scale[static_cast<std::size_t>(c)] = sd > 1e-10 ? 1.0 / sd : 1.0;
  }
  network_.setInputTransform(std::move(mean), std::move(scale));
}

void Trainer::step(const TrainSample& sample, double& lossOut) {
  const int d = network_.inputDim();
  const int numLayers = network_.numLayers();

  // Zero gradients.
  for (int li = 0; li < numLayers; ++li) {
    std::fill(weightGrads_[static_cast<std::size_t>(li)].begin(),
              weightGrads_[static_cast<std::size_t>(li)].end(), 0.0);
    std::fill(biasGrads_[static_cast<std::size_t>(li)].begin(),
              biasGrads_[static_cast<std::size_t>(li)].end(), 0.0);
  }

  // Forward all atoms, accumulate predicted total energy.
  double predicted = 0.0;
  // Retained activations for every atom would be large; instead run
  // forward+backward per atom with the loss derivative applied after the
  // total is known. We therefore do two passes: one to get the total,
  // one to accumulate gradients.
  const auto& shift = network_.inputShift();
  const auto& scale = network_.inputScale();
  auto forwardAtom = [&](const double* raw, bool retain) {
    auto& acts = activations_;
    acts[0].resize(static_cast<std::size_t>(d));
    for (int c = 0; c < d; ++c)
      acts[0][static_cast<std::size_t>(c)] =
          (raw[c] - shift[static_cast<std::size_t>(c)]) * scale[static_cast<std::size_t>(c)];
    for (int li = 0; li < numLayers; ++li) {
      const auto& l = network_.layer(li);
      const bool last = li + 1 == numLayers;
      acts[static_cast<std::size_t>(li) + 1].resize(static_cast<std::size_t>(l.out));
      for (int o = 0; o < l.out; ++o) {
        const double* w = l.weights.data() + static_cast<std::size_t>(o) * l.in;
        double acc = l.bias[static_cast<std::size_t>(o)];
        for (int c = 0; c < l.in; ++c)
          acc += w[c] * acts[static_cast<std::size_t>(li)][static_cast<std::size_t>(c)];
        acts[static_cast<std::size_t>(li) + 1][static_cast<std::size_t>(o)] =
            last ? acc : std::max(acc, 0.0);
      }
    }
    (void)retain;
    return acts[static_cast<std::size_t>(numLayers)][0];
  };

  for (int a = 0; a < sample.nAtoms; ++a)
    predicted += forwardAtom(
        sample.features.data() + static_cast<std::size_t>(a) * d, false);

  // Loss: squared per-atom energy error.
  const double perAtomError = (predicted - sample.energy) / sample.nAtoms;
  lossOut = perAtomError * perAtomError;
  // dL/dE_total = 2 * perAtomError / nAtoms; same for every atomic energy.
  const double dLdE = 2.0 * perAtomError / sample.nAtoms;

  for (int a = 0; a < sample.nAtoms; ++a) {
    forwardAtom(sample.features.data() + static_cast<std::size_t>(a) * d, true);
    // Backward through the retained activations.
    std::vector<double> grad{dLdE};
    for (int li = numLayers - 1; li >= 0; --li) {
      const auto& l = network_.layer(li);
      const bool last = li + 1 == numLayers;
      std::vector<double> prev(static_cast<std::size_t>(l.in), 0.0);
      auto& wg = weightGrads_[static_cast<std::size_t>(li)];
      auto& bg = biasGrads_[static_cast<std::size_t>(li)];
      const auto& input = activations_[static_cast<std::size_t>(li)];
      const auto& output = activations_[static_cast<std::size_t>(li) + 1];
      for (int o = 0; o < l.out; ++o) {
        double g = grad[static_cast<std::size_t>(o)];
        if (!last && output[static_cast<std::size_t>(o)] <= 0.0) g = 0.0;
        if (g == 0.0) continue;
        bg[static_cast<std::size_t>(o)] += g;
        const double* w = l.weights.data() + static_cast<std::size_t>(o) * l.in;
        double* wgRow = wg.data() + static_cast<std::size_t>(o) * l.in;
        for (int c = 0; c < l.in; ++c) {
          wgRow[c] += g * input[static_cast<std::size_t>(c)];
          prev[static_cast<std::size_t>(c)] += g * w[c];
        }
      }
      grad = std::move(prev);
    }
  }

  // Adam update.
  ++steps_;
  constexpr double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double correction1 = 1.0 - std::pow(beta1, static_cast<double>(steps_));
  const double correction2 = 1.0 - std::pow(beta2, static_cast<double>(steps_));
  for (int li = 0; li < numLayers; ++li) {
    auto& l = network_.layer(li);
    auto& ws = weightState_[static_cast<std::size_t>(li)];
    auto& bs = biasState_[static_cast<std::size_t>(li)];
    const auto& wg = weightGrads_[static_cast<std::size_t>(li)];
    const auto& bg = biasGrads_[static_cast<std::size_t>(li)];
    for (std::size_t i = 0; i < l.weights.size(); ++i) {
      ws.m[i] = beta1 * ws.m[i] + (1 - beta1) * wg[i];
      ws.v[i] = beta2 * ws.v[i] + (1 - beta2) * wg[i] * wg[i];
      l.weights[i] -= lr_ * (ws.m[i] / correction1) /
                      (std::sqrt(ws.v[i] / correction2) + eps);
    }
    for (std::size_t i = 0; i < l.bias.size(); ++i) {
      bs.m[i] = beta1 * bs.m[i] + (1 - beta1) * bg[i];
      bs.v[i] = beta2 * bs.v[i] + (1 - beta2) * bg[i] * bg[i];
      l.bias[i] -= lr_ * (bs.m[i] / correction1) /
                   (std::sqrt(bs.v[i] / correction2) + eps);
    }
  }
}

double Trainer::epoch(const std::vector<TrainSample>& samples) {
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng_.uniformBelow(i)]);
  double total = 0.0;
  for (std::size_t k : order) {
    double loss = 0.0;
    step(samples[k], loss);
    total += loss;
  }
  return total / static_cast<double>(samples.size());
}

double Trainer::train(const std::vector<TrainSample>& samples) {
  require(!samples.empty(), "cannot train on empty sample set");
  double last = 0.0;
  for (int e = 0; e < config_.epochs; ++e) {
    last = epoch(samples);
    lr_ *= config_.decay;
  }
  return last;
}

Metrics Trainer::evaluateEnergy(const Network& network,
                                const std::vector<TrainSample>& samples) {
  Metrics m;
  double sumAbs = 0.0, sumSq = 0.0, mean = 0.0;
  std::vector<double> refs, preds;
  refs.reserve(samples.size());
  preds.reserve(samples.size());
  for (const TrainSample& s : samples) {
    const double pred = network.stateEnergy(s.features.data(), s.nAtoms);
    // Parity in raw energies: the composition baseline is added back to
    // both sides (it cancels in the MAE but matters for R^2, which the
    // paper reports on absolute energies).
    const double refPerAtom = (s.energy + s.baseline) / s.nAtoms;
    const double predPerAtom = (pred + s.baseline) / s.nAtoms;
    refs.push_back(refPerAtom);
    preds.push_back(predPerAtom);
    sumAbs += std::abs(predPerAtom - refPerAtom);
    mean += refPerAtom;
  }
  mean /= static_cast<double>(samples.size());
  double ssRes = 0.0, ssTot = 0.0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ssRes += (preds[i] - refs[i]) * (preds[i] - refs[i]);
    ssTot += (refs[i] - mean) * (refs[i] - mean);
  }
  (void)sumSq;
  m.maePerAtom = sumAbs / static_cast<double>(samples.size());
  m.r2 = ssTot > 0 ? 1.0 - ssRes / ssTot : 0.0;
  return m;
}

Metrics Trainer::evaluateForces(const Network& network,
                                const Descriptor& descriptor,
                                const std::vector<LabeledStructure>& data) {
  Metrics m;
  double sumAbs = 0.0, mean = 0.0;
  std::size_t count = 0;
  std::vector<double> refs, preds;
  for (const LabeledStructure& ls : data) {
    const std::size_t n = ls.structure.size();
    const std::vector<double> features = descriptor.compute(ls.structure);
    std::vector<double> grads(features.size());
    for (std::size_t a = 0; a < n; ++a)
      network.inputGradient(
          {features.data() + a * static_cast<std::size_t>(descriptor.dim()),
           static_cast<std::size_t>(descriptor.dim())},
          {grads.data() + a * static_cast<std::size_t>(descriptor.dim()),
           static_cast<std::size_t>(descriptor.dim())});
    const std::vector<Vec3d> predicted = descriptor.forces(ls.structure, grads);
    for (std::size_t a = 0; a < n; ++a) {
      const double pr[3] = {predicted[a].x, predicted[a].y, predicted[a].z};
      const double rf[3] = {ls.forces[a].x, ls.forces[a].y, ls.forces[a].z};
      for (int c = 0; c < 3; ++c) {
        refs.push_back(rf[c]);
        preds.push_back(pr[c]);
        sumAbs += std::abs(pr[c] - rf[c]);
        mean += rf[c];
        ++count;
      }
    }
  }
  mean /= static_cast<double>(count);
  double ssRes = 0.0, ssTot = 0.0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ssRes += (preds[i] - refs[i]) * (preds[i] - refs[i]);
    ssTot += (refs[i] - mean) * (refs[i] - mean);
  }
  m.maePerAtom = sumAbs / static_cast<double>(count);
  m.r2 = ssTot > 0 ? 1.0 - ssRes / ssTot : 0.0;
  return m;
}

}  // namespace tkmc
