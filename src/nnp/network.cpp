#include "nnp/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tkmc {

Network::Network(std::vector<int> channels) : channels_(std::move(channels)) {
  require(channels_.size() >= 2, "network needs at least one layer");
  for (int c : channels_) require(c > 0, "channel widths must be positive");
  layers_.resize(channels_.size() - 1);
  for (std::size_t i = 0; i + 1 < channels_.size(); ++i) {
    Layer& l = layers_[i];
    l.in = channels_[i];
    l.out = channels_[i + 1];
    l.weights.assign(static_cast<std::size_t>(l.in) * l.out, 0.0);
    l.bias.assign(static_cast<std::size_t>(l.out), 0.0);
  }
  inputShift_.assign(static_cast<std::size_t>(inputDim()), 0.0);
  inputScale_.assign(static_cast<std::size_t>(inputDim()), 1.0);
}

void Network::initHe(Rng& rng) {
  for (Layer& l : layers_) {
    const double stddev = std::sqrt(2.0 / l.in);
    for (double& w : l.weights) {
      // Box-Muller from two uniforms.
      const double u1 = rng.uniformOpenLeft();
      const double u2 = rng.uniform();
      w = stddev * std::sqrt(-2.0 * std::log(u1)) *
          std::cos(2.0 * 3.14159265358979323846 * u2);
    }
    std::fill(l.bias.begin(), l.bias.end(), 0.0);
  }
}

void Network::setInputTransform(std::vector<double> shift,
                                std::vector<double> scale) {
  require(static_cast<int>(shift.size()) == inputDim() &&
              static_cast<int>(scale.size()) == inputDim(),
          "input transform must match the input dimension");
  inputShift_ = std::move(shift);
  inputScale_ = std::move(scale);
}

int Network::maxWidth() const {
  return *std::max_element(channels_.begin(), channels_.end());
}

double Network::forwardOne(const double* features, double* scratch) const {
  const int width = maxWidth();
  double* cur = scratch;
  double* nxt = scratch + width;
  for (int c = 0; c < inputDim(); ++c)
    cur[c] = (features[c] - inputShift_[static_cast<std::size_t>(c)]) *
             inputScale_[static_cast<std::size_t>(c)];
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    const bool last = li + 1 == layers_.size();
    for (int o = 0; o < l.out; ++o) {
      const double* w = l.weights.data() + static_cast<std::size_t>(o) * l.in;
      double acc = l.bias[static_cast<std::size_t>(o)];
      for (int c = 0; c < l.in; ++c) acc += w[c] * cur[c];
      nxt[o] = last ? acc : std::max(acc, 0.0);
    }
    std::swap(cur, nxt);
  }
  return cur[0];
}

double Network::atomEnergy(std::span<const double> features) const {
  require(static_cast<int>(features.size()) == inputDim(),
          "feature vector has wrong dimension");
  std::vector<double> scratch(static_cast<std::size_t>(2 * maxWidth()));
  return forwardOne(features.data(), scratch.data());
}

void Network::forwardBatch(const double* features, int nAtoms,
                           double* atomEnergies) const {
  std::vector<double> scratch(static_cast<std::size_t>(2 * maxWidth()));
  for (int i = 0; i < nAtoms; ++i)
    atomEnergies[i] = forwardOne(
        features + static_cast<std::size_t>(i) * inputDim(), scratch.data());
}

double Network::stateEnergy(const double* features, int nAtoms) const {
  std::vector<double> scratch(static_cast<std::size_t>(2 * maxWidth()));
  double total = 0.0;
  for (int i = 0; i < nAtoms; ++i)
    total += forwardOne(features + static_cast<std::size_t>(i) * inputDim(),
                        scratch.data());
  return total;
}

void Network::inputGradient(std::span<const double> features,
                            std::span<double> dFeatures) const {
  require(static_cast<int>(features.size()) == inputDim() &&
              dFeatures.size() == features.size(),
          "gradient buffers must match the input dimension");
  // Forward pass retaining activations.
  std::vector<std::vector<double>> acts(layers_.size() + 1);
  acts[0].resize(static_cast<std::size_t>(inputDim()));
  for (int c = 0; c < inputDim(); ++c)
    acts[0][static_cast<std::size_t>(c)] =
        (features[static_cast<std::size_t>(c)] - inputShift_[static_cast<std::size_t>(c)]) *
        inputScale_[static_cast<std::size_t>(c)];
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    const bool last = li + 1 == layers_.size();
    acts[li + 1].resize(static_cast<std::size_t>(l.out));
    for (int o = 0; o < l.out; ++o) {
      const double* w = l.weights.data() + static_cast<std::size_t>(o) * l.in;
      double acc = l.bias[static_cast<std::size_t>(o)];
      for (int c = 0; c < l.in; ++c) acc += w[c] * acts[li][static_cast<std::size_t>(c)];
      acts[li + 1][static_cast<std::size_t>(o)] = last ? acc : std::max(acc, 0.0);
    }
  }
  // Backward pass: d(output scalar)/d(activations).
  std::vector<double> grad{1.0};
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const Layer& l = layers_[li];
    const bool last = li + 1 == layers_.size();
    std::vector<double> prev(static_cast<std::size_t>(l.in), 0.0);
    for (int o = 0; o < l.out; ++o) {
      double g = grad[static_cast<std::size_t>(o)];
      if (!last && acts[li + 1][static_cast<std::size_t>(o)] <= 0.0) g = 0.0;
      const double* w = l.weights.data() + static_cast<std::size_t>(o) * l.in;
      for (int c = 0; c < l.in; ++c) prev[static_cast<std::size_t>(c)] += g * w[c];
    }
    grad = std::move(prev);
  }
  for (int c = 0; c < inputDim(); ++c)
    dFeatures[static_cast<std::size_t>(c)] =
        grad[static_cast<std::size_t>(c)] * inputScale_[static_cast<std::size_t>(c)];
}

Network::Snapshot Network::foldedSnapshot() const {
  Snapshot snap;
  snap.channels = channels_;
  snap.weights.resize(layers_.size());
  snap.biases.resize(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    auto& w = snap.weights[li];
    auto& b = snap.biases[li];
    w.resize(l.weights.size());
    b.resize(l.bias.size());
    if (li == 0) {
      // y = W((x - shift) * scale) + b  ==  (W * diag(scale)) x
      //     + (b - W (shift .* scale)).
      for (int o = 0; o < l.out; ++o) {
        double shiftDot = 0.0;
        for (int c = 0; c < l.in; ++c) {
          const double wc = l.weights[static_cast<std::size_t>(o) * l.in + c];
          const double sc = inputScale_[static_cast<std::size_t>(c)];
          w[static_cast<std::size_t>(o) * l.in + c] = static_cast<float>(wc * sc);
          shiftDot += wc * sc * inputShift_[static_cast<std::size_t>(c)];
        }
        b[static_cast<std::size_t>(o)] =
            static_cast<float>(l.bias[static_cast<std::size_t>(o)] - shiftDot);
      }
    } else {
      for (std::size_t i = 0; i < l.weights.size(); ++i)
        w[i] = static_cast<float>(l.weights[i]);
      for (std::size_t i = 0; i < l.bias.size(); ++i)
        b[i] = static_cast<float>(l.bias[i]);
    }
  }
  return snap;
}

}  // namespace tkmc
