#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "eam/eam_potential.hpp"
#include "lattice/structure.hpp"

namespace tkmc {

/// Reference-labelled structure for potential fitting.
struct LabeledStructure {
  Structure structure;
  double energy = 0.0;          // total energy, eV
  std::vector<Vec3d> forces;    // eV/angstrom
};

/// Training-set generator configuration, mirroring the paper's dataset:
/// 540 Fe-Cu cells of 60-64 atoms with randomized composition, a few
/// vacancies, and small positional jitter (standing in for DFT-relaxed
/// geometries).
struct DatasetConfig {
  int count = 540;
  int cellsX = 4;
  int cellsY = 4;
  int cellsZ = 2;               // 4*4*2 cells * 2 = 64 sites
  double latticeConstant = 2.87;
  // Positional jitter (angstrom). Large enough to sample the radial axis
  // between lattice shells — energy-only training then constrains the
  // potential's gradients, which is what makes the Fig. 7 force parity
  // possible. Below ~0.1 A the forces are underdetermined; 0.18 A puts
  // the held-out force R^2 at the paper's ~0.88.
  double jitterSigma = 0.18;
  double maxCuFraction = 0.25;
  int maxVacancies = 4;
};

/// Builds one randomized BCC Fe-Cu cell.
Structure randomCell(const DatasetConfig& config, Rng& rng);

/// Generates `config.count` structures labelled by the EAM oracle.
std::vector<LabeledStructure> generateDataset(const EamPotential& oracle,
                                              const DatasetConfig& config,
                                              Rng& rng);

}  // namespace tkmc
