#include "nnp/conv_stack.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace tkmc {
namespace {

// Codegen control for the Fig. 10 rungs. The paper's "base" and
// "matmul" rungs ran scalar code (MPE / pre-SIMD CPE), while the later
// rungs use the CPE vector units. On a host the compiler would happily
// vectorize every variant, erasing the distinction the figure measures,
// so the scalar rungs are pinned to non-vectorizing codegen and the SIMD
// rungs to aggressive vectorization. The structural differences (access
// patterns, number of main-memory passes) are real either way and drive
// the traffic accounting.
#if defined(__GNUC__) && !defined(__clang__)
#define TKMC_SCALAR_KERNEL __attribute__((optimize("O1", "no-tree-vectorize")))
#define TKMC_VECTOR_KERNEL __attribute__((optimize("O3", "tree-vectorize")))
#else
#define TKMC_SCALAR_KERNEL
#define TKMC_VECTOR_KERNEL
#endif

// ---- scalar rung kernels ----

TKMC_SCALAR_KERNEL void convPixelScalar(const float* x, const float* wConv,
                                        float* y, int in, int out) {
  // Conv2D layout: output-channel outer loop over channel-major weights,
  // stride `out` floats per input-channel step (the im2col-free pattern).
  for (int o = 0; o < out; ++o) {
    float acc = 0.0f;
    for (int c = 0; c < in; ++c)
      acc += x[c] * wConv[static_cast<std::size_t>(c) * out + o];
    y[o] = acc;
  }
}

TKMC_SCALAR_KERNEL void matmulPixelScalar(const float* x,
                                          const float* wRowMajor, float* y,
                                          int in, int out) {
  // GEMM layout: contiguous weight rows, unit-stride dot products.
  for (int o = 0; o < out; ++o) {
    const float* wRow = wRowMajor + static_cast<std::size_t>(o) * in;
    float acc = 0.0f;
    for (int c = 0; c < in; ++c) acc += wRow[c] * x[c];
    y[o] = acc;
  }
}

TKMC_SCALAR_KERNEL void biasPassScalar(float* y, const float* b, int m,
                                       int out) {
  for (int px = 0; px < m; ++px)
    for (int o = 0; o < out; ++o)
      y[static_cast<std::size_t>(px) * out + o] += b[o];
}

TKMC_SCALAR_KERNEL void reluPassScalar(float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] < 0.0f ? 0.0f : y[i];
}

// ---- vectorized rung kernels ----

TKMC_VECTOR_KERNEL void matmulPixelSimd(const float* __restrict__ x,
                                        const float* __restrict__ wConv,
                                        float* __restrict__ y, int in,
                                        int out) {
  for (int o = 0; o < out; ++o) y[o] = 0.0f;
  for (int c = 0; c < in; ++c) {
    const float xv = x[c];
    const float* __restrict__ wRow = wConv + static_cast<std::size_t>(c) * out;
    for (int o = 0; o < out; ++o) y[o] += xv * wRow[o];
  }
}

TKMC_VECTOR_KERNEL void biasPassSimd(float* __restrict__ y,
                                     const float* __restrict__ b, int m,
                                     int out) {
  for (int px = 0; px < m; ++px)
    for (int o = 0; o < out; ++o)
      y[static_cast<std::size_t>(px) * out + o] += b[o];
}

TKMC_VECTOR_KERNEL void reluPassSimd(float* __restrict__ y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] < 0.0f ? 0.0f : y[i];
}

// ---- traffic accounting ----

void chargeMatmul(Traffic* t, int m, int in, int out) {
  if (!t) return;
  t->mainReadBytes += static_cast<std::uint64_t>(m) * in * sizeof(float);
  t->mainReadBytes += static_cast<std::uint64_t>(in) * out * sizeof(float);
  t->mainWriteBytes += static_cast<std::uint64_t>(m) * out * sizeof(float);
  t->flops += 2ULL * m * in * out;
}

void chargeElementwisePass(Traffic* t, int m, int out) {
  if (!t) return;
  t->mainReadBytes += static_cast<std::uint64_t>(m) * out * sizeof(float);
  t->mainWriteBytes += static_cast<std::uint64_t>(m) * out * sizeof(float);
  t->flops += static_cast<std::uint64_t>(m) * out;
}

}  // namespace

namespace detail {

TKMC_VECTOR_KERNEL void fusedConvPixel(const float* __restrict__ x,
                                       const float* __restrict__ weightsChannelMajor,
                                       const float* __restrict__ bias,
                                       float* __restrict__ y, int in, int out,
                                       bool relu) {
  for (int o = 0; o < out; ++o) y[o] = bias[o];
  for (int c = 0; c < in; ++c) {
    const float xv = x[c];
    const float* __restrict__ wRow =
        weightsChannelMajor + static_cast<std::size_t>(c) * out;
    for (int o = 0; o < out; ++o) y[o] += xv * wRow[o];
  }
  if (relu)
    for (int o = 0; o < out; ++o) y[o] = y[o] < 0.0f ? 0.0f : y[o];
}

}  // namespace detail

ConvStack::ConvStack(Network::Snapshot snapshot)
    : snapshot_(std::move(snapshot)) {
  require(!snapshot_.weights.empty(), "conv stack needs at least one layer");
  weightsChannelMajor_.resize(snapshot_.weights.size());
  for (std::size_t li = 0; li < snapshot_.weights.size(); ++li) {
    const int in = snapshot_.channels[li];
    const int out = snapshot_.channels[li + 1];
    auto& cm = weightsChannelMajor_[li];
    cm.resize(static_cast<std::size_t>(in) * out);
    for (int o = 0; o < out; ++o)
      for (int c = 0; c < in; ++c)
        cm[static_cast<std::size_t>(c) * out + o] =
            snapshot_.weights[li][static_cast<std::size_t>(o) * in + c];
  }
}

void ConvStack::forward(Mode mode, const float* input, int m, float* output,
                        Traffic* traffic) const {
  require(m > 0, "batch must be non-empty");
  switch (mode) {
    case Mode::kNaiveConv: forwardNaive(input, m, output, traffic); return;
    case Mode::kMatmul: forwardMatmul(input, m, output, traffic); return;
    case Mode::kMatmulSimd: forwardSimd(input, m, output, traffic); return;
    case Mode::kFusedLayer: forwardFused(input, m, output, traffic); return;
  }
}

Traffic ConvStack::layerTraffic(int layer, int m, bool fused) const {
  const int in = snapshot_.channels[static_cast<std::size_t>(layer)];
  const int out = snapshot_.channels[static_cast<std::size_t>(layer) + 1];
  const bool lastLayer = layer + 1 == numLayers();
  Traffic t;
  chargeMatmul(&t, m, in, out);
  if (fused) {
    // Bias and ReLU happen in registers; only their FLOPs count.
    t.flops += static_cast<std::uint64_t>(m) * out * (lastLayer ? 1 : 2);
  } else {
    chargeElementwisePass(&t, m, out);                  // bias pass
    if (!lastLayer) chargeElementwisePass(&t, m, out);  // ReLU pass
  }
  return t;
}

void ConvStack::forwardNaive(const float* input, int m, float* output,
                             Traffic* t) const {
  std::vector<float> bufA(input, input + static_cast<std::size_t>(m) * inputDim());
  std::vector<float> bufB;
  for (int li = 0; li < numLayers(); ++li) {
    const int in = snapshot_.channels[static_cast<std::size_t>(li)];
    const int out = snapshot_.channels[static_cast<std::size_t>(li) + 1];
    const bool lastLayer = li + 1 == numLayers();
    const auto& wConv = weightsChannelMajor_[static_cast<std::size_t>(li)];
    bufB.resize(static_cast<std::size_t>(m) * out);
    for (int px = 0; px < m; ++px)
      convPixelScalar(bufA.data() + static_cast<std::size_t>(px) * in,
                      wConv.data(),
                      bufB.data() + static_cast<std::size_t>(px) * out, in, out);
    chargeMatmul(t, m, in, out);
    biasPassScalar(bufB.data(),
                   snapshot_.biases[static_cast<std::size_t>(li)].data(), m,
                   out);
    chargeElementwisePass(t, m, out);
    if (!lastLayer) {
      reluPassScalar(bufB.data(), bufB.size());
      chargeElementwisePass(t, m, out);
    }
    bufA.swap(bufB);
  }
  std::memcpy(output, bufA.data(),
              static_cast<std::size_t>(m) * outputDim() * sizeof(float));
}

void ConvStack::forwardMatmul(const float* input, int m, float* output,
                              Traffic* t) const {
  std::vector<float> bufA(input, input + static_cast<std::size_t>(m) * inputDim());
  std::vector<float> bufB;
  for (int li = 0; li < numLayers(); ++li) {
    const int in = snapshot_.channels[static_cast<std::size_t>(li)];
    const int out = snapshot_.channels[static_cast<std::size_t>(li) + 1];
    const bool lastLayer = li + 1 == numLayers();
    const auto& w = snapshot_.weights[static_cast<std::size_t>(li)];
    bufB.resize(static_cast<std::size_t>(m) * out);
    for (int px = 0; px < m; ++px)
      matmulPixelScalar(bufA.data() + static_cast<std::size_t>(px) * in,
                        w.data(),
                        bufB.data() + static_cast<std::size_t>(px) * out, in,
                        out);
    chargeMatmul(t, m, in, out);
    biasPassScalar(bufB.data(),
                   snapshot_.biases[static_cast<std::size_t>(li)].data(), m,
                   out);
    chargeElementwisePass(t, m, out);
    if (!lastLayer) {
      reluPassScalar(bufB.data(), bufB.size());
      chargeElementwisePass(t, m, out);
    }
    bufA.swap(bufB);
  }
  std::memcpy(output, bufA.data(),
              static_cast<std::size_t>(m) * outputDim() * sizeof(float));
}

void ConvStack::forwardSimd(const float* input, int m, float* output,
                            Traffic* t) const {
  std::vector<float> bufA(input, input + static_cast<std::size_t>(m) * inputDim());
  std::vector<float> bufB;
  for (int li = 0; li < numLayers(); ++li) {
    const int in = snapshot_.channels[static_cast<std::size_t>(li)];
    const int out = snapshot_.channels[static_cast<std::size_t>(li) + 1];
    const bool lastLayer = li + 1 == numLayers();
    const auto& wConv = weightsChannelMajor_[static_cast<std::size_t>(li)];
    bufB.resize(static_cast<std::size_t>(m) * out);
    for (int px = 0; px < m; ++px)
      matmulPixelSimd(bufA.data() + static_cast<std::size_t>(px) * in,
                      wConv.data(),
                      bufB.data() + static_cast<std::size_t>(px) * out, in, out);
    chargeMatmul(t, m, in, out);
    biasPassSimd(bufB.data(),
                 snapshot_.biases[static_cast<std::size_t>(li)].data(), m, out);
    chargeElementwisePass(t, m, out);
    if (!lastLayer) {
      reluPassSimd(bufB.data(), bufB.size());
      chargeElementwisePass(t, m, out);
    }
    bufA.swap(bufB);
  }
  std::memcpy(output, bufA.data(),
              static_cast<std::size_t>(m) * outputDim() * sizeof(float));
}

void ConvStack::forwardFused(const float* input, int m, float* output,
                             Traffic* t) const {
  // FusedConv2D: matmul + bias + ReLU in one pass; intermediate
  // activations still round-trip main memory between layers.
  std::vector<float> bufA(input, input + static_cast<std::size_t>(m) * inputDim());
  std::vector<float> bufB;
  for (int li = 0; li < numLayers(); ++li) {
    const int in = snapshot_.channels[static_cast<std::size_t>(li)];
    const int out = snapshot_.channels[static_cast<std::size_t>(li) + 1];
    const bool lastLayer = li + 1 == numLayers();
    const auto& wConv = weightsChannelMajor_[static_cast<std::size_t>(li)];
    const auto& b = snapshot_.biases[static_cast<std::size_t>(li)];
    bufB.resize(static_cast<std::size_t>(m) * out);
    for (int px = 0; px < m; ++px)
      detail::fusedConvPixel(bufA.data() + static_cast<std::size_t>(px) * in,
                             wConv.data(), b.data(),
                             bufB.data() + static_cast<std::size_t>(px) * out,
                             in, out, !lastLayer);
    if (t) {
      chargeMatmul(t, m, in, out);
      t->flops += static_cast<std::uint64_t>(m) * out * (lastLayer ? 1 : 2);
    }
    bufA.swap(bufB);
  }
  std::memcpy(output, bufA.data(),
              static_cast<std::size_t>(m) * outputDim() * sizeof(float));
}

}  // namespace tkmc
