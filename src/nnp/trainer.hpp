#pragma once

#include <array>
#include <vector>

#include "nnp/dataset.hpp"
#include "nnp/descriptor.hpp"
#include "nnp/network.hpp"

namespace tkmc {

/// One fitting sample: precomputed per-atom features plus the reference
/// total energy. `energy` is the network's target (reference minus the
/// composition baseline); `baseline` is added back for raw-energy parity
/// metrics.
struct TrainSample {
  std::vector<double> features;  // [nAtoms][descriptor dim]
  int nAtoms = 0;
  double energy = 0.0;           // fitting target (residual), eV
  double baseline = 0.0;         // composition baseline, eV
};

/// Per-species reference energies e0, fitted by least squares so that
/// sum_i e0(species_i) explains the composition-driven part of the total
/// energy. The network then learns only the environment-dependent
/// residual — which is all that survives in AKMC energy *differences*
/// (E_f - E_i involves the same atoms, so the baseline cancels exactly).
struct SpeciesBaseline {
  std::array<double, kNumElements> e0{};

  double evaluate(const Structure& s) const;

  /// Least-squares fit of e0 from labelled structures.
  static SpeciesBaseline fit(const std::vector<LabeledStructure>& data);
};

/// Builds a TrainSample from a labelled structure. When a baseline is
/// given, the network target is the residual energy.
TrainSample makeSample(const Descriptor& descriptor, const LabeledStructure& ls,
                       const SpeciesBaseline* baseline = nullptr);

/// Regression metrics used in the Fig. 7 parity analysis.
struct Metrics {
  double maePerAtom = 0.0;  // mean absolute error of energy per atom, eV
  double r2 = 0.0;          // coefficient of determination
};

/// Adam trainer for the atomistic network on total-energy labels.
///
/// The loss is the squared per-atom energy error averaged over samples,
/// matching how the paper reports its 2.9 meV/atom MAE. Standardization
/// of the input features is fitted from the training set and stored in
/// the network so that inference needs no side-band statistics.
class Trainer {
 public:
  struct Config {
    int epochs = 200;
    double learningRate = 3e-3;
    double decay = 0.999;       // multiplicative LR decay per epoch
    std::uint64_t seed = 7;
  };

  Trainer(Network& network, Config config);

  /// Computes per-feature mean/std from the samples and installs the
  /// transform into the network. Call before train().
  void fitStandardization(const std::vector<TrainSample>& samples);

  /// Runs the full schedule; returns the final epoch's mean loss
  /// (eV^2 per atom^2).
  double train(const std::vector<TrainSample>& samples);

  /// One epoch over the samples in random order; returns mean loss.
  double epoch(const std::vector<TrainSample>& samples);

  /// Energy metrics of the current network on a sample set.
  static Metrics evaluateEnergy(const Network& network,
                                const std::vector<TrainSample>& samples);

  /// Force metrics: compares NNP forces (analytic, via the descriptor
  /// chain rule) against reference forces, componentwise.
  static Metrics evaluateForces(const Network& network,
                                const Descriptor& descriptor,
                                const std::vector<LabeledStructure>& data);

 private:
  struct AdamState {
    std::vector<double> m;
    std::vector<double> v;
  };

  void step(const TrainSample& sample, double& lossOut);

  Network& network_;
  Config config_;
  Rng rng_;
  double lr_;
  long steps_ = 0;
  std::vector<AdamState> weightState_;
  std::vector<AdamState> biasState_;
  // Scratch reused across steps.
  std::vector<std::vector<double>> activations_;
  std::vector<std::vector<double>> weightGrads_;
  std::vector<std::vector<double>> biasGrads_;
};

}  // namespace tkmc
