#include "nnp/model_io.hpp"

#include <fstream>

#include "common/error.hpp"

namespace tkmc {

void saveNetwork(const Network& network, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "cannot open model file for writing: " + path);
  out.precision(17);
  out << "tensorkmc-nnp 1\n";
  out << network.channels().size();
  for (int c : network.channels()) out << ' ' << c;
  out << '\n';
  for (double v : network.inputShift()) out << v << ' ';
  out << '\n';
  for (double v : network.inputScale()) out << v << ' ';
  out << '\n';
  for (int li = 0; li < network.numLayers(); ++li) {
    const auto& l = network.layer(li);
    for (double w : l.weights) out << w << ' ';
    out << '\n';
    for (double b : l.bias) out << b << ' ';
    out << '\n';
  }
  require(out.good(), "failed writing model file: " + path);
}

Network loadNetwork(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open model file: " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  require(magic == "tensorkmc-nnp" && version == 1,
          "unrecognized model file format: " + path);
  std::size_t numChannels = 0;
  in >> numChannels;
  require(numChannels >= 2 && numChannels < 64, "bad channel count");
  std::vector<int> channels(numChannels);
  for (int& c : channels) in >> c;
  Network network(channels);
  std::vector<double> shift(static_cast<std::size_t>(network.inputDim()));
  std::vector<double> scale(static_cast<std::size_t>(network.inputDim()));
  for (double& v : shift) in >> v;
  for (double& v : scale) in >> v;
  network.setInputTransform(std::move(shift), std::move(scale));
  for (int li = 0; li < network.numLayers(); ++li) {
    auto& l = network.layer(li);
    for (double& w : l.weights) in >> w;
    for (double& b : l.bias) in >> b;
  }
  require(in.good(), "model file truncated: " + path);
  return network;
}

}  // namespace tkmc
