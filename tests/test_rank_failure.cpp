#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/eam_energy_model.hpp"
#include "parallel/coordinated_checkpoint.hpp"
#include "parallel/parallel_engine.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

struct ParallelWorld {
  // 16 cells is the smallest even extent that satisfies the sector
  // minimum on a 2x2x1 grid at this cutoff (subdomain extent 8 >= 7).
  ParallelWorld(std::uint64_t seed, int cells = 16, int vacancies = 6)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(cells, cells, cells, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.12, vacancies, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

std::string tempDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// 2x2x1 flat grid with the whole fail-stop stack armed: coordinated
/// checkpoints every cycle and the lease-based failure detector.
ParallelConfig failstopConfig(std::uint64_t seed, const std::string& dir) {
  ParallelConfig cfg;
  cfg.seed = seed;
  cfg.tStop = 5e-8;
  cfg.rankGrid = {2, 2, 1};
  cfg.checkpointDir = dir;
  cfg.checkpointCadence = 1;
  cfg.heartbeatIntervalMs = 5.0;
  cfg.heartbeatTimeoutMs = 20.0;
  return cfg;
}

// --- Failure detector -------------------------------------------------

TEST(HeartbeatDetector, KilledRankIsDetectedInBoundedPolls) {
  SimComm comm(2);
  comm.setLease(5.0, 20.0);
  comm.send(1, 0, 7, {1, 2, 3});  // rank 1 beats once, then dies
  comm.killRank(1);
  const double waitStart = comm.nowMs();
  int polls = 0;
  SimComm::PeerVerdict verdict = SimComm::PeerVerdict::kSilent;
  while (verdict != SimComm::PeerVerdict::kFailed) {
    verdict = comm.pollPeer(1, waitStart);
    ASSERT_LE(++polls, 8) << "detector is not bounded";
  }
  // ceil(timeout / interval) + 1 = 5 polls at the most.
  EXPECT_LE(polls, 5);
  EXPECT_FALSE(comm.rankAlive(1));
  EXPECT_EQ(comm.aliveCount(), 1);
  // Detection latency is the silence the receiver actually sat through.
  EXPECT_GT(comm.nowMs() - comm.lastBeatMs(1), comm.leaseTimeoutMs());
}

TEST(HeartbeatDetector, LiveSenderPollsAlive) {
  SimComm comm(2);
  comm.setLease(5.0, 20.0);
  const double waitStart = comm.nowMs();
  comm.send(1, 0, 7, {9});  // beat lands at/after waitStart
  EXPECT_EQ(comm.pollPeer(1, waitStart), SimComm::PeerVerdict::kAlive);
  EXPECT_TRUE(comm.rankAlive(1));
}

TEST(HeartbeatDetector, SilentButLeasedPeerStaysUndecided) {
  SimComm comm(2);
  comm.setLease(5.0, 20.0);
  comm.tick(1.0);  // move past the construction-time lease grant
  // Fresh lease, no beat since waitStart: the verdict must be "silent"
  // (keep waiting), not a false positive.
  EXPECT_EQ(comm.pollPeer(1, comm.nowMs()), SimComm::PeerVerdict::kSilent);
  EXPECT_TRUE(comm.rankAlive(1));
}

// --- Deterministic shrink policy --------------------------------------

TEST(ShrinkRankGrid, ReducesWidestAxisToFitSurvivors) {
  EXPECT_EQ(shrinkRankGrid({2, 2, 1}, 3), (Vec3i{1, 2, 1}));
  EXPECT_EQ(shrinkRankGrid({2, 2, 2}, 7), (Vec3i{1, 2, 2}));
  EXPECT_EQ(shrinkRankGrid({4, 2, 1}, 3), (Vec3i{1, 2, 1}));
  EXPECT_EQ(shrinkRankGrid({2, 2, 2}, 8), (Vec3i{2, 2, 2}));  // already fits
  EXPECT_EQ(shrinkRankGrid({1, 1, 1}, 1), (Vec3i{1, 1, 1}));
  EXPECT_EQ(shrinkRankGrid({3, 1, 1}, 2), (Vec3i{1, 1, 1}));
}

// --- Coordinated checkpoint store -------------------------------------

TEST(CheckpointStore, ConstructionEpochRoundTripsTheInitialState) {
  const std::string dir = tempDir("tkmc_store_roundtrip");
  ParallelWorld w(31);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, failstopConfig(41, dir));

  CheckpointStore store(dir);
  ASSERT_EQ(store.epochs(), (std::vector<std::uint64_t>{0}));
  ASSERT_TRUE(store.newestCompleteEpoch().has_value());
  const EpochManifest manifest = store.loadManifest(0);
  EXPECT_EQ(manifest.rankGrid, (Vec3i{2, 2, 1}));
  EXPECT_EQ(manifest.shards.size(), 4u);
  EXPECT_DOUBLE_EQ(manifest.tStop, 5e-8);
  const LatticeState rebuilt =
      CheckpointStore::reassemble(manifest, store.loadShards(manifest));
  EXPECT_TRUE(rebuilt == w.state);
  EXPECT_EQ(rebuilt.contentHash(), w.state.contentHash());
}

TEST(CheckpointStore, StagedEpochsAreInvisibleUntilCommitted) {
  const std::string dir = tempDir("tkmc_store_staging");
  CheckpointStore store(dir);
  store.beginEpoch(3);
  ShardRecord shard;
  shard.rank = 0;
  shard.extentCells = {1, 1, 1};
  shard.species = {0, 1};
  store.stageShard(3, shard);
  EXPECT_TRUE(store.epochs().empty());
  EXPECT_FALSE(store.newestCompleteEpoch().has_value());
  store.abortEpoch(3);
  EXPECT_FALSE(std::filesystem::exists(store.stagePath(3)));
}

TEST(CheckpointStore, TornShardOrManifestDisqualifiesTheEpoch) {
  const std::string dir = tempDir("tkmc_store_torn");
  ParallelWorld w(32);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, failstopConfig(42, dir));
  engine.runCycle();
  engine.runCycle();

  CheckpointStore store(dir);
  ASSERT_EQ(store.epochs(), (std::vector<std::uint64_t>{0, 1, 2}));
  ASSERT_EQ(store.newestCompleteEpoch(), std::uint64_t{2});

  // Truncate one shard of epoch 2: the whole epoch is disqualified.
  const std::string shardPath = store.epochPath(2) + "/rank_1.tkc";
  {
    std::ifstream in(shardPath, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(shardPath, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{1});
  EXPECT_THROW((void)store.loadShards(store.loadManifest(2)), IoError);

  // Tear epoch 1's manifest itself: fall further back to epoch 0.
  std::filesystem::resize_file(store.epochPath(1) + "/manifest.tkm", 40);
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{0});
}

// --- Same-grid resume --------------------------------------------------

TEST(CoordinatedResume, SameGridContinuationIsBitExact) {
  const std::string dir = tempDir("tkmc_resume_samegrid");
  ParallelWorld a(33), b(33);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  ParallelConfig cfg = failstopConfig(43, dir);
  cfg.checkpointCadence = 2;
  ParallelEngine original(a.state, ma, a.cet, cfg);
  for (int c = 0; c < 6; ++c) original.runCycle();

  // Checkpointing must be side-effect-free on the physics: compare with
  // an engine that never checkpoints.
  ParallelConfig plain = failstopConfig(43, "");
  plain.checkpointDir.clear();
  plain.heartbeatTimeoutMs = 0.0;
  ParallelEngine witness(b.state, mb, b.cet, plain);
  for (int c = 0; c < 6; ++c) witness.runCycle();
  ASSERT_TRUE(original.assembleGlobalState() == witness.assembleGlobalState());

  // Resume a third engine from epoch 4 on the same grid: shards carry
  // the exact RNG stream states and vacancy orders, so cycles 5 and 6
  // replay bit-identically.
  ParallelWorld c(33);
  EamEnergyModel mc(c.cet, c.net, c.eam);
  ParallelConfig resumeCfg = failstopConfig(43, "");
  resumeCfg.checkpointDir.clear();
  resumeCfg.heartbeatTimeoutMs = 0.0;
  CheckpointStore store(dir);
  ParallelEngine resumed(mc, c.cet, resumeCfg, store, 4);
  EXPECT_EQ(resumed.cycles(), 4u);
  while (resumed.cycles() < original.cycles()) resumed.runCycle();
  EXPECT_EQ(resumed.totalEvents(), original.totalEvents());
  EXPECT_EQ(resumed.discardedEvents(), original.discardedEvents());
  EXPECT_TRUE(resumed.assembleGlobalState() == original.assembleGlobalState());
  EXPECT_EQ(resumed.assembleGlobalState().contentHash(),
            original.assembleGlobalState().contentHash());
}

// --- Rank fail-stop ----------------------------------------------------

TEST(RankFailStop, SurfacesTypedRankFailureWithoutACheckpointStore) {
  ParallelWorld w(34);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = failstopConfig(44, "");
  cfg.checkpointDir.clear();  // detector on, recovery impossible
  ParallelEngine engine(w.state, model, w.cet, cfg);
  FaultInjector inj(13);
  inj.armSchedule("comm.rank_kill", {5});
  FaultScope scope(inj);
  try {
    for (int c = 0; c < 3; ++c) engine.runCycle();
    FAIL() << "expected RankFailure";
  } catch (const RankFailure& failure) {
    EXPECT_GE(failure.rank(), 0);
    EXPECT_LT(failure.rank(), 4);
    EXPECT_GT(failure.detectMs(), engine.comm().leaseTimeoutMs());
  }
  EXPECT_EQ(inj.triggerCount("comm.rank_kill"), 1u);
}

/// Runs `engine` to `cycles` total cycles, then checks the surviving
/// trajectory against a FRESH engine resumed from the recovery epoch on
/// the same shrunken grid — the paper-level acceptance: recovery is
/// bit-reproducible, not merely plausible.
void expectMatchesFreshShrunkResume(ParallelEngine& engine,
                                    const std::string& dir) {
  ParallelWorld fresh(99);  // provides cet/model only; state comes from disk
  EamEnergyModel model(fresh.cet, fresh.net, fresh.eam);
  ParallelConfig cfg;
  cfg.tStop = 5e-8;
  cfg.rankGrid = engine.rankGrid();
  cfg.heartbeatTimeoutMs = 0.0;
  CheckpointStore store(dir);
  ParallelEngine resumed(model, fresh.cet, cfg, store,
                         engine.lastRecoveryEpoch());
  while (resumed.cycles() < engine.cycles()) resumed.runCycle();
  EXPECT_EQ(resumed.totalEvents(), engine.totalEvents());
  EXPECT_EQ(resumed.discardedEvents(), engine.discardedEvents());
  EXPECT_DOUBLE_EQ(resumed.time(), engine.time());
  EXPECT_TRUE(resumed.assembleGlobalState() == engine.assembleGlobalState());
  EXPECT_EQ(resumed.assembleGlobalState().contentHash(),
            engine.assembleGlobalState().contentHash());
}

void expectEveryCommittedEpochComplete(const std::string& dir) {
  CheckpointStore store(dir);
  for (const std::uint64_t epoch : store.epochs()) {
    EXPECT_NO_THROW({
      const EpochManifest manifest = store.loadManifest(epoch);
      const auto shards = store.loadShards(manifest);
      EXPECT_EQ(shards.size(), manifest.shards.size());
    }) << "committed epoch " << epoch
       << " references a missing or torn shard";
  }
}

TEST(RankFailStop, ShrinkRecoveryMatchesAFreshShrunkGridResume) {
  const std::string dir = tempDir("tkmc_failstop_shrink");
  ParallelWorld w(35);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, failstopConfig(45, dir));
  {
    FaultInjector inj(14);
    inj.armSchedule("comm.rank_kill", {10});  // mid-fold, cycle 1
    FaultScope scope(inj);
    for (int c = 0; c < 5; ++c) engine.runCycle();
    EXPECT_EQ(inj.triggerCount("comm.rank_kill"), 1u);
  }
  EXPECT_EQ(engine.cycles(), 5u);
  const RecoveryStats stats = engine.recoveryStats();
  EXPECT_EQ(stats.rankFailures, 1u);
  EXPECT_EQ(engine.rankGrid(), (Vec3i{1, 2, 1}));  // 4 ranks -> 3 survivors
  EXPECT_EQ(engine.vacancyCount(), 6);
  EXPECT_TRUE(engine.ghostsConsistent());
  expectEveryCommittedEpochComplete(dir);
  expectMatchesFreshShrunkResume(engine, dir);
}

TEST(RankFailStop, MidCommitKillNeverPublishesATornEpoch) {
  // On the 2x2x1 grid a cycle's sends are: 16 fold, 16 ghost slabs,
  // 3 commit votes, 3 commit acks. Ordinals 33..38 land the kill inside
  // the two-phase commit itself — votes (33..35) abort the staged
  // epoch, acks (36..38) kill the root just after it committed. Either
  // way no committed manifest may reference a missing shard.
  for (std::uint64_t ordinal = 33; ordinal <= 38; ++ordinal) {
    const std::string dir =
        tempDir("tkmc_failstop_commit_" + std::to_string(ordinal));
    ParallelWorld w(36);
    EamEnergyModel model(w.cet, w.net, w.eam);
    ParallelEngine engine(w.state, model, w.cet, failstopConfig(46, dir));
    FaultInjector inj(15);
    inj.armSchedule("comm.rank_kill", {ordinal});
    FaultScope scope(inj);
    for (int c = 0; c < 3; ++c) engine.runCycle();
    EXPECT_EQ(inj.triggerCount("comm.rank_kill"), 1u) << "ordinal " << ordinal;
    EXPECT_EQ(engine.recoveryStats().rankFailures, 1u) << "ordinal " << ordinal;
    EXPECT_EQ(engine.vacancyCount(), 6) << "ordinal " << ordinal;
    expectEveryCommittedEpochComplete(dir);
    expectMatchesFreshShrunkResume(engine, dir);
  }
}

TEST(RankFailStopChaos, TwentySeededKillSchedulesAllRecoverBitExactly) {
  // Chaos soak: twenty seeded schedules, each killing one random rank at
  // a random point of the synchronization protocol (fold, ghost
  // exchange, or two-phase commit, in a random cycle). Every run must
  // finish without hanging, conserve the physics, keep every committed
  // epoch loadable, and — when the kill fired — match the fresh
  // shrunk-grid resume bit-exactly.
  for (std::uint64_t s = 0; s < 20; ++s) {
    SCOPED_TRACE("schedule " + std::to_string(s));
    const std::string dir = tempDir("tkmc_chaos_" + std::to_string(s));
    ParallelWorld w(37);
    EamEnergyModel model(w.cet, w.net, w.eam);
    ParallelEngine engine(w.state, model, w.cet, failstopConfig(47, dir));
    Rng pick(1000 + s);
    const std::uint64_t ordinal = 1 + pick.uniformBelow(100);
    FaultInjector inj(s);
    inj.armSchedule("comm.rank_kill", {ordinal});
    FaultScope scope(inj);
    for (int c = 0; c < 5; ++c) engine.runCycle();
    ASSERT_EQ(inj.triggerCount("comm.rank_kill"), 1u);
    ASSERT_EQ(engine.recoveryStats().rankFailures, 1u);
    ASSERT_EQ(engine.vacancyCount(), 6);
    ASSERT_TRUE(engine.ghostsConsistent());
    ASSERT_LT(engine.rankGrid().x * engine.rankGrid().y * engine.rankGrid().z,
              4);
    expectEveryCommittedEpochComplete(dir);
    expectMatchesFreshShrunkResume(engine, dir);
  }
}

TEST(RankFailStop, RecoveryMetricsReachTheTelemetryRegistry) {
  telemetry::resetAll();
  telemetry::ScopedEnable enable;
  const std::string dir = tempDir("tkmc_failstop_telemetry");
  ParallelWorld w(38);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, failstopConfig(48, dir));
  FaultInjector inj(16);
  inj.armSchedule("comm.rank_kill", {10});
  FaultScope scope(inj);
  for (int c = 0; c < 3; ++c) engine.runCycle();
  ASSERT_EQ(engine.recoveryStats().rankFailures, 1u);
  namespace tm = telemetry;
  EXPECT_EQ(tm::metrics().counter("recovery.rank_failures").value(), 1u);
  EXPECT_GE(tm::metrics().counter("recovery.epochs_rolled_back").value(), 0u);
  EXPECT_EQ(tm::metrics().histogram("recovery.detect_ms").count(), 1u);
  EXPECT_GT(tm::metrics().histogram("checkpoint.shard_bytes").count(), 0u);
  const std::string json = tm::metrics().toJson();
  EXPECT_NE(json.find("recovery.rank_failures"), std::string::npos);
  EXPECT_NE(json.find("recovery.detect_ms"), std::string::npos);
  EXPECT_NE(json.find("recovery.epochs_rolled_back"), std::string::npos);
  EXPECT_NE(json.find("checkpoint.shard_bytes"), std::string::npos);
  telemetry::resetAll();
}

}  // namespace
}  // namespace tkmc
