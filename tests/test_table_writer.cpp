#include "common/table_writer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tkmc {
namespace {

TEST(TableWriter, RendersHeaderRuleAndRows) {
  TableWriter t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Columns aligned: the second column starts at the same offset in the
  // header line and in every data row.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = out.find('\n'); nl != std::string::npos;
       nl = out.find('\n', start)) {
    lines.push_back(out.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);  // header, rule, two rows
  EXPECT_EQ(lines[0].find("value"), lines[2].find('1'));
  EXPECT_EQ(lines[0].find("value"), lines[3].find("22"));
}

TEST(TableWriter, CsvOutputIsCommaSeparated) {
  TableWriter t({"a", "b", "c"});
  t.addRow({"1", "2", "3"});
  EXPECT_EQ(t.renderCsv(), "a,b,c\n1,2,3\n");
}

TEST(TableWriter, RejectsMismatchedRows) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), Error);
  EXPECT_THROW(TableWriter({}), Error);
}

TEST(TableWriter, NumFormatsSignificantDecimals) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::num(1.0, 0), "1");
  EXPECT_EQ(TableWriter::num(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace tkmc
