#include "kmc/serial_engine.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kmc/eam_energy_model.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "tabulation/feature_table.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

struct World {
  World(std::uint64_t seed, int cells = 14, int vacancies = 3)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(cells, cells, cells, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.15, vacancies, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

KmcConfig fastConfig(std::uint64_t seed) {
  KmcConfig cfg;
  cfg.seed = seed;
  cfg.tEnd = 1e300;
  return cfg;
}

TEST(SerialEngine, AdvancesTimeAndExecutesSteps) {
  World w(1);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, fastConfig(7));
  for (int i = 0; i < 50; ++i) {
    const auto r = engine.step();
    ASSERT_TRUE(r.advanced);
    EXPECT_GT(r.dt, 0.0);
  }
  EXPECT_EQ(engine.steps(), 50u);
  EXPECT_GT(engine.time(), 0.0);
}

TEST(SerialEngine, ConservesSpecies) {
  World w(2);
  const auto fe = w.state.countSpecies(Species::kFe);
  const auto cu = w.state.countSpecies(Species::kCu);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, fastConfig(8));
  for (int i = 0; i < 200; ++i) engine.step();
  EXPECT_EQ(w.state.countSpecies(Species::kFe), fe);
  EXPECT_EQ(w.state.countSpecies(Species::kCu), cu);
  EXPECT_EQ(w.state.countSpecies(Species::kVacancy), 3);
}

TEST(SerialEngine, HopsAreAlwaysFirstNeighborMoves) {
  World w(3);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, fastConfig(9));
  for (int i = 0; i < 100; ++i) {
    const auto r = engine.step();
    const Vec3i d = w.lattice.minimumImage(r.from, r.to);
    EXPECT_EQ(d.norm2(), 3);
  }
}

TEST(SerialEngine, RunHonorsMaxSteps) {
  World w(4);
  EamEnergyModel model(w.cet, w.net, w.eam);
  KmcConfig cfg = fastConfig(10);
  cfg.maxSteps = 25;
  SerialEngine engine(w.state, model, w.cet, cfg);
  EXPECT_EQ(engine.run(), 25u);
}

TEST(SerialEngine, RunHonorsTimeHorizon) {
  World w(5);
  EamEnergyModel model(w.cet, w.net, w.eam);
  KmcConfig cfg = fastConfig(11);
  cfg.tEnd = 1e-9;
  SerialEngine engine(w.state, model, w.cet, cfg);
  engine.run();
  EXPECT_GE(engine.time(), 1e-9);
}

TEST(SerialEngine, ObserverSeesEveryEvent) {
  World w(6);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, fastConfig(12));
  int observed = 0;
  engine.setObserver([&](const SerialEngine&, const SerialEngine::StepResult& r) {
    EXPECT_TRUE(r.advanced);
    ++observed;
  });
  for (int i = 0; i < 30; ++i) engine.step();
  EXPECT_EQ(observed, 30);
}

TEST(SerialEngine, DeterministicForIdenticalSeeds) {
  World a(7), b(7);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  SerialEngine ea(a.state, ma, a.cet, fastConfig(13));
  SerialEngine eb(b.state, mb, b.cet, fastConfig(13));
  for (int i = 0; i < 150; ++i) {
    const auto ra = ea.step();
    const auto rb = eb.step();
    ASSERT_EQ(ra.from, rb.from);
    ASSERT_EQ(ra.to, rb.to);
    ASSERT_DOUBLE_EQ(ra.dt, rb.dt);
  }
  EXPECT_TRUE(a.state == b.state);
  EXPECT_EQ(a.state.contentHash(), b.state.contentHash());
}

TEST(SerialEngine, CacheOnAndOffAreBitIdentical) {
  // The vacancy cache is a pure optimization: trajectories must match
  // the gather-everything configuration exactly.
  World a(8), b(8);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  KmcConfig withCache = fastConfig(14);
  KmcConfig without = fastConfig(14);
  without.useVacancyCache = false;
  SerialEngine ea(a.state, ma, a.cet, withCache);
  SerialEngine eb(b.state, mb, b.cet, without);
  for (int i = 0; i < 200; ++i) {
    const auto ra = ea.step();
    const auto rb = eb.step();
    ASSERT_EQ(ra.from, rb.from) << "step " << i;
    ASSERT_EQ(ra.to, rb.to) << "step " << i;
    ASSERT_DOUBLE_EQ(ra.dt, rb.dt) << "step " << i;
  }
  EXPECT_TRUE(a.state == b.state);
  EXPECT_EQ(a.state.contentHash(), b.state.contentHash());
}

TEST(SerialEngine, CacheCutsEnergyEvaluations) {
  World a(9, 14, 6), b(9, 14, 6);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  KmcConfig without = fastConfig(15);
  without.useVacancyCache = false;
  SerialEngine cached(a.state, ma, a.cet, fastConfig(15));
  SerialEngine uncached(b.state, mb, b.cet, without);
  for (int i = 0; i < 100; ++i) {
    cached.step();
    uncached.step();
  }
  EXPECT_LT(cached.energyEvaluations(), uncached.energyEvaluations());
}

TEST(SerialEngine, TreeAndLinearSelectionAgree) {
  World a(10), b(10);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  KmcConfig tree = fastConfig(16);
  KmcConfig linear = fastConfig(16);
  linear.useTree = false;
  SerialEngine ea(a.state, ma, a.cet, tree);
  SerialEngine eb(b.state, mb, b.cet, linear);
  for (int i = 0; i < 150; ++i) {
    const auto ra = ea.step();
    const auto rb = eb.step();
    ASSERT_EQ(ra.from, rb.from) << "step " << i;
    ASSERT_EQ(ra.to, rb.to) << "step " << i;
  }
}

TEST(SerialEngine, WorksWithNnpBackend) {
  World w(11);
  const FeatureTable table(w.net.distances(), standardPqSets());
  Network network({64, 8, 1});
  Rng rng(17);
  network.initHe(rng);
  NnpEnergyModel model(w.cet, w.net, table, network);
  SerialEngine engine(w.state, model, w.cet, fastConfig(18));
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(engine.step().advanced);
  EXPECT_EQ(w.state.countSpecies(Species::kVacancy), 3);
}

TEST(SerialEngine, RequiresAtLeastOneVacancy) {
  World w(12, 14, 3);
  w.state.fill(Species::kFe);  // removes all vacancies
  EamEnergyModel model(w.cet, w.net, w.eam);
  EXPECT_THROW(SerialEngine(w.state, model, w.cet, fastConfig(19)), Error);
}

TEST(SerialEngine, SingleVacancyRandomWalkVisitsManySites) {
  World w(13, 14, 1);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, fastConfig(20));
  std::set<std::tuple<int, int, int>> visited;
  for (int i = 0; i < 300; ++i) {
    const auto r = engine.step();
    visited.insert({r.to.x, r.to.y, r.to.z});
  }
  EXPECT_GT(visited.size(), 20u);
}

}  // namespace
}  // namespace tkmc
