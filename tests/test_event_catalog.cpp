#include "kmc/event_catalog/event_catalog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "kmc/eam_energy_model.hpp"
#include "kmc/event_catalog/trap_detrap_catalog.hpp"
#include "kmc/event_catalog/vacancy_hop_catalog.hpp"
#include "kmc/rate_calculator.hpp"
#include "kmc/serial_engine.hpp"
#include "parallel/coordinated_checkpoint.hpp"
#include "parallel/parallel_engine.hpp"

namespace tkmc {
namespace {

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// The pre-refactor serial fixture of the golden pins below: EAM, cutoff
/// 4.0 A, 14^3 cells, 15% Cu, 3 vacancies.
struct SerialFixture {
  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
  EamEnergyModel model;

  explicit SerialFixture(std::uint64_t worldSeed)
      : cet(2.87, 4.0),
        net(cet),
        eam(4.0),
        lattice(14, 14, 14, 2.87),
        state(lattice),
        model(cet, net, eam) {
    Rng rng(worldSeed);
    state.randomAlloy(0.15, 3, rng);
  }
};

/// The pre-refactor parallel fixture: EAM, 16^3 cells, 12% Cu, 6
/// vacancies, engine seed 61, t_stop 5e-8 s.
struct ParallelFixture {
  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
  EamEnergyModel model;

  ParallelFixture()
      : cet(2.87, 4.0),
        net(cet),
        eam(4.0),
        lattice(16, 16, 16, 2.87),
        state(lattice),
        model(cet, net, eam) {
    Rng rng(51);
    state.randomAlloy(0.12, 6, rng);
  }

  ParallelConfig config(Vec3i grid) const {
    ParallelConfig cfg;
    cfg.seed = 61;
    cfg.tStop = 5e-8;
    cfg.rankGrid = grid;
    return cfg;
  }
};

// Golden trajectory fingerprints captured on the pre-catalog build (the
// hardcoded eight-hop engines). The catalog refactor must reproduce
// them bit-for-bit: any divergence here is a physics regression, not a
// tolerance question.
constexpr std::uint32_t kGoldenSerialHash21 = 0xfe1ba7f5u;
constexpr std::uint64_t kGoldenSerialTime21 = 0x3e9d1bee0ca78d0eull;
constexpr std::uint32_t kGoldenSerialHash22 = 0xf6fe25f5u;
constexpr std::uint64_t kGoldenSerialTime22 = 0x3e936f1ab60bd162ull;
constexpr std::uint32_t kGoldenParallelHash221 = 0xb4a28beeu;
constexpr std::uint64_t kGoldenParallelEvents221 = 53;
constexpr std::uint64_t kGoldenParallelDiscarded221 = 2;
constexpr std::uint32_t kGoldenParallelHash222 = 0x3928ec57u;
constexpr std::uint64_t kGoldenParallelEvents222 = 32;
constexpr std::uint64_t kGoldenParallelDiscarded222 = 3;

TEST(EventCatalogGolden, SerialTrajectoriesBitIdenticalToPreRefactor) {
  const struct {
    std::uint64_t world;
    std::uint32_t hash;
    std::uint64_t timeBits;
  } pins[] = {{21, kGoldenSerialHash21, kGoldenSerialTime21},
              {22, kGoldenSerialHash22, kGoldenSerialTime22}};
  for (const auto& pin : pins) {
    SerialFixture fx(pin.world);
    KmcConfig cfg;
    cfg.seed = 1000 + pin.world;
    cfg.tEnd = 1e300;
    SerialEngine engine(fx.state, fx.model, fx.cet, cfg);
    for (int i = 0; i < 200; ++i) engine.step();
    EXPECT_EQ(fx.state.contentHash(), pin.hash) << "world " << pin.world;
    EXPECT_EQ(bits(engine.time()), pin.timeBits) << "world " << pin.world;
    EXPECT_EQ(engine.steps(), 200u);
    // The default catalog is the vacancy-hop physics, one event type,
    // and every committed event is of that type.
    EXPECT_STREQ(engine.catalog().name(), "vacancy_hop");
    ASSERT_EQ(engine.eventsByType().size(), 1u);
    EXPECT_EQ(engine.eventsByType()[0], 200u);
  }
}

TEST(EventCatalogGolden, LinearSelectionMatchesTheSamePins) {
  // The forest's type-major linear scan must select identically to the
  // subtree walk, so the no-tree engine lands on the same golden.
  SerialFixture fx(21);
  KmcConfig cfg;
  cfg.seed = 1021;
  cfg.tEnd = 1e300;
  cfg.useTree = false;
  SerialEngine engine(fx.state, fx.model, fx.cet, cfg);
  for (int i = 0; i < 200; ++i) engine.step();
  EXPECT_EQ(fx.state.contentHash(), kGoldenSerialHash21);
  EXPECT_EQ(bits(engine.time()), kGoldenSerialTime21);
}

TEST(EventCatalogGolden, ParallelSequentialAndThreadedBitIdentical) {
  const struct {
    Vec3i grid;
    std::uint32_t hash;
    std::uint64_t events;
    std::uint64_t discarded;
  } pins[] = {{{2, 2, 1}, kGoldenParallelHash221, kGoldenParallelEvents221,
               kGoldenParallelDiscarded221},
              {{2, 2, 2}, kGoldenParallelHash222, kGoldenParallelEvents222,
               kGoldenParallelDiscarded222}};
  for (const auto& pin : pins) {
    for (const bool threaded : {false, true}) {
      ParallelFixture fx;
      ParallelConfig cfg = fx.config(pin.grid);
      cfg.threaded = threaded;
      ParallelEngine engine(fx.state, fx.model, fx.cet, cfg);
      for (int c = 0; c < 8; ++c) engine.runCycle();
      EXPECT_EQ(engine.assembleGlobalState().contentHash(), pin.hash)
          << pin.grid.x << "x" << pin.grid.y << "x" << pin.grid.z
          << (threaded ? " threaded" : " sequential");
      EXPECT_EQ(engine.totalEvents(), pin.events);
      EXPECT_EQ(engine.discardedEvents(), pin.discarded);
      ASSERT_EQ(engine.eventsByType().size(), 1u);
      EXPECT_EQ(engine.eventsByType()[0], pin.events);
    }
  }
}

TEST(EventCatalogGolden, ResumeFromCheckpointMatchesDirectRun) {
  const std::string dir = "event_catalog_golden_ckpt";
  std::filesystem::remove_all(dir);
  ParallelFixture fx;
  ParallelConfig cfg = fx.config({2, 2, 1});
  cfg.checkpointDir = dir;
  cfg.checkpointCadence = 2;
  ParallelEngine engine(fx.state, fx.model, fx.cet, cfg);
  for (int c = 0; c < 8; ++c) engine.runCycle();

  ParallelFixture rfx;
  ParallelConfig rcfg = rfx.config({2, 2, 1});
  CheckpointStore store(dir);
  ParallelEngine resumed(rfx.model, rfx.cet, rcfg, store, 4);
  while (resumed.cycles() < 8) resumed.runCycle();
  EXPECT_EQ(resumed.assembleGlobalState().contentHash(),
            kGoldenParallelHash221);
  EXPECT_EQ(resumed.totalEvents(), kGoldenParallelEvents221);
  std::filesystem::remove_all(dir);
}

TEST(EventCatalog, VacancyHopCatalogShape) {
  const EventCatalog& cat = defaultEventCatalog();
  EXPECT_STREQ(cat.name(), "vacancy_hop");
  EXPECT_EQ(cat.typeCount(), 1);
  EXPECT_EQ(cat.classCount(), 1);
  const EventTypeInfo& hop = cat.typeInfo(0);
  EXPECT_EQ(hop.id, 0);
  EXPECT_STREQ(hop.name, "hop");
  EXPECT_EQ(hop.arity, kNumJumpDirections);
  EXPECT_TRUE(cat.typeApplies(0, 0));
  for (int k = 0; k < kNumJumpDirections; ++k)
    EXPECT_EQ(cat.candidateOffset(0, k),
              BccLattice::firstNeighborOffsets()[static_cast<std::size_t>(k)]);
}

TEST(EventCatalog, FactoryBuildsByNameAndRejectsUnknown) {
  EventCatalogSpec spec;
  EXPECT_STREQ(makeEventCatalog(spec)->name(), "vacancy_hop");
  spec.name = "trap_detrap";
  EXPECT_STREQ(makeEventCatalog(spec)->name(), "trap_detrap");
  spec.name = "no_such_catalog";
  EXPECT_THROW(makeEventCatalog(spec), Error);
}

TEST(EventCatalog, TrapDetrapRejectsInvalidParameters) {
  EXPECT_THROW(TrapDetrapCatalog(1.5, 0.25, 1, 1), Error);
  EXPECT_THROW(TrapDetrapCatalog(-0.1, 0.25, 1, 1), Error);
  EXPECT_THROW(TrapDetrapCatalog(0.05, -0.25, 1, 1), Error);
  EXPECT_THROW(TrapDetrapCatalog(0.05, 0.25, -1, 1), Error);
}

TEST(EventCatalog, TrapDetrapSiteClassesAreDeterministicAndSeeded) {
  BccLattice lattice(8, 8, 8, 2.87);
  const TrapDetrapCatalog a(0.3, 0.25, 1, 77);
  const TrapDetrapCatalog b(0.3, 0.25, 1, 77);
  const TrapDetrapCatalog other(0.3, 0.25, 1, 78);
  const TrapDetrapCatalog none(0.0, 0.25, 1, 77);
  int traps = 0, bulk = 0, differs = 0;
  for (BccLattice::SiteId id = 0; id < lattice.siteCount(); ++id) {
    const Vec3i site = lattice.coordinate(id);
    const int cls = a.siteClass(lattice, site);
    // Pure function of the wrapped coordinate: a second instance with
    // the same parameters must classify identically (the property the
    // serial and parallel engines rely on to agree without shared
    // state).
    EXPECT_EQ(cls, b.siteClass(lattice, site));
    if (site.z < 2) {
      // One unit-cell sink slab at z = 0 (doubled coordinates).
      EXPECT_EQ(cls, TrapDetrapCatalog::kSink);
      continue;
    }
    EXPECT_NE(cls, TrapDetrapCatalog::kSink);
    (cls == TrapDetrapCatalog::kTrap ? traps : bulk)++;
    if (cls != other.siteClass(lattice, site)) ++differs;
    EXPECT_NE(none.siteClass(lattice, site), TrapDetrapCatalog::kTrap);
  }
  // The seeded placement hits the requested fraction and actually
  // depends on the trap seed.
  const double fraction = static_cast<double>(traps) / (traps + bulk);
  EXPECT_NEAR(fraction, 0.3, 0.05);
  EXPECT_GT(differs, 0);
}

TEST(EventCatalog, TrapDetrapSinkClassIsAbsorbing) {
  const TrapDetrapCatalog cat(0.05, 0.25, 1, 1234);
  EXPECT_EQ(cat.typeCount(), 2);
  EXPECT_EQ(cat.classCount(), 3);
  EXPECT_STREQ(cat.typeInfo(0).name, "hop");
  EXPECT_STREQ(cat.typeInfo(1).name, "detrap");
  // Type masks: hop fires from bulk only, detrap from traps only, and
  // no type covers the sink — a vacancy that reaches the slab is
  // Markov-absorbing.
  EXPECT_TRUE(cat.typeApplies(0, TrapDetrapCatalog::kBulk));
  EXPECT_FALSE(cat.typeApplies(0, TrapDetrapCatalog::kTrap));
  EXPECT_FALSE(cat.typeApplies(0, TrapDetrapCatalog::kSink));
  EXPECT_FALSE(cat.typeApplies(1, TrapDetrapCatalog::kBulk));
  EXPECT_TRUE(cat.typeApplies(1, TrapDetrapCatalog::kTrap));
  EXPECT_FALSE(cat.typeApplies(1, TrapDetrapCatalog::kSink));
}

TEST(EventCatalog, TrapDetrapDetrapRatesAreExactlyScaledHopRates) {
  SerialFixture fx(33);
  const Vec3i center = fx.state.vacancies().front();
  Vet vet = Vet::gather(fx.cet, fx.state, center);
  const std::vector<double> energies =
      fx.model.stateEnergies(fx.state, center, kNumJumpDirections);
  const double temperature = 573.0;

  const TrapDetrapCatalog cat(0.05, 0.25, 1, 1234);
  const JumpRates hop = cat.evaluate(0, vet, energies, temperature);
  const JumpRates reference = computeRates(vet, energies, temperature);
  const JumpRates detrap = cat.evaluate(1, vet, energies, temperature);
  const double factor =
      std::exp(-cat.bindingEnergy() / (kBoltzmannEv * temperature));
  ASSERT_GT(hop.total, 0.0);
  for (int k = 0; k < kNumJumpDirections; ++k) {
    // Type 0 is the untouched Fe-Cu physics; type 1 raises every escape
    // barrier by the binding energy, which (barriers being clamped
    // non-negative already) multiplies every rate by exp(-Eb/kT)
    // exactly.
    EXPECT_EQ(hop.rate[static_cast<std::size_t>(k)],
              reference.rate[static_cast<std::size_t>(k)]);
    EXPECT_DOUBLE_EQ(detrap.rate[static_cast<std::size_t>(k)],
                     hop.rate[static_cast<std::size_t>(k)] * factor);
  }
  EXPECT_LT(detrap.total, hop.total);
}

TEST(EventCatalog, TrapDetrapSerialRunConservesVacancies) {
  SerialFixture fx(44);
  EventCatalogSpec spec;
  spec.name = "trap_detrap";
  spec.trapFraction = 0.2;
  spec.trapSeed = 9;
  const auto catalog = makeEventCatalog(spec);
  KmcConfig cfg;
  cfg.seed = 4242;
  cfg.tEnd = 1e300;
  SerialEngine engine(fx.state, fx.model, fx.cet, cfg, catalog.get());
  const std::size_t vacancies = fx.state.vacancies().size();
  std::uint64_t executed = 0;
  for (int i = 0; i < 150; ++i) {
    if (!engine.step().advanced) break;  // every vacancy sank
    ++executed;
  }
  EXPECT_EQ(fx.state.vacancies().size(), vacancies);
  ASSERT_EQ(engine.eventsByType().size(), 2u);
  EXPECT_EQ(engine.eventsByType()[0] + engine.eventsByType()[1], executed);
  EXPECT_GT(executed, 0u);
}

TEST(EventCatalog, RateNanFaultTripsTypedInvariantErrorInSerial) {
  SerialFixture fx(21);
  KmcConfig cfg;
  cfg.seed = 1021;
  cfg.tEnd = 1e300;
  SerialEngine engine(fx.state, fx.model, fx.cet, cfg);
  FaultInjector injector(7);
  injector.armOnce("catalog.rate_nan");
  FaultScope scope(injector);
  EXPECT_THROW(
      {
        for (int i = 0; i < 50; ++i) engine.step();
      },
      InvariantError);
  EXPECT_EQ(injector.fireCount("catalog.rate_nan"), 1u);
}

TEST(EventCatalog, RateNanFaultIsAbsorbedByParallelRecovery) {
  ParallelFixture fx;
  ParallelConfig cfg = fx.config({2, 2, 1});
  cfg.enableRecovery = true;
  ParallelEngine engine(fx.state, fx.model, fx.cet, cfg);
  FaultInjector injector(11);
  injector.armOnce("catalog.rate_nan");
  {
    FaultScope scope(injector);
    for (int c = 0; c < 8; ++c) engine.runCycle();
  }
  EXPECT_EQ(injector.fireCount("catalog.rate_nan"), 1u);
  // The poisoned propensity surfaces as a typed InvariantError inside
  // the cycle, which recovery absorbs as a rollback + replay (the
  // invariant-monitor counter is reserved for post-cycle checks).
  EXPECT_GE(engine.recoveryStats().rollbacks, 1u);
  // The rollback + replay must land on the fault-free trajectory.
  EXPECT_EQ(engine.assembleGlobalState().contentHash(),
            kGoldenParallelHash221);
  EXPECT_EQ(engine.totalEvents(), kGoldenParallelEvents221);
}

TEST(EventCatalog, ManifestRecordsCatalogAndResumeValidatesIt) {
  const std::string dir = "event_catalog_manifest_ckpt";
  std::filesystem::remove_all(dir);
  ParallelFixture fx;
  ParallelConfig cfg = fx.config({2, 2, 1});
  cfg.catalog.name = "trap_detrap";
  cfg.catalog.trapFraction = 0.1;
  cfg.checkpointDir = dir;
  cfg.checkpointCadence = 1;
  ParallelEngine engine(fx.state, fx.model, fx.cet, cfg);
  for (int c = 0; c < 6; ++c) engine.runCycle();

  CheckpointStore store(dir);
  const auto newest = store.newestCompleteEpoch();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(store.loadManifest(*newest).catalog, "trap_detrap");

  // Resume under the matching catalog continues the trap trajectory
  // bit-exactly; resume under a different catalog must refuse — the
  // saved state is only meaningful under the physics that produced it.
  ParallelFixture rfx;
  ParallelConfig rcfg = rfx.config({2, 2, 1});
  rcfg.catalog = cfg.catalog;
  ParallelEngine resumed(rfx.model, rfx.cet, rcfg, store, 4);
  while (resumed.cycles() < 6) resumed.runCycle();
  EXPECT_EQ(resumed.assembleGlobalState().contentHash(),
            engine.assembleGlobalState().contentHash());
  EXPECT_EQ(resumed.totalEvents(), engine.totalEvents());
  ASSERT_EQ(resumed.eventsByType().size(), 2u);

  ParallelFixture mfx;
  ParallelConfig mismatched = mfx.config({2, 2, 1});  // default vacancy_hop
  EXPECT_THROW(ParallelEngine(mfx.model, mfx.cet, mismatched, store, 4),
               Error);
  std::filesystem::remove_all(dir);
}

TEST(EventCatalog, DefaultCatalogManifestStaysByteCompatible) {
  // A vacancy_hop run writes no `catalog` record, so its manifests are
  // byte-identical to pre-catalog builds (and old manifests load as
  // vacancy_hop).
  const std::string dir = "event_catalog_compat_ckpt";
  std::filesystem::remove_all(dir);
  ParallelFixture fx;
  ParallelConfig cfg = fx.config({2, 2, 1});
  cfg.checkpointDir = dir;
  cfg.checkpointCadence = 1;
  ParallelEngine engine(fx.state, fx.model, fx.cet, cfg);
  for (int c = 0; c < 2; ++c) engine.runCycle();

  CheckpointStore store(dir);
  const auto newest = store.newestCompleteEpoch();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(store.loadManifest(*newest).catalog, "vacancy_hop");
  std::ifstream in(store.epochPath(*newest) + "/manifest.tkm",
                   std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str().find("catalog"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tkmc
