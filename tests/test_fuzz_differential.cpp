// Randomized differential testing: for arbitrary (boxed) configurations,
// independently-implemented paths must agree exactly. These sweeps are
// the repository's broadest safety net — every case cross-checks several
// subsystems at once.

#include <gtest/gtest.h>

#include "analysis/cluster_analysis.hpp"
#include "kmc/direct_energy_model.hpp"
#include "kmc/eam_energy_model.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "kmc/serial_engine.hpp"
#include "tabulation/feature_table.hpp"

namespace tkmc {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  int cells;
  double cuFraction;
  int vacancies;
  double cutoff;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DifferentialFuzz, CachedEngineMatchesUncachedBitwise) {
  const auto& c = GetParam();
  const Cet cet(2.87, c.cutoff);
  const Net net(cet);
  const EamPotential eam(c.cutoff);

  auto makeState = [&] {
    LatticeState s(BccLattice(c.cells, c.cells, c.cells, 2.87));
    Rng rng(c.seed);
    s.randomAlloy(c.cuFraction, c.vacancies, rng);
    return s;
  };
  LatticeState cached = makeState();
  LatticeState uncached = makeState();
  EamEnergyModel m1(cet, net, eam), m2(cet, net, eam);
  KmcConfig cfgCached;
  cfgCached.seed = c.seed ^ 0xf00dULL;
  cfgCached.tEnd = 1e300;
  KmcConfig cfgUncached = cfgCached;
  cfgUncached.useVacancyCache = false;
  SerialEngine e1(cached, m1, cet, cfgCached);
  SerialEngine e2(uncached, m2, cet, cfgUncached);
  for (int i = 0; i < 120; ++i) {
    const auto r1 = e1.step();
    const auto r2 = e2.step();
    ASSERT_EQ(r1.advanced, r2.advanced);
    if (!r1.advanced) break;
    ASSERT_EQ(r1.from, r2.from) << "step " << i;
    ASSERT_EQ(r1.to, r2.to) << "step " << i;
    ASSERT_EQ(r1.dt, r2.dt) << "step " << i;
  }
  EXPECT_TRUE(cached == uncached);
  EXPECT_EQ(cached.contentHash(), uncached.contentHash());
}

TEST_P(DifferentialFuzz, TetAndDirectNnpBackendsAgreeBitwise) {
  const auto& c = GetParam();
  const Cet cet(2.87, c.cutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  Network network({64, 8, 1});
  Rng nrng(c.seed ^ 0xbeefULL);
  network.initHe(nrng);

  LatticeState state(BccLattice(c.cells, c.cells, c.cells, 2.87));
  Rng rng(c.seed);
  state.randomAlloy(c.cuFraction, c.vacancies, rng);
  NnpEnergyModel fast(cet, net, table, network);
  DirectEnergyModel direct(2.87, c.cutoff, network);
  for (const Vec3i& vac : state.vacancies()) {
    const Vec3i center = state.lattice().wrap(vac);
    const auto a = fast.stateEnergies(state, center, kNumJumpDirections);
    const auto b = direct.stateEnergies(state, center, kNumJumpDirections);
    for (std::size_t s = 0; s < a.size(); ++s) ASSERT_EQ(a[s], b[s]);
  }
}

TEST_P(DifferentialFuzz, ConservationAndClusterConsistency) {
  const auto& c = GetParam();
  const Cet cet(2.87, c.cutoff);
  const Net net(cet);
  const EamPotential eam(c.cutoff);
  EamEnergyModel model(cet, net, eam);
  LatticeState state(BccLattice(c.cells, c.cells, c.cells, 2.87));
  Rng rng(c.seed);
  state.randomAlloy(c.cuFraction, c.vacancies, rng);
  const auto cuBefore = state.countSpecies(Species::kCu);
  KmcConfig cfg;
  cfg.seed = c.seed;
  cfg.tEnd = 1e300;
  SerialEngine engine(state, model, cet, cfg);
  for (int i = 0; i < 150; ++i)
    if (!engine.step().advanced) break;
  EXPECT_EQ(state.countSpecies(Species::kCu), cuBefore);
  EXPECT_EQ(state.countSpecies(Species::kVacancy), c.vacancies);
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  EXPECT_EQ(stats.totalAtoms, cuBefore);
  // Vacancy list and lattice occupation must agree site by site.
  for (const Vec3i& v : state.vacancies())
    EXPECT_EQ(state.speciesAt(v), Species::kVacancy);
}

TEST_P(DifferentialFuzz, PackedStoreMatchesDenseReferenceOracle) {
  // Oracle for the paged 2-bit-packed species store: a dense
  // byte-per-site vector (the retired representation) is maintained in
  // lockstep through the same random fill/set/hop sequence over periodic
  // boundaries. Every site, every per-species count, and the canonical
  // contentHash must agree at every checkpointed round.
  const auto& c = GetParam();
  LatticeState packed(BccLattice(c.cells, c.cells, c.cells, 2.87));
  const BccLattice& lat = packed.lattice();
  const std::size_t n = static_cast<std::size_t>(lat.siteCount());
  std::vector<Species> dense(n, Species::kFe);

  Rng rng(c.seed ^ 0x9aceULL);
  // Seed the alloy through the packed store, mirrored densely.
  packed.randomAlloy(c.cuFraction, c.vacancies, rng);
  packed.forEachSite(
      [&](BccLattice::SiteId id, Species s) { dense[static_cast<std::size_t>(id)] = s; });

  auto checkAgreement = [&] {
    std::int64_t denseCount[3] = {0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(packed.species(static_cast<BccLattice::SiteId>(i)), dense[i])
          << "site " << i;
      ++denseCount[static_cast<int>(dense[i])];
    }
    for (Species sp : {Species::kFe, Species::kCu, Species::kVacancy})
      ASSERT_EQ(packed.countSpecies(sp), denseCount[static_cast<int>(sp)]);
    // Hash must be a pure function of the logical content: a state
    // rebuilt dense-first from scratch hashes identically.
    LatticeState rebuilt(BccLattice(c.cells, c.cells, c.cells, 2.87));
    for (std::size_t i = 0; i < n; ++i)
      if (dense[i] != Species::kVacancy && dense[i] != Species::kFe)
        rebuilt.setSpecies(static_cast<BccLattice::SiteId>(i), dense[i]);
    for (std::size_t i = 0; i < n; ++i)
      if (dense[i] == Species::kVacancy)
        rebuilt.setSpecies(static_cast<BccLattice::SiteId>(i),
                           Species::kVacancy);
    ASSERT_TRUE(rebuilt == packed);
    ASSERT_EQ(rebuilt.contentHash(), packed.contentHash());
  };
  checkAgreement();

  for (int round = 0; round < 4; ++round) {
    // Random non-vacancy overwrites through setSpecies...
    for (int i = 0; i < 40; ++i) {
      const auto id = static_cast<BccLattice::SiteId>(
          rng.uniformBelow(static_cast<std::uint64_t>(n)));
      if (packed.species(id) == Species::kVacancy) continue;
      const Species s = rng.uniformBelow(2) ? Species::kCu : Species::kFe;
      packed.setSpecies(id, s);
      dense[static_cast<std::size_t>(id)] = s;
    }
    // ...interleaved with vacancy hops crossing periodic boundaries.
    for (int i = 0; i < 120; ++i) {
      const std::size_t v = rng.uniformBelow(packed.vacancies().size());
      const Vec3i from = packed.vacancies()[v];
      const Vec3i to = lat.wrap(
          from + BccLattice::firstNeighborOffsets()[rng.uniformBelow(8)]);
      if (packed.speciesAt(to) == Species::kVacancy) continue;
      const std::size_t fromId = static_cast<std::size_t>(lat.siteId(from));
      const std::size_t toId = static_cast<std::size_t>(lat.siteId(to));
      packed.hopVacancy(from, to);
      dense[fromId] = dense[toId];
      dense[toId] = Species::kVacancy;
    }
    checkAgreement();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DifferentialFuzz,
    ::testing::Values(FuzzCase{101, 12, 0.0134, 1, 4.0},
                      FuzzCase{202, 14, 0.10, 3, 4.0},
                      FuzzCase{303, 12, 0.30, 5, 4.0},
                      FuzzCase{404, 16, 0.05, 8, 4.0},
                      FuzzCase{505, 12, 0.0, 2, 4.0},     // pure Fe
                      FuzzCase{606, 14, 0.0134, 4, 3.3}));  // 2-shell cutoff

}  // namespace
}  // namespace tkmc
