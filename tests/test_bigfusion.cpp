#include "sunway/bigfusion_operator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nnp/conv_stack.hpp"

namespace tkmc {
namespace {

Network::Snapshot makeSnapshot(const std::vector<int>& channels,
                               std::uint64_t seed) {
  Network net(channels);
  Rng rng(seed);
  net.initHe(rng);
  return net.foldedSnapshot();
}

std::vector<float> randomInput(int m, int dim, std::uint64_t seed) {
  std::vector<float> x(static_cast<std::size_t>(m) * dim);
  Rng rng(seed);
  for (float& v : x) v = static_cast<float>(rng.uniform() * 2 - 1);
  return x;
}

TEST(BigFusion, BitExactAgainstFusedLayerStack) {
  const auto snap = makeSnapshot({64, 128, 128, 128, 64, 1}, 2);
  const ConvStack stack(snap);
  CpeGrid grid;
  BigFusionOperator op(snap, grid, 32);
  op.loadModel();
  grid.collectTraffic();

  const int m = 9 * 253;  // the AKMC batch shape (states x region sites)
  const auto input = randomInput(m, 64, 3);
  std::vector<float> expected(static_cast<std::size_t>(m));
  std::vector<float> actual(static_cast<std::size_t>(m));
  stack.forward(ConvStack::Mode::kFusedLayer, input.data(), m, expected.data());
  op.forward(input.data(), m, actual.data());
  for (int i = 0; i < m; ++i)
    ASSERT_EQ(actual[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)])
        << "row " << i;
}

TEST(BigFusion, SteadyStateMainTrafficIsInputPlusOutputOnly) {
  const auto snap = makeSnapshot({64, 128, 128, 128, 64, 1}, 4);
  CpeGrid grid;
  BigFusionOperator op(snap, grid, 32);
  op.loadModel();
  grid.collectTraffic();

  const int m = 2048;
  const auto input = randomInput(m, 64, 5);
  std::vector<float> out(static_cast<std::size_t>(m));
  op.forward(input.data(), m, out.data());
  const Traffic t = grid.collectTraffic();
  EXPECT_EQ(t.mainReadBytes, static_cast<std::uint64_t>(m) * 64 * sizeof(float));
  EXPECT_EQ(t.mainWriteBytes, static_cast<std::uint64_t>(m) * 1 * sizeof(float));
  EXPECT_GT(t.rmaBytes, 0u);  // weights flow over the mesh instead
}

TEST(BigFusion, ArithmeticIntensityBeatsLayerwiseByOrders) {
  const auto snap = makeSnapshot({64, 128, 128, 128, 64, 1}, 6);
  const ConvStack stack(snap);
  CpeGrid grid;
  BigFusionOperator op(snap, grid, 32);
  op.loadModel();
  grid.collectTraffic();

  const int m = 32 * 16 * 16;  // the paper's Fig. 9 example shape
  const auto input = randomInput(m, 64, 7);
  std::vector<float> out(static_cast<std::size_t>(m));
  Traffic layerwise;
  stack.forward(ConvStack::Mode::kFusedLayer, input.data(), m, out.data(),
                &layerwise);
  op.forward(input.data(), m, out.data());
  const Traffic fused = grid.collectTraffic();
  EXPECT_GT(fused.arithmeticIntensity(),
            10.0 * layerwise.arithmeticIntensity());
  // Paper: intensity rises to ~509 F/B and crosses the 43.63 F/B knee
  // into the compute-bound regime.
  EXPECT_GT(fused.arithmeticIntensity(), 300.0);
  EXPECT_GT(fused.arithmeticIntensity(), 43.63);
}

TEST(BigFusion, RespectsLdmCapacity) {
  const auto snap = makeSnapshot({64, 128, 128, 128, 64, 1}, 8);
  CpeGrid grid;
  BigFusionOperator op(snap, grid, 32);
  op.loadModel();
  const int m = 512;
  const auto input = randomInput(m, 64, 9);
  std::vector<float> out(static_cast<std::size_t>(m));
  op.forward(input.data(), m, out.data());
  EXPECT_LE(grid.maxLdmHighWater(), grid.spec().ldmBytes);
}

TEST(BigFusion, OversizedTileIsRejectedAtConstruction) {
  const auto snap = makeSnapshot({64, 128, 128, 128, 64, 1}, 10);
  CpeGrid grid;
  EXPECT_THROW(BigFusionOperator(snap, grid, 100000), Error);
}

TEST(BigFusion, MoreLayersThanColumnsIsRejected) {
  const auto snap =
      makeSnapshot({8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 1}, 11);  // 10 layers
  CpeGrid grid;
  EXPECT_THROW(BigFusionOperator(snap, grid, 8), Error);
}

TEST(BigFusion, ForwardBeforeLoadModelThrows) {
  const auto snap = makeSnapshot({8, 8, 1}, 12);
  CpeGrid grid;
  BigFusionOperator op(snap, grid, 8);
  const auto input = randomInput(8, 8, 13);
  std::vector<float> out(8);
  EXPECT_THROW(op.forward(input.data(), 8, out.data()), Error);
}

TEST(BigFusion, RaggedTailTileIsHandled) {
  const auto snap = makeSnapshot({16, 32, 1}, 14);
  const ConvStack stack(snap);
  CpeGrid grid;
  BigFusionOperator op(snap, grid, 32);
  op.loadModel();
  const int m = 33;  // one full tile + 1 leftover row
  const auto input = randomInput(m, 16, 15);
  std::vector<float> expected(static_cast<std::size_t>(m));
  std::vector<float> actual(static_cast<std::size_t>(m));
  stack.forward(ConvStack::Mode::kFusedLayer, input.data(), m, expected.data());
  op.forward(input.data(), m, actual.data());
  for (int i = 0; i < m; ++i)
    EXPECT_EQ(actual[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)]);
}

// Tile-height sweep: every mBlock must give identical results and the
// same steady-state main-memory traffic.
class BigFusionTileSweep : public ::testing::TestWithParam<int> {};

TEST_P(BigFusionTileSweep, ResultsAndTrafficIndependentOfTileHeight) {
  const auto snap = makeSnapshot({32, 64, 64, 1}, 21);
  const ConvStack stack(snap);
  const int m = 333;
  const auto input = randomInput(m, 32, 22);
  std::vector<float> expected(static_cast<std::size_t>(m));
  stack.forward(ConvStack::Mode::kFusedLayer, input.data(), m, expected.data());

  CpeGrid grid;
  BigFusionOperator op(snap, grid, GetParam());
  op.loadModel();
  grid.collectTraffic();
  std::vector<float> actual(static_cast<std::size_t>(m));
  op.forward(input.data(), m, actual.data());
  for (int i = 0; i < m; ++i)
    ASSERT_EQ(actual[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)]);
  const Traffic t = grid.collectTraffic();
  EXPECT_EQ(t.mainReadBytes, static_cast<std::uint64_t>(m) * 32 * sizeof(float));
  EXPECT_EQ(t.mainWriteBytes, static_cast<std::uint64_t>(m) * sizeof(float));
}

INSTANTIATE_TEST_SUITE_P(TileHeights, BigFusionTileSweep,
                         ::testing::Values(1, 7, 16, 32, 64, 128));

// Architecture sweep: any stack up to eight layers must pass through.
class BigFusionShapeSweep
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(BigFusionShapeSweep, MatchesFusedStack) {
  const auto snap = makeSnapshot(GetParam(), 23);
  const ConvStack stack(snap);
  const int m = 97;
  const auto input = randomInput(m, GetParam().front(), 24);
  std::vector<float> expected(static_cast<std::size_t>(m) *
                              static_cast<std::size_t>(GetParam().back()));
  std::vector<float> actual(expected.size());
  stack.forward(ConvStack::Mode::kFusedLayer, input.data(), m, expected.data());
  CpeGrid grid;
  BigFusionOperator op(snap, grid, 16);
  op.loadModel();
  op.forward(input.data(), m, actual.data());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BigFusionShapeSweep,
    ::testing::Values(std::vector<int>{8, 1},                        // 1 layer
                      std::vector<int>{16, 16, 16, 16},              // wide out
                      std::vector<int>{64, 128, 128, 128, 64, 1},    // paper
                      std::vector<int>{4, 8, 8, 8, 8, 8, 8, 8, 1})); // 8 layers

TEST(BigFusion, ModelLoadTrafficCountsOncePerHoldingCpe) {
  const auto snap = makeSnapshot({16, 32, 1}, 16);
  CpeGrid grid;
  BigFusionOperator op(snap, grid, 8);
  const Traffic load = op.loadModel();
  // Two layers, each held by the 8 CPEs of its column.
  const std::uint64_t layerBytes =
      (16ULL * 32 + 32 + 32ULL * 1 + 1) * sizeof(float);
  EXPECT_EQ(load.mainReadBytes, 8 * layerBytes);
}

}  // namespace
}  // namespace tkmc
