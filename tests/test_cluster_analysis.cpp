#include "analysis/cluster_analysis.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tkmc {
namespace {

TEST(ClusterAnalysis, EmptyLatticeHasNoClusters) {
  LatticeState state(BccLattice(6, 6, 6, 2.87));
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  EXPECT_EQ(stats.totalAtoms, 0);
  EXPECT_EQ(stats.isolatedCount, 0);
  EXPECT_EQ(stats.maxSize, 0);
  EXPECT_TRUE(stats.sizes.empty());
}

TEST(ClusterAnalysis, SingleAtomIsIsolated) {
  LatticeState state(BccLattice(6, 6, 6, 2.87));
  state.setSpeciesAt({4, 4, 4}, Species::kCu);
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  EXPECT_EQ(stats.totalAtoms, 1);
  EXPECT_EQ(stats.isolatedCount, 1);
  EXPECT_EQ(stats.maxSize, 1);
  EXPECT_EQ(stats.clusterCount, 0);
}

TEST(ClusterAnalysis, FirstNeighborsFormOneCluster) {
  LatticeState state(BccLattice(6, 6, 6, 2.87));
  state.setSpeciesAt({4, 4, 4}, Species::kCu);
  state.setSpeciesAt({5, 5, 5}, Species::kCu);  // 1NN
  state.setSpeciesAt({6, 6, 6}, Species::kCu);  // 1NN of previous
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  ASSERT_EQ(stats.sizes.size(), 1u);
  EXPECT_EQ(stats.maxSize, 3);
  EXPECT_EQ(stats.isolatedCount, 0);
  EXPECT_EQ(stats.clusterCount, 1);
}

TEST(ClusterAnalysis, SecondNeighborsAreBonded) {
  LatticeState state(BccLattice(6, 6, 6, 2.87));
  state.setSpeciesAt({4, 4, 4}, Species::kCu);
  state.setSpeciesAt({6, 4, 4}, Species::kCu);  // 2NN along x
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  EXPECT_EQ(stats.maxSize, 2);
}

TEST(ClusterAnalysis, ThirdNeighborsAreNotBonded) {
  LatticeState state(BccLattice(6, 6, 6, 2.87));
  state.setSpeciesAt({4, 4, 4}, Species::kCu);
  state.setSpeciesAt({6, 6, 4}, Species::kCu);  // 3NN (a*sqrt(2))
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  EXPECT_EQ(stats.isolatedCount, 2);
  EXPECT_EQ(stats.maxSize, 1);
}

TEST(ClusterAnalysis, ClustersWrapAroundPeriodicBoundary) {
  LatticeState state(BccLattice(4, 4, 4, 2.87));
  state.setSpeciesAt({0, 0, 0}, Species::kCu);
  state.setSpeciesAt({7, 7, 7}, Species::kCu);  // 1NN via wrap
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  EXPECT_EQ(stats.maxSize, 2);
}

TEST(ClusterAnalysis, MixedPopulationCounts) {
  LatticeState state(BccLattice(8, 8, 8, 2.87));
  // One 4-cluster.
  state.setSpeciesAt({4, 4, 4}, Species::kCu);
  state.setSpeciesAt({5, 5, 5}, Species::kCu);
  state.setSpeciesAt({6, 4, 4}, Species::kCu);
  state.setSpeciesAt({5, 3, 3}, Species::kCu);
  // Two isolated atoms, far from the cluster and each other.
  state.setSpeciesAt({12, 12, 12}, Species::kCu);
  state.setSpeciesAt({0, 8, 0}, Species::kCu);
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  EXPECT_EQ(stats.totalAtoms, 6);
  EXPECT_EQ(stats.maxSize, 4);
  EXPECT_EQ(stats.isolatedCount, 2);
  EXPECT_EQ(stats.clusterCount, 1);
  const auto hist = sizeHistogram(stats);
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(hist[4], 1);
}

TEST(ClusterAnalysis, SizesAreSortedDescendingAndSumToTotal) {
  LatticeState state(BccLattice(10, 10, 10, 2.87));
  Rng rng(3);
  state.randomAlloy(0.08, 0, rng);
  const ClusterStats stats = analyzeClusters(state, Species::kCu);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < stats.sizes.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(stats.sizes[i], stats.sizes[i - 1]);
    }
    sum += stats.sizes[i];
  }
  EXPECT_EQ(sum, stats.totalAtoms);
  EXPECT_EQ(stats.totalAtoms, state.countSpecies(Species::kCu));
}

TEST(ClusterAnalysis, NumberDensityConvertsUnits) {
  ClusterStats stats;
  stats.sizes = {5, 3, 1};
  // Two clusters >= 2 in a (100 A)^3 box = 1e-24 m^3.
  EXPECT_NEAR(stats.numberDensity(1e6), 2.0e24, 1e12);
  EXPECT_NEAR(stats.numberDensity(1e6, 4), 1.0e24, 1e12);
}

TEST(ClusterAnalysis, VacanciesCanBeClusteredToo) {
  LatticeState state(BccLattice(6, 6, 6, 2.87));
  state.setSpeciesAt({2, 2, 2}, Species::kVacancy);
  state.setSpeciesAt({3, 3, 3}, Species::kVacancy);
  const ClusterStats stats = analyzeClusters(state, Species::kVacancy);
  EXPECT_EQ(stats.maxSize, 2);  // a divacancy (void nucleus)
}

}  // namespace
}  // namespace tkmc
