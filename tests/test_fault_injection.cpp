#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "parallel/ghost_exchange.hpp"
#include "parallel/sim_comm.hpp"

namespace tkmc {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(Crc32, KnownVectorAndSensitivity) {
  // The IEEE CRC32 of "123456789" is a standard check value.
  const char* digits = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
  std::vector<std::uint8_t> data = bytes({1, 2, 3, 4});
  const std::uint32_t before = crc32(data.data(), data.size());
  data[2] ^= 0x20;
  EXPECT_NE(crc32(data.data(), data.size()), before);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(FaultInjector, UnarmedPointsCountButNeverFire) {
  FaultInjector inj(1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.shouldFire("nothing.armed"));
  EXPECT_EQ(inj.hitCount("nothing.armed"), 100u);
  EXPECT_EQ(inj.fireCount("nothing.armed"), 0u);
}

TEST(FaultInjector, ScheduleFiresOnExactOrdinalsOnce) {
  FaultInjector inj(1);
  inj.armSchedule("p", {2, 5});
  std::vector<int> fired;
  for (int i = 1; i <= 8; ++i)
    if (inj.shouldFire("p")) fired.push_back(i);
  EXPECT_EQ(fired, (std::vector<int>{2, 5}));
  EXPECT_EQ(inj.fireCount("p"), 2u);
}

TEST(FaultInjector, ArmOnceFiresOnNextHitOnly) {
  FaultInjector inj(1);
  EXPECT_FALSE(inj.shouldFire("p"));  // hit 1
  inj.armOnce("p");
  EXPECT_TRUE(inj.shouldFire("p"));   // hit 2 fires
  EXPECT_FALSE(inj.shouldFire("p"));  // hit 3 does not
}

TEST(FaultInjector, ProbabilityIsDeterministicPerSeed) {
  FaultInjector a(42), b(42), c(43);
  a.armProbability("p", 0.3);
  b.armProbability("p", 0.3);
  c.armProbability("p", 0.3);
  std::vector<bool> fa, fb, fc;
  for (int i = 0; i < 200; ++i) {
    fa.push_back(a.shouldFire("p"));
    fb.push_back(b.shouldFire("p"));
    fc.push_back(c.shouldFire("p"));
  }
  EXPECT_EQ(fa, fb);          // same seed -> same failure pattern
  EXPECT_NE(fa, fc);          // different seed -> different pattern
  EXPECT_GT(a.fireCount("p"), 30u);  // roughly p * hits
  EXPECT_LT(a.fireCount("p"), 90u);
}

TEST(FaultInjector, PointsHaveIndependentStreams) {
  FaultInjector inj(7);
  inj.armProbability("x", 0.5);
  inj.armProbability("y", 0.5);
  std::vector<bool> fx, fy;
  for (int i = 0; i < 64; ++i) {
    fx.push_back(inj.shouldFire("x"));
    fy.push_back(inj.shouldFire("y"));
  }
  EXPECT_NE(fx, fy);
}

TEST(FaultInjector, DisarmStopsFiring) {
  FaultInjector inj(1);
  inj.armProbability("p", 1.0);
  EXPECT_TRUE(inj.shouldFire("p"));
  inj.disarm("p");
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(inj.shouldFire("p"));
  inj.armProbability("p", 1.0);
  inj.armSchedule("q", {1});
  inj.disarmAll();
  EXPECT_FALSE(inj.shouldFire("p"));
  EXPECT_FALSE(inj.shouldFire("q"));
}

TEST(FaultInjector, ResetRestoresSeedFreshStreams) {
  // disarm()/disarmAll() keep counters and RNG positions, so an injector
  // reused across test cases fires in a different pattern than a fresh
  // one with the same seed (stale-stream carry-over). reset() must make
  // the reuse indistinguishable from construction.
  FaultInjector fresh(42), reused(42);
  reused.armProbability("p", 0.3);
  for (int i = 0; i < 50; ++i) reused.shouldFire("p");  // first "test case"
  reused.disarmAll();

  reused.reset();
  fresh.armProbability("p", 0.3);
  reused.armProbability("p", 0.3);
  std::vector<bool> ff, fr;
  for (int i = 0; i < 100; ++i) {
    ff.push_back(fresh.shouldFire("p"));
    fr.push_back(reused.shouldFire("p"));
  }
  EXPECT_EQ(ff, fr);
  EXPECT_EQ(reused.hitCount("p"), 100u);  // counters restarted too
}

TEST(FaultInjector, TriggerCountAndReportNameEveryFiredPoint) {
  FaultInjector inj(5);
  inj.armSchedule("comm.drop", {1, 3});
  inj.armOnce("checkpoint.corrupt_write");
  for (int i = 0; i < 4; ++i) inj.shouldFire("comm.drop");
  inj.shouldFire("checkpoint.corrupt_write");
  inj.shouldFire("engine.cycle");  // hit but never armed

  EXPECT_EQ(inj.triggerCount("comm.drop"), 2u);
  EXPECT_EQ(inj.triggerCount("checkpoint.corrupt_write"), 1u);
  EXPECT_EQ(inj.triggerCount("engine.cycle"), 0u);
  EXPECT_EQ(inj.firedPoints(),
            (std::vector<std::string>{"checkpoint.corrupt_write",
                                      "comm.drop"}));

  const auto rows = inj.report();
  ASSERT_EQ(rows.size(), 3u);  // sorted by name, untouched points absent
  EXPECT_EQ(rows[0].name, "checkpoint.corrupt_write");
  EXPECT_EQ(rows[0].hits, 1u);
  EXPECT_EQ(rows[0].fires, 1u);
  EXPECT_EQ(rows[1].name, "comm.drop");
  EXPECT_EQ(rows[1].hits, 4u);
  EXPECT_EQ(rows[1].fires, 2u);
  EXPECT_EQ(rows[2].name, "engine.cycle");
  EXPECT_EQ(rows[2].fires, 0u);

  inj.reset();
  EXPECT_TRUE(inj.report().empty());
  EXPECT_TRUE(inj.firedPoints().empty());
}

TEST(FaultInjector, RejectsBadArming) {
  FaultInjector inj(1);
  EXPECT_THROW(inj.armProbability("p", 1.5), Error);
  EXPECT_THROW(inj.armProbability("p", -0.1), Error);
  EXPECT_THROW(inj.armSchedule("p", {0}), Error);
}

TEST(FaultScope, InstallsAndRestoresNested) {
  EXPECT_EQ(activeFaultInjector(), nullptr);
  EXPECT_FALSE(faultFires("any.point"));  // no scope -> never fires
  FaultInjector outer(1), inner(2);
  outer.armProbability("p", 1.0);
  {
    FaultScope a(outer);
    EXPECT_EQ(activeFaultInjector(), &outer);
    EXPECT_TRUE(faultFires("p"));
    {
      FaultScope b(inner);
      EXPECT_EQ(activeFaultInjector(), &inner);
      EXPECT_FALSE(faultFires("p"));  // inner has no arming
    }
    EXPECT_EQ(activeFaultInjector(), &outer);
  }
  EXPECT_EQ(activeFaultInjector(), nullptr);
}

// --- SimComm integrity framing under injected link faults ---

TEST(SimCommFaults, CorruptMessageDetectedByCrc) {
  FaultInjector inj(3);
  inj.armSchedule("comm.corrupt", {1});
  FaultScope scope(inj);
  SimComm comm(2);
  comm.send(0, 1, 7, bytes({1, 2, 3, 4, 5}));
  EXPECT_THROW(comm.receive(1, 0, 7), CommError);
  EXPECT_EQ(comm.crcFailures(), 1u);
  // The channel recovers: the next message goes through.
  comm.send(0, 1, 7, bytes({9}));
  EXPECT_EQ(comm.receive(1, 0, 7), bytes({9}));
}

TEST(SimCommFaults, CorruptEmptyPayloadAlsoDetected) {
  FaultInjector inj(3);
  inj.armSchedule("comm.corrupt", {1});
  FaultScope scope(inj);
  SimComm comm(2);
  comm.send(0, 1, 7, {});
  EXPECT_THROW(comm.receive(1, 0, 7), CommError);
}

TEST(SimCommFaults, DroppedMessageLeavesNothingPending) {
  FaultInjector inj(4);
  inj.armSchedule("comm.drop", {1});
  FaultScope scope(inj);
  SimComm comm(2);
  comm.send(0, 1, 7, bytes({1}));
  EXPECT_FALSE(comm.hasMessage(1, 0, 7));
  EXPECT_THROW(comm.receive(1, 0, 7), CommError);
}

TEST(SimCommFaults, DropCreatesDetectableSequenceGap) {
  FaultInjector inj(4);
  inj.armSchedule("comm.drop", {1});
  FaultScope scope(inj);
  SimComm comm(2);
  comm.send(0, 1, 7, bytes({1}));  // dropped
  comm.send(0, 1, 7, bytes({2}));  // arrives with seq 1
  EXPECT_THROW(comm.receive(1, 0, 7), CommError);
}

TEST(SimCommFaults, DuplicateIsDroppedSilently) {
  FaultInjector inj(5);
  inj.armSchedule("comm.duplicate", {1});
  FaultScope scope(inj);
  SimComm comm(2);
  comm.send(0, 1, 7, bytes({1}));  // duplicated in flight
  comm.send(0, 1, 7, bytes({2}));
  EXPECT_EQ(comm.receive(1, 0, 7), bytes({1}));
  EXPECT_EQ(comm.receive(1, 0, 7), bytes({2}));  // dup of {1} skipped
  EXPECT_EQ(comm.duplicatesDropped(), 1u);
  EXPECT_FALSE(comm.hasMessage(1, 0, 7));
}

TEST(SimCommFaults, ResetChannelsPurgesPendingAndSequences) {
  FaultInjector inj(6);
  FaultScope scope(inj);
  SimComm comm(2);
  comm.send(0, 1, 7, bytes({1}));
  comm.send(0, 1, 8, bytes({2}));
  comm.resetChannels(7, 8);
  EXPECT_FALSE(comm.hasMessage(1, 0, 7));
  EXPECT_TRUE(comm.hasMessage(1, 0, 8));
  // Sequence tracking restarts at zero on the purged channel.
  comm.send(0, 1, 7, bytes({3}));
  EXPECT_EQ(comm.receive(1, 0, 7), bytes({3}));
}

// --- GhostExchange retry absorbs injected comm faults ---

struct ExchangeWorld {
  ExchangeWorld()
      : lat(12, 12, 12, 2.87), global(lat), decomp({12, 12, 12}, {2, 2, 2}),
        comm(decomp.rankCount()), exchange(decomp, comm) {
    Rng rng(5);
    global.randomAlloy(0.3, 7, rng);
    for (int r = 0; r < decomp.rankCount(); ++r) {
      domains.emplace_back(lat, decomp.originCells(r), decomp.extentCells(), 2);
      domains.back().loadFrom(global);
    }
  }

  bool ghostsMatchGlobal() const {
    for (int r = 0; r < decomp.rankCount(); ++r) {
      const Subdomain& sd = domains[static_cast<std::size_t>(r)];
      const Vec3i o = decomp.originCells(r);
      const Vec3i e = sd.extentCells();
      const int g = sd.ghostCells();
      for (int cz = -g; cz < e.z + g; ++cz)
        for (int cy = -g; cy < e.y + g; ++cy)
          for (int cx = -g; cx < e.x + g; ++cx)
            for (int sub = 0; sub < 2; ++sub) {
              const Vec3i p{2 * (o.x + cx) + sub, 2 * (o.y + cy) + sub,
                            2 * (o.z + cz) + sub};
              if (sd.at(p) != global.speciesAt(p)) return false;
            }
    }
    return true;
  }

  BccLattice lat;
  LatticeState global;
  Decomposition decomp;
  SimComm comm;
  GhostExchange exchange;
  std::vector<Subdomain> domains;
};

TEST(GhostExchangeFaults, RetriesThroughCorruptedSlab) {
  ExchangeWorld w;
  FaultInjector inj(11);
  inj.armSchedule("comm.corrupt", {3});  // one ghost slab corrupted
  FaultScope scope(inj);
  w.exchange.exchangeAll(w.domains);
  EXPECT_GE(w.exchange.retries(), 1u);
  EXPECT_TRUE(w.ghostsMatchGlobal());
}

TEST(GhostExchangeFaults, RetriesThroughDroppedSlab) {
  ExchangeWorld w;
  FaultInjector inj(12);
  inj.armSchedule("comm.drop", {10});
  FaultScope scope(inj);
  w.exchange.exchangeAll(w.domains);
  EXPECT_GE(w.exchange.retries(), 1u);
  EXPECT_TRUE(w.ghostsMatchGlobal());
}

TEST(GhostExchangeFaults, BoundedRetriesThenTypedError) {
  ExchangeWorld w;
  w.exchange.setMaxAttempts(2);
  FaultInjector inj(13);
  inj.armProbability("comm.corrupt", 1.0);  // every message corrupt
  FaultScope scope(inj);
  EXPECT_THROW(w.exchange.exchangeAll(w.domains), CommError);
}

TEST(GhostExchangeFaults, DisarmedInjectionIsFree) {
  ExchangeWorld w;
  FaultInjector inj(14);  // installed but nothing armed
  FaultScope scope(inj);
  w.exchange.exchangeAll(w.domains);
  EXPECT_EQ(w.exchange.retries(), 0u);
  EXPECT_EQ(w.comm.crcFailures(), 0u);
  EXPECT_TRUE(w.ghostsMatchGlobal());
}

}  // namespace
}  // namespace tkmc
