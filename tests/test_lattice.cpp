#include "lattice/bcc_lattice.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace tkmc {
namespace {

TEST(BccLattice, SiteCountIsTwoPerCell) {
  const BccLattice lat(3, 4, 5, 2.87);
  EXPECT_EQ(lat.siteCount(), 2 * 3 * 4 * 5);
}

TEST(BccLattice, SiteIdCoordinateRoundTrip) {
  const BccLattice lat(4, 3, 5, 2.87);
  for (BccLattice::SiteId id = 0; id < lat.siteCount(); ++id) {
    const Vec3i p = lat.coordinate(id);
    EXPECT_TRUE(BccLattice::isLatticeSite(p));
    EXPECT_EQ(lat.siteId(p), id);
  }
}

TEST(BccLattice, WrapIsPeriodic) {
  const BccLattice lat(4, 4, 4, 2.87);
  const Vec3i p{1, 1, 1};
  EXPECT_EQ(lat.wrap({1 + 8, 1, 1 - 8}), p);
  EXPECT_EQ(lat.wrap({1 - 16, 1 + 16, 1}), p);
  EXPECT_EQ(lat.siteId({1 + 8, 1 - 8, 1 + 16}), lat.siteId(p));
}

TEST(BccLattice, ParityValidation) {
  EXPECT_TRUE(BccLattice::isLatticeSite({0, 0, 0}));
  EXPECT_TRUE(BccLattice::isLatticeSite({1, 1, 1}));
  EXPECT_TRUE(BccLattice::isLatticeSite({2, 0, 4}));
  EXPECT_TRUE(BccLattice::isLatticeSite({-1, 1, 3}));
  EXPECT_FALSE(BccLattice::isLatticeSite({1, 0, 0}));
  EXPECT_FALSE(BccLattice::isLatticeSite({2, 1, 0}));
}

TEST(BccLattice, FirstNeighborsAreEightUnitDiagonals) {
  const auto& offsets = BccLattice::firstNeighborOffsets();
  ASSERT_EQ(offsets.size(), 8u);
  for (const Vec3i& d : offsets) {
    EXPECT_EQ(d.norm2(), 3);
    EXPECT_TRUE(BccLattice::isLatticeSite(d));
  }
}

TEST(BccLattice, FirstNeighborDistanceIsSqrt3HalfA) {
  const BccLattice lat(4, 4, 4, 2.87);
  for (const Vec3i& d : BccLattice::firstNeighborOffsets())
    EXPECT_NEAR(lat.offsetDistance(d), 2.87 * std::sqrt(3.0) / 2.0, 1e-12);
}

// Shell structure within the paper's standard cutoff: the counts the
// triple-encoding relies on (N_local = 112 at r_cut = 6.5 A).
TEST(BccLattice, NeighborCountAtPaperCutoff) {
  const BccLattice lat(8, 8, 8, kLatticeConstantFe);
  EXPECT_EQ(lat.offsetsWithinCutoff(kDefaultCutoff).size(), 112u);
}

TEST(BccLattice, NeighborShellsAtPaperCutoff) {
  const BccLattice lat(8, 8, 8, kLatticeConstantFe);
  std::map<std::int64_t, int> shells;
  for (const Vec3i& d : lat.offsetsWithinCutoff(kDefaultCutoff))
    ++shells[d.norm2()];
  // 1NN..8NN populations on bcc: 8, 6, 12, 24, 8, 6, 24, 24.
  ASSERT_EQ(shells.size(), 8u);
  EXPECT_EQ(shells[3], 8);
  EXPECT_EQ(shells[4], 6);
  EXPECT_EQ(shells[8], 12);
  EXPECT_EQ(shells[11], 24);
  EXPECT_EQ(shells[12], 8);
  EXPECT_EQ(shells[16], 6);
  EXPECT_EQ(shells[19], 24);
  EXPECT_EQ(shells[20], 24);
}

TEST(BccLattice, OffsetsSortedByDistance) {
  const BccLattice lat(8, 8, 8, kLatticeConstantFe);
  const auto offsets = lat.offsetsWithinCutoff(kDefaultCutoff);
  for (std::size_t i = 1; i < offsets.size(); ++i)
    EXPECT_LE(offsets[i - 1].norm2(), offsets[i].norm2());
}

struct CutoffCase {
  double cutoff;
  std::size_t expected;
};

class CutoffSweep : public ::testing::TestWithParam<CutoffCase> {};

TEST_P(CutoffSweep, NeighborCounts) {
  const BccLattice lat(10, 10, 10, kLatticeConstantFe);
  EXPECT_EQ(lat.offsetsWithinCutoff(GetParam().cutoff).size(),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shells, CutoffSweep,
    ::testing::Values(CutoffCase{2.6, 8u},      // 1NN only
                      CutoffCase{2.9, 14u},     // +2NN
                      CutoffCase{4.1, 26u},     // +3NN
                      CutoffCase{5.8, 64u},     // paper's short cutoff
                      CutoffCase{6.5, 112u}));  // paper's standard cutoff

TEST(BccLattice, MinimumImageChoosesNearestCopy) {
  const BccLattice lat(4, 4, 4, 2.87);
  EXPECT_EQ(lat.minimumImage({0, 0, 0}, {7, 7, 7}), (Vec3i{-1, -1, -1}));
  EXPECT_EQ(lat.minimumImage({0, 0, 0}, {1, 1, 1}), (Vec3i{1, 1, 1}));
  EXPECT_EQ(lat.minimumImage({6, 6, 6}, {0, 0, 0}), (Vec3i{2, 2, 2}));
}

TEST(BccLattice, MinimumImageNormNeverExceedsHalfBox) {
  const BccLattice lat(5, 5, 5, 2.87);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Vec3i a = lat.coordinate(
        static_cast<BccLattice::SiteId>(rng.uniformBelow(
            static_cast<std::uint64_t>(lat.siteCount()))));
    const Vec3i b = lat.coordinate(
        static_cast<BccLattice::SiteId>(rng.uniformBelow(
            static_cast<std::uint64_t>(lat.siteCount()))));
    const Vec3i d = lat.minimumImage(a, b);
    EXPECT_LE(std::abs(d.x), 5);
    EXPECT_LE(std::abs(d.y), 5);
    EXPECT_LE(std::abs(d.z), 5);
    // Displacement must connect a to (an image of) b.
    EXPECT_EQ(lat.wrap(a + d), lat.wrap(b));
  }
}

TEST(BccLattice, InvalidConstructionThrows) {
  EXPECT_THROW(BccLattice(0, 4, 4, 2.87), Error);
  EXPECT_THROW(BccLattice(4, 4, 4, -1.0), Error);
}

TEST(BccLattice, PositionScalesWithLatticeConstant) {
  const BccLattice lat(4, 4, 4, 3.0);
  const Vec3d p = lat.position({1, 1, 1});
  EXPECT_DOUBLE_EQ(p.x, 1.5);
  EXPECT_DOUBLE_EQ(p.y, 1.5);
  EXPECT_DOUBLE_EQ(p.z, 1.5);
}

}  // namespace
}  // namespace tkmc
