#include "parallel/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cluster_analysis.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "kmc/eam_energy_model.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "tabulation/feature_table.hpp"
#include "kmc/serial_engine.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

struct ParallelWorld {
  ParallelWorld(std::uint64_t seed, int cells = 20, int vacancies = 6)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(cells, cells, cells, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.12, vacancies, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

ParallelConfig fastConfig(std::uint64_t seed) {
  ParallelConfig cfg;
  cfg.seed = seed;
  cfg.tStop = 2e-8;  // the paper's strict synchronization interval
  return cfg;
}

TEST(RequiredGhostCells, CoversTheVacancySystem) {
  const Cet cet(2.87, kCutoff);
  const int g = requiredGhostCells(cet);
  int maxComp = 0;
  for (const Vec3i& s : cet.sites())
    maxComp = std::max({maxComp, std::abs(s.x), std::abs(s.y), std::abs(s.z)});
  EXPECT_GE(2 * g, maxComp);
  EXPECT_LE(2 * (g - 1), maxComp);
}

TEST(ParallelEngine, CyclesAdvanceTimeByTStop) {
  ParallelWorld w(1);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, fastConfig(5));
  engine.runCycle();
  EXPECT_DOUBLE_EQ(engine.time(), 2e-8);
  engine.run(1e-7);
  EXPECT_GE(engine.time(), 1e-7);
  EXPECT_EQ(engine.cycles(), 5u);
}

TEST(ParallelEngine, ConservesVacanciesAndSpecies) {
  ParallelWorld w(2);
  const auto fe = w.state.countSpecies(Species::kFe);
  const auto cu = w.state.countSpecies(Species::kCu);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, fastConfig(6));
  for (int c = 0; c < 16; ++c) {
    engine.runCycle();
    ASSERT_EQ(engine.vacancyCount(), 6) << "cycle " << c;
  }
  const LatticeState global = engine.assembleGlobalState();
  EXPECT_EQ(global.countSpecies(Species::kFe), fe);
  EXPECT_EQ(global.countSpecies(Species::kCu), cu);
  EXPECT_EQ(global.countSpecies(Species::kVacancy), 6);
}

TEST(ParallelEngine, GhostsConsistentAfterEveryCycle) {
  ParallelWorld w(3);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, fastConfig(7));
  for (int c = 0; c < 10; ++c) {
    engine.runCycle();
    ASSERT_TRUE(engine.ghostsConsistent()) << "cycle " << c;
  }
}

TEST(ParallelEngine, ExecutesEventsAcrossSectors) {
  ParallelWorld w(4, 20, 10);
  EamEnergyModel model(w.cet, w.net, w.eam);
  // A longer window lets every sector fire at least once.
  ParallelConfig cfg = fastConfig(8);
  cfg.tStop = 1e-7;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  for (int c = 0; c < 8; ++c) engine.runCycle();
  EXPECT_GT(engine.totalEvents(), 0u);
}

TEST(ParallelEngine, VacancyCanMigrateAcrossRankBoundary) {
  // Put a vacancy right at a subdomain corner and run enough cycles that
  // it almost surely crosses; ownership must follow it (fold protocol).
  ParallelWorld w(5, 20, 0);
  w.state.setSpeciesAt({19, 19, 19}, Species::kVacancy);  // near centre seam
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = fastConfig(9);
  cfg.tStop = 1e-7;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  for (int c = 0; c < 24; ++c) {
    engine.runCycle();
    ASSERT_EQ(engine.vacancyCount(), 1) << "cycle " << c;
    ASSERT_TRUE(engine.ghostsConsistent()) << "cycle " << c;
  }
  const LatticeState global = engine.assembleGlobalState();
  EXPECT_EQ(global.countSpecies(Species::kVacancy), 1);
}

TEST(ParallelEngine, DeterministicForSameSeed) {
  ParallelWorld a(6), b(6);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  ParallelEngine ea(a.state, ma, a.cet, fastConfig(10));
  ParallelEngine eb(b.state, mb, b.cet, fastConfig(10));
  for (int c = 0; c < 8; ++c) {
    ea.runCycle();
    eb.runCycle();
  }
  EXPECT_EQ(ea.totalEvents(), eb.totalEvents());
  EXPECT_TRUE(ea.assembleGlobalState() == eb.assembleGlobalState());
  EXPECT_EQ(ea.assembleGlobalState().contentHash(),
            eb.assembleGlobalState().contentHash());
}

TEST(ParallelEngine, MatchesSerialStatisticsOnIsolatedCuDecay) {
  // Not bit-comparable to the serial engine (the sublattice schedule is a
  // different stochastic process), but conserved observables and the
  // direction of coarsening must agree.
  ParallelWorld w(7, 20, 8);
  const auto initialStats = analyzeClusters(w.state, Species::kCu);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = fastConfig(11);
  cfg.tStop = 5e-8;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  for (int c = 0; c < 32; ++c) engine.runCycle();
  const LatticeState global = engine.assembleGlobalState();
  const auto finalStats = analyzeClusters(global, Species::kCu);
  EXPECT_EQ(finalStats.totalAtoms, initialStats.totalAtoms);
}

TEST(ParallelEngine, RejectsTooSmallSubdomains) {
  ParallelWorld w(8, 8, 2);  // 8 cells / 2 ranks = 4-cell subdomains
  EamEnergyModel model(w.cet, w.net, w.eam);
  EXPECT_THROW(ParallelEngine(w.state, model, w.cet, fastConfig(12)), Error);
}

// Rank-grid sweep: the sublattice protocol must hold for non-cubic
// decompositions and more than eight ranks.
struct GridCase {
  Vec3i boxCells;
  Vec3i rankGrid;
};

class RankGridSweep : public ::testing::TestWithParam<GridCase> {};

TEST_P(RankGridSweep, ConservationAndGhostConsistency) {
  const auto& c = GetParam();
  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const EamPotential eam(kCutoff);
  EamEnergyModel model(cet, net, eam);
  BccLattice lattice(c.boxCells.x, c.boxCells.y, c.boxCells.z, 2.87);
  LatticeState state(lattice);
  Rng rng(17);
  state.randomAlloy(0.1, 6, rng);
  const auto fe = state.countSpecies(Species::kFe);
  const auto cu = state.countSpecies(Species::kCu);

  ParallelConfig cfg;
  cfg.seed = 23;
  cfg.tStop = 5e-8;
  cfg.rankGrid = c.rankGrid;
  ParallelEngine engine(state, model, cet, cfg);
  for (int cycle = 0; cycle < 9; ++cycle) {
    engine.runCycle();
    ASSERT_EQ(engine.vacancyCount(), 6);
    ASSERT_TRUE(engine.ghostsConsistent());
  }
  const LatticeState global = engine.assembleGlobalState();
  EXPECT_EQ(global.countSpecies(Species::kFe), fe);
  EXPECT_EQ(global.countSpecies(Species::kCu), cu);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, RankGridSweep,
    ::testing::Values(GridCase{{20, 20, 20}, {2, 2, 2}},
                      GridCase{{24, 20, 20}, {2, 2, 2}},
                      GridCase{{24, 24, 32}, {2, 2, 4}},
                      GridCase{{32, 16, 16}, {4, 2, 2}}));

TEST(ParallelEngine, CommTrafficIsRecorded) {
  ParallelWorld w(9);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, fastConfig(13));
  engine.runCycle();
  EXPECT_GT(engine.comm().totalBytesSent(), 0u);
  EXPECT_GT(engine.comm().totalMessagesSent(), 0u);
}

// --- Fault tolerance: cycle rollback, comm retry, invariant monitors ---

TEST(ParallelEngineFaults, RecoveryOnAndOffAreBitIdenticalWhenDisarmed) {
  // The recovery layer (snapshots, CRC framing, invariant checks) must
  // not perturb the physics: same seeds => same event sequence.
  ParallelWorld a(11), b(11);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  ParallelConfig withRecovery = fastConfig(20);
  withRecovery.enableRecovery = true;
  withRecovery.invariantCadence = 2;
  ParallelConfig without = fastConfig(20);
  without.enableRecovery = false;
  ParallelEngine ea(a.state, ma, a.cet, withRecovery);
  ParallelEngine eb(b.state, mb, b.cet, without);
  for (int c = 0; c < 6; ++c) {
    ea.runCycle();
    eb.runCycle();
  }
  EXPECT_EQ(ea.totalEvents(), eb.totalEvents());
  EXPECT_EQ(ea.discardedEvents(), eb.discardedEvents());
  EXPECT_TRUE(ea.assembleGlobalState() == eb.assembleGlobalState());
  EXPECT_EQ(ea.assembleGlobalState().contentHash(),
            eb.assembleGlobalState().contentHash());
  const RecoveryStats stats = ea.recoveryStats();
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(stats.commErrors, 0u);
  EXPECT_EQ(stats.ghostRetries, 0u);
  EXPECT_EQ(stats.foldRetries, 0u);
}

TEST(ParallelEngineFaults, SurvivesMessageCorruptionAtFivePercent) {
  // Acceptance scenario: p = 0.05 corruption on every message, 6 cycles.
  // The run must complete with the physics invariants intact and the
  // recovery visible in the engine stats.
  ParallelWorld w(12);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = fastConfig(21);
  cfg.tStop = 5e-8;
  cfg.maxReplays = 8;  // headroom beyond what per-message ARQ absorbs
  ParallelEngine engine(w.state, model, w.cet, cfg);
  FaultInjector inj(2021);
  inj.armProbability("comm.corrupt", 0.05);
  FaultScope scope(inj);
  for (int c = 0; c < 6; ++c) {
    engine.runCycle();
    ASSERT_EQ(engine.vacancyCount(), 6) << "cycle " << c;
  }
  ASSERT_TRUE(engine.ghostsConsistent());
  EXPECT_GT(inj.fireCount("comm.corrupt"), 0u);
  const RecoveryStats stats = engine.recoveryStats();
  EXPECT_GT(stats.ghostRetries + stats.foldRetries + stats.rollbacks, 0u);
}

TEST(ParallelEngineFaults, SurvivesDropsAndDuplicates) {
  ParallelWorld w(13);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = fastConfig(22);
  cfg.tStop = 5e-8;
  cfg.maxReplays = 8;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  FaultInjector inj(7);
  inj.armProbability("comm.drop", 0.02);
  inj.armProbability("comm.duplicate", 0.02);
  FaultScope scope(inj);
  for (int c = 0; c < 5; ++c) {
    engine.runCycle();
    ASSERT_EQ(engine.vacancyCount(), 6) << "cycle " << c;
  }
  ASSERT_TRUE(engine.ghostsConsistent());
  EXPECT_GT(inj.fireCount("comm.drop") + inj.fireCount("comm.duplicate"), 0u);
}

TEST(ParallelEngineFaults, RollsBackAndReplaysInjectedCycleFault) {
  ParallelWorld w(14);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, fastConfig(23));
  FaultInjector inj(9);
  inj.armSchedule("engine.cycle", {2});  // trip the second cycle once
  FaultScope scope(inj);
  for (int c = 0; c < 4; ++c) engine.runCycle();
  EXPECT_EQ(engine.cycles(), 4u);
  EXPECT_EQ(engine.recoveryStats().rollbacks, 1u);
  EXPECT_EQ(engine.vacancyCount(), 6);
  EXPECT_TRUE(engine.ghostsConsistent());
}

TEST(ParallelEngineFaults, ReplayedCycleMatchesUnfaultedTrajectory) {
  // A rollback must rewind the RNG streams with the state: after the
  // replay the trajectory is the one an unfaulted run produces.
  ParallelWorld a(15), b(15);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  ParallelEngine ea(a.state, ma, a.cet, fastConfig(24));
  ParallelEngine eb(b.state, mb, b.cet, fastConfig(24));
  {
    FaultInjector inj(10);
    inj.armSchedule("engine.cycle", {1, 3});
    FaultScope scope(inj);
    for (int c = 0; c < 4; ++c) ea.runCycle();
  }
  for (int c = 0; c < 4; ++c) eb.runCycle();
  EXPECT_EQ(ea.recoveryStats().rollbacks, 2u);
  EXPECT_EQ(ea.totalEvents(), eb.totalEvents());
  EXPECT_TRUE(ea.assembleGlobalState() == eb.assembleGlobalState());
  EXPECT_EQ(ea.assembleGlobalState().contentHash(),
            eb.assembleGlobalState().contentHash());
}

TEST(ParallelEngineFaults, WithoutRecoveryTheSameFaultAborts) {
  // The contrast case for the acceptance criterion: identical arming,
  // recovery disabled -> the typed error surfaces to the caller.
  ParallelWorld w(16);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = fastConfig(25);
  cfg.enableRecovery = false;
  cfg.commMaxAttempts = 1;  // no ghost-exchange retry either
  ParallelEngine engine(w.state, model, w.cet, cfg);
  FaultInjector inj(11);
  inj.armSchedule("comm.corrupt", {1});
  FaultScope scope(inj);
  EXPECT_THROW(engine.runCycle(), CommError);
}

TEST(ParallelEngineFaults, UnrecoverableFaultStormSurfacesTypedError) {
  ParallelWorld w(17);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = fastConfig(26);
  cfg.maxReplays = 2;
  cfg.commMaxAttempts = 2;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  FaultInjector inj(12);
  inj.armProbability("comm.corrupt", 1.0);  // nothing gets through, ever
  FaultScope scope(inj);
  EXPECT_THROW(engine.runCycle(), CommError);
  EXPECT_GT(engine.recoveryStats().commErrors, 0u);
}

TEST(ParallelEngine, RunsOnTheNnpBackend) {
  // The parallel schedule is backend-agnostic: drive it with the neural
  // network potential (small net) and check the same invariants.
  ParallelWorld w(10);
  const FeatureTable table(w.net.distances(), standardPqSets());
  Network network({64, 8, 1});
  Rng rng(19);
  network.initHe(rng);
  NnpEnergyModel model(w.cet, w.net, table, network);
  ParallelConfig cfg = fastConfig(14);
  cfg.tStop = 5e-8;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  for (int cycle = 0; cycle < 6; ++cycle) {
    engine.runCycle();
    ASSERT_EQ(engine.vacancyCount(), 6);
    ASSERT_TRUE(engine.ghostsConsistent());
  }
}

}  // namespace
}  // namespace tkmc
