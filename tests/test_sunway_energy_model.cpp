#include "sunway/sunway_energy_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kmc/nnp_energy_model.hpp"
#include "kmc/serial_engine.hpp"

namespace tkmc {
namespace {

class SunwayModelTest : public ::testing::Test {
 protected:
  SunwayModelTest()
      : cet_(2.87, 4.0), net_(cet_),
        table_(net_.distances(), standardPqSets()), network_({64, 16, 16, 1}),
        lattice_(14, 14, 14, 2.87), state_(lattice_) {
    Rng rng(7);
    network_.initHe(rng);
    Rng arng(8);
    state_.randomAlloy(0.15, 3, arng);
  }

  Cet cet_;
  Net net_;
  FeatureTable table_;
  Network network_;
  BccLattice lattice_;
  LatticeState state_;
};

TEST_F(SunwayModelTest, AgreesWithDoublePrecisionBackend) {
  SunwayEnergyModel sunway(cet_, net_, table_, network_);
  NnpEnergyModel reference(cet_, net_, table_, network_);
  for (const Vec3i& vac : state_.vacancies()) {
    const Vec3i center = lattice_.wrap(vac);
    const auto a = sunway.stateEnergies(state_, center, kNumJumpDirections);
    const auto b = reference.stateEnergies(state_, center, kNumJumpDirections);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
      // Single vs double precision: relative agreement, not bitwise.
      const double scale = std::max(1.0, std::abs(b[s]));
      EXPECT_NEAR(a[s], b[s], scale * 1e-4) << "state " << s;
    }
  }
}

TEST_F(SunwayModelTest, EnergyDifferencesAgreeTighter) {
  // KMC only consumes dE = E_f - E_i; the absolute float error largely
  // cancels in the difference.
  SunwayEnergyModel sunway(cet_, net_, table_, network_);
  NnpEnergyModel reference(cet_, net_, table_, network_);
  const Vec3i center = lattice_.wrap(state_.vacancies()[0]);
  const auto a = sunway.stateEnergies(state_, center, kNumJumpDirections);
  const auto b = reference.stateEnergies(state_, center, kNumJumpDirections);
  for (int k = 1; k <= kNumJumpDirections; ++k) {
    const double dA = a[static_cast<std::size_t>(k)] - a[0];
    const double dB = b[static_cast<std::size_t>(k)] - b[0];
    EXPECT_NEAR(dA, dB, 1e-3 * std::max(1.0, std::abs(dB)));
  }
}

TEST_F(SunwayModelTest, DrivesTheSerialEngine) {
  SunwayEnergyModel model(cet_, net_, table_, network_);
  KmcConfig cfg;
  cfg.seed = 42;
  cfg.tEnd = 1e300;
  SerialEngine engine(state_, model, cet_, cfg);
  const auto cu = state_.countSpecies(Species::kCu);
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(engine.step().advanced);
  EXPECT_EQ(state_.countSpecies(Species::kCu), cu);
  EXPECT_EQ(state_.countSpecies(Species::kVacancy), 3);
}

TEST_F(SunwayModelTest, DeterministicAcrossInstances) {
  SunwayEnergyModel m1(cet_, net_, table_, network_);
  SunwayEnergyModel m2(cet_, net_, table_, network_);
  const Vec3i center = lattice_.wrap(state_.vacancies()[0]);
  const auto a = m1.stateEnergies(state_, center, kNumJumpDirections);
  const auto b = m2.stateEnergies(state_, center, kNumJumpDirections);
  EXPECT_EQ(a, b);  // bitwise: same kernels, same order
}

TEST_F(SunwayModelTest, TrafficFlowsThroughTheSimulator) {
  SunwayEnergyModel model(cet_, net_, table_, network_);
  EXPECT_GT(model.modelLoadTraffic().mainReadBytes, 0u);
  const Vec3i center = lattice_.wrap(state_.vacancies()[0]);
  model.stateEnergies(state_, center, kNumJumpDirections);
  const Traffic t = model.collectTraffic();
  EXPECT_GT(t.mainReadBytes, 0u);
  EXPECT_GT(t.flops, 0u);
  EXPECT_GT(t.rmaBytes, 0u);
  // Drained: a second collect sees nothing.
  EXPECT_EQ(model.collectTraffic().mainBytes(), 0u);
}

TEST_F(SunwayModelTest, MultiVacancyMaskingMatchesReference) {
  // Put two vacancies within one jumping region; masking must stay
  // consistent between the float and double backends.
  LatticeState crowded(lattice_);
  Rng rng(9);
  crowded.randomAlloy(0.1, 0, rng);
  crowded.setSpeciesAt({6, 6, 6}, Species::kVacancy);
  crowded.setSpeciesAt({8, 8, 6}, Species::kVacancy);
  SunwayEnergyModel sunway(cet_, net_, table_, network_);
  NnpEnergyModel reference(cet_, net_, table_, network_);
  const auto a = sunway.stateEnergies(crowded, {6, 6, 6}, kNumJumpDirections);
  const auto b = reference.stateEnergies(crowded, {6, 6, 6}, kNumJumpDirections);
  for (std::size_t s = 0; s < a.size(); ++s)
    EXPECT_NEAR(a[s], b[s], 1e-4 * std::max(1.0, std::abs(b[s])));
}

}  // namespace
}  // namespace tkmc
