// Telemetry layer: histogram percentiles at bucket edges, thread-safe
// counters, span nesting, the disabled path's zero-allocation guarantee,
// and JSON round-trips through the bundled parser.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/telemetry/json.hpp"
#include "common/telemetry/telemetry.hpp"
#include "parallel/coordinated_checkpoint.hpp"

// Global allocation counter backing the zero-allocation test. Every
// heap allocation in the test binary bumps it; the disabled-telemetry
// hot path must leave it untouched.
namespace {
std::atomic<std::uint64_t> gAllocations{0};
}  // namespace

void* operator new(std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tkmc::telemetry {
namespace {

TEST(Histogram, PercentilesExactAtBucketEdges) {
  ScopedEnable on;
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.observe(v);

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.minValue(), 1.0);
  EXPECT_DOUBLE_EQ(h.maxValue(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // With ten observations per bucket every multiple-of-ten percentile
  // lands exactly on a bucket edge.
  EXPECT_DOUBLE_EQ(h.percentile(10), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  // Interior percentiles interpolate linearly within their bucket.
  EXPECT_DOUBLE_EQ(h.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
}

TEST(Histogram, SingleObservationOnBoundIsExact) {
  ScopedEnable on;
  Histogram h({1.0, 2.0, 4.0});
  h.observe(2.0);  // upper-inclusive: lands in the (1, 2] bucket
  EXPECT_EQ(h.bucketCount(1), 1u);
  // Observed min == max == 2 pins every percentile to the value itself.
  EXPECT_DOUBLE_EQ(h.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(1), 2.0);
}

TEST(Histogram, OverflowBucketUsesObservedMax) {
  ScopedEnable on;
  Histogram h({1.0, 2.0, 4.0});
  h.observe(10.0);
  h.observe(100.0);
  EXPECT_EQ(h.bucketCount(3), 2u);  // both beyond the last bound
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_GE(h.percentile(50), 10.0);
  EXPECT_LE(h.percentile(50), 100.0);
}

TEST(Histogram, QuantilesStayWithinTheObservedRange) {
  // Regression: checkpoint.delta_pages uses the default time-scale
  // bounds but observes small integer page counts. Interpolating inside
  // a sub-microsecond bucket reported p50 = 8.3e-07 for a series whose
  // median sample was exactly 0. A quantile must never leave the
  // observed [min, max] of the bucket it lands in.
  ScopedEnable on;
  MetricsRegistry registry;
  Histogram& h = registry.histogram("checkpoint.delta_pages");
  for (int i = 0; i < 9; ++i) h.observe(0.0);
  for (double v : {1.0, 1.0, 1.0, 2.0, 3.0, 3.0}) h.observe(v);
  EXPECT_EQ(h.count(), 15u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);  // 9 of 15 samples are zero
  EXPECT_DOUBLE_EQ(h.percentile(95), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 3.0);
  for (double p : {1.0, 10.0, 25.0, 75.0, 90.0, 100.0}) {
    EXPECT_GE(h.percentile(p), 0.0) << "p" << p;
    EXPECT_LE(h.percentile(p), 3.0) << "p" << p;
  }
}

TEST(Histogram, EmptyReportsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::exception);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::exception);
  EXPECT_THROW(Histogram({}), std::exception);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  ScopedEnable on;
  MetricsRegistry registry;
  Counter& c = registry.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, MaxIsMonotone) {
  ScopedEnable on;
  Gauge g;
  g.max(5.0);
  g.max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(1.0);  // set() is not monotone
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Tracer, SpansNestInLifoOrder) {
  ScopedEnable on;
  Tracer::global().reset();
  {
    TKMC_SPAN("outer");
    { TKMC_SPAN("inner"); }
  }
  const std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].phase, 'E');
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].tsMicros, events[i - 1].tsMicros);
  Tracer::global().reset();
}

TEST(Tracer, CapacityDropsAreCountedAndExportStaysBalanced) {
  ScopedEnable on;
  Tracer t;
  t.setCapacity(2);
  t.begin("a");
  t.begin("b");
  t.begin("c");  // over capacity: dropped
  EXPECT_EQ(t.eventCount(), 2u);
  EXPECT_EQ(t.dropped(), 1u);

  const JsonValue doc = JsonValue::parse(t.toJson());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  int begins = 0;
  int ends = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "B") ++begins;
    if (ph->str == "E") ++ends;
  }
  // The exporter appends synthetic 'E' events for the still-open spans.
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
}

TEST(Tracer, FlowEventsExportAsMatchedArrowPairs) {
  ScopedEnable on;
  Tracer t;
  t.flowBegin("flow.fold", 7, 0);
  t.flowEnd("flow.fold", 7, 1);
  t.flowBegin("flow.ghost", 9, 2);  // never finished: close synthesized
  t.flowEnd("flow.msg", 11, 3);     // orphan finish: must be skipped

  const JsonValue doc = JsonValue::parse(t.toJson());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int starts = 0;
  int finishes = 0;
  for (const JsonValue& e : events->array) {
    const std::string& ph = e.find("ph")->str;
    if (ph != "s" && ph != "f") continue;
    EXPECT_NE(e.find("name")->str, "flow.msg") << "orphan finish exported";
    const JsonValue* id = e.find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_TRUE(id->number == 7.0 || id->number == 9.0);
    if (ph == "s") ++starts;
    if (ph == "f") {
      ++finishes;
      // Binding point "enclosing slice" is what draws the arrow to the
      // event under the finish, not just to the track.
      ASSERT_NE(e.find("bp"), nullptr);
      EXPECT_EQ(e.find("bp")->str, "e");
    }
  }
  EXPECT_EQ(starts, 2);
  EXPECT_EQ(finishes, 2);  // matched fold + synthesized ghost close
}

TEST(Telemetry, WriteAllTearLeavesThePreviousSnapshotIntact) {
  // writeAll() goes through writeFileAtomic (temp + rename): a crash
  // mid-write — simulated by the telemetry.write_tear fault point —
  // must never tear a previously published metrics.json.
  resetAll();
  ScopedEnable on;
  const auto dir = std::filesystem::temp_directory_path() / "tkmc_tm_tear";
  std::filesystem::remove_all(dir);
  metrics().counter("tear.marker").inc();
  writeAll(dir.string());

  const auto readFile = [&] {
    std::ifstream in(dir / "metrics.json");
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const JsonValue first = JsonValue::parse(readFile());
  EXPECT_DOUBLE_EQ(first.find("counters")->find("tear.marker")->number, 1.0);

  metrics().counter("tear.marker").inc();  // would publish 2
  FaultInjector inj(7);
  // writeAll writes trace.json first, metrics.json second: hit ordinal 2
  // tears the metrics write after its temp file is half-written.
  inj.armSchedule("telemetry.write_tear", {2});
  FaultScope scope(inj);
  EXPECT_THROW(writeAll(dir.string()), IoError);
  EXPECT_EQ(inj.triggerCount("telemetry.write_tear"), 1u);

  // The published file is still the complete previous snapshot.
  const JsonValue after = JsonValue::parse(readFile());
  EXPECT_DOUBLE_EQ(after.find("counters")->find("tear.marker")->number, 1.0);
  std::filesystem::remove_all(dir);
  resetAll();
}

TEST(Telemetry, DisabledPathAllocatesNothing) {
  setEnabled(false);
  MetricsRegistry registry;
  // Handle acquisition may allocate; the recording path must not.
  Counter& c = registry.counter("test.zero_alloc");
  Gauge& g = registry.gauge("test.zero_alloc_gauge");
  Histogram& h = registry.histogram("test.zero_alloc_hist", {1.0, 2.0});

  const std::uint64_t before = gAllocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    c.add(3);
    g.set(static_cast<double>(i));
    g.max(static_cast<double>(i));
    h.observe(static_cast<double>(i));
    ScopedSpan span("test.zero_alloc_span", i);
    Tracer::global().instant("test.zero_alloc_instant");
  }
  const std::uint64_t after = gAllocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  // And nothing was recorded either.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Telemetry, MetricsJsonRoundTrips) {
  ScopedEnable on;
  MetricsRegistry registry;
  registry.counter("comm.bytes_sent").add(4096);
  registry.gauge("kmc.cache.hit_rate").set(0.75);
  Histogram& h = registry.histogram("engine.cycle_seconds", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);

  const JsonValue doc = JsonValue::parse(registry.toJson());
  ASSERT_TRUE(doc.isObject());
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* bytes = counters->find("comm.bytes_sent");
  ASSERT_NE(bytes, nullptr);
  EXPECT_DOUBLE_EQ(bytes->number, 4096.0);

  const JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* rate = gauges->find("kmc.cache.hit_rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->number, 0.75);

  const JsonValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* cycle = hists->find("engine.cycle_seconds");
  ASSERT_NE(cycle, nullptr);
  EXPECT_DOUBLE_EQ(cycle->find("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(cycle->find("min")->number, 0.5);
  EXPECT_DOUBLE_EQ(cycle->find("max")->number, 3.0);
  EXPECT_DOUBLE_EQ(cycle->find("sum")->number, 5.0);
}

TEST(Telemetry, CheckpointShardStagingObservesShardBytes) {
  // The coordinated checkpoint store publishes every staged shard's
  // on-disk size to the global registry.
  resetAll();
  ScopedEnable on;
  const auto dir = std::filesystem::temp_directory_path() / "tkmc_tm_shard";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir.string());
  store.beginEpoch(1);
  ShardRecord shard;
  shard.rank = 0;
  shard.extentCells = {1, 1, 1};
  shard.species = {0, 1};
  const EpochManifest::ShardEntry entry = store.stageShard(1, shard);
  EXPECT_EQ(metrics().histogram("checkpoint.shard_bytes").count(), 1u);
  EXPECT_GE(metrics().histogram("checkpoint.shard_bytes").sum(),
            static_cast<double>(entry.bytes));
  const JsonValue doc = JsonValue::parse(metrics().toJson());
  EXPECT_NE(doc.find("histograms")->find("checkpoint.shard_bytes"), nullptr);
  store.abortEpoch(1);
  std::filesystem::remove_all(dir);
  resetAll();
}

TEST(Telemetry, EmptyHistogramSnapshotIsValidJson) {
  ScopedEnable on;
  MetricsRegistry registry;
  registry.histogram("never.observed", {1.0});
  // min/max of an empty histogram are +/-inf internally; the snapshot
  // must still be parseable JSON (they are emitted as 0).
  const JsonValue doc = JsonValue::parse(registry.toJson());
  const JsonValue* h = doc.find("histograms")->find("never.observed");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 0.0);
  EXPECT_DOUBLE_EQ(h->find("min")->number, 0.0);
}

TEST(Telemetry, TraceJsonRoundTripsWithRequiredFields) {
  ScopedEnable on;
  Tracer t;
  t.begin("engine.cycle.s0", 0);
  t.instant("engine.rollback", 2);
  t.end("engine.cycle.s0", 0);

  const JsonValue doc = JsonValue::parse(t.toJson());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 3u);
  for (const JsonValue& e : events->array) {
    EXPECT_NE(e.find("name"), nullptr);
    EXPECT_NE(e.find("ph"), nullptr);
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
  }
  EXPECT_EQ(events->array[1].find("ph")->str, "i");
  EXPECT_DOUBLE_EQ(events->array[1].find("tid")->number, 2.0);
  const JsonValue* unit = doc.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ms");
}

TEST(Telemetry, ScopedEnableRestoresPreviousState) {
  setEnabled(false);
  {
    ScopedEnable on;
    EXPECT_TRUE(enabled());
    {
      ScopedEnable off(false);
      EXPECT_FALSE(enabled());
    }
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace tkmc::telemetry
