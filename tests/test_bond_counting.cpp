#include "kmc/bond_counting_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "analysis/cluster_analysis.hpp"
#include "kmc/serial_engine.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

struct World {
  World() : cet(2.87, kCutoff), net(cet), lattice(12, 12, 12, 2.87),
            state(lattice) {
    state.fill(Species::kFe);
    state.setSpeciesAt(center, Species::kVacancy);
  }

  Cet cet;
  Net net;
  BccLattice lattice;
  LatticeState state;
  Vec3i center{12, 12, 12};
};

TEST(BondCounting, FlatLandscapeInPureIron) {
  World w;
  BondCountingModel model(w.cet, w.net);
  const auto energies =
      model.stateEnergies(w.state, w.center, kNumJumpDirections);
  for (int k = 1; k <= kNumJumpDirections; ++k)
    EXPECT_NEAR(energies[static_cast<std::size_t>(k)], energies[0], 1e-12);
}

TEST(BondCounting, PureIronEnergyMatchesHandCount) {
  // Far from the vacancy, each Fe atom has 8 1NN and 6 2NN bonds:
  // E = (8 * eps1 + 6 * eps2) / 2. Compare against a region-atom energy
  // computed by differencing two region sums.
  World w;
  BondCountingModel::Parameters p;
  BondCountingModel model(w.cet, w.net, p);
  Vet vet = Vet::gather(w.cet, w.state, w.center);
  const auto energies = model.stateEnergiesFromVet(vet, 0);
  // The region holds nRegion sites, one of them the vacancy. Away from
  // the vacancy every atom contributes the bulk value; atoms adjacent to
  // the vacancy lose bonds. Total = bulk * (nRegion - 1) - corrections.
  const double bulk = (8 * p.eps1[0] + 6 * p.eps2[0]) / 2;
  // 8 atoms miss one 1NN bond, 6 atoms miss one 2NN bond.
  const double expected =
      bulk * (w.cet.nRegion() - 1) - 8 * p.eps1[0] / 2 - 6 * p.eps2[0] / 2;
  EXPECT_NEAR(energies[0], expected, 1e-9);
}

TEST(BondCounting, MixingCostsEnergy) {
  // Swapping one bulk Fe for Cu in pure Fe must raise the energy more
  // than the pure-phase average (positive mixing enthalpy -> demixing).
  World w;
  BondCountingModel::Parameters p;
  BondCountingModel model(w.cet, w.net, p);
  // 1NN mixing rule: 2*epsFeCu > epsFeFe + epsCuCu.
  EXPECT_GT(2 * p.eps1[1], p.eps1[0] + p.eps1[2]);
  EXPECT_GT(2 * p.eps2[1], p.eps2[0] + p.eps2[2]);

  // Energetics through the model: a Cu pair at 1NN beats two isolated Cu.
  Vet isolated = Vet::gather(w.cet, w.state, w.center);
  // Pick two *region* sites (their energies are part of the sum) that
  // are first neighbours of each other, away from the vacancy, and a
  // third region site far from both.
  int siteA = -1, siteB = -1, siteC = -1;
  for (int a = 1 + kNumJumpDirections; a < w.cet.nRegion() && siteA < 0; ++a) {
    const Vec3i pa = w.cet.site(a);
    if (pa.norm2() < 8) continue;  // keep clear of the vacancy
    for (const Vec3i& d : BccLattice::firstNeighborOffsets()) {
      const int b = w.cet.idOf(pa + d);
      if (b >= 1 + kNumJumpDirections && b < w.cet.nRegion() &&
          (pa + d).norm2() >= 8) {
        siteA = a;
        siteB = b;
        break;
      }
    }
  }
  for (int c = 1 + kNumJumpDirections; c < w.cet.nRegion(); ++c) {
    const Vec3i pc = w.cet.site(c);
    if (pc.norm2() < 8) continue;
    if ((pc - w.cet.site(siteA)).norm2() > 12 &&
        (pc - w.cet.site(siteB)).norm2() > 12) {
      siteC = c;
      break;
    }
  }
  ASSERT_GE(siteA, 0);
  ASSERT_GE(siteB, 0);
  ASSERT_GE(siteC, 0);
  Vet adjacent = isolated;
  adjacent.set(siteA, Species::kCu);
  adjacent.set(siteB, Species::kCu);
  Vet separated = isolated;
  separated.set(siteA, Species::kCu);
  separated.set(siteC, Species::kCu);
  BondCountingModel m2(w.cet, w.net);
  const double eAdjacent = m2.stateEnergiesFromVet(adjacent, 0)[0];
  const double eSeparated = m2.stateEnergiesFromVet(separated, 0)[0];
  EXPECT_LT(eAdjacent, eSeparated);  // clustering is downhill
}

TEST(BondCounting, DrivesTheSerialEngine) {
  World w;
  BondCountingModel model(w.cet, w.net);
  KmcConfig cfg;
  cfg.seed = 3;
  cfg.tEnd = 1e300;
  SerialEngine engine(w.state, model, w.cet, cfg);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(engine.step().advanced);
  EXPECT_EQ(w.state.countSpecies(Species::kVacancy), 1);
}

TEST(BondCounting, ForwardReverseAntisymmetry) {
  World w;
  Rng rng(4);
  LatticeState alloy(w.lattice);
  alloy.randomAlloy(0.2, 1, rng);
  BondCountingModel model(w.cet, w.net);
  const auto& jumps = BccLattice::firstNeighborOffsets();
  for (int trial = 0; trial < 25; ++trial) {
    const Vec3i from = w.lattice.wrap(alloy.vacancies()[0]);
    const auto before = model.stateEnergies(alloy, from, kNumJumpDirections);
    const int k = static_cast<int>(rng.uniformBelow(8));
    const Vec3i to = w.lattice.wrap(from + jumps[static_cast<std::size_t>(k)]);
    if (alloy.speciesAt(to) == Species::kVacancy) continue;
    const double dForward = before[static_cast<std::size_t>(k) + 1] - before[0];
    alloy.hopVacancy(from, to);
    const auto after = model.stateEnergies(alloy, to, kNumJumpDirections);
    int reverse = -1;
    for (int j = 0; j < kNumJumpDirections; ++j)
      if (w.lattice.wrap(to + jumps[static_cast<std::size_t>(j)]) == from)
        reverse = j;
    ASSERT_GE(reverse, 0);
    EXPECT_NEAR(dForward,
                -(after[static_cast<std::size_t>(reverse) + 1] - after[0]),
                1e-10);
  }
}

TEST(BondCounting, RequiresTwoShellCutoff) {
  const Cet tiny(2.87, 2.6);  // 1NN only
  const Net tinyNet(tiny);
  EXPECT_THROW(BondCountingModel(tiny, tinyNet), Error);
}

TEST(BondCounting, PrecipitationIsFasterThanWithEam) {
  // Sanity of the "first approach": a strongly demixing tabulated model
  // coarsens Cu measurably within a short event budget.
  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  BondCountingModel::Parameters strong;
  strong.eps1 = {-0.60, -0.45, -0.58};  // heavy mixing penalty
  strong.eps2 = {-0.30, -0.22, -0.29};
  BondCountingModel model(cet, net, strong);
  LatticeState state(BccLattice(12, 12, 12, 2.87));
  Rng rng(6);
  state.randomAlloy(0.05, 4, rng);
  const auto before = analyzeClusters(state, Species::kCu);
  KmcConfig cfg;
  cfg.seed = 8;
  cfg.tEnd = 1e300;
  SerialEngine engine(state, model, cet, cfg);
  for (int i = 0; i < 4000; ++i) engine.step();
  const auto after = analyzeClusters(state, Species::kCu);
  EXPECT_EQ(after.totalAtoms, before.totalAtoms);
  EXPECT_LT(after.isolatedCount, before.isolatedCount);
}

}  // namespace
}  // namespace tkmc
