#include "lattice/lattice_state.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tkmc {
namespace {

TEST(LatticeState, StartsAsAllIron) {
  LatticeState s(BccLattice(3, 3, 3, 2.87));
  EXPECT_EQ(s.countSpecies(Species::kFe), s.lattice().siteCount());
  EXPECT_TRUE(s.vacancies().empty());
}

TEST(LatticeState, SetSpeciesMaintainsVacancyList) {
  LatticeState s(BccLattice(3, 3, 3, 2.87));
  s.setSpeciesAt({0, 0, 0}, Species::kVacancy);
  s.setSpeciesAt({1, 1, 1}, Species::kVacancy);
  ASSERT_EQ(s.vacancies().size(), 2u);
  EXPECT_EQ(s.vacancies()[0], (Vec3i{0, 0, 0}));
  s.setSpeciesAt({0, 0, 0}, Species::kCu);
  ASSERT_EQ(s.vacancies().size(), 1u);
  EXPECT_EQ(s.vacancies()[0], (Vec3i{1, 1, 1}));
}

TEST(LatticeState, HopVacancyExchangesSpecies) {
  LatticeState s(BccLattice(4, 4, 4, 2.87));
  s.setSpeciesAt({2, 2, 2}, Species::kCu);
  s.setSpeciesAt({1, 1, 1}, Species::kVacancy);
  s.hopVacancy({1, 1, 1}, {2, 2, 2});
  EXPECT_EQ(s.speciesAt({1, 1, 1}), Species::kCu);
  EXPECT_EQ(s.speciesAt({2, 2, 2}), Species::kVacancy);
  ASSERT_EQ(s.vacancies().size(), 1u);
  EXPECT_EQ(s.vacancies()[0], (Vec3i{2, 2, 2}));
}

TEST(LatticeState, HopAcrossPeriodicBoundary) {
  LatticeState s(BccLattice(2, 2, 2, 2.87));
  s.setSpeciesAt({0, 0, 0}, Species::kVacancy);
  // Hop in direction (-1,-1,-1) wraps to (3,3,3).
  s.hopVacancy({0, 0, 0}, {-1, -1, -1});
  EXPECT_EQ(s.speciesAt({3, 3, 3}), Species::kVacancy);
  EXPECT_EQ(s.vacancies()[0], (Vec3i{3, 3, 3}));
}

TEST(LatticeState, HopRequiresVacancySource) {
  LatticeState s(BccLattice(3, 3, 3, 2.87));
  EXPECT_THROW(s.hopVacancy({0, 0, 0}, {1, 1, 1}), Error);
  s.setSpeciesAt({0, 0, 0}, Species::kVacancy);
  s.setSpeciesAt({1, 1, 1}, Species::kVacancy);
  EXPECT_THROW(s.hopVacancy({0, 0, 0}, {1, 1, 1}), Error);
}

TEST(LatticeState, VacancyOrderIsStableAcrossHops) {
  LatticeState s(BccLattice(4, 4, 4, 2.87));
  s.setSpeciesAt({0, 0, 0}, Species::kVacancy);
  s.setSpeciesAt({4, 4, 4}, Species::kVacancy);
  s.hopVacancy({0, 0, 0}, {1, 1, 1});
  ASSERT_EQ(s.vacancies().size(), 2u);
  EXPECT_EQ(s.vacancies()[0], (Vec3i{1, 1, 1}));
  EXPECT_EQ(s.vacancies()[1], (Vec3i{4, 4, 4}));
}

TEST(LatticeState, RandomAlloyPlacesRequestedVacancies) {
  LatticeState s(BccLattice(6, 6, 6, 2.87));
  Rng rng(77);
  s.randomAlloy(0.10, 5, rng);
  EXPECT_EQ(s.countSpecies(Species::kVacancy), 5);
  EXPECT_EQ(s.vacancies().size(), 5u);
}

TEST(LatticeState, RandomAlloyCuFractionIsApproximate) {
  LatticeState s(BccLattice(10, 10, 10, 2.87));
  Rng rng(78);
  s.randomAlloy(0.20, 0, rng);
  const double fraction =
      static_cast<double>(s.countSpecies(Species::kCu)) /
      static_cast<double>(s.lattice().siteCount());
  EXPECT_NEAR(fraction, 0.20, 0.03);
}

TEST(LatticeState, RandomAlloyIsDeterministic) {
  LatticeState a(BccLattice(5, 5, 5, 2.87)), b(BccLattice(5, 5, 5, 2.87));
  Rng ra(9), rb(9);
  a.randomAlloy(0.1, 3, ra);
  b.randomAlloy(0.1, 3, rb);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(LatticeState, EqualityDetectsSingleSiteDifference) {
  LatticeState a(BccLattice(4, 4, 4, 2.87)), b(BccLattice(4, 4, 4, 2.87));
  EXPECT_TRUE(a == b);
  a.setSpeciesAt({2, 2, 2}, Species::kCu);
  EXPECT_TRUE(a != b);
  EXPECT_NE(a.contentHash(), b.contentHash());
  b.setSpeciesAt({2, 2, 2}, Species::kCu);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(LatticeState, EqualityIgnoresWriteHistory) {
  // A state whose sites were touched and reverted must equal a fresh
  // state: the comparison is canonical, not materialization-sensitive.
  LatticeState touched(BccLattice(4, 4, 4, 2.87));
  LatticeState fresh(BccLattice(4, 4, 4, 2.87));
  touched.setSpeciesAt({0, 0, 0}, Species::kCu);
  touched.setSpeciesAt({0, 0, 0}, Species::kFe);
  EXPECT_TRUE(touched == fresh);
  EXPECT_EQ(touched.contentHash(), fresh.contentHash());
}

TEST(LatticeState, ForEachSiteVisitsEverySiteInOrder) {
  LatticeState s(BccLattice(4, 4, 4, 2.87));
  Rng rng(55);
  s.randomAlloy(0.2, 2, rng);
  BccLattice::SiteId expected = 0;
  s.forEachSite([&](BccLattice::SiteId id, Species sp) {
    ASSERT_EQ(id, expected);
    ASSERT_EQ(sp, s.species(id));
    ++expected;
  });
  EXPECT_EQ(expected, s.lattice().siteCount());
}

TEST(LatticeState, CountsStayExactAcrossAllMutators) {
  // Regression for the per-species counters the store maintains
  // incrementally: fill, setSpecies, hopVacancy, and randomAlloy must
  // all leave countSpecies() exactly equal to a brute-force tally.
  LatticeState s(BccLattice(5, 5, 5, 2.87));
  auto tally = [&](Species want) {
    std::int64_t n = 0;
    s.forEachSite([&](BccLattice::SiteId, Species sp) {
      if (sp == want) ++n;
    });
    return n;
  };
  auto expectExact = [&] {
    for (Species sp : {Species::kFe, Species::kCu, Species::kVacancy})
      ASSERT_EQ(s.countSpecies(sp), tally(sp));
  };

  expectExact();
  s.fill(Species::kCu);
  expectExact();
  EXPECT_EQ(s.countSpecies(Species::kCu), s.lattice().siteCount());

  s.fill(Species::kFe);
  s.setSpeciesAt({0, 0, 0}, Species::kCu);
  s.setSpeciesAt({2, 2, 2}, Species::kVacancy);
  s.setSpeciesAt({0, 0, 0}, Species::kFe);  // revert
  expectExact();

  Rng rng(31);
  s.randomAlloy(0.25, 4, rng);
  expectExact();

  for (int i = 0; i < 300; ++i) {
    const std::size_t v = rng.uniformBelow(s.vacancies().size());
    const Vec3i from = s.vacancies()[v];
    const Vec3i to = s.lattice().wrap(
        from + BccLattice::firstNeighborOffsets()[rng.uniformBelow(8)]);
    if (s.speciesAt(to) == Species::kVacancy) continue;
    s.hopVacancy(from, to);
  }
  expectExact();
}

TEST(LatticeState, PackedFootprintIsFractionOfDense) {
  // A mostly-Fe box keeps all-fill pages collapsed: the packed footprint
  // must be well under the 1 byte/site a dense vector would cost.
  LatticeState s(BccLattice(16, 16, 16, 2.87));  // 8192 sites
  const double pure = s.store().bytesPerSite();
  EXPECT_LT(pure, 0.30);
  EXPECT_EQ(s.store().materializedPageCount(), 0);
  s.setSpeciesAt({0, 0, 0}, Species::kCu);
  EXPECT_EQ(s.store().materializedPageCount(), 1);
  EXPECT_LT(s.store().bytesPerSite(), 1.0);
}

TEST(LatticeState, SpeciesConservedUnderManyHops) {
  LatticeState s(BccLattice(5, 5, 5, 2.87));
  Rng rng(13);
  s.randomAlloy(0.15, 3, rng);
  const auto fe = s.countSpecies(Species::kFe);
  const auto cu = s.countSpecies(Species::kCu);
  for (int i = 0; i < 500; ++i) {
    const std::size_t v = rng.uniformBelow(s.vacancies().size());
    const Vec3i from = s.vacancies()[v];
    const Vec3i to = s.lattice().wrap(
        from + BccLattice::firstNeighborOffsets()[rng.uniformBelow(8)]);
    if (s.speciesAt(to) == Species::kVacancy) continue;
    s.hopVacancy(from, to);
  }
  EXPECT_EQ(s.countSpecies(Species::kFe), fe);
  EXPECT_EQ(s.countSpecies(Species::kCu), cu);
  EXPECT_EQ(s.countSpecies(Species::kVacancy), 3);
}

}  // namespace
}  // namespace tkmc
